/**
 * @file
 * Simulator self-profiler: wall-time attribution per simulation phase.
 *
 * Answers "where did this run's wall time go" with three kinds of
 * buckets, all reported in one place:
 *
 *   cycle-sampled   the phases of the per-cycle loop body (CTA
 *                   admission, NoC tick, memory-partition ticks, SM
 *                   ticks, loop bookkeeping). Timestamping every cycle
 *                   would dominate the loop, so only every
 *                   cycleCadence-th executed cycle is measured and the
 *                   measured time is extrapolated by
 *                   executed / measured cycles.
 *   epoch-sampled   the phases of the sharded-run epoch protocol
 *                   (--sim-threads): per-epoch worker compute (max
 *                   across workers), shard imbalance (sum of
 *                   max - worker over workers — wall time lost to
 *                   uneven shards), and the serial merge barrier.
 *                   Sampled every epochCadence-th epoch, extrapolated
 *                   the same way.
 *   direct          rare, lumpy events timed on every occurrence:
 *                   event-horizon settles (fast-forward jumps),
 *                   interval-sampler samples, checkpoint writes.
 *
 * The profiler only ever reads the clock — it never touches simulator
 * state, so enabling it cannot perturb KernelStats (tests assert
 * bit-identity with it on). Overhead at the default cadences is a
 * handful of steady_clock reads per 64 cycles, well under the 2%
 * budget CI enforces (scripts/bench_profile.py).
 *
 * Buckets are registered in an owned StatGroup/StatRegistry
 * ("profiler.<bucket>_ns", raw measured nanoseconds plus measurement
 * counts), so dump/export machinery sees the same naming scheme as
 * every other stat; report() adds the extrapolation for the
 * vtsim-profile-v1 JSON written by --profile-json (bench_common).
 */

#ifndef VTSIM_TELEMETRY_PROFILER_HH
#define VTSIM_TELEMETRY_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats.hh"
#include "telemetry/stat_registry.hh"

namespace vtsim::telemetry {

class SimProfiler
{
  public:
    enum class Bucket : std::uint8_t
    {
        // Cycle-sampled loop phases (Gpu::sequentialCycle order).
        CtaAdmission = 0,
        NocTick,
        PartitionTick,
        SmTick,
        LoopOther,
        // Epoch-sampled sharded-run phases (Gpu::runSharded).
        ShardCompute,
        ShardImbalance,
        EpochMerge,
        // Direct (every occurrence).
        HorizonSettle,
        Sampler,
        CheckpointWrite,
        /** Wall time the OS stole from a sampled interval (see
         * markPhase): real, but must not be extrapolated. */
        Descheduled,
        kCount,
    };

    static constexpr std::size_t kBucketCount = std::size_t(Bucket::kCount);

    /** Fixed JSON/metric spelling, e.g. "sm_tick". */
    static const char *bucketName(Bucket b);

    /** Cadences must be powers of two (masked, not divided). */
    explicit SimProfiler(std::uint32_t cycleCadence = 64,
                         std::uint32_t epochCadence = 16);

    static std::uint64_t
    nowNs()
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    /** Whole-run window (Gpu::launch wraps its run drivers in one). */
    void beginRun();
    void endRun();
    double runSeconds() const { return double(runNs_) * 1e-9; }

    /**
     * Count one executed loop cycle; true when this cycle is measured
     * (the caller then brackets each phase with markPhase). Also
     * stamps the phase clock.
     */
    bool
    beginCycle()
    {
        // Sample the *last* cycle of each cadence block: cycle 0 right
        // after reset/prepare runs on cold caches and would bias the
        // extrapolation upward.
        const bool measure =
            (cycles_++ & (cycleCadence_ - 1)) == cycleCadence_ - 1;
        if (measure) {
            ++sampledCycles_;
            lastMark_ = nowNs();
        }
        return measure;
    }

    /** A sampled interval this long was interrupted by the OS: loop
     * phases are sub-10µs, scheduler timeslices are ≥1ms. */
    static constexpr std::uint64_t kDescheduledNs = 250'000;

    /** Close the current phase of a measured cycle/epoch into @p b.
     * Intervals that clearly contain an OS deschedule go to the
     * Descheduled bucket instead — one 3ms glitch extrapolated by the
     * cadence would otherwise fabricate ~0.2s of phase time. */
    void
    markPhase(Bucket b)
    {
        const std::uint64_t now = nowNs();
        const std::uint64_t dt = now - lastMark_;
        const std::size_t slot = dt > kDescheduledNs
                                     ? std::size_t(Bucket::Descheduled)
                                     : std::size_t(b);
        ns_[slot] += dt;
        ++calls_[slot];
        lastMark_ = now;
    }

    /** Count one epoch; true when this epoch is measured. */
    bool
    beginEpoch(std::uint32_t workers)
    {
        const bool measure = (epochs_++ & (epochCadence_ - 1)) == 0;
        if (measure) {
            ++sampledEpochs_;
            workerNs_.assign(workers, 0);
        }
        return measure;
    }

    /** Worker @p w's compute time for a measured epoch (own slot —
     * safe to call concurrently from distinct workers). */
    void recordWorkerNs(std::uint32_t w, std::uint64_t ns)
    { workerNs_[w] = ns; }

    /**
     * Fold a measured epoch's worker times into ShardCompute (the max:
     * the epoch's critical path) and ShardImbalance (sum of
     * max - worker), then stamp the phase clock so the caller can
     * markPhase(EpochMerge) after the serial barrier section.
     */
    void finishEpochCompute();

    /** Direct-timed events. Also refreshes the phase clock: a direct
     * span inside a measured cycle (sampler, checkpoint, settle) must
     * not be re-counted by that cycle's next markPhase. */
    void
    addDirect(Bucket b, std::uint64_t ns)
    {
        ns_[std::size_t(b)] += ns;
        ++calls_[std::size_t(b)];
        lastMark_ = nowNs();
    }

    struct BucketReport
    {
        Bucket bucket;
        const char *name;
        /** Extrapolated wall seconds attributed to this bucket. */
        double seconds = 0.0;
        /** Raw measured nanoseconds (before extrapolation). */
        std::uint64_t measuredNs = 0;
        std::uint64_t calls = 0;
        bool sampled = false;
    };

    /** Per-bucket attribution; zero-measurement buckets are omitted. */
    std::vector<BucketReport> report() const;

    /** Sum of report() seconds — compare against runSeconds(). */
    double attributedSeconds() const;

    /** Calibrated cost of one nowNs() read (see ctor). */
    double clockCostNs() const { return clockCostNs_; }

    std::uint64_t executedCycles() const { return cycles_; }
    std::uint64_t sampledCycles() const { return sampledCycles_; }
    std::uint64_t executedEpochs() const { return epochs_; }
    std::uint64_t sampledEpochs() const { return sampledEpochs_; }

    /** Raw buckets under "profiler.*" paths (same registry machinery
     * as every simulator stat). */
    const StatRegistry &registry() const { return registry_; }

  private:
    double scaleFor(Bucket b) const;

    std::uint32_t cycleCadence_;
    std::uint32_t epochCadence_;

    std::uint64_t ns_[kBucketCount] = {};
    std::uint64_t calls_[kBucketCount] = {};

    std::uint64_t cycles_ = 0;
    std::uint64_t sampledCycles_ = 0;
    std::uint64_t epochs_ = 0;
    std::uint64_t sampledEpochs_ = 0;

    std::uint64_t lastMark_ = 0;
    std::uint64_t runStartNs_ = 0;
    std::uint64_t runNs_ = 0;
    double clockCostNs_ = 0.0;

    std::vector<std::uint64_t> workerNs_;

    StatGroup group_{"profiler"};
    StatRegistry registry_;
};

} // namespace vtsim::telemetry

#endif // VTSIM_TELEMETRY_PROFILER_HH
