/**
 * @file
 * The lifecycle interface every timed component implements.
 *
 * Components used to each hand-roll lazy-clock bookkeeping (cached fast
 * forward horizons, deferred idle accounting, ad-hoc reset paths), and
 * the duplication bred settle-ordering bugs — PR 3 fixed a stale-`now_`
 * MLP sample in LdstUnit caused by exactly this. SimComponent names the
 * contract once; the central EventHorizon in Gpu drives it.
 *
 * Contract, for a component whose last real tick was at cycle T:
 *  - tick(now): do one cycle of work. Components with a lazy window may
 *    early-out and defer idle accounting; the deferral must be invisible
 *    through every other entry point.
 *  - nextEventCycle(now): earliest cycle >= now at which the component
 *    could do observable work, assuming no external input arrives.
 *    Returning `now` means "tick me now". May flush deferred accounting
 *    (hence non-const). Cached results are allowed as long as every
 *    event that could move the answer earlier invalidates the cache.
 *  - nextEventCycleFresh(now): the same answer computed without trusting
 *    any cache. Only the verifyHorizon debug oracle calls it; a cache
 *    whose stale value exceeds the fresh one is exactly the bug class
 *    the oracle exists to catch.
 *  - settleTo(cycle): account every deferred idle cycle up to (not
 *    including) `cycle`, as if tick had been called for each. EventHorizon
 *    calls this on every component before jumping the global clock.
 *  - reset(): return to the freshly-constructed state for the same
 *    config, so one Gpu arena is reusable across runs bit-identically.
 *  - save()/restore(): serialize/deserialize the complete dynamic state
 *    (queues, stats, lazy-window cursors) inside one section per
 *    component; restore asserts the section size round-trips.
 */

#ifndef VTSIM_SIM_SIM_COMPONENT_HH
#define VTSIM_SIM_SIM_COMPONENT_HH

#include "common/types.hh"
#include "sim/serializer.hh"

namespace vtsim {

class SimComponent
{
  public:
    virtual ~SimComponent() = default;

    /** Advance one cycle. Passive components keep the no-op default. */
    virtual void tick(Cycle now) { (void)now; }

    /** Earliest cycle >= now with observable work; neverCycle if idle. */
    virtual Cycle
    nextEventCycle(Cycle now)
    {
        (void)now;
        return neverCycle;
    }

    /** nextEventCycle computed without consulting any cached horizon. */
    virtual Cycle nextEventCycleFresh(Cycle now) { return nextEventCycle(now); }

    /** Bulk-account deferred idle cycles so state is current as of
     *  @p cycle (exclusive). Must be bit-identical to per-cycle ticking. */
    virtual void settleTo(Cycle cycle) { (void)cycle; }

    virtual void reset() = 0;
    virtual void save(Serializer &ser) const = 0;
    virtual void restore(Deserializer &des) = 0;
};

} // namespace vtsim

#endif // VTSIM_SIM_SIM_COMPONENT_HH
