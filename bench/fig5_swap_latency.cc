/**
 * @file
 * FIG-5 (sensitivity): speedup versus context-switch latency. Because a
 * swap moves only warp scheduling state, the paper's mechanism tolerates
 * tens of cycles; the curve should degrade gracefully and stay positive
 * well past realistic latencies.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-5", "speedup vs. swap (context switch) latency");
    const GpuConfig base = GpuConfig::fermiLike();
    const std::uint32_t latencies[] = {0, 5, 10, 25, 50, 100, 200};
    const char *subset[] = {"vecadd", "reduce", "stencil", "histogram"};
    constexpr std::size_t stride = 1 + std::size(latencies);

    std::vector<RunSpec> specs;
    for (const char *name : subset) {
        specs.push_back({name, base, benchScale});
        for (auto latency : latencies) {
            GpuConfig vt = base;
            vt.vtEnabled = true;
            vt.vtSwapOutLatency = latency;
            vt.vtSwapInLatency = latency;
            specs.push_back({name, vt, benchScale});
        }
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s", "benchmark");
    for (auto l : latencies)
        std::printf("  L=%4u", l);
    std::printf("   swaps@10\n");

    for (std::size_t w = 0; w < std::size(subset); ++w) {
        const RunResult &ref = results[w * stride];
        std::printf("%-14s", subset[w]);
        std::uint64_t swaps_at_10 = 0;
        for (std::size_t l = 0; l < std::size(latencies); ++l) {
            const RunResult &r = results[w * stride + 1 + l];
            if (latencies[l] == 10)
                swaps_at_10 = r.stats.swapOuts;
            std::printf(" %6.2fx",
                        double(ref.stats.cycles) / r.stats.cycles);
        }
        std::printf("  %8llu\n", (unsigned long long)swaps_at_10);
    }
    std::printf("(L is applied to both save and restore; the default "
                "machine uses 10+10 cycles)\n");
    return 0;
}
