# Empty compiler generated dependencies file for ext5_l2_policy.
# This may be replaced when dependencies are built.
