/**
 * @file
 * The vtsim-evlog-v1 job-lifecycle event log: every line carries the
 * schema tag and a per-daemon monotonic seq, job events chain to their
 * predecessor through `parent`, the preempt/park/resume and
 * crash/retry paths emit the full transition sequence, and — the
 * observability bar — turning the event log and job trace on cannot
 * perturb KernelStats.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gpu/gpu.hh"
#include "service/event_log.hh"
#include "service/json.hh"
#include "service/protocol.hh"
#include "service/service.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

using service::EventLog;
using service::JobService;
using service::JobSnapshot;
using service::JobSpec;
using service::JobState;
using service::Json;
using service::Priority;
using service::ServiceConfig;

std::string
tempPath(const std::string &tag)
{
    return std::string(::testing::TempDir()) + "vtsim-evlog-" + tag;
}

/** Parse every line of @p path; a truncated final line (daemon killed
 *  mid-write) is skipped, anything else malformed fails the test. */
std::vector<Json>
readLog(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line))
        if (!line.empty())
            lines.push_back(line);
    std::vector<Json> events;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        try {
            events.push_back(Json::parse(lines[i]));
        } catch (const std::exception &e) {
            EXPECT_EQ(i, lines.size() - 1)
                << "unparseable non-tail line " << i << ": " << lines[i];
        }
    }
    return events;
}

/** Fields (beyond v/seq/t_ms/event) every kind must carry — keep in
 *  lockstep with src/service/event_log.hh and
 *  scripts/validate_evlog.py. */
const std::map<std::string, std::vector<std::string>> &
requiredFields()
{
    static const std::map<std::string, std::vector<std::string>> table = {
        {"log_open", {"pid"}},
        {"service_start", {"workers", "queue_limit", "preempt_every"}},
        {"listening", {"socket"}},
        {"accept_error", {"error"}},
        {"submit", {"workload", "scale", "priority"}},
        {"admit", {"job", "parent", "workload", "scale", "priority"}},
        {"reject", {"parent", "reason"}},
        {"start", {"job", "parent", "worker", "attempt", "wait_ms"}},
        {"resume", {"job", "parent", "worker", "wait_ms"}},
        {"checkpoint", {"job", "parent", "bytes", "write_ms"}},
        {"preempt", {"job", "parent", "by_priority"}},
        {"park", {"job", "parent", "slice_ms"}},
        {"crash", {"job", "parent", "attempt", "reason"}},
        {"retry", {"job", "parent", "from"}},
        {"finish", {"job", "parent", "cycles", "wall_ms", "verified"}},
        {"fail", {"job", "parent", "reason"}},
        {"cancel", {"job", "parent"}},
        {"drain", {}},
        {"service_stop", {}},
    };
    return table;
}

/** The invariants every vtsim-evlog-v1 document obeys. */
void
checkLogInvariants(const std::vector<Json> &events)
{
    ASSERT_FALSE(events.empty());
    std::map<std::int64_t, std::int64_t> lastSeqPerJob;
    std::map<std::int64_t, std::string> kindAtSeq;
    double lastTms = -1.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &e = events[i];
        ASSERT_TRUE(e.isObject()) << "event " << i;
        ASSERT_NE(e.find("v"), nullptr);
        EXPECT_EQ(e.find("v")->asString(), "vtsim-evlog-v1");
        // seq is consecutive from 1 — nothing is ever dropped or
        // reordered inside one daemon's log.
        ASSERT_NE(e.find("seq"), nullptr);
        EXPECT_EQ(e.find("seq")->asInt(), std::int64_t(i) + 1);
        ASSERT_NE(e.find("t_ms"), nullptr);
        EXPECT_GE(e.find("t_ms")->asDouble(), lastTms);
        lastTms = e.find("t_ms")->asDouble();

        ASSERT_NE(e.find("event"), nullptr) << "event " << i;
        const std::string kind = e.find("event")->asString();
        kindAtSeq[std::int64_t(i) + 1] = kind;
        const auto req = requiredFields().find(kind);
        ASSERT_NE(req, requiredFields().end()) << "unknown kind " << kind;
        for (const std::string &field : req->second)
            EXPECT_NE(e.find(field), nullptr)
                << kind << " missing " << field;

        // Per-job causality: parent is the job's previous event (the
        // matching submit for admit).
        if (const Json *job = e.find("job")) {
            const std::int64_t id = job->asInt();
            const std::int64_t parent = e.find("parent")->asInt();
            if (kind == "admit") {
                EXPECT_EQ(kindAtSeq[parent], "submit") << "event " << i;
            } else {
                EXPECT_EQ(parent, lastSeqPerJob[id])
                    << kind << " of job " << id;
            }
            lastSeqPerJob[id] = std::int64_t(i) + 1;
        }
    }
    EXPECT_EQ(events.front().find("event")->asString(), "log_open");
    EXPECT_EQ(events[1].find("event")->asString(), "service_start");
    EXPECT_EQ(events[events.size() - 2].find("event")->asString(),
              "drain");
    EXPECT_EQ(events.back().find("event")->asString(), "service_stop");
}

std::map<std::string, int>
countKinds(const std::vector<Json> &events)
{
    std::map<std::string, int> kinds;
    for (const Json &e : events)
        ++kinds[e.find("event")->asString()];
    return kinds;
}

void
spinUntilStarted(JobService &service, service::JobId id)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        if (service.query(id).state != JobState::Queued)
            return;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "job " << id << " never started";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

// --------------------------------------------------------------------
// EventLog writer in isolation
// --------------------------------------------------------------------

TEST(EventLog, SeqIsMonotonicAndJobEventsChain)
{
    const std::string path = tempPath("unit.jsonl");
    {
        EventLog log(path); // Emits log_open as seq 1.
        Json::Object start;
        start["workers"] = Json(std::int64_t(1));
        start["queue_limit"] = Json(std::int64_t(4));
        start["preempt_every"] = Json(std::int64_t(0));
        EXPECT_EQ(log.emit("service_start", std::move(start)), 2u);

        Json::Object sub;
        sub["workload"] = Json("vecadd");
        sub["scale"] = Json(std::int64_t(1));
        sub["priority"] = Json("normal");
        const std::uint64_t submitSeq = log.emit("submit", std::move(sub));
        EXPECT_EQ(submitSeq, 3u);

        Json::Object admit;
        admit["workload"] = Json("vecadd");
        admit["scale"] = Json(std::int64_t(1));
        admit["priority"] = Json("normal");
        const std::uint64_t admitSeq =
            log.emitJob("admit", 1, submitSeq, std::move(admit));
        EXPECT_EQ(admitSeq, 4u);
        log.emit("drain");
        log.emit("service_stop");
    }
    const auto events = readLog(path);
    ASSERT_EQ(events.size(), 6u);
    checkLogInvariants(events);
    EXPECT_EQ(events[3].find("parent")->asInt(), 3);
    EXPECT_EQ(events[3].find("job")->asInt(), 1);
}

TEST(EventLog, TruncatedTailLineIsTolerated)
{
    const std::string path = tempPath("truncated.jsonl");
    {
        EventLog log(path);
        log.emit("service_start");
    }
    std::ofstream(path, std::ios::app)
        << "{\"v\":\"vtsim-evlog-v1\",\"seq\":3,\"event\":\"fini";
    const auto events = readLog(path);
    EXPECT_EQ(events.size(), 2u); // The partial line is skipped.
}

// --------------------------------------------------------------------
// JobService lifecycle coverage
// --------------------------------------------------------------------

TEST(JobServiceEvlog, PreemptParkResumeSequenceIsLogged)
{
    const std::string evlog = tempPath("preempt.jsonl");
    ServiceConfig config;
    config.workers = 1;
    config.preemptEvery = 500;
    config.spoolDir = tempPath("preempt-spool");
    config.eventLogPath = evlog;
    config.jobTracePath = tempPath("preempt.trace.json");
    {
        JobService service(config);
        JobSpec longJob;
        longJob.workload = "needle";
        longJob.scale = 1;
        const auto low = service.submit(longJob, Priority::Low);
        ASSERT_TRUE(low.ok());
        spinUntilStarted(service, low.id);
        JobSpec tiny;
        tiny.workload = "vecadd";
        tiny.scale = 0;
        const auto high = service.submit(tiny, Priority::High);
        ASSERT_TRUE(high.ok());
        ASSERT_EQ(service.wait(high.id).state, JobState::Done);
        const JobSnapshot lowSnap = service.wait(low.id);
        ASSERT_EQ(lowSnap.state, JobState::Done);
        ASSERT_GE(lowSnap.preemptions, 1u);
        service.shutdown();
    }
    const auto events = readLog(evlog);
    checkLogInvariants(events);
    const auto kinds = countKinds(events);
    EXPECT_EQ(kinds.at("submit"), 2);
    EXPECT_EQ(kinds.at("admit"), 2);
    EXPECT_EQ(kinds.at("finish"), 2);
    // The preemption leaves the full transition trail: preempt →
    // checkpoint write → park → resume.
    EXPECT_GE(kinds.at("preempt"), 1);
    EXPECT_GE(kinds.at("checkpoint"), 1);
    EXPECT_GE(kinds.at("park"), 1);
    EXPECT_GE(kinds.at("resume"), 1);

    // The job trace is valid JSON with balanced duration events.
    std::ifstream trace(config.jobTracePath);
    ASSERT_TRUE(trace.good());
    std::string text((std::istreambuf_iterator<char>(trace)),
                     std::istreambuf_iterator<char>());
    const Json doc = Json::parse(text);
    int begins = 0, ends = 0;
    for (const Json &e : doc.find("traceEvents")->asArray()) {
        const std::string ph = e.find("ph")->asString();
        begins += ph == "B";
        ends += ph == "E";
    }
    EXPECT_GT(begins, 0);
    EXPECT_EQ(begins, ends);
}

TEST(JobServiceEvlog, CrashRetryAndRejectAreLogged)
{
    const std::string evlog = tempPath("crash.jsonl");
    ServiceConfig config;
    config.workers = 1;
    config.spoolDir = tempPath("crash-spool");
    config.eventLogPath = evlog;
    {
        JobService service(config);
        JobSpec bad;
        bad.workload = "no-such-benchmark";
        EXPECT_FALSE(service.submit(bad, Priority::Normal).ok());

        JobSpec spec;
        spec.workload = "needle";
        spec.scale = 0;
        spec.checkpointEvery = 2000;
        spec.injectFail = 1; // Attempt 1 checkpoints, then dies.
        const auto job = service.submit(spec, Priority::Normal);
        ASSERT_TRUE(job.ok());
        const JobSnapshot snap = service.wait(job.id);
        ASSERT_EQ(snap.state, JobState::Done);
        ASSERT_EQ(snap.retries, 1u);
        service.shutdown();
    }
    const auto events = readLog(evlog);
    checkLogInvariants(events);
    const auto kinds = countKinds(events);
    EXPECT_EQ(kinds.at("reject"), 1);
    EXPECT_EQ(kinds.at("crash"), 1);
    EXPECT_EQ(kinds.at("retry"), 1);
    EXPECT_EQ(kinds.at("finish"), 1);
    // Two starts: the first attempt and the post-retry attempt.
    EXPECT_EQ(kinds.at("start"), 2);
    for (const Json &e : events) {
        const std::string kind = e.find("event")->asString();
        if (kind == "retry")
            EXPECT_EQ(e.find("from")->asString(), "checkpoint");
        if (kind == "start" && e.find("attempt")->asInt() == 2)
            return; // Saw the retried attempt — all good.
    }
    FAIL() << "no start event with attempt=2";
}

TEST(JobServiceEvlog, ObservabilityDoesNotPerturbKernelStats)
{
    // The oracle: the same workload, uninterrupted, no observability.
    auto wl = makeWorkload("reduce", 1);
    const Kernel kernel = wl->buildKernel();
    Gpu gpu{GpuConfig::fermiLike()};
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats base = gpu.launch(kernel, lp);
    ASSERT_TRUE(wl->verify(gpu.memory()));

    ServiceConfig config;
    config.workers = 1;
    config.spoolDir = tempPath("identity-spool");
    config.eventLogPath = tempPath("identity.jsonl");
    config.jobTracePath = tempPath("identity.trace.json");
    JobService service(config);
    JobSpec spec;
    spec.workload = "reduce";
    spec.scale = 1;
    const auto job = service.submit(spec, Priority::Normal);
    ASSERT_TRUE(job.ok());
    const JobSnapshot snap = service.wait(job.id);
    ASSERT_EQ(snap.state, JobState::Done);
    EXPECT_TRUE(snap.verified);
    EXPECT_EQ(service::kernelStatsToJson(base).dump(),
              service::kernelStatsToJson(snap.stats).dump());
}

} // namespace
} // namespace vtsim
