/**
 * @file
 * Minimal vtsimd client: connect to the daemon's Unix-domain socket,
 * send one NDJSON request line, read one reply line. Shared by the
 * vtsim-submit tool and the service tests (which also use requestRaw
 * to deliver deliberately malformed lines).
 */

#ifndef VTSIM_SERVICE_CLIENT_HH
#define VTSIM_SERVICE_CLIENT_HH

#include <string>

#include "service/json.hh"

namespace vtsim::service {

class Client
{
  public:
    /** Connect to the daemon at @p socket_path; throws
     *  std::runtime_error when nothing is listening. */
    explicit Client(const std::string &socket_path);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Send @p request as one line; parse the one-line reply. */
    Json request(const Json &request);

    /**
     * Send @p line verbatim (a newline is appended) and return the
     * raw reply line. An empty return means the daemon closed the
     * connection without replying.
     */
    std::string requestRaw(const std::string &line);

    /** Send @p data without a trailing newline and hang up — the
     *  mid-request-disconnect probe. */
    void sendPartialAndClose(const std::string &data);

  private:
    std::string readLine();

    int fd_ = -1;
    std::string buffer_;
};

} // namespace vtsim::service

#endif // VTSIM_SERVICE_CLIENT_HH
