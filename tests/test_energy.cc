/**
 * @file
 * Unit tests for the energy accounting model.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/energy_model.hh"

namespace vtsim {
namespace {

KernelStats
someStats()
{
    KernelStats s;
    s.cycles = 1000;
    s.warpInstructions = 5000;
    s.l1Hits = 100;
    s.l1Misses = 50;
    s.l2Hits = 30;
    s.l2Misses = 20;
    s.dramBytes = 6400;
    s.swapOuts = 10;
    return s;
}

TEST(EnergyModel, ComponentsFollowCounts)
{
    const GpuConfig cfg = GpuConfig::fermiLike();
    const EnergyParams p;
    const auto e = estimateEnergy(someStats(), cfg, 332, p);
    EXPECT_DOUBLE_EQ(e.core, p.warpInstruction * 5000);
    EXPECT_DOUBLE_EQ(e.l1, p.l1Access * 150);
    EXPECT_DOUBLE_EQ(e.l2, p.l2Access * 50);
    EXPECT_DOUBLE_EQ(e.dram, p.dramPerByte * 6400);
    EXPECT_DOUBLE_EQ(e.noc, p.nocPerResponse * 70);
    EXPECT_DOUBLE_EQ(e.vtSwap, p.vtSwapPerByte * 2 * 332 * 10);
    EXPECT_DOUBLE_EQ(e.staticEnergy,
                     p.staticPerSmCycle * 1000 * cfg.numSms);
    EXPECT_DOUBLE_EQ(e.total(), e.core + e.l1 + e.l2 + e.dram + e.noc +
                                    e.vtSwap + e.staticEnergy);
}

TEST(EnergyModel, ZeroStatsZeroEnergy)
{
    const auto e = estimateEnergy(KernelStats{}, GpuConfig::fermiLike(),
                                  0);
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(EnergyModel, SwapEnergyIsTinyVersusTotal)
{
    // The paper's point: moving ~hundreds of bytes of scheduling state
    // per swap is invisible next to everything else a launch does.
    const GpuConfig cfg = GpuConfig::fermiLike();
    const auto e = estimateEnergy(someStats(), cfg, 332);
    EXPECT_LT(e.vtSwap, 0.05 * e.total());
}

TEST(EnergyModel, EdpScalesWithCycles)
{
    const auto e = estimateEnergy(someStats(), GpuConfig::fermiLike(), 0);
    EXPECT_DOUBLE_EQ(e.edp(2000), 2 * e.edp(1000));
}

TEST(EnergyModel, PrintShowsAllRows)
{
    const auto e = estimateEnergy(someStats(), GpuConfig::fermiLike(),
                                  332);
    std::ostringstream os;
    printEnergy(os, e);
    const std::string out = os.str();
    for (const char *key : {"core", "l1", "l2", "dram", "noc", "vt-swap",
                            "static", "TOTAL"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(EnergyModel, FasterRunWinsOnStaticEnergy)
{
    // Same work, fewer cycles: total energy must drop (static term).
    KernelStats slow = someStats();
    KernelStats fast = slow;
    fast.cycles = slow.cycles / 2;
    const GpuConfig cfg = GpuConfig::fermiLike();
    const auto es = estimateEnergy(slow, cfg, 0);
    const auto ef = estimateEnergy(fast, cfg, 0);
    EXPECT_LT(ef.total(), es.total());
}

} // namespace
} // namespace vtsim
