#include "sm/warp_context.hh"

#include "common/log.hh"

namespace vtsim {

void
WarpContext::init(VirtualCtaId vcta, std::uint32_t warp_in_cta,
                  ActiveMask live_lanes, std::uint32_t num_regs,
                  std::uint32_t sched_id)
{
    vcta_ = vcta;
    warpInCta_ = warp_in_cta;
    schedId_ = sched_id;
    liveLanes_ = live_lanes;
    stack_.reset(live_lanes);
    scoreboard_.reset(num_regs);
    atBarrier_ = false;
    readyAt_ = 0;
    pendingOffChip_ = 0;
    issued_ = 0;
}

void
WarpContext::removeOffChip()
{
    VTSIM_ASSERT(pendingOffChip_ > 0, "off-chip underflow");
    --pendingOffChip_;
}

} // namespace vtsim
