#include "service/job_queue.hh"

#include <algorithm>

#include "service/service.hh"

namespace vtsim::service {

namespace {

/** True when @p a should run strictly after @p b. */
bool
runsAfter(const JobRecord *a, const JobRecord *b)
{
    if (a->priority != b->priority)
        return a->priority < b->priority;
    return a->seq > b->seq;
}

} // namespace

void
JobQueue::insert(JobRecord *job)
{
    // Best candidate last: find the first element that runs *before*
    // job scanning from the back, and place job after it.
    const auto pos = std::upper_bound(queue_.begin(), queue_.end(), job,
                                      runsAfter);
    queue_.insert(pos, job);
}

bool
JobQueue::admit(JobRecord *job)
{
    if (queue_.size() >= limit_)
        return false;
    insert(job);
    return true;
}

void
JobQueue::readmit(JobRecord *job)
{
    insert(job);
}

JobRecord *
JobQueue::pop()
{
    if (queue_.empty())
        return nullptr;
    JobRecord *job = queue_.back();
    queue_.pop_back();
    return job;
}

bool
JobQueue::remove(const JobRecord *job)
{
    const auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it == queue_.end())
        return false;
    queue_.erase(it);
    return true;
}

} // namespace vtsim::service
