/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: run a
 * workload on a configuration, verify its results, and format rows.
 */

#ifndef VTSIM_BENCH_BENCH_COMMON_HH
#define VTSIM_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "gpu/gpu.hh"
#include "workloads/workload.hh"

namespace vtsim::bench {

/** Result of one simulated run. */
struct RunResult
{
    std::string workload;
    KernelStats stats;
    bool verified = false;
    /** Host wall-clock seconds spent inside Gpu::launch. */
    double wallSeconds = 0.0;
    /** Deepest SIMT reconvergence stack observed on any SM. */
    std::uint32_t maxSimtDepth = 0;

    /** Simulator speed: simulated kilocycles per host second. */
    double kcyclesPerSec() const
    {
        return wallSeconds > 0.0 ? stats.cycles / wallSeconds / 1e3 : 0.0;
    }

    /** Simulator speed: millions of simulated thread instructions per
     *  host second. */
    double mips() const
    {
        return wallSeconds > 0.0
                   ? stats.threadInstructions / wallSeconds / 1e6
                   : 0.0;
    }
};

/**
 * Simulate @p workload_name at @p scale on a fresh GPU with @p config.
 * The run always verifies functional results and aborts on mismatch —
 * a timing experiment on wrong answers is meaningless.
 */
RunResult runWorkload(const std::string &workload_name,
                      const GpuConfig &config, std::uint32_t scale = 1);

/** Geometric mean of a vector of positive ratios. */
double geomean(const std::vector<double> &values);

/** Print a standard header naming the experiment. */
void printHeader(const std::string &experiment_id,
                 const std::string &title);

/** Default problem scale for the figure benches (see bench/README note:
 *  scale 1 keeps every figure regenerable in minutes on a laptop). */
inline constexpr std::uint32_t benchScale = 1;

} // namespace vtsim::bench

#endif // VTSIM_BENCH_BENCH_COMMON_HH
