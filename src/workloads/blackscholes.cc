/**
 * @file
 * Black-Scholes-style per-element pricing: a long chain of transcendental
 * (SFU) operations per streaming element. Compute-bound — the control
 * workload on which Virtual Thread should be roughly performance-neutral.
 */

#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class Blackscholes : public Workload
{
  public:
    explicit Blackscholes(std::uint32_t scale)
        : n_(scale == 0 ? 512 : 32768 * scale)
    {}

    std::string name() const override { return "blackscholes"; }

    std::string
    description() const override
    {
        return "transcendental-heavy option pricing (SFU-bound)";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        // price = log(s)*0.5 + sqrt(s)*0.3 + 1/(s+1) + exp(-0.25*s)
        // (a stand-in with the real kernel's operation mix).
        return assemble(R"(
.kernel blackscholes
    ldp r0, 0            # s[]
    ldp r1, 1            # out[]
    ldp r2, 2            # n
    ldp r3, 3            # 0.5f
    ldp r4, 4            # 0.3f
    ldp r5, 5            # 1.0f
    ldp r6, 6            # -0.25f
    s2r r7, ctaid.x
    s2r r8, ntid.x
    s2r r9, tid.x
    imad r10, r7, r8, r9
    isetp.ge r11, r10, r2
    bra r11, done
    shl r12, r10, 2
    iadd r13, r12, r0
    ldg r14, [r13]       # s
    flog r15, r14
    fmul r15, r15, r3
    fsqrt r16, r14
    ffma r15, r16, r4, r15
    fadd r17, r14, r5
    frcp r17, r17
    fadd r15, r15, r17
    fmul r18, r14, r6
    fexp r18, r18
    fadd r15, r15, r18
    iadd r19, r12, r1
    stg [r19], r15
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd0d);
        std::vector<float> s(n_);
        for (auto &v : s)
            v = 1.0f + 99.0f * rng.nextFloat();
        sAddr_ = gmem.alloc(n_ * 4);
        outAddr_ = gmem.alloc(n_ * 4);
        gmem.writeFloats(sAddr_, s);

        expected_.resize(n_);
        for (std::uint32_t i = 0; i < n_; ++i) {
            const float x = s[i];
            float v = std::log(x) * 0.5f;
            v = std::sqrt(x) * 0.3f + v;
            v = v + 1.0f / (x + 1.0f);
            v = v + std::exp(x * -0.25f);
            expected_[i] = v;
        }

        LaunchParams lp;
        lp.cta = Dim3(128);
        lp.grid = Dim3(ceilDiv(n_, 128));
        lp.params = {std::uint32_t(sAddr_), std::uint32_t(outAddr_), n_,
                     0x3f000000u, 0x3e99999au, 0x3f800000u, 0xbe800000u};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readFloats(outAddr_, n_);
        for (std::uint32_t i = 0; i < n_; ++i) {
            // Transcendental host/device agreement is exact here (same
            // libm), but allow one ULP of slack for portability.
            const float diff = std::fabs(got[i] - expected_[i]);
            if (diff > std::fabs(expected_[i]) * 1e-6f + 1e-6f)
                return false;
        }
        return true;
    }

  private:
    std::uint32_t n_;
    Addr sAddr_ = 0, outAddr_ = 0;
    std::vector<float> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeBlackscholes(std::uint32_t scale)
{
    return std::make_unique<Blackscholes>(scale);
}

} // namespace vtsim
