/**
 * @file
 * Run a kernel from a .vasm file — the "write a kernel in a text editor
 * and execute it" workflow. The harness provides a simple parameter
 * convention: param 0 = input buffer, param 1 = output buffer,
 * param 2 = n. The input is filled with the ramp 0,1,2,...
 *
 * Usage:
 *   vasm_run <file.vasm> [n] [cta-size] [--vt] [--disasm]
 *
 * Sample kernels live in examples/kernels/.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"

int
main(int argc, char **argv)
try {
    using namespace vtsim;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: vasm_run <file.vasm> [n] [cta-size] [--vt] "
                     "[--disasm]\n");
        return 2;
    }
    const std::string path = argv[1];
    std::uint32_t n = 4096;
    std::uint32_t cta = 64;
    bool vt_on = false, show_disasm = false;
    int positional = 0;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--vt")
            vt_on = true;
        else if (a == "--disasm")
            show_disasm = true;
        else if (positional++ == 0)
            n = std::stoul(a);
        else
            cta = std::stoul(a);
    }

    std::ifstream in(path);
    if (!in)
        VTSIM_FATAL("cannot open '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();

    const Kernel kernel = assemble(text.str());
    std::printf("assembled '%s': %u instructions, %u regs/thread, "
                "%u B shared\n", kernel.name().c_str(), kernel.size(),
                kernel.regsPerThread(), kernel.sharedBytesPerCta());
    if (show_disasm)
        std::printf("%s\n", disassemble(kernel).c_str());

    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = vt_on;
    Gpu gpu(cfg);

    const Addr in_addr = gpu.memory().alloc(std::uint64_t(n) * 4);
    const Addr out_addr = gpu.memory().alloc(std::uint64_t(n) * 4);
    std::vector<std::uint32_t> ramp(n);
    for (std::uint32_t i = 0; i < n; ++i)
        ramp[i] = i;
    gpu.memory().writeWords(in_addr, ramp);

    LaunchParams lp;
    lp.cta = Dim3(cta);
    lp.grid = Dim3(ceilDiv(n, cta));
    lp.params = {std::uint32_t(in_addr), std::uint32_t(out_addr), n};

    const KernelStats stats = gpu.launch(kernel, lp);
    std::printf("ran %llu CTAs in %llu cycles (IPC %.3f, %llu swaps, "
                "vt=%s)\n", (unsigned long long)stats.ctasCompleted,
                (unsigned long long)stats.cycles, stats.ipc,
                (unsigned long long)stats.swapOuts,
                vt_on ? "on" : "off");

    std::printf("out[0..7] =");
    for (std::uint32_t i = 0; i < 8 && i < n; ++i)
        std::printf(" %u", gpu.memory().read32(out_addr + 4 * i));
    std::printf("\n");
    return 0;
} catch (const vtsim::FatalError &e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
}
