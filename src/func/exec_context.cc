#include "func/exec_context.hh"

#include <bit>
#include <cmath>
#include <cstring>
#include <map>

#include "common/log.hh"
#include "func/global_memory.hh"
#include "isa/microcode.hh"

namespace vtsim {

void
CtaFuncState::init(std::uint64_t linear_cta_id, Dim3 cta_idx,
                   std::uint32_t threads_per_cta,
                   std::uint32_t regs_per_thread,
                   std::uint32_t shared_bytes)
{
    linearCtaId = linear_cta_id;
    ctaIdx = cta_idx;
    threadsPerCta = threads_per_cta;
    regsPerThread = regs_per_thread;
    regs.assign(std::size_t(threads_per_cta) * regs_per_thread, 0);
    shared.assign(shared_bytes, 0);
}

std::uint32_t
CtaFuncState::readShared32(std::uint32_t byte_addr) const
{
    // Fast path: a fully in-bounds access is a single 4-byte copy. The
    // 64-bit sum guards against byte_addr + 4 wrapping in 32 bits.
    if (std::uint64_t(byte_addr) + 4 <= shared.size()) {
        if constexpr (std::endian::native == std::endian::little) {
            std::uint32_t v;
            std::memcpy(&v, shared.data() + byte_addr, 4);
            return v;
        }
    }
#ifndef NDEBUG
    VTSIM_ASSERT(byte_addr >= shared.size() ||
                 std::uint64_t(byte_addr) + 4 <= shared.size(),
                 "shared read of 4 bytes at ", byte_addr,
                 " straddles the allocation boundary (", shared.size(),
                 " bytes)");
#endif
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        const std::uint32_t a = byte_addr + i;
        v = (v << 8) | (a < shared.size() ? shared[a] : 0);
    }
    return v;
}

void
CtaFuncState::writeShared32(std::uint32_t byte_addr, std::uint32_t value)
{
    if (std::uint64_t(byte_addr) + 4 <= shared.size()) {
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(shared.data() + byte_addr, &value, 4);
            return;
        }
    }
#ifndef NDEBUG
    VTSIM_ASSERT(byte_addr >= shared.size() ||
                 std::uint64_t(byte_addr) + 4 <= shared.size(),
                 "shared write of 4 bytes at ", byte_addr,
                 " straddles the allocation boundary (", shared.size(),
                 " bytes)");
#endif
    for (int i = 0; i < 4; ++i) {
        const std::uint32_t a = byte_addr + i;
        if (a < shared.size())
            shared[a] = (value >> (8 * i)) & 0xff;
    }
}

namespace {

float
asFloat(std::uint32_t v)
{
    return std::bit_cast<float>(v);
}

std::uint32_t
asBits(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

bool
compare(CmpOp cmp, std::int64_t a, std::int64_t b)
{
    switch (cmp) {
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
    }
    return false;
}

bool
compareF(CmpOp cmp, float a, float b)
{
    switch (cmp) {
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
    }
    return false;
}

std::uint32_t
readSpecial(SpecialReg sreg, std::uint32_t thread, std::uint32_t lane,
            std::uint32_t warp_in_cta, const Dim3 &cta_idx,
            const LaunchParams &launch)
{
    const auto &cta = launch.cta;
    switch (sreg) {
      case SpecialReg::TidX: return thread % cta.x;
      case SpecialReg::TidY: return (thread / cta.x) % cta.y;
      case SpecialReg::TidZ: return thread / (cta.x * cta.y);
      case SpecialReg::NTidX: return cta.x;
      case SpecialReg::NTidY: return cta.y;
      case SpecialReg::NTidZ: return cta.z;
      case SpecialReg::CtaIdX: return cta_idx.x;
      case SpecialReg::CtaIdY: return cta_idx.y;
      case SpecialReg::CtaIdZ: return cta_idx.z;
      case SpecialReg::NCtaIdX: return launch.grid.x;
      case SpecialReg::NCtaIdY: return launch.grid.y;
      case SpecialReg::NCtaIdZ: return launch.grid.z;
      case SpecialReg::LaneId: return lane;
      case SpecialReg::WarpIdInCta: return warp_in_cta;
    }
    return 0;
}

/**
 * The legacy interpreter body, templated over the value-state and
 * global-memory types so the micro-op oracle can run it against
 * copy-on-write overlays (OracleState / OverlayGmem below) without
 * disturbing the real pre-state the micro path is about to consume.
 * The shipping execute() instantiates it with the real types.
 */
template <typename State, typename GMem>
ExecResult
executeImpl(const Instruction &inst, std::uint32_t warp_in_cta,
            ActiveMask mask, State &cta, GMem &gmem,
            const LaunchParams &launch)
{
    ExecResult result;
    const std::uint32_t base_thread = warp_in_cta * warpSize;

    for (std::uint32_t lane = 0; lane < warpSize; ++lane) {
        if (!mask.test(lane))
            continue;
        const std::uint32_t thread = base_thread + lane;
        if (thread >= cta.threadsPerCta)
            continue; // Partial tail warp: lanes beyond the CTA are dead.

        auto rd = [&](int i) -> std::uint32_t {
            return cta.readReg(thread, inst.src[i]);
        };
        // Second ALU operand: register or immediate.
        auto rb = [&]() -> std::uint32_t {
            return inst.useImm ? static_cast<std::uint32_t>(inst.imm)
                               : rd(1);
        };
        auto wr = [&](std::uint32_t v) {
            cta.writeReg(thread, inst.dst, v);
        };

        switch (inst.op) {
          case Opcode::NOP:
            break;
          case Opcode::MOV: wr(rd(0)); break;
          case Opcode::MOVI: wr(static_cast<std::uint32_t>(inst.imm)); break;
          case Opcode::IADD: wr(rd(0) + rb()); break;
          case Opcode::ISUB: wr(rd(0) - rb()); break;
          case Opcode::IMUL: wr(rd(0) * rb()); break;
          case Opcode::IMAD: wr(rd(0) * rd(1) + rd(2)); break;
          case Opcode::IMIN: {
            const auto a = static_cast<std::int32_t>(rd(0));
            const auto b = static_cast<std::int32_t>(rb());
            wr(static_cast<std::uint32_t>(a < b ? a : b));
            break;
          }
          case Opcode::IMAX: {
            const auto a = static_cast<std::int32_t>(rd(0));
            const auto b = static_cast<std::int32_t>(rb());
            wr(static_cast<std::uint32_t>(a > b ? a : b));
            break;
          }
          case Opcode::AND: wr(rd(0) & rb()); break;
          case Opcode::OR: wr(rd(0) | rb()); break;
          case Opcode::XOR: wr(rd(0) ^ rb()); break;
          case Opcode::NOT: wr(~rd(0)); break;
          case Opcode::SHL: wr(rd(0) << (rb() & 31)); break;
          case Opcode::SHR: wr(rd(0) >> (rb() & 31)); break;
          case Opcode::ISETP:
            wr(compare(inst.cmp, static_cast<std::int32_t>(rd(0)),
                       static_cast<std::int32_t>(rb())) ? 1u : 0u);
            break;
          case Opcode::SEL: wr(rd(2) ? rd(0) : rd(1)); break;
          case Opcode::FADD: wr(asBits(asFloat(rd(0)) + asFloat(rb())));
            break;
          case Opcode::FSUB: wr(asBits(asFloat(rd(0)) - asFloat(rb())));
            break;
          case Opcode::FMUL: wr(asBits(asFloat(rd(0)) * asFloat(rb())));
            break;
          case Opcode::FFMA:
            wr(asBits(asFloat(rd(0)) * asFloat(rd(1)) + asFloat(rd(2))));
            break;
          case Opcode::FMIN:
            wr(asBits(std::fmin(asFloat(rd(0)), asFloat(rb()))));
            break;
          case Opcode::FMAX:
            wr(asBits(std::fmax(asFloat(rd(0)), asFloat(rb()))));
            break;
          case Opcode::FSETP:
            wr(compareF(inst.cmp, asFloat(rd(0)),
                        inst.useImm ? asFloat(static_cast<std::uint32_t>(
                                          inst.imm))
                                    : asFloat(rd(1))) ? 1u : 0u);
            break;
          case Opcode::I2F:
            wr(asBits(static_cast<float>(static_cast<std::int32_t>(rd(0)))));
            break;
          case Opcode::F2I:
            wr(static_cast<std::uint32_t>(
                static_cast<std::int32_t>(asFloat(rd(0)))));
            break;
          case Opcode::IDIV: {
            const auto a = static_cast<std::int32_t>(rd(0));
            const auto b = static_cast<std::int32_t>(rb());
            if (b == 0) {
                wr(0u); // GPU semantics: no trap.
            } else if (b == -1) {
                // Defined even for INT_MIN (wraps), unlike C++.
                wr(0u - rd(0));
            } else {
                wr(static_cast<std::uint32_t>(a / b));
            }
            break;
          }
          case Opcode::IREM: {
            const auto a = static_cast<std::int32_t>(rd(0));
            const auto b = static_cast<std::int32_t>(rb());
            if (b == 0 || b == -1)
                wr(0u); // rem by -1 is exactly 0; rem by 0 -> 0.
            else
                wr(static_cast<std::uint32_t>(a % b));
            break;
          }
          case Opcode::FRCP: {
            const float x = asFloat(rd(0));
            wr(asBits(x != 0.0f ? 1.0f / x : 0.0f));
            break;
          }
          case Opcode::FSQRT:
            wr(asBits(std::sqrt(std::fmax(asFloat(rd(0)), 0.0f))));
            break;
          case Opcode::FEXP: wr(asBits(std::exp(asFloat(rd(0))))); break;
          case Opcode::FLOG: {
            const float x = asFloat(rd(0));
            wr(asBits(x > 0.0f ? std::log(x) : 0.0f));
            break;
          }
          case Opcode::S2R:
            wr(readSpecial(inst.sreg, thread, lane, warp_in_cta, cta.ctaIdx,
                           launch));
            break;
          case Opcode::LDP: {
            const auto idx = static_cast<std::uint32_t>(inst.imm);
            VTSIM_ASSERT(idx < launch.params.size(),
                         "LDP index ", idx, " out of range");
            wr(launch.params[idx]);
            break;
          }
          case Opcode::LDG: {
            const Addr addr = rd(0) + inst.imm;
            const std::uint32_t v = gmem.read32(addr);
            wr(v);
            result.globalAccesses.push_back({lane, addr, 0, v});
            break;
          }
          case Opcode::STG: {
            const Addr addr = rd(0) + inst.imm;
            gmem.write32(addr, rd(1));
            result.globalAccesses.push_back({lane, addr, rd(1), 0});
            break;
          }
          case Opcode::ATOMG_ADD: {
            const Addr addr = rd(0) + inst.imm;
            const std::uint32_t old = gmem.read32(addr);
            gmem.write32(addr, old + rd(1));
            wr(old);
            result.globalAccesses.push_back({lane, addr, rd(1), old});
            break;
          }
          case Opcode::LDS: {
            const std::uint32_t addr = rd(0) + inst.imm;
            wr(cta.readShared32(addr));
            result.sharedAccesses.push_back({lane, addr});
            break;
          }
          case Opcode::STS: {
            const std::uint32_t addr = rd(0) + inst.imm;
            cta.writeShared32(addr, rd(1));
            result.sharedAccesses.push_back({lane, addr});
            break;
          }
          case Opcode::BRA:
            // Unconditional (no predicate) or predicate != 0 takes it.
            if (inst.src[0] == noReg || rd(0) != 0)
                result.branchTaken.set(lane);
            break;
          case Opcode::BAR:
          case Opcode::EXIT:
            break; // Handled entirely by the timing model.
          default:
            VTSIM_PANIC("unimplemented opcode ",
                        static_cast<int>(inst.op));
        }
    }
    return result;
}

// ---------------------------------------------------------------------
// Micro-op handlers (the fast path).
//
// The legacy loop above is lane-outside / opcode-switch-inside; the
// handlers invert that: buildMicroProgram resolves the switch once per
// instruction at kernel load, so issue time is a single indirect call
// with a tight active-lane loop inside. Every handler must reproduce
// the legacy semantics bit-exactly — the oracle below checks that per
// instruction in debug builds.
// ---------------------------------------------------------------------

/** Visit every live lane: active in the mask and inside the CTA. The
 *  thread id ascends with the lane, so the first out-of-CTA lane ends
 *  the walk. @p fn receives (lane, thread, reg base pointer). */
template <typename Fn>
inline void
forLanes(const MicroCtx &ctx, Fn &&fn)
{
    std::uint32_t bits = ctx.mask;
    while (bits) {
        const std::uint32_t lane = std::countr_zero(bits);
        bits &= bits - 1;
        const std::uint32_t thread = ctx.baseThread + lane;
        if (thread >= ctx.threadsPerCta)
            return; // Partial tail warp: lanes beyond the CTA are dead.
        fn(lane, thread,
           ctx.regs + std::size_t(thread) * ctx.regsPerThread);
    }
}

void
hNothing(const MicroOp &, MicroCtx &)
{
    // NOP / BAR / EXIT: handled entirely by the timing model.
}

void
hMovi(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t, std::uint32_t, std::uint32_t *r) {
        r[u.dst] = u.imm;
    });
}

/** Single-source ops: MOV, NOT, I2F, F2I, FRCP, FSQRT, FEXP, FLOG. */
template <Opcode Op>
void
hUnary(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t, std::uint32_t, std::uint32_t *r) {
        const std::uint32_t a = r[u.src0];
        std::uint32_t v;
        if constexpr (Op == Opcode::MOV) {
            v = a;
        } else if constexpr (Op == Opcode::NOT) {
            v = ~a;
        } else if constexpr (Op == Opcode::I2F) {
            v = asBits(static_cast<float>(static_cast<std::int32_t>(a)));
        } else if constexpr (Op == Opcode::F2I) {
            v = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(asFloat(a)));
        } else if constexpr (Op == Opcode::FRCP) {
            const float x = asFloat(a);
            v = asBits(x != 0.0f ? 1.0f / x : 0.0f);
        } else if constexpr (Op == Opcode::FSQRT) {
            v = asBits(std::sqrt(std::fmax(asFloat(a), 0.0f)));
        } else if constexpr (Op == Opcode::FEXP) {
            v = asBits(std::exp(asFloat(a)));
        } else {
            static_assert(Op == Opcode::FLOG, "unhandled unary opcode");
            const float x = asFloat(a);
            v = asBits(x > 0.0f ? std::log(x) : 0.0f);
        }
        r[u.dst] = v;
    });
}

/** Two-operand ALU/SFU ops whose second operand is src1 or the folded
 *  immediate, selected at lowering time. */
template <Opcode Op, bool UseImm>
void
hAlu(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t, std::uint32_t, std::uint32_t *r) {
        const std::uint32_t a = r[u.src0];
        const std::uint32_t b = UseImm ? u.imm : r[u.src1];
        std::uint32_t v;
        if constexpr (Op == Opcode::IADD) {
            v = a + b;
        } else if constexpr (Op == Opcode::ISUB) {
            v = a - b;
        } else if constexpr (Op == Opcode::IMUL) {
            v = a * b;
        } else if constexpr (Op == Opcode::IMIN) {
            const auto sa = static_cast<std::int32_t>(a);
            const auto sb = static_cast<std::int32_t>(b);
            v = static_cast<std::uint32_t>(sa < sb ? sa : sb);
        } else if constexpr (Op == Opcode::IMAX) {
            const auto sa = static_cast<std::int32_t>(a);
            const auto sb = static_cast<std::int32_t>(b);
            v = static_cast<std::uint32_t>(sa > sb ? sa : sb);
        } else if constexpr (Op == Opcode::AND) {
            v = a & b;
        } else if constexpr (Op == Opcode::OR) {
            v = a | b;
        } else if constexpr (Op == Opcode::XOR) {
            v = a ^ b;
        } else if constexpr (Op == Opcode::SHL) {
            v = a << (b & 31);
        } else if constexpr (Op == Opcode::SHR) {
            v = a >> (b & 31);
        } else if constexpr (Op == Opcode::FADD) {
            v = asBits(asFloat(a) + asFloat(b));
        } else if constexpr (Op == Opcode::FSUB) {
            v = asBits(asFloat(a) - asFloat(b));
        } else if constexpr (Op == Opcode::FMUL) {
            v = asBits(asFloat(a) * asFloat(b));
        } else if constexpr (Op == Opcode::FMIN) {
            v = asBits(std::fmin(asFloat(a), asFloat(b)));
        } else if constexpr (Op == Opcode::FMAX) {
            v = asBits(std::fmax(asFloat(a), asFloat(b)));
        } else if constexpr (Op == Opcode::IDIV) {
            const auto sa = static_cast<std::int32_t>(a);
            const auto sb = static_cast<std::int32_t>(b);
            if (sb == 0)
                v = 0u; // GPU semantics: no trap.
            else if (sb == -1)
                v = 0u - a; // Defined even for INT_MIN (wraps).
            else
                v = static_cast<std::uint32_t>(sa / sb);
        } else {
            static_assert(Op == Opcode::IREM, "unhandled ALU opcode");
            const auto sa = static_cast<std::int32_t>(a);
            const auto sb = static_cast<std::int32_t>(b);
            if (sb == 0 || sb == -1)
                v = 0u; // rem by -1 is exactly 0; rem by 0 -> 0.
            else
                v = static_cast<std::uint32_t>(sa % sb);
        }
        r[u.dst] = v;
    });
}

void
hImad(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t, std::uint32_t, std::uint32_t *r) {
        r[u.dst] = r[u.src0] * r[u.src1] + r[u.src2];
    });
}

void
hFfma(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t, std::uint32_t, std::uint32_t *r) {
        r[u.dst] = asBits(asFloat(r[u.src0]) * asFloat(r[u.src1]) +
                          asFloat(r[u.src2]));
    });
}

void
hSel(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t, std::uint32_t, std::uint32_t *r) {
        r[u.dst] = r[u.src2] ? r[u.src0] : r[u.src1];
    });
}

template <bool Fp, bool UseImm, CmpOp Cmp>
void
hSetp(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t, std::uint32_t, std::uint32_t *r) {
        const std::uint32_t a = r[u.src0];
        const std::uint32_t b = UseImm ? u.imm : r[u.src1];
        bool taken;
        if constexpr (Fp)
            taken = compareF(Cmp, asFloat(a), asFloat(b));
        else
            taken = compare(Cmp, static_cast<std::int32_t>(a),
                            static_cast<std::int32_t>(b));
        r[u.dst] = taken ? 1u : 0u;
    });
}

template <SpecialReg S>
void
hS2r(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t lane, std::uint32_t thread,
                      std::uint32_t *r) {
        r[u.dst] = readSpecial(S, thread, lane, ctx.warpInCta,
                               ctx.cta->ctaIdx, *ctx.launch);
    });
}

void
hLdp(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t, std::uint32_t, std::uint32_t *r) {
        VTSIM_ASSERT(u.imm < ctx.launch->params.size(),
                     "LDP index ", u.imm, " out of range");
        r[u.dst] = ctx.launch->params[u.imm];
    });
}

void
hLdg(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t lane, std::uint32_t,
                      std::uint32_t *r) {
        // 32-bit address arithmetic (wraps), then zero-extend — exactly
        // the legacy rd(0) + inst.imm promotion.
        const Addr addr = std::uint32_t(r[u.src0] + u.imm);
        const std::uint32_t v = ctx.gmem->read32(addr);
        r[u.dst] = v;
        ctx.out->globalAccesses.push_back({lane, addr, 0, v});
    });
}

void
hStg(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t lane, std::uint32_t,
                      std::uint32_t *r) {
        const Addr addr = std::uint32_t(r[u.src0] + u.imm);
        const std::uint32_t v = r[u.src1];
        ctx.gmem->write32(addr, v);
        ctx.out->globalAccesses.push_back({lane, addr, v, 0});
    });
}

void
hAtomgAdd(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t lane, std::uint32_t,
                      std::uint32_t *r) {
        const Addr addr = std::uint32_t(r[u.src0] + u.imm);
        const std::uint32_t add = r[u.src1];
        const std::uint32_t old = ctx.gmem->read32(addr);
        ctx.gmem->write32(addr, old + add);
        r[u.dst] = old;
        ctx.out->globalAccesses.push_back({lane, addr, add, old});
    });
}

void
hLds(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t lane, std::uint32_t,
                      std::uint32_t *r) {
        const std::uint32_t addr = r[u.src0] + u.imm;
        r[u.dst] = ctx.cta->readShared32(addr);
        ctx.out->sharedAccesses.push_back({lane, addr});
    });
}

void
hSts(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t lane, std::uint32_t,
                      std::uint32_t *r) {
        const std::uint32_t addr = r[u.src0] + u.imm;
        ctx.cta->writeShared32(addr, r[u.src1]);
        ctx.out->sharedAccesses.push_back({lane, addr});
    });
}

void
hBraAll(const MicroOp &, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t lane, std::uint32_t,
                      std::uint32_t *) {
        ctx.out->branchTaken.set(lane);
    });
}

void
hBraCond(const MicroOp &u, MicroCtx &ctx)
{
    forLanes(ctx, [&](std::uint32_t lane, std::uint32_t,
                      std::uint32_t *r) {
        if (r[u.src0] != 0)
            ctx.out->branchTaken.set(lane);
    });
}

// --- Lowering helpers: burn the per-instruction variants into the
// handler choice so issue time never inspects them again. -------------

template <Opcode Op>
MicroHandler
aluFor(bool use_imm)
{
    return use_imm ? &hAlu<Op, true> : &hAlu<Op, false>;
}

template <bool Fp, bool UseImm>
MicroHandler
setpFor(CmpOp cmp)
{
    switch (cmp) {
      case CmpOp::EQ: return &hSetp<Fp, UseImm, CmpOp::EQ>;
      case CmpOp::NE: return &hSetp<Fp, UseImm, CmpOp::NE>;
      case CmpOp::LT: return &hSetp<Fp, UseImm, CmpOp::LT>;
      case CmpOp::LE: return &hSetp<Fp, UseImm, CmpOp::LE>;
      case CmpOp::GT: return &hSetp<Fp, UseImm, CmpOp::GT>;
      case CmpOp::GE: return &hSetp<Fp, UseImm, CmpOp::GE>;
    }
    VTSIM_PANIC("bad comparison operator ", static_cast<int>(cmp));
}

template <bool Fp>
MicroHandler
setpFor(CmpOp cmp, bool use_imm)
{
    return use_imm ? setpFor<Fp, true>(cmp) : setpFor<Fp, false>(cmp);
}

MicroHandler
s2rFor(SpecialReg sreg)
{
    switch (sreg) {
      case SpecialReg::TidX: return &hS2r<SpecialReg::TidX>;
      case SpecialReg::TidY: return &hS2r<SpecialReg::TidY>;
      case SpecialReg::TidZ: return &hS2r<SpecialReg::TidZ>;
      case SpecialReg::NTidX: return &hS2r<SpecialReg::NTidX>;
      case SpecialReg::NTidY: return &hS2r<SpecialReg::NTidY>;
      case SpecialReg::NTidZ: return &hS2r<SpecialReg::NTidZ>;
      case SpecialReg::CtaIdX: return &hS2r<SpecialReg::CtaIdX>;
      case SpecialReg::CtaIdY: return &hS2r<SpecialReg::CtaIdY>;
      case SpecialReg::CtaIdZ: return &hS2r<SpecialReg::CtaIdZ>;
      case SpecialReg::NCtaIdX: return &hS2r<SpecialReg::NCtaIdX>;
      case SpecialReg::NCtaIdY: return &hS2r<SpecialReg::NCtaIdY>;
      case SpecialReg::NCtaIdZ: return &hS2r<SpecialReg::NCtaIdZ>;
      case SpecialReg::LaneId: return &hS2r<SpecialReg::LaneId>;
      case SpecialReg::WarpIdInCta:
        return &hS2r<SpecialReg::WarpIdInCta>;
    }
    VTSIM_PANIC("bad special register ", static_cast<int>(sreg));
}

// --- Oracle overlays: run the legacy interpreter without touching the
// real machine state. -------------------------------------------------

/**
 * CtaFuncState view whose writes land in copy-on-write maps while
 * reads fall through to the real pre-state. Registers are per-thread,
 * so within one instruction a lane never reads another lane's write;
 * shared-memory writes are byte-granular so overlapping STS lanes
 * overwrite each other exactly as the real path does.
 */
struct OracleState
{
    const CtaFuncState &base;
    std::map<std::uint64_t, std::uint32_t> regWrites;
    std::map<std::uint32_t, std::uint8_t> sharedWrites;
    std::uint32_t threadsPerCta;
    Dim3 ctaIdx;

    explicit OracleState(const CtaFuncState &b)
        : base(b), threadsPerCta(b.threadsPerCta), ctaIdx(b.ctaIdx)
    {
    }

    static std::uint64_t
    key(std::uint32_t thread, RegIndex reg)
    {
        return (std::uint64_t(thread) << 16) | reg;
    }

    std::uint32_t
    readReg(std::uint32_t thread, RegIndex reg) const
    {
        const auto it = regWrites.find(key(thread, reg));
        return it != regWrites.end() ? it->second
                                     : base.readReg(thread, reg);
    }

    void
    writeReg(std::uint32_t thread, RegIndex reg, std::uint32_t value)
    {
        regWrites[key(thread, reg)] = value;
    }

    std::uint8_t
    sharedByte(std::uint32_t a) const
    {
        const auto it = sharedWrites.find(a);
        if (it != sharedWrites.end())
            return it->second;
        return a < base.shared.size() ? base.shared[a] : 0;
    }

    std::uint32_t
    readShared32(std::uint32_t byte_addr) const
    {
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | sharedByte(byte_addr + i);
        return v;
    }

    void
    writeShared32(std::uint32_t byte_addr, std::uint32_t value)
    {
        // Out-of-bounds bytes are dropped, like the real path.
        for (int i = 0; i < 4; ++i) {
            const std::uint32_t a = byte_addr + i;
            if (a < base.shared.size())
                sharedWrites[a] = (value >> (8 * i)) & 0xff;
        }
    }
};

/**
 * GlobalMemory view with a byte-granular copy-on-write overlay, so a
 * same-address multi-lane ATOMG_ADD chain accumulates exactly. When
 * the real memory is in defer-writes mode (sharded epochs), the
 * overlay mirrors it — writes dropped, reads stale — because that is
 * exactly what the micro path observes there too.
 */
struct OverlayGmem
{
    const GlobalMemory &base;
    std::map<Addr, std::uint8_t> writes;

    std::uint32_t
    read32(Addr addr) const
    {
        if (base.deferWrites())
            return base.read32(addr);
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i) {
            const Addr a = addr + i;
            const auto it = writes.find(a);
            v = (v << 8) |
                (it != writes.end() ? it->second : base.read8(a));
        }
        return v;
    }

    void
    write32(Addr addr, std::uint32_t value)
    {
        if (base.deferWrites())
            return;
        for (int i = 0; i < 4; ++i)
            writes[addr + i] = (value >> (8 * i)) & 0xff;
    }
};

} // namespace

ExecResult
execute(const Instruction &inst, std::uint32_t warp_in_cta, ActiveMask mask,
        CtaFuncState &cta, GlobalMemory &gmem, const LaunchParams &launch)
{
    return executeImpl(inst, warp_in_cta, mask, cta, gmem, launch);
}

MicroProgram
buildMicroProgram(const std::vector<Instruction> &instrs)
{
    MicroProgram prog;
    prog.reserve(instrs.size());
    for (const Instruction &inst : instrs) {
        MicroOp u;
        u.dst = inst.dst;
        u.src0 = inst.src[0];
        u.src1 = inst.src[1];
        u.src2 = inst.src[2];
        u.imm = static_cast<std::uint32_t>(inst.imm);
        switch (inst.op) {
          case Opcode::NOP:
          case Opcode::BAR:
          case Opcode::EXIT:
            u.fn = &hNothing;
            break;
          case Opcode::MOV: u.fn = &hUnary<Opcode::MOV>; break;
          case Opcode::MOVI: u.fn = &hMovi; break;
          case Opcode::IADD: u.fn = aluFor<Opcode::IADD>(inst.useImm); break;
          case Opcode::ISUB: u.fn = aluFor<Opcode::ISUB>(inst.useImm); break;
          case Opcode::IMUL: u.fn = aluFor<Opcode::IMUL>(inst.useImm); break;
          case Opcode::IMAD: u.fn = &hImad; break;
          case Opcode::IMIN: u.fn = aluFor<Opcode::IMIN>(inst.useImm); break;
          case Opcode::IMAX: u.fn = aluFor<Opcode::IMAX>(inst.useImm); break;
          case Opcode::AND: u.fn = aluFor<Opcode::AND>(inst.useImm); break;
          case Opcode::OR: u.fn = aluFor<Opcode::OR>(inst.useImm); break;
          case Opcode::XOR: u.fn = aluFor<Opcode::XOR>(inst.useImm); break;
          case Opcode::NOT: u.fn = &hUnary<Opcode::NOT>; break;
          case Opcode::SHL: u.fn = aluFor<Opcode::SHL>(inst.useImm); break;
          case Opcode::SHR: u.fn = aluFor<Opcode::SHR>(inst.useImm); break;
          case Opcode::ISETP:
            u.fn = setpFor<false>(inst.cmp, inst.useImm);
            break;
          case Opcode::SEL: u.fn = &hSel; break;
          case Opcode::FADD: u.fn = aluFor<Opcode::FADD>(inst.useImm); break;
          case Opcode::FSUB: u.fn = aluFor<Opcode::FSUB>(inst.useImm); break;
          case Opcode::FMUL: u.fn = aluFor<Opcode::FMUL>(inst.useImm); break;
          case Opcode::FFMA: u.fn = &hFfma; break;
          case Opcode::FMIN: u.fn = aluFor<Opcode::FMIN>(inst.useImm); break;
          case Opcode::FMAX: u.fn = aluFor<Opcode::FMAX>(inst.useImm); break;
          case Opcode::FSETP:
            u.fn = setpFor<true>(inst.cmp, inst.useImm);
            break;
          case Opcode::I2F: u.fn = &hUnary<Opcode::I2F>; break;
          case Opcode::F2I: u.fn = &hUnary<Opcode::F2I>; break;
          case Opcode::IDIV: u.fn = aluFor<Opcode::IDIV>(inst.useImm); break;
          case Opcode::IREM: u.fn = aluFor<Opcode::IREM>(inst.useImm); break;
          case Opcode::FRCP: u.fn = &hUnary<Opcode::FRCP>; break;
          case Opcode::FSQRT: u.fn = &hUnary<Opcode::FSQRT>; break;
          case Opcode::FEXP: u.fn = &hUnary<Opcode::FEXP>; break;
          case Opcode::FLOG: u.fn = &hUnary<Opcode::FLOG>; break;
          case Opcode::S2R: u.fn = s2rFor(inst.sreg); break;
          case Opcode::LDP: u.fn = &hLdp; break;
          case Opcode::LDG: u.fn = &hLdg; break;
          case Opcode::STG: u.fn = &hStg; break;
          case Opcode::ATOMG_ADD: u.fn = &hAtomgAdd; break;
          case Opcode::LDS: u.fn = &hLds; break;
          case Opcode::STS: u.fn = &hSts; break;
          case Opcode::BRA:
            u.fn = inst.src[0] == noReg ? &hBraAll : &hBraCond;
            u.target = inst.branchTarget;
            break;
          default:
            VTSIM_PANIC("buildMicroProgram: unimplemented opcode ",
                        static_cast<int>(inst.op));
        }
        prog.push_back(u);
    }
    return prog;
}

void
executeMicroInto(const MicroProgram &prog, Pc pc,
                 std::uint32_t warp_in_cta, ActiveMask mask,
                 CtaFuncState &cta, GlobalMemory &gmem,
                 const LaunchParams &launch, ExecResult &out)
{
    out.branchTaken = ActiveMask::none();
    out.globalAccesses.clear();
    out.sharedAccesses.clear();
    VTSIM_ASSERT(pc < prog.size(), "micro pc ", pc, " out of range");
    const MicroOp &u = prog[pc];
    MicroCtx ctx{cta.regs.data(),
                 cta.regsPerThread,
                 warp_in_cta * warpSize,
                 cta.threadsPerCta,
                 mask.bits(),
                 warp_in_cta,
                 &cta,
                 &gmem,
                 &launch,
                 &out};
    u.fn(u, ctx);
}

void
executeMicroChecked(const MicroProgram &prog, const Instruction &inst,
                    Pc pc, std::uint32_t warp_in_cta, ActiveMask mask,
                    CtaFuncState &cta, GlobalMemory &gmem,
                    const LaunchParams &launch, ExecResult &out)
{
    // Legacy first, against copy-on-write overlays, so the micro path
    // below still consumes pristine pre-state.
    OracleState oracle(cta);
    OverlayGmem ogmem{gmem};
    const ExecResult want =
        executeImpl(inst, warp_in_cta, mask, oracle, ogmem, launch);

    executeMicroInto(prog, pc, warp_in_cta, mask, cta, gmem, launch, out);

    if (want.branchTaken != out.branchTaken ||
        want.globalAccesses != out.globalAccesses ||
        want.sharedAccesses != out.sharedAccesses) {
        VTSIM_FATAL("micro-op oracle: ExecResult diverges at pc ", pc,
                    " (", toString(inst.op), "): legacy taken ",
                    want.branchTaken.toString(), " / ",
                    want.globalAccesses.size(), " global / ",
                    want.sharedAccesses.size(), " shared, micro taken ",
                    out.branchTaken.toString(), " / ",
                    out.globalAccesses.size(), " global / ",
                    out.sharedAccesses.size(), " shared");
    }
    for (const auto &[key, value] : oracle.regWrites) {
        const auto thread = static_cast<std::uint32_t>(key >> 16);
        const auto reg = static_cast<RegIndex>(key & 0xffff);
        const std::uint32_t got = cta.readReg(thread, reg);
        if (got != value) {
            VTSIM_FATAL("micro-op oracle: pc ", pc, " (",
                        toString(inst.op), ") thread ", thread, " r",
                        reg, ": legacy wrote ", value,
                        ", micro state has ", got);
        }
    }
    for (const auto &[addr, byte] : oracle.sharedWrites) {
        if (cta.shared[addr] != byte) {
            VTSIM_FATAL("micro-op oracle: pc ", pc, " (",
                        toString(inst.op), ") shared[", addr,
                        "]: legacy wrote ", unsigned(byte),
                        ", micro state has ", unsigned(cta.shared[addr]));
        }
    }
    for (const auto &[addr, byte] : ogmem.writes) {
        if (gmem.read8(addr) != byte) {
            VTSIM_FATAL("micro-op oracle: pc ", pc, " (",
                        toString(inst.op), ") gmem[", addr,
                        "]: legacy wrote ", unsigned(byte),
                        ", micro state has ", unsigned(gmem.read8(addr)));
        }
    }
}

} // namespace vtsim
