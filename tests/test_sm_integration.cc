/**
 * @file
 * Integration tests: small kernels through the full Gpu (SMs + NoC + L2 +
 * DRAM), checking functional results and timing-model sanity.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "test_util.hh"

namespace vtsim {
namespace {

using test::smallConfig;
using test::smallVtConfig;

TEST(SmIntegration, StoreConstant)
{
    Gpu gpu(smallConfig());
    const Kernel k = test::storeConstKernel();
    const Addr out = gpu.memory().alloc(100 * 4);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(2);
    lp.params = {std::uint32_t(out), 100, 0xabcd};
    const KernelStats stats = gpu.launch(k, lp);
    for (std::uint32_t i = 0; i < 100; ++i)
        ASSERT_EQ(gpu.memory().read32(out + 4 * i), 0xabcdu) << i;
    // Lanes past n==100 must not have stored.
    EXPECT_EQ(gpu.memory().read32(out + 4 * 100), 0u);
    EXPECT_EQ(stats.ctasCompleted, 2u);
    EXPECT_GT(stats.cycles, 0u);
}

TEST(SmIntegration, LoadComputeStore)
{
    Gpu gpu(smallConfig());
    const Kernel k = test::mul3Add7Kernel();
    const std::uint32_t n = 256;
    const Addr in = gpu.memory().alloc(n * 4);
    const Addr out = gpu.memory().alloc(n * 4);
    for (std::uint32_t i = 0; i < n; ++i)
        gpu.memory().write32(in + 4 * i, i);
    LaunchParams lp;
    lp.cta = Dim3(128);
    lp.grid = Dim3(2);
    lp.params = {std::uint32_t(in), std::uint32_t(out), n};
    gpu.launch(k, lp);
    for (std::uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(gpu.memory().read32(out + 4 * i), i * 3 + 7) << i;
}

TEST(SmIntegration, DivergentBranchBothSidesExecute)
{
    // Even gids write 1, odd gids write 2.
    const Kernel k = assemble(R"(
.kernel evenodd
    ldp r0, 0
    s2r r1, ctaid.x
    s2r r2, ntid.x
    s2r r3, tid.x
    imad r4, r1, r2, r3
    and r5, r4, 1
    shl r6, r4, 2
    iadd r6, r6, r0
    bra r5, odd, join=fin
    movi r7, 1
    stg [r6], r7
    jmp fin
odd:
    movi r7, 2
    stg [r6], r7
fin:
    exit
)");
    Gpu gpu(smallConfig());
    const Addr out = gpu.memory().alloc(64 * 4);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(out)};
    gpu.launch(k, lp);
    for (std::uint32_t i = 0; i < 64; ++i)
        ASSERT_EQ(gpu.memory().read32(out + 4 * i), 1u + (i & 1)) << i;
}

TEST(SmIntegration, LoopWithDifferentTripCounts)
{
    // out[gid] = sum of 1..(gid%5 + 1); per-lane trip counts diverge.
    const Kernel k = assemble(R"(
.kernel trips
    ldp r0, 0
    s2r r1, tid.x
    irem r2, r1, 5
    iadd r2, r2, 1      # trips = gid%5 + 1
    movi r3, 0          # acc
    movi r4, 1          # i
loop:
    iadd r3, r3, r4
    iadd r4, r4, 1
    isetp.le r5, r4, r2
    bra r5, loop
    shl r6, r1, 2
    iadd r6, r6, r0
    stg [r6], r3
    exit
)");
    Gpu gpu(smallConfig());
    const Addr out = gpu.memory().alloc(32 * 4);
    LaunchParams lp;
    lp.cta = Dim3(32);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(out)};
    gpu.launch(k, lp);
    for (std::uint32_t i = 0; i < 32; ++i) {
        const std::uint32_t t = i % 5 + 1;
        ASSERT_EQ(gpu.memory().read32(out + 4 * i), t * (t + 1) / 2) << i;
    }
}

TEST(SmIntegration, BarrierOrdersSharedMemory)
{
    // Thread i writes shared[i]; after the barrier, reads shared[ntid-1-i].
    const Kernel k = assemble(R"(
.kernel shreverse
.shared 256
    ldp r0, 0
    s2r r1, tid.x
    s2r r2, ntid.x
    shl r3, r1, 2
    sts [r3], r1
    bar
    isub r4, r2, 1
    isub r4, r4, r1      # ntid-1-i
    shl r5, r4, 2
    lds r6, [r5]
    shl r7, r1, 2
    iadd r7, r7, r0
    stg [r7], r6
    exit
)");
    Gpu gpu(smallConfig());
    const Addr out = gpu.memory().alloc(64 * 4);
    LaunchParams lp;
    lp.cta = Dim3(64); // 2 warps: barrier genuinely orders them
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(out)};
    gpu.launch(k, lp);
    for (std::uint32_t i = 0; i < 64; ++i)
        ASSERT_EQ(gpu.memory().read32(out + 4 * i), 63 - i) << i;
}

TEST(SmIntegration, AtomicsAccumulateAcrossCtas)
{
    const Kernel k = assemble(R"(
.kernel atominc
    ldp r0, 0
    movi r1, 1
    atomg.add r2, [r0], r1
    exit
)");
    Gpu gpu(smallConfig());
    const Addr counter = gpu.memory().alloc(4);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(4);
    lp.params = {std::uint32_t(counter)};
    gpu.launch(k, lp);
    EXPECT_EQ(gpu.memory().read32(counter), 256u);
}

TEST(SmIntegration, TailWarpPartialLanes)
{
    Gpu gpu(smallConfig());
    const Kernel k = test::storeConstKernel();
    const Addr out = gpu.memory().alloc(50 * 4);
    LaunchParams lp;
    lp.cta = Dim3(40); // warp 1 has only 8 live lanes
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(out), 40, 7};
    const auto stats = gpu.launch(k, lp);
    for (std::uint32_t i = 0; i < 40; ++i)
        ASSERT_EQ(gpu.memory().read32(out + 4 * i), 7u);
    EXPECT_EQ(gpu.memory().read32(out + 4 * 40), 0u);
    EXPECT_EQ(stats.ctasCompleted, 1u);
}

TEST(SmIntegration, InstructionCountExact)
{
    // store_const is 13 instructions; with n == all threads the guard
    // branch never diverges, so every warp executes all 13.
    Gpu gpu(smallConfig());
    const Kernel k = test::storeConstKernel();
    const Addr out = gpu.memory().alloc(64 * 4);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(out), 64, 1};
    const auto stats = gpu.launch(k, lp);
    EXPECT_EQ(stats.warpInstructions, 2u * 13u);
    EXPECT_EQ(stats.threadInstructions, 64u * 13u);
}

TEST(SmIntegration, MultiKernelLaunchesAccumulate)
{
    Gpu gpu(smallConfig());
    const Kernel k = test::storeConstKernel();
    const Addr out = gpu.memory().alloc(64 * 4);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(out), 64, 5};
    const auto s1 = gpu.launch(k, lp);
    lp.params[2] = 9;
    const auto s2 = gpu.launch(k, lp);
    EXPECT_EQ(gpu.memory().read32(out), 9u);
    EXPECT_EQ(s1.ctasCompleted, 1u);
    EXPECT_EQ(s2.ctasCompleted, 1u);
    EXPECT_GT(gpu.totalCycles(), s2.cycles);
}

TEST(SmIntegration, WatchdogCatchesInfiniteLoop)
{
    const Kernel k = assemble(R"(
.kernel spin
top:
    iadd r0, r0, 1
    jmp top
    exit            # unreachable; satisfies the static verifier
)");
    GpuConfig cfg = smallConfig();
    cfg.maxCycles = 5000;
    Gpu gpu(cfg);
    LaunchParams lp;
    lp.cta = Dim3(32);
    lp.grid = Dim3(1);
    EXPECT_THROW(gpu.launch(k, lp), FatalError);
}

TEST(SmIntegration, EmptyGridRejected)
{
    Gpu gpu(smallConfig());
    const Kernel k = test::storeConstKernel();
    LaunchParams lp;
    lp.cta = Dim3(32);
    lp.grid.x = 0;
    lp.params = {0, 0, 0};
    EXPECT_THROW(gpu.launch(k, lp), FatalError);
}

TEST(SmIntegration, OversizedCtaRejected)
{
    Gpu gpu(smallConfig());
    const Kernel k = test::storeConstKernel();
    LaunchParams lp;
    lp.cta = Dim3(2048); // > 1536 thread slots
    lp.grid = Dim3(1);
    lp.params = {0, 0, 0};
    EXPECT_THROW(gpu.launch(k, lp), FatalError);
}

TEST(SmIntegration, SfuOpsExecute)
{
    const Kernel k = assemble(R"(
.kernel sfu
    ldp r0, 0
    s2r r1, tid.x
    iadd r2, r1, 1
    i2f r3, r2
    fsqrt r4, r3
    fmul r5, r4, r4
    f2i r6, r5
    shl r7, r1, 2
    iadd r7, r7, r0
    stg [r7], r6
    exit
)");
    Gpu gpu(smallConfig());
    const Addr out = gpu.memory().alloc(32 * 4);
    LaunchParams lp;
    lp.cta = Dim3(32);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(out)};
    gpu.launch(k, lp);
    // sqrt(i+1)^2 truncates back to ~i+1 (allow 1 off for fp rounding).
    for (std::uint32_t i = 0; i < 32; ++i) {
        const auto v = static_cast<std::int32_t>(
            gpu.memory().read32(out + 4 * i));
        EXPECT_NEAR(v, static_cast<std::int32_t>(i + 1), 1) << i;
    }
}

TEST(SmIntegration, CachesWarmAcrossLaunchesUnlessFlushed)
{
    Gpu gpu(smallConfig());
    const Kernel k = test::mul3Add7Kernel();
    const std::uint32_t n = 256;
    const Addr in = gpu.memory().alloc(n * 4);
    const Addr out = gpu.memory().alloc(n * 4);
    LaunchParams lp;
    lp.cta = Dim3(128);
    lp.grid = Dim3(2);
    lp.params = {std::uint32_t(in), std::uint32_t(out), n};
    const auto cold = gpu.launch(k, lp);
    const auto warm = gpu.launch(k, lp);
    EXPECT_GT(warm.l1Hits + warm.l2Hits, cold.l1Hits + cold.l2Hits);
    gpu.flushCaches();
    const auto flushed = gpu.launch(k, lp);
    EXPECT_LT(flushed.l1HitRate(), warm.l1HitRate() + 1e-9);
}

} // namespace
} // namespace vtsim
