#include "parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>

#include "common/log.hh"
#include "common/trace.hh"

namespace vtsim::bench {

namespace {

unsigned
clampJobs(long n)
{
    return n < 1 ? 1u : static_cast<unsigned>(n);
}

/** Shortest round-trippable decimal form of @p v. */
std::string
jsonDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char probe[40];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(probe, "%lf", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

} // namespace

unsigned
resolveJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            return clampJobs(std::atol(argv[i + 1]));
        if (arg.substr(0, 7) == "--jobs=")
            return clampJobs(std::atol(argv[i] + 7));
    }
    if (const char *env = std::getenv("VTSIM_JOBS"))
        return clampJobs(std::atol(env));
    return clampJobs(std::thread::hardware_concurrency());
}

std::vector<RunResult>
runAll(const std::vector<RunSpec> &specs, unsigned jobs)
{
    std::vector<RunResult> results(specs.size());
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    const auto worker = [&] {
        // One Gpu arena per worker thread: reset() and reused while
        // consecutive runs share a GpuConfig (the common case — figure
        // binaries sweep workloads per config), reconstructed when the
        // config changes. Reuse is bit-identical to a fresh Gpu by the
        // SimComponent reset() contract.
        std::unique_ptr<Gpu> arena;
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= specs.size())
                return;
            try {
                const RunSpec &spec = specs[i];
                if (arena && arena->config() == spec.config)
                    arena->reset();
                else
                    arena = std::make_unique<Gpu>(spec.config);
                results[i] = runWorkloadOn(*arena, spec.workload,
                                           spec.scale, i);
            } catch (...) {
                arena.reset(); // Never reuse a mid-launch arena.
                const std::lock_guard<std::mutex> guard(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    const auto start = std::chrono::steady_clock::now();
    unsigned pool_size = static_cast<unsigned>(
        std::min<std::size_t>(jobs, specs.size()));
    if (pool_size > 1 && Trace::instance().anyEnabled()) {
        // The textual Trace sink is process-global and unsynchronized
        // (trace.hh); concurrent Gpus would interleave its lines.
        std::fprintf(stderr, "[parallel-runner] global trace sink "
                             "enabled; forcing jobs=1\n");
        pool_size = 1;
    }
    if (pool_size <= 1) {
        worker(); // Sequential: no threads, easiest to debug.
    } else {
        std::vector<std::thread> pool;
        pool.reserve(pool_size);
        for (unsigned t = 0; t < pool_size; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    if (first_error)
        std::rethrow_exception(first_error);

    std::uint64_t cycles = 0;
    std::uint64_t thread_instructions = 0;
    for (const RunResult &r : results) {
        cycles += r.stats.cycles;
        thread_instructions += r.stats.threadInstructions;
    }
    const double safe_wall = wall > 0.0 ? wall : 1e-9;
    std::fprintf(stderr,
                 "[parallel-runner] %zu runs, jobs=%u: wall %.3fs, "
                 "%.1f Kcyc/s, %.2f MIPS\n",
                 specs.size(), pool_size ? pool_size : 1, wall,
                 cycles / safe_wall / 1e3,
                 thread_instructions / safe_wall / 1e6);
    return results;
}

std::vector<RunResult>
runAll(const std::vector<RunSpec> &specs, int argc, char **argv)
{
    setTelemetryOptions(parseTelemetryArgs(argc, argv));
    auto results = runAll(specs, resolveJobs(argc, argv));
    const TelemetryOptions &opts = telemetryOptions();
    if (!opts.statsJsonPath.empty())
        writeStatsJson(opts.statsJsonPath, specs, results);
    return results;
}

void
writeStatsJson(const std::string &path,
               const std::vector<RunSpec> &specs,
               const std::vector<RunResult> &results)
{
    VTSIM_ASSERT(specs.size() == results.size(),
                 "stats JSON with mismatched specs/results");
    std::ofstream os(path);
    if (!os)
        VTSIM_FATAL("cannot open stats-json file '", path, "'");

    os << "{\n  \"schema\": \"vtsim-stats-v1\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunSpec &spec = specs[i];
        const RunResult &r = results[i];
        const KernelStats &s = r.stats;
        os << "    {\n"
           << "      \"workload\": \"" << r.workload << "\",\n"
           << "      \"scale\": " << spec.scale << ",\n"
           << "      \"config\": {"
           << "\"num_sms\": " << spec.config.numSms
           << ", \"vt_enabled\": "
           << (spec.config.vtEnabled ? "true" : "false")
           << ", \"throttle_enabled\": "
           << (spec.config.throttleEnabled ? "true" : "false")
           << ", \"fast_forward\": "
           << (spec.config.fastForwardEnabled ? "true" : "false")
           << "},\n"
           << "      \"verified\": " << (r.verified ? "true" : "false")
           << ",\n"
           << "      \"wall_seconds\": " << jsonDouble(r.wallSeconds)
           << ",\n"
           << "      \"kcycles_per_sec\": " << jsonDouble(r.kcyclesPerSec())
           << ",\n"
           << "      \"mips\": " << jsonDouble(r.mips()) << ",\n"
           << "      \"max_simt_depth\": " << r.maxSimtDepth << ",\n"
           << "      \"stats\": {\n"
           << "        \"cycles\": " << s.cycles << ",\n"
           << "        \"ipc\": " << jsonDouble(s.ipc) << ",\n"
           << "        \"warp_instructions\": " << s.warpInstructions
           << ",\n"
           << "        \"thread_instructions\": " << s.threadInstructions
           << ",\n"
           << "        \"ctas_completed\": " << s.ctasCompleted << ",\n"
           << "        \"l1_hits\": " << s.l1Hits << ",\n"
           << "        \"l1_misses\": " << s.l1Misses << ",\n"
           << "        \"l2_hits\": " << s.l2Hits << ",\n"
           << "        \"l2_misses\": " << s.l2Misses << ",\n"
           << "        \"dram_row_hits\": " << s.dramRowHits << ",\n"
           << "        \"dram_row_misses\": " << s.dramRowMisses << ",\n"
           << "        \"dram_bytes\": " << s.dramBytes << ",\n"
           << "        \"swap_outs\": " << s.swapOuts << ",\n"
           << "        \"swap_ins\": " << s.swapIns << ",\n"
           << "        \"stalls\": {"
           << "\"issued\": " << s.stalls.issued
           << ", \"mem\": " << s.stalls.memStall
           << ", \"short\": " << s.stalls.shortStall
           << ", \"barrier\": " << s.stalls.barrierStall
           << ", \"swap\": " << s.stalls.swapStall
           << ", \"idle\": " << s.stalls.idle << "}\n"
           << "      },\n"
           << "      \"intervals\": [";
        // The interval series is JSONL — one object per line, already
        // valid JSON: embed the lines as array elements.
        bool first_line = true;
        std::istringstream lines(r.intervalSeries);
        std::string line;
        while (std::getline(lines, line)) {
            if (line.empty())
                continue;
            os << (first_line ? "\n        " : ",\n        ") << line;
            first_line = false;
        }
        os << (first_line ? "]" : "\n      ]") << "\n    }"
           << (i + 1 < results.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

} // namespace vtsim::bench
