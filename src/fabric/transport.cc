#include "fabric/transport.hh"

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace vtsim::fabric {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw TransportError(what + ": " + std::strerror(errno));
}

void
setIoTimeout(int fd, int timeout_ms)
{
    if (timeout_ms <= 0)
        return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

sockaddr_in
toSockaddr(const HostPort &addr)
{
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
        // "localhost" is the one name worth resolving without pulling
        // in a resolver; everything else must be a dotted quad.
        if (addr.host == "localhost") {
            sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        } else {
            throw TransportError("bad IPv4 address '" + addr.host +
                                 "' (use a dotted quad or localhost)");
        }
    }
    return sa;
}

} // namespace

HostPort
parseHostPort(const std::string &text)
{
    HostPort out;
    std::string port_text = text;
    const std::size_t colon = text.rfind(':');
    if (colon != std::string::npos) {
        if (colon > 0)
            out.host = text.substr(0, colon);
        port_text = text.substr(colon + 1);
    }
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos)
        throw TransportError("bad port in '" + text + "'");
    const unsigned long port = std::stoul(port_text);
    if (port > 65535)
        throw TransportError("port out of range in '" + text + "'");
    out.port = std::uint16_t(port);
    return out;
}

int
listenTcp(const HostPort &addr)
{
    const sockaddr_in sa = toSockaddr(addr);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fail("socket()");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&sa),
               sizeof(sa)) != 0) {
        const std::string msg = "bind('" + addr.str() + "')";
        ::close(fd);
        fail(msg);
    }
    if (::listen(fd, 64) != 0) {
        const std::string msg = "listen('" + addr.str() + "')";
        ::close(fd);
        fail(msg);
    }
    return fd;
}

int
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw TransportError("socket path too long: '" + path + "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fail("socket()");
    // A stale socket file from a crashed daemon would fail the bind.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const std::string msg = "bind('" + path + "')";
        ::close(fd);
        fail(msg);
    }
    if (::listen(fd, 64) != 0) {
        const std::string msg = "listen('" + path + "')";
        ::close(fd);
        fail(msg);
    }
    return fd;
}

std::uint16_t
boundPort(int listen_fd)
{
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&sa),
                      &len) != 0)
        fail("getsockname()");
    return ntohs(sa.sin_port);
}

int
connectTcp(const HostPort &addr, int timeout_ms, int io_timeout_ms)
{
    const sockaddr_in sa = toSockaddr(addr);
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0)
        fail("socket()");
    const auto refuse = [&](const std::string &why) -> int {
        ::close(fd);
        throw TransportError("cannot connect to " + addr.str() + ": " +
                             why);
    };
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&sa),
                  sizeof(sa)) != 0) {
        if (errno != EINPROGRESS)
            return refuse(std::strerror(errno));
        pollfd pfd{fd, POLLOUT, 0};
        int rc;
        do {
            rc = ::poll(&pfd, 1, timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc == 0)
            return refuse("connect timed out");
        if (rc < 0)
            return refuse(std::strerror(errno));
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0)
            return refuse(std::strerror(err ? err : errno));
    }
    // Back to blocking: reads/writes are bounded by SO_*TIMEO instead.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    setIoTimeout(fd, io_timeout_ms);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw TransportError("socket path too long: '" + path + "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fail("socket()");
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throw TransportError("cannot connect to vtsimd at '" + path +
                             "': " + std::strerror(err));
    }
    return fd;
}

bool
sendLine(int fd, std::string line)
{
    line.push_back('\n');
    std::size_t off = 0;
    while (off < line.size()) {
        // MSG_NOSIGNAL: a peer that hung up must cost us an EPIPE,
        // not a process-wide SIGPIPE.
        const ssize_t n = ::send(fd, line.data() + off,
                                 line.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += std::size_t(n);
    }
    return true;
}

bool
LineReader::readLine(std::string &out)
{
    char chunk[4096];
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            out = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            if (!out.empty() && out.back() == '\r')
                out.pop_back();
            return true;
        }
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                throw TransportError("read timed out");
            throw TransportError(std::string("recv(): ") +
                                 std::strerror(errno));
        }
        if (n == 0)
            return false; // Peer hung up between lines.
        buffer_.append(chunk, std::size_t(n));
    }
}

namespace {
constexpr char kB64[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
} // namespace

std::string
base64Encode(const std::uint8_t *data, std::size_t size)
{
    std::string out;
    out.reserve((size + 2) / 3 * 4);
    std::size_t i = 0;
    for (; i + 3 <= size; i += 3) {
        const std::uint32_t v = std::uint32_t(data[i]) << 16 |
                                std::uint32_t(data[i + 1]) << 8 |
                                data[i + 2];
        out.push_back(kB64[v >> 18]);
        out.push_back(kB64[(v >> 12) & 63]);
        out.push_back(kB64[(v >> 6) & 63]);
        out.push_back(kB64[v & 63]);
    }
    if (i + 1 == size) {
        const std::uint32_t v = std::uint32_t(data[i]) << 16;
        out.push_back(kB64[v >> 18]);
        out.push_back(kB64[(v >> 12) & 63]);
        out.append("==");
    } else if (i + 2 == size) {
        const std::uint32_t v = std::uint32_t(data[i]) << 16 |
                                std::uint32_t(data[i + 1]) << 8;
        out.push_back(kB64[v >> 18]);
        out.push_back(kB64[(v >> 12) & 63]);
        out.push_back(kB64[(v >> 6) & 63]);
        out.push_back('=');
    }
    return out;
}

std::string
base64Encode(const std::vector<std::uint8_t> &data)
{
    return base64Encode(data.data(), data.size());
}

std::vector<std::uint8_t>
base64Decode(const std::string &text)
{
    if (text.size() % 4 != 0)
        throw TransportError("base64 length not a multiple of 4");
    static const auto value = [] {
        std::array<std::int8_t, 256> table{};
        table.fill(-1);
        for (int i = 0; i < 64; ++i)
            table[std::uint8_t(kB64[i])] = std::int8_t(i);
        return table;
    }();
    std::vector<std::uint8_t> out;
    out.reserve(text.size() / 4 * 3);
    for (std::size_t i = 0; i < text.size(); i += 4) {
        int pad = 0;
        std::uint32_t v = 0;
        for (int j = 0; j < 4; ++j) {
            const char c = text[i + j];
            if (c == '=') {
                // Padding legal only in the final two positions of the
                // final quad.
                if (i + 4 != text.size() || j < 2)
                    throw TransportError("base64 padding misplaced");
                ++pad;
                v <<= 6;
                continue;
            }
            if (pad > 0 || value[std::uint8_t(c)] < 0)
                throw TransportError("bad base64 character");
            v = v << 6 | std::uint32_t(value[std::uint8_t(c)]);
        }
        out.push_back(std::uint8_t(v >> 16));
        if (pad < 2)
            out.push_back(std::uint8_t(v >> 8));
        if (pad < 1)
            out.push_back(std::uint8_t(v));
    }
    return out;
}

} // namespace vtsim::fabric
