/**
 * @file
 * One memory partition: an L2 slice fronting a DRAM channel. Requests
 * arrive from the interconnect, responses leave through it.
 */

#ifndef VTSIM_MEM_MEMORY_PARTITION_HH
#define VTSIM_MEM_MEMORY_PARTITION_HH

#include <deque>
#include <queue>

#include "config/gpu_config.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mem_request.hh"
#include "sim/sim_component.hh"

namespace vtsim::telemetry {
class StatRegistry;
class TraceJsonWriter;
}

namespace vtsim {

class Interconnect;

class MemoryPartition : public SimComponent
{
  public:
    MemoryPartition(std::uint32_t id, const GpuConfig &config,
                    Interconnect &noc);

    /** Accept a request delivered by the interconnect. */
    void receive(const MemRequest &req, Cycle now);

    /** Advance one cycle: service the input queue and DRAM completions. */
    void tick(Cycle now) override;

    /** True when no work is queued or in flight. */
    bool idle() const;

    /**
     * Earliest cycle >= @p now at which tick() might act: pending input
     * requests (next tick), matured responses, or DRAM activity.
     * neverCycle when nothing is pending.
     */
    Cycle nextEventCycle(Cycle now) override;

    // SimComponent lifecycle. No settleTo: the partition keeps no
    // per-cycle statistics, so skipped cycles need no accounting.
    void reset() override;
    void save(Serializer &ser) const override;
    void restore(Deserializer &des) override;

    /** Invalidate the L2 slice (kernel boundary). */
    void flushCaches()
    {
        ffHorizon_ = 0;
        l2_.flush();
    }

    Cache &l2() { return l2_; }
    Dram &dram() { return dram_; }

    /** Flatten the L2 slice's and DRAM channel's stat groups into
     *  @p reg and tag the probes that feed KernelStats. */
    void registerTelemetry(telemetry::StatRegistry &reg);

    /** Route DRAM command events to a per-Gpu Perfetto writer under
     *  process id @p pid; null disables. */
    void setTraceJson(telemetry::TraceJsonWriter *writer, std::uint32_t pid)
    { dram_.setTraceJson(writer, pid); }

  private:
    void serviceRequest(const MemRequest &req, Cycle now);

    std::uint32_t id_;
    const GpuConfig &config_;
    Interconnect &noc_;
    Cache l2_;
    Dram dram_;

    std::deque<MemRequest> input_;

    /** Lazy-tick horizon: while now < ffHorizon_ and no request arrives,
     *  tick() is a provable no-op and returns immediately. Unlike the
     *  SM's lazy window this needs no deferred accounting — the
     *  partition keeps no per-cycle statistics. */
    Cycle ffHorizon_ = 0;

    struct PendingResponse
    {
        Cycle readyAt;
        MemRequest req;
        /** Total order (see LdstUnit::HitCompletion): (srcSm, token)
         *  uniquely identifies a transaction, so same-cycle ties pop
         *  identically in an uninterrupted and a restored run. */
        bool operator>(const PendingResponse &o) const
        {
            if (readyAt != o.readyAt)
                return readyAt > o.readyAt;
            if (req.srcSm != o.req.srcSm)
                return req.srcSm > o.req.srcSm;
            return req.token > o.req.token;
        }
    };
    std::priority_queue<PendingResponse, std::vector<PendingResponse>,
                        std::greater<>> respPending_;
};

} // namespace vtsim

#endif // VTSIM_MEM_MEMORY_PARTITION_HH
