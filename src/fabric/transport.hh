/**
 * @file
 * Socket-level plumbing of the distributed vtsim fabric: TCP and
 * Unix-domain listeners/connectors with explicit timeouts, plus the
 * base64 codec the checkpoint-migration protocol uses to ship
 * vtsim-ckpt-v1 images inside NDJSON lines.
 *
 * Everything here is transport, not protocol: bytes and file
 * descriptors in, no JSON knowledge. The NDJSON framing (line split,
 * 64 KiB request cap, bearer-token check) lives one layer up in
 * fabric/line_server.hh, shared by the vtsimd daemon and the
 * vtsim-coord coordinator.
 *
 * Timeout contract: every connect and read takes a millisecond budget
 * and throws TransportError when it runs out — a dead peer must cost
 * the caller a bounded wait, never a wedged loop. Writes inherit the
 * same bound through SO_SNDTIMEO.
 */

#ifndef VTSIM_FABRIC_TRANSPORT_HH
#define VTSIM_FABRIC_TRANSPORT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace vtsim::fabric {

/** A socket-layer failure (refused, reset, timed out, bad address). */
class TransportError : public std::runtime_error
{
  public:
    explicit TransportError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** "host:port" split; host defaults to 127.0.0.1 for a bare ":port"
 *  or "port". Throws TransportError on a malformed port. */
struct HostPort
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    std::string str() const
    { return host + ":" + std::to_string(port); }
};

HostPort parseHostPort(const std::string &text);

/**
 * Bind and listen on @p addr (IPv4, SO_REUSEADDR). Port 0 binds an
 * ephemeral port; read it back with boundPort(). Returns the listening
 * fd; throws TransportError on failure.
 */
int listenTcp(const HostPort &addr);

/** Bind and listen on a Unix-domain socket path (stale file removed
 *  first). Returns the listening fd; throws TransportError. */
int listenUnix(const std::string &path);

/** The local port a listening TCP fd actually bound (ephemeral
 *  resolution). Throws TransportError. */
std::uint16_t boundPort(int listen_fd);

/**
 * Connect to @p addr within @p timeout_ms (non-blocking connect +
 * poll). The returned fd carries SO_RCVTIMEO/SO_SNDTIMEO of
 * @p io_timeout_ms so later reads and writes are bounded too.
 * Throws TransportError (message names the errno) on failure.
 */
int connectTcp(const HostPort &addr, int timeout_ms,
               int io_timeout_ms);

/** Connect to a Unix-domain socket path; throws TransportError. */
int connectUnix(const std::string &path);

/**
 * Send @p line plus a trailing newline, whole (MSG_NOSIGNAL, EINTR
 * retried). False on a peer that hung up or a send timeout.
 */
bool sendLine(int fd, std::string line);

/**
 * Buffered newline-delimited reader over one fd. readLine() blocks up
 * to the fd's SO_RCVTIMEO (set by connectTcp; unbounded on fds that
 * did not opt in) and throws TransportError on timeout — EOF is
 * reported as false, not an exception, because a peer closing between
 * requests is normal.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** Next line into @p out (newline stripped); false on EOF. */
    bool readLine(std::string &out);

  private:
    int fd_;
    std::string buffer_;
};

/** RFC 4648 base64 (with padding) — checkpoint chunks in JSON. */
std::string base64Encode(const std::uint8_t *data, std::size_t size);
std::string base64Encode(const std::vector<std::uint8_t> &data);

/** Strict decode: rejects bad characters, bad padding, bad length.
 *  Throws TransportError — corrupt migration data must fail loudly. */
std::vector<std::uint8_t> base64Decode(const std::string &text);

} // namespace vtsim::fabric

#endif // VTSIM_FABRIC_TRANSPORT_HH
