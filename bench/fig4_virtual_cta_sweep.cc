/**
 * @file
 * FIG-4 (sensitivity): speedup versus the virtual-CTA budget per SM,
 * from the scheduling limit (8 = baseline-equivalent) up to
 * capacity-bound admission. Expected shape: grows, then saturates when
 * either capacity or the workload's latency-hiding demand is met.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-4", "speedup vs. virtual-CTA budget per SM");
    const GpuConfig base = GpuConfig::fermiLike();
    const std::uint32_t budgets[] = {8, 12, 16, 24, 32, 0 /* capacity */};
    const char *subset[] = {"vecadd", "saxpy", "reduce", "stencil",
                            "histogram", "blackscholes"};

    std::printf("%-14s", "benchmark");
    for (auto b : budgets) {
        if (b)
            std::printf("    m=%2u", b);
        else
            std::printf("  cap-bnd");
    }
    std::printf("\n");

    for (const char *name : subset) {
        const RunResult ref = runWorkload(name, base, benchScale);
        std::printf("%-14s", name);
        for (auto budget : budgets) {
            GpuConfig vt = base;
            vt.vtEnabled = true;
            vt.vtMaxVirtualCtasPerSm = budget;
            const RunResult r = runWorkload(name, vt, benchScale);
            std::printf("  %6.2fx",
                        double(ref.stats.cycles) / r.stats.cycles);
        }
        std::printf("\n");
    }
    std::printf("(8 virtual CTAs equals the hardware CTA-slot count: "
                "expected ~1.00x)\n");
    return 0;
}
