#include "service/client.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace vtsim::service {

Client::Client(const std::string &socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("socket path too long: '" +
                                 socket_path + "'");
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        throw std::runtime_error(std::string("socket(): ") +
                                 std::strerror(errno));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("cannot connect to vtsimd at '" +
                                 socket_path + "': " +
                                 std::strerror(err));
    }
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Json
Client::request(const Json &request)
{
    const std::string reply = requestRaw(request.dump());
    if (reply.empty())
        throw std::runtime_error("vtsimd closed the connection");
    return Json::parse(reply);
}

std::string
Client::requestRaw(const std::string &line)
{
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n = ::send(fd_, out.data() + off,
                                 out.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            throw std::runtime_error("send to vtsimd failed");
        }
        off += std::size_t(n);
    }
    return readLine();
}

void
Client::sendPartialAndClose(const std::string &data)
{
    if (!data.empty())
        (void)::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    ::close(fd_);
    fd_ = -1;
}

std::string
Client::readLine()
{
    char chunk[4096];
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return std::string(); // Daemon hung up.
        buffer_.append(chunk, std::size_t(n));
    }
}

} // namespace vtsim::service
