/**
 * @file
 * EXT-3 (extension study): energy accounting of Virtual Thread. The
 * paper argues VT's overhead is tiny because swaps move only scheduling
 * state; here the whole-launch energy model quantifies it: the dynamic
 * swap energy is negligible, and the *static* energy saved by finishing
 * earlier dominates the balance.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "core/energy_model.hh"
#include "core/overhead_model.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("EXT-3", "energy: baseline vs Virtual Thread");
    const GpuConfig base = GpuConfig::fermiLike();
    GpuConfig vt = base;
    vt.vtEnabled = true;

    const char *subset[] = {"vecadd", "reduce", "histogram", "needle",
                            "mummer", "stencil", "matmul"};

    std::vector<RunSpec> specs;
    for (const char *name : subset) {
        specs.push_back({name, base, benchScale});
        specs.push_back({name, vt, benchScale});
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s %9s %9s %8s %10s %12s\n", "benchmark",
                "base(uJ)", "vt(uJ)", "ratio", "swap(nJ)", "EDP-ratio");
    for (std::size_t w = 0; w < std::size(subset); ++w) {
        const char *name = subset[w];
        const RunResult &b = results[2 * w];
        const RunResult &v = results[2 * w + 1];

        // Swap state size from the workload's launch shape.
        auto wl = makeWorkload(name, benchScale);
        const Kernel k = wl->buildKernel();
        GlobalMemory scratch;
        const LaunchParams lp = wl->prepare(scratch);
        const VtOverhead oh =
            computeOverhead(vt, lp.warpsPerCta(), k.regsPerThread());

        const EnergyBreakdown eb =
            estimateEnergy(b.stats, base, oh.bytesPerCtaContext);
        const EnergyBreakdown ev =
            estimateEnergy(v.stats, vt, oh.bytesPerCtaContext);
        std::printf("%-14s %9.1f %9.1f %7.2fx %10.2f %11.2fx\n", name,
                    eb.total() / 1e6, ev.total() / 1e6,
                    ev.total() / eb.total(), ev.vtSwap / 1e3,
                    ev.edp(v.stats.cycles) / eb.edp(b.stats.cycles));
    }
    std::printf("(swap column: total dynamic energy of all context "
                "switches; ratios < 1 favour VT)\n");
    return 0;
}
