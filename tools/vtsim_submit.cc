/**
 * @file
 * vtsim-submit — client for the vtsimd job service.
 *
 * Usage:
 *   vtsim-submit <workload>|fig3 [options]
 *   vtsim-submit --status | --ping | --metrics | --shutdown
 *
 *   <workload>            one benchmark by name, or the literal `fig3`
 *                         to expand the FIG-3 batch (every benchmark,
 *                         baseline and VT configuration, spec order)
 *   --benchmarks a,b,c    restrict the fig3 expansion to these names
 *   --socket PATH         vtsimd socket (default ./vtsimd.sock)
 *   --connect HOST:PORT   talk TCP instead — to a vtsimd --listen-tcp
 *                         or a vtsim-coord fleet endpoint. Connection
 *                         refused/reset is retried with capped
 *                         exponential backoff and jitter, and a
 *                         coordinator's {"rejected", "retry_after_ms"}
 *                         backpressure reply re-submits after the
 *                         server-suggested delay
 *   --token SECRET        bearer token stamped on every request line
 *   --tenant NAME         fabric accounting/fair-share tenant
 *   --affinity NODE       ask the coordinator to prefer this node
 *   --priority P          low | normal | high (default normal)
 *   --scale N             problem scale
 *   --vt | --sms N | --vtmax N | --swap-latency N | --scheduler P
 *   --bypass-l1 | --throttle | --fast-forward
 *                         GpuConfig overrides, as in run_benchmark
 *   --stats-interval N    per-job interval series
 *   --checkpoint-every N  per-job preemption/checkpoint cadence
 *   --sim-threads N       shard each job's simulation across N threads
 *                         (bit-identical results; the daemon rejects
 *                         requests beyond its --max-sim-threads)
 *   --kernels a,b         submit one concurrent job co-running these
 *                         workloads (instead of <workload>); results
 *                         include one per-grid stats line per kernel
 *   --share-policy P      spatial | vt-fill | preempt CTA-slot sharing
 *                         for a --kernels job (default vt-fill)
 *   --inject-fail N       test hook: fail the first N attempts
 *   --no-wait             submit and print job ids without waiting
 *   --local               do not contact a daemon: run the exact same
 *                         submission batch in-process through the
 *                         sequential batch runner
 *   --metrics             print the daemon's service registry in
 *                         Prometheus text format (the "metrics" op
 *                         body) to stdout and exit
 *
 * Job results are printed to stdout as one deterministic line per
 * submission, in submission order:
 *   <workload> scale=<n> vt=<on|off> stats=<kernel-stats JSON>
 * The line is built from the same KernelStats fields in both service
 * and --local modes, so `diff` between the two proves bit-identity.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fabric/transport.hh"
#include "parallel_runner.hh"
#include "service/client.hh"
#include "service/protocol.hh"

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: vtsim-submit <workload>|fig3 [--benchmarks "
                 "a,b,c] [--socket PATH]\n"
                 "         [--priority low|normal|high] [--scale N] "
                 "[--vt] [--sms N]\n"
                 "         [--vtmax N] [--swap-latency N] [--scheduler "
                 "lrr|gto|two-level]\n"
                 "         [--bypass-l1] [--throttle] [--fast-forward]\n"
                 "         [--stats-interval N] [--checkpoint-every N] "
                 "[--inject-fail N]\n"
                 "         [--sim-threads N] [--kernels a,b "
                 "[--share-policy spatial|vt-fill|preempt]]\n"
                 "         [--no-wait] [--local]\n"
                 "         [--connect HOST:PORT] [--token SECRET] "
                 "[--tenant NAME] [--affinity NODE]\n"
                 "       vtsim-submit --status | --ping | --metrics | "
                 "--shutdown [--socket PATH | --connect HOST:PORT]\n");
    std::exit(2);
}

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace vtsim;
    using namespace vtsim::service;

    std::string socket_path = "vtsimd.sock";
    std::string connect_addr;
    std::string auth_token;
    std::string tenant;
    std::string affinity;
    std::string target;
    std::string priority = "normal";
    std::vector<std::string> benchmarks;
    Json::Object config; // GpuConfig overrides, allowlisted keys.
    long scale = -1;
    long stats_interval = -1;
    long checkpoint_every = -1;
    long inject_fail = -1;
    long sim_threads = -1;
    std::vector<std::string> kernels;
    std::string share_policy;
    bool no_wait = false;
    bool local = false;
    enum class Mode { Submit, Status, Ping, Metrics, Shutdown } mode =
        Mode::Submit;

    std::vector<std::string> args(argv + 1, argv + argc);
    auto next_value = [&args](std::size_t &i) -> std::string {
        if (++i >= args.size())
            usage();
        return args[i];
    };
    auto next_count = [&next_value](std::size_t &i,
                                    const char *what) -> long {
        const std::string v = next_value(i);
        char *end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0' || n < 0) {
            std::fprintf(stderr, "vtsim-submit: invalid %s '%s'\n",
                         what, v.c_str());
            std::exit(2);
        }
        return n;
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--socket")
            socket_path = next_value(i);
        else if (a == "--connect")
            connect_addr = next_value(i);
        else if (a == "--token")
            auth_token = next_value(i);
        else if (a == "--tenant")
            tenant = next_value(i);
        else if (a == "--affinity")
            affinity = next_value(i);
        else if (a == "--status")
            mode = Mode::Status;
        else if (a == "--ping")
            mode = Mode::Ping;
        else if (a == "--metrics")
            mode = Mode::Metrics;
        else if (a == "--shutdown")
            mode = Mode::Shutdown;
        else if (a == "--priority")
            priority = next_value(i);
        else if (a == "--benchmarks")
            benchmarks = splitCsv(next_value(i));
        else if (a == "--scale")
            scale = next_count(i, "--scale");
        else if (a == "--vt")
            config["vt_enabled"] = Json(true);
        else if (a == "--sms")
            config["num_sms"] = Json(std::int64_t(next_count(i, "--sms")));
        else if (a == "--vtmax")
            config["vt_max_virtual_ctas_per_sm"] =
                Json(std::int64_t(next_count(i, "--vtmax")));
        else if (a == "--swap-latency")
            config["vt_swap_latency"] =
                Json(std::int64_t(next_count(i, "--swap-latency")));
        else if (a == "--scheduler")
            config["scheduler"] = Json(next_value(i));
        else if (a == "--bypass-l1")
            config["l1_bypass_global_loads"] = Json(true);
        else if (a == "--throttle")
            config["throttle_enabled"] = Json(true);
        else if (a == "--fast-forward")
            config["fast_forward"] = Json(true);
        else if (a == "--stats-interval")
            stats_interval = next_count(i, "--stats-interval");
        else if (a == "--checkpoint-every")
            checkpoint_every = next_count(i, "--checkpoint-every");
        else if (a == "--inject-fail")
            inject_fail = next_count(i, "--inject-fail");
        else if (a == "--sim-threads")
            sim_threads = next_count(i, "--sim-threads");
        else if (a == "--kernels")
            kernels = splitCsv(next_value(i));
        else if (a == "--share-policy")
            share_policy = next_value(i);
        else if (a == "--no-wait")
            no_wait = true;
        else if (a == "--local")
            local = true;
        else if (!a.empty() && a[0] != '-' && target.empty())
            target = a;
        else
            usage();
    }

    // One connection for the whole batch; TCP dials retry connection
    // refused/reset with capped exponential backoff plus jitter, so a
    // daemon or coordinator that is still starting (or briefly
    // restarting) does not fail the batch.
    const auto dial = [&]() -> std::unique_ptr<Client> {
        if (connect_addr.empty())
            return std::make_unique<Client>(socket_path);
        return connectTcpWithRetry(
            vtsim::fabric::parseHostPort(connect_addr), auth_token);
    };

    if (mode != Mode::Submit) {
        std::unique_ptr<Client> client_ptr = dial();
        Client &client = *client_ptr;
        Json::Object req;
        req["op"] = Json(mode == Mode::Status    ? "status"
                         : mode == Mode::Ping    ? "ping"
                         : mode == Mode::Metrics ? "metrics"
                                                 : "shutdown");
        // The TCP client stamps its token itself; over the unix
        // socket the daemon enforces the same bearer token, so stamp
        // it here too.
        if (!auth_token.empty())
            req["token"] = Json(auth_token);
        const Json reply = client.request(Json(std::move(req)));
        const Json *ok = reply.find("ok");
        if (!ok || !ok->isBool() || !ok->asBool()) {
            std::fprintf(stderr, "vtsim-submit: %s failed: %s\n",
                         mode == Mode::Status    ? "status"
                         : mode == Mode::Ping    ? "ping"
                         : mode == Mode::Metrics ? "metrics"
                                                 : "shutdown",
                         reply.dump().c_str());
            return 1;
        }
        if (mode == Mode::Metrics) {
            // Unwrap the NDJSON framing: the body is multi-line
            // Prometheus text, ready for a scraper or a file.
            const Json *body = reply.find("body");
            if (!body || !body->isString()) {
                std::fprintf(stderr,
                             "vtsim-submit: metrics failed: %s\n",
                             reply.dump().c_str());
                return 1;
            }
            std::fputs(body->asString().c_str(), stdout);
            return 0;
        }
        std::printf("%s\n", reply.dump().c_str());
        return 0;
    }
    if (target.empty() == kernels.empty())
        usage(); // Exactly one of <workload> / --kernels.
    if (!kernels.empty() && local) {
        std::fprintf(stderr, "vtsim-submit: --local runs the "
                             "single-kernel batch runner; it does not "
                             "take --kernels\n");
        return 2;
    }

    // Build every submit request up front: both modes consume the
    // identical JSON, so the service run and the --local run start
    // from byte-identical GpuConfigs by construction.
    std::vector<std::string> submits;
    const auto make_submit = [&](const std::string &workload, bool vt) {
        Json::Object o;
        o["op"] = Json("submit");
        if (!kernels.empty()) {
            // One concurrent job: `kernels` replaces `workload`.
            Json::Array names;
            for (const auto &k : kernels)
                names.push_back(Json(k));
            o["kernels"] = Json(std::move(names));
            if (!share_policy.empty())
                o["share_policy"] = Json(share_policy);
        } else {
            o["workload"] = Json(workload);
        }
        o["priority"] = Json(priority);
        // requestRaw sends these lines verbatim (no Client token
        // stamping), so the bearer token goes into the body here.
        if (!auth_token.empty())
            o["token"] = Json(auth_token);
        if (!tenant.empty())
            o["tenant"] = Json(tenant);
        if (!affinity.empty())
            o["affinity"] = Json(affinity);
        if (scale >= 0)
            o["scale"] = Json(std::int64_t(scale));
        Json::Object cfg = config;
        if (vt)
            cfg["vt_enabled"] = Json(true);
        if (!cfg.empty())
            o["config"] = Json(std::move(cfg));
        if (stats_interval >= 0)
            o["stats_interval"] = Json(std::int64_t(stats_interval));
        if (checkpoint_every >= 0)
            o["checkpoint_every"] = Json(std::int64_t(checkpoint_every));
        if (inject_fail >= 0)
            o["inject_fail"] = Json(std::int64_t(inject_fail));
        if (sim_threads >= 0)
            o["sim_threads"] = Json(std::int64_t(sim_threads));
        submits.push_back(Json(std::move(o)).dump());
    };
    if (!kernels.empty()) {
        make_submit("", false);
    } else if (target == "fig3") {
        auto names = benchmarkNames();
        if (!benchmarks.empty())
            names = benchmarks;
        // The FIG-3 spec order: per benchmark, baseline then VT.
        for (const auto &name : names) {
            make_submit(name, false);
            make_submit(name, true);
        }
    } else {
        make_submit(target, false);
    }

    const auto result_line = [](const JobSpec &spec,
                                const KernelStats &stats) {
        std::printf("%s scale=%u vt=%s stats=%s\n",
                    spec.workload.c_str(), spec.scale,
                    spec.config.vtEnabled ? "on" : "off",
                    kernelStatsToJson(stats).dump().c_str());
    };

    if (local) {
        // Replay through the sequential batch runner: the acceptance
        // oracle for service bit-identity.
        std::vector<bench::RunSpec> specs;
        std::vector<JobSpec> job_specs;
        for (const auto &line : submits) {
            const Request req = parseRequest(line);
            specs.push_back({req.spec.workload, req.spec.config,
                             req.spec.scale});
            job_specs.push_back(req.spec);
        }
        // The sharding request applies in the replay too — results are
        // bit-identical either way, it only changes wall clock.
        if (sim_threads > 0) {
            bench::TelemetryOptions telemetry;
            telemetry.simThreads = unsigned(sim_threads);
            bench::setTelemetryOptions(telemetry);
        }
        const auto results = bench::runAll(specs, 1);
        for (std::size_t i = 0; i < results.size(); ++i)
            result_line(job_specs[i], results[i].stats);
        return 0;
    }

    std::unique_ptr<Client> client_ptr = dial();
    Client &client = *client_ptr;
    std::vector<JobId> ids;
    std::vector<JobSpec> job_specs;
    for (const auto &line : submits) {
        // A coordinator under backpressure answers with a
        // retry_after_ms hint instead of queueing unboundedly; honor
        // it (with a bounded number of attempts so a hard limit —
        // e.g. a tenant quota that never clears — still fails).
        Json reply;
        for (int attempt = 0;; ++attempt) {
            reply = Json::parse(client.requestRaw(line));
            const Json *ok = reply.find("ok");
            if (ok && ok->isBool() && ok->asBool())
                break;
            const Json *retry = reply.find("retry_after_ms");
            if (!retry || !retry->isInt() || attempt >= 50) {
                std::fprintf(stderr,
                             "vtsim-submit: submit rejected: %s\n",
                             reply.dump().c_str());
                return 1;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min<std::int64_t>(retry->asInt(), 5000)));
        }
        ids.push_back(JobId(reply.find("job")->asInt()));
        job_specs.push_back(parseRequest(line).spec);
    }
    if (no_wait) {
        for (const JobId id : ids)
            std::printf("job %llu\n", (unsigned long long)id);
        return 0;
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
        Json::Object req;
        req["op"] = Json("wait");
        req["job"] = Json(ids[i]);
        if (!auth_token.empty())
            req["token"] = Json(auth_token);
        const Json reply = client.request(Json(std::move(req)));
        const Json *state = reply.find("state");
        if (!state || !state->isString() ||
            state->asString() != "done") {
            std::fprintf(stderr, "vtsim-submit: job %llu: %s\n",
                         (unsigned long long)ids[i],
                         reply.dump().c_str());
            return 1;
        }
        result_line(job_specs[i],
                    kernelStatsFromJson(*reply.find("stats")));
        if (const Json *grids = reply.find("grids")) {
            for (const Json &g : grids->asArray()) {
                std::printf("  grid %s prio=%lld stats=%s\n",
                            g.find("kernel")->asString().c_str(),
                            (long long)g.find("priority")->asInt(),
                            g.find("stats")->dump().c_str());
            }
        }
    }
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "vtsim-submit: %s\n", e.what());
    return 1;
}
