/**
 * @file
 * Concurrent-kernel execution (Gpu::launchConcurrent): a single-grid
 * concurrent launch must be bit-identical to Gpu::launch on every
 * workload and machine; each share policy must be deterministic,
 * including under --sim-threads; per-grid statistics must partition
 * the aggregate counters; and a mid-co-run checkpoint must restore
 * and finish bit-identically.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

/** Every field of KernelStats, bit for bit. */
void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &context)
{
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.warpInstructions, b.warpInstructions) << context;
    EXPECT_EQ(a.threadInstructions, b.threadInstructions) << context;
    EXPECT_EQ(a.ctasCompleted, b.ctasCompleted) << context;
    EXPECT_EQ(a.ipc, b.ipc) << context;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << context;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << context;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << context;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << context;
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << context;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << context;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << context;
    EXPECT_EQ(a.swapOuts, b.swapOuts) << context;
    EXPECT_EQ(a.swapIns, b.swapIns) << context;
    EXPECT_EQ(a.stalls.issued, b.stalls.issued) << context;
    EXPECT_EQ(a.stalls.memStall, b.stalls.memStall) << context;
    EXPECT_EQ(a.stalls.shortStall, b.stalls.shortStall) << context;
    EXPECT_EQ(a.stalls.barrierStall, b.stalls.barrierStall) << context;
    EXPECT_EQ(a.stalls.swapStall, b.stalls.swapStall) << context;
    EXPECT_EQ(a.stalls.idle, b.stalls.idle) << context;
}

void
expectIdenticalGridStats(const std::vector<GridStats> &a,
                         const std::vector<GridStats> &b,
                         const std::string &context)
{
    ASSERT_EQ(a.size(), b.size()) << context;
    for (std::size_t g = 0; g < a.size(); ++g) {
        const std::string tag = context + " grid " + std::to_string(g);
        EXPECT_EQ(a[g].kernelName, b[g].kernelName) << tag;
        EXPECT_EQ(a[g].priority, b[g].priority) << tag;
        expectIdenticalStats(a[g].stats, b[g].stats, tag);
    }
}

/** The three machines of the paper's evaluation. */
struct Machine
{
    const char *tag;
    GpuConfig cfg;
};

std::vector<Machine>
machines(const GpuConfig &base)
{
    GpuConfig vt = base;
    vt.vtEnabled = true;
    GpuConfig throttled = base;
    throttled.throttleEnabled = true;
    return {{"baseline", base}, {"vt", vt}, {"throttled", throttled}};
}

/** An SM count that gives --sim-threads {2,4} real shards. */
GpuConfig
shardConfig()
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.numSms = 8;
    cfg.numMemPartitions = 4;
    cfg.maxCycles = 5'000'000;
    cfg.fastForwardEnabled = true;
    return cfg;
}

/** One co-run: prepared workloads, their kernels, and the results. */
struct CoRunResult
{
    KernelStats aggregate;
    std::vector<GridStats> grids;
};

/**
 * Launch @p names concurrently on a fresh Gpu of @p cfg and verify
 * every workload's output. Workloads are prepared in order into the
 * one global memory (the bump allocator keeps them disjoint).
 */
CoRunResult
coRun(const GpuConfig &cfg, const std::vector<std::string> &names,
      SharePolicy policy, unsigned sim_threads = 1,
      const std::vector<std::uint32_t> &priorities = {})
{
    Gpu gpu(cfg);
    gpu.setSimThreads(sim_threads);
    std::vector<std::unique_ptr<Workload>> wls;
    std::vector<Kernel> kernels;
    for (const std::string &name : names) {
        wls.push_back(makeWorkload(name, 0));
        kernels.push_back(wls.back()->buildKernel());
    }
    std::vector<GridLaunch> launches;
    for (std::size_t i = 0; i < wls.size(); ++i) {
        GridLaunch gl;
        gl.kernel = &kernels[i];
        gl.params = wls[i]->prepare(gpu.memory());
        gl.priority = i < priorities.size() ? priorities[i] : 0;
        launches.push_back(std::move(gl));
    }
    CoRunResult out;
    out.aggregate = gpu.launchConcurrent(launches, policy);
    out.grids = gpu.gridStats();
    for (std::size_t i = 0; i < wls.size(); ++i)
        EXPECT_TRUE(wls[i]->verify(gpu.memory())) << names[i];
    return out;
}

std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + stem;
}

// ---------------------------------------------------------------------------
// N=1 degeneration: launchConcurrent with a single grid must be
// bit-identical to the classic Gpu::launch on every workload and all
// three machines.
// ---------------------------------------------------------------------------

TEST(Concurrent, SingleGridBitIdenticalToLaunch)
{
    for (const Machine &m : machines(test::smallConfig())) {
        for (const std::string &name : benchmarkNames()) {
            const std::string tag = std::string(m.tag) + "/" + name;

            KernelStats classic;
            {
                Gpu gpu(m.cfg);
                auto wl = makeWorkload(name, 0);
                const Kernel k = wl->buildKernel();
                const LaunchParams lp = wl->prepare(gpu.memory());
                classic = gpu.launch(k, lp);
                EXPECT_TRUE(wl->verify(gpu.memory())) << tag;
            }

            const CoRunResult solo =
                coRun(m.cfg, {name}, SharePolicy::VtFill);
            expectIdenticalStats(classic, solo.aggregate, tag);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-grid split: in a solo run grid 0's split counters must equal the
// aggregate (nothing is lost to the split), and in a co-run the grids'
// split counters must sum to the aggregate (nothing is double-counted).
// Cycles are shared wall-clock, stalls are not split per grid.
// ---------------------------------------------------------------------------

void
expectSplitFieldsEqual(const KernelStats &split, const KernelStats &agg,
                       const std::string &context)
{
    EXPECT_EQ(split.warpInstructions, agg.warpInstructions) << context;
    EXPECT_EQ(split.threadInstructions, agg.threadInstructions) << context;
    EXPECT_EQ(split.ctasCompleted, agg.ctasCompleted) << context;
    EXPECT_EQ(split.l1Hits, agg.l1Hits) << context;
    EXPECT_EQ(split.l1Misses, agg.l1Misses) << context;
    EXPECT_EQ(split.l2Hits, agg.l2Hits) << context;
    EXPECT_EQ(split.l2Misses, agg.l2Misses) << context;
    EXPECT_EQ(split.dramRowHits, agg.dramRowHits) << context;
    EXPECT_EQ(split.dramRowMisses, agg.dramRowMisses) << context;
    EXPECT_EQ(split.dramBytes, agg.dramBytes) << context;
    EXPECT_EQ(split.swapOuts, agg.swapOuts) << context;
    EXPECT_EQ(split.swapIns, agg.swapIns) << context;
}

TEST(Concurrent, SoloPerGridSplitMatchesAggregate)
{
    for (const Machine &m : machines(test::smallConfig())) {
        const CoRunResult solo = coRun(m.cfg, {"bfs"}, SharePolicy::VtFill);
        ASSERT_EQ(solo.grids.size(), 1u) << m.tag;
        EXPECT_EQ(solo.grids[0].kernelName, "bfs") << m.tag;
        EXPECT_EQ(solo.grids[0].stats.cycles, solo.aggregate.cycles)
            << m.tag;
        expectSplitFieldsEqual(solo.grids[0].stats, solo.aggregate, m.tag);
    }
}

TEST(Concurrent, CoRunPerGridSplitSumsToAggregate)
{
    for (const SharePolicy policy :
         {SharePolicy::Spatial, SharePolicy::VtFill, SharePolicy::Preempt}) {
        const std::string tag = toString(policy);
        const CoRunResult run = coRun(test::smallVtConfig(),
                                      {"vecadd", "bfs"}, policy, 1, {0, 1});
        ASSERT_EQ(run.grids.size(), 2u) << tag;
        KernelStats sum;
        for (const GridStats &gs : run.grids) {
            sum.warpInstructions += gs.stats.warpInstructions;
            sum.threadInstructions += gs.stats.threadInstructions;
            sum.ctasCompleted += gs.stats.ctasCompleted;
            sum.l1Hits += gs.stats.l1Hits;
            sum.l1Misses += gs.stats.l1Misses;
            sum.l2Hits += gs.stats.l2Hits;
            sum.l2Misses += gs.stats.l2Misses;
            sum.dramRowHits += gs.stats.dramRowHits;
            sum.dramRowMisses += gs.stats.dramRowMisses;
            sum.dramBytes += gs.stats.dramBytes;
            sum.swapOuts += gs.stats.swapOuts;
            sum.swapIns += gs.stats.swapIns;
        }
        expectSplitFieldsEqual(sum, run.aggregate, tag);
        // Both grids made progress.
        EXPECT_GT(run.grids[0].stats.ctasCompleted, 0u) << tag;
        EXPECT_GT(run.grids[1].stats.ctasCompleted, 0u) << tag;
    }
}

// ---------------------------------------------------------------------------
// Determinism: the same co-run twice gives bit-identical aggregate and
// per-grid statistics, for every policy.
// ---------------------------------------------------------------------------

TEST(Concurrent, CoRunDeterministicPerPolicy)
{
    const std::vector<std::string> mix = {"vecadd", "bfs"};
    for (const SharePolicy policy :
         {SharePolicy::Spatial, SharePolicy::VtFill, SharePolicy::Preempt}) {
        const std::string tag = toString(policy);
        const CoRunResult a =
            coRun(test::smallVtConfig(), mix, policy, 1, {0, 1});
        const CoRunResult b =
            coRun(test::smallVtConfig(), mix, policy, 1, {0, 1});
        expectIdenticalStats(a.aggregate, b.aggregate, tag);
        expectIdenticalGridStats(a.grids, b.grids, tag);
    }
}

TEST(Concurrent, ThreeWayCoRunDeterministic)
{
    const std::vector<std::string> mix = {"vecadd", "stencil", "bfs"};
    const CoRunResult a =
        coRun(test::smallVtConfig(), mix, SharePolicy::VtFill);
    const CoRunResult b =
        coRun(test::smallVtConfig(), mix, SharePolicy::VtFill);
    ASSERT_EQ(a.grids.size(), 3u);
    expectIdenticalStats(a.aggregate, b.aggregate, "3-way");
    expectIdenticalGridStats(a.grids, b.grids, "3-way");
}

// ---------------------------------------------------------------------------
// Sharding: a co-run under --sim-threads {2,4} is bit-identical to the
// sequential co-run, for every policy.
// ---------------------------------------------------------------------------

TEST(Concurrent, CoRunShardedBitIdentical)
{
    GpuConfig cfg = shardConfig();
    cfg.vtEnabled = true;
    const std::vector<std::string> mix = {"vecadd", "bfs"};
    for (const SharePolicy policy :
         {SharePolicy::Spatial, SharePolicy::VtFill, SharePolicy::Preempt}) {
        const CoRunResult ref = coRun(cfg, mix, policy, 1, {0, 1});
        for (const unsigned threads : {2u, 4u}) {
            const std::string tag =
                toString(policy) + "/" + std::to_string(threads);
            const CoRunResult got = coRun(cfg, mix, policy, threads, {0, 1});
            expectIdenticalStats(ref.aggregate, got.aggregate, tag);
            expectIdenticalGridStats(ref.grids, got.grids, tag);
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore of a mid-flight co-run: a checkpoint written half
// way through restores on a fresh Gpu and finishes with the exact
// statistics of the uninterrupted run.
// ---------------------------------------------------------------------------

TEST(Concurrent, CheckpointRestoreMidCoRun)
{
    const GpuConfig cfg = test::smallVtConfig();
    const std::vector<std::string> mix = {"vecadd", "bfs"};
    for (const SharePolicy policy :
         {SharePolicy::Spatial, SharePolicy::VtFill, SharePolicy::Preempt}) {
        const std::string tag = toString(policy);
        const CoRunResult ref = coRun(cfg, mix, policy, 1, {0, 1});
        ASSERT_GT(ref.aggregate.cycles, 10u) << tag;

        // The instrumented run writes one checkpoint half way through;
        // writing it must not perturb the run.
        const std::string mid = tempPath("corun_mid_" + tag);
        {
            Gpu gpu(cfg);
            gpu.setCheckpoint(mid, ref.aggregate.cycles / 2);
            std::vector<std::unique_ptr<Workload>> wls;
            std::vector<Kernel> kernels;
            std::vector<GridLaunch> launches;
            for (const std::string &name : mix) {
                wls.push_back(makeWorkload(name, 0));
                kernels.push_back(wls.back()->buildKernel());
            }
            for (std::size_t i = 0; i < mix.size(); ++i) {
                GridLaunch gl;
                gl.kernel = &kernels[i];
                gl.params = wls[i]->prepare(gpu.memory());
                gl.priority = std::uint32_t(i);
                launches.push_back(std::move(gl));
            }
            const KernelStats stats = gpu.launchConcurrent(launches, policy);
            expectIdenticalStats(ref.aggregate, stats, tag + " ckpt-run");
            expectIdenticalGridStats(ref.grids, gpu.gridStats(),
                                     tag + " ckpt-run");
        }

        // Restore and finish: rebuild the kernels (a checkpoint cannot
        // carry live Kernel objects) and resume with the checkpointed
        // grid table and policy.
        {
            Gpu gpu(cfg);
            gpu.restoreCheckpoint(mid);
            std::vector<std::unique_ptr<Workload>> wls;
            std::vector<Kernel> kernels;
            GlobalMemory scratch; // Teaches the workloads their addresses.
            for (const std::string &name : mix) {
                wls.push_back(makeWorkload(name, 0));
                kernels.push_back(wls.back()->buildKernel());
                wls.back()->prepare(scratch);
            }
            std::vector<GridLaunch> launches = gpu.restoredGrids();
            ASSERT_EQ(launches.size(), mix.size()) << tag;
            EXPECT_EQ(gpu.restoredSharePolicy(), policy) << tag;
            for (std::size_t i = 0; i < launches.size(); ++i)
                launches[i].kernel = &kernels[i];
            const KernelStats stats =
                gpu.launchConcurrent(launches, gpu.restoredSharePolicy());
            expectIdenticalStats(ref.aggregate, stats, tag + " resumed");
            expectIdenticalGridStats(ref.grids, gpu.gridStats(),
                                     tag + " resumed");
            for (std::size_t i = 0; i < wls.size(); ++i)
                EXPECT_TRUE(wls[i]->verify(gpu.memory())) << tag << mix[i];
        }
        std::remove(mid.c_str());
    }
}

// ---------------------------------------------------------------------------
// Validation: the fatal paths of launchConcurrent.
// ---------------------------------------------------------------------------

TEST(Concurrent, RejectsInvalidLaunches)
{
    Gpu gpu(test::smallConfig());
    EXPECT_THROW(gpu.launchConcurrent({}, SharePolicy::VtFill), FatalError);

    const Kernel k = test::storeConstKernel();
    LaunchParams lp;
    lp.grid = {4, 1, 1};
    lp.cta = {32, 1, 1};
    lp.params = {0, 128, 7};

    GridLaunch gl;
    gl.kernel = &k;
    gl.params = lp;
    std::vector<GridLaunch> too_many(maxGrids + 1, gl);
    EXPECT_THROW(gpu.launchConcurrent(too_many, SharePolicy::VtFill),
                 FatalError);

    // Preempt needs the VT machine to vacate active slots.
    std::vector<GridLaunch> pair(2, gl);
    EXPECT_THROW(gpu.launchConcurrent(pair, SharePolicy::Preempt),
                 FatalError);
}

TEST(Concurrent, SharePolicyNames)
{
    SharePolicy p;
    EXPECT_TRUE(parseSharePolicy("spatial", p));
    EXPECT_EQ(p, SharePolicy::Spatial);
    EXPECT_TRUE(parseSharePolicy("vt-fill", p));
    EXPECT_EQ(p, SharePolicy::VtFill);
    EXPECT_TRUE(parseSharePolicy("preempt", p));
    EXPECT_EQ(p, SharePolicy::Preempt);
    EXPECT_FALSE(parseSharePolicy("round-robin", p));
    EXPECT_EQ(toString(SharePolicy::Spatial), "spatial");
    EXPECT_EQ(toString(SharePolicy::VtFill), "vt-fill");
    EXPECT_EQ(toString(SharePolicy::Preempt), "preempt");
}

} // namespace
} // namespace vtsim
