file(REMOVE_RECURSE
  "CMakeFiles/iterative_stencil.dir/iterative_stencil.cc.o"
  "CMakeFiles/iterative_stencil.dir/iterative_stencil.cc.o.d"
  "iterative_stencil"
  "iterative_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
