/**
 * @file
 * The vtsimd network front end: a Unix-domain-socket NDJSON server in
 * front of a JobService (see src/service/protocol.hh for the wire
 * format). One accept loop, one thread per connection; a connection
 * carries any number of request lines, each answered with exactly one
 * reply line.
 *
 * Robustness contract: nothing a client sends may take the daemon
 * down. Malformed JSON, unknown ops, oversized request lines and
 * mid-request disconnects are answered with {"ok":false,...} (or the
 * connection is just dropped) while the accept loop keeps serving. The
 * "shutdown" op is the only way a client stops the daemon, and it
 * drains: serve() returns so the caller can JobService::shutdown() and
 * write the service stats JSON.
 */

#ifndef VTSIM_SERVICE_DAEMON_HH
#define VTSIM_SERVICE_DAEMON_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hh"

namespace vtsim::service {

class Daemon
{
  public:
    /** Longest accepted request line; longer ones are rejected
     *  without parsing (and the connection closed: the stream can no
     *  longer be trusted to be line-synchronized). */
    static constexpr std::size_t kMaxLineBytes = 64 * 1024;

    /** Remembers @p socket_path; start() binds it. */
    Daemon(JobService &service, std::string socket_path);

    /** Stops accepting and joins connection threads. */
    ~Daemon();

    /**
     * Bind and listen on the socket path (removing a stale socket
     * file first). Throws std::runtime_error on failure.
     */
    void start();

    /**
     * Accept-and-serve until requestStop() — typically triggered by a
     * client's "shutdown" op. Joins the connection threads before
     * returning, so replies in flight finish.
     */
    void serve();

    /** Ask serve() to return. Safe from signal handlers and
     *  connection threads. */
    void requestStop();

    const std::string &socketPath() const { return path_; }

  private:
    void serveConnection(int fd);
    /** Handle one request line; false closes the connection. */
    bool handleLine(int fd, const std::string &line);
    static bool sendLine(int fd, std::string line);

    JobService &service_;
    std::string path_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::mutex connMu_;
    std::vector<std::thread> connections_;
};

} // namespace vtsim::service

#endif // VTSIM_SERVICE_DAEMON_HH
