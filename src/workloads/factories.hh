/**
 * @file
 * Internal: per-benchmark factory functions wired into the registry in
 * workload.cc. Each returns a fresh problem instance at the given scale.
 */

#ifndef VTSIM_WORKLOADS_FACTORIES_HH
#define VTSIM_WORKLOADS_FACTORIES_HH

#include <memory>

#include "workloads/workload.hh"

namespace vtsim {

std::unique_ptr<Workload> makeVecAdd(std::uint32_t scale);
std::unique_ptr<Workload> makeSaxpy(std::uint32_t scale);
std::unique_ptr<Workload> makeReduction(std::uint32_t scale);
std::unique_ptr<Workload> makeMatmul(std::uint32_t scale);
std::unique_ptr<Workload> makeStencil(std::uint32_t scale);
std::unique_ptr<Workload> makeSpmv(std::uint32_t scale);
std::unique_ptr<Workload> makeBfs(std::uint32_t scale);
std::unique_ptr<Workload> makeHistogram(std::uint32_t scale);
std::unique_ptr<Workload> makeTranspose(std::uint32_t scale);
std::unique_ptr<Workload> makePathfinder(std::uint32_t scale);
std::unique_ptr<Workload> makeHotspot(std::uint32_t scale);
std::unique_ptr<Workload> makeKmeans(std::uint32_t scale);
std::unique_ptr<Workload> makeBlackscholes(std::uint32_t scale);
std::unique_ptr<Workload> makeNeedle(std::uint32_t scale);
std::unique_ptr<Workload> makeMummer(std::uint32_t scale);
std::unique_ptr<Workload> makeBitonic(std::uint32_t scale);

} // namespace vtsim

#endif // VTSIM_WORKLOADS_FACTORIES_HH
