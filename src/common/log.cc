#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace vtsim {

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::ostringstream os;
    os << "fatal: " << message << " (" << file << ":" << line << ")";
    throw FatalError(os.str());
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file, line);
    std::abort();
}

void
warnImpl(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
informImpl(const std::string &message)
{
    std::fprintf(stderr, "info: %s\n", message.c_str());
}

} // namespace vtsim
