#include "occupancy/occupancy.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace vtsim {

std::string
toString(OccupancyLimiter limiter)
{
    switch (limiter) {
      case OccupancyLimiter::WarpSlots: return "warp-slots";
      case OccupancyLimiter::CtaSlots: return "cta-slots";
      case OccupancyLimiter::ThreadSlots: return "thread-slots";
      case OccupancyLimiter::Registers: return "registers";
      case OccupancyLimiter::SharedMem: return "shared-mem";
    }
    return "?";
}

bool
isSchedulingLimit(OccupancyLimiter limiter)
{
    return limiter == OccupancyLimiter::WarpSlots ||
           limiter == OccupancyLimiter::CtaSlots ||
           limiter == OccupancyLimiter::ThreadSlots;
}

OccupancyResult
computeOccupancy(const GpuConfig &config, const Kernel &kernel,
                 const LaunchParams &launch)
{
    const std::uint32_t warps_per_cta = launch.warpsPerCta();
    const std::uint32_t threads_per_cta = launch.threadsPerCta();
    const std::uint32_t regs_per_warp =
        roundUp(std::uint64_t(kernel.regsPerThread()) * warpSize,
                config.regAllocGranularity);
    const std::uint32_t regs_per_cta = warps_per_cta * regs_per_warp;
    const std::uint32_t shared_per_cta =
        roundUp(kernel.sharedBytesPerCta(), config.sharedAllocGranularity);

    OccupancyResult r;
    r.ctasByWarpSlots = config.effMaxWarpsPerSm() / warps_per_cta;
    r.ctasByCtaSlots = config.effMaxCtasPerSm();
    r.ctasByThreadSlots = config.effMaxThreadsPerSm() / threads_per_cta;
    r.ctasByRegisters = config.registersPerSm / regs_per_cta;
    r.ctasBySharedMem = shared_per_cta
                            ? config.sharedMemPerSm / shared_per_cta
                            : std::numeric_limits<std::uint32_t>::max();

    struct Bound
    {
        std::uint32_t ctas;
        OccupancyLimiter limiter;
    };
    // Priority order resolves ties the way the paper classifies:
    // a kernel equally bound by a scheduling and a capacity structure is
    // reported against the scheduling one (VT cannot help it less).
    const Bound bounds[] = {
        {r.ctasByRegisters, OccupancyLimiter::Registers},
        {r.ctasBySharedMem, OccupancyLimiter::SharedMem},
        {r.ctasByThreadSlots, OccupancyLimiter::ThreadSlots},
        {r.ctasByCtaSlots, OccupancyLimiter::CtaSlots},
        {r.ctasByWarpSlots, OccupancyLimiter::WarpSlots},
    };
    r.ctasPerSm = bounds[0].ctas;
    r.limiter = bounds[0].limiter;
    for (const Bound &b : bounds) {
        if (b.ctas <= r.ctasPerSm) {
            r.ctasPerSm = b.ctas;
            r.limiter = b.limiter;
        }
    }
    if (r.ctasPerSm == 0)
        VTSIM_FATAL("kernel '", kernel.name(),
                    "' cannot fit a single CTA on an SM");

    r.ctasCapacityOnly =
        std::min(r.ctasByRegisters, r.ctasBySharedMem);

    // Grid smaller than the per-SM bound caps everything.
    const std::uint64_t grid = launch.numCtas();
    const std::uint64_t per_sm_grid = ceilDiv(grid, config.numSms);
    r.ctasPerSm = std::min<std::uint64_t>(r.ctasPerSm, per_sm_grid);
    r.ctasCapacityOnly =
        std::min<std::uint64_t>(r.ctasCapacityOnly, per_sm_grid);

    r.warpOccupancy = double(r.ctasPerSm) * warps_per_cta /
                      config.effMaxWarpsPerSm();
    r.registerUtilization = double(r.ctasPerSm) * regs_per_cta /
                            config.registersPerSm;
    r.sharedMemUtilization = double(r.ctasPerSm) * shared_per_cta /
                             config.sharedMemPerSm;
    r.registerUtilizationVt = double(r.ctasCapacityOnly) * regs_per_cta /
                              config.registersPerSm;
    r.sharedMemUtilizationVt = double(r.ctasCapacityOnly) *
                               shared_per_cta / config.sharedMemPerSm;
    return r;
}

} // namespace vtsim
