/**
 * @file
 * Pathfinder-style dynamic programming: each CTA sweeps its block of
 * columns down the grid, holding the previous row in a shared-memory
 * double buffer with a barrier per row. The kernel declares a large
 * shared allocation, so its occupancy is bounded by shared-memory
 * capacity — the second member of the capacity-limited class.
 */

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class Pathfinder : public Workload
{
  public:
    explicit Pathfinder(std::uint32_t scale)
        : cols_(scale == 0 ? 512 : 16384 * scale),
          rows_(scale == 0 ? 4 : 8)
    {}

    std::string name() const override { return "pathfinder"; }

    std::string
    description() const override
    {
        return "row-sweep DP, shared double buffer, 12 KB/CTA";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::CapacityLimited;
    }

    Kernel
    buildKernel() const override
    {
        // Buffer A at byte 0, buffer B at byte 6144 (256 words each is
        // plenty; the rest of the 12 KB allocation models the real
        // benchmark's block-sized pyramid storage).
        return assemble(R"(
.kernel pathfinder
.shared 12288
    ldp r0, 0            # data
    ldp r1, 1            # out
    ldp r2, 2            # totalCols
    ldp r3, 3            # rows
    s2r r4, ctaid.x
    s2r r5, ntid.x
    s2r r6, tid.x
    imad r7, r4, r5, r6  # col
    # load row 0 into buffer A
    shl r8, r7, 2
    iadd r8, r8, r0
    ldg r9, [r8]
    shl r10, r6, 2       # tid*4
    sts [r10], r9
    bar
    movi r11, 0          # curBase = 0 (buffer A)
    movi r12, 6144       # nxtBase
    movi r13, 1          # r
rloop:
    # cur = data[r][col]
    imad r14, r13, r2, r7
    shl r14, r14, 2
    iadd r14, r14, r0
    ldg r15, [r14]
    # neighbour indices clamped to the CTA block
    isub r16, r6, 1
    imax r16, r16, 0     # max handles the imm form: r16 = max(tid-1, 0)
    isub r17, r5, 1
    iadd r18, r6, 1
    imin r18, r18, r17   # min(tid+1, ntid-1)
    shl r16, r16, 2
    iadd r16, r16, r11
    lds r19, [r16]       # left
    iadd r20, r10, r11
    lds r21, [r20]       # mid
    shl r18, r18, 2
    iadd r18, r18, r11
    lds r22, [r18]       # right
    imin r23, r19, r21
    imin r23, r23, r22
    iadd r24, r15, r23   # value
    iadd r25, r10, r12
    sts [r25], r24
    bar
    # swap buffers
    mov r26, r11
    mov r11, r12
    mov r12, r26
    iadd r13, r13, 1
    isetp.lt r27, r13, r3
    bra r27, rloop
    # result: current buffer holds the last row's values
    iadd r28, r10, r11
    lds r29, [r28]
    shl r30, r7, 2
    iadd r30, r30, r1
    stg [r30], r29
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd0a);
        std::vector<std::uint32_t> data(std::size_t(rows_) * cols_);
        for (auto &v : data)
            v = rng.nextBelow(100);
        dataAddr_ = gmem.alloc(data.size() * 4);
        outAddr_ = gmem.alloc(cols_ * 4);
        gmem.writeWords(dataAddr_, data);

        // Host reference with the same per-block clamped semantics.
        const std::uint32_t block = 256;
        std::vector<std::uint32_t> prev(data.begin(), data.begin() + cols_);
        std::vector<std::uint32_t> cur(cols_);
        for (std::uint32_t r = 1; r < rows_; ++r) {
            for (std::uint32_t c = 0; c < cols_; ++c) {
                const std::uint32_t lo = c / block * block;
                const std::uint32_t hi = lo + block - 1;
                const std::uint32_t left = prev[c > lo ? c - 1 : lo];
                const std::uint32_t right = prev[c < hi ? c + 1 : hi];
                const std::uint32_t best =
                    std::min(left, std::min(prev[c], right));
                cur[c] = data[std::size_t(r) * cols_ + c] + best;
            }
            prev = cur;
        }
        expected_ = prev;

        LaunchParams lp;
        lp.cta = Dim3(block);
        lp.grid = Dim3(cols_ / block);
        lp.params = {std::uint32_t(dataAddr_), std::uint32_t(outAddr_),
                     cols_, rows_};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readWords(outAddr_, cols_);
        for (std::uint32_t c = 0; c < cols_; ++c)
            if (got[c] != expected_[c])
                return false;
        return true;
    }

  private:
    std::uint32_t cols_;
    std::uint32_t rows_;
    Addr dataAddr_ = 0, outAddr_ = 0;
    std::vector<std::uint32_t> expected_;
};

} // namespace

std::unique_ptr<Workload>
makePathfinder(std::uint32_t scale)
{
    return std::make_unique<Pathfinder>(scale);
}

} // namespace vtsim
