/**
 * @file
 * The pre-decoded micro-op interpreter (src/isa/microcode.hh) must be
 * observationally identical to the legacy per-instruction interpreter:
 * bit-identical KernelStats across every VASM benchmark kernel under
 * baseline, Virtual Thread and DYNCTA-throttled machines, with the
 * per-instruction debug oracle cross-checking both paths in place.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "gpu/gpu.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

enum class Machine { Baseline, Vt, Throttled };

std::string
toString(Machine m)
{
    switch (m) {
      case Machine::Baseline: return "baseline";
      case Machine::Vt: return "vt";
      case Machine::Throttled: return "throttled";
    }
    return "?";
}

GpuConfig
machineConfig(Machine m)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.numSms = 4;
    cfg.numMemPartitions = 2;
    cfg.maxCycles = 5'000'000;
    cfg.fastForwardEnabled = true;
    switch (m) {
      case Machine::Baseline:
        break;
      case Machine::Vt:
        cfg.vtEnabled = true;
        break;
      case Machine::Throttled:
        cfg.throttleEnabled = true;
        break;
    }
    return cfg;
}

KernelStats
runWith(GpuConfig cfg, const std::string &workload, bool microcode)
{
    cfg.microcodeEnabled = microcode;
    auto wl = makeWorkload(workload, 0);
    const Kernel k = wl->buildKernel();
    Gpu gpu(cfg);
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(k, lp);
    EXPECT_TRUE(wl->verify(gpu.memory()))
        << workload << (microcode ? "/microcode" : "/legacy");
    return stats;
}

/** Every field of KernelStats, bit for bit. */
void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &context)
{
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.warpInstructions, b.warpInstructions) << context;
    EXPECT_EQ(a.threadInstructions, b.threadInstructions) << context;
    EXPECT_EQ(a.ctasCompleted, b.ctasCompleted) << context;
    EXPECT_EQ(a.ipc, b.ipc) << context;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << context;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << context;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << context;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << context;
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << context;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << context;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << context;
    EXPECT_EQ(a.swapOuts, b.swapOuts) << context;
    EXPECT_EQ(a.swapIns, b.swapIns) << context;
    EXPECT_EQ(a.stalls.issued, b.stalls.issued) << context;
    EXPECT_EQ(a.stalls.memStall, b.stalls.memStall) << context;
    EXPECT_EQ(a.stalls.shortStall, b.stalls.shortStall) << context;
    EXPECT_EQ(a.stalls.barrierStall, b.stalls.barrierStall) << context;
    EXPECT_EQ(a.stalls.swapStall, b.stalls.swapStall) << context;
    EXPECT_EQ(a.stalls.idle, b.stalls.idle) << context;
}

/** Workload x machine grid: every VASM benchmark kernel in the suite
 *  under all three machine shapes. */
class MicrocodeBitIdentity
    : public ::testing::TestWithParam<std::tuple<std::string, Machine>>
{};

TEST_P(MicrocodeBitIdentity, MatchesLegacyInterpreter)
{
    const auto &[workload, machine] = GetParam();
    const std::string context = workload + "/" + toString(machine);
    const GpuConfig cfg = machineConfig(machine);
    const KernelStats micro = runWith(cfg, workload, true);
    const KernelStats legacy = runWith(cfg, workload, false);
    expectIdenticalStats(micro, legacy, context);
}

std::string
gridName(const ::testing::TestParamInfo<
         std::tuple<std::string, Machine>> &info)
{
    return std::get<0>(info.param) + "_" +
           toString(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, MicrocodeBitIdentity,
    ::testing::Combine(::testing::ValuesIn(benchmarkNames()),
                       ::testing::Values(Machine::Baseline, Machine::Vt,
                                         Machine::Throttled)),
    gridName);

TEST(Microcode, DefaultOn)
{
    EXPECT_TRUE(GpuConfig::fermiLike().microcodeEnabled);
    EXPECT_TRUE(GpuConfig::testMini().microcodeEnabled);
}

/** The per-instruction oracle executes BOTH interpreters and fatals on
 *  the first divergence in result lanes, branching or memory requests.
 *  Running a divergent, atomic-heavy and a shared-memory kernel under
 *  it is a direct cross-check of the whole micro-op stream. */
TEST(Microcode, OracleCrossChecksBothPaths)
{
    for (const char *wl : {"bfs", "histogram", "reduce"}) {
        GpuConfig cfg = machineConfig(Machine::Baseline);
        cfg.microOracle = true;
        const KernelStats oracle = runWith(cfg, wl, true);
        cfg.microOracle = false;
        const KernelStats plain = runWith(cfg, wl, true);
        // The oracle must observe without perturbing.
        expectIdenticalStats(oracle, plain, std::string(wl) + "/oracle");
    }
}

} // namespace
} // namespace vtsim
