file(REMOVE_RECURSE
  "CMakeFiles/occupancy_explorer.dir/occupancy_explorer.cc.o"
  "CMakeFiles/occupancy_explorer.dir/occupancy_explorer.cc.o.d"
  "occupancy_explorer"
  "occupancy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occupancy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
