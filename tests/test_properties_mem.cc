/**
 * @file
 * Property tests for the memory components against simple reference
 * models: LRU cache behaviour, coalescer invariants, DRAM work
 * conservation.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "mem/dram.hh"

namespace vtsim {
namespace {

/** Straightforward reference LRU cache over (set -> list of tags). */
class RefLru
{
  public:
    RefLru(std::uint32_t sets, std::uint32_t assoc, std::uint32_t line)
        : sets_(sets), assoc_(assoc), line_(line)
    {}

    bool
    probe(Addr line_addr) const
    {
        const auto &set = sets_map_[setOf(line_addr)];
        for (Addr t : set)
            if (t == line_addr)
                return true;
        return false;
    }

    /** Touch on hit; insert-with-LRU-eviction on fill. */
    void
    touch(Addr line_addr)
    {
        auto &set = sets_map_[setOf(line_addr)];
        set.remove(line_addr);
        set.push_front(line_addr);
    }

    void
    fill(Addr line_addr)
    {
        auto &set = sets_map_[setOf(line_addr)];
        set.remove(line_addr);
        set.push_front(line_addr);
        while (set.size() > assoc_)
            set.pop_back();
    }

  private:
    std::uint32_t
    setOf(Addr line_addr) const
    {
        return (line_addr / line_) % sets_;
    }

    std::uint32_t sets_, assoc_, line_;
    mutable std::map<std::uint32_t, std::list<Addr>> sets_map_;
};

class CacheLruProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheLruProperty, MatchesReferenceModel)
{
    CacheParams p;
    p.size = 2048; // 4 sets x 4 ways x 128B
    p.assoc = 4;
    p.lineSize = 128;
    p.numMshrs = 1;
    p.mshrTargets = 1;
    Cache cache(p);
    RefLru ref(p.size / (p.assoc * p.lineSize), p.assoc, p.lineSize);

    Rng rng(GetParam());
    for (int step = 0; step < 2000; ++step) {
        // 16 lines aliasing heavily over 4 sets.
        const Addr line = rng.nextBelow(16) * p.lineSize;
        ASSERT_EQ(cache.probe(line), ref.probe(line))
            << "step " << step << " line " << line;
        MemRequest req;
        req.lineAddr = line;
        const auto outcome = cache.access(req);
        if (outcome == CacheOutcome::Hit) {
            ref.touch(line);
        } else {
            ASSERT_EQ(outcome, CacheOutcome::MissNew);
            cache.fill(line); // Immediate fill keeps the models aligned.
            ref.fill(line);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheLruProperty,
                         ::testing::Range<std::uint64_t>(100, 106));

class CoalescerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoalescerProperty, InvariantsOnRandomAccessPatterns)
{
    Rng rng(GetParam());
    for (int round = 0; round < 200; ++round) {
        const std::uint32_t line_size = 1u << (5 + rng.nextBelow(3));
        std::vector<LaneAccess> acc;
        const std::uint32_t lanes = 1 + rng.nextBelow(warpSize);
        for (std::uint32_t lane = 0; lane < lanes; ++lane)
            acc.push_back({lane, rng.nextBelow(1 << 16)});

        const auto txns = coalesce(acc, line_size);

        // (a) Lane counts are conserved.
        std::uint32_t total_lanes = 0;
        for (const auto &t : txns)
            total_lanes += t.lanes;
        EXPECT_EQ(total_lanes, lanes);

        // (b) Lines are unique and aligned.
        std::set<Addr> lines;
        for (const auto &t : txns) {
            EXPECT_EQ(t.lineAddr % line_size, 0u);
            EXPECT_TRUE(lines.insert(t.lineAddr).second);
            EXPECT_GE(t.bytes, 4u);
            EXPECT_LE(t.bytes, line_size);
        }

        // (c) Every access's line is covered.
        for (const auto &a : acc) {
            const Addr line = a.addr & ~Addr(line_size - 1);
            EXPECT_TRUE(lines.count(line));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescerProperty,
                         ::testing::Range<std::uint64_t>(200, 206));

class DramProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DramProperty, AllReadsCompleteAndWorkIsConserved)
{
    DramParams p;
    p.numBanks = 4;
    p.rowBufferBytes = 1024;
    p.rowHitLatency = 50;
    p.rowMissLatency = 100;
    p.rowHitOccupancy = 4;
    p.rowMissOccupancy = 20;
    p.bytesPerCycle = 32;
    p.lineSize = 128;
    Dram dram(p);

    Rng rng(GetParam());
    std::uint32_t reads = 0;
    std::uint64_t bytes = 0;
    Cycle c = 0;
    for (int i = 0; i < 300; ++i) {
        const Addr line = rng.nextBelow(256) * p.lineSize;
        const bool is_read = rng.nextBool(0.7);
        const std::uint32_t sz = is_read ? p.lineSize
                                         : 4u * (1 + rng.nextBelow(32));
        dram.enqueue(line, sz, is_read, c);
        reads += is_read;
        bytes += sz;
        // Random arrival spacing, including bursts.
        c += rng.nextBelow(3);
    }
    std::uint32_t completed = 0;
    for (Cycle end = c + 200000; c < end && !dram.idle(); ++c)
        completed += dram.advance(c).size();
    EXPECT_TRUE(dram.idle());
    EXPECT_EQ(completed, reads);
    EXPECT_EQ(dram.bytesTransferred(), bytes);
    EXPECT_EQ(dram.rowHits() + dram.rowMisses(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramProperty,
                         ::testing::Range<std::uint64_t>(300, 306));

} // namespace
} // namespace vtsim
