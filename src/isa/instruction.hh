/**
 * @file
 * The VASM instruction set: a compact warp-level SIMT ISA standing in for
 * PTX/SASS. Rich enough to express the paper's benchmark archetypes
 * (streaming, tiled shared-memory kernels, reductions, irregular loads,
 * divergent control flow, barriers, atomics).
 */

#ifndef VTSIM_ISA_INSTRUCTION_HH
#define VTSIM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace vtsim {

/** Operation codes. Register values are untyped 32-bit words; F-prefixed
 *  ops reinterpret them as IEEE-754 floats. */
enum class Opcode : std::uint8_t
{
    NOP,
    // --- ALU (integer) --------------------------------------------------
    MOV,    ///< dst = src0
    MOVI,   ///< dst = imm
    IADD,   ///< dst = src0 + src1/imm
    ISUB,   ///< dst = src0 - src1/imm
    IMUL,   ///< dst = src0 * src1/imm (low 32 bits)
    IMAD,   ///< dst = src0 * src1 + src2
    IMIN,   ///< dst = min(signed)
    IMAX,   ///< dst = max(signed)
    AND,
    OR,
    XOR,
    NOT,    ///< dst = ~src0
    SHL,
    SHR,    ///< logical right shift
    ISETP,  ///< dst = (src0 cmp src1/imm) ? 1 : 0, signed compare
    SEL,    ///< dst = src2 ? src0 : src1
    // --- ALU (float, bit-cast) -------------------------------------------
    FADD,
    FSUB,
    FMUL,
    FFMA,   ///< dst = src0 * src1 + src2
    FMIN,
    FMAX,
    FSETP,  ///< dst = (src0 cmp src1) ? 1 : 0, float compare
    I2F,    ///< dst = float(int(src0))
    F2I,    ///< dst = int(trunc(float(src0)))
    // --- SFU (long fixed latency) ------------------------------------------
    IDIV,   ///< signed division (0 divisor -> 0)
    IREM,   ///< signed remainder (0 divisor -> 0)
    FRCP,   ///< 1/x
    FSQRT,
    FEXP,   ///< e^x
    FLOG,   ///< ln(x); non-positive -> 0
    // --- Special / parameters ----------------------------------------------
    S2R,    ///< dst = special register (sreg field)
    LDP,    ///< dst = kernel parameter word [imm]
    // --- Memory --------------------------------------------------------------
    LDG,    ///< dst = global[src0 + imm]
    STG,    ///< global[src0 + imm] = src1
    LDS,    ///< dst = shared[src0 + imm]
    STS,    ///< shared[src0 + imm] = src1
    ATOMG_ADD, ///< dst = old global[src0 + imm]; mem += src1 (bypasses L1)
    // --- Control -----------------------------------------------------------
    BRA,    ///< branch to target for lanes where src0 != 0 (or all lanes
            ///< when src0 is unset); reconverge at reconvergePc
    BAR,    ///< CTA-wide barrier
    EXIT,   ///< terminate lanes
    NumOpcodes,
};

/** Comparison operator used by ISETP/FSETP. */
enum class CmpOp : std::uint8_t { EQ, NE, LT, LE, GT, GE };

/**
 * Cache operator on global loads (PTX-style). CacheAll is the default
 * (allocate in L1); Streaming (.cg) bypasses the L1 and caches only at
 * the L2 — the idiom compilers use for data with no temporal reuse.
 */
enum class CacheOp : std::uint8_t { CacheAll, Streaming };

/** Special registers readable through S2R. */
enum class SpecialReg : std::uint8_t
{
    TidX, TidY, TidZ,
    NTidX, NTidY, NTidZ,
    CtaIdX, CtaIdY, CtaIdZ,
    NCtaIdX, NCtaIdY, NCtaIdZ,
    LaneId,
    WarpIdInCta,
};

/** Functional-unit class an opcode occupies. */
enum class FuncUnit : std::uint8_t { Alu, Sfu, Mem, Control };

/** Sentinel for "operand not present". */
inline constexpr RegIndex noReg = 0xffff;

/**
 * One decoded VASM instruction.
 *
 * A fixed-shape record: at most one destination, three register sources,
 * and one 32-bit immediate. When useImm is set the immediate replaces the
 * *second* source operand (src[1]) for ALU ops, or acts as the address
 * offset for memory ops (where it is always live).
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIndex dst = noReg;
    RegIndex src[3] = {noReg, noReg, noReg};
    bool useImm = false;
    std::int32_t imm = 0;
    CmpOp cmp = CmpOp::EQ;
    CacheOp cacheOp = CacheOp::CacheAll;
    SpecialReg sreg = SpecialReg::TidX;
    Pc branchTarget = invalidPc;
    /** Where diverged lanes reconverge; filled by the builder/assembler. */
    Pc reconvergePc = invalidPc;

    /** Functional unit this opcode issues to. Inline: the issue budget
     *  check runs this for every ready candidate every cycle. */
    FuncUnit
    funcUnit() const
    {
        switch (op) {
          case Opcode::IDIV:
          case Opcode::IREM:
          case Opcode::FRCP:
          case Opcode::FSQRT:
          case Opcode::FEXP:
          case Opcode::FLOG:
            return FuncUnit::Sfu;
          case Opcode::LDG:
          case Opcode::STG:
          case Opcode::LDS:
          case Opcode::STS:
          case Opcode::ATOMG_ADD:
            return FuncUnit::Mem;
          case Opcode::BRA:
          case Opcode::BAR:
          case Opcode::EXIT:
            return FuncUnit::Control;
          default:
            return FuncUnit::Alu;
        }
    }

    bool isBranch() const { return op == Opcode::BRA; }
    bool isBarrier() const { return op == Opcode::BAR; }
    bool isExit() const { return op == Opcode::EXIT; }

    bool
    isLoad() const
    {
        return op == Opcode::LDG || op == Opcode::LDS ||
               op == Opcode::ATOMG_ADD;
    }

    bool
    isStore() const
    {
        return op == Opcode::STG || op == Opcode::STS;
    }

    bool
    isGlobalMem() const
    {
        return op == Opcode::LDG || op == Opcode::STG ||
               op == Opcode::ATOMG_ADD;
    }

    bool
    isSharedMem() const
    {
        return op == Opcode::LDS || op == Opcode::STS;
    }

    bool isMem() const { return isGlobalMem() || isSharedMem(); }

    bool hasDst() const { return dst != noReg; }

    /** Number of live register source operands. */
    std::uint32_t numSrcs() const;
};

/** Mnemonic, e.g. "iadd". */
std::string toString(Opcode op);
std::string toString(CmpOp cmp);
std::string toString(SpecialReg sreg);

/** Parse a mnemonic; returns NumOpcodes on failure. */
Opcode opcodeFromString(const std::string &name);
/** Parse a comparison name ("eq".."ge"); true on success. */
bool cmpFromString(const std::string &name, CmpOp &out);
/** Parse a special-register name ("tid.x", "laneid", ...). */
bool sregFromString(const std::string &name, SpecialReg &out);

} // namespace vtsim

#endif // VTSIM_ISA_INSTRUCTION_HH
