file(REMOVE_RECURSE
  "../bench/ext4_throttling"
  "../bench/ext4_throttling.pdb"
  "CMakeFiles/ext4_throttling.dir/ext4_throttling.cc.o"
  "CMakeFiles/ext4_throttling.dir/ext4_throttling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext4_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
