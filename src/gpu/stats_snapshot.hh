/**
 * @file
 * Point-in-time copy of the cumulative component counters that
 * KernelStats reports. Gpu::launch captures one before and one after
 * the simulation loop and reports the difference, so per-launch stats
 * stay correct across repeated launches on the same Gpu.
 */

#ifndef VTSIM_GPU_STATS_SNAPSHOT_HH
#define VTSIM_GPU_STATS_SNAPSHOT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sm/sm_core.hh"

namespace vtsim {

class MemoryPartition;
struct KernelStats;

class StatsSnapshot
{
  public:
    static StatsSnapshot
    capture(std::vector<std::unique_ptr<SmCore>> &sms,
            std::vector<std::unique_ptr<MemoryPartition>> &partitions);

    /** Accumulate the counter growth since @p before into @p stats. */
    void delta(const StatsSnapshot &before, KernelStats &stats) const;

  private:
    struct SmCounters
    {
        std::uint64_t instr = 0;
        std::uint64_t tinstr = 0;
        std::uint64_t ctas = 0;
        std::uint64_t swapOuts = 0;
        std::uint64_t swapIns = 0;
        std::uint64_t l1h = 0;
        std::uint64_t l1m = 0;
        StallBreakdown stalls;
    };

    std::vector<SmCounters> sms_;
    std::uint64_t l2h_ = 0;
    std::uint64_t l2m_ = 0;
    std::uint64_t drh_ = 0;
    std::uint64_t drm_ = 0;
    std::uint64_t drb_ = 0;
};

} // namespace vtsim

#endif // VTSIM_GPU_STATS_SNAPSHOT_HH
