# Empty dependencies file for ext4_throttling.
# This may be replaced when dependencies are built.
