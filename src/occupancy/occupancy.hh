/**
 * @file
 * Static occupancy calculator: given a kernel's resource declaration and a
 * machine, how many CTAs fit per SM and which limit binds. This
 * reproduces the paper's motivation study (FIG-1/FIG-2): the claim that
 * most general-purpose workloads are throttled by the *scheduling* limit
 * while the *capacity* limit still has headroom.
 */

#ifndef VTSIM_OCCUPANCY_OCCUPANCY_HH
#define VTSIM_OCCUPANCY_OCCUPANCY_HH

#include <string>

#include "config/gpu_config.hh"
#include "isa/kernel.hh"

namespace vtsim {

/** Which hardware limit bounds concurrent CTAs per SM. */
enum class OccupancyLimiter
{
    WarpSlots,   ///< Scheduling: hardware warp contexts.
    CtaSlots,    ///< Scheduling: hardware CTA slots.
    ThreadSlots, ///< Scheduling: thread slots.
    Registers,   ///< Capacity: register file.
    SharedMem,   ///< Capacity: shared memory.
};

std::string toString(OccupancyLimiter limiter);

/** True for the limits the Virtual Thread architecture virtualises. */
bool isSchedulingLimit(OccupancyLimiter limiter);

/** Full occupancy analysis of one kernel on one machine. */
struct OccupancyResult
{
    std::uint32_t ctasByWarpSlots = 0;
    std::uint32_t ctasByCtaSlots = 0;
    std::uint32_t ctasByThreadSlots = 0;
    std::uint32_t ctasByRegisters = 0;
    std::uint32_t ctasBySharedMem = 0;

    /** CTAs/SM under all limits (the baseline machine). */
    std::uint32_t ctasPerSm = 0;
    /** CTAs/SM under the capacity limit only (the VT admission rule). */
    std::uint32_t ctasCapacityOnly = 0;

    OccupancyLimiter limiter = OccupancyLimiter::WarpSlots;

    /** Warp-slot occupancy of the baseline: resident warps / warp slots. */
    double warpOccupancy = 0.0;

    /** Fraction of the register file the baseline leaves populated. */
    double registerUtilization = 0.0;
    /** Fraction of shared memory the baseline leaves populated. */
    double sharedMemUtilization = 0.0;
    /** Same, under capacity-only admission (what VT achieves). */
    double registerUtilizationVt = 0.0;
    double sharedMemUtilizationVt = 0.0;

    /** Scheduling-limited kernels are VT's target population. */
    bool
    schedulingLimited() const
    {
        return isSchedulingLimit(limiter) &&
               ctasCapacityOnly > ctasPerSm;
    }
};

/**
 * Analyse @p kernel launched with @p launch on @p config.
 * @throws FatalError if a single CTA cannot fit at all.
 */
OccupancyResult computeOccupancy(const GpuConfig &config,
                                 const Kernel &kernel,
                                 const LaunchParams &launch);

} // namespace vtsim

#endif // VTSIM_OCCUPANCY_OCCUPANCY_HH
