#include "common/trace.hh"

#include <sstream>

#include "common/log.hh"

namespace vtsim {

Trace &
Trace::instance()
{
    static Trace trace;
    return trace;
}

void
Trace::enable(TraceFlag flags, std::ostream *os)
{
    mask_ = static_cast<std::uint32_t>(flags);
    out_ = os;
}

void
Trace::log(TraceFlag flag, Cycle cycle, const std::string &component,
           const std::string &message)
{
    if (!enabled(flag))
        return;
    (*out_) << cycle << ": " << component << ": " << message << '\n';
}

TraceFlag
Trace::parseFlags(const std::string &list)
{
    TraceFlag flags = TraceFlag::None;
    std::istringstream in(list);
    std::string name;
    while (std::getline(in, name, ',')) {
        if (name == "issue")
            flags = flags | TraceFlag::Issue;
        else if (name == "mem")
            flags = flags | TraceFlag::Mem;
        else if (name == "swap")
            flags = flags | TraceFlag::Swap;
        else if (name == "cta")
            flags = flags | TraceFlag::Cta;
        else if (name == "dram")
            flags = flags | TraceFlag::Dram;
        else if (name == "barrier")
            flags = flags | TraceFlag::Barrier;
        else if (name == "all")
            flags = flags | TraceFlag::All;
        else if (!name.empty())
            VTSIM_FATAL("unknown trace flag '", name, "'");
    }
    return flags;
}

} // namespace vtsim
