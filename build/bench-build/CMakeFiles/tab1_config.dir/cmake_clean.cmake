file(REMOVE_RECURSE
  "../bench/tab1_config"
  "../bench/tab1_config.pdb"
  "CMakeFiles/tab1_config.dir/tab1_config.cc.o"
  "CMakeFiles/tab1_config.dir/tab1_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
