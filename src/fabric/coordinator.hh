/**
 * @file
 * The vtsim-coord coordinator: federates N vtsimd daemons behind one
 * NDJSON submit endpoint (docs/ARCHITECTURE.md "Distributed fabric").
 *
 * Daemons join by dialing in and sending "register" (name, dial-back
 * address, worker count), then heartbeat their load. Clients submit
 * through the coordinator exactly as they would to a single daemon;
 * job ids handed out here are fabric-global, and wait/query/status
 * resolve against the coordinator's view.
 *
 * Scheduling, all on one maintenance thread so it needs no RPC-level
 * locking:
 *
 *  - Admission (handler threads): per-tenant token-bucket rate
 *    limiting and in-flight fair-share quotas, plus a total-backlog
 *    bound. Over-limit submits are rejected with a retry_after_ms
 *    backpressure hint instead of queueing unboundedly.
 *  - Dispatch: pending jobs go to daemons round-robin across tenants
 *    (fair share), each to the node chosen by affinity hint, then
 *    workload locality (last node that ran the same workload), then
 *    least load per worker.
 *  - Work stealing: when a daemon sits idle while another's queue is
 *    deep, a waiting job is yanked from the deep daemon and
 *    resubmitted to the idle one. A *parked* job migrates: its
 *    vtsim-ckpt-v1 image is shipped chunk by chunk over the transport
 *    and the job resumes on the idle daemon bit-identically.
 *  - Node loss: a daemon that misses heartbeats long enough is marked
 *    dead and its in-flight jobs are re-dispatched from scratch —
 *    deterministic simulation makes the rerun's results identical.
 */

#ifndef VTSIM_FABRIC_COORDINATOR_HH
#define VTSIM_FABRIC_COORDINATOR_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fabric/line_server.hh"
#include "service/client.hh"
#include "service/event_log.hh"
#include "service/json.hh"
#include "stats/stats.hh"
#include "telemetry/stat_registry.hh"

namespace vtsim::fabric {

struct CoordinatorConfig
{
    /** Client + daemon endpoint (one listener serves both). */
    HostPort listen;
    std::string authToken;
    /** Coordinator lifecycle event log (vtsim-evlog-v1); empty =
     *  disabled. */
    std::string eventLogPath;
    /** Token-bucket refill per tenant in submits/second; 0 disables
     *  rate limiting. */
    double tenantRate = 0.0;
    /** Token-bucket burst capacity per tenant. */
    double tenantBurst = 8.0;
    /** Per-tenant in-flight (pending + dispatched) fair-share quota;
     *  0 = unlimited. */
    std::size_t tenantQuota = 64;
    /** Total pending-job backlog bound — queue-depth-driven
     *  backpressure starts here. */
    std::size_t maxBacklog = 256;
    /** A node missing heartbeats this long is declared lost. */
    int heartbeatTimeoutMs = 3000;
    /** Maintenance cadence (dispatch/steal/poll). */
    int maintenanceIntervalMs = 25;
    /** How long shutdown() waits for dispatched jobs to drain. */
    int drainTimeoutMs = 300000;
};

class Coordinator
{
  public:
    explicit Coordinator(CoordinatorConfig config);

    /** Stops the maintenance thread (as shutdown(), minus the drain). */
    ~Coordinator();

    /** Bind the listener and spawn the maintenance thread. */
    void start();

    /** Accept-and-serve until requestStop() (a client's shutdown op). */
    void serve();

    /** Ask serve() to return. Safe from signal handlers. */
    void requestStop();

    /**
     * Drain: stop admitting, keep dispatching/polling until every
     * admitted job is terminal (or drainTimeoutMs passes), then retire
     * the maintenance thread. Idempotent.
     */
    void shutdown();

    /** After start(): the TCP port actually bound. */
    std::uint16_t boundPort() const { return server_.boundTcpPort(); }

    /** The status-op reply body (fleet + tenants + jobs). */
    service::Json statusJson() const;

    /** The "fabric" section of the coordinator stats JSON. */
    service::Json statsJsonSection() const;

    /** The fabric StatRegistry in Prometheus text format. */
    std::string metricsText() const;

    // Counter peeks for tests and the fabric-smoke gate.
    std::uint64_t dispatches() const { return dispatches_.value(); }
    std::uint64_t steals() const { return steals_.value(); }
    std::uint64_t migrations() const { return migrations_.value(); }
    std::uint64_t throttles() const { return throttles_.value(); }

  private:
    struct Node
    {
        std::string name;
        HostPort addr;
        unsigned workers = 0;
        std::uint64_t queueDepth = 0;
        std::uint64_t running = 0;
        std::uint64_t parked = 0;
        std::chrono::steady_clock::time_point lastBeat;
        bool alive = false;
        /** Dispatches since the last heartbeat — a load estimate for
         *  placement decisions between (lagging) heartbeats. */
        std::uint64_t sentSinceBeat = 0;
        std::uint64_t stealsIn = 0, stealsOut = 0;
        std::uint64_t migrationsIn = 0, migrationsOut = 0;
    };

    struct Tenant
    {
        double tokens = 0.0;
        bool seeded = false;
        std::chrono::steady_clock::time_point lastRefill;
        std::size_t inFlight = 0;
        std::uint64_t submitted = 0;
        std::uint64_t throttled = 0;
    };

    struct FabricJob
    {
        std::uint64_t gid = 0;
        std::uint64_t seq = 0; ///< Admission order (FIFO per tenant).
        std::string tenant;
        std::string affinity;  ///< Preferred node name ("" = none).
        std::string workload;
        std::string priority;  ///< "low"|"normal"|"high" (display).
        service::Json::Object submitBody; ///< Forwarded verbatim.
        enum class State { Pending, Dispatched, Terminal };
        State state = State::Pending;
        std::string node;          ///< Dispatched/terminal location.
        std::uint64_t localId = 0; ///< Job id on that node.
        std::string localState;    ///< Last polled daemon-side state.
        service::Json result;      ///< Terminal snapshot (rewritten).
        std::uint64_t lastEventSeq = 0;
    };

    bool handleLine(int fd, const std::string &line);
    bool handleSubmit(int fd, const service::Json &doc,
                      const std::string &line);
    bool handleRegister(int fd, const service::Json &doc);
    bool handleHeartbeat(int fd, const service::Json &doc);
    bool handleWait(int fd, const service::Json &doc);
    bool handleQuery(int fd, const service::Json &doc);

    void maintenanceLoop();
    void checkNodeTimeouts();
    void dispatchRound();
    void stealRound();
    void pollRound();

    /** Cached connection to @p node (maintenance thread only);
     *  reconnects once on demand, nullptr when unreachable. */
    service::Client *nodeClient(const std::string &name);
    void dropNodeClient(const std::string &name);
    /** One request to @p node, nullptr Json on any transport error. */
    std::unique_ptr<service::Json>
    nodeRequest(const std::string &node, const service::Json &req);

    service::Json queryLocked(const FabricJob &job) const;
    void eventJobLocked(FabricJob &job, const char *event,
                        service::Json::Object fields = {});
    void noteGaugesLocked();

    CoordinatorConfig config_;
    LineServer server_;

    mutable std::mutex mu_;
    std::condition_variable doneCv_;  ///< wait() blocks here.
    std::condition_variable maintCv_; ///< Maintenance pacing/stop.
    bool draining_ = false;
    bool stopMaintenance_ = false;

    std::map<std::string, Node> nodes_;
    std::map<std::string, Tenant> tenants_;
    std::map<std::uint64_t, std::unique_ptr<FabricJob>> jobs_;
    std::uint64_t nextGid_ = 1;
    std::uint64_t nextSeq_ = 1;
    /** Fair-share rotation marker: dispatch resumes after this
     *  tenant. */
    std::string lastServedTenant_;
    /** Workload-locality hint: last node a workload was placed on. */
    std::map<std::string, std::string> lastNodeForWorkload_;

    std::chrono::steady_clock::time_point started_;

    // --- Telemetry (StatGroup "fabric") ------------------------------
    Counter submitted_;
    Counter dispatches_;
    Counter steals_;
    Counter migrations_;
    Counter throttles_;
    Counter rejectedBusy_;
    Counter nodeLosses_;
    Counter completed_;
    Counter failed_;
    std::uint64_t nodesAlive_ = 0;    ///< Gauge.
    std::uint64_t jobsPending_ = 0;   ///< Gauge.
    std::uint64_t jobsDispatched_ = 0; ///< Gauge.
    StatGroup statsGroup_{"fabric"};
    telemetry::StatRegistry registry_;

    std::unique_ptr<service::EventLog> evlog_;

    /** Maintenance-thread-only state: cached daemon connections keyed
     *  by node name, with the address they were dialed at. */
    struct CachedClient
    {
        std::string addr;
        std::unique_ptr<service::Client> client;
    };
    std::map<std::string, CachedClient> clients_;

    std::thread maintenance_;
    std::once_flag shutdownOnce_;
};

} // namespace vtsim::fabric

#endif // VTSIM_FABRIC_COORDINATOR_HH
