#include "mem/coalescer.hh"

#include <algorithm>
#include <array>
#include <bit>

#include "common/log.hh"

namespace vtsim {

std::vector<CoalescedAccess>
coalesce(const std::vector<LaneAccess> &accesses, std::uint32_t line_size)
{
    VTSIM_ASSERT(isPowerOfTwo(line_size), "line size must be power of two");
    // A 128-bit mask of line-relative word indices tracks the touched
    // 4-byte words per line (a 4-byte access can straddle two words;
    // straddling the line itself folds into this line's payload, index
    // line_size/4 — the shape, not exactness, matters there).
    VTSIM_ASSERT(line_size <= 508, "line size beyond the word-mask range");
    std::vector<CoalescedAccess> out;
    std::vector<std::array<std::uint64_t, 2>> words;
    out.reserve(accesses.size());
    words.reserve(accesses.size());

    for (const auto &acc : accesses) {
        const Addr line = acc.addr & ~static_cast<Addr>(line_size - 1);
        // Order of first touch matters for determinism; the handful of
        // unique lines per warp makes a linear scan the cheap lookup.
        std::size_t idx = out.size();
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (out[i].lineAddr == line) {
                idx = i;
                break;
            }
        }
        if (idx == out.size()) {
            out.push_back({line, 0, 1});
            words.push_back({0, 0});
        } else {
            ++out[idx].lanes;
        }
        const Addr base = line / 4;
        const auto w0 = static_cast<std::uint32_t>(acc.addr / 4 - base);
        const auto w1 = static_cast<std::uint32_t>((acc.addr + 3) / 4 - base);
        words[idx][w0 >> 6] |= std::uint64_t{1} << (w0 & 63);
        words[idx][w1 >> 6] |= std::uint64_t{1} << (w1 & 63);
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
        const auto w = static_cast<std::uint32_t>(
            std::popcount(words[i][0]) + std::popcount(words[i][1]));
        out[i].bytes = std::min(w * 4u, line_size);
    }
    return out;
}

std::uint32_t
sharedMemPasses(const std::vector<LaneAccess> &accesses,
                std::uint32_t num_banks)
{
    VTSIM_ASSERT(isPowerOfTwo(num_banks), "bank count must be power of two");
    if (accesses.empty())
        return 0;
    // Passes = the largest number of distinct words mapping to one bank.
    // This runs once per shared-memory instruction issued, so it is hot:
    // dedupe the (at most warpSize) word addresses through a small
    // open-addressed probe table and keep a running per-bank count —
    // one pass, no quadratic rescans. The result is order-independent,
    // so the issue-order walk stays deterministic.
    VTSIM_ASSERT(accesses.size() <= warpSize,
                 "more shared accesses than lanes");
    constexpr std::uint32_t tableSize = 64; // 2x lanes: short probes.
    constexpr Addr emptySlot = ~Addr{0};    // addr+3 can never wrap there.
    Addr table[tableSize];
    std::fill(std::begin(table), std::end(table), emptySlot);
    Addr words[warpSize];
    std::uint32_t num_words = 0;
    for (const auto &acc : accesses) {
        const Addr word = acc.addr / 4;
        std::uint32_t slot =
            (static_cast<std::uint32_t>(word) * 0x9e3779b9u) >> 26;
        while (table[slot] != emptySlot && table[slot] != word)
            slot = (slot + 1) & (tableSize - 1);
        if (table[slot] == emptySlot) {
            table[slot] = word;
            words[num_words++] = word;
        }
    }
    if (num_banks <= tableSize) {
        std::uint8_t in_bank[tableSize] = {};
        std::uint32_t passes = 1;
        for (std::uint32_t i = 0; i < num_words; ++i) {
            const std::uint8_t n = ++in_bank[words[i] & (num_banks - 1)];
            passes = std::max<std::uint32_t>(passes, n);
        }
        return passes;
    }
    // Implausibly wide bank configs: count by rescans (num_words <= 32).
    std::uint32_t passes = 1;
    for (std::uint32_t i = 0; i < num_words; ++i) {
        const Addr bank = words[i] & (num_banks - 1);
        std::uint32_t in_bank = 1;
        for (std::uint32_t j = i + 1; j < num_words; ++j) {
            if ((words[j] & (num_banks - 1)) == bank)
                ++in_bank;
        }
        passes = std::max(passes, in_bank);
    }
    return passes;
}

} // namespace vtsim
