/**
 * @file
 * Parallel reduction: grid-stride partial sums, shared-memory tree within
 * the CTA (barriers every level), and a global atomic to combine CTA
 * results. Integer data keeps the result order-independent and therefore
 * exactly checkable.
 */

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class Reduction : public Workload
{
  public:
    explicit Reduction(std::uint32_t scale)
        : n_(scale == 0 ? 2048 : 131072 * scale)
    {}

    std::string name() const override { return "reduce"; }

    std::string
    description() const override
    {
        return "integer sum: shared-mem tree + global atomic";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        return assemble(R"(
.kernel reduce
.shared 512
    ldp r0, 0            # in
    ldp r2, 2            # n
    ldp r8, 3            # total threads
    s2r r3, ctaid.x
    s2r r4, ntid.x
    s2r r5, tid.x
    imad r6, r3, r4, r5  # gid
    movi r7, 0           # acc
loop:
    isetp.ge r9, r6, r2
    bra r9, loaded
    shl r10, r6, 2
    iadd r10, r10, r0
    ldg r11, [r10]
    iadd r7, r7, r11
    iadd r6, r6, r8
    jmp loop
loaded:
    shl r12, r5, 2       # my shared slot
    sts [r12], r7
    bar
    shr r13, r4, 1       # s = ntid/2
tree:
    isetp.ge r14, r5, r13
    bra r14, skip
    iadd r15, r5, r13
    shl r15, r15, 2
    lds r16, [r15]
    lds r17, [r12]
    iadd r17, r17, r16
    sts [r12], r17
skip:
    bar
    shr r13, r13, 1
    isetp.gt r18, r13, 0
    bra r18, tree
    isetp.ne r19, r5, 0
    bra r19, fin
    lds r20, [r12]
    ldp r1, 1            # out
    atomg.add r21, [r1], r20
fin:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd03);
        std::vector<std::uint32_t> in(n_);
        expected_ = 0;
        for (std::uint32_t i = 0; i < n_; ++i) {
            in[i] = rng.nextBelow(1000);
            expected_ += in[i];
        }
        inAddr_ = gmem.alloc(n_ * 4);
        outAddr_ = gmem.alloc(4);
        gmem.writeWords(inAddr_, in);
        gmem.write32(outAddr_, 0);

        const std::uint32_t total_threads = roundUp(n_ / 4, 128);
        LaunchParams lp;
        lp.cta = Dim3(128);
        lp.grid = Dim3(total_threads / 128);
        lp.params = {std::uint32_t(inAddr_), std::uint32_t(outAddr_), n_,
                     total_threads};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        return gmem.read32(outAddr_) == expected_;
    }

  private:
    std::uint32_t n_;
    Addr inAddr_ = 0, outAddr_ = 0;
    std::uint32_t expected_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeReduction(std::uint32_t scale)
{
    return std::make_unique<Reduction>(scale);
}

} // namespace vtsim
