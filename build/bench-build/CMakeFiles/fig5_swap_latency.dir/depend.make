# Empty dependencies file for fig5_swap_latency.
# This may be replaced when dependencies are built.
