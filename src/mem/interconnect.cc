#include "mem/interconnect.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/serialize_util.hh"

namespace vtsim {

Interconnect::Interconnect(const NocParams &params)
    : params_(params), reqQueues_(params.numPartitions),
      respQueues_(params.numSms), stats_("noc")
{
    VTSIM_ASSERT(params.numSms > 0 && params.numPartitions > 0,
                 "degenerate NoC shape");
    stats_.addCounter("req_flits", &reqFlits_, "request flits delivered");
    stats_.addCounter("resp_flits", &respFlits_, "response flits delivered");
    stats_.addCounter("bw_stall_cycles", &stallCycles_,
                      "port-cycles a ready flit waited for bandwidth");
}

void
Interconnect::sendRequest(const MemRequest &req, Cycle now)
{
    VTSIM_ASSERT(router_, "interconnect router not wired");
    if (staging_) {
        VTSIM_ASSERT(req.srcSm < stagedReq_.size(),
                     "staged request from unknown SM ", req.srcSm);
        stagedReq_[req.srcSm].push_back({req, now});
        return;
    }
    const std::uint32_t dst = router_(req.lineAddr);
    VTSIM_ASSERT(dst < reqQueues_.size(), "router returned bad partition");
    ffHorizon_ = 0;
    reqQueues_[dst].push_back({req, now + params_.latency});
}

void
Interconnect::sendResponse(const MemRequest &req, Cycle now)
{
    VTSIM_ASSERT(req.srcSm < respQueues_.size(),
                 "response for unknown SM ", req.srcSm);
    if (staging_) {
        const std::uint32_t src = router_(req.lineAddr);
        VTSIM_ASSERT(src < stagedResp_.size(),
                     "staged response from unknown partition ", src);
        stagedResp_[src].push_back({req, now});
        return;
    }
    ffHorizon_ = 0;
    respQueues_[req.srcSm].push_back({req, now + params_.latency});
}

void
Interconnect::beginEpochStaging()
{
    if (stagedReq_.empty()) {
        stagedReq_.resize(params_.numSms);
        stagedResp_.resize(params_.numPartitions);
    }
    staging_ = true;
}

void
Interconnect::mergeInto(std::vector<std::vector<Staged>> &staged,
                        bool to_mem)
{
    // Concatenating the per-source buffers in source order and stable-
    // sorting by send cycle yields exactly the sequential arrival order:
    // ties keep source order (SM 0 ticks before SM 1; partition 0 before
    // partition 1) and, within a source, program order.
    std::vector<Staged> all;
    for (auto &src : staged) {
        all.insert(all.end(), src.begin(), src.end());
        src.clear();
    }
    if (all.empty())
        return;
    std::stable_sort(all.begin(), all.end(),
                     [](const Staged &a, const Staged &b) {
                         return a.sentAt < b.sentAt;
                     });
    for (const Staged &s : all) {
        auto &queue = to_mem ? reqQueues_[router_(s.req.lineAddr)]
                             : respQueues_[s.req.srcSm];
        queue.push_back({s.req, s.sentAt + params_.latency});
    }
    ffHorizon_ = 0;
}

void
Interconnect::mergeStaged()
{
    staging_ = false;
    mergeInto(stagedReq_, true);
    mergeInto(stagedResp_, false);
}

bool
Interconnect::stagingEmpty() const
{
    for (const auto &src : stagedReq_)
        if (!src.empty())
            return false;
    for (const auto &src : stagedResp_)
        if (!src.empty())
            return false;
    return true;
}

void
Interconnect::drainRequestPort(std::uint32_t partition, Cycle now,
                               PortDelta &delta)
{
    auto &queue = reqQueues_[partition];
    std::uint32_t budget = params_.flitsPerCycle;
    while (budget && !queue.empty() && queue.front().readyAt <= now) {
        toMem_(queue.front().req, now);
        queue.pop_front();
        --budget;
        ++delta.reqFlits;
        delta.lastFlit = now;
        delta.sawFlit = true;
    }
    if (!budget && !queue.empty() && queue.front().readyAt <= now)
        ++delta.stallCycles;
}

void
Interconnect::drainResponsePort(std::uint32_t sm, Cycle now,
                                PortDelta &delta)
{
    auto &queue = respQueues_[sm];
    std::uint32_t budget = params_.flitsPerCycle;
    while (budget && !queue.empty() && queue.front().readyAt <= now) {
        toSm_(queue.front().req, now);
        queue.pop_front();
        --budget;
        ++delta.respFlits;
        delta.lastFlit = now;
        delta.sawFlit = true;
    }
    if (!budget && !queue.empty() && queue.front().readyAt <= now)
        ++delta.stallCycles;
}

void
Interconnect::applyPortDelta(const PortDelta &delta)
{
    reqFlits_ += delta.reqFlits;
    respFlits_ += delta.respFlits;
    stallCycles_ += delta.stallCycles;
}

void
Interconnect::drain(std::deque<InFlight> &queue, const Deliver &deliver,
                    Cycle now)
{
    std::uint32_t budget = params_.flitsPerCycle;
    while (budget && !queue.empty() && queue.front().readyAt <= now) {
        deliver(queue.front().req, now);
        queue.pop_front();
        --budget;
    }
    if (!budget && !queue.empty() && queue.front().readyAt <= now)
        ++stallCycles_;
}

void
Interconnect::tick(Cycle now)
{
    if (now < ffHorizon_)
        return; // Every queue head still traverses; nothing can deliver.
    VTSIM_ASSERT(!staging_, "tick() during a sharded epoch");
    VTSIM_ASSERT(toMem_ && toSm_, "interconnect endpoints not wired");
    for (auto &queue : reqQueues_) {
        const std::size_t before = queue.size();
        drain(queue, toMem_, now);
        reqFlits_ += before - queue.size();
    }
    for (auto &queue : respQueues_) {
        const std::size_t before = queue.size();
        drain(queue, toSm_, now);
        respFlits_ += before - queue.size();
    }
    ffHorizon_ = params_.lazyTick ? computeNextEvent(now + 1) : 0;
}

Cycle
Interconnect::computeNextEvent(Cycle now) const
{
    // Queues are FIFO and readyAt is monotone per queue, so only the
    // heads matter. A head that is already ready was bandwidth-limited
    // this cycle and delivers next tick.
    Cycle next = neverCycle;
    for (const auto &queue : reqQueues_) {
        if (!queue.empty())
            next = std::min(next, std::max(now, queue.front().readyAt));
    }
    for (const auto &queue : respQueues_) {
        if (!queue.empty())
            next = std::min(next, std::max(now, queue.front().readyAt));
    }
    return next;
}

bool
Interconnect::idle() const
{
    for (const auto &queue : reqQueues_)
        if (!queue.empty())
            return false;
    for (const auto &queue : respQueues_)
        if (!queue.empty())
            return false;
    return true;
}

void
Interconnect::reset()
{
    ffHorizon_ = 0;
    staging_ = false;
    for (auto &src : stagedReq_)
        src.clear();
    for (auto &src : stagedResp_)
        src.clear();
    for (auto &queue : reqQueues_)
        queue.clear();
    for (auto &queue : respQueues_)
        queue.clear();
    reqFlits_.reset();
    respFlits_.reset();
    stallCycles_.reset();
}

void
Interconnect::saveQueues(Serializer &ser,
                         const std::vector<std::deque<InFlight>> &queues)
{
    for (const auto &queue : queues) {
        ser.put<std::uint64_t>(queue.size());
        for (const InFlight &f : queue) {
            saveMemRequest(ser, f.req);
            ser.put(f.readyAt);
        }
    }
}

void
Interconnect::restoreQueues(Deserializer &des,
                            std::vector<std::deque<InFlight>> &queues)
{
    for (auto &queue : queues) {
        queue.clear();
        const auto n = des.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i) {
            InFlight f;
            f.req = restoreMemRequest(des);
            des.get(f.readyAt);
            queue.push_back(f);
        }
    }
}

void
Interconnect::save(Serializer &ser) const
{
    // ffHorizon_ is a pure skip-guard cache, recomputed from the queues
    // on the next tick: serializing it would make the checkpoint bytes
    // depend on the tick cadence (sequential vs sharded) rather than on
    // the machine state. Checkpoints are taken at settled points, so
    // restoring it as 0 only costs one recomputation.
    VTSIM_ASSERT(stagingEmpty() && !staging_,
                 "checkpoint with staged interconnect traffic");
    const std::size_t sec = ser.beginSection("nocx");
    saveQueues(ser, reqQueues_);
    saveQueues(ser, respQueues_);
    saveStat(ser, reqFlits_);
    saveStat(ser, respFlits_);
    saveStat(ser, stallCycles_);
    ser.endSection(sec);
}

void
Interconnect::restore(Deserializer &des)
{
    des.beginSection("nocx");
    ffHorizon_ = 0;
    restoreQueues(des, reqQueues_);
    restoreQueues(des, respQueues_);
    restoreStat(des, reqFlits_);
    restoreStat(des, respFlits_);
    restoreStat(des, stallCycles_);
    des.endSection();
}

} // namespace vtsim
