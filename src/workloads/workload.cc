#include "workloads/workload.hh"

#include "common/log.hh"
#include "workloads/factories.hh"

namespace vtsim {

std::string
toString(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::SchedulingLimited: return "scheduling-limited";
      case WorkloadClass::CapacityLimited: return "capacity-limited";
    }
    return "?";
}

namespace {

struct RegistryEntry
{
    const char *name;
    std::unique_ptr<Workload> (*factory)(std::uint32_t);
};

const RegistryEntry registry[] = {
    {"vecadd", makeVecAdd},
    {"saxpy", makeSaxpy},
    {"reduce", makeReduction},
    {"stencil", makeStencil},
    {"spmv", makeSpmv},
    {"bfs", makeBfs},
    {"histogram", makeHistogram},
    {"transpose", makeTranspose},
    {"hotspot", makeHotspot},
    {"kmeans", makeKmeans},
    {"blackscholes", makeBlackscholes},
    {"needle", makeNeedle},
    {"mummer", makeMummer},
    {"bitonic", makeBitonic},
    {"matmul", makeMatmul},
    {"pathfinder", makePathfinder},
};

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, std::uint32_t scale)
{
    for (const auto &entry : registry)
        if (name == entry.name)
            return entry.factory(scale);
    VTSIM_FATAL("unknown workload '", name, "'");
}

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &entry : registry)
        names.emplace_back(entry.name);
    return names;
}

std::vector<std::unique_ptr<Workload>>
makeBenchmarkSuite(std::uint32_t scale)
{
    std::vector<std::unique_ptr<Workload>> suite;
    for (const auto &entry : registry)
        suite.push_back(entry.factory(scale));
    return suite;
}

} // namespace vtsim
