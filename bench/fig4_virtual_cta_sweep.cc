/**
 * @file
 * FIG-4 (sensitivity): speedup versus the virtual-CTA budget per SM,
 * from the scheduling limit (8 = baseline-equivalent) up to
 * capacity-bound admission. Expected shape: grows, then saturates when
 * either capacity or the workload's latency-hiding demand is met.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-4", "speedup vs. virtual-CTA budget per SM");
    const GpuConfig base = GpuConfig::fermiLike();
    const std::uint32_t budgets[] = {8, 12, 16, 24, 32, 0 /* capacity */};
    const char *subset[] = {"vecadd", "saxpy", "reduce", "stencil",
                            "histogram", "blackscholes"};
    constexpr std::size_t stride = 1 + std::size(budgets);

    std::vector<RunSpec> specs;
    for (const char *name : subset) {
        specs.push_back({name, base, benchScale});
        for (auto budget : budgets) {
            GpuConfig vt = base;
            vt.vtEnabled = true;
            vt.vtMaxVirtualCtasPerSm = budget;
            specs.push_back({name, vt, benchScale});
        }
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s", "benchmark");
    for (auto b : budgets) {
        if (b)
            std::printf("    m=%2u", b);
        else
            std::printf("  cap-bnd");
    }
    std::printf("\n");

    for (std::size_t w = 0; w < std::size(subset); ++w) {
        const RunResult &ref = results[w * stride];
        std::printf("%-14s", subset[w]);
        for (std::size_t b = 0; b < std::size(budgets); ++b) {
            const RunResult &r = results[w * stride + 1 + b];
            std::printf("  %6.2fx",
                        double(ref.stats.cycles) / r.stats.cycles);
        }
        std::printf("\n");
    }
    std::printf("(8 virtual CTAs equals the hardware CTA-slot count: "
                "expected ~1.00x)\n");
    return 0;
}
