
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cc" "src/CMakeFiles/vtsim.dir/common/log.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/vtsim.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/common/rng.cc.o.d"
  "/root/repo/src/common/trace.cc" "src/CMakeFiles/vtsim.dir/common/trace.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/common/trace.cc.o.d"
  "/root/repo/src/config/gpu_config.cc" "src/CMakeFiles/vtsim.dir/config/gpu_config.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/config/gpu_config.cc.o.d"
  "/root/repo/src/core/energy_model.cc" "src/CMakeFiles/vtsim.dir/core/energy_model.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/core/energy_model.cc.o.d"
  "/root/repo/src/core/overhead_model.cc" "src/CMakeFiles/vtsim.dir/core/overhead_model.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/core/overhead_model.cc.o.d"
  "/root/repo/src/core/virtual_thread.cc" "src/CMakeFiles/vtsim.dir/core/virtual_thread.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/core/virtual_thread.cc.o.d"
  "/root/repo/src/cta/cta_dispatcher.cc" "src/CMakeFiles/vtsim.dir/cta/cta_dispatcher.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/cta/cta_dispatcher.cc.o.d"
  "/root/repo/src/cta/cta_throttler.cc" "src/CMakeFiles/vtsim.dir/cta/cta_throttler.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/cta/cta_throttler.cc.o.d"
  "/root/repo/src/func/exec_context.cc" "src/CMakeFiles/vtsim.dir/func/exec_context.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/func/exec_context.cc.o.d"
  "/root/repo/src/func/global_memory.cc" "src/CMakeFiles/vtsim.dir/func/global_memory.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/func/global_memory.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/vtsim.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/vtsim.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/disassembler.cc" "src/CMakeFiles/vtsim.dir/isa/disassembler.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/isa/disassembler.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/vtsim.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/kernel.cc" "src/CMakeFiles/vtsim.dir/isa/kernel.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/isa/kernel.cc.o.d"
  "/root/repo/src/isa/kernel_builder.cc" "src/CMakeFiles/vtsim.dir/isa/kernel_builder.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/isa/kernel_builder.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/vtsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/coalescer.cc" "src/CMakeFiles/vtsim.dir/mem/coalescer.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/mem/coalescer.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/vtsim.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/interconnect.cc" "src/CMakeFiles/vtsim.dir/mem/interconnect.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/mem/interconnect.cc.o.d"
  "/root/repo/src/mem/mem_request.cc" "src/CMakeFiles/vtsim.dir/mem/mem_request.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/mem/mem_request.cc.o.d"
  "/root/repo/src/mem/memory_partition.cc" "src/CMakeFiles/vtsim.dir/mem/memory_partition.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/mem/memory_partition.cc.o.d"
  "/root/repo/src/mem/shared_memory.cc" "src/CMakeFiles/vtsim.dir/mem/shared_memory.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/mem/shared_memory.cc.o.d"
  "/root/repo/src/occupancy/occupancy.cc" "src/CMakeFiles/vtsim.dir/occupancy/occupancy.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/occupancy/occupancy.cc.o.d"
  "/root/repo/src/sm/barrier_manager.cc" "src/CMakeFiles/vtsim.dir/sm/barrier_manager.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/sm/barrier_manager.cc.o.d"
  "/root/repo/src/sm/ldst_unit.cc" "src/CMakeFiles/vtsim.dir/sm/ldst_unit.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/sm/ldst_unit.cc.o.d"
  "/root/repo/src/sm/scoreboard.cc" "src/CMakeFiles/vtsim.dir/sm/scoreboard.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/sm/scoreboard.cc.o.d"
  "/root/repo/src/sm/simt_stack.cc" "src/CMakeFiles/vtsim.dir/sm/simt_stack.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/sm/simt_stack.cc.o.d"
  "/root/repo/src/sm/sm_core.cc" "src/CMakeFiles/vtsim.dir/sm/sm_core.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/sm/sm_core.cc.o.d"
  "/root/repo/src/sm/warp_context.cc" "src/CMakeFiles/vtsim.dir/sm/warp_context.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/sm/warp_context.cc.o.d"
  "/root/repo/src/sm/warp_scheduler.cc" "src/CMakeFiles/vtsim.dir/sm/warp_scheduler.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/sm/warp_scheduler.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/vtsim.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/stats/stats.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/vtsim.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/bitonic.cc" "src/CMakeFiles/vtsim.dir/workloads/bitonic.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/bitonic.cc.o.d"
  "/root/repo/src/workloads/blackscholes.cc" "src/CMakeFiles/vtsim.dir/workloads/blackscholes.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/blackscholes.cc.o.d"
  "/root/repo/src/workloads/histogram.cc" "src/CMakeFiles/vtsim.dir/workloads/histogram.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/histogram.cc.o.d"
  "/root/repo/src/workloads/hotspot.cc" "src/CMakeFiles/vtsim.dir/workloads/hotspot.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/hotspot.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/CMakeFiles/vtsim.dir/workloads/kmeans.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/kmeans.cc.o.d"
  "/root/repo/src/workloads/matmul.cc" "src/CMakeFiles/vtsim.dir/workloads/matmul.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/matmul.cc.o.d"
  "/root/repo/src/workloads/mummer.cc" "src/CMakeFiles/vtsim.dir/workloads/mummer.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/mummer.cc.o.d"
  "/root/repo/src/workloads/needle.cc" "src/CMakeFiles/vtsim.dir/workloads/needle.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/needle.cc.o.d"
  "/root/repo/src/workloads/pathfinder.cc" "src/CMakeFiles/vtsim.dir/workloads/pathfinder.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/pathfinder.cc.o.d"
  "/root/repo/src/workloads/reduction.cc" "src/CMakeFiles/vtsim.dir/workloads/reduction.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/reduction.cc.o.d"
  "/root/repo/src/workloads/spmv.cc" "src/CMakeFiles/vtsim.dir/workloads/spmv.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/spmv.cc.o.d"
  "/root/repo/src/workloads/stencil.cc" "src/CMakeFiles/vtsim.dir/workloads/stencil.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/stencil.cc.o.d"
  "/root/repo/src/workloads/streaming.cc" "src/CMakeFiles/vtsim.dir/workloads/streaming.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/streaming.cc.o.d"
  "/root/repo/src/workloads/transpose.cc" "src/CMakeFiles/vtsim.dir/workloads/transpose.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/transpose.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/vtsim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/vtsim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
