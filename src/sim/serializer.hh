/**
 * @file
 * Binary checkpoint archive for the SimComponent lifecycle.
 *
 * A Serializer appends trivially-copyable scalars, strings and vectors
 * to a growing byte buffer; a Deserializer reads them back in the same
 * order. State is framed into named sections — beginSection() writes a
 * four-character tag plus a placeholder length that endSection() patches
 * — so a reader can verify, per component, that it consumed exactly the
 * bytes the writer produced (the round-trip size assert), and external
 * tooling (scripts/validate_checkpoint.py) can walk a checkpoint without
 * understanding component internals.
 *
 * On-disk checkpoint format "vtsim-ckpt-v1" (written by Gpu::saveCheckpoint):
 *   8 bytes  magic "vtsimCKP"
 *   u32      version (1)
 *   u64      payload size in bytes
 *   payload  top-level sections back to back: tag[4] + u32 len + body
 * Multi-byte values are little-endian (vtsim only targets LE hosts; the
 * Serializer asserts this once at construction).
 */

#ifndef VTSIM_SIM_SERIALIZER_HH
#define VTSIM_SIM_SERIALIZER_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/log.hh"

namespace vtsim {

class MemResponseSink;

/**
 * Serializable as raw bytes: trivially copyable AND free of padding
 * bytes (floating-point types are exempt from the uniqueness trait but
 * carry no padding). Padding would leak indeterminate memory into the
 * checkpoint and break byte-determinism — a struct that fails this
 * must be serialized field by field instead.
 */
template <typename T>
inline constexpr bool kPackedSerializable =
    std::is_trivially_copyable_v<T> &&
    (std::has_unique_object_representations_v<T> ||
     std::is_floating_point_v<T>);

class Serializer
{
  public:
    Serializer();

    void putBytes(const void *p, std::size_t n);

    template <typename T>
    void
    put(const T &v)
    {
        static_assert(kPackedSerializable<T>,
                      "put(): type has padding bytes (or is not "
                      "trivially copyable) — serialize field-wise");
        putBytes(&v, sizeof(T));
    }

    void putString(const std::string &s);

    /** A vector of trivially-copyable elements: u64 count + raw bytes. */
    template <typename T>
    void
    putVec(const std::vector<T> &v)
    {
        static_assert(kPackedSerializable<T>,
                      "putVec(): element type has padding bytes (or is "
                      "not trivially copyable) — serialize field-wise");
        put<std::uint64_t>(v.size());
        if (!v.empty())
            putBytes(v.data(), v.size() * sizeof(T));
    }

    /**
     * Open a section tagged with exactly four characters (e.g. "smc0").
     * Returns a handle for endSection(); sections may nest.
     */
    std::size_t beginSection(const char tag[5]);
    void endSection(std::size_t handle);

    const std::vector<std::uint8_t> &buffer() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t size);
    explicit Deserializer(const std::vector<std::uint8_t> &buf);

    void getBytes(void *p, std::size_t n);

    template <typename T>
    T
    get()
    {
        static_assert(kPackedSerializable<T>,
                      "get(): type has padding bytes (or is not "
                      "trivially copyable) — deserialize field-wise");
        T v;
        getBytes(&v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    get(T &v)
    {
        v = get<T>();
    }

    std::string getString();

    template <typename T>
    void
    getVec(std::vector<T> &v)
    {
        static_assert(kPackedSerializable<T>,
                      "getVec(): element type has padding bytes (or is "
                      "not trivially copyable) — deserialize field-wise");
        const std::uint64_t n = get<std::uint64_t>();
        VTSIM_ASSERT(n * sizeof(T) <= remaining(),
                     "checkpoint vector length ", n, " overruns buffer");
        v.resize(n);
        if (n)
            getBytes(v.data(), n * sizeof(T));
    }

    /**
     * Enter the next section and verify its tag; the matching
     * endSection() asserts that exactly the recorded number of bytes
     * was consumed — a component whose restore() reads a different
     * amount of state than its save() wrote fails here, not later.
     */
    void beginSection(const char tag[5]);
    void endSection();

    std::size_t remaining() const { return size_ - pos_; }
    bool finished() const { return pos_ == size_ && sectionEnds_.empty(); }

    /**
     * Restore context: maps a request's source SM id back to the live
     * MemResponseSink (the SM's LdstUnit). Sink pointers are never
     * serialized; Gpu installs this before restoring components whose
     * queues hold in-flight MemRequests.
     */
    MemResponseSink *(*sinkResolver)(void *ctx, std::uint32_t smId) = nullptr;
    void *sinkCtx = nullptr;

    MemResponseSink *
    resolveSink(std::uint32_t sm_id) const
    {
        VTSIM_ASSERT(sinkResolver, "no sink resolver installed");
        return sinkResolver(sinkCtx, sm_id);
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::vector<std::size_t> sectionEnds_;
};

} // namespace vtsim

#endif // VTSIM_SIM_SERIALIZER_HH
