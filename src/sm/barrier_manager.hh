/**
 * @file
 * CTA-wide barrier bookkeeping. Barrier arrival state is part of the
 * *scheduling* state a Virtual Thread swap preserves: warps parked at a
 * barrier stay parked across a swap-out/swap-in pair.
 */

#ifndef VTSIM_SM_BARRIER_MANAGER_HH
#define VTSIM_SM_BARRIER_MANAGER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/sim_component.hh"

namespace vtsim {

class BarrierManager : public SimComponent
{
  public:
    /** Begin tracking a CTA. */
    void ctaLaunched(VirtualCtaId id);

    /** Warp @p warp_in_cta reached a BAR. */
    void arrive(VirtualCtaId id, std::uint32_t warp_in_cta);

    /** Number of warps currently parked at the CTA's barrier. */
    std::uint32_t arrivedCount(VirtualCtaId id) const;

    /**
     * True when every live warp has arrived: @p alive_warps is the number
     * of warps of the CTA that have not exited.
     */
    bool shouldRelease(VirtualCtaId id, std::uint32_t alive_warps) const;

    /** Release the barrier: returns the parked warps and clears state. */
    std::vector<std::uint32_t> release(VirtualCtaId id);

    /**
     * Allocation-free variant of release(): swaps the parked-warp list
     * into @p out (clearing any previous contents), leaving the CTA's
     * tracked list empty but with its capacity recycled on the next
     * arrive(). Used on the hot issue path.
     */
    void releaseInto(VirtualCtaId id, std::vector<std::uint32_t> &out);

    /** Stop tracking a finished CTA. */
    void ctaFinished(VirtualCtaId id);

    // SimComponent lifecycle (passive: no tick/next-event/settle).
    void reset() override { waiting_.clear(); }
    void save(Serializer &ser) const override;
    void restore(Deserializer &des) override;

  private:
    std::unordered_map<VirtualCtaId, std::vector<std::uint32_t>> waiting_;
};

} // namespace vtsim

#endif // VTSIM_SM_BARRIER_MANAGER_HH
