/**
 * @file
 * The distributed job fabric end to end: the TCP/NDJSON transport
 * (base64, host:port parsing, bearer-token auth, connect retries), the
 * checkpoint-image byte-portability contract a migration rests on, and
 * — the load-bearing invariant — a coordinator-driven cross-daemon
 * migration of a parked job that finishes with KernelStats
 * bit-identical to the uninterrupted single-node run, alongside work
 * stealing and admission backpressure.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fabric/coordinator.hh"
#include "fabric/node_agent.hh"
#include "fabric/transport.hh"
#include "gpu/gpu.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/json.hh"
#include "service/protocol.hh"
#include "service/service.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

using fabric::Coordinator;
using fabric::CoordinatorConfig;
using fabric::HostPort;
using fabric::NodeAgent;
using fabric::NodeAgentConfig;
using fabric::TransportError;
using service::Client;
using service::Daemon;
using service::DaemonConfig;
using service::JobId;
using service::JobService;
using service::JobSnapshot;
using service::JobSpec;
using service::JobState;
using service::Json;
using service::Priority;
using service::ServiceConfig;

constexpr const char *kToken = "fabric-test-secret";

/** Every field of KernelStats, bit for bit. */
void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &context)
{
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.warpInstructions, b.warpInstructions) << context;
    EXPECT_EQ(a.threadInstructions, b.threadInstructions) << context;
    EXPECT_EQ(a.ctasCompleted, b.ctasCompleted) << context;
    EXPECT_EQ(a.ipc, b.ipc) << context;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << context;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << context;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << context;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << context;
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << context;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << context;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << context;
    EXPECT_EQ(a.swapOuts, b.swapOuts) << context;
    EXPECT_EQ(a.swapIns, b.swapIns) << context;
    EXPECT_EQ(a.stalls.issued, b.stalls.issued) << context;
    EXPECT_EQ(a.stalls.memStall, b.stalls.memStall) << context;
    EXPECT_EQ(a.stalls.shortStall, b.stalls.shortStall) << context;
    EXPECT_EQ(a.stalls.barrierStall, b.stalls.barrierStall) << context;
    EXPECT_EQ(a.stalls.swapStall, b.stalls.swapStall) << context;
    EXPECT_EQ(a.stalls.idle, b.stalls.idle) << context;
}

/** The oracle: the same workload, uninterrupted, on a fresh Gpu with
 *  the job service's default config. */
KernelStats
runUninterrupted(const std::string &name, std::uint32_t scale)
{
    auto wl = makeWorkload(name, scale);
    const Kernel kernel = wl->buildKernel();
    Gpu gpu{GpuConfig::fermiLike()};
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(kernel, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    return stats;
}

std::string
tempDir(const std::string &tag)
{
    const std::string path = std::string(::testing::TempDir()) +
                             "vtsim-fabric-" + tag + "-" +
                             std::to_string(::getpid());
    std::filesystem::create_directories(path);
    return path;
}

/** Poll until @p predicate holds or fail after 30 s. */
template <typename Pred>
void
spinUntil(Pred predicate, const char *what)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!predicate()) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

// --------------------------------------------------------------------
// Transport primitives
// --------------------------------------------------------------------

TEST(FabricTransport, Base64RoundTripsArbitraryBytes)
{
    std::vector<std::uint8_t> bytes;
    for (int n = 0; n < 4; ++n) { // All padding lengths.
        const std::string text = fabric::base64Encode(bytes);
        EXPECT_EQ(fabric::base64Decode(text), bytes);
        bytes.push_back(std::uint8_t(0xA5 ^ n));
    }
    // A deterministic pseudo-random blob well past one chunk.
    std::uint32_t x = 0x1234567u;
    bytes.clear();
    for (int n = 0; n < 100000; ++n) {
        x = x * 1664525u + 1013904223u;
        bytes.push_back(std::uint8_t(x >> 24));
    }
    EXPECT_EQ(fabric::base64Decode(fabric::base64Encode(bytes)), bytes);
}

TEST(FabricTransport, Base64DecodeIsStrict)
{
    EXPECT_THROW(fabric::base64Decode("abc"), TransportError);
    EXPECT_THROW(fabric::base64Decode("ab=c"), TransportError);
    EXPECT_THROW(fabric::base64Decode("a!=="), TransportError);
    EXPECT_THROW(fabric::base64Decode("===="), TransportError);
}

TEST(FabricTransport, ParseHostPort)
{
    const HostPort hp = fabric::parseHostPort("10.1.2.3:7774");
    EXPECT_EQ(hp.host, "10.1.2.3");
    EXPECT_EQ(hp.port, 7774);
    EXPECT_EQ(hp.str(), "10.1.2.3:7774");
    EXPECT_THROW(fabric::parseHostPort("host:99999"), TransportError);
    EXPECT_THROW(fabric::parseHostPort("host:"), TransportError);
    EXPECT_THROW(fabric::parseHostPort("host:7x7"), TransportError);
}

TEST(FabricTransport, ConnectRetriesUntilListenerAppears)
{
    // Reserve a port, drop the listener, and re-bind it only after the
    // client has started retrying — the daemon-restart window the
    // backoff exists for (SO_REUSEADDR makes the re-bind safe).
    const int probe = fabric::listenTcp(HostPort{"127.0.0.1", 0});
    const std::uint16_t port = fabric::boundPort(probe);
    ::close(probe);

    std::thread late([port] {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        const int fd = fabric::listenTcp(HostPort{"127.0.0.1", port});
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn >= 0)
            ::close(conn);
        ::close(fd);
    });
    auto client =
        service::connectTcpWithRetry(HostPort{"127.0.0.1", port}, "");
    EXPECT_NE(client, nullptr);
    client.reset();
    late.join();
}

TEST(FabricTransport, ConnectRetryGivesUpAfterPolicyAttempts)
{
    const int probe = fabric::listenTcp(HostPort{"127.0.0.1", 0});
    const std::uint16_t port = fabric::boundPort(probe);
    ::close(probe);
    service::RetryPolicy policy;
    policy.attempts = 2;
    policy.baseDelayMs = 10;
    policy.maxDelayMs = 20;
    EXPECT_THROW(service::connectTcpWithRetry(
                     HostPort{"127.0.0.1", port}, "", policy),
                 TransportError);
}

// --------------------------------------------------------------------
// TCP daemon: same protocol, bearer-token auth
// --------------------------------------------------------------------

class TcpDaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        config_.workers = 1;
        config_.spoolDir = tempDir("tcpd-spool");
        service_ = std::make_unique<JobService>(config_);
        DaemonConfig dc;
        dc.tcp = HostPort{"127.0.0.1", 0};
        dc.tcpEnabled = true;
        dc.authToken = kToken;
        daemon_ = std::make_unique<Daemon>(*service_, dc);
        daemon_->start();
        serveThread_ = std::thread([this] { daemon_->serve(); });
    }

    void
    TearDown() override
    {
        daemon_->requestStop();
        serveThread_.join();
        daemon_.reset();
        service_->shutdown();
        service_.reset();
    }

    HostPort
    addr() const
    {
        return HostPort{"127.0.0.1", daemon_->boundTcpPort()};
    }

    ServiceConfig config_;
    std::unique_ptr<JobService> service_;
    std::unique_ptr<Daemon> daemon_;
    std::thread serveThread_;
};

TEST_F(TcpDaemonTest, SubmitWaitOverTcpMatchesUninterrupted)
{
    Client client(addr(), kToken);
    Json::Object submit;
    submit["op"] = Json("submit");
    submit["workload"] = Json("vecadd");
    submit["scale"] = Json(2);
    const Json accepted = client.request(Json(std::move(submit)));
    ASSERT_TRUE(accepted.find("ok")->asBool()) << accepted.dump();
    Json::Object wait;
    wait["op"] = Json("wait");
    wait["job"] = Json(accepted.find("job")->asInt());
    const Json done = client.request(Json(std::move(wait)));
    ASSERT_EQ(done.find("state")->asString(), "done") << done.dump();
    expectIdenticalStats(
        service::kernelStatsFromJson(*done.find("stats")),
        runUninterrupted("vecadd", 2), "tcp submit");
}

TEST_F(TcpDaemonTest, WrongTokenIsRefusedBeforeAnyHandler)
{
    Client client(addr(), "wrong-secret");
    Json::Object ping;
    ping["op"] = Json("ping");
    const Json reply = client.request(Json(std::move(ping)));
    EXPECT_FALSE(reply.find("ok")->asBool());
    EXPECT_EQ(reply.find("error")->asString(), "unauthorized");

    Client bare(addr(), "");
    Json::Object status;
    status["op"] = Json("status");
    const Json refused = bare.request(Json(std::move(status)));
    EXPECT_FALSE(refused.find("ok")->asBool());
}

// --------------------------------------------------------------------
// Checkpoint-image byte portability (what migration rests on)
// --------------------------------------------------------------------

/**
 * Drive @p service (1 worker, preemptEvery 500) until a low-priority
 * "needle" job parks, then yank it and reassemble its full image
 * through the chunk reader into @p image.
 */
void
parkAndYankImage(JobService &service, JobId &id,
                 std::vector<std::uint8_t> &image)
{
    JobSpec low;
    low.workload = "needle";
    low.scale = 2;
    const auto submitted = service.submit(low, Priority::Low);
    ASSERT_TRUE(submitted.ok()) << submitted.error;
    id = submitted.id;
    spinUntil(
        [&] { return service.query(id).state != JobState::Queued; },
        "low job never started");
    // Two long preemptors: the first parks the victim, the second
    // keeps the single worker busy so the victim is still parked when
    // the poll below observes it (a tiny preemptor would let it resume
    // within a millisecond).
    JobSpec high;
    high.workload = "needle";
    high.scale = 2;
    for (int n = 0; n < 2; ++n) {
        const auto preemptor = service.submit(high, Priority::High);
        ASSERT_TRUE(preemptor.ok()) << preemptor.error;
    }
    spinUntil(
        [&] { return service.query(id).state == JobState::Parked; },
        "low job never parked");

    const JobService::YankOutcome yanked = service.yank(id);
    ASSERT_TRUE(yanked.ok) << yanked.error;
    ASSERT_TRUE(yanked.hasImage);
    ASSERT_GT(yanked.imageBytes, 0u);
    EXPECT_EQ(service.query(id).state, JobState::Migrated);

    std::uint64_t offset = 0;
    for (;;) {
        std::vector<std::uint8_t> chunk;
        std::uint64_t total = 0;
        std::string error;
        ASSERT_TRUE(service.readImageChunk(id, offset, 4096, chunk,
                                           total, error))
            << error;
        EXPECT_EQ(total, yanked.imageBytes);
        if (chunk.empty())
            break;
        image.insert(image.end(), chunk.begin(), chunk.end());
        offset += chunk.size();
    }
    EXPECT_EQ(image.size(), yanked.imageBytes);
}

TEST(CheckpointPortability, ImageRestoresByteIdenticallyElsewhere)
{
    const KernelStats oracle = runUninterrupted("needle", 2);

    // Park on service A and pull the image two ways: the chunked
    // migration reads and the raw spool file. They must agree byte for
    // byte — what lands on the target daemon is exactly what the
    // source parked.
    const std::string spool_a = tempDir("port-a");
    std::vector<std::uint8_t> image;
    {
        ServiceConfig config;
        config.workers = 1;
        config.preemptEvery = 500;
        config.spoolDir = spool_a;
        JobService service(config);
        JobId id = 0;
        parkAndYankImage(service, id, image);
        if (::testing::Test::HasFatalFailure())
            return;

        std::string ckpt_file;
        for (const auto &entry :
             std::filesystem::directory_iterator(spool_a)) {
            if (entry.path().extension() == ".ckpt")
                ckpt_file = entry.path().string();
        }
        ASSERT_FALSE(ckpt_file.empty()) << "no parked image in spool";
        std::ifstream is(ckpt_file, std::ios::binary);
        std::vector<std::uint8_t> on_disk(
            (std::istreambuf_iterator<char>(is)),
            std::istreambuf_iterator<char>());
        EXPECT_EQ(image, on_disk)
            << "chunked reads diverge from the parked image";

        std::string error;
        EXPECT_TRUE(service.releaseImage(id, error)) << error;
        EXPECT_FALSE(std::filesystem::exists(ckpt_file))
            << "released image still on disk";
        service.shutdown();
    }

    // Restore the shipped bytes on a freshly constructed instance with
    // its own spool: the resumed run must finish bit-identical to the
    // uninterrupted oracle.
    const std::string spool_b = tempDir("port-b");
    const std::string staged = spool_b + "/migrated.ckpt";
    {
        std::ofstream os(staged, std::ios::binary);
        os.write(reinterpret_cast<const char *>(image.data()),
                 std::streamsize(image.size()));
        ASSERT_TRUE(os.good());
    }
    ServiceConfig config;
    config.workers = 1;
    config.preemptEvery = 500;
    config.spoolDir = spool_b;
    JobService service(config);
    JobSpec resumed;
    resumed.workload = "needle";
    resumed.scale = 2;
    resumed.resumeFrom = staged;
    const auto submitted = service.submit(resumed, Priority::Normal);
    ASSERT_TRUE(submitted.ok()) << submitted.error;
    const JobSnapshot done = service.wait(submitted.id);
    ASSERT_EQ(done.state, JobState::Done) << done.failureReason;
    EXPECT_TRUE(done.verified);
    expectIdenticalStats(done.stats, oracle,
                         "restored from shipped image");
    service.shutdown();
}

TEST(CheckpointPortability, ResumeFromRejectsBadImages)
{
    ServiceConfig config;
    config.workers = 1;
    config.spoolDir = tempDir("port-bad");
    JobService service(config);
    JobSpec spec;
    spec.workload = "vecadd";
    spec.resumeFrom = config.spoolDir + "/does-not-exist.ckpt";
    EXPECT_FALSE(service.submit(spec, Priority::Normal).ok());
    // A restore point is mid-run; trace recording is not.
    spec.recordTrace = config.spoolDir + "/trace.jsonl";
    EXPECT_FALSE(service.submit(spec, Priority::Normal).ok());
    service.shutdown();
}

// --------------------------------------------------------------------
// Coordinator: dispatch, steal, migrate, backpressure
// --------------------------------------------------------------------

/** One in-process fabric daemon: JobService + TCP Daemon + NodeAgent. */
struct FabricNode
{
    FabricNode(const std::string &name, std::uint16_t coord_port,
               Cycle preempt_every)
    {
        ServiceConfig config;
        config.workers = 1;
        config.preemptEvery = preempt_every;
        config.spoolDir = tempDir("node-" + name);
        service = std::make_unique<JobService>(config);
        DaemonConfig dc;
        dc.tcp = HostPort{"127.0.0.1", 0};
        dc.tcpEnabled = true;
        dc.authToken = kToken;
        daemon = std::make_unique<Daemon>(*service, dc);
        daemon->start();
        serveThread = std::thread([this] { daemon->serve(); });
        NodeAgentConfig ac;
        ac.node = name;
        ac.coordinator = HostPort{"127.0.0.1", coord_port};
        ac.advertise = HostPort{"127.0.0.1", daemon->boundTcpPort()};
        ac.token = kToken;
        ac.heartbeatMs = 25;
        agent = std::make_unique<NodeAgent>(*service, ac);
        agent->start();
    }

    ~FabricNode()
    {
        agent->stop();
        daemon->requestStop();
        serveThread.join();
        daemon.reset();
        service->shutdown();
    }

    std::unique_ptr<JobService> service;
    std::unique_ptr<Daemon> daemon;
    std::unique_ptr<NodeAgent> agent;
    std::thread serveThread;
};

class CoordinatorFixture : public ::testing::Test
{
  protected:
    void
    StartCoordinator(CoordinatorConfig config)
    {
        config.listen = HostPort{"127.0.0.1", 0};
        config.authToken = kToken;
        coord_ = std::make_unique<Coordinator>(std::move(config));
        coord_->start();
        serveThread_ = std::thread([this] { coord_->serve(); });
        client_ = std::make_unique<Client>(
            HostPort{"127.0.0.1", coord_->boundPort()}, kToken);
    }

    void
    TearDown() override
    {
        client_.reset();
        nodes_.clear(); // Daemons down before the coordinator.
        if (coord_) {
            coord_->requestStop();
            serveThread_.join();
            coord_.reset();
        }
    }

    std::uint64_t
    submit(const std::string &workload, std::uint32_t scale,
           const char *priority, const char *affinity = nullptr,
           const char *tenant = nullptr)
    {
        Json::Object o;
        o["op"] = Json("submit");
        o["workload"] = Json(workload);
        o["scale"] = Json(scale);
        o["priority"] = Json(priority);
        if (affinity)
            o["affinity"] = Json(affinity);
        if (tenant)
            o["tenant"] = Json(tenant);
        const Json reply = client_->request(Json(std::move(o)));
        lastReply_ = reply;
        if (const Json *ok = reply.find("ok");
            ok && ok->isBool() && ok->asBool())
            return std::uint64_t(reply.find("job")->asInt());
        return 0;
    }

    std::string
    fabricState(std::uint64_t gid)
    {
        Json::Object o;
        o["op"] = Json("query");
        o["job"] = Json(gid);
        const Json reply = client_->request(Json(std::move(o)));
        const Json *state = reply.find("state");
        return state && state->isString() ? state->asString() : "";
    }

    Json
    waitDone(std::uint64_t gid)
    {
        Json::Object o;
        o["op"] = Json("wait");
        o["job"] = Json(gid);
        return client_->request(Json(std::move(o)));
    }

    std::unique_ptr<Coordinator> coord_;
    std::thread serveThread_;
    std::unique_ptr<Client> client_;
    std::vector<std::unique_ptr<FabricNode>> nodes_;
    Json lastReply_;
};

TEST_F(CoordinatorFixture, MigratesParkedJobAndStealsQueuedWork)
{
    const KernelStats victim_oracle = runUninterrupted("bfs", 3);
    const KernelStats high_oracle = runUninterrupted("bfs", 2);

    CoordinatorConfig config;
    config.heartbeatTimeoutMs = 10000; // No false node-loss under load.
    StartCoordinator(config);
    nodes_.push_back(
        std::make_unique<FabricNode>("a", coord_->boundPort(), 500));

    // A long low-priority job lands on the only node and starts.
    const std::uint64_t low = submit("bfs", 3, "low", "a");
    ASSERT_NE(low, 0u) << lastReply_.dump();
    spinUntil([&] { return fabricState(low) == "running"; },
              "low job never ran on node a");

    // High-priority work preempts it: the low job parks with a
    // vtsim-ckpt-v1 image on node a's spool, and the queued highs keep
    // node a busy (and its queue deep) while it stays parked.
    std::vector<std::uint64_t> highs;
    for (int n = 0; n < 4; ++n) {
        highs.push_back(submit("bfs", 2, "high", "a"));
        ASSERT_NE(highs.back(), 0u) << lastReply_.dump();
    }
    spinUntil([&] { return fabricState(low) == "parked"; },
              "low job never parked");

    // Only now does an idle node appear: the steal round must prefer
    // the parked victim and migrate its image to node b.
    nodes_.push_back(
        std::make_unique<FabricNode>("b", coord_->boundPort(), 500));
    spinUntil([&] { return coord_->migrations() >= 1; },
              "parked job never migrated to the idle node");

    // The migrated job resumes on b and finishes bit-identical to the
    // uninterrupted oracle.
    const Json done = waitDone(low);
    ASSERT_EQ(done.find("state")->asString(), "done") << done.dump();
    ASSERT_NE(done.find("node"), nullptr);
    EXPECT_EQ(done.find("node")->asString(), "b");
    expectIdenticalStats(
        service::kernelStatsFromJson(*done.find("stats")),
        victim_oracle, "migrated job");

    // Once b drains, the steal round pulls queued high jobs off a's
    // deep queue; a stolen job reruns from scratch elsewhere and
    // deterministic simulation keeps its results identical.
    spinUntil([&] { return coord_->steals() >= 1; },
              "no queued job was ever stolen by the idle node");
    for (const std::uint64_t gid : highs) {
        const Json r = waitDone(gid);
        ASSERT_EQ(r.find("state")->asString(), "done") << r.dump();
        expectIdenticalStats(
            service::kernelStatsFromJson(*r.find("stats")),
            high_oracle, "high-priority batch");
    }
    EXPECT_GE(coord_->dispatches(), 5u);
}

TEST_F(CoordinatorFixture, TokenBucketAndQuotaPushBack)
{
    CoordinatorConfig config;
    config.tenantRate = 0.001; // Refills essentially never.
    config.tenantBurst = 1.0;
    StartCoordinator(config);

    ASSERT_NE(submit("vecadd", 1, "normal", nullptr, "t1"), 0u)
        << lastReply_.dump();
    EXPECT_EQ(submit("vecadd", 1, "normal", nullptr, "t1"), 0u);
    EXPECT_EQ(lastReply_.find("rejected")->asString(), "throttled");
    ASSERT_NE(lastReply_.find("retry_after_ms"), nullptr);
    EXPECT_GT(lastReply_.find("retry_after_ms")->asInt(), 0);
    // Another tenant's bucket is untouched: fair-share isolation.
    EXPECT_NE(submit("vecadd", 1, "normal", nullptr, "t2"), 0u);
    EXPECT_GE(coord_->throttles(), 1u);
}

TEST_F(CoordinatorFixture, BacklogBoundRejectsBusy)
{
    CoordinatorConfig config;
    config.maxBacklog = 2; // No nodes: everything stays pending.
    StartCoordinator(config);
    ASSERT_NE(submit("vecadd", 1, "normal"), 0u);
    ASSERT_NE(submit("vecadd", 1, "normal"), 0u);
    EXPECT_EQ(submit("vecadd", 1, "normal"), 0u);
    EXPECT_EQ(lastReply_.find("rejected")->asString(), "busy");
    EXPECT_GT(lastReply_.find("retry_after_ms")->asInt(), 0);
}

TEST_F(CoordinatorFixture, StatusReportsFleetAndTenants)
{
    StartCoordinator(CoordinatorConfig{});
    nodes_.push_back(
        std::make_unique<FabricNode>("a", coord_->boundPort(), 0));
    spinUntil(
        [&] {
            const Json status = coord_->statusJson();
            return !status.find("fabric")
                        ->find("nodes")
                        ->asArray()
                        .empty();
        },
        "node a never registered");
    const std::uint64_t gid = submit("vecadd", 2, "normal", "a", "t9");
    ASSERT_NE(gid, 0u) << lastReply_.dump();
    const Json done = waitDone(gid);
    ASSERT_EQ(done.find("state")->asString(), "done") << done.dump();

    const Json status = coord_->statusJson();
    const Json *fabric = status.find("fabric");
    ASSERT_NE(fabric, nullptr);
    const auto &nodes = fabric->find("nodes")->asArray();
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0].find("node")->asString(), "a");
    EXPECT_TRUE(nodes[0].find("alive")->asBool());
    EXPECT_EQ(nodes[0].find("workers")->asInt(), 1);
    const auto &tenants = fabric->find("tenants")->asArray();
    ASSERT_EQ(tenants.size(), 1u);
    EXPECT_EQ(tenants[0].find("tenant")->asString(), "t9");
    EXPECT_EQ(fabric->find("jobs")->find("completed")->asInt(), 1);

    // The Prometheus surface carries the same counters.
    const std::string metrics = coord_->metricsText();
    EXPECT_NE(metrics.find("vtsim_fabric_dispatches"),
              std::string::npos)
        << metrics;
}

} // namespace
} // namespace vtsim
