/**
 * @file
 * The sample .vasm kernels shipped in examples/kernels/ must keep
 * assembling and producing correct results (they are the first thing a
 * new user runs).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "isa/assembler.hh"
#include "test_util.hh"

#ifndef VTSIM_SOURCE_DIR
#define VTSIM_SOURCE_DIR "."
#endif

namespace vtsim {
namespace {

Kernel
loadKernel(const std::string &rel_path)
{
    const std::string path = std::string(VTSIM_SOURCE_DIR) + "/" +
                             rel_path;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return assemble(text.str());
}

TEST(SampleKernels, Scale3ComputesRampTimes3Plus1)
{
    const Kernel k = loadKernel("examples/kernels/scale3.vasm");
    Gpu gpu(test::smallVtConfig());
    const std::uint32_t n = 512;
    const Addr in = gpu.memory().alloc(n * 4);
    const Addr out = gpu.memory().alloc(n * 4);
    for (std::uint32_t i = 0; i < n; ++i)
        gpu.memory().write32(in + 4 * i, i);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(n / 64);
    lp.params = {std::uint32_t(in), std::uint32_t(out), n};
    gpu.launch(k, lp);
    for (std::uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(gpu.memory().read32(out + 4 * i), i * 3 + 1) << i;
}

TEST(SampleKernels, PrefixChunkComputesPerCtaInclusiveScan)
{
    const Kernel k = loadKernel("examples/kernels/prefix_chunk.vasm");
    Gpu gpu(test::smallConfig());
    const std::uint32_t cta = 64, n = 256;
    const Addr in = gpu.memory().alloc(n * 4);
    const Addr out = gpu.memory().alloc(n * 4);
    for (std::uint32_t i = 0; i < n; ++i)
        gpu.memory().write32(in + 4 * i, i % 7 + 1);
    LaunchParams lp;
    lp.cta = Dim3(cta);
    lp.grid = Dim3(n / cta);
    lp.params = {std::uint32_t(in), std::uint32_t(out), n};
    gpu.launch(k, lp);
    for (std::uint32_t c = 0; c < n / cta; ++c) {
        std::uint32_t acc = 0;
        for (std::uint32_t t = 0; t < cta; ++t) {
            const std::uint32_t i = c * cta + t;
            acc += i % 7 + 1;
            ASSERT_EQ(gpu.memory().read32(out + 4 * i), acc) << i;
        }
    }
}

} // namespace
} // namespace vtsim
