/**
 * @file
 * 256-bin histogram via global atomics (performed at the L2, as on real
 * GPUs): long-latency RMW traffic with bin contention.
 */

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class HistogramWl : public Workload
{
  public:
    explicit HistogramWl(std::uint32_t scale)
        : n_(scale == 0 ? 1024 : 65536 * scale)
    {}

    std::string name() const override { return "histogram"; }

    std::string
    description() const override
    {
        return "256-bin histogram with global atomics";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        return assemble(R"(
.kernel histogram
    ldp r0, 0            # data
    ldp r1, 1            # hist
    ldp r2, 2            # n
    ldp r3, 3            # total threads
    s2r r4, ctaid.x
    s2r r5, ntid.x
    s2r r6, tid.x
    imad r7, r4, r5, r6  # i
loop:
    isetp.ge r8, r7, r2
    bra r8, done
    shl r9, r7, 2
    iadd r9, r9, r0
    ldg r10, [r9]
    and r11, r10, 255    # bin
    shl r11, r11, 2
    iadd r11, r11, r1
    movi r12, 1
    atomg.add r13, [r11], r12
    iadd r7, r7, r3
    jmp loop
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd08);
        std::vector<std::uint32_t> data(n_);
        expected_.assign(256, 0);
        for (std::uint32_t i = 0; i < n_; ++i) {
            data[i] = rng.next() & 0xffffffffu;
            ++expected_[data[i] & 255];
        }
        dataAddr_ = gmem.alloc(n_ * 4);
        histAddr_ = gmem.alloc(256 * 4);
        gmem.writeWords(dataAddr_, data);
        for (std::uint32_t b = 0; b < 256; ++b)
            gmem.write32(histAddr_ + 4 * b, 0);

        const std::uint32_t total_threads = roundUp(n_ / 4, 128);
        LaunchParams lp;
        lp.cta = Dim3(128);
        lp.grid = Dim3(total_threads / 128);
        lp.params = {std::uint32_t(dataAddr_), std::uint32_t(histAddr_),
                     n_, total_threads};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        for (std::uint32_t b = 0; b < 256; ++b)
            if (gmem.read32(histAddr_ + 4 * b) != expected_[b])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    Addr dataAddr_ = 0, histAddr_ = 0;
    std::vector<std::uint32_t> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeHistogram(std::uint32_t scale)
{
    return std::make_unique<HistogramWl>(scale);
}

} // namespace vtsim
