
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembler.cc" "tests/CMakeFiles/vtsim_tests.dir/test_assembler.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_assembler.cc.o.d"
  "/root/repo/tests/test_barrier.cc" "tests/CMakeFiles/vtsim_tests.dir/test_barrier.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_barrier.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/vtsim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cache_ops.cc" "tests/CMakeFiles/vtsim_tests.dir/test_cache_ops.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_cache_ops.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/vtsim_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/vtsim_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/vtsim_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/vtsim_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_func.cc" "tests/CMakeFiles/vtsim_tests.dir/test_func.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_func.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/vtsim_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_ldst.cc" "tests/CMakeFiles/vtsim_tests.dir/test_ldst.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_ldst.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/vtsim_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_misc.cc" "tests/CMakeFiles/vtsim_tests.dir/test_misc.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_misc.cc.o.d"
  "/root/repo/tests/test_occupancy.cc" "tests/CMakeFiles/vtsim_tests.dir/test_occupancy.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_occupancy.cc.o.d"
  "/root/repo/tests/test_opcode_semantics.cc" "tests/CMakeFiles/vtsim_tests.dir/test_opcode_semantics.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_opcode_semantics.cc.o.d"
  "/root/repo/tests/test_partition.cc" "tests/CMakeFiles/vtsim_tests.dir/test_partition.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_partition.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/vtsim_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_properties_mem.cc" "tests/CMakeFiles/vtsim_tests.dir/test_properties_mem.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_properties_mem.cc.o.d"
  "/root/repo/tests/test_sample_kernels.cc" "tests/CMakeFiles/vtsim_tests.dir/test_sample_kernels.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_sample_kernels.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/vtsim_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_scoreboard.cc" "tests/CMakeFiles/vtsim_tests.dir/test_scoreboard.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_scoreboard.cc.o.d"
  "/root/repo/tests/test_simt_stack.cc" "tests/CMakeFiles/vtsim_tests.dir/test_simt_stack.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_simt_stack.cc.o.d"
  "/root/repo/tests/test_sm_integration.cc" "tests/CMakeFiles/vtsim_tests.dir/test_sm_integration.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_sm_integration.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/vtsim_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_throttler.cc" "tests/CMakeFiles/vtsim_tests.dir/test_throttler.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_throttler.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/vtsim_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/vtsim_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_vt_end_to_end.cc" "tests/CMakeFiles/vtsim_tests.dir/test_vt_end_to_end.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_vt_end_to_end.cc.o.d"
  "/root/repo/tests/test_vt_manager.cc" "tests/CMakeFiles/vtsim_tests.dir/test_vt_manager.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_vt_manager.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/vtsim_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_workloads.cc.o.d"
  "/root/repo/tests/test_writeback.cc" "tests/CMakeFiles/vtsim_tests.dir/test_writeback.cc.o" "gcc" "tests/CMakeFiles/vtsim_tests.dir/test_writeback.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vtsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
