/**
 * @file
 * The scheduling state of one warp — exactly the state a Virtual Thread
 * context switch saves and restores (PC / SIMT stack / scoreboard /
 * barrier flag), as opposed to the capacity state (register values,
 * shared memory) that stays put in CtaFuncState.
 */

#ifndef VTSIM_SM_WARP_CONTEXT_HH
#define VTSIM_SM_WARP_CONTEXT_HH

#include "common/active_mask.hh"
#include "common/types.hh"
#include "sm/scoreboard.hh"
#include "sm/simt_stack.hh"

namespace vtsim {

class WarpContext
{
  public:
    /** (Re)initialise for a fresh CTA launch. @p sched_id is the warp
     *  scheduler slot the warp is striped onto for its whole residency. */
    void init(VirtualCtaId vcta, std::uint32_t warp_in_cta,
              ActiveMask live_lanes, std::uint32_t num_regs,
              std::uint32_t sched_id = 0);

    VirtualCtaId vcta() const { return vcta_; }
    std::uint32_t warpInCta() const { return warpInCta_; }
    /** Scheduler slot owning this warp (the (age * warps + w) %
     *  schedulers striping, cached so ready-set maintenance and warp
     *  retirement never recompute it). */
    std::uint32_t schedId() const { return schedId_; }
    ActiveMask liveLanes() const { return liveLanes_; }

    SimtStack &stack() { return stack_; }
    const SimtStack &stack() const { return stack_; }
    Scoreboard &scoreboard() { return scoreboard_; }
    const Scoreboard &scoreboard() const { return scoreboard_; }

    bool done() const { return stack_.done(); }

    // --- Barrier state ----------------------------------------------------
    bool atBarrier() const { return atBarrier_; }
    void setAtBarrier(bool v) { atBarrier_ = v; }

    // --- Pipeline availability --------------------------------------------
    /** Earliest cycle the warp may issue again (structural delay). */
    Cycle readyAt() const { return readyAt_; }
    void setReadyAt(Cycle c) { readyAt_ = c; }

    // --- Long-latency tracking for the VT swap trigger ---------------------
    /** Outstanding off-chip (post-L1) transactions of this warp. */
    std::uint32_t pendingOffChip() const { return pendingOffChip_; }
    void addOffChip() { ++pendingOffChip_; }
    void removeOffChip();

    /** Instructions this warp has issued (stat). */
    std::uint64_t issued() const { return issued_; }
    void countIssue() { ++issued_; }

    // Checkpoint plumbing (driven by the owning SmCore).
    void
    save(Serializer &ser) const
    {
        ser.put(vcta_);
        ser.put(warpInCta_);
        ser.put(schedId_);
        ser.put(liveLanes_);
        stack_.save(ser);
        scoreboard_.save(ser);
        ser.put(atBarrier_);
        ser.put(readyAt_);
        ser.put(pendingOffChip_);
        ser.put(issued_);
    }

    void
    restore(Deserializer &des)
    {
        des.get(vcta_);
        des.get(warpInCta_);
        des.get(schedId_);
        des.get(liveLanes_);
        stack_.restore(des);
        scoreboard_.restore(des);
        des.get(atBarrier_);
        des.get(readyAt_);
        des.get(pendingOffChip_);
        des.get(issued_);
    }

  private:
    VirtualCtaId vcta_ = invalidId;
    std::uint32_t warpInCta_ = 0;
    std::uint32_t schedId_ = 0;
    ActiveMask liveLanes_;
    SimtStack stack_;
    Scoreboard scoreboard_;
    bool atBarrier_ = false;
    Cycle readyAt_ = 0;
    std::uint32_t pendingOffChip_ = 0;
    std::uint64_t issued_ = 0;
};

} // namespace vtsim

#endif // VTSIM_SM_WARP_CONTEXT_HH
