/**
 * @file
 * Leveled, component-tagged logging for long-running processes.
 *
 * VTSIM_WARN/VTSIM_INFORM (common/log.hh) are one-shot advisories for
 * batch binaries; a daemon needs runtime-selectable verbosity. This
 * logger writes single atomic stderr lines of the form
 *
 *   [component] level: message
 *
 * filtered by a process-wide threshold (default Info). The threshold
 * comes from, in increasing precedence, the built-in default, the
 * VTSIM_LOG_LEVEL environment variable, and an explicit setLevel()
 * call (vtsimd --log-level). Structured job-lifecycle history goes to
 * the JSONL event log (service/event_log.hh) instead; this channel is
 * for human-facing operational messages only.
 */

#ifndef VTSIM_COMMON_LOGGER_HH
#define VTSIM_COMMON_LOGGER_HH

#include <string>
#include <utility>

#include "common/log.hh"

namespace vtsim::logging {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Current process-wide threshold; messages below it are dropped. */
Level level();

/** Override the threshold (also clears the env-var default). */
void setLevel(Level level);

/**
 * Parse "debug"/"info"/"warn"/"error"/"off" (case-sensitive).
 * Throws FatalError on anything else.
 */
Level parseLevel(const std::string &text);

/** The fixed spelling used on the wire and in --log-level. */
const char *levelName(Level level);

/** Format and emit one line; the write itself is a single fputs. */
void message(Level level, const char *component, const std::string &text);

template <typename... Args>
void
debug(const char *component, Args &&...args)
{
    if (level() <= Level::Debug)
        message(Level::Debug, component,
                detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
info(const char *component, Args &&...args)
{
    if (level() <= Level::Info)
        message(Level::Info, component,
                detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
warn(const char *component, Args &&...args)
{
    if (level() <= Level::Warn)
        message(Level::Warn, component,
                detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
error(const char *component, Args &&...args)
{
    if (level() <= Level::Error)
        message(Level::Error, component,
                detail::concat(std::forward<Args>(args)...));
}

} // namespace vtsim::logging

#endif // VTSIM_COMMON_LOGGER_HH
