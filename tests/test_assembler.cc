/**
 * @file
 * Tests for the VASM text assembler and the disassembler round trip.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/log.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

TEST(Assembler, MinimalKernel)
{
    const Kernel k = assemble(".kernel t\n  exit\n");
    EXPECT_EQ(k.name(), "t");
    EXPECT_EQ(k.size(), 1u);
    EXPECT_TRUE(k.at(0).isExit());
}

TEST(Assembler, Directives)
{
    const Kernel k = assemble(R"(
.kernel t
.regs 24
.shared 2048
    exit
)");
    EXPECT_EQ(k.regsPerThread(), 24u);
    EXPECT_EQ(k.sharedBytesPerCta(), 2048u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Kernel k = assemble(R"(
# full-line comment
.kernel t

    movi r0, 1   # trailing comment
    exit
)");
    EXPECT_EQ(k.size(), 2u);
}

TEST(Assembler, AluRegisterAndImmediateForms)
{
    const Kernel k = assemble(R"(
.kernel t
    iadd r2, r0, r1
    iadd r3, r0, 42
    iadd r4, r0, -7
    shl r5, r0, 0x10
    exit
)");
    EXPECT_FALSE(k.at(0).useImm);
    EXPECT_TRUE(k.at(1).useImm);
    EXPECT_EQ(k.at(1).imm, 42);
    EXPECT_EQ(k.at(2).imm, -7);
    EXPECT_EQ(k.at(3).imm, 16);
    EXPECT_EQ(k.regsPerThread(), 6u);
}

TEST(Assembler, MovWithImmediateBecomesMovi)
{
    const Kernel k = assemble(".kernel t\n mov r0, 9\n exit\n");
    EXPECT_EQ(k.at(0).op, Opcode::MOVI);
    EXPECT_EQ(k.at(0).imm, 9);
}

TEST(Assembler, MemoryOperands)
{
    const Kernel k = assemble(R"(
.kernel t
    ldg r1, [r0]
    ldg r2, [r0+8]
    ldg r3, [r0-4]
    stg [r0+12], r1
    lds r4, [r0]
    sts [r0+128], r4
    atomg.add r5, [r0], r1
    exit
)");
    EXPECT_EQ(k.at(0).imm, 0);
    EXPECT_EQ(k.at(1).imm, 8);
    EXPECT_EQ(k.at(2).imm, -4);
    EXPECT_EQ(k.at(3).op, Opcode::STG);
    EXPECT_EQ(k.at(3).imm, 12);
    EXPECT_EQ(k.at(4).op, Opcode::LDS);
    EXPECT_EQ(k.at(5).op, Opcode::STS);
    EXPECT_EQ(k.at(6).op, Opcode::ATOMG_ADD);
}

TEST(Assembler, CompareSuffixes)
{
    const Kernel k = assemble(R"(
.kernel t
    isetp.lt r1, r0, 5
    isetp.ge r2, r0, r1
    fsetp.ne r3, r0, r1
    exit
)");
    EXPECT_EQ(k.at(0).op, Opcode::ISETP);
    EXPECT_EQ(k.at(0).cmp, CmpOp::LT);
    EXPECT_EQ(k.at(1).cmp, CmpOp::GE);
    EXPECT_EQ(k.at(2).op, Opcode::FSETP);
    EXPECT_EQ(k.at(2).cmp, CmpOp::NE);
}

TEST(Assembler, SpecialRegisters)
{
    const Kernel k = assemble(R"(
.kernel t
    s2r r0, tid.x
    s2r r1, ctaid.y
    s2r r2, laneid
    exit
)");
    EXPECT_EQ(k.at(0).sreg, SpecialReg::TidX);
    EXPECT_EQ(k.at(1).sreg, SpecialReg::CtaIdY);
    EXPECT_EQ(k.at(2).sreg, SpecialReg::LaneId);
}

TEST(Assembler, BranchesAndLabels)
{
    const Kernel k = assemble(R"(
.kernel t
top:
    iadd r0, r0, 1
    bra r1, top
    jmp end
end:
    exit
)");
    EXPECT_EQ(k.at(1).branchTarget, 0u);
    EXPECT_EQ(k.at(1).reconvergePc, 2u); // backward: fall-through
    EXPECT_EQ(k.at(2).branchTarget, 3u);
    EXPECT_EQ(k.at(2).src[0], noReg); // jmp is unconditional
}

TEST(Assembler, JoinKeyword)
{
    const Kernel k = assemble(R"(
.kernel t
    bra r0, else_p, join=merge
    movi r1, 1
    jmp merge
else_p:
    movi r1, 2
merge:
    exit
)");
    EXPECT_EQ(k.at(0).branchTarget, 3u);
    EXPECT_EQ(k.at(0).reconvergePc, 4u);
}

TEST(Assembler, ErrorUnknownMnemonic)
{
    EXPECT_THROW(assemble(".kernel t\n frob r0, r1\n exit\n"), FatalError);
}

TEST(Assembler, ErrorMissingKernelDirective)
{
    EXPECT_THROW(assemble("  movi r0, 1\n  exit\n"), FatalError);
}

TEST(Assembler, ErrorDuplicateKernelDirective)
{
    EXPECT_THROW(assemble(".kernel a\n.kernel b\n exit\n"), FatalError);
}

TEST(Assembler, ErrorUndefinedLabel)
{
    EXPECT_THROW(assemble(".kernel t\n jmp nowhere\n exit\n"), FatalError);
}

TEST(Assembler, ErrorBadOperandCount)
{
    EXPECT_THROW(assemble(".kernel t\n iadd r0, r1\n exit\n"), FatalError);
}

TEST(Assembler, ErrorBadMemoryOperand)
{
    EXPECT_THROW(assemble(".kernel t\n ldg r0, [5]\n exit\n"), FatalError);
    EXPECT_THROW(assemble(".kernel t\n ldg r0, r1\n exit\n"), FatalError);
}

TEST(Assembler, ErrorBadCompareSuffix)
{
    EXPECT_THROW(assemble(".kernel t\n isetp.zz r0, r1, r2\n exit\n"),
                 FatalError);
}

TEST(Assembler, ErrorEmptySource)
{
    EXPECT_THROW(assemble(""), FatalError);
}

TEST(Assembler, ErrorLineNumberReported)
{
    try {
        assemble(".kernel t\n movi r0, 1\n bogus\n exit\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(Disassembler, SingleInstructionForms)
{
    Instruction i;
    i.op = Opcode::IADD;
    i.dst = 2;
    i.src[0] = 0;
    i.useImm = true;
    i.imm = 5;
    EXPECT_EQ(disassemble(i), "iadd r2, r0, 5");

    i = Instruction();
    i.op = Opcode::LDG;
    i.dst = 1;
    i.src[0] = 0;
    i.imm = -8;
    EXPECT_EQ(disassemble(i), "ldg r1, [r0-8]");

    i = Instruction();
    i.op = Opcode::BAR;
    EXPECT_EQ(disassemble(i), "bar");
}

/** Structural equality of two kernels, ignoring label names. */
void
expectEquivalent(const Kernel &a, const Kernel &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.regsPerThread(), b.regsPerThread());
    EXPECT_EQ(a.sharedBytesPerCta(), b.sharedBytesPerCta());
    for (Pc pc = 0; pc < a.size(); ++pc) {
        const Instruction &x = a.at(pc);
        const Instruction &y = b.at(pc);
        EXPECT_EQ(x.op, y.op) << "pc " << pc;
        EXPECT_EQ(x.dst, y.dst) << "pc " << pc;
        EXPECT_EQ(x.src[0], y.src[0]) << "pc " << pc;
        EXPECT_EQ(x.src[1], y.src[1]) << "pc " << pc;
        EXPECT_EQ(x.src[2], y.src[2]) << "pc " << pc;
        EXPECT_EQ(x.useImm, y.useImm) << "pc " << pc;
        EXPECT_EQ(x.imm, y.imm) << "pc " << pc;
        EXPECT_EQ(x.cmp, y.cmp) << "pc " << pc;
        EXPECT_EQ(x.cacheOp, y.cacheOp) << "pc " << pc;
        EXPECT_EQ(x.sreg, y.sreg) << "pc " << pc;
        EXPECT_EQ(x.branchTarget, y.branchTarget) << "pc " << pc;
        EXPECT_EQ(x.reconvergePc, y.reconvergePc) << "pc " << pc;
    }
}

/**
 * Round-trip property over EVERY opcode, in every operand form the
 * assembler grammar accepts (register and immediate ALU operands, all
 * compare suffixes, all special registers, positive/negative/zero
 * memory offsets, streaming loads, conditional/unconditional/backward
 * branches with explicit joins). The coverage assertion at the end
 * proves no opcode is silently missing, so the micro-op lowering —
 * which consumes exactly these decoded forms — provably spans the ISA.
 */
TEST(Disassembler, EveryOpcodeRoundTrips)
{
    std::string src = ".kernel all_ops\n.regs 8\n.shared 128\n";
    src += "top:\n";
    src += "  nop\n";
    src += "  mov r1, r2\n";
    src += "  movi r1, -7\n";
    src += "  movi r2, 2147483647\n";
    for (const char *op : {"iadd", "isub", "imul", "imin", "imax", "and",
                           "or", "xor", "shl", "shr", "fadd", "fsub",
                           "fmul", "fmin", "fmax", "idiv", "irem"}) {
        src += std::string("  ") + op + " r1, r2, r3\n";
        src += std::string("  ") + op + " r4, r5, -13\n";
    }
    src += "  imad r1, r2, r3, r4\n";
    src += "  ffma r1, r2, r3, r4\n";
    for (const char *cc : {"eq", "ne", "lt", "le", "gt", "ge"}) {
        src += std::string("  isetp.") + cc + " r1, r2, r3\n";
        src += std::string("  isetp.") + cc + " r1, r2, 42\n";
        src += std::string("  fsetp.") + cc + " r4, r5, r6\n";
    }
    src += "  sel r1, r2, r3, r4\n";
    for (const char *op : {"not", "i2f", "f2i", "frcp", "fsqrt", "fexp",
                           "flog"})
        src += std::string("  ") + op + " r1, r2\n";
    for (const char *sreg :
         {"tid.x", "tid.y", "tid.z", "ntid.x", "ntid.y", "ntid.z",
          "ctaid.x", "ctaid.y", "ctaid.z", "nctaid.x", "nctaid.y",
          "nctaid.z", "laneid", "warpid"})
        src += std::string("  s2r r1, ") + sreg + "\n";
    src += "  ldp r1, 3\n";
    src += "  ldg r1, [r2+4]\n";
    src += "  ldg r1, [r2-4]\n";
    src += "  ldg r1, [r2]\n";
    src += "  ldg.cg r1, [r2+8]\n";
    src += "  stg [r2+4], r3\n";
    src += "  stg [r2-4], r3\n";
    src += "  lds r1, [r2+16]\n";
    src += "  sts [r2+16], r1\n";
    src += "  atomg.add r1, [r2+4], r3\n";
    src += "  bra r1, fwd\n";
    src += "  bra r2, fwd, join=top\n";
    src += "  jmp top\n";
    src += "fwd:\n";
    src += "  bar\n";
    src += "  exit\n";

    const Kernel original = assemble(src);
    const Kernel rebuilt = assemble(disassemble(original));
    expectEquivalent(original, rebuilt);

    // The property is only as strong as its coverage: every opcode in
    // the ISA must appear in the kernel above.
    std::set<Opcode> seen;
    for (Pc pc = 0; pc < original.size(); ++pc)
        seen.insert(original.at(pc).op);
    for (std::uint32_t op = 0;
         op < static_cast<std::uint32_t>(Opcode::NumOpcodes); ++op) {
        EXPECT_TRUE(seen.count(static_cast<Opcode>(op)))
            << "opcode " << toString(static_cast<Opcode>(op))
            << " missing from the round-trip kernel";
    }
}

/** Round-trip property over every benchmark kernel in the suite. */
class DisasmRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(DisasmRoundTrip, AssembleDisassembleAssemble)
{
    const auto wl = makeWorkload(GetParam(), 0);
    const Kernel original = wl->buildKernel();
    const std::string text = disassemble(original);
    const Kernel rebuilt = assemble(text);
    expectEquivalent(original, rebuilt);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DisasmRoundTrip,
                         ::testing::ValuesIn(benchmarkNames()));

} // namespace
} // namespace vtsim
