#include "telemetry/profiler.hh"

#include <algorithm>

#include "common/log.hh"

namespace vtsim::telemetry {

namespace {

enum class Kind : std::uint8_t { CycleSampled, EpochSampled, Direct };

struct BucketInfo
{
    const char *name;
    Kind kind;
};

// Indexed by Bucket; keep in enum order.
constexpr BucketInfo kBuckets[SimProfiler::kBucketCount] = {
    {"cta_admission", Kind::CycleSampled},
    {"noc_tick", Kind::CycleSampled},
    {"mem_partition_tick", Kind::CycleSampled},
    {"sm_tick", Kind::CycleSampled},
    {"loop_other", Kind::CycleSampled},
    {"shard_compute", Kind::EpochSampled},
    {"shard_imbalance", Kind::EpochSampled},
    {"epoch_merge", Kind::EpochSampled},
    {"horizon_settle", Kind::Direct},
    {"sampler", Kind::Direct},
    {"checkpoint_write", Kind::Direct},
    {"descheduled", Kind::Direct},
};

bool
powerOfTwo(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

const char *
SimProfiler::bucketName(Bucket b)
{
    return kBuckets[std::size_t(b)].name;
}

SimProfiler::SimProfiler(std::uint32_t cycleCadence,
                         std::uint32_t epochCadence)
    : cycleCadence_(cycleCadence), epochCadence_(epochCadence)
{
    VTSIM_ASSERT(powerOfTwo(cycleCadence_) && powerOfTwo(epochCadence_),
                 "profiler cadences must be powers of two, got ",
                 cycleCadence_, "/", epochCadence_);
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        const std::string name = kBuckets[i].name;
        group_.addValue(name + "_ns", &ns_[i],
                        "measured wall nanoseconds in " + name);
        group_.addValue(name + "_calls", &calls_[i],
                        "measurements folded into " + name);
    }
    group_.addValue("executed_cycles", &cycles_,
                    "loop-body executions seen by the profiler");
    group_.addValue("sampled_cycles", &sampledCycles_,
                    "loop-body executions that were measured");
    group_.addValue("executed_epochs", &epochs_,
                    "sharded epochs seen by the profiler");
    group_.addValue("sampled_epochs", &sampledEpochs_,
                    "sharded epochs that were measured");
    registry_.addGroup(group_);

    // Calibrate the steady_clock read cost. Every markPhase interval in
    // a sampled cycle ends with one nowNs() whose cost lands inside the
    // interval, and extrapolation multiplies that bias by the cadence —
    // enough to over-attribute short phases by tens of percent. report()
    // subtracts calls * clockCostNs_ from sampled buckets before
    // scaling.
    constexpr int kProbes = 4096;
    const std::uint64_t t0 = nowNs();
    for (int i = 0; i < kProbes; ++i)
        (void)nowNs();
    clockCostNs_ = double(nowNs() - t0) / kProbes;
}

void
SimProfiler::beginRun()
{
    runStartNs_ = nowNs();
}

void
SimProfiler::endRun()
{
    runNs_ += nowNs() - runStartNs_;
}

void
SimProfiler::finishEpochCompute()
{
    std::uint64_t max_ns = 0;
    for (std::uint64_t ns : workerNs_)
        max_ns = std::max(max_ns, ns);
    std::uint64_t imbalance = 0;
    for (std::uint64_t ns : workerNs_)
        imbalance += max_ns - ns;
    ns_[std::size_t(Bucket::ShardCompute)] += max_ns;
    ++calls_[std::size_t(Bucket::ShardCompute)];
    if (!workerNs_.empty()) {
        ns_[std::size_t(Bucket::ShardImbalance)] += imbalance;
        ++calls_[std::size_t(Bucket::ShardImbalance)];
    }
    lastMark_ = nowNs();
}

double
SimProfiler::scaleFor(Bucket b) const
{
    switch (kBuckets[std::size_t(b)].kind) {
      case Kind::CycleSampled:
        return sampledCycles_ ? double(cycles_) / double(sampledCycles_)
                              : 0.0;
      case Kind::EpochSampled:
        return sampledEpochs_ ? double(epochs_) / double(sampledEpochs_)
                              : 0.0;
      case Kind::Direct:
        return 1.0;
    }
    return 1.0;
}

std::vector<SimProfiler::BucketReport>
SimProfiler::report() const
{
    std::vector<BucketReport> out;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        if (!calls_[i])
            continue;
        const Bucket b = Bucket(i);
        BucketReport r;
        r.bucket = b;
        r.name = kBuckets[i].name;
        r.measuredNs = ns_[i];
        r.calls = calls_[i];
        r.sampled = kBuckets[i].kind != Kind::Direct;
        // Remove the per-interval clock-read cost from sampled buckets
        // — the bias would otherwise be scaled up by the cadence.
        double net_ns = double(ns_[i]);
        if (r.sampled)
            net_ns = std::max(0.0,
                              net_ns - double(calls_[i]) * clockCostNs_);
        r.seconds = net_ns * 1e-9 * scaleFor(b);
        out.push_back(r);
    }
    return out;
}

double
SimProfiler::attributedSeconds() const
{
    double total = 0.0;
    for (const auto &r : report())
        total += r.seconds;
    return total;
}

} // namespace vtsim::telemetry
