#include "service/daemon.hh"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logger.hh"
#include "service/protocol.hh"

namespace vtsim::service {

Daemon::Daemon(JobService &service, std::string socket_path)
    : service_(service), path_(std::move(socket_path))
{}

Daemon::~Daemon()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lk(connMu_);
        for (auto &t : connections_) {
            if (t.joinable())
                t.join();
        }
        connections_.clear();
    }
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (!path_.empty()) {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }
}

void
Daemon::start()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("socket path too long: '" + path_ +
                                 "'");
    }
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        throw std::runtime_error(std::string("socket(): ") +
                                 std::strerror(errno));
    }
    // A stale socket file from a crashed daemon would fail the bind.
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        throw std::runtime_error("bind('" + path_ +
                                 "'): " + std::strerror(errno));
    }
    if (::listen(listenFd_, 16) != 0) {
        throw std::runtime_error("listen('" + path_ +
                                 "'): " + std::strerror(errno));
    }
    if (EventLog *log = service_.eventLog())
        log->emit("listening", {{"socket", Json(path_)}});
}

void
Daemon::serve()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stop_.load(std::memory_order_relaxed))
                break;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            logging::error("vtsimd", "accept(): ",
                           std::strerror(errno));
            if (EventLog *log = service_.eventLog()) {
                log->emit("accept_error",
                          {{"error",
                            Json(std::string(std::strerror(errno)))}});
            }
            break;
        }
        if (stop_.load(std::memory_order_relaxed)) {
            ::close(fd);
            break;
        }
        std::lock_guard<std::mutex> lk(connMu_);
        connections_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
    // Let in-flight replies finish before the caller tears the
    // service down.
    std::lock_guard<std::mutex> lk(connMu_);
    for (auto &t : connections_) {
        if (t.joinable())
            t.join();
    }
    connections_.clear();
}

void
Daemon::requestStop()
{
    stop_.store(true, std::memory_order_relaxed);
    // Unblocks accept(); shutdown() is async-signal-safe, so the
    // vtsimd SIGTERM handler may call requestStop directly.
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
}

void
Daemon::serveConnection(int fd)
{
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break; // Disconnect (mid-request included): just drop it.
        buffer.append(chunk, std::size_t(n));
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (line.size() > kMaxLineBytes) {
                sendLine(fd, errorReply(
                                 "request exceeds the 64 KiB line "
                                 "limit"));
                open = false;
                break;
            }
            if (!handleLine(fd, line)) {
                open = false;
                break;
            }
        }
        buffer.erase(0, start);
        if (buffer.size() > kMaxLineBytes) {
            // An unterminated line already over the cap: reject it
            // without waiting for (or buffering) the rest.
            sendLine(fd,
                     errorReply("request exceeds the 64 KiB line "
                                "limit"));
            break;
        }
    }
    ::close(fd);
}

bool
Daemon::handleLine(int fd, const std::string &line)
{
    Request req;
    try {
        req = parseRequest(line);
    } catch (const std::exception &e) {
        // JsonError or ProtocolError: the client's problem, never the
        // daemon's.
        return sendLine(fd, errorReply(e.what()));
    }

    try {
        switch (req.op) {
          case Request::Op::Submit: {
            const auto outcome = service_.submit(req.spec, req.priority);
            Json::Object o;
            if (outcome.ok()) {
                o["ok"] = Json(true);
                o["job"] = Json(outcome.id);
            } else {
                o["ok"] = Json(false);
                if (!outcome.rejected.empty())
                    o["rejected"] = Json(outcome.rejected);
                else
                    o["error"] = Json(outcome.error);
            }
            return sendLine(fd, Json(std::move(o)).dump());
          }
          case Request::Op::Wait:
            return sendLine(fd,
                            snapshotToJson(service_.wait(req.job)).dump());
          case Request::Op::Query:
            return sendLine(
                fd, snapshotToJson(service_.query(req.job)).dump());
          case Request::Op::Status:
            return sendLine(fd, service_.status().dump());
          case Request::Op::Cancel: {
            std::string error;
            Json::Object o;
            if (service_.cancel(req.job, error)) {
                o["ok"] = Json(true);
                o["job"] = Json(req.job);
            } else {
                o["ok"] = Json(false);
                o["error"] = Json(error);
            }
            return sendLine(fd, Json(std::move(o)).dump());
          }
          case Request::Op::Ping: {
            Json::Object o;
            o["ok"] = Json(true);
            o["op"] = Json("ping");
            return sendLine(fd, Json(std::move(o)).dump());
          }
          case Request::Op::Metrics: {
            // The Prometheus text (multi-line) rides inside the JSON
            // string: NDJSON framing keeps the reply one line.
            Json::Object o;
            o["ok"] = Json(true);
            o["op"] = Json("metrics");
            o["body"] = Json(service_.metricsText());
            return sendLine(fd, Json(std::move(o)).dump());
          }
          case Request::Op::Shutdown: {
            Json::Object o;
            o["ok"] = Json(true);
            o["state"] = Json("draining");
            sendLine(fd, Json(std::move(o)).dump());
            requestStop();
            return false;
          }
        }
    } catch (const std::exception &e) {
        return sendLine(fd, errorReply(e.what()));
    }
    return sendLine(fd, errorReply("unhandled op"));
}

bool
Daemon::sendLine(int fd, std::string line)
{
    line.push_back('\n');
    std::size_t off = 0;
    while (off < line.size()) {
        // MSG_NOSIGNAL: a client that hung up must cost us an EPIPE,
        // not a process-wide SIGPIPE.
        const ssize_t n = ::send(fd, line.data() + off,
                                 line.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += std::size_t(n);
    }
    return true;
}

} // namespace vtsim::service
