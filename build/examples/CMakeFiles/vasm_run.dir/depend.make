# Empty dependencies file for vasm_run.
# This may be replaced when dependencies are built.
