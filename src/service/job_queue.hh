/**
 * @file
 * Pending-job queue of the simulation-job service: priority ordered
 * (High before Normal before Low), FIFO by admission sequence within a
 * priority, with a bounded depth for admission control.
 *
 * Oversubscription is the point: far more jobs than workers may be
 * admitted, the excess waiting here (or parked on disk after a
 * preemption) while only `workers` jobs actually hold a Gpu. The bound
 * applies to *new* admissions only — a job that was already admitted
 * and comes back (preempted and parked, or retried after a crash)
 * re-enters through readmit(), which never rejects: rejecting it would
 * lose accepted work. Parked jobs keep their original sequence number,
 * so a resumed job re-runs before later arrivals of equal priority.
 *
 * Not thread-safe on its own: the JobService serializes access under
 * its mutex.
 */

#ifndef VTSIM_SERVICE_JOB_QUEUE_HH
#define VTSIM_SERVICE_JOB_QUEUE_HH

#include <cstddef>
#include <vector>

#include "service/job.hh"

namespace vtsim::service {

struct JobRecord;

class JobQueue
{
  public:
    /** @p limit caps jobs waiting here (admission control). */
    explicit JobQueue(std::size_t limit) : limit_(limit) {}

    /** Admit a new job; false (rejected) when the queue is full. */
    bool admit(JobRecord *job);

    /** Re-enter an already-admitted job (parked or retrying). */
    void readmit(JobRecord *job);

    /** Highest-priority, oldest job; nullptr when empty. */
    JobRecord *pop();

    /** The job pop() would return, without removing it. */
    const JobRecord *peek() const
    { return queue_.empty() ? nullptr : queue_.back(); }

    /** Remove a specific waiting job (cancel); false when absent. */
    bool remove(const JobRecord *job);

    std::size_t depth() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }

  private:
    void insert(JobRecord *job);

    std::size_t limit_;
    /** Sorted: best candidate at the back (pop is pop_back). */
    std::vector<JobRecord *> queue_;
};

} // namespace vtsim::service

#endif // VTSIM_SERVICE_JOB_QUEUE_HH
