#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace vtsim::bench {

RunResult
runWorkload(const std::string &workload_name, const GpuConfig &config,
            std::uint32_t scale)
{
    auto workload = makeWorkload(workload_name, scale);
    const Kernel kernel = workload->buildKernel();

    Gpu gpu(config);
    const LaunchParams lp = workload->prepare(gpu.memory());

    RunResult result;
    result.workload = workload_name;
    const auto start = std::chrono::steady_clock::now();
    result.stats = gpu.launch(kernel, lp);
    result.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
        result.maxSimtDepth =
            std::max(result.maxSimtDepth, gpu.sm(i).maxSimtDepthSeen());
    }
    // Simulator-speed row (stderr: stdout stays byte-stable across
    // hosts so figure output remains diffable).
    std::fprintf(stderr,
                 "[sim-rate] %-14s wall %8.3fs %10.1f Kcyc/s %8.2f MIPS\n",
                 workload_name.c_str(), result.wallSeconds,
                 result.kcyclesPerSec(), result.mips());
    result.verified = workload->verify(gpu.memory());
    if (!result.verified) {
        VTSIM_FATAL("workload '", workload_name,
                    "' produced wrong results — timing numbers void");
    }
    return result;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / values.size());
}

void
printHeader(const std::string &experiment_id, const std::string &title)
{
    std::printf("==== %s: %s ====\n", experiment_id.c_str(),
                title.c_str());
}

} // namespace vtsim::bench
