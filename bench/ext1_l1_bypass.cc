/**
 * @file
 * EXT-1 (extension study): interaction of Virtual Thread with an
 * L1-bypass policy for global loads (the Kepler default, and what
 * PTX ldg.cg requests per-instruction). Oversubscribing CTAs raises L1
 * pressure; routing streaming loads around the L1 removes that
 * contention channel. Reported: speedup of each machine over the
 * shared baseline (L1 enabled, VT off).
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("EXT-1", "VT x L1-bypass interaction");
    const GpuConfig base = GpuConfig::fermiLike();
    GpuConfig vt = base;
    vt.vtEnabled = true;
    GpuConfig byp = base;
    byp.l1BypassGlobalLoads = true;
    GpuConfig both = vt;
    both.l1BypassGlobalLoads = true;

    const char *subset[] = {"vecadd", "spmv", "stencil", "kmeans",
                            "needle", "mummer"};

    std::vector<RunSpec> specs;
    for (const char *name : subset) {
        specs.push_back({name, base, benchScale});
        specs.push_back({name, vt, benchScale});
        specs.push_back({name, byp, benchScale});
        specs.push_back({name, both, benchScale});
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s %10s %10s %10s\n", "benchmark", "vt",
                "bypass", "vt+bypass");
    for (std::size_t w = 0; w < std::size(subset); ++w) {
        const RunResult &ref = results[4 * w];
        const double sv =
            double(ref.stats.cycles) / results[4 * w + 1].stats.cycles;
        const double sb =
            double(ref.stats.cycles) / results[4 * w + 2].stats.cycles;
        const double s2 =
            double(ref.stats.cycles) / results[4 * w + 3].stats.cycles;
        std::printf("%-14s %9.2fx %9.2fx %9.2fx\n", subset[w], sv, sb,
                    s2);
    }
    std::printf("(all columns normalised to the L1-enabled, VT-off "
                "baseline)\n");
    return 0;
}
