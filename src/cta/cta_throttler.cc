#include "cta/cta_throttler.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/serialize_util.hh"

namespace vtsim {

CtaThrottler::CtaThrottler(const ThrottleParams &params,
                           std::uint32_t max_cap, SmId sm_id)
    : params_(params), maxCap_(max_cap), cap_(max_cap),
      stats_("sm" + std::to_string(sm_id) + ".throttle")
{
    VTSIM_ASSERT(params.epochCycles > 0, "zero epoch");
    VTSIM_ASSERT(params.minCap >= 1 && params.minCap <= max_cap,
                 "bad throttle cap range");
    stats_.addCounter("decreases", &decreases_, "cap decrements");
    stats_.addCounter("increases", &increases_, "cap increments");
    stats_.addScalar("cap", &capSamples_, "active-CTA cap per epoch");
}

void
CtaThrottler::sample(bool issued, bool mem_stalled)
{
    ++epochSamples_;
    epochIssued_ += issued;
    epochMemStalled_ += mem_stalled;
    if (epochSamples_ < params_.epochCycles)
        return;

    const double mem_frac =
        double(epochMemStalled_) / double(epochSamples_);
    if (mem_frac > params_.highWater && cap_ > params_.minCap) {
        --cap_;
        ++decreases_;
    } else if (mem_frac < params_.lowWater && cap_ < maxCap_) {
        ++cap_;
        ++increases_;
    }
    capSamples_.sample(cap_);
    epochSamples_ = 0;
    epochIssued_ = 0;
    epochMemStalled_ = 0;
}

void
CtaThrottler::reset()
{
    cap_ = maxCap_;
    epochSamples_ = 0;
    epochIssued_ = 0;
    epochMemStalled_ = 0;
    decreases_.reset();
    increases_.reset();
    capSamples_.reset();
}

void
CtaThrottler::save(Serializer &ser) const
{
    const std::size_t sec = ser.beginSection("thro");
    ser.put(cap_);
    ser.put(epochSamples_);
    ser.put(epochIssued_);
    ser.put(epochMemStalled_);
    saveStat(ser, decreases_);
    saveStat(ser, increases_);
    saveStat(ser, capSamples_);
    ser.endSection(sec);
}

void
CtaThrottler::restore(Deserializer &des)
{
    des.beginSection("thro");
    des.get(cap_);
    des.get(epochSamples_);
    des.get(epochIssued_);
    des.get(epochMemStalled_);
    restoreStat(des, decreases_);
    restoreStat(des, increases_);
    restoreStat(des, capSamples_);
    des.endSection();
}

void
CtaThrottler::sampleIdleN(std::uint64_t n, bool mem_stalled)
{
    VTSIM_ASSERT(epochSamples_ + n < params_.epochCycles,
                 "bulk sample crosses an epoch boundary");
    epochSamples_ += n;
    if (mem_stalled)
        epochMemStalled_ += n;
}

} // namespace vtsim
