/**
 * @file
 * Unit tests for the FR-FCFS DRAM channel model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace vtsim {
namespace {

DramParams
params()
{
    DramParams p;
    p.numBanks = 4;
    p.rowBufferBytes = 1024; // 8 lines per row
    p.rowHitLatency = 100;
    p.rowMissLatency = 200;
    p.rowHitOccupancy = 4;
    p.rowMissOccupancy = 40;
    p.bytesPerCycle = 32;
    p.lineSize = 128;
    p.schedWindow = 16;
    p.commandsPerCycle = 2;
    p.addressStride = 1;
    return p;
}

/** Drive until @p dram returns a completion or @p limit cycles pass. */
Cycle
runUntilComplete(Dram &dram, Cycle start, Cycle limit = 100000)
{
    for (Cycle c = start; c < limit; ++c) {
        if (!dram.advance(c).empty())
            return c;
    }
    return limit;
}

TEST(Dram, ColdAccessIsRowMiss)
{
    Dram d(params());
    d.enqueue(0, 128, true, 0);
    const Cycle done = runUntilComplete(d, 0);
    // Issued at cycle 0, row miss 200 + 4 data cycles.
    EXPECT_GE(done, 204u);
    EXPECT_LE(done, 210u);
    EXPECT_EQ(d.rowMisses(), 1u);
    EXPECT_EQ(d.rowHits(), 0u);
}

TEST(Dram, SecondAccessSameRowIsHit)
{
    Dram d(params());
    d.enqueue(0, 128, true, 0);
    runUntilComplete(d, 0);
    d.enqueue(4 * 128, 128, true, 1000); // same bank 0 row 0
    runUntilComplete(d, 1000);
    EXPECT_EQ(d.rowHits(), 1u);
    EXPECT_EQ(d.rowMisses(), 1u);
}

TEST(Dram, DifferentRowSameBankIsMiss)
{
    Dram d(params());
    d.enqueue(0, 128, true, 0);
    runUntilComplete(d, 0);
    // Bank 0, next row: line index numBanks * linesPerRow = 32.
    d.enqueue(32 * 128, 128, true, 1000);
    runUntilComplete(d, 1000);
    EXPECT_EQ(d.rowMisses(), 2u);
}

TEST(Dram, FrFcfsPrefersRowHitOverOlderMiss)
{
    Dram d(params());
    // Open row 0 of bank 0.
    d.enqueue(0, 128, true, 0);
    Cycle c = runUntilComplete(d, 0) + 1;
    // Queue a row-miss (row 1 of bank 0) FIRST, then a row-hit.
    d.enqueue(32 * 128, 128, true, c); // row 1, bank 0
    d.enqueue(1 * 128 * 0 + 512, 128, true, c); // line 4: bank 0 row 0 hit
    std::vector<Addr> first;
    for (; first.empty(); ++c)
        first = d.advance(c);
    // The row hit (line addr 512) completes before the older miss.
    EXPECT_EQ(first[0], 512u);
}

TEST(Dram, BanksWorkInParallel)
{
    // Two row misses to different banks should complete ~together,
    // much sooner than 2x a serial pair.
    Dram d(params());
    d.enqueue(0, 128, true, 0);       // bank 0
    d.enqueue(128, 128, true, 0);     // bank 1
    Cycle c = 0;
    std::vector<Addr> all;
    while (all.size() < 2 && c < 10000) {
        for (Addr a : d.advance(c))
            all.push_back(a);
        ++c;
    }
    EXPECT_LT(c, 260u); // both inside ~one miss latency + two bus slots
}

TEST(Dram, BusSerialisesDataTransfers)
{
    // Many row hits to distinct banks: completions must be spaced by the
    // 4-cycle data transfer once the pipe fills.
    DramParams p = params();
    p.rowMissLatency = 100; // same as hit to simplify
    Dram d(p);
    for (int i = 0; i < 8; ++i)
        d.enqueue(Addr(i) * 128, 128, true, 0);
    std::vector<Cycle> completions;
    for (Cycle c = 0; completions.size() < 8 && c < 10000; ++c) {
        for (Addr a : d.advance(c)) {
            (void)a;
            completions.push_back(c);
        }
    }
    ASSERT_EQ(completions.size(), 8u);
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_GE(completions[i] - completions[i - 1], 4u);
}

TEST(Dram, StoresProduceNoCompletion)
{
    Dram d(params());
    d.enqueue(0, 128, false, 0);
    for (Cycle c = 0; c < 1000; ++c)
        EXPECT_TRUE(d.advance(c).empty());
    EXPECT_TRUE(d.idle());
    EXPECT_EQ(d.bytesTransferred(), 128u);
}

TEST(Dram, IdleTracksWork)
{
    Dram d(params());
    EXPECT_TRUE(d.idle());
    d.enqueue(0, 128, true, 0);
    EXPECT_FALSE(d.idle());
    runUntilComplete(d, 0);
    d.advance(100000);
    EXPECT_TRUE(d.idle());
}

TEST(Dram, AddressStrideRenumbersLines)
{
    // With stride 6, global lines 0 and 6 are partition-local lines 0
    // and 1 -> banks 0 and 1, same row.
    DramParams p = params();
    p.addressStride = 6;
    Dram d(p);
    d.enqueue(0, 128, true, 0);
    runUntilComplete(d, 0);
    d.enqueue(6 * 128, 128, true, 1000); // local line 1 -> bank 1, miss
    runUntilComplete(d, 1000);
    d.enqueue(24 * 128, 128, true, 2000); // local line 4 -> bank 0, row 0
    runUntilComplete(d, 2000);
    EXPECT_EQ(d.rowMisses(), 2u);
    EXPECT_EQ(d.rowHits(), 1u);
}

TEST(Dram, BandwidthAccounting)
{
    Dram d(params());
    d.enqueue(0, 128, true, 0);
    d.enqueue(128, 64, false, 0);
    runUntilComplete(d, 0);
    d.advance(10000);
    EXPECT_EQ(d.bytesTransferred(), 192u);
}

} // namespace
} // namespace vtsim
