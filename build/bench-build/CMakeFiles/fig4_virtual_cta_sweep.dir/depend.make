# Empty dependencies file for fig4_virtual_cta_sweep.
# This may be replaced when dependencies are built.
