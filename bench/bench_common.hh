/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: run a
 * workload on a configuration, verify its results, and format rows.
 */

#ifndef VTSIM_BENCH_BENCH_COMMON_HH
#define VTSIM_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "gpu/gpu.hh"
#include "workloads/workload.hh"

namespace vtsim::bench {

/**
 * Machine-readable telemetry switches every figure/table binary accepts
 * (parsed by parseTelemetryArgs, applied process-wide before the runs):
 *   --stats-json <path>       full per-run KernelStats + sim-rate JSON
 *   --stats-interval <cycles> per-run interval JSONL series (embedded in
 *                             the stats JSON as "intervals")
 *   --trace-json <path>       per-run Perfetto trace (run N > 0 writes
 *                             <stem>.N<ext> so parallel runs never share
 *                             a file)
 *   --checkpoint <path>       per-run vtsim-ckpt-v1 checkpoint (same
 *                             <stem>.N<ext> naming as --trace-json)
 *   --checkpoint-every <n>    write the checkpoint every n cycles
 *                             instead of once at kernel end
 *   --restore <path>          restore the run from a checkpoint instead
 *                             of preparing workload inputs; the run
 *                             resumes and finishes bit-identically
 *   --sim-threads <n>         shard each run's SMs and memory
 *                             partitions across n worker threads
 *                             (docs/ARCHITECTURE.md "Sharded
 *                             simulation"); every statistic, series,
 *                             trace and checkpoint stays bit-identical
 *                             to the sequential run. Also honors the
 *                             VTSIM_SIM_THREADS environment variable
 *                             (flag wins). Malformed values are a fatal
 *                             error, like --jobs/VTSIM_JOBS.
 *   --exec microcode|legacy   force the functional-execution path for
 *                             every run: the pre-decoded micro-op
 *                             stream (the default) or the legacy
 *                             per-lane interpreter. Bit-identical
 *                             results either way; the switch exists
 *                             for A/B speed runs (bench_microcode.py).
 *   --record-trace <path>     per-run vtsim-mtrace-v1 memory-access
 *                             trace of the post-coalescer stream (same
 *                             <stem>.N<ext> naming as --trace-json).
 *                             Forces sequential simulation.
 *   --replay-trace <path>     drive the memory system from a recorded
 *                             trace instead of executing the workload;
 *                             functional results are skipped (nothing
 *                             executes), timing/cache/DRAM statistics
 *                             are bit-identical to the recording run.
 *                             Mutually exclusive with --record-trace.
 *   --profile-json <path>     per-run simulator self-profile
 *                             (vtsim-profile-v1): wall-time attribution
 *                             per simulation phase via the sampling
 *                             SimProfiler (telemetry/profiler.hh); same
 *                             <stem>.N<ext> naming as --trace-json.
 *                             KernelStats stay bit-identical with it on
 *                             and overhead is <2% (CI-enforced,
 *                             scripts/bench_profile.py).
 */
struct TelemetryOptions
{
    std::string statsJsonPath;
    Cycle statsInterval = 0;
    std::string traceJsonPath;
    std::string checkpointPath;
    Cycle checkpointEvery = 0;
    std::string restorePath;
    /** Shard workers per simulation; 0 = unset (sequential). */
    unsigned simThreads = 0;
    /** Functional-execution override: "" (leave the config alone),
     *  "microcode" or "legacy". */
    std::string execMode;
    /** vtsim-mtrace-v1 output path (--record-trace); empty = off. */
    std::string recordTracePath;
    /** vtsim-mtrace-v1 input path (--replay-trace); empty = off. */
    std::string replayTracePath;
    /** vtsim-profile-v1 output path (--profile-json); empty = off. */
    std::string profileJsonPath;
};

/** Scan argv for the telemetry switches (unknown args are ignored). */
TelemetryOptions parseTelemetryArgs(int argc, char **argv);

/** Install @p opts for subsequent runWorkload calls. Not thread-safe:
 *  call before fanning out the pool. */
void setTelemetryOptions(const TelemetryOptions &opts);
const TelemetryOptions &telemetryOptions();

/** @p path with ".<index>" before the extension; bare for index 0. */
std::string indexedPath(const std::string &path, std::size_t index);

/** Apply the installed --exec override (if any) to @p config. */
void applyExecMode(GpuConfig &config);

/** Result of one simulated run. */
struct RunResult
{
    std::string workload;
    KernelStats stats;
    bool verified = false;
    /** Host wall-clock seconds spent inside Gpu::launch. */
    double wallSeconds = 0.0;
    /** Deepest SIMT reconvergence stack observed on any SM. */
    std::uint32_t maxSimtDepth = 0;
    /** Interval-sampler JSONL series (empty unless --stats-interval). */
    std::string intervalSeries;
    /** Per-grid results of a concurrent run (empty for solo runs). */
    std::vector<GridStats> grids;

    /** Simulator speed: simulated kilocycles per host second. */
    double kcyclesPerSec() const
    {
        return wallSeconds > 0.0 ? stats.cycles / wallSeconds / 1e3 : 0.0;
    }

    /** Simulator speed: millions of simulated thread instructions per
     *  host second. */
    double mips() const
    {
        return wallSeconds > 0.0
                   ? stats.threadInstructions / wallSeconds / 1e6
                   : 0.0;
    }
};

/**
 * Simulate @p workload_name at @p scale on a fresh GPU with @p config.
 * The run always verifies functional results and aborts on mismatch —
 * a timing experiment on wrong answers is meaningless. @p run_index
 * names this run's slice of any per-run telemetry output files.
 */
RunResult runWorkload(const std::string &workload_name,
                      const GpuConfig &config, std::uint32_t scale = 1,
                      std::size_t run_index = 0);

/**
 * As runWorkload, but on a caller-owned @p gpu that must be freshly
 * constructed or reset() with the intended config. Lets a worker thread
 * (bench/parallel_runner.cc) reuse one Gpu arena across runs of the
 * same configuration instead of reconstructing it per run.
 */
RunResult runWorkloadOn(Gpu &gpu, const std::string &workload_name,
                        std::uint32_t scale = 1,
                        std::size_t run_index = 0);

/**
 * Launch @p workload_names concurrently on @p gpu under @p policy
 * (Gpu::launchConcurrent), verify every grid's results, and report
 * per-grid statistics in RunResult::grids. The result's workload label
 * joins the names with '+'. Grid g gets priority g (listed-first wins
 * under the preempt policy). Trace record/replay do not compose with
 * co-runs (config/sim_mode.hh).
 */
RunResult runCoRunOn(Gpu &gpu,
                     const std::vector<std::string> &workload_names,
                     SharePolicy policy, std::uint32_t scale = 1,
                     std::size_t run_index = 0);

/** Geometric mean of a vector of positive ratios. */
double geomean(const std::vector<double> &values);

/** Print a standard header naming the experiment. */
void printHeader(const std::string &experiment_id,
                 const std::string &title);

/** Default problem scale for the figure benches (see bench/README note:
 *  scale 1 keeps every figure regenerable in minutes on a laptop). */
inline constexpr std::uint32_t benchScale = 1;

} // namespace vtsim::bench

#endif // VTSIM_BENCH_BENCH_COMMON_HH
