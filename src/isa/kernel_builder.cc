#include "isa/kernel_builder.hh"

#include <algorithm>

#include "common/log.hh"

namespace vtsim {

KernelBuilder &
KernelBuilder::minRegs(std::uint32_t n)
{
    minRegs_ = std::max(minRegs_, n);
    return *this;
}

KernelBuilder &
KernelBuilder::shared(std::uint32_t bytes)
{
    sharedBytes_ = bytes;
    return *this;
}

KernelBuilder &
KernelBuilder::label(const std::string &name)
{
    if (labels_.count(name))
        VTSIM_FATAL("kernel '", name_, "': duplicate label '", name, "'");
    nextLabels_.push_back(name);
    return *this;
}

Instruction &
KernelBuilder::emit(Opcode op)
{
    VTSIM_ASSERT(!built_, "builder reused after build()");
    const Pc pc = instrs_.size();
    for (const auto &l : nextLabels_) {
        labels_[l] = pc;
        labelByPc_[pc] = l;
    }
    nextLabels_.clear();
    instrs_.emplace_back();
    instrs_.back().op = op;
    return instrs_.back();
}

void
KernelBuilder::touch(RegIndex reg)
{
    if (reg != noReg)
        maxRegTouched_ = std::max<std::uint32_t>(maxRegTouched_, reg + 1u);
}

KernelBuilder &
KernelBuilder::mov(RegIndex dst, RegIndex src)
{
    auto &i = emit(Opcode::MOV);
    i.dst = dst;
    i.src[0] = src;
    touch(dst);
    touch(src);
    return *this;
}

KernelBuilder &
KernelBuilder::movi(RegIndex dst, std::int32_t imm)
{
    auto &i = emit(Opcode::MOVI);
    i.dst = dst;
    i.useImm = true;
    i.imm = imm;
    touch(dst);
    return *this;
}

KernelBuilder &
KernelBuilder::alu(Opcode op, RegIndex dst, RegIndex a, RegIndex b)
{
    auto &i = emit(op);
    i.dst = dst;
    i.src[0] = a;
    i.src[1] = b;
    touch(dst);
    touch(a);
    touch(b);
    return *this;
}

KernelBuilder &
KernelBuilder::alui(Opcode op, RegIndex dst, RegIndex a, std::int32_t imm)
{
    auto &i = emit(op);
    i.dst = dst;
    i.src[0] = a;
    i.useImm = true;
    i.imm = imm;
    touch(dst);
    touch(a);
    return *this;
}

KernelBuilder &
KernelBuilder::unary(Opcode op, RegIndex dst, RegIndex a)
{
    auto &i = emit(op);
    i.dst = dst;
    i.src[0] = a;
    touch(dst);
    touch(a);
    return *this;
}

KernelBuilder &
KernelBuilder::mad(Opcode op, RegIndex dst, RegIndex a, RegIndex b,
                   RegIndex c)
{
    VTSIM_ASSERT(op == Opcode::IMAD || op == Opcode::FFMA,
                 "mad() expects IMAD or FFMA");
    auto &i = emit(op);
    i.dst = dst;
    i.src[0] = a;
    i.src[1] = b;
    i.src[2] = c;
    touch(dst);
    touch(a);
    touch(b);
    touch(c);
    return *this;
}

KernelBuilder &
KernelBuilder::setp(Opcode op, CmpOp cmp, RegIndex dst, RegIndex a,
                    RegIndex b)
{
    VTSIM_ASSERT(op == Opcode::ISETP || op == Opcode::FSETP,
                 "setp() expects ISETP or FSETP");
    auto &i = emit(op);
    i.dst = dst;
    i.src[0] = a;
    i.src[1] = b;
    i.cmp = cmp;
    touch(dst);
    touch(a);
    touch(b);
    return *this;
}

KernelBuilder &
KernelBuilder::setpi(Opcode op, CmpOp cmp, RegIndex dst, RegIndex a,
                     std::int32_t imm)
{
    VTSIM_ASSERT(op == Opcode::ISETP || op == Opcode::FSETP,
                 "setpi() expects ISETP or FSETP");
    auto &i = emit(op);
    i.dst = dst;
    i.src[0] = a;
    i.useImm = true;
    i.imm = imm;
    i.cmp = cmp;
    touch(dst);
    touch(a);
    return *this;
}

KernelBuilder &
KernelBuilder::sel(RegIndex dst, RegIndex a, RegIndex b, RegIndex cond)
{
    auto &i = emit(Opcode::SEL);
    i.dst = dst;
    i.src[0] = a;
    i.src[1] = b;
    i.src[2] = cond;
    touch(dst);
    touch(a);
    touch(b);
    touch(cond);
    return *this;
}

KernelBuilder &
KernelBuilder::s2r(RegIndex dst, SpecialReg sreg)
{
    auto &i = emit(Opcode::S2R);
    i.dst = dst;
    i.sreg = sreg;
    touch(dst);
    return *this;
}

KernelBuilder &
KernelBuilder::ldp(RegIndex dst, std::uint32_t param_index)
{
    auto &i = emit(Opcode::LDP);
    i.dst = dst;
    i.useImm = true;
    i.imm = static_cast<std::int32_t>(param_index);
    touch(dst);
    return *this;
}

KernelBuilder &
KernelBuilder::ldg(RegIndex dst, RegIndex addr, std::int32_t offset,
                   CacheOp cache_op)
{
    auto &i = emit(Opcode::LDG);
    i.dst = dst;
    i.src[0] = addr;
    i.imm = offset;
    i.cacheOp = cache_op;
    touch(dst);
    touch(addr);
    return *this;
}

KernelBuilder &
KernelBuilder::stg(RegIndex addr, RegIndex value, std::int32_t offset)
{
    auto &i = emit(Opcode::STG);
    i.src[0] = addr;
    i.src[1] = value;
    i.imm = offset;
    touch(addr);
    touch(value);
    return *this;
}

KernelBuilder &
KernelBuilder::lds(RegIndex dst, RegIndex addr, std::int32_t offset)
{
    auto &i = emit(Opcode::LDS);
    i.dst = dst;
    i.src[0] = addr;
    i.imm = offset;
    touch(dst);
    touch(addr);
    return *this;
}

KernelBuilder &
KernelBuilder::sts(RegIndex addr, RegIndex value, std::int32_t offset)
{
    auto &i = emit(Opcode::STS);
    i.src[0] = addr;
    i.src[1] = value;
    i.imm = offset;
    touch(addr);
    touch(value);
    return *this;
}

KernelBuilder &
KernelBuilder::atomgAdd(RegIndex dst, RegIndex addr, RegIndex value,
                        std::int32_t offset)
{
    auto &i = emit(Opcode::ATOMG_ADD);
    i.dst = dst;
    i.src[0] = addr;
    i.src[1] = value;
    i.imm = offset;
    touch(dst);
    touch(addr);
    touch(value);
    return *this;
}

KernelBuilder &
KernelBuilder::bra(RegIndex pred, const std::string &target,
                   const std::string &join)
{
    const Pc pc = instrs_.size();
    auto &i = emit(Opcode::BRA);
    i.src[0] = pred;
    touch(pred);
    pending_.push_back({pc, target, join});
    return *this;
}

KernelBuilder &
KernelBuilder::jmp(const std::string &target)
{
    const Pc pc = instrs_.size();
    emit(Opcode::BRA); // src[0] stays noReg: unconditional
    pending_.push_back({pc, target, ""});
    return *this;
}

KernelBuilder &
KernelBuilder::bar()
{
    emit(Opcode::BAR);
    return *this;
}

KernelBuilder &
KernelBuilder::exit()
{
    emit(Opcode::EXIT);
    return *this;
}

KernelBuilder &
KernelBuilder::nop()
{
    emit(Opcode::NOP);
    return *this;
}

Kernel
KernelBuilder::build()
{
    VTSIM_ASSERT(!built_, "builder reused after build()");
    built_ = true;
    if (!nextLabels_.empty())
        VTSIM_FATAL("kernel '", name_, "': trailing label '",
                    nextLabels_.front(), "' attached to no instruction");

    for (const auto &pb : pending_) {
        auto it = labels_.find(pb.target);
        if (it == labels_.end())
            VTSIM_FATAL("kernel '", name_, "': undefined label '",
                        pb.target, "'");
        Instruction &inst = instrs_[pb.pc];
        inst.branchTarget = it->second;
        if (!pb.join.empty()) {
            auto jt = labels_.find(pb.join);
            if (jt == labels_.end())
                VTSIM_FATAL("kernel '", name_, "': undefined join label '",
                            pb.join, "'");
            inst.reconvergePc = jt->second;
        } else if (inst.branchTarget > pb.pc) {
            // Forward branch, if-then idiom: reconverge at the target.
            inst.reconvergePc = inst.branchTarget;
        } else {
            // Backward branch, loop idiom: reconverge at fall-through.
            inst.reconvergePc = pb.pc + 1;
        }
    }

    const std::uint32_t regs = std::max(minRegs_,
                                        std::max(maxRegTouched_, 1u));
    return Kernel(name_, std::move(instrs_), regs, sharedBytes_,
                  std::move(labelByPc_));
}

} // namespace vtsim
