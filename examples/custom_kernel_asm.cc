/**
 * @file
 * Writing your own VASM kernel: a dot-product with a grid-stride loop, a
 * shared-memory tree reduction and a global atomic — assembled from
 * text, inspected via the disassembler, and validated against a host
 * reference on both the baseline and the Virtual Thread machine.
 */

#include <cstdio>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "gpu/gpu.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"

namespace {

// Integer dot product: out += sum(a[i] * b[i]). Integer math keeps the
// result order-independent, so the atomic combine is exactly checkable.
const char *kDotSource = R"(
.kernel dot
.shared 512
    ldp r0, 0            # a
    ldp r1, 1            # b
    ldp r2, 2            # out
    ldp r3, 3            # n
    ldp r4, 4            # total threads
    s2r r5, ctaid.x
    s2r r6, ntid.x
    s2r r7, tid.x
    imad r8, r5, r6, r7  # i
    movi r9, 0           # acc
loop:
    isetp.ge r10, r8, r3
    bra r10, reduce_shared
    shl r11, r8, 2
    iadd r12, r11, r0
    ldg r13, [r12]
    iadd r14, r11, r1
    ldg r15, [r14]
    imad r9, r13, r15, r9
    iadd r8, r8, r4
    jmp loop
reduce_shared:
    shl r16, r7, 2
    sts [r16], r9
    bar
    shr r17, r6, 1       # s = ntid / 2
tree:
    isetp.ge r18, r7, r17
    bra r18, skip
    iadd r19, r7, r17
    shl r19, r19, 2
    lds r20, [r19]
    lds r21, [r16]
    iadd r21, r21, r20
    sts [r16], r21
skip:
    bar
    shr r17, r17, 1
    isetp.gt r22, r17, 0
    bra r22, tree
    isetp.ne r23, r7, 0
    bra r23, fin
    lds r24, [r16]
    atomg.add r25, [r2], r24
fin:
    exit
)";

} // namespace

int
main()
try {
    using namespace vtsim;

    const Kernel kernel = assemble(kDotSource);
    std::printf("assembled '%s': %u instructions, %u regs/thread, %u B "
                "shared\n\n", kernel.name().c_str(), kernel.size(),
                kernel.regsPerThread(), kernel.sharedBytesPerCta());
    std::printf("disassembly round trip:\n%s\n",
                disassemble(kernel).c_str());

    const std::uint32_t n = 1 << 16;
    Rng rng(2026);
    std::vector<std::uint32_t> a(n), b(n);
    std::uint32_t expected = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        a[i] = rng.nextBelow(100);
        b[i] = rng.nextBelow(100);
        expected += a[i] * b[i];
    }

    for (bool vt_on : {false, true}) {
        GpuConfig cfg = GpuConfig::fermiLike();
        cfg.vtEnabled = vt_on;
        Gpu gpu(cfg);
        const Addr a_addr = gpu.memory().alloc(n * 4);
        const Addr b_addr = gpu.memory().alloc(n * 4);
        const Addr out_addr = gpu.memory().alloc(4);
        gpu.memory().writeWords(a_addr, a);
        gpu.memory().writeWords(b_addr, b);

        LaunchParams lp;
        lp.cta = Dim3(128);
        const std::uint32_t total_threads = n / 4;
        lp.grid = Dim3(total_threads / 128);
        lp.params = {std::uint32_t(a_addr), std::uint32_t(b_addr),
                     std::uint32_t(out_addr), n, total_threads};
        const KernelStats stats = gpu.launch(kernel, lp);

        const std::uint32_t got = gpu.memory().read32(out_addr);
        if (got != expected)
            VTSIM_FATAL("dot product wrong: ", got, " != ", expected);
        std::printf("%-14s %8llu cycles, IPC %6.3f, result %u (ok)\n",
                    vt_on ? "virtual-thread" : "baseline",
                    (unsigned long long)stats.cycles, stats.ipc, got);
    }
    return 0;
} catch (const vtsim::FatalError &e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
}
