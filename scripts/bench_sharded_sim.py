#!/usr/bin/env python3
"""Measure sharded-simulation scaling and emit BENCH_sharded_sim.json.

Runs a figure binary at --sim-threads 1, 2 and 4 with --jobs 1, so the
only parallelism in play is intra-run sharding (docs/ARCHITECTURE.md
"Sharded simulation"). Two things come out of that:

 1. A regression gate: the per-run statistics (cycles, every counter,
    the interval series) must be identical across thread counts —
    sharding is bit-identical by construction, and a mismatch here
    catches a determinism break at the whole-figure level.
 2. A scaling record: BENCH_sharded_sim.json is the sim-threads-1
    stats document extended with a "sharded_sim" section holding
    Kcyc/s and speedup per thread count, plus the host's hardware
    thread count so a flat curve on a starved runner is interpretable.

The output validates against ci/stats_schema.json (the script checks).

Standard library only. Usage:
    bench_sharded_sim.py [--binary PATH] [--out PATH] [--threads 1,2,4]
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "scripts"))
import validate_stats_json  # noqa: E402


def run_point(binary, sim_threads, stats_path):
    cmd = [
        str(binary),
        "--jobs", "1",
        "--sim-threads", str(sim_threads),
        "--stats-json", str(stats_path),
        "--stats-interval", "5000",
    ]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return json.loads(stats_path.read_text())


def run_signature(run):
    """Everything about a run that must not depend on the thread count
    (host-timing fields excluded)."""
    return {
        key: value
        for key, value in run.items()
        if key not in ("wall_seconds", "kcycles_per_sec", "mips")
    }


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--binary", default=str(REPO / "build/bench/fig3_vt_speedup"))
    parser.add_argument("--out", default="BENCH_sharded_sim.json")
    parser.add_argument("--threads", default="1,2,4")
    args = parser.parse_args(argv[1:])

    thread_counts = [int(t) for t in args.threads.split(",")]
    documents = {}
    with tempfile.TemporaryDirectory() as tmp:
        for n in thread_counts:
            stats_path = pathlib.Path(tmp) / f"stats_{n}.json"
            documents[n] = run_point(args.binary, n, stats_path)
            print(f"[bench-sharded-sim] sim-threads {n}: "
                  f"{len(documents[n]['runs'])} runs")

    base = documents[thread_counts[0]]
    baseline_sigs = [run_signature(r) for r in base["runs"]]
    for n in thread_counts[1:]:
        sigs = [run_signature(r) for r in documents[n]["runs"]]
        if sigs != baseline_sigs:
            print(f"[bench-sharded-sim] FAIL: sim-threads {n} changed "
                  "the statistics — sharding is supposed to be "
                  "bit-identical", file=sys.stderr)
            return 1

    points = []
    for n in thread_counts:
        runs = documents[n]["runs"]
        wall = sum(r["wall_seconds"] for r in runs)
        cycles = sum(r["stats"]["cycles"] for r in runs)
        points.append({
            "sim_threads": n,
            "wall_seconds": round(wall, 6),
            "kcycles_per_sec": round(cycles / wall / 1e3, 3)
            if wall > 0 else 0.0,
        })
    for p in points:
        p["speedup"] = round(
            points[0]["wall_seconds"] / p["wall_seconds"], 3) \
            if p["wall_seconds"] > 0 else 0.0

    base["sharded_sim"] = {
        "hardware_threads": os.cpu_count() or 1,
        "points": points,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(base, indent=2) + "\n")

    for p in points:
        print(f"[bench-sharded-sim] sim-threads {p['sim_threads']}: "
              f"wall {p['wall_seconds']:.3f}s, "
              f"{p['kcycles_per_sec']:.1f} Kcyc/s, "
              f"speedup {p['speedup']:.2f}x")

    # The document must still be a valid vtsim-stats-v1 batch.
    return validate_stats_json.main(
        ["validate_stats_json.py", str(out_path)])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
