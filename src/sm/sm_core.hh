/**
 * @file
 * One streaming multiprocessor: warp contexts grouped into virtual CTAs,
 * warp schedulers, execution timing, the LDST unit, barriers, and the
 * Virtual Thread manager that decides which CTAs may issue.
 */

#ifndef VTSIM_SM_SM_CORE_HH
#define VTSIM_SM_SM_CORE_HH

#include <array>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "config/gpu_config.hh"
#include "core/virtual_thread.hh"
#include "cta/cta_dispatcher.hh"
#include "cta/cta_throttler.hh"
#include "func/exec_context.hh"
#include "isa/kernel.hh"
#include "mem/shared_memory.hh"
#include "sm/barrier_manager.hh"
#include "sm/ldst_unit.hh"
#include "sm/warp_context.hh"
#include "sm/warp_scheduler.hh"
#include "stats/stats.hh"

namespace vtsim::telemetry {
class StatRegistry;
class TraceJsonWriter;
}

namespace vtsim {

class GlobalMemory;
class Interconnect;

/** Why a scheduler slot issued nothing in a cycle (FIG-8 breakdown). */
struct StallBreakdown
{
    std::uint64_t issued = 0;       ///< Scheduler-cycles that issued.
    std::uint64_t memStall = 0;     ///< Blocked on off-chip memory.
    std::uint64_t shortStall = 0;   ///< Blocked on short dependences/ports.
    std::uint64_t barrierStall = 0; ///< Everyone parked at a barrier.
    std::uint64_t swapStall = 0;    ///< Only swap-frozen CTAs resident.
    std::uint64_t idle = 0;         ///< No warps at all.
};

class SmCore : public SimComponent, public LdstClient, public VtCtaQuery
{
  public:
    SmCore(SmId id, const GpuConfig &config, Interconnect &noc);

    /**
     * Start binding the grids of one (possibly concurrent) launch: the
     * SM must be empty; previous bindings are dropped. Follow with one
     * bindGrid() per co-resident grid.
     */
    void beginGridBinding(GlobalMemory &gmem);

    /** Bind grid @p grid's kernel and launch shape and configure its
     *  CTA footprint in the VT manager. */
    void bindGrid(GridId grid, const Kernel &kernel,
                  const LaunchParams &launch);

    /** Bind the single kernel this SM will run (solo launch). */
    void launchKernel(const Kernel &kernel, const LaunchParams &launch,
                      GlobalMemory &gmem)
    {
        beginGridBinding(gmem);
        bindGrid(0, kernel, launch);
    }

    /**
     * Re-attach one grid's kernel/launch/memory bindings after a
     * checkpoint restore: unlike bindGrid() this neither requires an
     * empty SM nor reconfigures the VT manager — the restored state
     * already carries both.
     */
    void rebindGrid(GridId grid, const Kernel &kernel,
                    const LaunchParams &launch, GlobalMemory &gmem);

    /** Solo-restore shorthand for rebindGrid(0, ...). */
    void rebindKernel(const Kernel &kernel, const LaunchParams &launch,
                      GlobalMemory &gmem)
    {
        rebindGrid(0, kernel, launch, gmem);
    }

    /** True when another CTA of @p grid can be admitted right now. */
    bool canAdmitCta(GridId grid = 0) const;

    /** Admit one CTA of @p grid from its dispatcher. */
    void admitCta(const CtaAssignment &assignment, Cycle now,
                  GridId grid = 0);

    /**
     * Preempt-policy hook: force-swap-out up to @p max_ctas Active CTAs
     * of @p grid (lowest slot first), freeing their scheduling slots
     * for a higher-priority grid. Returns how many were swapped.
     * Requires the VT machine (vtEnabled).
     */
    std::uint32_t forcePreemptGrid(GridId grid, std::uint32_t max_ctas,
                                   Cycle now);

    /** A CTA of @p grid is resident here but not Active (swap-frozen or
     *  parked Inactive) — the preempt policy's signal that vacating an
     *  active slot on this SM would let @p grid progress. */
    bool hasInactiveCta(GridId grid) const;

    /** Block/unblock activations of @p grid (preempt policy); forwards
     *  to the VT manager after settling lazy-tick state. */
    void setGridActivationBlocked(GridId grid, bool blocked)
    {
        onExternalEvent();
        vt_.setGridActivationBlocked(grid, blocked);
    }

    /** Advance one cycle. */
    void tick(Cycle now) override;

    /**
     * Earliest cycle >= @p now at which tick() might do real work given
     * no admission and no NoC delivery happens first: a warp becoming
     * ready or issuable, a writeback or L1-hit maturing, a VT transition
     * or swap-threshold crossing, a throttle-epoch boundary, or the
     * shared-memory port freeing. neverCycle when the SM is fully
     * event-blocked (e.g. every live warp waits on off-chip memory).
     * Non-const: flushes deferred idle-tick accounting first.
     */
    Cycle nextEventCycle(Cycle now) override;

    /** Cache-free recomputation for the horizon oracle: same answer a
     *  fresh SM in this state would give, bypassing the lazy-window
     *  horizon cached by tick(). */
    Cycle nextEventCycleFresh(Cycle now) override;

    /**
     * Bring all per-cycle accounting up to date through cycle
     * @p cycle - 1, exactly as empty tick() calls would have: per-cycle
     * stat samples, stall-bubble classification, VT stall streaks and
     * throttler-epoch observations. Only valid when
     * nextEventCycle() >= @p cycle. Cycle @p cycle itself is left for
     * the next real tick.
     */
    void settleTo(Cycle cycle) override;

    // SimComponent lifecycle: return to the just-constructed state /
    // checkpoint the full SM (CTAs, warps, ready sets, LDST, VT,
    // barriers, schedulers, stats).
    void reset() override;
    void save(Serializer &ser) const override;
    void restore(Deserializer &des) override;

    /**
     * Apply deferred accounting of lazily skipped ticks (see tick()).
     * Called automatically before any state change or query that could
     * observe the deferral; public so Gpu can settle accounts before
     * reading final statistics.
     */
    void flushFastForward();

    /** No resident CTAs and no memory traffic in flight. */
    bool idle() const;

    /** Invalidate L1 (kernel boundary). */
    void flushCaches()
    {
        onExternalEvent();
        ldst_.flushCaches();
    }

    SmId id() const { return id_; }
    LdstUnit &ldst() { return ldst_; }
    VirtualThreadManager &vt() { return vt_; }
    const VirtualThreadManager &vt() const { return vt_; }
    /** Null unless throttleEnabled. */
    CtaThrottler *throttler() { return throttler_.get(); }

    std::uint64_t instructionsIssued() const
    { return instructionsIssued_.value(); }
    std::uint64_t threadInstructions() const
    { return threadInstructions_.value(); }
    std::uint64_t ctasCompleted() const { return ctasCompleted_.value(); }
    /** CTAs of one grid retired on this SM (concurrent launches; the
     *  preempt policy's online progress estimate reads this). */
    std::uint64_t gridCtasCompleted(GridId g) const
    { return gridCtasCompleted_.at(g).value(); }
    const StallBreakdown &stallBreakdown() const { return stalls_; }
    std::uint32_t maxSimtDepthSeen() const { return maxSimtDepth_; }
    StatGroup &stats() { return stats_; }

    /** Flatten every stat group this SM owns (core, VT, LDST, L1,
     *  shared memory, throttler) into @p reg and tag the probes that
     *  feed KernelStats. Call once, after construction. */
    void registerTelemetry(telemetry::StatRegistry &reg);

    /** Route this SM's trace events (VT residency, barrier releases)
     *  to a per-Gpu Perfetto writer; null disables. */
    void setTraceJson(telemetry::TraceJsonWriter *writer);

    // --- Memory-trace record/replay (mem/mtrace.hh) -------------------------

    /** Record mode: stream every coalesced global transaction and
     *  barrier arrival of this SM to @p writer; null disables. */
    void setMtrace(MtraceWriter *writer);

    /**
     * Enter replay mode: instead of executing warps, this SM injects
     * @p slice — the trace's access records for this SM, cycles
     * relative to the launch marker — into its LDST unit on schedule.
     * @p base is the simulation cycle that corresponds to trace
     * cycle 0. The SM admits no CTAs in this mode and is idle once the
     * cursor and the memory system drain.
     */
    void beginReplay(const std::vector<MtraceAccess> *slice, Cycle base);

    /** Re-attach the (unserialized) trace slice after a checkpoint
     *  restore; the restored cursor and base pick up where the
     *  recording left off. */
    void resumeReplay(const std::vector<MtraceAccess> *slice);

    bool replaying() const { return replayMode_; }

    // --- Sharded-epoch support (docs/ARCHITECTURE.md "Sharded
    // simulation") -----------------------------------------------------------

    /**
     * One global-memory instruction issued while the epoch log was
     * armed. The per-SM log is in issue order; concatenating the SM
     * logs in SM order and stable-sorting by cycle reproduces the exact
     * global-memory op order of the sequential run, which the barrier
     * replay applies against settled memory.
     */
    struct EpochMemOp
    {
        Cycle cycle;
        VirtualCtaId slot;
        std::uint32_t warpInCta;
        Opcode op;
        RegIndex dst; ///< noReg when the op has no destination.
        std::vector<LaneAccess> accesses;
    };

    /** Arm the epoch log: every global LDG/STG/ATOMG_ADD issued from now
     *  on is recorded (the functional write side is deferred by
     *  GlobalMemory::setDeferWrites, driven by the Gpu epoch driver). */
    void beginEpochMemLog()
    {
        epochMemLog_.clear();
        epochLogging_ = true;
    }
    void endEpochMemLog() { epochLogging_ = false; }
    const std::vector<EpochMemOp> &epochMemLog() const
    { return epochMemLog_; }

    /** Overwrite a lane's destination register after the barrier replay
     *  observed a different value than the deferred-write functional
     *  pass did. Sound mid-epoch: the register is scoreboard-held until
     *  the load completes, which is past the epoch end. */
    void patchLaneReg(VirtualCtaId slot, std::uint32_t warp_in_cta,
                      std::uint32_t lane, RegIndex dst, std::uint32_t value)
    {
        ctas_[slot].func.writeReg(warp_in_cta * warpSize + lane, dst,
                                  value);
    }

    /** Debug-only thread-confinement check: during a sharded epoch only
     *  the owning shard worker may tick this SM. Default-constructed id
     *  disables the check (sequential mode). */
    void setEpochOwner(std::thread::id owner) { epochOwner_ = owner; }

    // --- LdstClient ---------------------------------------------------------
    void loadComplete(VirtualCtaId vcta, std::uint32_t warp_in_cta,
                      RegIndex dst) override;
    void offChipIssued(VirtualCtaId vcta,
                       std::uint32_t warp_in_cta) override;
    void offChipReturned(VirtualCtaId vcta,
                         std::uint32_t warp_in_cta) override;
    void responseArriving(Cycle now) override;

    // --- VtCtaQuery ---------------------------------------------------------
    bool ctaFullyStalled(VirtualCtaId id) const override;
    bool ctaAnyWarpLongStalled(VirtualCtaId id) const override;
    std::uint32_t ctaPendingOffChip(VirtualCtaId id) const override;
    void onCtaIssuableChanged(VirtualCtaId id, bool issuable) override;

  private:
    /** One resident (virtual) CTA: functional state + warp contexts. */
    struct VirtualCta
    {
        bool valid = false;
        /** Owning grid of a concurrent launch (solo CTAs: grid 0). */
        GridId grid = 0;
        std::uint64_t age = 0;
        CtaFuncState func;
        std::vector<WarpContext> warps;
        /** Warp indices per scheduler slot — the (age * warps + w) %
         *  schedulers interleaving, precomputed once at admission so the
         *  per-tick issue sweep visits each warp exactly once. */
        std::vector<std::vector<std::uint32_t>> schedWarps;
        /** Live warps per scheduler slot: lets the sweep classify frozen
         *  or fully retired CTAs without visiting their warps. */
        std::vector<std::uint32_t> aliveBySched;
        /** Live warps parked at the barrier, per scheduler slot. */
        std::vector<std::uint32_t> barrierBySched;
        /** Live warps with >= 1 off-chip transaction outstanding, per
         *  scheduler slot: with barrierBySched, the counters the bubble
         *  classifier reads instead of scanning warps. */
        std::vector<std::uint32_t> offchipBySched;
        std::uint32_t warpsAlive = 0;
        /** Sum of the warps' pendingOffChip counts, so the VT swap-in
         *  readiness test does not rescan warps. */
        std::uint32_t pendingOffChipTotal = 0;
    };

    /** Per-cycle structural budgets, reset each tick. */
    struct IssueBudgets
    {
        std::uint32_t alu = 0;
        std::uint32_t sfu = 0;
        std::uint32_t mem = 0;
    };

    /** Attribution of a scheduler-cycle that issued nothing. */
    enum class BubbleKind : std::uint8_t
    {
        Idle,
        Mem,
        Barrier,
        Swap,
        Short,
    };

    /**
     * Warp-local issuability. With @p ignore_structural the per-SM port
     * constraints (LDST queue space, shared-mem port) are ignored: the VT
     * swap trigger must not mistake structural back-pressure — which
     * clears in a few cycles — for a long-latency stall.
     * Inline (below): called for every warp visit of the issue sweep.
     */
    bool warpCanIssueLocal(const VirtualCta &cta, const WarpContext &warp,
                           Cycle now,
                           bool ignore_structural = false) const;
    bool budgetAllows(const Instruction &inst,
                      const IssueBudgets &budgets) const;
    void chargeBudget(const Instruction &inst, IssueBudgets &budgets) const;
    void issueWarp(VirtualCta &cta, VirtualCtaId slot, WarpContext &warp,
                   const Instruction &inst, Cycle now);
    void maybeReleaseBarrier(VirtualCtaId slot, Cycle now);
    void finishCta(VirtualCtaId slot, Cycle now);
    BubbleKind classifyIssueBubble(std::uint32_t scheduler,
                                   Cycle now) const;
    /** classifyIssueBubble over the ready set + cached counters instead
     *  of a full warp scan: identical result in O(ready warps). */
    BubbleKind classifyIssueBubbleFast(std::uint32_t scheduler,
                                       Cycle now) const;
    /** The nextEventCycle() min-reduction itself, over settled state.
     *  Non-const only because LdstUnit::nextEventCycle is (it overrides
     *  the non-const SimComponent signature); it mutates nothing. */
    Cycle computeNextEvent(Cycle now);
    void chargeBubble(BubbleKind kind, std::uint64_t n);
    /** The per-cycle bookkeeping of @p n eventless ticks at @p now. */
    void accountIdleCycles(Cycle now, std::uint64_t n);
    /** State changed from outside tick(): settle and drop the cached
     *  idle horizon. */
    void onExternalEvent();

    // --- Incremental ready sets --------------------------------------------
    /** Packed ready-list key; ascending order == the full sweep's
     *  (slot, warp) visit order. Warp indices fit 8 bits by the same
     *  argument as the schedulers' age * 256 + w candidate keys. */
    static std::uint64_t readyKey(VirtualCtaId slot, std::uint32_t w)
    { return (std::uint64_t(slot) << 8) | w; }

    /** The warp-local, time-invariant part of issuability: alive, not at
     *  the barrier, and no scoreboard hazard at its current PC. Combined
     *  with the CTA's Active state this is the ready-set membership
     *  rule; readyAt and the structural ports stay sweep-time checks. */
    bool warpReadyMember(const VirtualCta &cta,
                         const WarpContext &warp) const
    {
        if (warp.done() || warp.atBarrier())
            return false;
        // With nothing in flight there is no hazard and the EXIT drain
        // rule is vacuous: skip the decode entirely (the common case on
        // the refresh-after-writeback path).
        if (warp.scoreboard().pendingCount() == 0)
            return true;
        const Instruction &inst = kernelOf(cta)->at(warp.stack().pc());
        if (inst.isExit())
            return false;
        return !warp.scoreboard().hasHazard(inst);
    }

    /** Kernel / launch shape of the grid a CTA belongs to. */
    const Kernel *kernelOf(const VirtualCta &cta) const
    { return grids_[cta.grid].kernel; }
    const LaunchParams *launchOf(const VirtualCta &cta) const
    { return grids_[cta.grid].launch; }

    /** Re-derive warp (slot, w)'s ready-set membership and insert or
     *  remove its key accordingly. Idempotent; called after every state
     *  transition that can change membership. */
    void refreshWarp(VirtualCtaId slot, std::uint32_t w);

    /** Retire warp @p w of issuable CTA @p slot: settle the alive /
     *  barrier / off-chip counters it contributed to. */
    void retireWarpCounters(VirtualCta &cta, const WarpContext &warp);

    /** Cross-check ready sets and counters against a full scan. */
    void verifyReadySets() const;

    bool oracleEnabled() const
    {
#ifndef NDEBUG
        return true;
#else
        return config_.readySetOracle;
#endif
    }

    /** Cross-check every micro-op execution against the legacy
     *  interpreter (always in assert-enabled builds; release builds
     *  opt in via GpuConfig::microOracle). */
    bool microOracleEnabled() const
    {
#ifndef NDEBUG
        return true;
#else
        return config_.microOracle;
#endif
    }

    /** One co-resident grid's bindings. Pointers owned by the Gpu's
     *  launch context; stable for the run's duration. */
    struct GridBinding
    {
        const Kernel *kernel = nullptr;
        const LaunchParams *launch = nullptr;
    };

    SmId id_;
    const GpuConfig &config_;
    /** Grids of the current launch, indexed by GridId (solo: size 1). */
    std::vector<GridBinding> grids_;
    GlobalMemory *gmem_ = nullptr;

    LdstUnit ldst_;
    SharedMemoryModel shmem_;
    BarrierManager barriers_;
    VirtualThreadManager vt_;
    std::unique_ptr<CtaThrottler> throttler_;

    std::vector<VirtualCta> ctas_;
    std::vector<VirtualCtaId> freeSlots_;
    std::uint32_t residentCount_ = 0;
    std::uint64_t nextCtaAge_ = 0;

    std::vector<std::unique_ptr<WarpScheduler>> schedulers_;

    // Issue-sweep scratch, reused across ticks to avoid reallocation.
    std::vector<WarpCandidate> cands_;
    std::vector<std::pair<VirtualCtaId, std::uint32_t>> refs_;
    /** Candidates' decoded instructions, so the budget charge and the
     *  issue itself reuse the sweep's kernel_->at(pc) lookup. */
    std::vector<const Instruction *> decodes_;
    /** Scratch for barrier releases (avoids a vector per release). */
    std::vector<std::uint32_t> barrierScratch_;

    /**
     * Per-scheduler ready lists: packed (slot, warp) keys, ascending.
     * A warp is listed iff its CTA is valid and Active and
     * warpReadyMember() holds — maintained incrementally at every
     * membership-changing transition (issue, writeback, load return,
     * barrier arrive/release, warp retirement, VT activation/swap) and
     * consumed by the issue sweep, the bubble classifier and
     * nextEventCycle's warp term. See ARCHITECTURE.md "Issue-path data
     * structures" for the invariants.
     */
    std::vector<std::vector<std::uint64_t>> ready_;
    // Per-scheduler aggregates over all valid CTAs (schedAlive_,
    // schedFrozenAlive_) and over Active CTAs only (the issuable pair) —
    // exactly what the bubble classifier needs.
    std::vector<std::uint32_t> schedAlive_;
    std::vector<std::uint32_t> schedFrozenAlive_;
    std::vector<std::uint32_t> schedIssuableBarrier_;
    std::vector<std::uint32_t> schedIssuableOffchip_;

    struct Writeback
    {
        Cycle at;
        VirtualCtaId vcta;
        std::uint32_t warpInCta;
        RegIndex reg;
        /** Total order (see LdstUnit::HitCompletion): same-cycle ties
         *  must pop identically in a checkpoint-restored run. */
        bool operator>(const Writeback &o) const
        {
            if (at != o.at)
                return at > o.at;
            if (vcta != o.vcta)
                return vcta > o.vcta;
            if (warpInCta != o.warpInCta)
                return warpInCta > o.warpInCta;
            return reg > o.reg;
        }
    };
    std::priority_queue<Writeback, std::vector<Writeback>,
                        std::greater<>> wbQueue_;

    Cycle now_ = 0;
    std::uint32_t maxSimtDepth_ = 0;

    // Lazy-tick state: while now < ffHorizon_ and no external event
    // arrives, tick() only counts the cycle; the bookkeeping is applied
    // in bulk when the window closes.
    Cycle ffHorizon_ = 0;
    Cycle ffWindowStart_ = 0;
    std::uint64_t ffPending_ = 0;

    StatGroup stats_;
    Counter instructionsIssued_;
    Counter threadInstructions_;
    Counter ctasCompleted_;
    /** Per-grid splits of the three counters above (concurrent
     *  launches); the aggregates keep counting everything, so solo
     *  stats are untouched. */
    std::array<Counter, maxGrids> gridInstructions_;
    std::array<Counter, maxGrids> gridThreadInstructions_;
    std::array<Counter, maxGrids> gridCtasCompleted_;
    StallBreakdown stalls_;
    telemetry::TraceJsonWriter *traceJson_ = nullptr;

    bool epochLogging_ = false;
    std::vector<EpochMemOp> epochMemLog_;
    std::thread::id epochOwner_{};

    /** Record-mode sink (not machine state, never checkpointed). */
    MtraceWriter *mtrace_ = nullptr;
    /** Replay mode: drive the LDST unit from a trace slice instead of
     *  executing warps. The cursor and base are machine state (saved in
     *  "smcr"); the slice pointer is rebound on restore. */
    bool replayMode_ = false;
    const std::vector<MtraceAccess> *replay_ = nullptr;
    std::uint64_t replayCursor_ = 0;
    Cycle replayBase_ = 0;

    /** Reusable ExecResult the micro-op fast path fills per issue, so
     *  the hot loop never allocates access vectors. Plain scratch: not
     *  machine state, never checkpointed. */
    ExecResult execScratch_;
};

inline bool
SmCore::warpCanIssueLocal(const VirtualCta &cta, const WarpContext &warp,
                          Cycle now, bool ignore_structural) const
{
    if (warp.done() || warp.atBarrier() || warp.readyAt() > now)
        return false;
    const Instruction &inst = kernelOf(cta)->at(warp.stack().pc());
    if (inst.isExit() && warp.scoreboard().pendingCount() > 0)
        return false; // Retire only with all writes landed.
    if (warp.scoreboard().hasHazard(inst))
        return false;
    if (!ignore_structural) {
        if (inst.isGlobalMem() && !ldst_.canAccept())
            return false;
        if (inst.isSharedMem() && !shmem_.canAccept(now))
            return false;
    }
    return true;
}

} // namespace vtsim

#endif // VTSIM_SM_SM_CORE_HH
