/**
 * @file
 * Streaming benchmarks: vecadd and saxpy. Small CTAs with low register
 * pressure — the canonical scheduling-limited (CTA-slot-bound),
 * memory-latency-bound workloads the Virtual Thread paper targets.
 */

#include <bit>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

/** c[i] = a[i] + b[i] over n floats; 64-thread CTAs. */
class VecAdd : public Workload
{
  public:
    explicit VecAdd(std::uint32_t scale)
        : n_(scale == 0 ? 512 : 49152 * scale)
    {}

    std::string name() const override { return "vecadd"; }

    std::string
    description() const override
    {
        return "streaming float vector add, 64-thread CTAs";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        return assemble(R"(
.kernel vecadd
    ldp r0, 0            # a
    ldp r1, 1            # b
    ldp r2, 2            # c
    ldp r3, 3            # n
    s2r r4, ctaid.x
    s2r r5, ntid.x
    s2r r6, tid.x
    imad r7, r4, r5, r6  # gid
    isetp.ge r8, r7, r3
    bra r8, done
    shl r9, r7, 2
    iadd r10, r0, r9
    ldg r11, [r10]
    iadd r12, r1, r9
    ldg r13, [r12]
    fadd r14, r11, r13
    iadd r15, r2, r9
    stg [r15], r14
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd01);
        std::vector<float> a(n_), b(n_);
        for (std::uint32_t i = 0; i < n_; ++i) {
            a[i] = rng.nextFloat();
            b[i] = rng.nextFloat();
        }
        aAddr_ = gmem.alloc(n_ * 4);
        bAddr_ = gmem.alloc(n_ * 4);
        cAddr_ = gmem.alloc(n_ * 4);
        gmem.writeFloats(aAddr_, a);
        gmem.writeFloats(bAddr_, b);
        expected_.resize(n_);
        for (std::uint32_t i = 0; i < n_; ++i)
            expected_[i] = a[i] + b[i];

        LaunchParams lp;
        lp.cta = Dim3(64);
        lp.grid = Dim3(ceilDiv(n_, 64));
        lp.params = {std::uint32_t(aAddr_), std::uint32_t(bAddr_),
                     std::uint32_t(cAddr_), n_};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readFloats(cAddr_, n_);
        for (std::uint32_t i = 0; i < n_; ++i)
            if (got[i] != expected_[i])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    Addr aAddr_ = 0, bAddr_ = 0, cAddr_ = 0;
    std::vector<float> expected_;
};

/** y[i] = alpha * x[i] + y[i], grid-stride loop; 128-thread CTAs. */
class Saxpy : public Workload
{
  public:
    explicit Saxpy(std::uint32_t scale)
        : n_(scale == 0 ? 1024 : 98304 * scale)
    {}

    std::string name() const override { return "saxpy"; }

    std::string
    description() const override
    {
        return "grid-stride saxpy, 128-thread CTAs";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        return assemble(R"(
.kernel saxpy
    ldp r0, 0            # x
    ldp r1, 1            # y
    ldp r2, 2            # n
    ldp r3, 3            # alpha bits
    ldp r4, 4            # total threads
    s2r r5, ctaid.x
    s2r r6, ntid.x
    s2r r7, tid.x
    imad r8, r5, r6, r7  # i
loop:
    isetp.ge r9, r8, r2
    bra r9, done
    shl r10, r8, 2
    iadd r11, r0, r10
    ldg r12, [r11]
    iadd r13, r1, r10
    ldg r14, [r13]
    ffma r15, r3, r12, r14
    stg [r13], r15
    iadd r8, r8, r4
    jmp loop
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd02);
        std::vector<float> x(n_), y(n_);
        for (std::uint32_t i = 0; i < n_; ++i) {
            x[i] = rng.nextFloat();
            y[i] = rng.nextFloat();
        }
        xAddr_ = gmem.alloc(n_ * 4);
        yAddr_ = gmem.alloc(n_ * 4);
        gmem.writeFloats(xAddr_, x);
        gmem.writeFloats(yAddr_, y);

        const float alpha = 2.5f;
        expected_.resize(n_);
        for (std::uint32_t i = 0; i < n_; ++i)
            expected_[i] = alpha * x[i] + y[i];

        // Oversubscribe ~2 iterations per thread.
        const std::uint32_t total_threads = roundUp(n_ / 2, 128);
        LaunchParams lp;
        lp.cta = Dim3(128);
        lp.grid = Dim3(total_threads / 128);
        lp.params = {std::uint32_t(xAddr_), std::uint32_t(yAddr_), n_,
                     std::bit_cast<std::uint32_t>(alpha), total_threads};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readFloats(yAddr_, n_);
        for (std::uint32_t i = 0; i < n_; ++i)
            if (got[i] != expected_[i])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    Addr xAddr_ = 0, yAddr_ = 0;
    std::vector<float> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeVecAdd(std::uint32_t scale)
{
    return std::make_unique<VecAdd>(scale);
}

std::unique_ptr<Workload>
makeSaxpy(std::uint32_t scale)
{
    return std::make_unique<Saxpy>(scale);
}

} // namespace vtsim
