file(REMOVE_RECURSE
  "CMakeFiles/custom_kernel_asm.dir/custom_kernel_asm.cc.o"
  "CMakeFiles/custom_kernel_asm.dir/custom_kernel_asm.cc.o.d"
  "custom_kernel_asm"
  "custom_kernel_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kernel_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
