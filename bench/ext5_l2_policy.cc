/**
 * @file
 * EXT-5 (extension study): L2 write policy. The Fermi L2 is write-back;
 * the simulator's default is write-through/no-allocate. This study
 * checks that the Virtual Thread conclusion is insensitive to that
 * modelling choice — VT's gain should be essentially unchanged under a
 * write-back L2.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("EXT-5", "VT speedup under both L2 write policies");
    std::printf("%-14s %14s %14s\n", "benchmark", "write-through",
                "write-back");
    const char *subset[] = {"vecadd", "saxpy", "reduce", "stencil",
                            "histogram", "needle", "mummer"};
    for (const char *name : subset) {
        std::printf("%-14s", name);
        for (bool wb : {false, true}) {
            GpuConfig base = GpuConfig::fermiLike();
            base.l2WriteBack = wb;
            GpuConfig vt = base;
            vt.vtEnabled = true;
            const RunResult b = runWorkload(name, base, benchScale);
            const RunResult v = runWorkload(name, vt, benchScale);
            std::printf("        %5.2fx ",
                        double(b.stats.cycles) / v.stats.cycles);
        }
        std::printf("\n");
    }
    std::printf("(each column's baseline uses the same L2 policy as its "
                "VT machine)\n");
    return 0;
}
