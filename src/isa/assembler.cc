#include "isa/assembler.hh"

#include <cctype>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "isa/kernel_builder.hh"

namespace vtsim {

namespace {

/** One parsed operand: register, immediate, memory ref, or symbol. */
struct Operand
{
    enum class Kind { Reg, Imm, Mem, Symbol } kind;
    RegIndex reg = noReg;       ///< Reg / Mem base register.
    std::int32_t imm = 0;       ///< Imm value / Mem offset.
    std::string symbol;         ///< Label or keyword argument.
};

struct ParseError
{
    std::string message;
};

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::optional<RegIndex>
parseReg(const std::string &tok)
{
    if (tok.size() < 2 || tok[0] != 'r')
        return std::nullopt;
    for (std::size_t i = 1; i < tok.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return std::nullopt;
    const long v = std::stol(tok.substr(1));
    if (v < 0 || v >= 0xffff)
        return std::nullopt;
    return static_cast<RegIndex>(v);
}

std::optional<std::int32_t>
parseImm(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    std::size_t i = (tok[0] == '-' || tok[0] == '+') ? 1 : 0;
    if (i == tok.size())
        return std::nullopt;
    int base = 10;
    if (tok.size() > i + 2 && tok[i] == '0' &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
        base = 16;
        i += 2;
    }
    for (; i < tok.size(); ++i) {
        const auto c = static_cast<unsigned char>(tok[i]);
        if (base == 16 ? !std::isxdigit(c) : !std::isdigit(c))
            return std::nullopt;
    }
    try {
        return static_cast<std::int32_t>(std::stoll(tok, nullptr, base));
    } catch (...) {
        return std::nullopt;
    }
}

Operand
parseOperand(const std::string &raw)
{
    const std::string tok = trim(raw);
    if (tok.empty())
        throw ParseError{"empty operand"};

    if (tok.front() == '[') {
        if (tok.back() != ']')
            throw ParseError{"unterminated memory operand '" + tok + "'"};
        std::string inner = trim(tok.substr(1, tok.size() - 2));
        std::int32_t sign = 1;
        std::string base = inner, off;
        const std::size_t plus = inner.find_first_of("+-", 1);
        if (plus != std::string::npos) {
            base = trim(inner.substr(0, plus));
            off = trim(inner.substr(plus + 1));
            sign = inner[plus] == '-' ? -1 : 1;
        }
        const auto reg = parseReg(base);
        if (!reg)
            throw ParseError{"memory operand base must be a register: '" +
                             inner + "'"};
        Operand op;
        op.kind = Operand::Kind::Mem;
        op.reg = *reg;
        if (!off.empty()) {
            const auto imm = parseImm(off);
            if (!imm)
                throw ParseError{"bad memory offset '" + off + "'"};
            op.imm = sign * *imm;
        }
        return op;
    }

    if (const auto reg = parseReg(tok)) {
        Operand op;
        op.kind = Operand::Kind::Reg;
        op.reg = *reg;
        return op;
    }
    if (const auto imm = parseImm(tok)) {
        Operand op;
        op.kind = Operand::Kind::Imm;
        op.imm = *imm;
        return op;
    }
    Operand op;
    op.kind = Operand::Kind::Symbol;
    op.symbol = tok;
    return op;
}

std::vector<Operand>
parseOperands(const std::string &rest)
{
    std::vector<Operand> ops;
    std::string cur;
    int bracket = 0;
    auto flush = [&]() {
        if (!trim(cur).empty())
            ops.push_back(parseOperand(cur));
        cur.clear();
    };
    for (char c : rest) {
        if (c == '[')
            ++bracket;
        if (c == ']')
            --bracket;
        if (c == ',' && bracket == 0) {
            flush();
        } else {
            cur += c;
        }
    }
    flush();
    return ops;
}

const Operand &
wantReg(const std::vector<Operand> &ops, std::size_t i)
{
    if (i >= ops.size() || ops[i].kind != Operand::Kind::Reg)
        throw ParseError{"operand " + std::to_string(i + 1) +
                         " must be a register"};
    return ops[i];
}

const Operand &
wantMem(const std::vector<Operand> &ops, std::size_t i)
{
    if (i >= ops.size() || ops[i].kind != Operand::Kind::Mem)
        throw ParseError{"operand " + std::to_string(i + 1) +
                         " must be a [reg+off] memory reference"};
    return ops[i];
}

void
wantCount(const std::vector<Operand> &ops, std::size_t n)
{
    if (ops.size() != n)
        throw ParseError{"expected " + std::to_string(n) + " operands, got " +
                         std::to_string(ops.size())};
}

/** Dispatch one parsed instruction line into the builder. */
void
emitLine(KernelBuilder &kb, const std::string &mnemonic,
         const std::vector<Operand> &ops)
{
    // Compare ops carry a ".cmp" suffix: isetp.lt / fsetp.ge
    std::string base = mnemonic;
    CmpOp cmp = CmpOp::EQ;
    CacheOp cache_op = CacheOp::CacheAll;
    if (base == "ldg.cg") {
        base = "ldg";
        cache_op = CacheOp::Streaming;
    }
    if (base.rfind("isetp.", 0) == 0 || base.rfind("fsetp.", 0) == 0) {
        const std::string suffix = base.substr(6);
        if (!cmpFromString(suffix, cmp))
            throw ParseError{"unknown compare suffix '" + suffix + "'"};
        base = base.substr(0, 5);
    }

    // "jmp" is assembler sugar for an unconditional BRA.
    if (base == "jmp") {
        if (ops.size() != 1 || ops[0].kind != Operand::Kind::Symbol)
            throw ParseError{"jmp needs a single label operand"};
        kb.jmp(ops[0].symbol);
        return;
    }

    const Opcode op = opcodeFromString(base);
    if (op == Opcode::NumOpcodes)
        throw ParseError{"unknown mnemonic '" + base + "'"};

    switch (op) {
      case Opcode::NOP:
        wantCount(ops, 0);
        kb.nop();
        return;
      case Opcode::MOV:
        wantCount(ops, 2);
        if (ops[1].kind == Operand::Kind::Imm) {
            kb.movi(wantReg(ops, 0).reg, ops[1].imm);
        } else {
            kb.mov(wantReg(ops, 0).reg, wantReg(ops, 1).reg);
        }
        return;
      case Opcode::MOVI:
        wantCount(ops, 2);
        if (ops[1].kind != Operand::Kind::Imm)
            throw ParseError{"movi needs an immediate"};
        kb.movi(wantReg(ops, 0).reg, ops[1].imm);
        return;
      case Opcode::IADD: case Opcode::ISUB: case Opcode::IMUL:
      case Opcode::IMIN: case Opcode::IMAX: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SHL:
      case Opcode::SHR: case Opcode::FADD: case Opcode::FSUB:
      case Opcode::FMUL: case Opcode::FMIN: case Opcode::FMAX:
      case Opcode::IDIV: case Opcode::IREM:
        wantCount(ops, 3);
        if (ops[2].kind == Operand::Kind::Imm) {
            kb.alui(op, wantReg(ops, 0).reg, wantReg(ops, 1).reg,
                    ops[2].imm);
        } else {
            kb.alu(op, wantReg(ops, 0).reg, wantReg(ops, 1).reg,
                   wantReg(ops, 2).reg);
        }
        return;
      case Opcode::NOT: case Opcode::I2F: case Opcode::F2I:
      case Opcode::FRCP: case Opcode::FSQRT: case Opcode::FEXP:
      case Opcode::FLOG:
        wantCount(ops, 2);
        kb.unary(op, wantReg(ops, 0).reg, wantReg(ops, 1).reg);
        return;
      case Opcode::IMAD: case Opcode::FFMA:
        wantCount(ops, 4);
        kb.mad(op, wantReg(ops, 0).reg, wantReg(ops, 1).reg,
               wantReg(ops, 2).reg, wantReg(ops, 3).reg);
        return;
      case Opcode::ISETP: case Opcode::FSETP:
        wantCount(ops, 3);
        if (ops[2].kind == Operand::Kind::Imm) {
            kb.setpi(op, cmp, wantReg(ops, 0).reg, wantReg(ops, 1).reg,
                     ops[2].imm);
        } else {
            kb.setp(op, cmp, wantReg(ops, 0).reg, wantReg(ops, 1).reg,
                    wantReg(ops, 2).reg);
        }
        return;
      case Opcode::SEL:
        wantCount(ops, 4);
        kb.sel(wantReg(ops, 0).reg, wantReg(ops, 1).reg,
               wantReg(ops, 2).reg, wantReg(ops, 3).reg);
        return;
      case Opcode::S2R: {
        wantCount(ops, 2);
        if (ops[1].kind != Operand::Kind::Symbol)
            throw ParseError{"s2r needs a special-register name"};
        SpecialReg sreg;
        if (!sregFromString(ops[1].symbol, sreg))
            throw ParseError{"unknown special register '" +
                             ops[1].symbol + "'"};
        kb.s2r(wantReg(ops, 0).reg, sreg);
        return;
      }
      case Opcode::LDP:
        wantCount(ops, 2);
        if (ops[1].kind != Operand::Kind::Imm || ops[1].imm < 0)
            throw ParseError{"ldp needs a non-negative parameter index"};
        kb.ldp(wantReg(ops, 0).reg, ops[1].imm);
        return;
      case Opcode::LDG:
        wantCount(ops, 2);
        kb.ldg(wantReg(ops, 0).reg, wantMem(ops, 1).reg, ops[1].imm,
               cache_op);
        return;
      case Opcode::LDS:
        wantCount(ops, 2);
        kb.lds(wantReg(ops, 0).reg, wantMem(ops, 1).reg, ops[1].imm);
        return;
      case Opcode::STG:
        wantCount(ops, 2);
        kb.stg(wantMem(ops, 0).reg, wantReg(ops, 1).reg, ops[0].imm);
        return;
      case Opcode::STS:
        wantCount(ops, 2);
        kb.sts(wantMem(ops, 0).reg, wantReg(ops, 1).reg, ops[0].imm);
        return;
      case Opcode::ATOMG_ADD:
        wantCount(ops, 3);
        kb.atomgAdd(wantReg(ops, 0).reg, wantMem(ops, 1).reg,
                    wantReg(ops, 2).reg, ops[1].imm);
        return;
      case Opcode::BRA: {
        if (ops.size() < 2 || ops.size() > 3)
            throw ParseError{"bra needs: pred, target [, join=LABEL]"};
        if (ops[1].kind != Operand::Kind::Symbol)
            throw ParseError{"bra target must be a label"};
        std::string join;
        if (ops.size() == 3) {
            if (ops[2].kind != Operand::Kind::Symbol ||
                ops[2].symbol.rfind("join=", 0) != 0) {
                throw ParseError{"third bra operand must be join=LABEL"};
            }
            join = ops[2].symbol.substr(5);
        }
        kb.bra(wantReg(ops, 0).reg, ops[1].symbol, join);
        return;
      }
      case Opcode::BAR:
        wantCount(ops, 0);
        kb.bar();
        return;
      case Opcode::EXIT:
        wantCount(ops, 0);
        kb.exit();
        return;
      default:
        throw ParseError{"mnemonic '" + base + "' not assemblable"};
    }
}

} // namespace

Kernel
assemble(const std::string &source)
{
    std::istringstream in(source);
    std::string line;
    int line_no = 0;

    std::string kernel_name;
    std::uint32_t min_regs = 0;
    std::uint32_t shared_bytes = 0;
    std::unique_ptr<KernelBuilder> kb;

    auto fail = [&](const std::string &msg) {
        VTSIM_FATAL("assembly error at line ", line_no, ": ", msg);
    };

    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        try {
            if (line[0] == '.') {
                std::istringstream ls(line);
                std::string directive, arg;
                ls >> directive >> arg;
                if (directive == ".kernel") {
                    if (kb)
                        fail("duplicate .kernel directive");
                    if (arg.empty())
                        fail(".kernel needs a name");
                    kernel_name = arg;
                    kb = std::make_unique<KernelBuilder>(kernel_name);
                } else if (directive == ".regs") {
                    const auto v = parseImm(arg);
                    if (!v || *v <= 0)
                        fail(".regs needs a positive integer");
                    min_regs = *v;
                } else if (directive == ".shared") {
                    const auto v = parseImm(arg);
                    if (!v || *v < 0)
                        fail(".shared needs a non-negative integer");
                    shared_bytes = *v;
                } else {
                    fail("unknown directive '" + directive + "'");
                }
                continue;
            }

            if (!kb)
                fail("instruction before .kernel directive");

            // Labels: one or more "name:" prefixes on the line.
            while (true) {
                const std::size_t colon = line.find(':');
                if (colon == std::string::npos)
                    break;
                const std::string head = trim(line.substr(0, colon));
                // Don't mistake "join=x" (no colon use) — heads must be
                // plain identifiers.
                bool ident = !head.empty();
                for (char c : head) {
                    if (!std::isalnum(static_cast<unsigned char>(c)) &&
                        c != '_' && c != '.') {
                        ident = false;
                    }
                }
                if (!ident)
                    fail("bad label '" + head + "'");
                kb->label(head);
                line = trim(line.substr(colon + 1));
            }
            if (line.empty())
                continue;

            std::istringstream ls(line);
            std::string mnemonic;
            ls >> mnemonic;
            std::string rest;
            std::getline(ls, rest);
            emitLine(*kb, mnemonic, parseOperands(rest));
        } catch (const ParseError &e) {
            fail(e.message);
        }
    }

    if (!kb)
        VTSIM_FATAL("assembly error: no .kernel directive found");
    if (min_regs)
        kb->minRegs(min_regs);
    if (shared_bytes)
        kb->shared(shared_bytes);
    return kb->build();
}

} // namespace vtsim
