#include "isa/instruction.hh"

#include <array>
#include <map>

#include "common/log.hh"

namespace vtsim {

std::uint32_t
Instruction::numSrcs() const
{
    std::uint32_t n = 0;
    for (auto s : src)
        if (s != noReg)
            ++n;
    return n;
}

namespace {

const std::array<const char *,
                 static_cast<std::size_t>(Opcode::NumOpcodes)> opcodeNames = {
    "nop",
    "mov", "movi", "iadd", "isub", "imul", "imad", "imin", "imax",
    "and", "or", "xor", "not", "shl", "shr", "isetp", "sel",
    "fadd", "fsub", "fmul", "ffma", "fmin", "fmax", "fsetp", "i2f", "f2i",
    "idiv", "irem", "frcp", "fsqrt", "fexp", "flog",
    "s2r", "ldp",
    "ldg", "stg", "lds", "sts", "atomg.add",
    "bra", "bar", "exit",
};

const std::map<std::string, CmpOp> cmpNames = {
    {"eq", CmpOp::EQ}, {"ne", CmpOp::NE}, {"lt", CmpOp::LT},
    {"le", CmpOp::LE}, {"gt", CmpOp::GT}, {"ge", CmpOp::GE},
};

const std::map<std::string, SpecialReg> sregNames = {
    {"tid.x", SpecialReg::TidX}, {"tid.y", SpecialReg::TidY},
    {"tid.z", SpecialReg::TidZ},
    {"ntid.x", SpecialReg::NTidX}, {"ntid.y", SpecialReg::NTidY},
    {"ntid.z", SpecialReg::NTidZ},
    {"ctaid.x", SpecialReg::CtaIdX}, {"ctaid.y", SpecialReg::CtaIdY},
    {"ctaid.z", SpecialReg::CtaIdZ},
    {"nctaid.x", SpecialReg::NCtaIdX}, {"nctaid.y", SpecialReg::NCtaIdY},
    {"nctaid.z", SpecialReg::NCtaIdZ},
    {"laneid", SpecialReg::LaneId},
    {"warpid", SpecialReg::WarpIdInCta},
};

} // namespace

std::string
toString(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    VTSIM_ASSERT(idx < opcodeNames.size(), "bad opcode ", idx);
    return opcodeNames[idx];
}

std::string
toString(CmpOp cmp)
{
    for (const auto &[name, value] : cmpNames)
        if (value == cmp)
            return name;
    return "?";
}

std::string
toString(SpecialReg sreg)
{
    for (const auto &[name, value] : sregNames)
        if (value == sreg)
            return name;
    return "?";
}

Opcode
opcodeFromString(const std::string &name)
{
    for (std::size_t i = 0; i < opcodeNames.size(); ++i)
        if (name == opcodeNames[i])
            return static_cast<Opcode>(i);
    return Opcode::NumOpcodes;
}

bool
cmpFromString(const std::string &name, CmpOp &out)
{
    auto it = cmpNames.find(name);
    if (it == cmpNames.end())
        return false;
    out = it->second;
    return true;
}

bool
sregFromString(const std::string &name, SpecialReg &out)
{
    auto it = sregNames.find(name);
    if (it == sregNames.end())
        return false;
    out = it->second;
    return true;
}

} // namespace vtsim
