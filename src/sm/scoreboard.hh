/**
 * @file
 * Per-warp register scoreboard. Tracks which destination registers have a
 * write in flight, and which of those writes come from long-latency
 * (global memory) operations — the signal the Virtual Thread swap trigger
 * reads.
 */

#ifndef VTSIM_SM_SCOREBOARD_HH
#define VTSIM_SM_SCOREBOARD_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "sim/serializer.hh"

namespace vtsim {

class Scoreboard
{
  public:
    /** Size for @p num_regs architectural registers. */
    void reset(std::uint32_t num_regs);

    /** True when @p inst has a RAW or WAW hazard against pending writes.
     *  Inline: this sits on the per-warp issue fast path. */
    bool hasHazard(const Instruction &inst) const
    {
        if (pendingCount_ == 0)
            return false;
        if (inst.dst != noReg && pending_[inst.dst])
            return true; // WAW
        for (RegIndex src : inst.src) {
            if (src != noReg && pending_[src])
                return true; // RAW
        }
        return false;
    }

    /** Mark @p reg as having a write in flight. */
    void reserve(RegIndex reg, bool long_latency);

    /** The in-flight write to @p reg completed. */
    void release(RegIndex reg);

    bool pending(RegIndex reg) const { return pending_[reg] != 0; }
    bool pendingLong(RegIndex reg) const { return pendingLong_[reg] != 0; }

    /** Number of registers with any write in flight. */
    std::uint32_t pendingCount() const { return pendingCount_; }

    /** Number of registers with a long-latency write in flight. */
    std::uint32_t pendingLongCount() const { return pendingLongCount_; }

    // Checkpoint plumbing (driven by the owning WarpContext).
    void
    save(Serializer &ser) const
    {
        ser.putVec(pending_);
        ser.putVec(pendingLong_);
        ser.put(pendingCount_);
        ser.put(pendingLongCount_);
    }

    void
    restore(Deserializer &des)
    {
        des.getVec(pending_);
        des.getVec(pendingLong_);
        des.get(pendingCount_);
        des.get(pendingLongCount_);
    }

  private:
    // Byte flags, not vector<bool>: hasHazard() runs for every ready-warp
    // candidate every cycle, and the bit-proxy masking is measurable there.
    std::vector<std::uint8_t> pending_;
    std::vector<std::uint8_t> pendingLong_;
    std::uint32_t pendingCount_ = 0;
    std::uint32_t pendingLongCount_ = 0;
};

} // namespace vtsim

#endif // VTSIM_SM_SCOREBOARD_HH
