#include "mem/mtrace.hh"

#include <cstring>

#include "common/log.hh"

namespace vtsim {

namespace {

enum RecordKind : std::uint8_t {
    kindAccess = 1,
    kindBarrier = 2,
    kindKernelLaunch = 3,
    kindEnd = 4,
};

/** Bounds-checked little-endian cursor over a loaded trace image.
 *  Every read that would run past the end is a FatalError naming the
 *  offset — a truncated file can never index out of bounds. */
class Cursor
{
  public:
    Cursor(const std::vector<std::uint8_t> &data, const std::string &path)
        : data_(data), path_(path)
    {}

    std::size_t offset() const { return pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    std::uint8_t
    u8(const char *what)
    {
        need(1, what);
        return data_[pos_++];
    }

    std::uint16_t
    u16(const char *what)
    {
        need(2, what);
        const std::uint16_t v =
            std::uint16_t(data_[pos_]) |
            std::uint16_t(data_[pos_ + 1]) << 8;
        pos_ += 2;
        return v;
    }

    std::uint32_t
    u32(const char *what)
    {
        need(4, what);
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = v << 8 | data_[pos_ + std::size_t(i)];
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64(const char *what)
    {
        need(8, what);
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = v << 8 | data_[pos_ + std::size_t(i)];
        pos_ += 8;
        return v;
    }

    std::string
    str(std::size_t length, const char *what)
    {
        need(length, what);
        std::string s(reinterpret_cast<const char *>(data_.data() + pos_),
                      length);
        pos_ += length;
        return s;
    }

  private:
    void
    need(std::size_t bytes, const char *what)
    {
        if (data_.size() - pos_ < bytes) {
            VTSIM_FATAL("mtrace '", path_, "': truncated reading ", what,
                        " at offset ", pos_, " (file is ", data_.size(),
                        " bytes)");
        }
    }

    const std::vector<std::uint8_t> &data_;
    const std::string &path_;
    std::size_t pos_ = 0;
};

} // namespace

void
MtraceWriter::put8(std::uint8_t v)
{
    out_.put(char(v));
}

void
MtraceWriter::put16(std::uint16_t v)
{
    char b[2] = {char(v), char(v >> 8)};
    out_.write(b, 2);
}

void
MtraceWriter::put32(std::uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = char(v >> 8 * i);
    out_.write(b, 4);
}

void
MtraceWriter::put64(std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = char(v >> 8 * i);
    out_.write(b, 8);
}

void
MtraceWriter::begin(const std::string &path, const MtraceHeader &header,
                    Cycle launch_cycle)
{
    VTSIM_ASSERT(!out_.is_open(), "mtrace writer begun twice");
    path_ = path;
    base_ = launch_cycle;
    records_ = 0;
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_)
        VTSIM_FATAL("mtrace: cannot open '", path, "' for writing");
    out_.write(mtraceMagic, sizeof(mtraceMagic));
    put32(mtraceVersion);
    put32(header.numSms);
    put32(header.numMemPartitions);
    put32(header.l1LineSize);
    put32(header.l2LineSize);
    put32(std::uint32_t(header.kernelName.size()));
    out_.write(header.kernelName.data(),
               std::streamsize(header.kernelName.size()));
    put32(header.grid.x);
    put32(header.grid.y);
    put32(header.grid.z);
    put32(header.cta.x);
    put32(header.cta.y);
    put32(header.cta.z);
    // The launch marker anchors cycle 0 of the record stream.
    put8(kindKernelLaunch);
    put64(0);
    ++records_;
    if (!out_)
        VTSIM_FATAL("mtrace: write error on '", path, "'");
}

void
MtraceWriter::access(Cycle now, std::uint32_t sm, std::uint8_t flags,
                     Addr line_addr, std::uint32_t bytes,
                     std::uint32_t lanes, std::uint32_t warp_tag)
{
    VTSIM_ASSERT(out_.is_open(), "mtrace access without begin");
    VTSIM_ASSERT(now >= base_, "mtrace access before launch cycle");
    put8(kindAccess);
    put64(now - base_);
    put16(std::uint16_t(sm));
    put8(flags);
    put64(line_addr);
    put16(std::uint16_t(bytes));
    put8(std::uint8_t(lanes));
    put32(warp_tag);
    ++records_;
}

void
MtraceWriter::barrier(Cycle now, std::uint32_t sm)
{
    VTSIM_ASSERT(out_.is_open(), "mtrace barrier without begin");
    VTSIM_ASSERT(now >= base_, "mtrace barrier before launch cycle");
    put8(kindBarrier);
    put64(now - base_);
    put16(std::uint16_t(sm));
    ++records_;
}

void
MtraceWriter::end()
{
    VTSIM_ASSERT(out_.is_open(), "mtrace end without begin");
    put8(kindEnd);
    put64(records_);
    out_.flush();
    if (!out_)
        VTSIM_FATAL("mtrace: write error on '", path_, "'");
    out_.close();
}

void
MtraceReader::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        VTSIM_FATAL("mtrace: cannot open '", path, "'");
    const std::streamoff size = in.tellg();
    in.seekg(0);
    std::vector<std::uint8_t> data(static_cast<std::size_t>(size), 0);
    if (size > 0)
        in.read(reinterpret_cast<char *>(data.data()), size);
    if (!in)
        VTSIM_FATAL("mtrace: read error on '", path, "'");

    Cursor c(data, path);
    const std::string magic = c.str(sizeof(mtraceMagic), "magic");
    if (std::memcmp(magic.data(), mtraceMagic, sizeof(mtraceMagic)) != 0)
        VTSIM_FATAL("mtrace '", path, "': bad magic (not a vtsim "
                    "memory trace)");
    const std::uint32_t version = c.u32("version");
    if (version != mtraceVersion) {
        VTSIM_FATAL("mtrace '", path, "': unsupported version ", version,
                    " (this build reads version ", mtraceVersion, ")");
    }

    header_.numSms = c.u32("numSms");
    header_.numMemPartitions = c.u32("numMemPartitions");
    header_.l1LineSize = c.u32("l1LineSize");
    header_.l2LineSize = c.u32("l2LineSize");
    if (header_.numSms < 1 || header_.numSms > 4096)
        VTSIM_FATAL("mtrace '", path, "': implausible SM count ",
                    header_.numSms);
    if (header_.numMemPartitions < 1 || header_.numMemPartitions > 4096)
        VTSIM_FATAL("mtrace '", path, "': implausible partition count ",
                    header_.numMemPartitions);
    if (!isPowerOfTwo(header_.l1LineSize) || header_.l1LineSize > 65536)
        VTSIM_FATAL("mtrace '", path, "': bad L1 line size ",
                    header_.l1LineSize);
    if (!isPowerOfTwo(header_.l2LineSize) || header_.l2LineSize > 65536)
        VTSIM_FATAL("mtrace '", path, "': bad L2 line size ",
                    header_.l2LineSize);
    const std::uint32_t name_len = c.u32("kernel-name length");
    if (name_len > 4096)
        VTSIM_FATAL("mtrace '", path, "': implausible kernel-name "
                    "length ", name_len);
    header_.kernelName = c.str(name_len, "kernel name");
    header_.grid.x = c.u32("grid.x");
    header_.grid.y = c.u32("grid.y");
    header_.grid.z = c.u32("grid.z");
    header_.cta.x = c.u32("cta.x");
    header_.cta.y = c.u32("cta.y");
    header_.cta.z = c.u32("cta.z");
    if (header_.grid.count() == 0 || header_.cta.count() == 0)
        VTSIM_FATAL("mtrace '", path, "': empty grid or CTA shape");
    if (header_.cta.count() > 65536)
        VTSIM_FATAL("mtrace '", path, "': implausible CTA size ",
                    header_.cta.count());

    perSm_.assign(header_.numSms, {});
    totalAccesses_ = 0;
    totalBarriers_ = 0;

    std::uint64_t records = 0;
    Cycle last_cycle = 0;
    bool saw_launch = false;
    bool sealed = false;
    while (!sealed) {
        const std::size_t record_off = c.offset();
        if (c.atEnd()) {
            VTSIM_FATAL("mtrace '", path, "': truncated — no End seal "
                        "(", records, " records read)");
        }
        const std::uint8_t kind = c.u8("record kind");
        switch (kind) {
        case kindKernelLaunch: {
            const Cycle cycle = c.u64("launch cycle");
            if (saw_launch || records != 0) {
                VTSIM_FATAL("mtrace '", path, "': kernel-launch marker "
                            "at offset ", record_off,
                            " is not the first record");
            }
            if (cycle != 0)
                VTSIM_FATAL("mtrace '", path,
                            "': launch marker cycle is ", cycle,
                            ", expected 0");
            saw_launch = true;
            ++records;
            break;
        }
        case kindAccess: {
            MtraceAccess a;
            a.cycle = c.u64("access cycle");
            a.sm = c.u16("access sm");
            a.flags = c.u8("access flags");
            a.lineAddr = c.u64("access lineAddr");
            a.bytes = c.u16("access bytes");
            a.lanes = c.u8("access lanes");
            a.warpTag = c.u32("access warpTag");
            if (!saw_launch)
                VTSIM_FATAL("mtrace '", path, "': access record before "
                            "the kernel-launch marker");
            if (a.cycle < last_cycle) {
                VTSIM_FATAL("mtrace '", path, "': cycle went backwards "
                            "at offset ", record_off, " (", a.cycle,
                            " after ", last_cycle, ")");
            }
            if (a.sm >= header_.numSms) {
                VTSIM_FATAL("mtrace '", path, "': access names SM ",
                            a.sm, " but the header has ", header_.numSms,
                            " SMs");
            }
            if (a.bytes < 1 || a.bytes > header_.l1LineSize) {
                VTSIM_FATAL("mtrace '", path, "': access size ", a.bytes,
                            " outside [1, ", header_.l1LineSize, "]");
            }
            if (a.lanes < 1 || a.lanes > warpSize) {
                VTSIM_FATAL("mtrace '", path, "': access lane count ",
                            a.lanes, " outside [1, ", warpSize, "]");
            }
            if (a.lineAddr % header_.l1LineSize != 0) {
                VTSIM_FATAL("mtrace '", path, "': access address 0x",
                            a.lineAddr, " not aligned to the ",
                            header_.l1LineSize, "-byte L1 line");
            }
            if (a.flags & ~(MtraceAccess::flagStore |
                            MtraceAccess::flagAtomic |
                            MtraceAccess::flagBypassL1)) {
                VTSIM_FATAL("mtrace '", path, "': unknown access flag "
                            "bits ", unsigned(a.flags));
            }
            last_cycle = a.cycle;
            perSm_[a.sm].push_back(a);
            ++totalAccesses_;
            ++records;
            break;
        }
        case kindBarrier: {
            const Cycle cycle = c.u64("barrier cycle");
            const std::uint16_t sm = c.u16("barrier sm");
            if (!saw_launch)
                VTSIM_FATAL("mtrace '", path, "': barrier record before "
                            "the kernel-launch marker");
            if (cycle < last_cycle) {
                VTSIM_FATAL("mtrace '", path, "': cycle went backwards "
                            "at offset ", record_off, " (", cycle,
                            " after ", last_cycle, ")");
            }
            if (sm >= header_.numSms) {
                VTSIM_FATAL("mtrace '", path, "': barrier names SM ",
                            sm, " but the header has ", header_.numSms,
                            " SMs");
            }
            last_cycle = cycle;
            ++totalBarriers_;
            ++records;
            break;
        }
        case kindEnd: {
            const std::uint64_t count = c.u64("record count");
            if (count != records) {
                VTSIM_FATAL("mtrace '", path, "': End seal counts ",
                            count, " records but ", records,
                            " were read — file damaged");
            }
            sealed = true;
            break;
        }
        default:
            VTSIM_FATAL("mtrace '", path, "': unknown record kind ",
                        unsigned(kind), " at offset ", record_off);
        }
    }
    if (!saw_launch)
        VTSIM_FATAL("mtrace '", path, "': no kernel-launch marker");
    if (!c.atEnd()) {
        VTSIM_FATAL("mtrace '", path, "': ",
                    data.size() - c.offset(),
                    " trailing bytes after the End seal");
    }
}

} // namespace vtsim
