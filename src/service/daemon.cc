#include "service/daemon.hh"

#include <filesystem>
#include <fstream>

#include "fabric/transport.hh"
#include "service/protocol.hh"

namespace vtsim::service {

namespace {

using fabric::sendLine;

std::string
okReply(Json::Object fields)
{
    fields["ok"] = Json(true);
    return Json(std::move(fields)).dump();
}

} // namespace

Daemon::Daemon(JobService &service, std::string socket_path)
    : Daemon(service, DaemonConfig{std::move(socket_path), {}, false, {}})
{}

Daemon::Daemon(JobService &service, DaemonConfig config)
    : service_(service),
      server_(
          fabric::LineServerConfig{std::move(config.socketPath),
                                   config.tcp, config.tcpEnabled,
                                   std::move(config.authToken),
                                   "vtsimd"},
          [this](int fd, const std::string &line) {
              return handleLine(fd, line);
          })
{
    server_.setErrorHook([this](const std::string &error) {
        if (EventLog *log = service_.eventLog())
            log->emit("accept_error", {{"error", Json(error)}});
    });
}

void
Daemon::start()
{
    server_.start();
    if (EventLog *log = service_.eventLog()) {
        Json::Object fields;
        if (!server_.unixPath().empty())
            fields["socket"] = Json(server_.unixPath());
        if (server_.boundTcpPort() != 0)
            fields["tcp_port"] = Json(unsigned(server_.boundTcpPort()));
        log->emit("listening", std::move(fields));
    }
}

void
Daemon::serve()
{
    server_.serve();
}

void
Daemon::requestStop()
{
    server_.requestStop();
}

bool
Daemon::handleLine(int fd, const std::string &line)
{
    Request req;
    try {
        req = parseRequest(line);
    } catch (const std::exception &e) {
        // JsonError or ProtocolError: the client's problem, never the
        // daemon's.
        return sendLine(fd, errorReply(e.what()));
    }

    try {
        switch (req.op) {
          case Request::Op::Submit:
            return handleSubmit(fd, req);
          case Request::Op::Wait:
            return sendLine(fd,
                            snapshotToJson(service_.wait(req.job)).dump());
          case Request::Op::Query:
            return sendLine(
                fd, snapshotToJson(service_.query(req.job)).dump());
          case Request::Op::Status:
            return sendLine(fd, service_.status().dump());
          case Request::Op::Cancel: {
            std::string error;
            Json::Object o;
            if (service_.cancel(req.job, error)) {
                o["ok"] = Json(true);
                o["job"] = Json(req.job);
            } else {
                o["ok"] = Json(false);
                o["error"] = Json(error);
            }
            return sendLine(fd, Json(std::move(o)).dump());
          }
          case Request::Op::Yank:
            return handleYank(fd, req);
          case Request::Op::CkptRead:
            return handleCkptRead(fd, req);
          case Request::Op::CkptBegin:
            return handleCkptBegin(fd);
          case Request::Op::CkptChunk:
            return handleCkptChunk(fd, req);
          case Request::Op::Release: {
            std::string error;
            if (!service_.releaseImage(req.job, error))
                return sendLine(fd, errorReply(error));
            return sendLine(fd, okReply({{"job", Json(req.job)}}));
          }
          case Request::Op::Ping:
            return sendLine(fd, okReply({{"op", Json("ping")}}));
          case Request::Op::Metrics: {
            // The Prometheus text (multi-line) rides inside the JSON
            // string: NDJSON framing keeps the reply one line.
            return sendLine(
                fd, okReply({{"op", Json("metrics")},
                             {"body", Json(service_.metricsText())}}));
          }
          case Request::Op::Shutdown: {
            sendLine(fd, okReply({{"state", Json("draining")}}));
            requestStop();
            return false;
          }
        }
    } catch (const std::exception &e) {
        return sendLine(fd, errorReply(e.what()));
    }
    return sendLine(fd, errorReply("unhandled op"));
}

bool
Daemon::handleSubmit(int fd, Request &req)
{
    if (req.resumeXfer != 0) {
        // Resolve the staged transfer into a spool-file path; the
        // transfer id is one-shot.
        std::lock_guard<std::mutex> lk(xferMu_);
        const auto it = xfers_.find(req.resumeXfer);
        if (it == xfers_.end()) {
            return sendLine(
                fd, errorReply("unknown resume_xfer " +
                               std::to_string(req.resumeXfer)));
        }
        req.spec.resumeFrom = it->second.path;
        xfers_.erase(it);
    }
    const auto outcome = service_.submit(req.spec, req.priority);
    Json::Object o;
    if (outcome.ok()) {
        o["ok"] = Json(true);
        o["job"] = Json(outcome.id);
    } else {
        o["ok"] = Json(false);
        if (!outcome.rejected.empty())
            o["rejected"] = Json(outcome.rejected);
        else
            o["error"] = Json(outcome.error);
    }
    return sendLine(fd, Json(std::move(o)).dump());
}

bool
Daemon::handleYank(int fd, const Request &req)
{
    const auto outcome = service_.yank(req.job);
    if (!outcome.ok)
        return sendLine(fd, errorReply(outcome.error));
    return sendLine(
        fd, okReply({{"job", Json(req.job)},
                     {"image", Json(outcome.hasImage)},
                     {"ckpt_bytes", Json(outcome.imageBytes)}}));
}

bool
Daemon::handleCkptRead(int fd, const Request &req)
{
    std::vector<std::uint8_t> chunk;
    std::uint64_t total = 0;
    std::string error;
    if (!service_.readImageChunk(req.job, req.offset, req.len, chunk,
                                 total, error))
        return sendLine(fd, errorReply(error));
    return sendLine(
        fd, okReply({{"data", Json(fabric::base64Encode(chunk))},
                     {"bytes", Json(std::uint64_t(chunk.size()))},
                     {"total", Json(total)}}));
}

bool
Daemon::handleCkptBegin(int fd)
{
    std::error_code ec;
    std::filesystem::create_directories(service_.config().spoolDir, ec);
    std::uint64_t id;
    std::string path;
    {
        std::lock_guard<std::mutex> lk(xferMu_);
        id = nextXfer_++;
        path = service_.config().spoolDir + "/xfer-" +
               std::to_string(id) + ".ckpt";
        xfers_.emplace(id, Xfer{path, 0});
    }
    // Truncate-create now so a zero-chunk transfer still resolves to a
    // real (empty, hence rejected at submit) file.
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::lock_guard<std::mutex> lk(xferMu_);
        xfers_.erase(id);
        return sendLine(fd, errorReply("cannot open staging file '" +
                                       path + "'"));
    }
    return sendLine(fd, okReply({{"xfer", Json(id)}}));
}

bool
Daemon::handleCkptChunk(int fd, const Request &req)
{
    std::vector<std::uint8_t> data;
    try {
        data = fabric::base64Decode(req.data);
    } catch (const std::exception &e) {
        return sendLine(fd, errorReply(e.what()));
    }
    std::string path;
    {
        std::lock_guard<std::mutex> lk(xferMu_);
        const auto it = xfers_.find(req.xfer);
        if (it == xfers_.end()) {
            return sendLine(fd,
                            errorReply("unknown xfer " +
                                       std::to_string(req.xfer)));
        }
        path = it->second.path;
        it->second.bytes += data.size();
    }
    std::ofstream os(path, std::ios::binary | std::ios::app);
    if (!data.empty())
        os.write(reinterpret_cast<const char *>(data.data()),
                 std::streamsize(data.size()));
    if (!os.flush()) {
        return sendLine(fd, errorReply("short write to staging file '" +
                                       path + "'"));
    }
    std::lock_guard<std::mutex> lk(xferMu_);
    const auto it = xfers_.find(req.xfer);
    const std::uint64_t bytes =
        it != xfers_.end() ? it->second.bytes : 0;
    return sendLine(fd, okReply({{"bytes", Json(bytes)}}));
}

} // namespace vtsim::service
