#include "mem/mem_request.hh"

// MemRequest is a plain record; this translation unit anchors the
// MemResponseSink vtable.

namespace vtsim {

} // namespace vtsim
