#include "sm/sm_core.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"
#include "isa/disassembler.hh"
#include "func/global_memory.hh"

namespace vtsim {

SmCore::SmCore(SmId id, const GpuConfig &config, Interconnect &noc)
    : id_(id), config_(config), ldst_(id, config, noc, *this),
      shmem_(config.sharedMemLatency, "sm" + std::to_string(id) + ".shmem"),
      vt_(config, *this, id),
      stats_("sm" + std::to_string(id))
{
    for (std::uint32_t s = 0; s < config.numSchedulers; ++s) {
        // Two-level active set: a quarter of the warp slots per scheduler.
        const std::uint32_t active_set =
            std::max(1u, config.effMaxWarpsPerSm() /
                             (4 * config.numSchedulers));
        schedulers_.push_back(
            WarpScheduler::create(config.schedulerPolicy, active_set));
    }
    stats_.addCounter("instructions", &instructionsIssued_,
                      "warp instructions issued");
    stats_.addCounter("thread_instructions", &threadInstructions_,
                      "per-thread instructions (mask population)");
    stats_.addCounter("ctas_completed", &ctasCompleted_, "CTAs retired");
    if (config.throttleEnabled) {
        ThrottleParams tp;
        tp.epochCycles = config.throttleEpochCycles;
        tp.highWater = config.throttleHighWater;
        tp.lowWater = config.throttleLowWater;
        throttler_ = std::make_unique<CtaThrottler>(
            tp, config.effMaxCtasPerSm(), id);
    }
}

void
SmCore::launchKernel(const Kernel &kernel, const LaunchParams &launch,
                     GlobalMemory &gmem)
{
    VTSIM_ASSERT(residentCount_ == 0, "kernel launch with CTAs resident");
    kernel_ = &kernel;
    launch_ = &launch;
    gmem_ = &gmem;

    const std::uint32_t warps_per_cta = launch.warpsPerCta();
    const std::uint32_t regs_per_warp =
        roundUp(std::uint64_t(kernel.regsPerThread()) * warpSize,
                config_.regAllocGranularity);
    CtaFootprint fp;
    fp.warpsPerCta = warps_per_cta;
    fp.threadsPerCta = launch.threadsPerCta();
    fp.regsPerCta = warps_per_cta * regs_per_warp;
    fp.sharedPerCta = roundUp(kernel.sharedBytesPerCta(),
                              config_.sharedAllocGranularity);

    if (fp.warpsPerCta > config_.effMaxWarpsPerSm() ||
        fp.threadsPerCta > config_.effMaxThreadsPerSm()) {
        VTSIM_FATAL("CTA shape of kernel '", kernel.name(),
                    "' exceeds the SM scheduling limit");
    }
    if (fp.regsPerCta > config_.registersPerSm ||
        fp.sharedPerCta > config_.sharedMemPerSm) {
        VTSIM_FATAL("one CTA of kernel '", kernel.name(),
                    "' exceeds the SM capacity limit");
    }
    vt_.configureKernel(fp);
}

bool
SmCore::canAdmitCta() const
{
    return kernel_ != nullptr && vt_.canAdmit();
}

void
SmCore::admitCta(const CtaAssignment &assignment, Cycle now)
{
    VTSIM_ASSERT(canAdmitCta(), "admitCta without canAdmitCta");

    VirtualCtaId slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = ctas_.size();
        ctas_.emplace_back();
    }

    VirtualCta &cta = ctas_[slot];
    cta.valid = true;
    cta.age = nextCtaAge_++;
    const std::uint32_t tpc = launch_->threadsPerCta();
    cta.func.init(assignment.linearId, assignment.idx, tpc,
                  kernel_->regsPerThread(), kernel_->sharedBytesPerCta());

    const std::uint32_t warps = launch_->warpsPerCta();
    cta.warps.assign(warps, WarpContext());
    cta.warpsAlive = warps;
    for (std::uint32_t w = 0; w < warps; ++w) {
        const std::uint32_t first = w * warpSize;
        const std::uint32_t live = std::min(warpSize, tpc - first);
        cta.warps[w].init(slot, w, ActiveMask::firstLanes(live),
                          kernel_->regsPerThread());
    }

    ++residentCount_;
    barriers_.ctaLaunched(slot);
    vt_.onAdmit(slot, now);
}

bool
SmCore::warpCanIssueLocal(const WarpContext &warp, Cycle now,
                          bool ignore_structural) const
{
    if (warp.done() || warp.atBarrier() || warp.readyAt() > now)
        return false;
    const Instruction &inst = kernel_->at(warp.stack().pc());
    if (inst.isExit() && warp.scoreboard().pendingCount() > 0)
        return false; // Retire only with all writes landed.
    if (warp.scoreboard().hasHazard(inst))
        return false;
    if (!ignore_structural) {
        if (inst.isGlobalMem() && !ldst_.canAccept())
            return false;
        if (inst.isSharedMem() && !shmem_.canAccept(now))
            return false;
    }
    return true;
}

bool
SmCore::budgetAllows(const Instruction &inst,
                     const IssueBudgets &budgets) const
{
    switch (inst.funcUnit()) {
      case FuncUnit::Alu: return budgets.alu > 0;
      case FuncUnit::Sfu: return budgets.sfu > 0;
      case FuncUnit::Mem: return budgets.mem > 0;
      case FuncUnit::Control: return true;
    }
    return false;
}

void
SmCore::chargeBudget(const Instruction &inst, IssueBudgets &budgets) const
{
    switch (inst.funcUnit()) {
      case FuncUnit::Alu: --budgets.alu; break;
      case FuncUnit::Sfu: --budgets.sfu; break;
      case FuncUnit::Mem: --budgets.mem; break;
      case FuncUnit::Control: break;
    }
}

void
SmCore::tick(Cycle now)
{
    now_ = now;

    // 1. Memory completions (unblocks warps for this cycle's issue).
    ldst_.tick(now);

    // 2. ALU/SFU/shared writebacks that mature this cycle.
    while (!wbQueue_.empty() && wbQueue_.top().at <= now) {
        const Writeback wb = wbQueue_.top();
        wbQueue_.pop();
        ctas_[wb.vcta].warps[wb.warpInCta].scoreboard().release(wb.reg);
    }

    // 3. Virtual Thread state machine: swap completions and decisions,
    //    based on the state warps are in *before* this cycle's issue.
    vt_.tick(now);

    // 4. Issue: each scheduler picks one warp among its ready ones.
    const StallBreakdown before_issue = stalls_;
    IssueBudgets budgets{config_.aluThroughputPerSm,
                         config_.sfuThroughputPerSm,
                         config_.ldstThroughputPerSm};
    for (std::uint32_t s = 0; s < config_.numSchedulers; ++s) {
        std::vector<WarpCandidate> cands;
        std::vector<std::pair<VirtualCtaId, std::uint32_t>> refs;
        for (VirtualCtaId slot = 0; slot < ctas_.size(); ++slot) {
            VirtualCta &cta = ctas_[slot];
            if (!cta.valid || !vt_.isIssuable(slot))
                continue;
            for (std::uint32_t w = 0; w < cta.warps.size(); ++w) {
                if ((cta.age * cta.warps.size() + w) %
                        config_.numSchedulers != s) {
                    continue;
                }
                WarpContext &warp = cta.warps[w];
                if (!warpCanIssueLocal(warp, now))
                    continue;
                if (!budgetAllows(kernel_->at(warp.stack().pc()), budgets))
                    continue;
                const std::uint64_t key = cta.age * 256 + w;
                cands.push_back({key, key});
                refs.emplace_back(slot, w);
            }
        }
        if (cands.empty()) {
            classifyStall(s, now);
            continue;
        }
        const std::size_t chosen = schedulers_[s]->pick(cands);
        const auto [slot, w] = refs.at(chosen);
        VirtualCta &cta = ctas_[slot];
        chargeBudget(kernel_->at(cta.warps[w].stack().pc()), budgets);
        ++stalls_.issued;
        issueWarp(cta, slot, cta.warps[w], now);
    }

    // 5. DYNCTA-style throttling: feed this cycle's observation into the
    //    epoch machinery and apply the (possibly new) active-CTA cap.
    if (throttler_) {
        const bool issued = stalls_.issued != before_issue.issued;
        const bool mem = stalls_.memStall != before_issue.memStall;
        throttler_->sample(issued, !issued && mem);
        vt_.setActiveCap(throttler_->cap());
    }
}

void
SmCore::classifyStall(std::uint32_t scheduler, Cycle now)
{
    // Nothing issued from this scheduler slot: attribute the bubble.
    bool any_warp = false;
    bool any_frozen = false;
    bool any_mem_blocked = false;
    bool all_barrier = true;
    for (VirtualCtaId slot = 0; slot < ctas_.size(); ++slot) {
        const VirtualCta &cta = ctas_[slot];
        if (!cta.valid)
            continue;
        const bool frozen = !vt_.isIssuable(slot);
        for (std::uint32_t w = 0; w < cta.warps.size(); ++w) {
            if ((cta.age * cta.warps.size() + w) %
                    config_.numSchedulers != scheduler) {
                continue;
            }
            const WarpContext &warp = cta.warps[w];
            if (warp.done())
                continue;
            any_warp = true;
            if (frozen) {
                any_frozen = true;
                continue;
            }
            if (!warp.atBarrier())
                all_barrier = false;
            if (warp.pendingOffChip() > 0 && !warpCanIssueLocal(warp, now))
                any_mem_blocked = true;
        }
    }
    if (!any_warp)
        ++stalls_.idle;
    else if (any_mem_blocked)
        ++stalls_.memStall;
    else if (all_barrier && !any_frozen)
        ++stalls_.barrierStall;
    else if (any_frozen)
        ++stalls_.swapStall;
    else
        ++stalls_.shortStall;
}

void
SmCore::issueWarp(VirtualCta &cta, VirtualCtaId slot, WarpContext &warp,
                  Cycle now)
{
    const Pc pc = warp.stack().pc();
    const Instruction &inst = kernel_->at(pc);
    const ActiveMask mask = warp.stack().activeMask();

    VTSIM_TRACE(TraceFlag::Issue, now, stats_.name(), "cta ", slot, " w",
                warp.warpInCta(), " pc ", pc, " [",
                mask.count(), " lanes] ", disassemble(inst));
    ExecResult res = execute(inst, warp.warpInCta(), mask, cta.func,
                             *gmem_, *launch_);
    warp.countIssue();
    ++instructionsIssued_;
    threadInstructions_ += mask.count();
    warp.setReadyAt(now + 1);

    switch (inst.funcUnit()) {
      case FuncUnit::Control:
        if (inst.isBranch()) {
            warp.stack().branch(inst, pc, res.branchTaken);
            maxSimtDepth_ = std::max(maxSimtDepth_,
                                     warp.stack().maxDepth());
        } else if (inst.isBarrier()) {
            warp.stack().advance();
            warp.setAtBarrier(true);
            barriers_.arrive(slot, warp.warpInCta());
            maybeReleaseBarrier(slot, now);
        } else { // EXIT
            warp.stack().exitActiveLanes();
            if (warp.done()) {
                VTSIM_ASSERT(cta.warpsAlive > 0, "alive underflow");
                --cta.warpsAlive;
                if (cta.warpsAlive == 0)
                    finishCta(slot, now);
                else
                    maybeReleaseBarrier(slot, now);
            }
        }
        break;

      case FuncUnit::Alu:
      case FuncUnit::Sfu: {
        const std::uint32_t latency = inst.funcUnit() == FuncUnit::Sfu
                                          ? config_.sfuLatency
                                          : config_.aluLatency;
        if (inst.hasDst()) {
            warp.scoreboard().reserve(inst.dst, false);
            wbQueue_.push({now + latency, slot, warp.warpInCta(),
                           inst.dst});
        }
        warp.stack().advance();
        break;
      }

      case FuncUnit::Mem:
        if (inst.isSharedMem()) {
            std::uint32_t passes =
                sharedMemPasses(res.sharedAccesses,
                                config_.sharedMemBanks);
            if (passes == 0)
                passes = 1;
            const Cycle done = shmem_.access(passes, now);
            if (inst.hasDst()) {
                warp.scoreboard().reserve(inst.dst, false);
                wbQueue_.push({done, slot, warp.warpInCta(), inst.dst});
            }
        } else if (!res.globalAccesses.empty()) {
            if (inst.hasDst())
                warp.scoreboard().reserve(inst.dst, true);
            ldst_.issueGlobal(slot, warp.warpInCta(), inst,
                              res.globalAccesses);
        }
        warp.stack().advance();
        break;
    }
}

void
SmCore::maybeReleaseBarrier(VirtualCtaId slot, Cycle now)
{
    VirtualCta &cta = ctas_[slot];
    if (!barriers_.shouldRelease(slot, cta.warpsAlive))
        return;
    for (std::uint32_t w : barriers_.release(slot)) {
        cta.warps[w].setAtBarrier(false);
        cta.warps[w].setReadyAt(now + 1);
    }
}

void
SmCore::finishCta(VirtualCtaId slot, Cycle now)
{
    VirtualCta &cta = ctas_[slot];
    for (const WarpContext &warp : cta.warps) {
        VTSIM_ASSERT(warp.pendingOffChip() == 0,
                     "CTA retired with off-chip transactions in flight");
        maxSimtDepth_ = std::max(maxSimtDepth_, warp.stack().maxDepth());
    }
    vt_.onCtaFinished(slot, now);
    barriers_.ctaFinished(slot);
    cta.valid = false;
    cta.warps.clear();
    freeSlots_.push_back(slot);
    VTSIM_ASSERT(residentCount_ > 0, "resident underflow");
    --residentCount_;
    ++ctasCompleted_;
}

bool
SmCore::idle() const
{
    return residentCount_ == 0 && ldst_.idle() && wbQueue_.empty();
}

void
SmCore::loadComplete(VirtualCtaId vcta, std::uint32_t warp_in_cta,
                     RegIndex dst)
{
    VTSIM_ASSERT(vcta < ctas_.size() && ctas_[vcta].valid,
                 "load completion for retired CTA");
    if (dst != noReg)
        ctas_[vcta].warps[warp_in_cta].scoreboard().release(dst);
}

void
SmCore::offChipIssued(VirtualCtaId vcta, std::uint32_t warp_in_cta)
{
    ctas_[vcta].warps[warp_in_cta].addOffChip();
}

void
SmCore::offChipReturned(VirtualCtaId vcta, std::uint32_t warp_in_cta)
{
    ctas_[vcta].warps[warp_in_cta].removeOffChip();
}

bool
SmCore::ctaFullyStalled(VirtualCtaId id) const
{
    const VirtualCta &cta = ctas_[id];
    VTSIM_ASSERT(cta.valid, "query on retired CTA");
    for (const WarpContext &warp : cta.warps) {
        if (warp.done())
            continue;
        if (warpCanIssueLocal(warp, now_, true))
            return false;
    }
    return true;
}

bool
SmCore::ctaAnyWarpLongStalled(VirtualCtaId id) const
{
    const VirtualCta &cta = ctas_[id];
    VTSIM_ASSERT(cta.valid, "query on retired CTA");
    for (const WarpContext &warp : cta.warps) {
        if (warp.done())
            continue;
        if (warp.pendingOffChip() > 0 &&
            !warpCanIssueLocal(warp, now_, true)) {
            return true;
        }
    }
    return false;
}

std::uint32_t
SmCore::ctaPendingOffChip(VirtualCtaId id) const
{
    const VirtualCta &cta = ctas_[id];
    VTSIM_ASSERT(cta.valid, "query on retired CTA");
    std::uint32_t total = 0;
    for (const WarpContext &warp : cta.warps)
        total += warp.pendingOffChip();
    return total;
}

} // namespace vtsim
