/**
 * @file
 * K-means assignment step: each thread finds the nearest of K centroids
 * (4-D points). Centroids stay hot in the L1, so the kernel mixes
 * streaming loads with cache-friendly compute.
 */

#include <bit>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

constexpr std::uint32_t kDims = 4;
constexpr std::uint32_t kClusters = 8;

class Kmeans : public Workload
{
  public:
    explicit Kmeans(std::uint32_t scale)
        : n_(scale == 0 ? 512 : 65536 * scale)
    {}

    std::string name() const override { return "kmeans"; }

    std::string
    description() const override
    {
        return "nearest-centroid assignment, 4-D points, 8 clusters";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        return assemble(R"(
.kernel kmeans
    ldp r0, 0            # points (n x 4 floats)
    ldp r1, 1            # centroids (8 x 4 floats)
    ldp r2, 2            # assign
    ldp r3, 3            # n
    s2r r4, ctaid.x
    s2r r5, ntid.x
    s2r r6, tid.x
    imad r4, r4, r5, r6  # i
    isetp.ge r5, r4, r3
    bra r5, done
    shl r5, r4, 4        # i*16 bytes
    iadd r5, r5, r0
    ldg r6, [r5]         # p0
    ldg r7, [r5+4]       # p1
    ldg r8, [r5+8]       # p2
    ldg r9, [r5+12]      # p3
    movi r10, 0x7f000000 # bestd = huge float
    movi r11, 0          # best = 0
    movi r12, 0          # k
kloop:
    shl r13, r12, 4
    iadd r13, r13, r1
    ldg r14, [r13]
    ldg r15, [r13+4]
    ldg r16, [r13+8]
    ldg r17, [r13+12]
    fsub r14, r6, r14
    fsub r15, r7, r15
    fsub r16, r8, r16
    fsub r17, r9, r17
    fmul r18, r14, r14
    ffma r18, r15, r15, r18
    ffma r18, r16, r16, r18
    ffma r18, r17, r17, r18  # dist
    fsetp.lt r19, r18, r10
    sel r10, r18, r10, r19
    sel r11, r12, r11, r19
    iadd r12, r12, 1
    isetp.lt r19, r12, 8
    bra r19, kloop
    shl r13, r4, 2
    iadd r13, r13, r2
    stg [r13], r11
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd0c);
        std::vector<float> points(std::size_t(n_) * kDims);
        std::vector<float> centroids(kClusters * kDims);
        for (auto &v : points)
            v = rng.nextFloat() * 10.0f;
        for (auto &v : centroids)
            v = rng.nextFloat() * 10.0f;
        pointsAddr_ = gmem.alloc(points.size() * 4);
        centroidsAddr_ = gmem.alloc(centroids.size() * 4);
        assignAddr_ = gmem.alloc(n_ * 4);
        gmem.writeFloats(pointsAddr_, points);
        gmem.writeFloats(centroidsAddr_, centroids);

        expected_.resize(n_);
        for (std::uint32_t i = 0; i < n_; ++i) {
            float bestd = std::bit_cast<float>(0x7f000000u);
            std::uint32_t best = 0;
            for (std::uint32_t k = 0; k < kClusters; ++k) {
                float d0 = points[i * kDims] - centroids[k * kDims];
                float d1 = points[i * kDims + 1] -
                           centroids[k * kDims + 1];
                float d2 = points[i * kDims + 2] -
                           centroids[k * kDims + 2];
                float d3 = points[i * kDims + 3] -
                           centroids[k * kDims + 3];
                float dist = d0 * d0;
                dist = d1 * d1 + dist;
                dist = d2 * d2 + dist;
                dist = d3 * d3 + dist;
                if (dist < bestd) {
                    bestd = dist;
                    best = k;
                }
            }
            expected_[i] = best;
        }

        LaunchParams lp;
        lp.cta = Dim3(128);
        lp.grid = Dim3(ceilDiv(n_, 128));
        lp.params = {std::uint32_t(pointsAddr_),
                     std::uint32_t(centroidsAddr_),
                     std::uint32_t(assignAddr_), n_};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readWords(assignAddr_, n_);
        for (std::uint32_t i = 0; i < n_; ++i)
            if (got[i] != expected_[i])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    Addr pointsAddr_ = 0, centroidsAddr_ = 0, assignAddr_ = 0;
    std::vector<std::uint32_t> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeKmeans(std::uint32_t scale)
{
    return std::make_unique<Kmeans>(scale);
}

} // namespace vtsim
