/**
 * @file
 * Occupancy explorer: the tool a kernel author would use to see which
 * hardware limit throttles a kernel shape, and what Virtual Thread's
 * capacity-only admission would change.
 *
 * Usage:
 *   occupancy_explorer                 # sweep a grid of kernel shapes
 *   occupancy_explorer <benchmark>     # analyse one suite benchmark
 */

#include <cstdio>
#include <string>

#include "common/log.hh"
#include "isa/kernel_builder.hh"
#include "occupancy/occupancy.hh"
#include "workloads/workload.hh"

namespace {

using namespace vtsim;

void
analyseShape(const GpuConfig &cfg, std::uint32_t cta_threads,
             std::uint32_t regs, std::uint32_t shared)
{
    KernelBuilder kb("shape");
    kb.minRegs(regs).shared(shared).movi(0, 1).exit();
    const Kernel k = kb.build();
    LaunchParams lp;
    lp.cta = Dim3(cta_threads);
    lp.grid = Dim3(100000);
    const auto r = computeOccupancy(cfg, k, lp);
    std::printf("%8u %6u %8u | %5u CTAs (%-12s) %5.1f%% warp-occ "
                "| VT could host %u\n",
                cta_threads, regs, shared, r.ctasPerSm,
                toString(r.limiter).c_str(), 100 * r.warpOccupancy,
                r.ctasCapacityOnly);
}

void
analyseBenchmark(const GpuConfig &cfg, const std::string &name)
{
    auto wl = makeWorkload(name);
    const Kernel k = wl->buildKernel();
    GlobalMemory scratch;
    const LaunchParams lp = wl->prepare(scratch);
    const auto r = computeOccupancy(cfg, k, lp);

    std::printf("benchmark '%s': %s\n", name.c_str(),
                wl->description().c_str());
    std::printf("  CTA %u threads (%u warps), %u regs/thread, %u B "
                "shared\n", lp.threadsPerCta(), lp.warpsPerCta(),
                k.regsPerThread(), k.sharedBytesPerCta());
    std::printf("  CTAs/SM by limit: warps %u, cta-slots %u, threads %u,"
                " regs %u, shared %s\n", r.ctasByWarpSlots,
                r.ctasByCtaSlots, r.ctasByThreadSlots, r.ctasByRegisters,
                k.sharedBytesPerCta()
                    ? std::to_string(r.ctasBySharedMem).c_str()
                    : "unlimited");
    std::printf("  -> %u CTAs/SM, limited by %s (%s)\n", r.ctasPerSm,
                toString(r.limiter).c_str(),
                r.schedulingLimited() ? "VT can raise this"
                                      : "VT cannot help");
    std::printf("  capacity alone would host %u CTAs/SM\n",
                r.ctasCapacityOnly);
    std::printf("  register file population: %.1f%% -> %.1f%% under "
                "capacity admission\n", 100 * r.registerUtilization,
                100 * r.registerUtilizationVt);
}

} // namespace

int
main(int argc, char **argv)
try {
    const GpuConfig cfg = GpuConfig::fermiLike();
    if (argc > 1) {
        analyseBenchmark(cfg, argv[1]);
        return 0;
    }

    std::printf("Kernel-shape sweep on the Fermi-class baseline\n");
    std::printf("%8s %6s %8s | result\n", "cta-thr", "regs", "shared");
    for (std::uint32_t threads : {32u, 64u, 128u, 256u, 512u})
        for (std::uint32_t regs : {12u, 24u, 48u})
            analyseShape(cfg, threads, regs, 0);
    std::printf("\nShared-memory pressure at 256 threads, 16 regs:\n");
    for (std::uint32_t shared : {0u, 2048u, 8192u, 16384u, 24576u})
        analyseShape(cfg, 256, 16, shared);
    std::printf("\nRun with a benchmark name (e.g. 'vecadd') for a "
                "detailed analysis.\n");
    return 0;
} catch (const vtsim::FatalError &e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
}
