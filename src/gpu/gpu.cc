#include "gpu/gpu.hh"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "common/log.hh"

namespace vtsim {

namespace {

/**
 * GpuConfig goes into the "conf" section field by field: the struct
 * mixes bools and doubles with wider fields, so a raw-byte copy would
 * leak indeterminate padding into the checkpoint and break
 * byte-determinism. The sizeof tripwire forces this list to be updated
 * whenever a field is added (vtsim targets one LP64 toolchain, so the
 * value is stable).
 */
static_assert(sizeof(GpuConfig) == 240,
              "GpuConfig changed — update saveConfig()/restoreConfig()");

template <typename Archive, typename Config>
void
configFields(Archive &&field, Config &cfg)
{
    field(cfg.numSms);
    field(cfg.numMemPartitions);
    field(cfg.maxWarpsPerSm);
    field(cfg.maxCtasPerSm);
    field(cfg.maxThreadsPerSm);
    field(cfg.registersPerSm);
    field(cfg.sharedMemPerSm);
    field(cfg.sharedMemBanks);
    field(cfg.regAllocGranularity);
    field(cfg.sharedAllocGranularity);
    field(cfg.numSchedulers);
    field(cfg.issueWidth);
    field(cfg.schedulerPolicy);
    field(cfg.aluLatency);
    field(cfg.sfuLatency);
    field(cfg.aluThroughputPerSm);
    field(cfg.sfuThroughputPerSm);
    field(cfg.ldstThroughputPerSm);
    field(cfg.l1Size);
    field(cfg.l1Assoc);
    field(cfg.l1LineSize);
    field(cfg.l1Mshrs);
    field(cfg.l1MshrTargets);
    field(cfg.l1HitLatency);
    field(cfg.l1BypassGlobalLoads);
    field(cfg.sharedMemLatency);
    field(cfg.nocLatency);
    field(cfg.nocFlitsPerCycle);
    field(cfg.l2SlicePerPartition);
    field(cfg.l2Assoc);
    field(cfg.l2LineSize);
    field(cfg.l2Mshrs);
    field(cfg.l2MshrTargets);
    field(cfg.l2HitLatency);
    field(cfg.l2PortsPerCycle);
    field(cfg.l2WriteBack);
    field(cfg.dramBanksPerPartition);
    field(cfg.dramRowBufferSize);
    field(cfg.dramRowHitLatency);
    field(cfg.dramRowMissLatency);
    field(cfg.dramBytesPerCycle);
    field(cfg.dramSchedWindow);
    field(cfg.vtEnabled);
    field(cfg.vtMaxVirtualCtasPerSm);
    field(cfg.vtSwapOutLatency);
    field(cfg.vtSwapInLatency);
    field(cfg.vtSwapTrigger);
    field(cfg.vtSwapInPolicy);
    field(cfg.vtStallThreshold);
    field(cfg.schedLimitMultiplier);
    field(cfg.throttleEnabled);
    field(cfg.throttleEpochCycles);
    field(cfg.throttleHighWater);
    field(cfg.throttleLowWater);
    field(cfg.maxCycles);
    field(cfg.fastForwardEnabled);
    field(cfg.incrementalReadySets);
    field(cfg.readySetOracle);
    field(cfg.horizonOracle);
}

void
saveConfig(Serializer &ser, const GpuConfig &cfg)
{
    configFields(
        [&ser](const auto &f) {
            using F = std::decay_t<decltype(f)>;
            if constexpr (std::is_same_v<F, bool>)
                ser.put<std::uint8_t>(f);
            else if constexpr (std::is_enum_v<F>)
                ser.put<std::uint32_t>(static_cast<std::uint32_t>(f));
            else
                ser.put(f);
        },
        cfg);
}

GpuConfig
restoreConfig(Deserializer &des)
{
    GpuConfig cfg;
    configFields(
        [&des](auto &f) {
            using F = std::decay_t<decltype(f)>;
            if constexpr (std::is_same_v<F, bool>)
                f = des.get<std::uint8_t>() != 0;
            else if constexpr (std::is_enum_v<F>)
                f = static_cast<F>(des.get<std::uint32_t>());
            else
                des.get(f);
        },
        cfg);
    return cfg;
}

} // namespace

Gpu::Gpu(const GpuConfig &config)
    : config_(config),
      noc_(NocParams{config.nocLatency, config.nocFlitsPerCycle,
                     config.numSms, config.numMemPartitions,
                     config.fastForwardEnabled})
{
    config_.validate();
    for (std::uint32_t p = 0; p < config_.numMemPartitions; ++p) {
        partitions_.push_back(
            std::make_unique<MemoryPartition>(p, config_, noc_));
    }
    for (std::uint32_t s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<SmCore>(s, config_, noc_));

    noc_.setRequestSink([this](const MemRequest &req, Cycle now) {
        partitions_[partitionOf(req.lineAddr)]->receive(req, now);
    });
    noc_.setResponseSink([](const MemRequest &req, Cycle now) {
        VTSIM_ASSERT(req.sink, "response with no sink");
        req.sink->memResponse(req.token, now);
    });
    noc_.setRouter([this](Addr line_addr) { return partitionOf(line_addr); });

    // Register the timed components with the central horizon. The order
    // is also the settle/reset/save order, so it must be deterministic.
    horizon_.add(&noc_);
    for (auto &p : partitions_)
        horizon_.add(p.get());
    for (auto &sm : sms_)
        horizon_.add(sm.get());

    // Scheduled wakeups the clock must not jump past: interval-sampler
    // boundaries and checkpoint boundaries. Both read through `this`
    // so enabling either later needs no re-registration.
    horizon_.addConstraint(
        [](void *ctx, Cycle) -> Cycle {
            const auto *gpu = static_cast<const Gpu *>(ctx);
            return gpu->sampler_ ? gpu->sampler_->nextSampleAt()
                                 : neverCycle;
        },
        this);
    horizon_.addConstraint(
        [](void *ctx, Cycle now) -> Cycle {
            const auto *gpu = static_cast<const Gpu *>(ctx);
            if (gpu->checkpointEvery_ == 0)
                return neverCycle;
            return (now / gpu->checkpointEvery_ + 1) * gpu->checkpointEvery_;
        },
        this);

    // Flatten every component's stats into the telemetry registry.
    // Components have finished registering with their groups by now.
    for (auto &sm : sms_)
        sm->registerTelemetry(registry_);
    for (auto &p : partitions_)
        p->registerTelemetry(registry_);
    registry_.addGroup(noc_.stats());
}

void
Gpu::enableIntervalSampler(Cycle interval, std::ostream &os)
{
    sampler_ = std::make_unique<telemetry::IntervalSampler>(registry_,
                                                            interval, os);
}

void
Gpu::enableIntervalSampler(Cycle interval, const std::string &path)
{
    samplerFile_ = std::make_unique<std::ofstream>(path);
    if (!*samplerFile_)
        VTSIM_FATAL("cannot open stats-interval file '", path, "'");
    enableIntervalSampler(interval, *samplerFile_);
}

void
Gpu::enableTraceJson(const std::string &path)
{
    traceJson_ = std::make_unique<telemetry::TraceJsonWriter>(path);
    attachTraceJson();
}

void
Gpu::enableTraceJson(std::ostream &os)
{
    traceJson_ = std::make_unique<telemetry::TraceJsonWriter>(os);
    attachTraceJson();
}

void
Gpu::attachTraceJson()
{
    for (auto &sm : sms_) {
        traceJson_->processName(sm->id(),
                                "sm" + std::to_string(sm->id()));
        sm->setTraceJson(traceJson_.get());
    }
    for (std::uint32_t p = 0; p < partitions_.size(); ++p) {
        const std::uint32_t pid = numSms() + p;
        traceJson_->processName(pid, "dram_" + std::to_string(p));
        partitions_[p]->setTraceJson(traceJson_.get(), pid);
    }
}

void
Gpu::setCheckpoint(const std::string &path, Cycle every_n)
{
    checkpointPath_ = path;
    checkpointEvery_ = every_n;
}

void
Gpu::reset()
{
    horizon_.resetAll();
    gmem_.reset();
    cycle_ = 0;

    dispatcher_.reset();
    activeLaunch_ = LaunchParams{};
    activeKernelName_.clear();
    activeKernelInstrs_ = 0;
    activeKernelRegs_ = 0;
    activeKernelShared_ = 0;
    before_ = StatsSnapshot{};
    launchStart_ = 0;
    pendingResume_ = false;
    checkpointPath_.clear();
    checkpointEvery_ = 0;
    preemptRequested_.store(false, std::memory_order_relaxed);
    preempted_ = false;

    // Telemetry sinks are per-run wiring, not simulated state: drop
    // them and detach the raw pointers the components hold.
    sampler_.reset();
    samplerFile_.reset();
    if (traceJson_) {
        for (auto &sm : sms_)
            sm->setTraceJson(nullptr);
        for (auto &p : partitions_)
            p->setTraceJson(nullptr, 0);
        traceJson_.reset();
    }
}

bool
Gpu::oracleEnabled() const
{
#ifndef NDEBUG
    return true;
#else
    return config_.horizonOracle;
#endif
}

void
Gpu::takeSample()
{
    // Lazy SM windows may span the boundary; settling them here splits
    // the window without changing any total (sampleN's repeated-addition
    // contract), so fast-forwarded runs sample identical values.
    for (auto &sm : sms_)
        sm->flushFastForward();
    sampler_->sample(cycle_);
}

void
Gpu::buildCheckpoint(std::vector<std::uint8_t> &out)
{
    // Checkpoints are taken at settled points only: flush the lazy SM
    // windows so every save() sees per-cycle-exact state.
    for (auto &sm : sms_)
        sm->flushFastForward();

    Serializer ser;
    std::size_t sec = ser.beginSection("conf");
    saveConfig(ser, config_);
    ser.endSection(sec);

    sec = ser.beginSection("gpux");
    ser.put<std::uint64_t>(cycle_);
    ser.put<std::uint64_t>(launchStart_);
    ser.putString(activeKernelName_);
    ser.put<std::uint64_t>(activeKernelInstrs_);
    ser.put<std::uint32_t>(activeKernelRegs_);
    ser.put<std::uint32_t>(activeKernelShared_);
    ser.put(activeLaunch_.grid);
    ser.put(activeLaunch_.cta);
    ser.putVec(activeLaunch_.params);
    ser.put<std::uint64_t>(dispatcher_ ? dispatcher_->dispatched() : 0);
    before_.save(ser);
    ser.put<std::uint8_t>(sampler_ ? 1 : 0);
    ser.endSection(sec);
    if (sampler_)
        sampler_->save(ser);

    gmem_.save(ser);
    horizon_.saveAll(ser);

    const auto &payload = ser.buffer();
    const std::uint32_t version = 1;
    const std::uint64_t size = payload.size();
    out.clear();
    out.reserve(8 + sizeof(version) + sizeof(size) + payload.size());
    const auto append = [&out](const void *p, std::size_t n) {
        const auto *bytes = static_cast<const std::uint8_t *>(p);
        out.insert(out.end(), bytes, bytes + n);
    };
    append("vtsimCKP", 8);
    append(&version, sizeof(version));
    append(&size, sizeof(size));
    append(payload.data(), payload.size());
}

void
Gpu::saveCheckpoint(std::vector<std::uint8_t> &out)
{
    buildCheckpoint(out);
}

void
Gpu::writeCheckpoint()
{
    std::vector<std::uint8_t> image;
    buildCheckpoint(image);
    std::ofstream out(checkpointPath_,
                      std::ios::binary | std::ios::trunc);
    if (!out)
        VTSIM_FATAL("cannot open checkpoint file '", checkpointPath_, "'");
    out.write(reinterpret_cast<const char *>(image.data()),
              std::streamsize(image.size()));
    if (!out)
        VTSIM_FATAL("short write to checkpoint '", checkpointPath_, "'");
}

LaunchParams
Gpu::restoreCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        VTSIM_FATAL("cannot open checkpoint file '", path, "'");
    std::vector<std::uint8_t> image(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return restoreImage(image.data(), image.size(), "'" + path + "'");
}

LaunchParams
Gpu::restoreCheckpoint(const std::vector<std::uint8_t> &image)
{
    return restoreImage(image.data(), image.size(),
                        "in-memory checkpoint");
}

LaunchParams
Gpu::restoreImage(const std::uint8_t *data, std::size_t size,
                  const std::string &source)
{
    if (size < 8 + sizeof(std::uint32_t) + sizeof(std::uint64_t) ||
        std::memcmp(data, "vtsimCKP", 8) != 0) {
        VTSIM_FATAL(source, " is not a vtsim checkpoint");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, data + 8, sizeof(version));
    if (version != 1)
        VTSIM_FATAL("unsupported checkpoint version ", version, " in ",
                    source);
    std::uint64_t payload_size = 0;
    std::memcpy(&payload_size, data + 8 + sizeof(version),
                sizeof(payload_size));
    const std::size_t header = 8 + sizeof(version) + sizeof(payload_size);
    if (payload_size != size - header)
        VTSIM_FATAL("checkpoint ", source, " is truncated");

    Deserializer des(data + header, payload_size);
    des.sinkResolver = [](void *ctx, std::uint32_t sm_id)
        -> MemResponseSink * {
        return &static_cast<Gpu *>(ctx)->sms_.at(sm_id)->ldst();
    };
    des.sinkCtx = this;

    des.beginSection("conf");
    const GpuConfig saved = restoreConfig(des);
    if (!(saved == config_)) {
        VTSIM_FATAL("checkpoint ", source,
                    " was taken with a different GpuConfig");
    }
    des.endSection();

    des.beginSection("gpux");
    cycle_ = des.get<std::uint64_t>();
    launchStart_ = des.get<std::uint64_t>();
    activeKernelName_ = des.getString();
    activeKernelInstrs_ = des.get<std::uint64_t>();
    activeKernelRegs_ = des.get<std::uint32_t>();
    activeKernelShared_ = des.get<std::uint32_t>();
    des.get(activeLaunch_.grid);
    des.get(activeLaunch_.cta);
    des.getVec(activeLaunch_.params);
    const auto dispatched = des.get<std::uint64_t>();
    before_.restore(des);
    const bool had_sampler = des.get<std::uint8_t>() != 0;
    des.endSection();

    if (had_sampler && !sampler_) {
        VTSIM_FATAL("checkpoint has interval-sampler state; enable the "
                    "same sampling interval before restoring");
    }
    if (!had_sampler && sampler_) {
        VTSIM_FATAL("checkpoint has no interval-sampler state; restore "
                    "without a sampler enabled");
    }
    if (sampler_)
        sampler_->restore(des);

    gmem_.restore(des);
    horizon_.restoreAll(des);
    if (!des.finished())
        VTSIM_FATAL("checkpoint ", source, " has trailing bytes");

    dispatcher_ = std::make_unique<CtaDispatcher>(activeLaunch_);
    dispatcher_->setDispatched(dispatched);
    pendingResume_ = true;
    return activeLaunch_;
}

std::uint32_t
Gpu::partitionOf(Addr line_addr) const
{
    return (line_addr / config_.l2LineSize) % config_.numMemPartitions;
}

bool
Gpu::allIdle() const
{
    for (const auto &sm : sms_)
        if (!sm->idle())
            return false;
    for (const auto &p : partitions_)
        if (!p->idle())
            return false;
    return noc_.idle();
}

void
Gpu::dumpStats(std::ostream &os)
{
    for (auto &sm : sms_)
        sm->flushFastForward();
    for (const StatGroup *group : registry_.groups())
        group->dump(os);
}

void
Gpu::flushCaches()
{
    for (auto &sm : sms_)
        sm->flushCaches();
    for (auto &p : partitions_)
        p->flushCaches();
}

KernelStats
Gpu::launch(const Kernel &kernel, const LaunchParams &launch)
{
    if (launch.numCtas() == 0)
        VTSIM_FATAL("empty grid");
    if (launch.threadsPerCta() == 0)
        VTSIM_FATAL("empty CTA");
    // A pending requestPreempt() survives into this launch on purpose:
    // the job service pre-arms it to stop a run at its first cadence
    // boundary. Only the *outcome* flag resets per launch.
    preempted_ = false;

    if (pendingResume_) {
        // Resuming a restored checkpoint: the machine state is already
        // loaded; verify the caller passed the checkpoint's kernel and
        // grid, then re-attach the live bindings (pointers into caller
        // objects) that a checkpoint cannot carry.
        pendingResume_ = false;
        if (kernel.name() != activeKernelName_ ||
            kernel.size() != activeKernelInstrs_ ||
            kernel.regsPerThread() != activeKernelRegs_ ||
            kernel.sharedBytesPerCta() != activeKernelShared_) {
            VTSIM_FATAL("resume kernel '", kernel.name(),
                        "' does not match the checkpoint's '",
                        activeKernelName_, "'");
        }
        if (!(launch.grid == activeLaunch_.grid) ||
            !(launch.cta == activeLaunch_.cta) ||
            launch.params != activeLaunch_.params) {
            VTSIM_FATAL("resume launch parameters do not match the "
                        "checkpoint's");
        }
        for (auto &sm : sms_)
            sm->rebindKernel(kernel, launch, gmem_);
    } else {
        dispatcher_ = std::make_unique<CtaDispatcher>(launch);
        activeLaunch_ = launch;
        activeKernelName_ = kernel.name();
        activeKernelInstrs_ = kernel.size();
        activeKernelRegs_ = kernel.regsPerThread();
        activeKernelShared_ = kernel.sharedBytesPerCta();
        for (auto &sm : sms_)
            sm->launchKernel(kernel, launch, gmem_);

        // Snapshot counters so stats are per-launch deltas. The
        // snapshot is checkpointed: a resumed launch still reports
        // whole-launch statistics.
        before_ = StatsSnapshot::capture(registry_);
        launchStart_ = cycle_;
        if (sampler_)
            sampler_->beginLaunch(cycle_);
    }
    CtaDispatcher &dispatcher = *dispatcher_;

    const auto total_issued = [this] {
        std::uint64_t total = 0;
        for (const auto &sm : sms_)
            total += sm->instructionsIssued();
        return total;
    };

    const Cycle start = launchStart_;
    const Cycle deadline = start + config_.maxCycles;
    while (true) {
        // CTA work distribution: one CTA per SM per cycle, round-robin.
        bool admitted = false;
        for (auto &sm : sms_) {
            if (dispatcher.hasWork() && sm->canAdmitCta()) {
                sm->admitCta(dispatcher.next(), cycle_);
                admitted = true;
            }
        }

        const std::uint64_t issued_before = total_issued();
        noc_.tick(cycle_);
        for (auto &p : partitions_)
            p->tick(cycle_);
        for (auto &sm : sms_)
            sm->tick(cycle_);

        ++cycle_;
        if (sampler_ && cycle_ == sampler_->nextSampleAt())
            takeSample();
        const bool done = !dispatcher.hasWork() && allIdle();
        // Periodic checkpoints land on multiples of checkpointEvery_,
        // and only strictly mid-kernel: a resumed launch re-enters the
        // loop exactly where the admission phase for this cycle would
        // have run, so the remainder replays bit-identically. The same
        // boundaries are the preemption points: a cadence with an empty
        // path arms preemption without writing files.
        if (checkpointEvery_ != 0 && !done &&
            cycle_ % checkpointEvery_ == 0) {
            if (!checkpointPath_.empty())
                writeCheckpoint();
            if (preemptRequested_.exchange(false,
                                           std::memory_order_relaxed)) {
                preempted_ = true;
                break;
            }
        }
        if (done)
            break;
        if (cycle_ >= deadline) {
            VTSIM_FATAL("watchdog: kernel '", kernel.name(),
                        "' exceeded ", config_.maxCycles, " cycles");
        }

        // Event-horizon fast-forward: when this cycle did nothing and
        // the next admission/issue/completion provably lies in the
        // future, jump straight to it, bulk-replicating the per-cycle
        // accounting the skipped empty ticks would have done. Every
        // statistic is bit-identical to the naive loop's. The horizon
        // itself — the min over component next events, clamped by
        // sampler/checkpoint wakeups — is EventHorizon's job.
        if (!config_.fastForwardEnabled)
            continue;
        if (admitted || total_issued() != issued_before)
            continue; // A busy cycle is never at an event-free horizon.
        if (dispatcher.hasWork()) {
            bool can_admit = false;
            for (const auto &sm : sms_)
                can_admit = can_admit || sm->canAdmitCta();
            if (can_admit)
                continue; // The next iteration admits a CTA.
        }
        const Cycle horizon = horizon_.target(cycle_, deadline);
        if (horizon <= cycle_)
            continue;
        horizon_.advance(cycle_, horizon, oracleEnabled());
        cycle_ = horizon;
        if (cycle_ >= deadline) {
            VTSIM_FATAL("watchdog: kernel '", kernel.name(),
                        "' exceeded ", config_.maxCycles, " cycles");
        }
        if (sampler_ && cycle_ == sampler_->nextSampleAt())
            takeSample();
        if (checkpointEvery_ != 0 && cycle_ % checkpointEvery_ == 0) {
            if (!checkpointPath_.empty())
                writeCheckpoint();
            if (preemptRequested_.exchange(false,
                                           std::memory_order_relaxed)) {
                preempted_ = true;
                break;
            }
        }
    }

    // Settle lazily skipped per-SM ticks before reading any statistic.
    for (auto &sm : sms_)
        sm->flushFastForward();
    // A preempted launch is mid-flight: no final sample, no end-of-run
    // checkpoint — the service saves an explicit image and the resumed
    // launch finishes both.
    if (sampler_ && !preempted_)
        sampler_->finalSample(cycle_);
    if (checkpointEvery_ == 0 && !checkpointPath_.empty() && !preempted_)
        writeCheckpoint();

    KernelStats stats;
    stats.cycles = cycle_ - start;
    StatsSnapshot::capture(registry_).delta(before_, registry_, stats);

    VTSIM_ASSERT(preempted_ || stats.ctasCompleted == launch.numCtas(),
                 "CTA completion mismatch: ", stats.ctasCompleted, " of ",
                 launch.numCtas());
    stats.ipc = stats.cycles
                    ? double(stats.warpInstructions) / stats.cycles
                    : 0.0;
    return stats;
}

} // namespace vtsim
