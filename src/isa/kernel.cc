#include "isa/kernel.hh"

#include "common/log.hh"

namespace vtsim {

Kernel::Kernel(std::string name, std::vector<Instruction> instructions,
               std::uint32_t regs_per_thread, std::uint32_t shared_bytes,
               std::map<Pc, std::string> labels)
    : name_(std::move(name)), instrs_(std::move(instructions)),
      regsPerThread_(regs_per_thread), sharedBytes_(shared_bytes),
      labels_(std::move(labels))
{
    verify();
    micro_ = buildMicroProgram(instrs_);
}

std::string
Kernel::labelAt(Pc pc) const
{
    auto it = labels_.find(pc);
    return it == labels_.end() ? std::string() : it->second;
}

void
Kernel::verify() const
{
    if (instrs_.empty())
        VTSIM_FATAL("kernel '", name_, "' has no instructions");
    if (regsPerThread_ == 0)
        VTSIM_FATAL("kernel '", name_, "' declares zero registers");

    bool has_exit = false;
    for (Pc pc = 0; pc < instrs_.size(); ++pc) {
        const Instruction &inst = instrs_[pc];
        if (inst.isExit())
            has_exit = true;
        if (inst.isBranch()) {
            if (inst.branchTarget >= instrs_.size()) {
                VTSIM_FATAL("kernel '", name_, "': branch at pc ", pc,
                            " targets out-of-range pc ", inst.branchTarget);
            }
            if (inst.reconvergePc == invalidPc ||
                inst.reconvergePc > instrs_.size()) {
                VTSIM_FATAL("kernel '", name_, "': branch at pc ", pc,
                            " lacks a valid reconvergence pc");
            }
        }
        auto check_reg = [&](RegIndex r) {
            if (r != noReg && r >= regsPerThread_) {
                VTSIM_FATAL("kernel '", name_, "': pc ", pc, " uses r", r,
                            " but only ", regsPerThread_,
                            " registers are declared");
            }
        };
        check_reg(inst.dst);
        for (auto s : inst.src)
            check_reg(s);
    }
    if (!has_exit)
        VTSIM_FATAL("kernel '", name_, "' has no EXIT instruction");
    if (!instrs_.back().isExit() && !instrs_.back().isBranch()) {
        // Falling off the end is a programming error we catch statically.
        VTSIM_FATAL("kernel '", name_,
                    "' does not end in EXIT or an unconditional branch");
    }
}

} // namespace vtsim
