#include "fabric/line_server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logger.hh"
#include "service/json.hh"

namespace vtsim::fabric {

namespace {

std::string
oneLineError(const std::string &message)
{
    service::Json::Object o;
    o["ok"] = service::Json(false);
    o["error"] = service::Json(message);
    return service::Json(std::move(o)).dump();
}

} // namespace

LineServer::LineServer(LineServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler))
{}

LineServer::~LineServer()
{
    requestStop();
    serveJoin();
    for (const int fd : listenFds_)
        ::close(fd);
    if (!config_.unixPath.empty()) {
        std::error_code ec;
        std::filesystem::remove(config_.unixPath, ec);
    }
}

void
LineServer::start()
{
    if (config_.unixPath.empty() && !config_.tcpEnabled)
        throw TransportError(config_.name +
                             ": no listener configured");
    if (!config_.unixPath.empty())
        listenFds_.push_back(listenUnix(config_.unixPath));
    if (config_.tcpEnabled) {
        const int fd = listenTcp(config_.tcp);
        tcpPort_ = boundPort(fd);
        listenFds_.push_back(fd);
    }
}

void
LineServer::serve()
{
    std::vector<pollfd> pfds;
    for (const int fd : listenFds_)
        pfds.push_back(pollfd{fd, POLLIN, 0});
    while (!stop_.load(std::memory_order_relaxed)) {
        for (auto &p : pfds)
            p.revents = 0;
        const int rc = ::poll(pfds.data(), nfds_t(pfds.size()), 500);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            logging::error(config_.name.c_str(), "poll(): ",
                           std::strerror(errno));
            break;
        }
        if (rc == 0)
            continue;
        for (const pollfd &p : pfds) {
            if (!(p.revents & (POLLIN | POLLERR | POLLHUP)))
                continue;
            const int fd = ::accept(p.fd, nullptr, nullptr);
            if (fd < 0) {
                if (stop_.load(std::memory_order_relaxed))
                    return serveJoin();
                if (errno == EINTR || errno == ECONNABORTED ||
                    errno == EAGAIN || errno == EWOULDBLOCK) {
                    // Transient: the connection died between poll and
                    // accept, or another thread raced us to it.
                    continue;
                }
                if (errno == EMFILE || errno == ENFILE) {
                    // Descriptor exhaustion is load, not protocol: back
                    // off briefly so the kernel queue drains and an
                    // in-flight connection can close, instead of
                    // spinning through accept_error with no delay.
                    logging::warn(config_.name.c_str(),
                                  "accept(): ", std::strerror(errno),
                                  " (backing off 50ms)");
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
                    continue;
                }
                logging::error(config_.name.c_str(), "accept(): ",
                               std::strerror(errno));
                if (errorHook_)
                    errorHook_(std::strerror(errno));
                return serveJoin();
            }
            if (stop_.load(std::memory_order_relaxed)) {
                ::close(fd);
                return serveJoin();
            }
            std::lock_guard<std::mutex> lk(connMu_);
            connFds_.insert(fd);
            connections_.emplace_back(
                [this, fd] { serveConnection(fd); });
        }
    }
    serveJoin();
}

void
LineServer::serveJoin()
{
    // Long-lived connections (heartbeat sessions, pollers) sit in
    // recv() indefinitely: shut their sockets down so every connection
    // thread unblocks, then join. In-flight replies still finish — a
    // handler mid-write is past the recv this interrupts. The join
    // happens outside connMu_: exiting threads take it to deregister
    // their fd.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lk(connMu_);
        for (const int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        threads.swap(connections_);
    }
    for (auto &t : threads) {
        if (t.joinable())
            t.join();
    }
}

void
LineServer::requestStop()
{
    stop_.store(true, std::memory_order_relaxed);
    // Unblocks accept()/poll(); shutdown(2) is async-signal-safe, so a
    // SIGTERM handler may call requestStop directly.
    for (const int fd : listenFds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
LineServer::serveConnection(int fd)
{
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break; // Disconnect (mid-request included): just drop it.
        buffer.append(chunk, std::size_t(n));
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            bool keep = false;
            try {
                keep = dispatchLine(fd, line);
            } catch (const std::exception &e) {
                // A peer that vanished mid-reply (EPIPE from
                // sendLine) must not take the thread down; drop the
                // connection and keep serving the rest.
                logging::debug(config_.name.c_str(),
                               "connection dropped: ", e.what());
            }
            if (!keep) {
                open = false;
                break;
            }
        }
        buffer.erase(0, start);
        if (buffer.size() > kMaxLineBytes) {
            // An unterminated line already over the cap: reject it
            // without waiting for (or buffering) the rest.
            try {
                sendLine(fd, oneLineError(
                                 "request exceeds the 64 KiB line "
                                 "limit"));
            } catch (const std::exception &) {
            }
            break;
        }
    }
    {
        std::lock_guard<std::mutex> lk(connMu_);
        connFds_.erase(fd);
    }
    ::close(fd);
}

bool
LineServer::dispatchLine(int fd, const std::string &line)
{
    if (line.size() > kMaxLineBytes) {
        sendLine(fd,
                 oneLineError("request exceeds the 64 KiB line limit"));
        return false;
    }
    if (!config_.authToken.empty()) {
        // The token rides inside the request object; a line that does
        // not even parse cannot be authenticated, so it is refused the
        // same way — before any handler sees it.
        bool authorized = false;
        try {
            const service::Json doc = service::Json::parse(line);
            const service::Json *token = doc.find("token");
            authorized = token && token->isString() &&
                         token->asString() == config_.authToken;
        } catch (const std::exception &) {
            authorized = false;
        }
        if (!authorized) {
            sendLine(fd, oneLineError("unauthorized"));
            return false;
        }
    }
    return handler_(fd, line);
}

} // namespace vtsim::fabric
