/**
 * @file
 * Deterministic pseudo-random number generator for workload inputs.
 *
 * vtsim never uses std::rand or hardware entropy: every simulation must be
 * exactly reproducible from its seed so that baseline and Virtual Thread
 * runs see identical input data.
 */

#ifndef VTSIM_COMMON_RNG_HH
#define VTSIM_COMMON_RNG_HH

#include <cstdint>

namespace vtsim {

/**
 * xoshiro256** generator. Small, fast, and good enough for synthesising
 * benchmark inputs and property-test stimulus.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t state_[4];
};

} // namespace vtsim

#endif // VTSIM_COMMON_RNG_HH
