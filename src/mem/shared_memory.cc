#include "mem/shared_memory.hh"

#include <algorithm>

#include "common/log.hh"

namespace vtsim {

SharedMemoryModel::SharedMemoryModel(std::uint32_t latency,
                                     const std::string &name)
    : latency_(latency), stats_(name)
{
    stats_.addCounter("accesses", &accesses_, "warp shared-mem accesses");
    stats_.addCounter("conflict_passes", &conflictPasses_,
                      "extra serialised passes from bank conflicts");
}

Cycle
SharedMemoryModel::access(std::uint32_t passes, Cycle now)
{
    VTSIM_ASSERT(passes >= 1, "shared access with zero passes");
    ++accesses_;
    conflictPasses_ += passes - 1;
    const Cycle start = std::max(now, portReadyAt_);
    // The port is occupied for one cycle per pass; the result returns a
    // fixed pipe latency after the last pass.
    portReadyAt_ = start + passes;
    return start + passes - 1 + latency_;
}

} // namespace vtsim
