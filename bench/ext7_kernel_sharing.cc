/**
 * @file
 * EXT-7 (beyond the paper): concurrent-kernel execution. Co-run mixes
 * of one memory-bound and one compute-leaning benchmark on the VT
 * machine under the three CTA-slot sharing policies
 * (Gpu::launchConcurrent):
 *
 *   spatial  — SMs statically partitioned between the grids
 *   vt-fill  — the CTA dispatcher fills any SM's free VT slots from
 *              whichever grid has work (lowest grid index first)
 *   preempt  — grid 0 is latency-critical: at swap boundaries it
 *              force-preempts the co-runner's active CTAs
 *
 * Per mix the table reports system throughput (aggregate IPC and STP,
 * the sum of per-grid speedups over solo), fairness (ANTT, the mean
 * per-grid normalized turnaround), and the QoS view: each grid's
 * slowdown vs running alone on the whole machine. Solo rows use the
 * identical config, so every slowdown is an apples-to-apples ratio.
 *
 * --share-policy spatial|vt-fill|preempt restricts the policy set;
 * --stats-json emits machine-readable per-grid stats (the "grids"
 * array, validated by scripts/validate_stats_json.py), consumed by
 * scripts/bench_sharing.py for the BENCH_sharing.json perf smoke.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/log.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    // Memory-bound + compute-leaning pairs (TAB-2 classes), plus one
    // three-way mix to exercise more than two resident grids.
    const std::vector<std::vector<std::string>> mixes = {
        {"vecadd", "matmul"},
        {"spmv", "blackscholes"},
        {"stencil", "bitonic"},
        {"histogram", "matmul"},
        {"vecadd", "stencil", "matmul"},
    };
    std::vector<SharePolicy> policies = {
        SharePolicy::Spatial, SharePolicy::VtFill, SharePolicy::Preempt};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--share-policy") == 0 &&
            i + 1 < argc) {
            SharePolicy one;
            if (!parseSharePolicy(argv[i + 1], one)) {
                VTSIM_FATAL("unknown --share-policy '", argv[i + 1],
                            "' (spatial | vt-fill | preempt)");
            }
            policies = {one};
        }
    }

    printHeader("EXT-7", "concurrent-kernel sharing policies "
                         "(beyond the paper)");

    GpuConfig vt = GpuConfig::fermiLike();
    vt.vtEnabled = true;

    // One batch: per mix, each workload solo, then one co-run per
    // policy. runAll parallelizes across --jobs workers.
    std::vector<RunSpec> specs;
    std::vector<std::size_t> mix_base;
    for (const auto &mix : mixes) {
        mix_base.push_back(specs.size());
        for (const auto &name : mix) {
            RunSpec solo;
            solo.workload = name;
            solo.config = vt;
            solo.scale = benchScale;
            specs.push_back(std::move(solo));
        }
        for (const SharePolicy policy : policies) {
            RunSpec co;
            co.workload = mix.front();
            co.config = vt;
            co.scale = benchScale;
            co.kernels = mix;
            co.sharePolicy = policy;
            specs.push_back(std::move(co));
        }
    }
    const auto results = runAll(specs, argc, argv);

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto &mix = mixes[m];
        const std::size_t base = mix_base[m];

        std::string label;
        for (const auto &name : mix)
            label += (label.empty() ? "" : "+") + name;
        std::printf("\n-- mix: %s --\n", label.c_str());
        std::printf("%-10s %7s %6s %6s", "policy", "aggIPC", "STP",
                    "ANTT");
        for (const auto &name : mix)
            std::printf("  slow(%s)", name.c_str());
        std::printf("\n");

        std::vector<std::uint64_t> solo_cycles;
        double solo_ipc_sum = 0.0;
        for (std::size_t g = 0; g < mix.size(); ++g) {
            solo_cycles.push_back(results[base + g].stats.cycles);
            solo_ipc_sum += results[base + g].stats.ipc;
        }
        std::printf("%-10s %7.3f %6s %6s", "solo", solo_ipc_sum, "-",
                    "-");
        for (std::size_t g = 0; g < mix.size(); ++g)
            std::printf("  %8.2f", 1.0);
        std::printf("   (IPC sum of isolated runs)\n");

        for (std::size_t p = 0; p < policies.size(); ++p) {
            const RunResult &co = results[base + mix.size() + p];
            // Per-grid slowdown: co-run turnaround over solo cycles.
            // Every grid occupies the machine for the whole co-run, so
            // its turnaround is the aggregate cycle count.
            double stp = 0.0;
            double antt = 0.0;
            std::vector<double> slowdowns;
            for (std::size_t g = 0; g < mix.size(); ++g) {
                const double slowdown =
                    double(co.stats.cycles) / double(solo_cycles[g]);
                slowdowns.push_back(slowdown);
                stp += 1.0 / slowdown;
                antt += slowdown;
            }
            antt /= double(mix.size());
            std::printf("%-10s %7.3f %6.3f %6.2f",
                        toString(policies[p]).c_str(), co.stats.ipc,
                        stp, antt);
            for (const double slowdown : slowdowns)
                std::printf("  %8.2f", slowdown);
            std::printf("\n");
        }
    }
    std::printf("\nSTP = sum of per-grid speedups (upper bound = grid "
                "count); ANTT = mean per-grid slowdown (min 1.0).\n"
                "slow(k) = co-run cycles / solo cycles of k — the QoS "
                "hit k takes from sharing.\n");
    return 0;
}
