#include "core/virtual_thread.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "common/trace.hh"

namespace vtsim {

std::string
toString(CtaState state)
{
    switch (state) {
      case CtaState::Active: return "active";
      case CtaState::SwappingOut: return "swapping-out";
      case CtaState::Inactive: return "inactive";
      case CtaState::SwappingIn: return "swapping-in";
    }
    return "?";
}

VirtualThreadManager::VirtualThreadManager(const GpuConfig &config,
                                           VtCtaQuery &query, SmId sm_id)
    : config_(config), query_(query),
      stats_("sm" + std::to_string(sm_id) + ".vt")
{
    stats_.addCounter("swap_outs", &swapOuts_, "CTA swap-outs");
    stats_.addCounter("swap_ins", &swapIns_, "CTA swap-ins");
    stats_.addCounter("fresh_activations", &freshActivations_,
                      "CTAs activated straight from launch");
    stats_.addCounter("swap_in_not_ready", &swapInNotReady_,
                      "swap-ins of CTAs with data still outstanding");
    stats_.addScalar("resident_ctas", &residentSamples_,
                     "resident CTAs sampled per cycle");
    stats_.addScalar("active_ctas", &activeSamples_,
                     "active CTAs sampled per cycle");
}

void
VirtualThreadManager::configureKernel(const CtaFootprint &footprint)
{
    VTSIM_ASSERT(ctas_.empty(), "kernel reconfigured with CTAs resident");
    VTSIM_ASSERT(footprint.warpsPerCta > 0 && footprint.threadsPerCta > 0,
                 "degenerate CTA footprint");
    fp_ = footprint;
}

bool
VirtualThreadManager::activeSlotFree() const
{
    return activeCtas_ < std::min(config_.effMaxCtasPerSm(),
                                  dynamicCap_) &&
           warpsActive_ + fp_.warpsPerCta <= config_.effMaxWarpsPerSm() &&
           threadsActive_ + fp_.threadsPerCta <=
               config_.effMaxThreadsPerSm();
}

bool
VirtualThreadManager::canAdmit() const
{
    VTSIM_ASSERT(fp_.warpsPerCta > 0, "canAdmit before configureKernel");
    // Capacity limit binds in both machines: registers and shared memory
    // are physically allocated per resident CTA.
    if (regsInUse_ + fp_.regsPerCta > config_.registersPerSm)
        return false;
    if (sharedInUse_ + fp_.sharedPerCta > config_.sharedMemPerSm)
        return false;

    if (!config_.vtEnabled) {
        // Baseline: the scheduling limit also gates admission.
        return activeSlotFree();
    }
    // VT: admit past the scheduling limit, up to the virtual-CTA budget.
    const std::uint32_t limit =
        config_.vtMaxVirtualCtasPerSm
            ? config_.vtMaxVirtualCtasPerSm
            : std::numeric_limits<std::uint32_t>::max();
    return ctas_.size() < limit;
}

void
VirtualThreadManager::activate(CtaRec &rec, Cycle now)
{
    VTSIM_ASSERT(activeSlotFree(), "activate without a free slot");
    ++activeCtas_;
    warpsActive_ += fp_.warpsPerCta;
    threadsActive_ += fp_.threadsPerCta;
    rec.stalledFor = 0;
    if (rec.everSwapped) {
        // Restoring saved scheduling state costs the swap-in latency.
        rec.state = CtaState::SwappingIn;
        rec.transitionAt = now + config_.vtSwapInLatency;
        ++swapIns_;
    } else {
        rec.state = CtaState::Active;
        ++freshActivations_;
    }
}

void
VirtualThreadManager::releaseActiveSlot()
{
    VTSIM_ASSERT(activeCtas_ > 0, "active slot underflow");
    --activeCtas_;
    warpsActive_ -= fp_.warpsPerCta;
    threadsActive_ -= fp_.threadsPerCta;
}

void
VirtualThreadManager::onAdmit(VirtualCtaId id, Cycle now)
{
    VTSIM_ASSERT(canAdmit(), "onAdmit without canAdmit");
    VTSIM_ASSERT(!ctas_.count(id), "CTA ", id, " already resident");

    regsInUse_ += fp_.regsPerCta;
    sharedInUse_ += fp_.sharedPerCta;

    CtaRec rec;
    rec.age = nextAge_++;
    rec.state = CtaState::Inactive;
    auto [it, inserted] = ctas_.emplace(id, rec);
    VTSIM_ASSERT(inserted, "duplicate CTA id");

    VTSIM_TRACE(TraceFlag::Cta, now, stats_.name(), "admit cta ", id,
                " (resident ", ctas_.size(), ")");
    if (activeSlotFree())
        activate(it->second, now);
}

void
VirtualThreadManager::onCtaFinished(VirtualCtaId id, Cycle now)
{
    auto it = ctas_.find(id);
    VTSIM_ASSERT(it != ctas_.end(), "finish of unknown CTA ", id);
    VTSIM_ASSERT(it->second.state == CtaState::Active,
                 "CTA ", id, " finished while ", toString(it->second.state));
    VTSIM_TRACE(TraceFlag::Cta, now, stats_.name(), "finish cta ", id);
    releaseActiveSlot();
    regsInUse_ -= fp_.regsPerCta;
    sharedInUse_ -= fp_.sharedPerCta;
    ctas_.erase(it);

    // The freed slot goes to the best inactive CTA right away.
    const VirtualCtaId incoming = pickSwapIn(false);
    if (incoming != invalidId && activeSlotFree())
        activate(ctas_.at(incoming), now);
}

bool
VirtualThreadManager::isIssuable(VirtualCtaId id) const
{
    const auto it = ctas_.find(id);
    return it != ctas_.end() && it->second.state == CtaState::Active;
}

CtaState
VirtualThreadManager::state(VirtualCtaId id) const
{
    const auto it = ctas_.find(id);
    VTSIM_ASSERT(it != ctas_.end(), "state() of unknown CTA ", id);
    return it->second.state;
}

VirtualCtaId
VirtualThreadManager::pickSwapIn(bool require_ready) const
{
    VirtualCtaId best = invalidId;
    bool best_ready = false;
    std::uint64_t best_age = ~0ull;
    for (const auto &[id, rec] : ctas_) {
        if (rec.state != CtaState::Inactive)
            continue;
        const bool ready = query_.ctaPendingOffChip(id) == 0;
        if (config_.vtSwapInPolicy == VtSwapInPolicy::ReadyFirst) {
            // Prefer ready CTAs; oldest first within each class.
            if (best == invalidId || (ready && !best_ready) ||
                (ready == best_ready && rec.age < best_age)) {
                best = id;
                best_ready = ready;
                best_age = rec.age;
            }
        } else {
            // OldestFirst ablation: strict age order.
            if (rec.age < best_age) {
                best = id;
                best_ready = ready;
                best_age = rec.age;
            }
        }
    }
    // Under the paper's policy a swap only pays off when the incoming CTA
    // is ready: never swap in a CTA that would immediately stall. Filling
    // an already-free slot (require_ready == false) takes any CTA.
    if (require_ready &&
        config_.vtSwapInPolicy == VtSwapInPolicy::ReadyFirst &&
        !best_ready) {
        return invalidId;
    }
    return best;
}

bool
VirtualThreadManager::swapTriggered(VirtualCtaId id,
                                    const CtaRec &rec) const
{
    if (rec.stalledFor < config_.vtStallThreshold)
        return false;
    switch (config_.vtSwapTrigger) {
      case VtSwapTrigger::AllWarpsStalled:
        return query_.ctaFullyStalled(id) &&
               query_.ctaAnyWarpLongStalled(id);
      case VtSwapTrigger::AnyWarpStalled:
        return query_.ctaAnyWarpLongStalled(id);
    }
    return false;
}

void
VirtualThreadManager::tick(Cycle now)
{
    residentSamples_.sample(ctas_.size());
    activeSamples_.sample(activeCtas_);

    if (!config_.vtEnabled)
        return;

    // 1. Complete in-flight transitions.
    for (auto &[id, rec] : ctas_) {
        if (rec.transitionAt > now)
            continue;
        if (rec.state == CtaState::SwappingOut) {
            rec.state = CtaState::Inactive;
        } else if (rec.state == CtaState::SwappingIn) {
            rec.state = CtaState::Active;
            rec.stalledFor = 0;
        }
    }

    // 2. Fill any free active slots (e.g. freed by admissions racing).
    while (activeSlotFree()) {
        const VirtualCtaId incoming = pickSwapIn(false);
        if (incoming == invalidId)
            break;
        activate(ctas_.at(incoming), now);
    }

    // 3. Track stall streaks of active CTAs. The streak follows the
    //    configured trigger's own condition so the AnyWarpStalled
    //    ablation genuinely fires earlier than the paper's policy.
    for (auto &[id, rec] : ctas_) {
        if (rec.state != CtaState::Active)
            continue;
        const bool stalled =
            config_.vtSwapTrigger == VtSwapTrigger::AnyWarpStalled
                ? query_.ctaAnyWarpLongStalled(id)
                : query_.ctaFullyStalled(id);
        if (stalled)
            ++rec.stalledFor;
        else
            rec.stalledFor = 0;
    }

    // 4. At most one swap pair per cycle (one context-switch port).
    VirtualCtaId victim = invalidId;
    std::uint32_t victim_stall = 0;
    for (const auto &[id, rec] : ctas_) {
        if (rec.state != CtaState::Active)
            continue;
        if (swapTriggered(id, rec) && rec.stalledFor >= victim_stall) {
            victim = id;
            victim_stall = rec.stalledFor;
        }
    }
    if (victim == invalidId)
        return;
    const VirtualCtaId incoming = pickSwapIn(true);
    if (incoming == invalidId)
        return; // Nobody to run instead: swapping out would only hurt.

    VTSIM_TRACE(TraceFlag::Swap, now, stats_.name(), "swap out cta ",
                victim, " (stalled ", ctas_.at(victim).stalledFor,
                " cycles), swap in cta ", incoming);
    CtaRec &out = ctas_.at(victim);
    out.state = CtaState::SwappingOut;
    out.transitionAt = now + config_.vtSwapOutLatency;
    out.everSwapped = true;
    ++swapOuts_;
    releaseActiveSlot();

    CtaRec &in = ctas_.at(incoming);
    if (query_.ctaPendingOffChip(incoming) != 0)
        ++swapInNotReady_;
    VTSIM_ASSERT(activeSlotFree(), "no slot for incoming CTA");
    ++activeCtas_;
    warpsActive_ += fp_.warpsPerCta;
    threadsActive_ += fp_.threadsPerCta;
    in.stalledFor = 0;
    in.everSwapped = true;
    in.state = CtaState::SwappingIn;
    // Restore begins after the outgoing state is saved.
    in.transitionAt = now + config_.vtSwapOutLatency +
                      config_.vtSwapInLatency;
    ++swapIns_;
}

} // namespace vtsim
