#include "telemetry/interval_sampler.hh"

#include <cstdio>

#include "common/log.hh"

namespace vtsim::telemetry {

namespace {

/** Shortest round-trippable decimal form of @p v. */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the shortest representation that parses back exactly.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[40];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(probe, "%lf", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

} // namespace

IntervalSampler::IntervalSampler(const StatRegistry &registry,
                                 Cycle interval, std::ostream &os)
    : registry_(registry), interval_(interval), os_(os)
{
    VTSIM_ASSERT(interval_ > 0, "sampling interval must be positive");
}

void
IntervalSampler::beginLaunch(Cycle start)
{
    launchStart_ = start;
    lastSampleAt_ = start;
    nextSampleAt_ = start + interval_;
    sampleIndex_ = 0;
    captureBaseline();
}

void
IntervalSampler::captureBaseline()
{
    registry_.collectScalars(prevScalars_);

    const auto &dists = registry_.dists();
    prevDistCounts_.resize(dists.size());
    prevDistSums_.resize(dists.size());
    for (std::size_t i = 0; i < dists.size(); ++i) {
        prevDistCounts_[i] = dists[i].stat->count();
        prevDistSums_[i] = dists[i].stat->sum();
    }

    const auto &hists = registry_.hists();
    prevHists_.resize(hists.size());
    for (std::size_t i = 0; i < hists.size(); ++i) {
        const Histogram &h = *hists[i].stat;
        auto &base = prevHists_[i];
        base.buckets.resize(h.bucketCount());
        for (std::uint32_t b = 0; b < h.bucketCount(); ++b)
            base.buckets[b] = h.bucket(b);
        base.overflow = h.overflow();
        base.total = h.total();
    }
}

void
IntervalSampler::sample(Cycle now)
{
    VTSIM_ASSERT(now == nextSampleAt_,
                 "sample boundary missed: now=", now, " expected=",
                 nextSampleAt_);
    emit(now);
    lastSampleAt_ = now;
    nextSampleAt_ = now + interval_;
}

void
IntervalSampler::finalSample(Cycle now)
{
    if (now <= lastSampleAt_)
        return;
    emit(now);
    lastSampleAt_ = now;
    nextSampleAt_ = now + interval_;
}

void
IntervalSampler::save(Serializer &ser) const
{
    const std::size_t sec = ser.beginSection("smpl");
    ser.put<std::uint64_t>(interval_);
    ser.put<std::uint64_t>(launchStart_);
    ser.put<std::uint64_t>(lastSampleAt_);
    ser.put<std::uint64_t>(nextSampleAt_);
    ser.put<std::uint64_t>(sampleIndex_);
    ser.putVec(prevScalars_);
    ser.putVec(prevDistCounts_);
    ser.putVec(prevDistSums_);
    ser.put<std::uint64_t>(prevHists_.size());
    for (const HistBaseline &base : prevHists_) {
        ser.putVec(base.buckets);
        ser.put(base.overflow);
        ser.put(base.total);
    }
    ser.endSection(sec);
}

void
IntervalSampler::restore(Deserializer &des)
{
    des.beginSection("smpl");
    const auto interval = des.get<std::uint64_t>();
    VTSIM_ASSERT(interval == interval_,
                 "checkpoint sampled every ", interval,
                 " cycles, this sampler every ", interval_);
    launchStart_ = des.get<std::uint64_t>();
    lastSampleAt_ = des.get<std::uint64_t>();
    nextSampleAt_ = des.get<std::uint64_t>();
    sampleIndex_ = des.get<std::uint64_t>();
    des.getVec(prevScalars_);
    des.getVec(prevDistCounts_);
    des.getVec(prevDistSums_);
    prevHists_.resize(des.get<std::uint64_t>());
    for (HistBaseline &base : prevHists_) {
        des.getVec(base.buckets);
        des.get(base.overflow);
        des.get(base.total);
    }
    des.endSection();
}

void
IntervalSampler::emit(Cycle now)
{
    os_ << "{\"sample\":" << sampleIndex_++
        << ",\"cycle\":" << (now - launchStart_)
        << ",\"interval\":" << (now - lastSampleAt_);

    os_ << ",\"stats\":{";
    bool first = true;
    const auto &scalars = registry_.scalars();
    for (std::size_t i = 0; i < scalars.size(); ++i) {
        const std::uint64_t cur = scalars[i].read();
        const std::uint64_t delta = cur - prevScalars_[i];
        prevScalars_[i] = cur;
        if (delta == 0)
            continue;
        os_ << (first ? "" : ",") << '"' << scalars[i].path << "\":"
            << delta;
        first = false;
    }
    os_ << '}';

    os_ << ",\"dists\":{";
    first = true;
    const auto &dists = registry_.dists();
    for (std::size_t i = 0; i < dists.size(); ++i) {
        const std::uint64_t count = dists[i].stat->count();
        const double sum = dists[i].stat->sum();
        const std::uint64_t dcount = count - prevDistCounts_[i];
        const double dsum = sum - prevDistSums_[i];
        prevDistCounts_[i] = count;
        prevDistSums_[i] = sum;
        if (dcount == 0)
            continue;
        os_ << (first ? "" : ",") << '"' << dists[i].path
            << "\":{\"count\":" << dcount << ",\"sum\":"
            << formatDouble(dsum) << '}';
        first = false;
    }
    os_ << '}';

    os_ << ",\"hists\":{";
    first = true;
    const auto &hists = registry_.hists();
    std::vector<std::uint64_t> dbuckets;
    for (std::size_t i = 0; i < hists.size(); ++i) {
        const Histogram &h = *hists[i].stat;
        auto &base = prevHists_[i];
        const std::uint64_t total = h.total();
        const std::uint64_t dtotal = total - base.total;
        dbuckets.resize(h.bucketCount());
        for (std::uint32_t b = 0; b < h.bucketCount(); ++b) {
            dbuckets[b] = h.bucket(b) - base.buckets[b];
            base.buckets[b] = h.bucket(b);
        }
        const std::uint64_t doverflow = h.overflow() - base.overflow;
        base.overflow = h.overflow();
        base.total = total;
        if (dtotal == 0)
            continue;
        os_ << (first ? "" : ",") << '"' << hists[i].path
            << "\":{\"total\":" << dtotal << ",\"p50\":"
            << formatDouble(Histogram::percentileOf(
                   dbuckets, doverflow, h.bucketWidth(), 0.50))
            << ",\"p95\":"
            << formatDouble(Histogram::percentileOf(
                   dbuckets, doverflow, h.bucketWidth(), 0.95))
            << '}';
        first = false;
    }
    os_ << "}}\n";
}

} // namespace vtsim::telemetry
