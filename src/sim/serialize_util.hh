/**
 * @file
 * Save/restore helpers for the statistics classes.
 *
 * StatGroup holds const pointers, so checkpointing goes through the
 * owning component, which serializes its own stat members with these
 * helpers. Kept out of stats.hh so the stats layer stays independent of
 * the checkpoint layer.
 */

#ifndef VTSIM_SIM_SERIALIZE_UTIL_HH
#define VTSIM_SIM_SERIALIZE_UTIL_HH

#include "sim/serializer.hh"
#include "stats/stats.hh"

namespace vtsim {

inline void
saveStat(Serializer &ser, const Counter &c)
{
    ser.put<std::uint64_t>(c.value());
}

inline void
restoreStat(Deserializer &des, Counter &c)
{
    c.restoreState(des.get<std::uint64_t>());
}

inline void
saveStat(Serializer &ser, const ScalarStat &s)
{
    ser.put<std::uint64_t>(s.count());
    ser.put<double>(s.sum());
    ser.put<double>(s.rawMin());
    ser.put<double>(s.rawMax());
}

inline void
restoreStat(Deserializer &des, ScalarStat &s)
{
    const auto count = des.get<std::uint64_t>();
    const auto sum = des.get<double>();
    const auto min = des.get<double>();
    const auto max = des.get<double>();
    s.restoreState(count, sum, min, max);
}

inline void
saveStat(Serializer &ser, const Histogram &h)
{
    std::vector<std::uint64_t> buckets(h.bucketCount());
    for (std::uint32_t i = 0; i < h.bucketCount(); ++i)
        buckets[i] = h.bucket(i);
    ser.putVec(buckets);
    ser.put<std::uint64_t>(h.overflow());
    ser.put<std::uint64_t>(h.total());
}

inline void
restoreStat(Deserializer &des, Histogram &h)
{
    std::vector<std::uint64_t> buckets;
    des.getVec(buckets);
    const auto overflow = des.get<std::uint64_t>();
    const auto total = des.get<std::uint64_t>();
    h.restoreState(buckets, overflow, total);
}

} // namespace vtsim

#endif // VTSIM_SIM_SERIALIZE_UTIL_HH
