/**
 * @file
 * TAB-3: Virtual Thread hardware storage overhead — the bytes of
 * scheduling state kept per virtual CTA context, versus what a naive
 * register-copying preemption scheme would move. This is the accounting
 * behind the paper's claim that swaps are cheap because registers and
 * shared memory never move.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "core/overhead_model.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("TAB-3", "VT storage overhead per SM");
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;

    // Representative kernel shapes: small streaming CTA, mid-size CTA,
    // large tiled CTA.
    struct Shape
    {
        const char *name;
        std::uint32_t warpsPerCta;
        std::uint32_t regsPerThread;
    };
    const Shape shapes[] = {
        {"streaming (64 thr, 16 regs)", 2, 16},
        {"mid (128 thr, 20 regs)", 4, 20},
        {"tiled (256 thr, 34 regs)", 8, 34},
    };

    for (const Shape &s : shapes) {
        std::printf("\n[%s]\n", s.name);
        const VtOverhead o =
            computeOverhead(cfg, s.warpsPerCta, s.regsPerThread);
        printOverhead(std::cout, o);
        std::cout.flush();
        const double ratio = o.naiveSwapBytesPerCta
            ? double(o.bytesPerCtaContext) / double(o.naiveSwapBytesPerCta)
            : 0.0;
        std::printf("  VT swap moves %.1f%% of what a register-copying "
                    "swap would\n", 100.0 * ratio);
    }

    std::printf("\nObserved worst-case SIMT stack depth across the "
                "benchmark suite (informs provisioning):\n");
    const GpuConfig base = GpuConfig::fermiLike();
    const auto names = benchmarkNames();
    std::vector<RunSpec> specs;
    for (const auto &name : names)
        specs.push_back({name, base, 0});
    const auto results = runAll(specs, argc, argv);
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::printf("  %-14s max SIMT stack depth %u\n",
                    names[i].c_str(), results[i].maxSimtDepth);
    }
    return 0;
}
