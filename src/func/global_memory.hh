/**
 * @file
 * Functional backing store for the simulated global memory space, plus a
 * bump allocator the host-side workload code uses to place buffers.
 */

#ifndef VTSIM_FUNC_GLOBAL_MEMORY_HH
#define VTSIM_FUNC_GLOBAL_MEMORY_HH

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/serializer.hh"

namespace vtsim {

/**
 * Sparse, paged, byte-addressable memory. Pages materialise zero-filled on
 * first touch, so terabyte-scale address spaces cost only what is used.
 */
class GlobalMemory
{
  public:
    static constexpr std::uint32_t pageSize = 4096;

    /**
     * Defer-writes mode (sharded epochs): write8()/write32() become
     * no-ops and reads return the pre-epoch contents, so SM shard
     * workers can read concurrently without materialising pages. The
     * epoch barrier turns the mode off and replays the logged global
     * ops in canonical order (see Gpu's replay pass).
     */
    void setDeferWrites(bool defer) { deferWrites_ = defer; }
    bool deferWrites() const { return deferWrites_; }

    /** Read one byte (zero if untouched). */
    std::uint8_t read8(Addr addr) const;
    void write8(Addr addr, std::uint8_t value);

    /** Little-endian 32-bit accessors (no alignment requirement). */
    std::uint32_t read32(Addr addr) const;
    void write32(Addr addr, std::uint32_t value);

    float
    readF32(Addr addr) const
    {
        return std::bit_cast<float>(read32(addr));
    }

    void
    writeF32(Addr addr, float value)
    {
        write32(addr, std::bit_cast<std::uint32_t>(value));
    }

    /** Bulk copy-in of 32-bit words starting at @p addr. */
    void writeWords(Addr addr, const std::vector<std::uint32_t> &words);
    void writeFloats(Addr addr, const std::vector<float> &values);

    /** Bulk copy-out of @p count words starting at @p addr. */
    std::vector<std::uint32_t> readWords(Addr addr,
                                         std::uint64_t count) const;
    std::vector<float> readFloats(Addr addr, std::uint64_t count) const;

    /**
     * Device-side buffer allocation (bump allocator).
     *
     * @param bytes Region size.
     * @param align Alignment, default one cache line generation (256 B).
     * @return Base address of the region.
     */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 256);

    /** Number of pages materialised so far. */
    std::uint64_t touchedPages() const { return pages_.size(); }

    /** Drop every page and rewind the allocator (arena reuse). */
    void
    reset()
    {
        pages_.clear();
        memoPage_ = noPage;
        memoData_ = nullptr;
        allocNext_ = 0x1000;
    }

    // Checkpoint the full functional state. Pages go out sorted by page
    // number so the byte stream is independent of hash iteration order.
    void save(Serializer &ser) const;
    void restore(Deserializer &des);

  private:
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_;
    Addr allocNext_ = 0x1000; ///< Keep address 0 unmapped, as a null page.
    bool deferWrites_ = false;

    // One-entry memo for the hot read32/write32 paths: a warp's lanes
    // overwhelmingly touch the same page back-to-back, and unordered_map
    // guarantees reference stability across inserts, so the cached data
    // pointer stays valid until pages_ is cleared (reset()/restore(),
    // which drop it). Only materialised pages are memoised. Never
    // refreshed while deferWrites_ is on — shard workers read
    // concurrently inside an epoch, so an update there would race;
    // hits on a pre-epoch entry are read-only and safe. noPage is
    // unreachable (Addr max / pageSize never yields all-ones).
    static constexpr std::uint64_t noPage = ~std::uint64_t{0};
    mutable std::uint64_t memoPage_ = noPage;
    mutable std::uint8_t *memoData_ = nullptr;
};

} // namespace vtsim

#endif // VTSIM_FUNC_GLOBAL_MEMORY_HH
