# Empty compiler generated dependencies file for fig3_vt_speedup.
# This may be replaced when dependencies are built.
