/**
 * @file
 * The top-level simulated GPU — the public API of vtsim. Construct one
 * with a GpuConfig, fill device memory through memory(), then launch()
 * kernels and read back results and statistics.
 *
 * The Gpu owns the central EventHorizon that drives every component's
 * SimComponent lifecycle: fast-forward jumps, deterministic reset()
 * for arena reuse, and checkpoint/restore (format vtsim-ckpt-v1, see
 * sim/serializer.hh).
 */

#ifndef VTSIM_GPU_GPU_HH
#define VTSIM_GPU_GPU_HH

#include <array>
#include <atomic>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "config/gpu_config.hh"
#include "cta/cta_dispatcher.hh"
#include "func/global_memory.hh"
#include "gpu/shard_pool.hh"
#include "gpu/stats_snapshot.hh"
#include "isa/kernel.hh"
#include "mem/interconnect.hh"
#include "mem/memory_partition.hh"
#include "mem/mtrace.hh"
#include "sim/event_horizon.hh"
#include "sm/sm_core.hh"
#include "telemetry/interval_sampler.hh"
#include "telemetry/profiler.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace_json.hh"

namespace vtsim {

/** Aggregate statistics of one kernel launch. */
struct KernelStats
{
    Cycle cycles = 0;
    std::uint64_t warpInstructions = 0;
    std::uint64_t threadInstructions = 0;
    std::uint64_t ctasCompleted = 0;
    /** Warp instructions per cycle, summed over SMs. */
    double ipc = 0.0;

    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;
    std::uint64_t dramBytes = 0;

    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;

    StallBreakdown stalls;

    double l1HitRate() const
    {
        const auto total = l1Hits + l1Misses;
        return total ? double(l1Hits) / total : 0.0;
    }

    double l2HitRate() const
    {
        const auto total = l2Hits + l2Misses;
        return total ? double(l2Hits) / total : 0.0;
    }
};

/** One grid of a concurrent launch (Gpu::launchConcurrent). */
struct GridLaunch
{
    const Kernel *kernel = nullptr;
    LaunchParams params;
    /** Preempt-policy rank: lower values preempt higher ones. Ignored
     *  by the other policies. */
    std::uint32_t priority = 0;
};

/** How co-resident grids share the machine. */
enum class SharePolicy : std::uint8_t
{
    /** Static SM partition: each grid owns a contiguous block of SMs
     *  and admits only there. */
    Spatial = 0,
    /** Every SM admits from the lowest-index grid with work that fits —
     *  co-runner CTAs fill VT slots the primary leaves empty. */
    VtFill = 1,
    /** Priority sharing: admission is in priority order, and at fixed
     *  boundary cycles the highest-priority unfinished grid blocks
     *  lower grids' activations and force-swaps their active CTAs out
     *  (Pai et al.-style preemptive thread-block scheduling). The
     *  eviction budget scales with the top grid's online progress
     *  estimate. Requires the VT machine (vtEnabled). */
    Preempt = 2,
};

std::string toString(SharePolicy policy);
/** Parse "spatial" / "vt-fill" / "preempt". False on anything else. */
bool parseSharePolicy(const std::string &name, SharePolicy &out);

/** Per-grid result of a concurrent launch (Gpu::gridStats). */
struct GridStats
{
    std::string kernelName;
    std::uint32_t priority = 0;
    /** This grid's share of the launch: the per-grid split counters
     *  (instructions, CTAs, cache/DRAM traffic, swaps). cycles and the
     *  stall breakdown are machine-wide, not attributed per grid. */
    KernelStats stats;
};

class Gpu
{
  public:
    explicit Gpu(const GpuConfig &config);

    /** Device global memory (allocate and fill before launching). */
    GlobalMemory &memory() { return gmem_; }

    /**
     * Launch @p kernel over @p launch and simulate to completion.
     * After restoreCheckpoint(), the same call (same kernel, the
     * returned LaunchParams) resumes the interrupted launch instead.
     * @return The launch's statistics.
     * @throws FatalError on invalid configuration or watchdog expiry.
     */
    KernelStats launch(const Kernel &kernel, const LaunchParams &launch);

    /**
     * Launch up to maxGrids kernels concurrently and simulate until
     * every grid completes. The grids co-reside on the machine under
     * @p policy; per-grid statistics land in gridStats(). With one grid
     * this is exactly launch() — bit-identical, any policy. After
     * restoreCheckpoint() of a concurrent launch, rebuild the vector
     * from restoredGrids() (plus the original kernels) to resume.
     * @return Aggregate statistics across all grids.
     */
    KernelStats launchConcurrent(const std::vector<GridLaunch> &launches,
                                 SharePolicy policy = SharePolicy::VtFill);

    /** Per-grid statistics of the last (concurrent) launch, in grid
     *  order. */
    const std::vector<GridStats> &gridStats() const { return gridStats_; }

    /**
     * After restoreCheckpoint(): the checkpointed grid table, kernel
     * pointers null. Re-attach the original kernels and pass the vector
     * to launchConcurrent (with restoredSharePolicy()) to resume.
     */
    std::vector<GridLaunch> restoredGrids() const;
    SharePolicy restoredSharePolicy() const { return sharePolicy_; }

    /**
     * Return this Gpu to its freshly-constructed state for the same
     * config: cycle 0, empty queues, zeroed statistics, cold caches,
     * empty device memory, no telemetry sinks or checkpoint cadence.
     * A subsequent run is bit-identical to one on a newly constructed
     * Gpu, so a worker thread (bench/parallel_runner.cc) can reuse one
     * arena across runs instead of reconstructing it.
     */
    void reset();

    /**
     * Write checkpoints of subsequent launches to @p path (format
     * vtsim-ckpt-v1). With @p every_n == 0, one checkpoint is written
     * when the launch completes — a validated record of the final
     * state. With @p every_n > 0, one is written (overwriting @p path)
     * each time the clock crosses a multiple of @p every_n cycles;
     * fast-forward jumps are clamped so no boundary is skipped, and
     * restoring any such mid-kernel checkpoint finishes the launch
     * bit-identically to the uninterrupted run.
     */
    void setCheckpoint(const std::string &path, Cycle every_n = 0);

    /**
     * Load a vtsim-ckpt-v1 checkpoint into this Gpu. The Gpu must be
     * freshly constructed (or reset) with the same GpuConfig, with the
     * same interval sampler enabled as the checkpointed run had (state
     * for it is in the checkpoint). Returns the original LaunchParams;
     * pass them to launch() with the original kernel to resume.
     */
    LaunchParams restoreCheckpoint(const std::string &path);

    /**
     * Serialize the machine into @p out as a complete vtsim-ckpt-v1
     * image (header plus payload, byte-identical to the file
     * setCheckpoint would write at this point). Settles lazy SM
     * windows first. The buffer form is what the job service uses to
     * park a preempted job without a caller-managed checkpoint path.
     */
    void saveCheckpoint(std::vector<std::uint8_t> &out);

    /** restoreCheckpoint() from an in-memory vtsim-ckpt-v1 image. */
    LaunchParams restoreCheckpoint(const std::vector<std::uint8_t> &image);

    /**
     * Ask the launch loop to stop at the next checkpoint-cadence
     * boundary (setCheckpoint with every_n > 0; the path may be
     * empty). Safe to call from another thread while launch() runs —
     * this is the only Gpu entry point with that property. launch()
     * then returns early with preempted() == true and statistics
     * covering the launch so far; saveCheckpoint() afterwards yields
     * an image from which a same-config Gpu resumes bit-identically.
     * Without a cadence the request holds until one is set or cleared.
     */
    void requestPreempt()
    { preemptRequested_.store(true, std::memory_order_relaxed); }

    /** Withdraw a pending requestPreempt() (between jobs: a request
     *  that raced a completing launch must not stop the next one). */
    void clearPreemptRequest()
    { preemptRequested_.store(false, std::memory_order_relaxed); }

    /** Did the last launch() stop at a preemption point instead of
     *  completing the grid? */
    bool preempted() const { return preempted_; }

    /** Invalidate all caches (between unrelated kernels). */
    void flushCaches();

    /**
     * Record the post-coalescer memory-access stream of subsequent
     * launches to @p path (format vtsim-mtrace-v1, mem/mtrace.hh).
     * Recording forces sequential simulation (the trace is one stream
     * in global cycle order) and does not compose with mid-run
     * checkpoints or preemption; the end-of-launch seal is written when
     * the grid completes.
     */
    void enableMtraceRecord(const std::string &path);

    /**
     * Replay a vtsim-mtrace-v1 trace: drive the memory hierarchy
     * (L1 → NoC → L2 → DRAM) with the recorded access stream, skipping
     * functional execution and warp scheduling entirely. The trace must
     * have been recorded under the same machine shape (SM/partition
     * counts, line sizes) as this GpuConfig. Composes with
     * setSimThreads, the interval sampler, and checkpoint/restore — a
     * checkpoint taken mid-replay resumes via replayTrace on the same
     * trace file, and a mode mismatch in either direction is a fatal
     * error. Returns the replay's statistics (cache, NoC and DRAM
     * counters are bit-identical to the recording run's; issue-side
     * counters are zero).
     */
    KernelStats replayTrace(const std::string &path);

    /**
     * Simulate subsequent launches with @p n shard workers: the SMs and
     * memory partitions are statically divided across a persistent
     * thread pool, and the run proceeds in epochs no longer than the
     * interconnect latency, synchronized at a barrier where cross-shard
     * traffic is merged in canonical sequential order. Every observable
     * output — KernelStats, interval-sampler JSONL, Perfetto traces,
     * checkpoints — is bit-identical to the single-threaded run (see
     * docs/ARCHITECTURE.md, "Sharded simulation"). 0 and 1 both mean
     * sequential. A runtime knob, not a GpuConfig field: checkpoints
     * must stay interchangeable across thread counts. Falls back to
     * sequential (with a warning) while the textual Trace facade is
     * enabled, whose process-global sink the shards would race on.
     */
    void setSimThreads(unsigned n) { simThreads_ = n; }
    unsigned simThreads() const { return simThreads_; }

    const GpuConfig &config() const { return config_; }
    std::uint32_t numSms() const { return sms_.size(); }
    SmCore &sm(std::uint32_t i) { return *sms_.at(i); }
    MemoryPartition &partition(std::uint32_t i)
    { return *partitions_.at(i); }
    Interconnect &noc() { return noc_; }

    /** Total cycles simulated across all launches. */
    Cycle totalCycles() const { return cycle_; }

    /** Cycles covered by event-horizon jumps rather than ticks (counts
     *  toward totalCycles; a measure of how much work skipping saved). */
    Cycle fastForwardedCycles() const { return horizon_.fastForwarded(); }

    /**
     * Dump every component's statistics (SMs, VT managers, L1s, L2
     * slices, DRAM channels, NoC) as `group.stat value` lines — the
     * gem5-style post-simulation record.
     */
    void dumpStats(std::ostream &os);

    /** Every stat this Gpu's components registered, by dotted path. */
    const telemetry::StatRegistry &telemetryRegistry() const
    { return registry_; }

    /**
     * Emit per-interval stat deltas as JSONL every @p interval cycles
     * of subsequent launches (see telemetry/interval_sampler.hh). The
     * stream overload keeps no ownership; the path overload opens the
     * file now. The series is identical with fastForwardEnabled on or
     * off: sample boundaries are event-horizon constraints, so jumps
     * never cross one.
     */
    void enableIntervalSampler(Cycle interval, std::ostream &os);
    void enableIntervalSampler(Cycle interval, const std::string &path);

    /**
     * Export Swap/Cta/Barrier/Dram events of subsequent launches as a
     * Perfetto/Chrome trace (see telemetry/trace_json.hh). The writer
     * is per-Gpu: hermetic Gpus on the parallel runner's thread pool
     * can each trace to their own file.
     */
    void enableTraceJson(const std::string &path);
    void enableTraceJson(std::ostream &os);

    /**
     * Attribute wall time of subsequent launches to simulation phases
     * (telemetry/profiler.hh). Per-run wiring like the sampler:
     * reset() drops it. The profiler only reads the clock — enabling
     * it never changes simulated state, and KernelStats stay
     * bit-identical (tests/test_telemetry.cc asserts this).
     */
    void enableProfiler();
    const telemetry::SimProfiler *profiler() const
    { return profiler_.get(); }

  private:
    /** Test seam: tests/test_sharded_sim.cc reaches the shard-oracle
     *  internals through this to prove the oracle detects divergence. */
    friend struct GpuTestAccess;

    /** How one simulated cycle (or a fast-forward jump) left the run. */
    enum class StepResult
    {
        Running,
        Done,
        Preempted,
    };

    bool allIdle() const;
    std::uint64_t totalIssued() const;
    std::uint32_t partitionOf(Addr line_addr) const;
    void attachTraceJson();
    /** Thread count the next launch will actually use (clamped to the
     *  component count; 1 while the textual Trace facade is active). */
    unsigned effectiveSimThreads() const;
    /** Any resident grid's dispatcher still has CTAs to hand out. */
    bool anyGridHasWork() const;
    /**
     * Which grid SM @p s admits from this cycle under the share policy,
     * or -1. The single admission-policy decision point: the sequential
     * loop, the sharded pause/replay sites and the shard-oracle rerun
     * all call this, so every driver admits identically.
     */
    int pickAdmitGrid(std::uint32_t s) const;
    /** Would any SM admit a CTA right now? (Fast-forward guard.) */
    bool admitPending() const;
    /** All kernel names of the resident launch, '+'-joined. */
    std::string launchName() const;
    /** CTAs of grid @p g completed across all SMs, this launch. */
    std::uint64_t gridCompleted(std::uint32_t g) const;
    /** Preempt-policy boundaries are live for this launch. */
    bool preemptActive() const
    { return grids_.size() > 1 && sharePolicy_ == SharePolicy::Preempt; }
    /** The preempt policy's boundary decision: re-block lower grids and
     *  force-swap their active CTAs where the top grid is parked. */
    void preemptBoundaryTick();
    /** Priority order of grids_ (stable on ties): priorityOrder_. */
    void rebuildPriorityOrder();
    /** One iteration of the sequential launch loop: admission, ticks,
     *  sampler/checkpoint boundaries, watchdog, fast-forward. The
     *  wrapper decides whether the self-profiler measures this cycle;
     *  @p prof tells the body to bracket its phases. */
    StepResult sequentialCycle(Cycle deadline);
    StepResult sequentialCycleBody(Cycle deadline, bool prof);
    void runSequential();
    /** The sharded epoch driver (tentpole of the --sim-threads mode). */
    void runSharded(unsigned workers);
    /** Within-cycle trace merge rank of SM @p s's tick-phase events. */
    std::uint32_t smTickRank(std::uint32_t s) const
    { return numSms() + std::uint32_t(partitions_.size()) + s; }
    /** Drain every TraceStage and replay into traceJson_ in sequential
     *  within-cycle order (cycle, rank, per-stage sequence). */
    void mergeTraceStages();
    /** Apply the epoch's logged global-memory ops in sequential order;
     *  re-reads patch any lane register that observed a stale value. */
    void replayEpochMemory();
    /** shardOracle support: per-component save() images (+ gmem). */
    std::vector<std::vector<std::uint8_t>> captureShardImages();
    void restoreShardImages(
        const std::vector<std::vector<std::uint8_t>> &images);
    std::string shardImageName(std::size_t idx) const;
    /** shardOracle: re-run [@p from, @p to) sequentially from the
     *  pre-epoch snapshot and diff every save() image. */
    void verifyShardEpoch(const std::vector<std::vector<std::uint8_t>> &pre,
                          const std::vector<std::uint64_t> &pre_dispatched,
                          Cycle from, Cycle to);
    /** Settle lazy SM windows and emit the boundary sample at cycle_. */
    void takeSample();
    /** Serialize the settled machine as a vtsim-ckpt-v1 image. */
    void buildCheckpoint(std::vector<std::uint8_t> &out);
    /** Serialize the settled machine to checkpointPath_. */
    void writeCheckpoint();
    /** Restore from a payload; @p source names it in error messages. */
    LaunchParams restoreImage(const std::uint8_t *data, std::size_t size,
                              const std::string &source);
    /** The verifyHorizon oracle: always in debug builds, opt-in via
     *  GpuConfig::horizonOracle in release builds. */
    bool oracleEnabled() const;

    GpuConfig config_;
    GlobalMemory gmem_;
    Interconnect noc_;
    std::vector<std::unique_ptr<MemoryPartition>> partitions_;
    std::vector<std::unique_ptr<SmCore>> sms_;
    EventHorizon horizon_;
    Cycle cycle_ = 0;

    /**
     * One co-resident grid of the active launch. Launch context lives
     * in members (not launch() locals) so checkpoints can carry an
     * interrupted launch across processes; the kernel pointer is the
     * one live binding a checkpoint cannot carry (the identity fields
     * re-validate it on resume).
     */
    struct GridContext
    {
        const Kernel *kernel = nullptr;
        LaunchParams params;
        std::uint32_t priority = 0;
        std::string kernelName;
        std::uint64_t kernelInstrs = 0;
        std::uint32_t kernelRegs = 0;
        std::uint32_t kernelShared = 0;
        std::unique_ptr<CtaDispatcher> dispatcher;
    };

    /** Cycles between preempt-policy boundary decisions. */
    static constexpr Cycle preemptBoundaryCycles_ = 2048;

    std::vector<GridContext> grids_;
    SharePolicy sharePolicy_ = SharePolicy::VtFill;
    /** Grid indices, highest priority (lowest value) first. */
    std::vector<std::uint32_t> priorityOrder_;
    /** Per-grid CTA completions at launch start (counters are
     *  cumulative across launches) and at the last preempt boundary
     *  (the online progress estimate's reference point). */
    std::array<std::uint64_t, maxGrids> gridBase_{};
    std::array<std::uint64_t, maxGrids> lastBoundaryCompleted_{};
    std::vector<GridStats> gridStats_;
    StatsSnapshot before_;
    Cycle launchStart_ = 0;
    bool pendingResume_ = false;

    std::string checkpointPath_;
    Cycle checkpointEvery_ = 0;

    /** Which driver owns the machine: functional execution or trace
     *  replay. Checkpointed (in "gpux") so a restored image can only be
     *  resumed by the matching entry point. */
    enum class SimMode : std::uint8_t
    {
        Functional = 0,
        Replay = 1,
    };
    SimMode simMode_ = SimMode::Functional;
    std::string recordTracePath_;
    std::unique_ptr<MtraceWriter> mtraceWriter_;
    std::unique_ptr<MtraceReader> mtraceReader_;

    // Preemption handshake with the job service (src/service/): the
    // request flag is the one member another thread may touch while
    // launch() runs.
    std::atomic<bool> preemptRequested_{false};
    bool preempted_ = false;

    telemetry::StatRegistry registry_;
    std::unique_ptr<std::ofstream> samplerFile_;
    std::unique_ptr<telemetry::IntervalSampler> sampler_;
    std::unique_ptr<telemetry::TraceJsonWriter> traceJson_;
    std::unique_ptr<telemetry::SimProfiler> profiler_;

    // Sharded-simulation state (setSimThreads). The pool persists across
    // launches; the stages exist only while a sharded launch is running
    // (components' trace pointers are retargeted at them for its
    // duration and restored to traceJson_ afterwards).
    unsigned simThreads_ = 1;
    std::unique_ptr<ShardPool> pool_;
    std::vector<std::unique_ptr<telemetry::TraceStage>> smStages_;
    std::vector<std::unique_ptr<telemetry::TraceStage>> partStages_;
};

} // namespace vtsim

#endif // VTSIM_GPU_GPU_HH
