/**
 * @file
 * DYNCTA-style dynamic CTA throttling — the *opposite* philosophy to
 * Virtual Thread from the related work the paper positions against:
 * instead of exposing more CTAs to hide latency, throttling lowers the
 * number of schedulable CTAs when the memory system is congested (to
 * protect cache locality and queueing delay) and raises it when the SM
 * starves.
 *
 * The implementation monitors, per epoch, the fraction of scheduler
 * cycles lost to memory stalls versus idleness and nudges a cap on
 * active CTAs up or down. The cap is enforced lazily: existing CTAs are
 * never paused, but no new CTA activates above the cap — the common
 * simplification of DYNCTA-class schemes.
 *
 * The lazy cap also keeps the SM's incremental ready-warp sets simple: a
 * cap change never retracts published warps directly — it only gates
 * future VirtualThreadManager activations, and those fire the CTA
 * issuability callbacks that publish or retract whole CTAs.
 */

#ifndef VTSIM_CTA_CTA_THROTTLER_HH
#define VTSIM_CTA_CTA_THROTTLER_HH

#include <cstdint>

#include "common/types.hh"
#include "sim/serializer.hh"
#include "stats/stats.hh"

namespace vtsim {

/** Throttling policy parameters. */
struct ThrottleParams
{
    std::uint32_t epochCycles = 2048;
    /** Mem-stall fraction above which the cap shrinks. */
    double highWater = 0.55;
    /** Mem-stall fraction below which the cap may grow. */
    double lowWater = 0.30;
    std::uint32_t minCap = 1;
};

class CtaThrottler
{
  public:
    CtaThrottler(const ThrottleParams &params, std::uint32_t max_cap,
                 SmId sm_id);

    /**
     * Record one scheduler-cycle observation and advance the epoch
     * machinery.
     *
     * @param issued A warp instruction issued this scheduler-cycle.
     * @param mem_stalled Nothing issued and >= 1 warp blocked on memory.
     */
    void sample(bool issued, bool mem_stalled);

    /**
     * Record @p n consecutive no-issue observations in one step —
     * equivalent to calling sample(false, mem_stalled) @p n times. The
     * window must not reach an epoch boundary (the caller's horizon
     * stops there, since a boundary may change the cap).
     */
    void sampleIdleN(std::uint64_t n, bool mem_stalled);

    /**
     * The cycle whose sample() call completes the current epoch (and
     * may change the cap), assuming the last sample was at @p now - 1.
     */
    Cycle epochBoundaryCycle(Cycle now) const
    { return now + (params_.epochCycles - 1 - epochSamples_); }

    /** Current cap on active CTAs. */
    std::uint32_t cap() const { return cap_; }

    std::uint64_t decreases() const { return decreases_.value(); }
    std::uint64_t increases() const { return increases_.value(); }
    StatGroup &stats() { return stats_; }

    // Checkpoint plumbing (driven by the owning SmCore).
    void reset();
    void save(Serializer &ser) const;
    void restore(Deserializer &des);

  private:
    ThrottleParams params_;
    std::uint32_t maxCap_;
    std::uint32_t cap_;

    std::uint64_t epochSamples_ = 0;
    std::uint64_t epochIssued_ = 0;
    std::uint64_t epochMemStalled_ = 0;

    StatGroup stats_;
    Counter decreases_;
    Counter increases_;
    ScalarStat capSamples_;
};

} // namespace vtsim

#endif // VTSIM_CTA_CTA_THROTTLER_HH
