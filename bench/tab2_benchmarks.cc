/**
 * @file
 * TAB-2: the benchmark table — per kernel: launch geometry, resource
 * declaration, and the occupancy class it lands in on the baseline.
 */

#include <cstdio>

#include "bench_common.hh"
#include "occupancy/occupancy.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("TAB-2", "benchmark suite");
    const GpuConfig cfg = GpuConfig::fermiLike();

    std::printf("%-14s %8s %6s %6s %9s %8s %-12s %-20s\n", "benchmark",
                "cta", "warps", "regs", "shmem(B)", "grid", "limiter",
                "class");
    for (const auto &name : benchmarkNames()) {
        auto wl = makeWorkload(name, benchScale);
        const Kernel k = wl->buildKernel();
        GlobalMemory scratch;
        const LaunchParams lp = wl->prepare(scratch);
        const auto occ = computeOccupancy(cfg, k, lp);
        std::printf("%-14s %8u %6u %6u %9u %8llu %-12s %-20s\n",
                    name.c_str(), lp.threadsPerCta(), lp.warpsPerCta(),
                    k.regsPerThread(), k.sharedBytesPerCta(),
                    (unsigned long long)lp.numCtas(),
                    toString(occ.limiter).c_str(),
                    toString(wl->expectedClass()).c_str());
    }
    std::printf("\nPer-benchmark descriptions:\n");
    for (const auto &name : benchmarkNames()) {
        auto wl = makeWorkload(name, 0);
        std::printf("  %-14s %s\n", name.c_str(),
                    wl->description().c_str());
    }
    return 0;
}
