#include "fabric/coordinator.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logger.hh"
#include "service/protocol.hh"
#include "telemetry/prometheus.hh"

namespace vtsim::fabric {

using service::Json;

namespace {

/** Raw checkpoint bytes per migration chunk: base64 of 32 KiB is
 *  ~43.7 KiB, comfortably inside the 64 KiB request-line cap with the
 *  JSON envelope around it. */
constexpr std::uint64_t kMigrateChunkBytes = 32 * 1024;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::string
stringField(const Json &doc, const char *key)
{
    const Json *v = doc.find(key);
    return v && v->isString() ? v->asString() : std::string();
}

std::uint64_t
intField(const Json &doc, const char *key, std::uint64_t fallback = 0)
{
    const Json *v = doc.find(key);
    return v && v->isInt() ? std::uint64_t(v->asInt()) : fallback;
}

bool
replyOk(const Json &reply)
{
    const Json *ok = reply.find("ok");
    return ok && ok->isBool() && ok->asBool();
}

std::string
rejectedReply(const std::string &reason, std::uint64_t retry_after_ms)
{
    Json::Object o;
    o["ok"] = Json(false);
    o["rejected"] = Json(reason);
    o["retry_after_ms"] = Json(retry_after_ms);
    return Json(std::move(o)).dump();
}

} // namespace

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      server_(
          LineServerConfig{"", config_.listen, true, config_.authToken,
                           "vtsim-coord"},
          [this](int fd, const std::string &line) {
              return handleLine(fd, line);
          }),
      started_(std::chrono::steady_clock::now())
{
    statsGroup_.addCounter("jobs_submitted", &submitted_,
                           "jobs admitted into the fabric");
    statsGroup_.addCounter("dispatches", &dispatches_,
                           "job placements onto a daemon");
    statsGroup_.addCounter("steals", &steals_,
                           "queued jobs yanked from a deep daemon and "
                           "resubmitted to an idle one");
    statsGroup_.addCounter("migrations", &migrations_,
                           "parked jobs whose checkpoint image moved "
                           "to another daemon");
    statsGroup_.addCounter("throttles", &throttles_,
                           "submits rejected by tenant rate limiting "
                           "or quota");
    statsGroup_.addCounter("rejected_busy", &rejectedBusy_,
                           "submits rejected by the backlog bound");
    statsGroup_.addCounter("node_losses", &nodeLosses_,
                           "daemons declared lost on heartbeat "
                           "timeout");
    statsGroup_.addCounter("jobs_completed", &completed_,
                           "fabric jobs finished with verified "
                           "results");
    statsGroup_.addCounter("jobs_failed", &failed_,
                           "fabric jobs that ended failed");
    statsGroup_.addValue("nodes_alive", &nodesAlive_,
                         "registered daemons currently heartbeating");
    statsGroup_.addValue("jobs_pending", &jobsPending_,
                         "admitted jobs not yet placed on a daemon");
    statsGroup_.addValue("jobs_dispatched", &jobsDispatched_,
                         "jobs currently placed on a daemon");
    registry_.addGroup(statsGroup_);

    if (!config_.eventLogPath.empty())
        evlog_ = std::make_unique<service::EventLog>(
            config_.eventLogPath);
}

Coordinator::~Coordinator()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopMaintenance_ = true;
        maintCv_.notify_all();
        doneCv_.notify_all(); // Unblock stranded wait ops.
    }
    if (maintenance_.joinable())
        maintenance_.join();
}

void
Coordinator::start()
{
    server_.start();
    if (evlog_) {
        evlog_->emit("coord_start",
                     {{"listen", Json(config_.listen.host + ":" +
                                      std::to_string(boundPort()))}});
    }
    maintenance_ = std::thread([this] { maintenanceLoop(); });
}

void
Coordinator::serve()
{
    server_.serve();
}

void
Coordinator::requestStop()
{
    server_.requestStop();
}

void
Coordinator::shutdown()
{
    std::call_once(shutdownOnce_, [this] {
        std::unique_lock<std::mutex> lk(mu_);
        draining_ = true;
        if (evlog_)
            evlog_->emit("drain");
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.drainTimeoutMs);
        // The maintenance thread keeps dispatching and polling while
        // we wait here, so pending work drains rather than hangs.
        doneCv_.wait_until(lk, deadline, [this] {
            for (const auto &[gid, job] : jobs_) {
                if (job->state != FabricJob::State::Terminal)
                    return false;
            }
            return true;
        });
        stopMaintenance_ = true;
        maintCv_.notify_all();
        doneCv_.notify_all(); // Unblock stranded wait ops.
        lk.unlock();
        if (maintenance_.joinable())
            maintenance_.join();
        if (evlog_)
            evlog_->emit("service_stop");
    });
}

// --------------------------------------------------------------------
// Request handling (connection threads)
// --------------------------------------------------------------------

bool
Coordinator::handleLine(int fd, const std::string &line)
{
    Json doc;
    try {
        doc = Json::parse(line);
    } catch (const std::exception &e) {
        return sendLine(fd, service::errorReply(e.what()));
    }
    const std::string op = stringField(doc, "op");
    try {
        if (op == "submit")
            return handleSubmit(fd, doc, line);
        if (op == "register")
            return handleRegister(fd, doc);
        if (op == "heartbeat")
            return handleHeartbeat(fd, doc);
        if (op == "wait")
            return handleWait(fd, doc);
        if (op == "query")
            return handleQuery(fd, doc);
        if (op == "status")
            return sendLine(fd, statusJson().dump());
        if (op == "metrics") {
            Json::Object o;
            o["ok"] = Json(true);
            o["op"] = Json("metrics");
            o["body"] = Json(metricsText());
            return sendLine(fd, Json(std::move(o)).dump());
        }
        if (op == "ping") {
            Json::Object o;
            o["ok"] = Json(true);
            o["op"] = Json("ping");
            return sendLine(fd, Json(std::move(o)).dump());
        }
        if (op == "shutdown") {
            Json::Object o;
            o["ok"] = Json(true);
            o["state"] = Json("draining");
            sendLine(fd, Json(std::move(o)).dump());
            requestStop();
            return false;
        }
    } catch (const std::exception &e) {
        return sendLine(fd, service::errorReply(e.what()));
    }
    return sendLine(fd,
                    service::errorReply("unknown op '" + op + "'"));
}

bool
Coordinator::handleSubmit(int fd, const Json &doc,
                          const std::string &line)
{
    // Validate with the daemon parser before admitting: a submit the
    // target daemon would reject should bounce here, at admission,
    // not after dispatch. Coordinator-only keys (tenant, affinity)
    // and the token ride through as ignored unknowns.
    service::Request req;
    try {
        req = service::parseRequest(line);
    } catch (const std::exception &e) {
        return sendLine(fd, service::errorReply(e.what()));
    }
    if (req.resumeXfer != 0) {
        return sendLine(fd, service::errorReply(
                                "resume_xfer is a daemon-level op"));
    }
    std::string tenant = stringField(doc, "tenant");
    if (tenant.empty())
        tenant = "default";
    const std::string affinity = stringField(doc, "affinity");

    std::lock_guard<std::mutex> lk(mu_);
    if (draining_) {
        Json::Object o;
        o["ok"] = Json(false);
        o["rejected"] = Json("shutting_down");
        return sendLine(fd, Json(std::move(o)).dump());
    }
    std::uint64_t submit_seq = 0;
    if (evlog_) {
        submit_seq = evlog_->emit(
            "submit",
            {{"workload", Json(req.spec.workload)},
             {"scale", Json(req.spec.scale)},
             {"priority", Json(service::toString(req.priority))},
             {"tenant", Json(tenant)}});
    }
    const auto throttle = [&](const std::string &reason,
                              std::uint64_t retry_ms) {
        Tenant &t = tenants_[tenant];
        ++t.throttled;
        if (evlog_) {
            evlog_->emit("throttle",
                         {{"parent", Json(submit_seq)},
                          {"tenant", Json(tenant)},
                          {"reason", Json(reason)},
                          {"retry_after_ms", Json(retry_ms)}});
        }
        return sendLine(fd, rejectedReply(reason, retry_ms));
    };

    // Backlog bound: queue-depth-driven backpressure. The hint grows
    // with the overshoot so clients back off harder the deeper the
    // backlog gets.
    if (jobsPending_ >= config_.maxBacklog) {
        ++rejectedBusy_;
        const std::uint64_t retry_ms = std::min<std::uint64_t>(
            2000, 50 * (jobsPending_ - config_.maxBacklog + 1));
        return throttle("busy", retry_ms);
    }

    Tenant &tenant_state = tenants_[tenant];
    const auto now = std::chrono::steady_clock::now();
    if (config_.tenantRate > 0.0) {
        if (!tenant_state.seeded) {
            tenant_state.tokens = config_.tenantBurst;
            tenant_state.seeded = true;
        } else {
            const double dt = std::chrono::duration<double>(
                                  now - tenant_state.lastRefill)
                                  .count();
            tenant_state.tokens =
                std::min(config_.tenantBurst,
                         tenant_state.tokens +
                             dt * config_.tenantRate);
        }
        tenant_state.lastRefill = now;
        if (tenant_state.tokens < 1.0) {
            ++throttles_;
            const std::uint64_t retry_ms =
                std::uint64_t(std::ceil((1.0 - tenant_state.tokens) /
                                        config_.tenantRate * 1e3));
            return throttle("throttled", std::max<std::uint64_t>(
                                             retry_ms, 1));
        }
        tenant_state.tokens -= 1.0;
    }
    if (config_.tenantQuota > 0 &&
        tenant_state.inFlight >= config_.tenantQuota) {
        ++throttles_;
        return throttle("tenant_quota", 200);
    }

    auto job = std::make_unique<FabricJob>();
    job->gid = nextGid_++;
    job->seq = nextSeq_++;
    job->tenant = tenant;
    job->affinity = affinity;
    job->workload = req.spec.workload;
    job->priority = service::toString(req.priority);
    Json::Object body = doc.asObject();
    body.erase("token"); // The coordinator re-stamps its own.
    body.erase("tenant");
    body.erase("affinity");
    job->submitBody = std::move(body);
    job->lastEventSeq = submit_seq;
    FabricJob &ref = *job;
    jobs_.emplace(ref.gid, std::move(job));
    ++tenant_state.inFlight;
    ++tenant_state.submitted;
    ++submitted_;
    eventJobLocked(ref, "admit",
                   {{"workload", Json(ref.workload)},
                    {"scale", Json(req.spec.scale)},
                    {"priority", Json(ref.priority)},
                    {"tenant", Json(ref.tenant)}});
    noteGaugesLocked();
    maintCv_.notify_all(); // Wake dispatch.
    Json::Object o;
    o["ok"] = Json(true);
    o["job"] = Json(ref.gid);
    return sendLine(fd, Json(std::move(o)).dump());
}

bool
Coordinator::handleRegister(int fd, const Json &doc)
{
    const std::string name = stringField(doc, "node");
    const std::string addr_text = stringField(doc, "addr");
    if (name.empty() || addr_text.empty()) {
        return sendLine(fd, service::errorReply(
                                "register needs \"node\" and \"addr\""));
    }
    HostPort addr;
    try {
        addr = parseHostPort(addr_text);
    } catch (const std::exception &e) {
        return sendLine(fd, service::errorReply(e.what()));
    }
    std::lock_guard<std::mutex> lk(mu_);
    Node &node = nodes_[name];
    node.name = name;
    node.addr = addr;
    node.workers = unsigned(intField(doc, "workers", 1));
    node.lastBeat = std::chrono::steady_clock::now();
    node.alive = true;
    node.sentSinceBeat = 0;
    if (evlog_) {
        evlog_->emit("register", {{"node", Json(name)},
                                  {"addr", Json(addr.str())},
                                  {"workers", Json(node.workers)}});
    }
    logging::info("vtsim-coord", "node '", name, "' registered at ",
                  addr.str(), " (", node.workers, " workers)");
    noteGaugesLocked();
    maintCv_.notify_all();
    Json::Object o;
    o["ok"] = Json(true);
    o["node"] = Json(name);
    return sendLine(fd, Json(std::move(o)).dump());
}

bool
Coordinator::handleHeartbeat(int fd, const Json &doc)
{
    const std::string name = stringField(doc, "node");
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = nodes_.find(name);
    if (it == nodes_.end()) {
        // A coordinator restart forgot this node; the agent tears its
        // session down on this reply and re-registers.
        return sendLine(fd, service::errorReply("unknown node '" +
                                                name + "'"));
    }
    Node &node = it->second;
    node.queueDepth = intField(doc, "queue_depth");
    node.running = intField(doc, "running");
    node.parked = intField(doc, "parked");
    node.lastBeat = std::chrono::steady_clock::now();
    if (!node.alive) {
        node.alive = true;
        logging::info("vtsim-coord", "node '", name, "' is back");
    }
    node.sentSinceBeat = 0;
    noteGaugesLocked();
    Json::Object o;
    o["ok"] = Json(true);
    return sendLine(fd, Json(std::move(o)).dump());
}

bool
Coordinator::handleWait(int fd, const Json &doc)
{
    const std::uint64_t gid = intField(doc, "job");
    std::unique_lock<std::mutex> lk(mu_);
    const auto it = jobs_.find(gid);
    if (it == jobs_.end()) {
        return sendLine(fd, service::errorReply(
                                "unknown job " + std::to_string(gid)));
    }
    FabricJob &job = *it->second;
    doneCv_.wait(lk, [this, &job] {
        return job.state == FabricJob::State::Terminal ||
               stopMaintenance_;
    });
    if (job.state != FabricJob::State::Terminal) {
        return sendLine(fd, service::errorReply(
                                "coordinator shutting down"));
    }
    return sendLine(fd, job.result.dump());
}

bool
Coordinator::handleQuery(int fd, const Json &doc)
{
    const std::uint64_t gid = intField(doc, "job");
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(gid);
    if (it == jobs_.end()) {
        return sendLine(fd, service::errorReply(
                                "unknown job " + std::to_string(gid)));
    }
    return sendLine(fd, queryLocked(*it->second).dump());
}

Json
Coordinator::queryLocked(const FabricJob &job) const
{
    if (job.state == FabricJob::State::Terminal)
        return job.result;
    Json::Object o;
    o["ok"] = Json(true);
    o["job"] = Json(job.gid);
    o["workload"] = Json(job.workload);
    o["tenant"] = Json(job.tenant);
    o["priority"] = Json(job.priority);
    if (job.state == FabricJob::State::Pending) {
        o["state"] = Json("pending");
    } else {
        o["state"] = Json(job.localState.empty() ? "dispatched"
                                                 : job.localState);
        o["node"] = Json(job.node);
    }
    return Json(std::move(o));
}

// --------------------------------------------------------------------
// Maintenance thread: node health, dispatch, stealing, polling
// --------------------------------------------------------------------

void
Coordinator::maintenanceLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            maintCv_.wait_for(
                lk,
                std::chrono::milliseconds(config_.maintenanceIntervalMs),
                [this] { return stopMaintenance_; });
            if (stopMaintenance_)
                return;
        }
        try {
            checkNodeTimeouts();
            dispatchRound();
            stealRound();
            pollRound();
        } catch (const std::exception &e) {
            // Nothing a daemon does may take the coordinator down.
            logging::error("vtsim-coord", "maintenance: ", e.what());
        }
    }
}

void
Coordinator::checkNodeTimeouts()
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (auto &[name, node] : nodes_) {
        if (!node.alive)
            continue;
        const auto silent =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - node.lastBeat)
                .count();
        if (silent < config_.heartbeatTimeoutMs)
            continue;
        node.alive = false;
        ++nodeLosses_;
        // Re-dispatch the node's in-flight jobs from scratch: their
        // images died with the node, and deterministic simulation
        // makes the rerun's results identical anyway.
        std::uint64_t requeued = 0;
        for (auto &[gid, job] : jobs_) {
            if (job->state != FabricJob::State::Dispatched ||
                job->node != name)
                continue;
            job->state = FabricJob::State::Pending;
            job->node.clear();
            job->localId = 0;
            job->localState.clear();
            ++requeued;
        }
        if (evlog_) {
            evlog_->emit("node_lost", {{"node", Json(name)},
                                       {"requeued", Json(requeued)}});
        }
        logging::warn("vtsim-coord", "node '", name, "' lost (silent ",
                      silent, " ms); requeued ", requeued, " jobs");
    }
    noteGaugesLocked();
}

service::Client *
Coordinator::nodeClient(const std::string &name)
{
    HostPort addr;
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = nodes_.find(name);
        if (it == nodes_.end() || !it->second.alive)
            return nullptr;
        addr = it->second.addr;
    }
    auto cached = clients_.find(name);
    if (cached != clients_.end() && cached->second.addr == addr.str())
        return cached->second.client.get();
    clients_.erase(name);
    try {
        // Bounded IO: daemon-side ops used by the coordinator (submit,
        // query, yank, chunk transfer) all answer promptly; a wedged
        // daemon must not wedge the maintenance thread.
        auto client = std::make_unique<service::Client>(
            addr, config_.authToken, 2000, 10000);
        auto *raw = client.get();
        clients_[name] = CachedClient{addr.str(), std::move(client)};
        return raw;
    } catch (const std::exception &) {
        return nullptr;
    }
}

void
Coordinator::dropNodeClient(const std::string &name)
{
    clients_.erase(name);
}

std::unique_ptr<Json>
Coordinator::nodeRequest(const std::string &node, const Json &req)
{
    for (int attempt = 0; attempt < 2; ++attempt) {
        service::Client *client = nodeClient(node);
        if (!client)
            return nullptr;
        try {
            return std::make_unique<Json>(client->request(req));
        } catch (const std::exception &) {
            // Stale cached connection (daemon restarted): reconnect
            // once; a second failure means the node is really gone.
            dropNodeClient(node);
        }
    }
    return nullptr;
}

void
Coordinator::dispatchRound()
{
    struct Plan
    {
        std::uint64_t gid = 0;
        std::string node;
        Json submit;
    };
    std::vector<Plan> plans;
    {
        std::lock_guard<std::mutex> lk(mu_);
        // Tenants with pending work, in admission order per tenant.
        std::map<std::string, std::vector<FabricJob *>> pending;
        for (auto &[gid, job] : jobs_) {
            if (job->state == FabricJob::State::Pending)
                pending[job->tenant].push_back(job.get());
        }
        if (pending.empty())
            return;
        // Fair share: round-robin across tenants, resuming after the
        // tenant served last so no tenant's backlog starves another's.
        std::vector<std::string> order;
        for (const auto &[tenant, list] : pending)
            order.push_back(tenant);
        std::size_t start = 0;
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (order[i] > lastServedTenant_) {
                start = i;
                break;
            }
        }
        const auto loadPerWorker = [](const Node &n) {
            const double load = double(n.queueDepth + n.running +
                                       n.sentSinceBeat);
            return load / double(std::max(1u, n.workers));
        };
        std::map<std::string, std::size_t> cursor;
        bool progress = true;
        while (progress) {
            progress = false;
            for (std::size_t i = 0; i < order.size(); ++i) {
                const std::string &tenant =
                    order[(start + i) % order.size()];
                auto &list = pending[tenant];
                std::size_t &next = cursor[tenant];
                if (next >= list.size())
                    continue;
                FabricJob &job = *list[next];
                // Placement: affinity hint, then workload locality,
                // then least load per worker.
                const Node *target = nullptr;
                if (!job.affinity.empty()) {
                    const auto it = nodes_.find(job.affinity);
                    if (it != nodes_.end() && it->second.alive)
                        target = &it->second;
                }
                if (!target) {
                    const auto hint =
                        lastNodeForWorkload_.find(job.workload);
                    if (hint != lastNodeForWorkload_.end()) {
                        const auto it = nodes_.find(hint->second);
                        if (it != nodes_.end() && it->second.alive &&
                            loadPerWorker(it->second) < 1.0)
                            target = &it->second;
                    }
                }
                if (!target) {
                    double best = 0.0;
                    for (const auto &[name, node] : nodes_) {
                        if (!node.alive)
                            continue;
                        const double score = loadPerWorker(node);
                        if (!target || score < best) {
                            target = &node;
                            best = score;
                        }
                    }
                }
                if (!target)
                    return; // No live node: nothing dispatches.
                ++next;
                progress = true;
                lastServedTenant_ = tenant;
                nodes_[target->name].sentSinceBeat += 1;
                Json::Object body = job.submitBody;
                plans.push_back(
                    Plan{job.gid, target->name,
                         Json(std::move(body))});
            }
        }
    }
    for (Plan &plan : plans) {
        const auto reply = nodeRequest(plan.node, plan.submit);
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = jobs_.find(plan.gid);
        if (it == jobs_.end())
            continue;
        FabricJob &job = *it->second;
        if (job.state != FabricJob::State::Pending)
            continue;
        if (!reply || !replyOk(*reply)) {
            // Daemon unreachable or its queue is full: the job stays
            // pending and the next round tries again (possibly on
            // another node). A validation error is permanent: fail.
            if (reply && reply->find("error")) {
                job.state = FabricJob::State::Terminal;
                Json::Object o = reply->asObject();
                o["job"] = Json(job.gid);
                job.result = Json(std::move(o));
                ++failed_;
                --tenants_[job.tenant].inFlight;
                eventJobLocked(
                    job, "fail",
                    {{"reason",
                      Json(stringField(*reply, "error"))}});
                doneCv_.notify_all();
            }
            noteGaugesLocked();
            continue;
        }
        job.state = FabricJob::State::Dispatched;
        job.node = plan.node;
        job.localId = intField(*reply, "job");
        job.localState = "queued";
        lastNodeForWorkload_[job.workload] = plan.node;
        ++dispatches_;
        eventJobLocked(job, "dispatch",
                       {{"node", Json(plan.node)},
                        {"local_job", Json(job.localId)}});
        noteGaugesLocked();
    }
}

void
Coordinator::stealRound()
{
    struct Plan
    {
        std::uint64_t gid = 0;
        std::string from, to;
        std::uint64_t localId = 0;
        Json submit;
    };
    Plan plan;
    {
        std::lock_guard<std::mutex> lk(mu_);
        // An idle node has a free worker and nothing queued; a deep
        // node has waiting work. One steal per round keeps decisions
        // based on fresh heartbeats.
        const Node *idle = nullptr;
        for (const auto &[name, node] : nodes_) {
            if (node.alive && node.queueDepth == 0 &&
                node.sentSinceBeat == 0 &&
                node.running < node.workers) {
                idle = &node;
                break;
            }
        }
        if (!idle)
            return;
        // Victim: a queued or parked fabric job on the deepest other
        // node; prefer parked (a migration carries its progress).
        FabricJob *victim = nullptr;
        std::uint64_t victim_depth = 0;
        bool victim_parked = false;
        for (auto &[gid, job] : jobs_) {
            if (job->state != FabricJob::State::Dispatched)
                continue;
            if (job->node == idle->name)
                continue;
            if (job->localState != "queued" &&
                job->localState != "parked")
                continue;
            const auto node_it = nodes_.find(job->node);
            if (node_it == nodes_.end() || !node_it->second.alive)
                continue;
            const Node &src = node_it->second;
            if (src.queueDepth == 0)
                continue;
            const bool parked = job->localState == "parked";
            if (!victim || (parked && !victim_parked) ||
                (parked == victim_parked &&
                 src.queueDepth > victim_depth)) {
                victim = job.get();
                victim_depth = src.queueDepth;
                victim_parked = parked;
            }
        }
        if (!victim)
            return;
        plan.gid = victim->gid;
        plan.from = victim->node;
        plan.to = idle->name;
        plan.localId = victim->localId;
        plan.submit = Json(Json::Object(victim->submitBody));
        // Reserve the idle slot so dispatch does not race it.
        nodes_[idle->name].sentSinceBeat += 1;
    }

    // Yank first: losing the race (the job started running or
    // finished meanwhile) is a clean no-op.
    Json::Object yank;
    yank["op"] = Json("yank");
    yank["job"] = Json(plan.localId);
    const auto yanked = nodeRequest(plan.from, Json(std::move(yank)));
    if (!yanked || !replyOk(*yanked)) {
        std::lock_guard<std::mutex> lk(mu_);
        // Stale view: force the poller to refresh this job.
        const auto it = jobs_.find(plan.gid);
        if (it != jobs_.end() &&
            it->second->state == FabricJob::State::Dispatched)
            it->second->localState.clear();
        return;
    }
    const bool has_image = [&] {
        const Json *image = yanked->find("image");
        return image && image->isBool() && image->asBool();
    }();
    const std::uint64_t image_bytes = intField(*yanked, "ckpt_bytes");

    std::uint64_t xfer = 0;
    if (has_image) {
        // Migration: ship the vtsim-ckpt-v1 image chunk by chunk into
        // a staged transfer on the target daemon.
        Json::Object begin;
        begin["op"] = Json("ckpt_begin");
        const auto began = nodeRequest(plan.to, Json(std::move(begin)));
        if (!began || !replyOk(*began))
            return; // Image still on the source; job stays migrated
                    // there until an operator intervenes — rare, and
                    // the next submit of the batch is unaffected.
        xfer = intField(*began, "xfer");
        std::uint64_t offset = 0;
        while (offset < image_bytes) {
            Json::Object read;
            read["op"] = Json("ckpt_read");
            read["job"] = Json(plan.localId);
            read["offset"] = Json(offset);
            read["len"] = Json(kMigrateChunkBytes);
            const auto chunk =
                nodeRequest(plan.from, Json(std::move(read)));
            if (!chunk || !replyOk(*chunk))
                return;
            const std::string data = stringField(*chunk, "data");
            const std::uint64_t bytes = intField(*chunk, "bytes");
            if (bytes == 0)
                break;
            Json::Object put;
            put["op"] = Json("ckpt_chunk");
            put["xfer"] = Json(xfer);
            put["data"] = Json(data);
            const auto stored =
                nodeRequest(plan.to, Json(std::move(put)));
            if (!stored || !replyOk(*stored))
                return;
            offset += bytes;
        }
        Json::Object release;
        release["op"] = Json("release");
        release["job"] = Json(plan.localId);
        nodeRequest(plan.from, Json(std::move(release)));
    }

    Json::Object submit = plan.submit.asObject();
    if (xfer != 0)
        submit["resume_xfer"] = Json(xfer);
    const auto reply = nodeRequest(plan.to, Json(std::move(submit)));

    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(plan.gid);
    if (it == jobs_.end())
        return;
    FabricJob &job = *it->second;
    if (!reply || !replyOk(*reply)) {
        // The idle daemon would not take it: re-dispatch from scratch
        // next round (the image, if any, was already released).
        job.state = FabricJob::State::Pending;
        job.node.clear();
        job.localId = 0;
        job.localState.clear();
        noteGaugesLocked();
        return;
    }
    job.node = plan.to;
    job.localId = intField(*reply, "job");
    job.localState = "queued";
    lastNodeForWorkload_[job.workload] = plan.to;
    Node &from_node = nodes_[plan.from];
    Node &to_node = nodes_[plan.to];
    if (has_image) {
        ++migrations_;
        ++from_node.migrationsOut;
        ++to_node.migrationsIn;
        eventJobLocked(job, "migrate",
                       {{"from", Json(plan.from)},
                        {"to", Json(plan.to)},
                        {"bytes", Json(image_bytes)}});
        logging::info("vtsim-coord", "migrated job ", job.gid,
                      " (", image_bytes, " ckpt bytes) ", plan.from,
                      " -> ", plan.to);
    } else {
        ++steals_;
        ++from_node.stealsOut;
        ++to_node.stealsIn;
        eventJobLocked(job, "steal", {{"from", Json(plan.from)},
                                      {"to", Json(plan.to)}});
        logging::info("vtsim-coord", "stole job ", job.gid, " ",
                      plan.from, " -> ", plan.to);
    }
    // The source's queue shrank; keep the local estimate honest until
    // its next heartbeat.
    if (from_node.queueDepth > 0)
        --from_node.queueDepth;
}

void
Coordinator::pollRound()
{
    struct Probe
    {
        std::uint64_t gid = 0;
        std::string node;
        std::uint64_t localId = 0;
    };
    std::vector<Probe> probes;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (const auto &[gid, job] : jobs_) {
            if (job->state == FabricJob::State::Dispatched)
                probes.push_back(
                    Probe{gid, job->node, job->localId});
        }
    }
    for (const Probe &probe : probes) {
        Json::Object query;
        query["op"] = Json("query");
        query["job"] = Json(probe.localId);
        const auto reply =
            nodeRequest(probe.node, Json(std::move(query)));
        if (!reply || !replyOk(*reply))
            continue; // Node loss is the heartbeat checker's job.
        const std::string state = stringField(*reply, "state");

        std::lock_guard<std::mutex> lk(mu_);
        const auto it = jobs_.find(probe.gid);
        if (it == jobs_.end())
            continue;
        FabricJob &job = *it->second;
        // The steal path may have moved the job while this probe was
        // in flight: only commit observations that still match.
        if (job.state != FabricJob::State::Dispatched ||
            job.node != probe.node || job.localId != probe.localId)
            continue;
        if (state == "done" || state == "failed" ||
            state == "cancelled") {
            Json::Object o = reply->asObject();
            o["job"] = Json(job.gid);
            o["node"] = Json(job.node);
            job.result = Json(std::move(o));
            job.state = FabricJob::State::Terminal;
            job.localState = state;
            --tenants_[job.tenant].inFlight;
            if (state == "done") {
                ++completed_;
                const Json *stats = reply->find("stats");
                const std::uint64_t cycles =
                    stats ? intField(*stats, "cycles") : 0;
                const Json *wall = reply->find("wall_seconds");
                const double wall_ms =
                    wall && wall->isNumber() ? 1e3 * wall->asDouble()
                                             : 0.0;
                const Json *verified = reply->find("verified");
                eventJobLocked(
                    job, "finish",
                    {{"cycles", Json(cycles)},
                     {"wall_ms", Json(wall_ms)},
                     {"verified", Json(verified && verified->isBool() &&
                                       verified->asBool())}});
            } else {
                ++failed_;
                eventJobLocked(
                    job, "fail",
                    {{"reason", Json(stringField(*reply, "reason"))}});
            }
            noteGaugesLocked();
            doneCv_.notify_all();
        } else if (state == "migrated") {
            // Only the coordinator yanks, and the steal path rewrites
            // the mapping synchronously — seeing "migrated" here means
            // this probe raced a steal; the mapping check above will
            // reject the next commit anyway.
            continue;
        } else if (!state.empty()) {
            job.localState = state;
        }
    }
}

// --------------------------------------------------------------------
// Introspection
// --------------------------------------------------------------------

void
Coordinator::eventJobLocked(FabricJob &job, const char *event,
                            Json::Object fields)
{
    if (!evlog_)
        return;
    job.lastEventSeq = evlog_->emitJob(event, job.gid,
                                       job.lastEventSeq,
                                       std::move(fields));
}

void
Coordinator::noteGaugesLocked()
{
    std::uint64_t pending = 0, dispatched = 0, alive = 0;
    for (const auto &[gid, job] : jobs_) {
        if (job->state == FabricJob::State::Pending)
            ++pending;
        else if (job->state == FabricJob::State::Dispatched)
            ++dispatched;
    }
    for (const auto &[name, node] : nodes_) {
        if (node.alive)
            ++alive;
    }
    jobsPending_ = pending;
    jobsDispatched_ = dispatched;
    nodesAlive_ = alive;
}

Json
Coordinator::statusJson() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Json::Array nodes;
    for (const auto &[name, node] : nodes_) {
        Json::Object n;
        n["node"] = Json(name);
        n["addr"] = Json(node.addr.str());
        n["workers"] = Json(node.workers);
        n["queue_depth"] = Json(node.queueDepth);
        n["running"] = Json(node.running);
        n["parked"] = Json(node.parked);
        n["alive"] = Json(node.alive);
        n["steals_in"] = Json(node.stealsIn);
        n["steals_out"] = Json(node.stealsOut);
        n["migrations_in"] = Json(node.migrationsIn);
        n["migrations_out"] = Json(node.migrationsOut);
        nodes.push_back(Json(std::move(n)));
    }
    Json::Array tenants;
    for (const auto &[name, tenant] : tenants_) {
        Json::Object t;
        t["tenant"] = Json(name);
        t["in_flight"] = Json(std::uint64_t(tenant.inFlight));
        t["submitted"] = Json(tenant.submitted);
        t["throttled"] = Json(tenant.throttled);
        tenants.push_back(Json(std::move(t)));
    }
    Json::Object jobs;
    jobs["submitted"] = Json(submitted_.value());
    jobs["pending"] = Json(jobsPending_);
    jobs["dispatched"] = Json(jobsDispatched_);
    jobs["completed"] = Json(completed_.value());
    jobs["failed"] = Json(failed_.value());

    Json::Object fabric;
    fabric["nodes"] = Json(std::move(nodes));
    fabric["tenants"] = Json(std::move(tenants));
    fabric["jobs"] = Json(std::move(jobs));
    fabric["dispatches"] = Json(dispatches_.value());
    fabric["steals"] = Json(steals_.value());
    fabric["migrations"] = Json(migrations_.value());
    fabric["throttles"] = Json(throttles_.value());
    fabric["rejected_busy"] = Json(rejectedBusy_.value());
    fabric["node_losses"] = Json(nodeLosses_.value());

    Json::Array job_list;
    for (const auto &[gid, job] : jobs_) {
        Json::Object j;
        j["job"] = Json(gid);
        j["workload"] = Json(job->workload);
        j["tenant"] = Json(job->tenant);
        j["priority"] = Json(job->priority);
        switch (job->state) {
          case FabricJob::State::Pending:
            j["state"] = Json("pending");
            break;
          case FabricJob::State::Dispatched:
            j["state"] = Json(job->localState.empty()
                                  ? "dispatched"
                                  : job->localState);
            j["node"] = Json(job->node);
            break;
          case FabricJob::State::Terminal:
            j["state"] = Json(job->localState);
            j["node"] = Json(job->node);
            break;
        }
        job_list.push_back(Json(std::move(j)));
    }

    Json::Object o;
    o["ok"] = Json(true);
    o["op"] = Json("status");
    o["uptime_seconds"] = Json(secondsSince(started_));
    o["fabric"] = Json(std::move(fabric));
    o["job_list"] = Json(std::move(job_list));
    return Json(std::move(o));
}

Json
Coordinator::statsJsonSection() const
{
    Json status_obj = statusJson();
    const Json *fabric = status_obj.find("fabric");
    return fabric ? *fabric : Json(Json::Object{});
}

std::string
Coordinator::metricsText() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::ostringstream os;
    telemetry::writePrometheus(os, registry_);
    return os.str();
}

} // namespace vtsim::fabric
