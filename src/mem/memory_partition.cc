#include "mem/memory_partition.hh"

#include <algorithm>

#include "common/log.hh"
#include "mem/interconnect.hh"
#include "telemetry/stat_registry.hh"

namespace vtsim {

MemoryPartition::MemoryPartition(std::uint32_t id, const GpuConfig &config,
                                 Interconnect &noc)
    : id_(id), config_(config), noc_(noc),
      l2_(CacheParams{"l2_" + std::to_string(id), config.l2SlicePerPartition,
                      config.l2Assoc, config.l2LineSize, config.l2Mshrs,
                      config.l2MshrTargets}),
      dram_([&config, id] {
          DramParams dp;
          dp.name = "dram_" + std::to_string(id);
          dp.numBanks = config.dramBanksPerPartition;
          dp.rowBufferBytes = config.dramRowBufferSize;
          dp.rowHitLatency = config.dramRowHitLatency;
          dp.rowMissLatency = config.dramRowMissLatency;
          dp.bytesPerCycle = config.dramBytesPerCycle;
          dp.lineSize = config.l2LineSize;
          dp.schedWindow = std::max(config.dramSchedWindow, 1u);
          dp.addressStride = config.numMemPartitions;
          return dp;
      }())
{
}

void
MemoryPartition::registerTelemetry(telemetry::StatRegistry &reg)
{
    using telemetry::KernelStatRole;
    reg.addGroup(l2_.stats());
    reg.setRole(l2_.stats().name() + ".hits", KernelStatRole::L2Hits);
    reg.setRole(l2_.stats().name() + ".misses", KernelStatRole::L2Misses);

    reg.addGroup(dram_.stats());
    reg.setRole(dram_.stats().name() + ".row_hits",
                KernelStatRole::DramRowHits);
    reg.setRole(dram_.stats().name() + ".row_misses",
                KernelStatRole::DramRowMisses);
    reg.setRole(dram_.stats().name() + ".bytes",
                KernelStatRole::DramBytes);
    for (std::uint32_t g = 0; g < maxGrids; ++g) {
        const std::string tag = ".grid" + std::to_string(g);
        reg.setRole(l2_.stats().name() + tag + ".hits",
                    KernelStatRole::L2Hits, g);
        reg.setRole(l2_.stats().name() + tag + ".misses",
                    KernelStatRole::L2Misses, g);
        reg.setRole(dram_.stats().name() + tag + ".row_hits",
                    KernelStatRole::DramRowHits, g);
        reg.setRole(dram_.stats().name() + tag + ".row_misses",
                    KernelStatRole::DramRowMisses, g);
        reg.setRole(dram_.stats().name() + tag + ".bytes",
                    KernelStatRole::DramBytes, g);
    }
}

void
MemoryPartition::receive(const MemRequest &req, Cycle now)
{
    (void)now;
    ffHorizon_ = 0;
    input_.push_back(req);
}

void
MemoryPartition::serviceRequest(const MemRequest &req, Cycle now)
{
    if (req.kind == MemAccessKind::Store) {
        if (config_.l2WriteBack) {
            // Write-back, write-allocate (no fetch): the store lands in
            // the L2; DRAM sees it only when the dirty line is evicted.
            // The writeback is attributed to the evicting grid — the
            // dirtying grid is not tracked per line.
            const FillResult res = l2_.storeAllocate(req.lineAddr);
            if (res.evictedDirty) {
                dram_.enqueue(res.evictedLine, config_.l2LineSize, false,
                              now, req.grid);
            }
        } else {
            // Write-through, no-write-allocate: touch the L2 tag (keeps
            // a hot line hot) and spend DRAM write bandwidth.
            l2_.storeAccess(req.lineAddr);
            dram_.enqueue(req.lineAddr, req.bytes, false, now, req.grid);
        }
        return;
    }

    switch (l2_.access(req)) {
      case CacheOutcome::Hit:
        respPending_.push({now + config_.l2HitLatency, req});
        break;
      case CacheOutcome::MissNew:
        dram_.enqueue(req.lineAddr, config_.l2LineSize, true, now,
                      req.grid);
        break;
      case CacheOutcome::MissMerged:
        break; // Will be answered by the in-flight fill.
      case CacheOutcome::RejectMshrFull:
      case CacheOutcome::RejectTargets:
        // Out of miss resources: put it back and stall this cycle.
        input_.push_front(req);
        break;
    }
}

void
MemoryPartition::tick(Cycle now)
{
    // Inside a cached event-free window nothing below can act: no input
    // is queued (receive() drops the horizon), no response has matured
    // and no DRAM completion or bank is due before ffHorizon_.
    if (now < ffHorizon_)
        return;

    // 1. DRAM fills that completed: install in L2 and answer waiters.
    for (Addr line : dram_.advance(now)) {
        const FillResult res = l2_.fill(line);
        for (const MemRequest &target : res.targets)
            respPending_.push({now + config_.l2HitLatency, target});
        if (res.evictedDirty) {
            // Attribute the writeback to the filling grid (the miss
            // initiator is the first parked target).
            const GridId grid =
                res.targets.empty() ? 0 : res.targets.front().grid;
            dram_.enqueue(res.evictedLine, config_.l2LineSize, false,
                          now, grid);
        }
    }

    // 2. Responses whose L2 pipeline delay elapsed go to the NoC.
    while (!respPending_.empty() && respPending_.top().readyAt <= now) {
        noc_.sendResponse(respPending_.top().req, now);
        respPending_.pop();
    }

    // 3. Service requests through the L2 ports. A rejected request is
    //    pushed back to the queue head; stop for this cycle when that
    //    happens to avoid spinning on it.
    for (std::uint32_t port = 0;
         port < config_.l2PortsPerCycle && !input_.empty(); ++port) {
        const MemRequest req = input_.front();
        input_.pop_front();
        const std::size_t depth_before = input_.size();
        serviceRequest(req, now);
        if (input_.size() > depth_before)
            break;
    }

    ffHorizon_ = config_.fastForwardEnabled ? nextEventCycle(now + 1) : 0;
}

Cycle
MemoryPartition::nextEventCycle(Cycle now)
{
    // Queued input is serviced every tick (even a head parked on a full
    // MSHR retries), so its next event is immediate.
    if (!input_.empty())
        return now;
    Cycle next = dram_.nextEventCycle(now);
    if (!respPending_.empty())
        next = std::min(next, std::max(now, respPending_.top().readyAt));
    return next;
}

bool
MemoryPartition::idle() const
{
    return input_.empty() && dram_.idle() && respPending_.empty() &&
           l2_.mshrsInUse() == 0;
}

void
MemoryPartition::reset()
{
    input_.clear();
    respPending_ = {};
    ffHorizon_ = 0;
    l2_.reset();
    dram_.reset();
}

void
MemoryPartition::save(Serializer &ser) const
{
    // ffHorizon_ is a skip-guard cache of how the run reached this
    // state, not part of the state: a sharded run ticks on a different
    // cadence than a sequential one, so serializing it would break
    // checkpoint byte-identity across --sim-threads values. Restoring
    // it as 0 costs one recomputation on the next tick.
    const std::size_t sec = ser.beginSection("part");
    ser.put<std::uint64_t>(input_.size());
    for (const MemRequest &req : input_)
        saveMemRequest(ser, req);
    auto pending = respPending_;
    ser.put<std::uint64_t>(pending.size());
    while (!pending.empty()) {
        ser.put(pending.top().readyAt);
        saveMemRequest(ser, pending.top().req);
        pending.pop();
    }
    ser.endSection(sec);
    l2_.save(ser);
    dram_.save(ser);
}

void
MemoryPartition::restore(Deserializer &des)
{
    des.beginSection("part");
    ffHorizon_ = 0;
    input_.clear();
    const auto inputs = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < inputs; ++i)
        input_.push_back(restoreMemRequest(des));
    respPending_ = {};
    const auto pending = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < pending; ++i) {
        PendingResponse pr;
        des.get(pr.readyAt);
        pr.req = restoreMemRequest(des);
        respPending_.push(pr);
    }
    des.endSection();
    l2_.restore(des);
    dram_.restore(des);
}

} // namespace vtsim
