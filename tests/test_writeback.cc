/**
 * @file
 * Tests for the write-back L2 extension: dirty bits, no-fetch
 * write-allocate, dirty-eviction writebacks, and end-to-end behaviour.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

CacheParams
tinyParams()
{
    CacheParams p;
    p.name = "wb";
    p.size = 1024; // 2 sets x 4 ways x 128B
    p.assoc = 4;
    p.lineSize = 128;
    p.numMshrs = 4;
    p.mshrTargets = 4;
    return p;
}

MemRequest
load(Addr line, std::uint64_t token = 0)
{
    MemRequest r;
    r.lineAddr = line;
    r.token = token;
    return r;
}

TEST(WriteBack, StoreAllocateInstallsDirtyLine)
{
    Cache c(tinyParams());
    const auto res = c.storeAllocate(0);
    EXPECT_FALSE(res.evictedDirty);
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probeDirty(0));
    // A later load hits without any fetch.
    EXPECT_EQ(c.access(load(0)), CacheOutcome::Hit);
}

TEST(WriteBack, StoreHitJustDirties)
{
    Cache c(tinyParams());
    c.access(load(0));
    c.fill(0);
    EXPECT_FALSE(c.probeDirty(0));
    const auto res = c.storeAllocate(0);
    EXPECT_FALSE(res.evictedDirty);
    EXPECT_TRUE(c.probeDirty(0));
    EXPECT_EQ(c.stats().counterValue("store_hits"), 1u);
}

TEST(WriteBack, DirtyVictimReportedOnEviction)
{
    Cache c(tinyParams());
    // Fill set 0 with dirty lines.
    for (Addr line : {0u, 256u, 512u, 768u})
        c.storeAllocate(line);
    // One more allocation in the set evicts the LRU (line 0), dirty.
    const auto res = c.storeAllocate(1024);
    EXPECT_TRUE(res.evictedDirty);
    EXPECT_EQ(res.evictedLine, 0u);
    EXPECT_EQ(c.stats().counterValue("dirty_evictions"), 1u);
}

TEST(WriteBack, CleanVictimNotReported)
{
    Cache c(tinyParams());
    for (Addr line : {0u, 256u, 512u, 768u}) {
        c.access(load(line));
        c.fill(line);
    }
    const auto res = c.storeAllocate(1024);
    EXPECT_FALSE(res.evictedDirty);
}

TEST(WriteBack, LoadFillEvictingDirtyLineReportsIt)
{
    Cache c(tinyParams());
    for (Addr line : {0u, 256u, 512u, 768u})
        c.storeAllocate(line);
    c.access(load(1024));
    const auto res = c.fill(1024);
    EXPECT_TRUE(res.evictedDirty);
    EXPECT_EQ(res.evictedLine, 0u);
}

TEST(WriteBack, FillDirtiesLineWhenAStoreWasParked)
{
    Cache c(tinyParams());
    MemRequest st = load(0, 9);
    st.kind = MemAccessKind::Store;
    EXPECT_EQ(c.access(load(0, 1)), CacheOutcome::MissNew);
    EXPECT_EQ(c.access(st), CacheOutcome::MissMerged);
    c.fill(0);
    EXPECT_TRUE(c.probeDirty(0));
}

TEST(WriteBack, FlushClearsDirtyBits)
{
    Cache c(tinyParams());
    c.storeAllocate(0);
    c.flush();
    EXPECT_FALSE(c.probe(0));
    c.access(load(0));
    c.fill(0);
    EXPECT_FALSE(c.probeDirty(0));
}

TEST(WriteBackEndToEnd, SuiteVerifiesUnderWriteBackL2)
{
    for (const char *name : {"vecadd", "reduce", "transpose"}) {
        GpuConfig cfg = test::smallVtConfig();
        cfg.l2WriteBack = true;
        auto wl = makeWorkload(name, 0);
        const Kernel k = wl->buildKernel();
        Gpu gpu(cfg);
        const LaunchParams lp = wl->prepare(gpu.memory());
        gpu.launch(k, lp);
        EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    }
}

TEST(WriteBackEndToEnd, StoreTrafficDeferredToEvictions)
{
    // A store-only kernel: under write-back the stores land in the L2
    // and DRAM write traffic is at most the dirty working set (or its
    // evicted part), whereas write-through sends every store line out.
    auto run = [](bool write_back) {
        GpuConfig cfg = test::smallConfig();
        cfg.numSms = 1;
        cfg.numMemPartitions = 1;
        cfg.l2WriteBack = write_back;
        Gpu gpu(cfg);
        const Kernel k = test::storeConstKernel();
        const std::uint32_t n = 2048;
        const Addr out = gpu.memory().alloc(n * 4);
        LaunchParams lp;
        lp.cta = Dim3(64);
        lp.grid = Dim3(n / 64);
        lp.params = {std::uint32_t(out), n, 5};
        const auto stats = gpu.launch(k, lp);
        for (std::uint32_t i = 0; i < n; ++i)
            EXPECT_EQ(gpu.memory().read32(out + 4 * i), 5u);
        return stats.dramBytes;
    };
    const auto wt_bytes = run(false);
    const auto wb_bytes = run(true);
    // 2048 words = 64 lines of store traffic under write-through; under
    // write-back most lines stay resident in the 16 KB L2 slice.
    EXPECT_GT(wt_bytes, 0u);
    EXPECT_LT(wb_bytes, wt_bytes);
}

} // namespace
} // namespace vtsim
