/**
 * @file
 * FIG-1 (motivation): for each benchmark, how many CTAs each hardware
 * limit would allow per SM and which one binds. The paper's observation
 * to reproduce: most benchmarks are bounded by a *scheduling* structure
 * while the capacity limit still has headroom.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"
#include "occupancy/occupancy.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-1", "occupancy limiter classification");
    const GpuConfig cfg = GpuConfig::fermiLike();

    std::printf("%-14s %6s %6s %7s %6s %6s | %5s %8s %-12s %s\n",
                "benchmark", "warps", "ctas", "threads", "regs", "shmem",
                "ctas", "capacity", "limiter", "sched-limited?");
    int sched_limited = 0, total = 0;
    for (const auto &name : benchmarkNames()) {
        auto wl = makeWorkload(name, benchScale);
        const Kernel k = wl->buildKernel();
        GlobalMemory scratch;
        const LaunchParams lp = wl->prepare(scratch);
        const auto r = computeOccupancy(cfg, k, lp);
        const bool sl = r.schedulingLimited();
        sched_limited += sl;
        ++total;
        std::printf("%-14s %6u %6u %7u %6u %6u | %5u %8u %-12s %s\n",
                    name.c_str(), r.ctasByWarpSlots, r.ctasByCtaSlots,
                    r.ctasByThreadSlots, r.ctasByRegisters,
                    std::min(r.ctasBySharedMem, 999u), r.ctasPerSm,
                    r.ctasCapacityOnly, toString(r.limiter).c_str(),
                    sl ? "YES" : "no");
    }
    std::printf("\n%d of %d benchmarks are scheduling-limited "
                "(the paper's motivating majority)\n", sched_limited,
                total);
    return 0;
}
