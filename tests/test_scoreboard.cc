/**
 * @file
 * Unit tests for the per-warp register scoreboard.
 */

#include <gtest/gtest.h>

#include "sm/scoreboard.hh"

namespace vtsim {
namespace {

Instruction
instr(RegIndex dst, RegIndex a = noReg, RegIndex b = noReg)
{
    Instruction i;
    i.op = Opcode::IADD;
    i.dst = dst;
    i.src[0] = a;
    i.src[1] = b;
    return i;
}

TEST(Scoreboard, CleanAfterReset)
{
    Scoreboard sb;
    sb.reset(16);
    EXPECT_EQ(sb.pendingCount(), 0u);
    EXPECT_EQ(sb.pendingLongCount(), 0u);
    EXPECT_FALSE(sb.hasHazard(instr(0, 1, 2)));
}

TEST(Scoreboard, RawHazard)
{
    Scoreboard sb;
    sb.reset(16);
    sb.reserve(3, false);
    EXPECT_TRUE(sb.hasHazard(instr(0, 3, 1)));
    EXPECT_TRUE(sb.hasHazard(instr(0, 1, 3)));
    EXPECT_FALSE(sb.hasHazard(instr(0, 1, 2)));
}

TEST(Scoreboard, WawHazard)
{
    Scoreboard sb;
    sb.reset(16);
    sb.reserve(5, false);
    EXPECT_TRUE(sb.hasHazard(instr(5, 1, 2)));
}

TEST(Scoreboard, ReleaseClearsHazard)
{
    Scoreboard sb;
    sb.reset(16);
    sb.reserve(5, false);
    sb.release(5);
    EXPECT_FALSE(sb.hasHazard(instr(0, 5, 5)));
    EXPECT_EQ(sb.pendingCount(), 0u);
}

TEST(Scoreboard, LongLatencyTracking)
{
    Scoreboard sb;
    sb.reset(16);
    sb.reserve(1, true);
    sb.reserve(2, false);
    EXPECT_EQ(sb.pendingCount(), 2u);
    EXPECT_EQ(sb.pendingLongCount(), 1u);
    EXPECT_TRUE(sb.pendingLong(1));
    EXPECT_FALSE(sb.pendingLong(2));
    sb.release(1);
    EXPECT_EQ(sb.pendingLongCount(), 0u);
    EXPECT_EQ(sb.pendingCount(), 1u);
}

TEST(Scoreboard, ThirdSourceChecked)
{
    Scoreboard sb;
    sb.reset(16);
    sb.reserve(9, false);
    Instruction i = instr(0, 1, 2);
    i.src[2] = 9;
    EXPECT_TRUE(sb.hasHazard(i));
}

TEST(Scoreboard, ResetClearsState)
{
    Scoreboard sb;
    sb.reset(8);
    sb.reserve(7, true);
    sb.reset(8);
    EXPECT_EQ(sb.pendingCount(), 0u);
    EXPECT_EQ(sb.pendingLongCount(), 0u);
    EXPECT_FALSE(sb.pending(7));
}

TEST(ScoreboardDeath, DoubleReservePanics)
{
    Scoreboard sb;
    sb.reset(8);
    sb.reserve(1, false);
    EXPECT_DEATH(sb.reserve(1, false), "double reserve");
}

TEST(ScoreboardDeath, ReleaseIdlePanics)
{
    Scoreboard sb;
    sb.reset(8);
    EXPECT_DEATH(sb.release(1), "release of idle");
}

} // namespace
} // namespace vtsim
