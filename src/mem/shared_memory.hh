/**
 * @file
 * Timing model for the SM's shared-memory (scratchpad) port: a single
 * pipelined port that serialises bank-conflicting passes. Functional data
 * lives in CtaFuncState; this class only accounts time.
 */

#ifndef VTSIM_MEM_SHARED_MEMORY_HH
#define VTSIM_MEM_SHARED_MEMORY_HH

#include "common/types.hh"
#include "sim/serialize_util.hh"
#include "stats/stats.hh"

namespace vtsim {

class SharedMemoryModel
{
  public:
    /**
     * @param latency Conflict-free access latency in cycles.
     * @param name Stat group name.
     */
    SharedMemoryModel(std::uint32_t latency, const std::string &name);

    /**
     * Schedule one warp shared-memory instruction needing @p passes
     * serialised bank passes, arriving at @p now.
     * @return Completion (writeback) cycle.
     */
    Cycle access(std::uint32_t passes, Cycle now);

    /** True when the port can accept a new access at @p now. */
    bool canAccept(Cycle now) const { return portReadyAt_ <= now; }

    /** First cycle the port frees (fast-forward horizon input). */
    Cycle portReadyAt() const { return portReadyAt_; }

    StatGroup &stats() { return stats_; }
    std::uint64_t conflictPasses() const { return conflictPasses_.value(); }

    // Lifecycle helpers driven by the owning SmCore.
    void
    reset()
    {
        portReadyAt_ = 0;
        accesses_.reset();
        conflictPasses_.reset();
    }

    void
    save(Serializer &ser) const
    {
        const std::size_t sec = ser.beginSection("shmm");
        ser.put(portReadyAt_);
        saveStat(ser, accesses_);
        saveStat(ser, conflictPasses_);
        ser.endSection(sec);
    }

    void
    restore(Deserializer &des)
    {
        des.beginSection("shmm");
        des.get(portReadyAt_);
        restoreStat(des, accesses_);
        restoreStat(des, conflictPasses_);
        des.endSection();
    }

  private:
    std::uint32_t latency_;
    Cycle portReadyAt_ = 0;

    StatGroup stats_;
    Counter accesses_;
    Counter conflictPasses_; ///< Extra passes beyond the first.
};

} // namespace vtsim

#endif // VTSIM_MEM_SHARED_MEMORY_HH
