#include "service/event_log.hh"

#include <unistd.h>

#include <utility>

#include "common/log.hh"

namespace vtsim::service {

EventLog::EventLog(const std::string &path)
    : path_(path), opened_(std::chrono::steady_clock::now()),
      os_(path, std::ios::out | std::ios::trunc)
{
    if (!os_)
        VTSIM_FATAL("cannot open event log '", path, "'");
    emit("log_open", {{"pid", Json(std::int64_t(::getpid()))}});
}

double
EventLog::elapsedMs() const
{
    const auto now = std::chrono::steady_clock::now();
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - opened_);
    return double(us.count()) / 1000.0;
}

std::uint64_t
EventLog::emit(const char *event, Json::Object fields)
{
    // t_ms is stamped inside the lock so file order is also time order.
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t seq = nextSeq_++;
    fields["v"] = Json("vtsim-evlog-v1");
    fields["seq"] = Json(seq);
    fields["t_ms"] = Json(elapsedMs());
    fields["event"] = Json(event);
    os_ << Json(std::move(fields)).dump() << '\n';
    os_.flush();
    return seq;
}

std::uint64_t
EventLog::emitJob(const char *event, std::uint64_t job, std::uint64_t parent,
                  Json::Object fields)
{
    fields["job"] = Json(job);
    fields["parent"] = Json(parent);
    return emit(event, std::move(fields));
}

} // namespace vtsim::service
