#include "service/stats_json.hh"

#include <cstdio>
#include <sstream>

#include <unistd.h>

namespace vtsim::service {

namespace {

std::string
currentHost()
{
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown";
    return buf[0] ? buf : "unknown";
}

/** The KernelStats object body, at @p pad indentation (opening brace
 *  already written by the caller). */
void
writeKernelStatsObject(std::ostream &os, const KernelStats &s,
                       const std::string &pad)
{
    os << pad << "  \"cycles\": " << s.cycles << ",\n"
       << pad << "  \"ipc\": " << jsonDouble(s.ipc) << ",\n"
       << pad << "  \"warp_instructions\": " << s.warpInstructions
       << ",\n"
       << pad << "  \"thread_instructions\": " << s.threadInstructions
       << ",\n"
       << pad << "  \"ctas_completed\": " << s.ctasCompleted << ",\n"
       << pad << "  \"l1_hits\": " << s.l1Hits << ",\n"
       << pad << "  \"l1_misses\": " << s.l1Misses << ",\n"
       << pad << "  \"l2_hits\": " << s.l2Hits << ",\n"
       << pad << "  \"l2_misses\": " << s.l2Misses << ",\n"
       << pad << "  \"dram_row_hits\": " << s.dramRowHits << ",\n"
       << pad << "  \"dram_row_misses\": " << s.dramRowMisses << ",\n"
       << pad << "  \"dram_bytes\": " << s.dramBytes << ",\n"
       << pad << "  \"swap_outs\": " << s.swapOuts << ",\n"
       << pad << "  \"swap_ins\": " << s.swapIns << ",\n"
       << pad << "  \"stalls\": {"
       << "\"issued\": " << s.stalls.issued
       << ", \"mem\": " << s.stalls.memStall
       << ", \"short\": " << s.stalls.shortStall
       << ", \"barrier\": " << s.stalls.barrierStall
       << ", \"swap\": " << s.stalls.swapStall
       << ", \"idle\": " << s.stalls.idle << "}\n"
       << pad << "}";
}

} // namespace

std::string
jsonDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char probe[40];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(probe, "%lf", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

void
writeStatsJson(std::ostream &os, const std::vector<RunRecord> &runs,
               const Json *service, const BatchMeta &meta,
               const Json *fabric)
{
    const std::string host =
        meta.host.empty() ? currentHost() : meta.host;
    os << "{\n  \"schema\": \"vtsim-stats-v1\",\n"
       << "  \"host\": " << Json(host).dump() << ",\n"
       << "  \"wall_ms\": " << jsonDouble(meta.wallMs) << ",\n"
       << "  \"sim_threads\": " << meta.simThreads << ",\n"
       << "  \"exec_mode\": " << Json(meta.execMode).dump() << ",\n"
       << "  \"kcycles_per_sec\": " << jsonDouble(meta.kcyclesPerSec)
       << ",\n"
       << "  \"mips\": " << jsonDouble(meta.mips) << ",\n";
    if (service)
        os << "  \"service\": " << service->dump() << ",\n";
    if (fabric)
        os << "  \"fabric\": " << fabric->dump() << ",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunRecord &r = runs[i];
        const KernelStats &s = r.stats;
        os << "    {\n"
           << "      \"workload\": \"" << r.workload << "\",\n"
           << "      \"scale\": " << r.scale << ",\n"
           << "      \"config\": {"
           << "\"num_sms\": " << r.config.numSms
           << ", \"vt_enabled\": "
           << (r.config.vtEnabled ? "true" : "false")
           << ", \"throttle_enabled\": "
           << (r.config.throttleEnabled ? "true" : "false")
           << ", \"fast_forward\": "
           << (r.config.fastForwardEnabled ? "true" : "false")
           << "},\n"
           << "      \"verified\": " << (r.verified ? "true" : "false")
           << ",\n"
           << "      \"wall_seconds\": " << jsonDouble(r.wallSeconds)
           << ",\n"
           << "      \"kcycles_per_sec\": " << jsonDouble(r.kcyclesPerSec())
           << ",\n"
           << "      \"mips\": " << jsonDouble(r.mips()) << ",\n"
           << "      \"max_simt_depth\": " << r.maxSimtDepth << ",\n"
           << "      \"stats\": {\n";
        writeKernelStatsObject(os, s, "      ");
        os << ",\n";
        if (!r.sharePolicy.empty()) {
            os << "      \"share_policy\": " << Json(r.sharePolicy).dump()
               << ",\n";
        }
        if (!r.grids.empty()) {
            os << "      \"grids\": [\n";
            for (std::size_t g = 0; g < r.grids.size(); ++g) {
                const GridStats &gs = r.grids[g];
                os << "        {\n"
                   << "          \"kernel\": " << Json(gs.kernelName).dump()
                   << ",\n"
                   << "          \"priority\": " << gs.priority << ",\n"
                   << "          \"stats\": {\n";
                writeKernelStatsObject(os, gs.stats, "          ");
                os << "\n        }"
                   << (g + 1 < r.grids.size() ? "," : "") << '\n';
            }
            os << "      ],\n";
        }
        os << "      \"intervals\": [";
        // The interval series is JSONL — one object per line, already
        // valid JSON: embed the lines as array elements.
        bool first_line = true;
        std::istringstream lines(r.intervalSeries);
        std::string line;
        while (std::getline(lines, line)) {
            if (line.empty())
                continue;
            os << (first_line ? "\n        " : ",\n        ") << line;
            first_line = false;
        }
        os << (first_line ? "]" : "\n      ]") << "\n    }"
           << (i + 1 < runs.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

} // namespace vtsim::service
