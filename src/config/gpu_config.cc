#include "config/gpu_config.hh"

#include <iomanip>

#include "common/log.hh"

namespace vtsim {

std::string
toString(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::LooseRoundRobin: return "lrr";
      case SchedulerPolicy::GreedyThenOldest: return "gto";
      case SchedulerPolicy::TwoLevel: return "two-level";
    }
    return "?";
}

std::string
toString(VtSwapTrigger trigger)
{
    switch (trigger) {
      case VtSwapTrigger::AllWarpsStalled: return "all-warps-stalled";
      case VtSwapTrigger::AnyWarpStalled: return "any-warp-stalled";
    }
    return "?";
}

std::string
toString(VtSwapInPolicy policy)
{
    switch (policy) {
      case VtSwapInPolicy::ReadyFirst: return "ready-first";
      case VtSwapInPolicy::OldestFirst: return "oldest-first";
    }
    return "?";
}

GpuConfig
GpuConfig::fermiLike()
{
    // The struct defaults *are* the Fermi-class machine; spelled out as a
    // named constructor so call sites document their intent.
    return GpuConfig{};
}

GpuConfig
GpuConfig::keplerLike()
{
    GpuConfig cfg;
    cfg.numSms = 13;
    cfg.maxWarpsPerSm = 64;
    cfg.maxCtasPerSm = 16;
    cfg.maxThreadsPerSm = 2048;
    cfg.registersPerSm = 65536;
    cfg.numSchedulers = 4;
    cfg.aluThroughputPerSm = 4;
    return cfg;
}

GpuConfig
GpuConfig::testMini()
{
    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.numMemPartitions = 1;
    cfg.maxWarpsPerSm = 8;
    cfg.maxCtasPerSm = 2;
    cfg.maxThreadsPerSm = 256;
    cfg.registersPerSm = 8192;
    cfg.sharedMemPerSm = 16 * 1024;
    cfg.numSchedulers = 1;
    cfg.l1Size = 4 * 1024;
    cfg.l2SlicePerPartition = 16 * 1024;
    cfg.vtMaxVirtualCtasPerSm = 8;
    cfg.maxCycles = 2'000'000;
    return cfg;
}

void
GpuConfig::validate() const
{
    if (numSms == 0)
        VTSIM_FATAL("numSms must be nonzero");
    if (numMemPartitions == 0)
        VTSIM_FATAL("numMemPartitions must be nonzero");
    if (maxWarpsPerSm == 0 || maxCtasPerSm == 0 || maxThreadsPerSm == 0)
        VTSIM_FATAL("per-SM scheduling limits must be nonzero");
    if (maxThreadsPerSm < warpSize)
        VTSIM_FATAL("maxThreadsPerSm smaller than one warp");
    if (registersPerSm == 0)
        VTSIM_FATAL("registersPerSm must be nonzero");
    if (!isPowerOfTwo(l1LineSize) || !isPowerOfTwo(l2LineSize))
        VTSIM_FATAL("cache line sizes must be powers of two");
    if (l1LineSize != l2LineSize)
        VTSIM_FATAL("L1 and L2 line sizes must match (no sectoring)");
    if (l1Size % (l1LineSize * l1Assoc) != 0)
        VTSIM_FATAL("L1 size not divisible by assoc * line size");
    if (l2SlicePerPartition % (l2LineSize * l2Assoc) != 0)
        VTSIM_FATAL("L2 slice size not divisible by assoc * line size");
    if (!isPowerOfTwo(sharedMemBanks) || sharedMemBanks == 0)
        VTSIM_FATAL("sharedMemBanks must be a nonzero power of two");
    if (numSchedulers == 0 || issueWidth == 0)
        VTSIM_FATAL("scheduler shape must be nonzero");
    if (schedLimitMultiplier == 0)
        VTSIM_FATAL("schedLimitMultiplier must be >= 1");
    if (vtEnabled && vtMaxVirtualCtasPerSm != 0 &&
        vtMaxVirtualCtasPerSm < maxCtasPerSm) {
        VTSIM_FATAL("vtMaxVirtualCtasPerSm (", vtMaxVirtualCtasPerSm,
                    ") below the scheduling limit (", maxCtasPerSm,
                    ") would *reduce* concurrency");
    }
    if (vtEnabled && schedLimitMultiplier != 1)
        VTSIM_FATAL("VT and schedLimitMultiplier are mutually exclusive");
    if (throttleEnabled && vtEnabled)
        VTSIM_FATAL("CTA throttling and VT are mutually exclusive");
    if (throttleEnabled && throttleEpochCycles == 0)
        VTSIM_FATAL("throttleEpochCycles must be nonzero");
    if (dramBanksPerPartition == 0 || dramBytesPerCycle == 0)
        VTSIM_FATAL("DRAM shape must be nonzero");
}

void
GpuConfig::print(std::ostream &os) const
{
    auto row = [&os](const std::string &key, const std::string &value) {
        os << "  " << std::left << std::setw(34) << key << value << '\n';
    };
    os << "GPU configuration\n";
    row("SMs", std::to_string(numSms));
    row("Memory partitions", std::to_string(numMemPartitions));
    row("Warp slots / SM (sched limit)",
        std::to_string(effMaxWarpsPerSm()));
    row("CTA slots / SM (sched limit)", std::to_string(effMaxCtasPerSm()));
    row("Thread slots / SM", std::to_string(effMaxThreadsPerSm()));
    row("Registers / SM (capacity)", std::to_string(registersPerSm) +
        " (" + std::to_string(registersPerSm * 4 / 1024) + " KB)");
    row("Shared memory / SM (capacity)",
        std::to_string(sharedMemPerSm / 1024) + " KB, " +
        std::to_string(sharedMemBanks) + " banks");
    row("Warp schedulers / SM", std::to_string(numSchedulers) +
        " x issue " + std::to_string(issueWidth) + ", " +
        toString(schedulerPolicy));
    row("ALU / SFU latency", std::to_string(aluLatency) + " / " +
        std::to_string(sfuLatency) + " cycles");
    row("L1D / SM", std::to_string(l1Size / 1024) + " KB, " +
        std::to_string(l1Assoc) + "-way, " +
        std::to_string(l1LineSize) + "B lines, " +
        std::to_string(l1Mshrs) + " MSHRs, hit " +
        std::to_string(l1HitLatency) + " cyc");
    row("Shared mem latency", std::to_string(sharedMemLatency) + " cyc");
    row("NoC latency", std::to_string(nocLatency) + " cyc each way");
    row("L2 slice / partition", std::to_string(l2SlicePerPartition / 1024) +
        " KB, " + std::to_string(l2Assoc) + "-way, hit +" +
        std::to_string(l2HitLatency) + " cyc, " +
        (l2WriteBack ? "write-back" : "write-through"));
    row("DRAM / partition", std::to_string(dramBanksPerPartition) +
        " banks, row hit/miss " + std::to_string(dramRowHitLatency) + "/" +
        std::to_string(dramRowMissLatency) + " cyc, " +
        std::to_string(dramBytesPerCycle) + " B/cyc");
    row("Virtual Thread", vtEnabled ? "ENABLED" : "disabled");
    if (vtEnabled) {
        row("  max virtual CTAs / SM", vtMaxVirtualCtasPerSm
            ? std::to_string(vtMaxVirtualCtasPerSm) : "capacity-bound");
        row("  swap out / in latency", std::to_string(vtSwapOutLatency) +
            " / " + std::to_string(vtSwapInLatency) + " cyc");
        row("  swap trigger", toString(vtSwapTrigger));
        row("  swap-in policy", toString(vtSwapInPolicy));
        row("  stall threshold", std::to_string(vtStallThreshold) + " cyc");
    }
    if (schedLimitMultiplier != 1)
        row("Sched-limit multiplier", std::to_string(schedLimitMultiplier));
    if (throttleEnabled) {
        row("CTA throttling", "ENABLED, epoch " +
            std::to_string(throttleEpochCycles) + " cyc");
    }
    row("Fast-forward", fastForwardEnabled ? "enabled" : "disabled");
}

} // namespace vtsim
