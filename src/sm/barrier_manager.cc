#include "sm/barrier_manager.hh"

#include <algorithm>

#include "common/log.hh"

namespace vtsim {

void
BarrierManager::ctaLaunched(VirtualCtaId id)
{
    VTSIM_ASSERT(!waiting_.count(id), "CTA ", id, " already tracked");
    waiting_[id] = {};
}

void
BarrierManager::arrive(VirtualCtaId id, std::uint32_t warp_in_cta)
{
    auto it = waiting_.find(id);
    VTSIM_ASSERT(it != waiting_.end(), "arrive for untracked CTA ", id);
    auto &warps = it->second;
    VTSIM_ASSERT(std::find(warps.begin(), warps.end(), warp_in_cta) ==
                 warps.end(), "double barrier arrival of warp ",
                 warp_in_cta);
    warps.push_back(warp_in_cta);
}

std::uint32_t
BarrierManager::arrivedCount(VirtualCtaId id) const
{
    auto it = waiting_.find(id);
    return it == waiting_.end() ? 0 : it->second.size();
}

bool
BarrierManager::shouldRelease(VirtualCtaId id,
                              std::uint32_t alive_warps) const
{
    const std::uint32_t arrived = arrivedCount(id);
    return arrived != 0 && arrived >= alive_warps;
}

std::vector<std::uint32_t>
BarrierManager::release(VirtualCtaId id)
{
    auto it = waiting_.find(id);
    VTSIM_ASSERT(it != waiting_.end(), "release for untracked CTA ", id);
    std::vector<std::uint32_t> out = std::move(it->second);
    it->second.clear();
    return out;
}

void
BarrierManager::releaseInto(VirtualCtaId id,
                            std::vector<std::uint32_t> &out)
{
    auto it = waiting_.find(id);
    VTSIM_ASSERT(it != waiting_.end(), "release for untracked CTA ", id);
    out.clear();
    std::swap(out, it->second);
}

void
BarrierManager::ctaFinished(VirtualCtaId id)
{
    auto it = waiting_.find(id);
    VTSIM_ASSERT(it != waiting_.end(), "finish for untracked CTA ", id);
    VTSIM_ASSERT(it->second.empty(),
                 "CTA ", id, " finished with warps parked at a barrier");
    waiting_.erase(it);
}

void
BarrierManager::save(Serializer &ser) const
{
    const std::size_t sec = ser.beginSection("barr");
    std::vector<VirtualCtaId> keys;
    keys.reserve(waiting_.size());
    for (const auto &[id, warps] : waiting_)
        keys.push_back(id);
    std::sort(keys.begin(), keys.end());
    ser.put<std::uint64_t>(keys.size());
    for (VirtualCtaId id : keys) {
        ser.put(id);
        ser.putVec(waiting_.at(id));
    }
    ser.endSection(sec);
}

void
BarrierManager::restore(Deserializer &des)
{
    des.beginSection("barr");
    waiting_.clear();
    const auto count = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto id = des.get<VirtualCtaId>();
        des.getVec(waiting_[id]);
    }
    des.endSection();
}

} // namespace vtsim
