# Empty dependencies file for occupancy_explorer.
# This may be replaced when dependencies are built.
