/**
 * @file
 * Tests for the benchmark workload suite: every workload must produce
 * verified results on the baseline machine, and its occupancy class on
 * the Fermi baseline must match its declared class (the TAB-2 claim).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "occupancy/occupancy.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuite, RunsAndVerifiesOnBaseline)
{
    auto wl = makeWorkload(GetParam(), 0); // tiny problem
    const Kernel kernel = wl->buildKernel();
    Gpu gpu(test::smallConfig());
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(kernel, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << GetParam();
    EXPECT_EQ(stats.ctasCompleted, lp.numCtas());
    EXPECT_GT(stats.warpInstructions, 0u);
}

TEST_P(WorkloadSuite, RunsAndVerifiesUnderVirtualThread)
{
    auto wl = makeWorkload(GetParam(), 0);
    const Kernel kernel = wl->buildKernel();
    Gpu gpu(test::smallVtConfig());
    const LaunchParams lp = wl->prepare(gpu.memory());
    gpu.launch(kernel, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << GetParam();
}

TEST_P(WorkloadSuite, DeclaredClassMatchesOccupancyAnalysis)
{
    auto wl = makeWorkload(GetParam(), 1); // benchmark-size geometry
    const Kernel kernel = wl->buildKernel();
    // prepare() is needed to know the launch geometry; use a scratch
    // memory so nothing expensive is simulated.
    GlobalMemory scratch;
    const LaunchParams lp = wl->prepare(scratch);
    const auto occ = computeOccupancy(GpuConfig::fermiLike(), kernel, lp);
    if (wl->expectedClass() == WorkloadClass::SchedulingLimited) {
        EXPECT_TRUE(occ.schedulingLimited())
            << GetParam() << " limiter=" << toString(occ.limiter)
            << " ctas=" << occ.ctasPerSm
            << " capacity=" << occ.ctasCapacityOnly;
    } else {
        EXPECT_FALSE(occ.schedulingLimited())
            << GetParam() << " limiter=" << toString(occ.limiter);
    }
}

TEST_P(WorkloadSuite, MetadataIsPopulated)
{
    auto wl = makeWorkload(GetParam(), 0);
    EXPECT_EQ(wl->name(), GetParam());
    EXPECT_FALSE(wl->description().empty());
    const Kernel k = wl->buildKernel();
    EXPECT_GT(k.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadSuite,
                         ::testing::ValuesIn(benchmarkNames()));

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(makeWorkload("no_such_benchmark"), FatalError);
}

TEST(WorkloadRegistry, SuiteContainsBothClasses)
{
    auto suite = makeBenchmarkSuite(0);
    ASSERT_GE(suite.size(), 10u);
    int sched = 0, cap = 0;
    for (const auto &wl : suite) {
        if (wl->expectedClass() == WorkloadClass::SchedulingLimited)
            ++sched;
        else
            ++cap;
    }
    // The paper's motivating observation: most benchmarks are
    // scheduling-limited, a minority capacity-limited.
    EXPECT_GT(sched, cap);
    EXPECT_GE(cap, 2);
}

TEST(WorkloadRegistry, NamesMatchSuiteOrder)
{
    const auto names = benchmarkNames();
    const auto suite = makeBenchmarkSuite(0);
    ASSERT_EQ(names.size(), suite.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(suite[i]->name(), names[i]);
}

TEST(WorkloadRegistry, ClassNames)
{
    EXPECT_EQ(toString(WorkloadClass::SchedulingLimited),
              "scheduling-limited");
    EXPECT_EQ(toString(WorkloadClass::CapacityLimited),
              "capacity-limited");
}

} // namespace
} // namespace vtsim
