/**
 * @file
 * The shared simulation worker pool — extracted from
 * bench/parallel_runner so the figure binaries' batch runner and the
 * vtsimd job service schedule onto one implementation.
 *
 * A WorkerPool owns N worker threads. Each worker repeatedly asks the
 * caller-supplied Source for its next Task and runs it; the Source may
 * block (the job service parks workers on a condition variable) and
 * returns false to retire the worker (batch exhausted, or service
 * shutdown with a drained queue). Each worker carries a GpuArena — one
 * Gpu reused via Gpu::reset() while consecutive tasks share a config —
 * so per-run construction cost is paid only on config changes, exactly
 * the arena-reuse contract the parallel runner established.
 *
 * Tasks must not throw: a task owns its error handling (the batch
 * runner records the failure per spec index; the job service feeds it
 * into the retry machinery). A throwing task is a programming error;
 * the pool reports it to stderr and keeps the worker alive, because a
 * long-lived daemon must outlive any single bad job.
 */

#ifndef VTSIM_SERVICE_WORKER_POOL_HH
#define VTSIM_SERVICE_WORKER_POOL_HH

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "gpu/gpu.hh"

namespace vtsim::service {

/** Per-worker Gpu arena: reset-and-reuse while the config matches. */
class GpuArena
{
  public:
    /**
     * A Gpu ready for a fresh run under @p config: the previous arena
     * reset (bit-identical to a new Gpu by the SimComponent lifecycle
     * contract) when its config equals @p config, a new Gpu otherwise.
     */
    Gpu &
    acquire(const GpuConfig &config)
    {
        if (gpu_ && gpu_->config() == config)
            gpu_->reset();
        else
            gpu_ = std::make_unique<Gpu>(config);
        return *gpu_;
    }

    /** Drop the arena (after an exception mid-launch: never reuse). */
    void discard() { gpu_.reset(); }

  private:
    std::unique_ptr<Gpu> gpu_;
};

class WorkerPool
{
  public:
    /** One unit of work, run on a worker thread with its arena. */
    using Task = std::function<void(GpuArena &arena, unsigned worker)>;

    /**
     * Supplies tasks to a worker. May block until work is available;
     * fills @p out and returns true, or returns false to retire the
     * worker permanently. Called from worker threads concurrently —
     * the source synchronizes itself.
     */
    using Source = std::function<bool(Task &out, unsigned worker)>;

    /**
     * Start @p workers threads pulling from @p source. With
     * @p inline_single true and one worker, no thread is spawned and
     * the whole pool runs on the caller's thread inside join() — the
     * batch runner uses this so `--jobs 1` stays a plain sequential
     * loop that is trivial to debug and profile.
     */
    WorkerPool(unsigned workers, Source source,
               bool inline_single = false);

    /** Joins any remaining workers. */
    ~WorkerPool();

    /** Block until every worker has retired (source returned false). */
    void join();

    unsigned size() const { return workers_; }

  private:
    void workerLoop(unsigned worker);

    unsigned workers_;
    Source source_;
    bool inlineSingle_;
    std::vector<std::thread> threads_;
};

} // namespace vtsim::service

#endif // VTSIM_SERVICE_WORKER_POOL_HH
