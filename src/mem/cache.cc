#include "mem/cache.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/serialize_util.hh"

namespace vtsim {

Cache::Cache(const CacheParams &params)
    : params_(params),
      numSets_(params.size / (params.lineSize * params.assoc)),
      lines_(std::size_t(numSets_) * params.assoc),
      mruWay_(numSets_, 0),
      stats_(params.name)
{
    VTSIM_ASSERT(numSets_ > 0, "cache '", params.name, "' has zero sets");
    VTSIM_ASSERT(isPowerOfTwo(params_.lineSize), "line size not pow2");
    stats_.addCounter("hits", &hits_, "load hits");
    stats_.addCounter("misses", &misses_, "load misses (MSHR allocations)");
    stats_.addCounter("mshr_merges", &mshrMerges_,
                      "loads merged into an in-flight miss");
    stats_.addCounter("mshr_rejects", &mshrRejects_,
                      "loads rejected for MSHR/target capacity");
    stats_.addCounter("evictions", &evictions_, "lines evicted");
    stats_.addCounter("dirty_evictions", &dirtyEvictions_,
                      "dirty lines written back on eviction");
    stats_.addCounter("store_hits", &storeHits_, "write-through store hits");
    stats_.addCounter("store_misses", &storeMisses_,
                      "write-through store misses (no allocate)");
    for (std::uint32_t g = 0; g < maxGrids; ++g) {
        const std::string tag = "grid" + std::to_string(g);
        stats_.addCounter(tag + ".hits", &gridHits_[g],
                          "load hits issued by grid " + std::to_string(g));
        stats_.addCounter(tag + ".misses", &gridMisses_[g],
                          "load misses issued by grid " +
                              std::to_string(g));
    }
}

std::uint32_t
Cache::setIndex(Addr line_addr) const
{
    return (line_addr / params_.lineSize) % numSets_;
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    Line *const base = lines_.data() + std::size_t(set) * params_.assoc;
    // Most hits land on the way that hit last time in this set; check it
    // before sweeping the whole set.
    const std::uint32_t hint = mruWay_[set];
    if (base[hint].valid && base[hint].tag == line_addr)
        return &base[hint];
    for (std::uint32_t way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == line_addr) {
            mruWay_[set] = way;
            return &line;
        }
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

CacheOutcome
Cache::access(const MemRequest &req)
{
    VTSIM_ASSERT(req.lineAddr % params_.lineSize == 0,
                 "unaligned line address");
    ++useClock_;
    if (Line *line = findLine(req.lineAddr)) {
        line->lastUse = useClock_;
        ++hits_;
        ++gridHits_[req.grid];
        return CacheOutcome::Hit;
    }

    auto it = mshrs_.find(req.lineAddr);
    if (it != mshrs_.end()) {
        if (it->second.targets.size() >= params_.mshrTargets) {
            ++mshrRejects_;
            return CacheOutcome::RejectTargets;
        }
        it->second.targets.push_back(req);
        ++mshrMerges_;
        return CacheOutcome::MissMerged;
    }

    if (mshrs_.size() >= params_.numMshrs) {
        ++mshrRejects_;
        return CacheOutcome::RejectMshrFull;
    }

    MshrEntry entry;
    entry.lineAddr = req.lineAddr;
    entry.targets.push_back(req);
    mshrs_.emplace(req.lineAddr, std::move(entry));
    ++misses_;
    ++gridMisses_[req.grid];
    return CacheOutcome::MissNew;
}

bool
Cache::storeAccess(Addr line_addr)
{
    ++useClock_;
    if (Line *line = findLine(line_addr)) {
        line->lastUse = useClock_;
        ++storeHits_;
        return true;
    }
    ++storeMisses_;
    return false;
}

bool
Cache::probe(Addr line_addr) const
{
    return findLine(line_addr) != nullptr;
}

Cache::Line *
Cache::insertLine(Addr line_addr, FillResult &result)
{
    const std::uint32_t set = setIndex(line_addr);
    Line *const base = lines_.data() + std::size_t(set) * params_.assoc;
    Line *victim = nullptr;
    std::uint32_t victim_way = 0;
    for (std::uint32_t way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (!line.valid) {
            victim = &line;
            victim_way = way;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse) {
            victim = &line;
            victim_way = way;
        }
    }
    mruWay_[set] = victim_way;
    if (victim->valid) {
        ++evictions_;
        if (victim->dirty) {
            ++dirtyEvictions_;
            result.evictedDirty = true;
            result.evictedLine = victim->tag;
        }
    }
    victim->valid = true;
    victim->dirty = false;
    victim->tag = line_addr;
    victim->lastUse = ++useClock_;
    return victim;
}

FillResult
Cache::fill(Addr line_addr)
{
    auto it = mshrs_.find(line_addr);
    VTSIM_ASSERT(it != mshrs_.end(),
                 "fill for line with no MSHR in ", params_.name);
    FillResult result;
    result.targets = std::move(it->second.targets);
    mshrs_.erase(it);
    Line *line = insertLine(line_addr, result);
    // Parked stores (write-back merges) dirty the line on arrival.
    for (const MemRequest &target : result.targets)
        if (target.kind == MemAccessKind::Store)
            line->dirty = true;
    return result;
}

FillResult
Cache::storeAllocate(Addr line_addr)
{
    ++useClock_;
    FillResult result;
    if (Line *line = findLine(line_addr)) {
        line->lastUse = useClock_;
        line->dirty = true;
        ++storeHits_;
        return result;
    }
    ++storeMisses_;
    // No-fetch write-allocate: install the line immediately and dirty it.
    Line *line = insertLine(line_addr, result);
    line->dirty = true;
    return result;
}

bool
Cache::probeDirty(Addr line_addr) const
{
    const Line *line = findLine(line_addr);
    return line && line->dirty;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    std::fill(mruWay_.begin(), mruWay_.end(), 0u);
    mshrs_.clear();
    useClock_ = 0;
    hits_.reset();
    misses_.reset();
    mshrMerges_.reset();
    mshrRejects_.reset();
    evictions_.reset();
    dirtyEvictions_.reset();
    storeHits_.reset();
    storeMisses_.reset();
    for (std::uint32_t g = 0; g < maxGrids; ++g) {
        gridHits_[g].reset();
        gridMisses_[g].reset();
    }
}

void
Cache::save(Serializer &ser) const
{
    const std::size_t sec = ser.beginSection("cash");
    ser.put<std::uint64_t>(lines_.size());
    for (const Line &line : lines_) {
        ser.put(line.tag);
        ser.put<std::uint8_t>(line.valid);
        ser.put<std::uint8_t>(line.dirty);
        ser.put(line.lastUse);
    }
    ser.putVec(mruWay_);
    ser.put(useClock_);

    // MSHRs in sorted key order so the checkpoint is deterministic
    // regardless of hash iteration order.
    std::vector<Addr> keys;
    keys.reserve(mshrs_.size());
    for (const auto &[addr, entry] : mshrs_)
        keys.push_back(addr);
    std::sort(keys.begin(), keys.end());
    ser.put<std::uint64_t>(keys.size());
    for (Addr addr : keys) {
        const MshrEntry &entry = mshrs_.at(addr);
        ser.put(entry.lineAddr);
        ser.put<std::uint64_t>(entry.targets.size());
        for (const MemRequest &req : entry.targets)
            saveMemRequest(ser, req);
    }

    saveStat(ser, hits_);
    saveStat(ser, misses_);
    saveStat(ser, mshrMerges_);
    saveStat(ser, mshrRejects_);
    saveStat(ser, evictions_);
    saveStat(ser, dirtyEvictions_);
    saveStat(ser, storeHits_);
    saveStat(ser, storeMisses_);
    for (std::uint32_t g = 0; g < maxGrids; ++g) {
        saveStat(ser, gridHits_[g]);
        saveStat(ser, gridMisses_[g]);
    }
    ser.endSection(sec);
}

void
Cache::restore(Deserializer &des)
{
    des.beginSection("cash");
    const auto num_lines = des.get<std::uint64_t>();
    VTSIM_ASSERT(num_lines == lines_.size(),
                 "cache geometry mismatch in checkpoint for ", params_.name);
    for (Line &line : lines_) {
        des.get(line.tag);
        line.valid = des.get<std::uint8_t>() != 0;
        line.dirty = des.get<std::uint8_t>() != 0;
        des.get(line.lastUse);
    }
    des.getVec(mruWay_);
    VTSIM_ASSERT(mruWay_.size() == numSets_, "cache set-count mismatch");
    des.get(useClock_);

    mshrs_.clear();
    const auto num_mshrs = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < num_mshrs; ++i) {
        MshrEntry entry;
        des.get(entry.lineAddr);
        const auto num_targets = des.get<std::uint64_t>();
        entry.targets.reserve(num_targets);
        for (std::uint64_t t = 0; t < num_targets; ++t)
            entry.targets.push_back(restoreMemRequest(des));
        mshrs_.emplace(entry.lineAddr, std::move(entry));
    }

    restoreStat(des, hits_);
    restoreStat(des, misses_);
    restoreStat(des, mshrMerges_);
    restoreStat(des, mshrRejects_);
    restoreStat(des, evictions_);
    restoreStat(des, dirtyEvictions_);
    restoreStat(des, storeHits_);
    restoreStat(des, storeMisses_);
    for (std::uint32_t g = 0; g < maxGrids; ++g) {
        restoreStat(des, gridHits_[g]);
        restoreStat(des, gridMisses_[g]);
    }
    des.endSection();
}

void
Cache::flush()
{
    VTSIM_ASSERT(mshrs_.empty(),
                 "flush of ", params_.name, " with MSHRs in flight");
    // Tag-only model: dirty data lives in the functional memory, so a
    // flush needs no writeback traffic (timing approximation).
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace vtsim
