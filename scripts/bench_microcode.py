#!/usr/bin/env python3
"""Benchmark the functional-execution fast paths; emit BENCH_microcode.json.

Runs a figure binary sequentially (--jobs 1) three ways:

  legacy     --exec legacy     the per-instruction reference interpreter
  microcode  --exec microcode  the pre-decoded micro-op interpreter
                               (the default execution path)
  replay     --replay-trace    the memory system driven from a recorded
                               trace, skipping functional execution

Three things come out of that:

 1. A regression gate: the legacy and microcode runs must have
    identical statistics (micro-op lowering is bit-identical by
    construction), and every replay run must reproduce the functional
    run's cycle count and cache/DRAM counters exactly.
 2. A trace check: every trace the record pass writes must validate
    with scripts/validate_mtrace.py.
 3. A throughput record: BENCH_microcode.json is the microcode-mode
    stats document extended with a "microcode" section holding wall
    time, Kcyc/s and speedup-over-legacy per mode.

The output validates against ci/stats_schema.json (the script checks).

Standard library only. Usage:
    bench_microcode.py [--binary PATH] [--out PATH]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "scripts"))
import validate_mtrace  # noqa: E402
import validate_stats_json  # noqa: E402


def run_figure(binary, stats_path, extra):
    cmd = [
        str(binary),
        "--jobs", "1",
        "--stats-json", str(stats_path),
    ] + extra
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return json.loads(stats_path.read_text())


def run_signature(run):
    """Everything about a run that must not depend on the interpreter
    (host-timing fields excluded)."""
    return {
        key: value
        for key, value in run.items()
        if key not in ("wall_seconds", "kcycles_per_sec", "mips")
    }


MEMORY_COUNTERS = (
    "cycles", "l1_hits", "l1_misses", "l2_hits", "l2_misses",
    "dram_row_hits", "dram_row_misses", "dram_bytes",
)


def memory_signature(run):
    """The subset a trace replay must reproduce exactly: the cycle count
    and every cache/DRAM counter. (A replay completes zero CTAs and
    issues zero instructions by construction, so the instruction-side
    counters are not comparable.)"""
    return {key: run["stats"][key] for key in MEMORY_COUNTERS}


def mode_point(mode, runs, legacy_wall):
    wall = sum(r["wall_seconds"] for r in runs)
    cycles = sum(r["stats"]["cycles"] for r in runs)
    return {
        "mode": mode,
        "wall_seconds": round(wall, 6),
        "kcycles_per_sec": round(cycles / wall / 1e3, 3)
        if wall > 0 else 0.0,
        "speedup_vs_legacy": round(legacy_wall / wall, 3)
        if wall > 0 else 0.0,
    }


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--binary", default=str(REPO / "build/bench/fig3_vt_speedup"))
    parser.add_argument("--out", default="BENCH_microcode.json")
    args = parser.parse_args(argv[1:])

    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        legacy = run_figure(args.binary, tmp / "legacy.json",
                            ["--exec", "legacy"])
        print(f"[bench-microcode] legacy: {len(legacy['runs'])} runs")
        micro = run_figure(args.binary, tmp / "micro.json",
                           ["--exec", "microcode"])
        print(f"[bench-microcode] microcode: {len(micro['runs'])} runs")

        if [run_signature(r) for r in micro["runs"]] != \
                [run_signature(r) for r in legacy["runs"]]:
            print("[bench-microcode] FAIL: the micro-op interpreter "
                  "changed the statistics — it is supposed to be "
                  "bit-identical to the legacy interpreter",
                  file=sys.stderr)
            return 1

        trace = tmp / "fig3.mtrace"
        recorded = run_figure(args.binary, tmp / "record.json",
                              ["--exec", "microcode",
                               "--record-trace", str(trace)])
        if [run_signature(r) for r in recorded["runs"]] != \
                [run_signature(r) for r in micro["runs"]]:
            print("[bench-microcode] FAIL: recording a trace perturbed "
                  "the statistics", file=sys.stderr)
            return 1
        traces = sorted(tmp.glob("fig3*.mtrace"))
        print(f"[bench-microcode] recorded {len(traces)} traces")
        for path in traces:
            if validate_mtrace.main(["validate_mtrace.py", str(path)]):
                return 1

        replay = run_figure(args.binary, tmp / "replay.json",
                            ["--replay-trace", str(trace)])
        print(f"[bench-microcode] replay: {len(replay['runs'])} runs")
        if [memory_signature(r) for r in replay["runs"]] != \
                [memory_signature(r) for r in micro["runs"]]:
            print("[bench-microcode] FAIL: replay did not reproduce the "
                  "functional run's cycles and cache/DRAM counters",
                  file=sys.stderr)
            return 1

    legacy_wall = sum(r["wall_seconds"] for r in legacy["runs"])
    modes = [
        mode_point("legacy", legacy["runs"], legacy_wall),
        mode_point("microcode", micro["runs"], legacy_wall),
        mode_point("replay", replay["runs"], legacy_wall),
    ]

    micro["microcode"] = {"modes": modes}
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(micro, indent=2) + "\n")

    for p in modes:
        print(f"[bench-microcode] {p['mode']:<10s} "
              f"wall {p['wall_seconds']:.3f}s, "
              f"{p['kcycles_per_sec']:.1f} Kcyc/s, "
              f"{p['speedup_vs_legacy']:.2f}x vs legacy")

    # The document must still be a valid vtsim-stats-v1 batch.
    return validate_stats_json.main(
        ["validate_stats_json.py", str(out_path)])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
