/**
 * @file
 * Tests for the debug-trace subsystem. The sink is process-global, so
 * each test restores the disabled state on exit.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hh"
#include "common/trace.hh"
#include "test_util.hh"

namespace vtsim {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void TearDown() override { Trace::instance().disable(); }
};

TEST_F(TraceTest, DisabledByDefault)
{
    EXPECT_FALSE(Trace::instance().enabled(TraceFlag::Issue));
}

TEST_F(TraceTest, LogsOnlyEnabledFlags)
{
    std::ostringstream os;
    Trace::instance().enable(TraceFlag::Swap, &os);
    VTSIM_TRACE(TraceFlag::Swap, 42, "sm0.vt", "swap out cta ", 3);
    VTSIM_TRACE(TraceFlag::Issue, 43, "sm0", "should not appear");
    const std::string out = os.str();
    EXPECT_NE(out.find("42: sm0.vt: swap out cta 3"), std::string::npos);
    EXPECT_EQ(out.find("should not appear"), std::string::npos);
}

TEST_F(TraceTest, CombinedFlags)
{
    std::ostringstream os;
    Trace::instance().enable(TraceFlag::Issue | TraceFlag::Mem, &os);
    EXPECT_TRUE(Trace::instance().enabled(TraceFlag::Issue));
    EXPECT_TRUE(Trace::instance().enabled(TraceFlag::Mem));
    EXPECT_FALSE(Trace::instance().enabled(TraceFlag::Dram));
}

TEST_F(TraceTest, ParseFlags)
{
    EXPECT_TRUE(Trace::parseFlags("issue,swap") ==
                (TraceFlag::Issue | TraceFlag::Swap));
    EXPECT_TRUE(Trace::parseFlags("all") == TraceFlag::All);
    EXPECT_TRUE(Trace::parseFlags("") == TraceFlag::None);
    EXPECT_THROW(Trace::parseFlags("bogus"), FatalError);
}

TEST_F(TraceTest, SimulationEmitsSwapAndCtaEvents)
{
    std::ostringstream os;
    Trace::instance().enable(TraceFlag::Swap | TraceFlag::Cta, &os);

    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 1;
    cfg.numMemPartitions = 1;
    cfg.vtEnabled = true;
    Gpu gpu(cfg);
    const Kernel k = test::mul3Add7Kernel();
    const std::uint32_t n = 2048;
    const Addr in = gpu.memory().alloc(n * 4);
    const Addr out = gpu.memory().alloc(n * 4);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(n / 64);
    lp.params = {std::uint32_t(in), std::uint32_t(out), n};
    gpu.launch(k, lp);
    Trace::instance().disable();

    const std::string trace = os.str();
    EXPECT_NE(trace.find("admit cta"), std::string::npos);
    EXPECT_NE(trace.find("finish cta"), std::string::npos);
    EXPECT_NE(trace.find("swap out cta"), std::string::npos);
}

TEST_F(TraceTest, IssueTraceShowsDisassembly)
{
    std::ostringstream os;
    Trace::instance().enable(TraceFlag::Issue, &os);

    Gpu gpu(test::smallConfig());
    const Kernel k = test::storeConstKernel();
    const Addr out = gpu.memory().alloc(64 * 4);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(out), 64, 1};
    gpu.launch(k, lp);
    Trace::instance().disable();

    const std::string trace = os.str();
    EXPECT_NE(trace.find("ldp r0, 0"), std::string::npos);
    EXPECT_NE(trace.find("exit"), std::string::npos);
    EXPECT_NE(trace.find("[32 lanes]"), std::string::npos);
}

TEST_F(TraceTest, TracingDoesNotChangeTiming)
{
    auto run = [](bool traced) {
        std::ostringstream os;
        if (traced)
            Trace::instance().enable(TraceFlag::All, &os);
        Gpu gpu(test::smallVtConfig());
        const Kernel k = test::mul3Add7Kernel();
        const Addr in = gpu.memory().alloc(1024 * 4);
        const Addr out = gpu.memory().alloc(1024 * 4);
        LaunchParams lp;
        lp.cta = Dim3(64);
        lp.grid = Dim3(16);
        lp.params = {std::uint32_t(in), std::uint32_t(out), 1024};
        const auto stats = gpu.launch(k, lp);
        Trace::instance().disable();
        return stats.cycles;
    };
    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace vtsim
