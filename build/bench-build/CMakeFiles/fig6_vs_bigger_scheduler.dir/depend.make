# Empty dependencies file for fig6_vs_bigger_scheduler.
# This may be replaced when dependencies are built.
