/**
 * @file
 * Grid-level CTA work distribution (the "GigaThread engine"): hands CTAs
 * to SMs in launch order, one per SM per cycle, as hardware does.
 */

#ifndef VTSIM_CTA_CTA_DISPATCHER_HH
#define VTSIM_CTA_CTA_DISPATCHER_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/kernel.hh"

namespace vtsim {

/** One CTA picked off the grid. */
struct CtaAssignment
{
    std::uint64_t linearId;
    Dim3 idx;
};

class CtaDispatcher
{
  public:
    explicit CtaDispatcher(const LaunchParams &launch);

    /** CTAs not yet handed out. */
    bool hasWork() const { return next_ < total_; }

    std::uint64_t remaining() const { return total_ - next_; }
    std::uint64_t dispatched() const { return next_; }

    /** Take the next CTA in row-major launch order. */
    CtaAssignment next();

    /** Checkpoint restore: rewind/advance the hand-out cursor. */
    void setDispatched(std::uint64_t n);

  private:
    Dim3 grid_;
    std::uint64_t total_;
    std::uint64_t next_ = 0;
};

} // namespace vtsim

#endif // VTSIM_CTA_CTA_DISPATCHER_HH
