/**
 * @file
 * Hotspot-style 2-D thermal stencil: five temperature loads plus a power
 * load per interior cell, all from global memory. Lean register use keeps
 * it CTA-slot (scheduling) limited, and the 2-D neighbour traffic makes
 * it strongly memory-latency bound.
 */

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class Hotspot : public Workload
{
  public:
    explicit Hotspot(std::uint32_t scale)
        : width_(scale == 0 ? 32 : 256),
          height_(scale == 0 ? 16 : 256 * scale)
    {}

    std::string name() const override { return "hotspot"; }

    std::string
    description() const override
    {
        return "2-D 5-point thermal stencil (temp + power grids)";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        // Registers are reused aggressively (as a real compiler would) so
        // that the kernel stays in the scheduling-limited class: 20 regs
        // x 4 warps admits 12 CTAs of register capacity vs 8 CTA slots.
        return assemble(R"(
.kernel hotspot
    ldp r0, 0            # temp
    ldp r1, 1            # power
    ldp r2, 2            # out
    ldp r3, 3            # W
    ldp r4, 4            # H
    ldp r5, 5            # k1 bits
    ldp r6, 6            # k2 bits
    s2r r7, ctaid.x
    s2r r8, ntid.x
    s2r r9, tid.x
    imad r7, r7, r8, r9  # gid
    idiv r8, r7, r3      # y
    irem r9, r7, r3      # x
    # skip border cells
    isetp.eq r10, r9, 0
    bra r10, done
    isub r11, r3, 1
    isetp.ge r10, r9, r11
    bra r10, done
    isetp.eq r10, r8, 0
    bra r10, done
    isub r11, r4, 1
    isetp.ge r10, r8, r11
    bra r10, done
    shl r10, r7, 2       # byte offset
    iadd r11, r10, r0    # &temp[gid]
    ldg r12, [r11]       # t
    shl r13, r3, 2       # row stride in bytes
    isub r14, r11, r13
    ldg r15, [r14]       # up
    iadd r14, r11, r13
    ldg r16, [r14]       # down
    ldg r13, [r11-4]     # left
    ldg r14, [r11+4]     # right
    iadd r17, r10, r1
    ldg r17, [r17]       # p
    fadd r18, r15, r16
    fadd r18, r18, r13
    fadd r18, r18, r14
    fadd r19, r12, r12
    fadd r19, r19, r19   # 4t
    fsub r18, r18, r19   # laplacian
    fmul r18, r18, r5
    ffma r18, r17, r6, r18
    fadd r18, r18, r12
    iadd r10, r10, r2
    stg [r10], r18
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd0b);
        const std::size_t n = std::size_t(width_) * height_;
        std::vector<float> temp(n), power(n);
        for (auto &v : temp)
            v = 20.0f + 60.0f * rng.nextFloat();
        for (auto &v : power)
            v = rng.nextFloat();
        tempAddr_ = gmem.alloc(n * 4);
        powerAddr_ = gmem.alloc(n * 4);
        outAddr_ = gmem.alloc(n * 4);
        gmem.writeFloats(tempAddr_, temp);
        gmem.writeFloats(powerAddr_, power);

        const float k1 = 0.1f, k2 = 0.05f;
        expected_.assign(n, 0.0f);
        for (std::uint32_t y = 1; y + 1 < height_; ++y) {
            for (std::uint32_t x = 1; x + 1 < width_; ++x) {
                const std::size_t i = std::size_t(y) * width_ + x;
                const float t = temp[i];
                float lap = temp[i - width_] + temp[i + width_];
                lap = lap + temp[i - 1];
                lap = lap + temp[i + 1];
                float four_t = t + t;
                four_t = four_t + four_t;
                lap = lap - four_t;
                float v = lap * k1;
                v = power[i] * k2 + v;
                v = v + t;
                expected_[i] = v;
            }
        }

        LaunchParams lp;
        lp.cta = Dim3(128);
        lp.grid = Dim3(ceilDiv(n, 128));
        lp.params = {std::uint32_t(tempAddr_), std::uint32_t(powerAddr_),
                     std::uint32_t(outAddr_), width_, height_,
                     0x3dcccccdu /* 0.1f */, 0x3d4ccccdu /* 0.05f */};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const std::size_t n = std::size_t(width_) * height_;
        const auto got = gmem.readFloats(outAddr_, n);
        for (std::uint32_t y = 1; y + 1 < height_; ++y)
            for (std::uint32_t x = 1; x + 1 < width_; ++x) {
                const std::size_t i = std::size_t(y) * width_ + x;
                if (got[i] != expected_[i])
                    return false;
            }
        return true;
    }

  private:
    std::uint32_t width_;
    std::uint32_t height_;
    Addr tempAddr_ = 0, powerAddr_ = 0, outAddr_ = 0;
    std::vector<float> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeHotspot(std::uint32_t scale)
{
    return std::make_unique<Hotspot>(scale);
}

} // namespace vtsim
