/**
 * @file
 * FIG-7: interaction with the warp scheduling policy. VT is orthogonal
 * to the intra-SM warp scheduler; its gain should persist under LRR,
 * GTO and two-level scheduling.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-7", "VT speedup under different warp schedulers");
    const SchedulerPolicy policies[] = {
        SchedulerPolicy::LooseRoundRobin,
        SchedulerPolicy::GreedyThenOldest,
        SchedulerPolicy::TwoLevel,
    };
    const char *subset[] = {"vecadd", "saxpy", "reduce", "stencil",
                            "histogram", "bfs"};
    constexpr std::size_t stride = 2 * std::size(policies);

    std::vector<RunSpec> specs;
    for (const char *name : subset) {
        for (auto policy : policies) {
            GpuConfig base = GpuConfig::fermiLike();
            base.schedulerPolicy = policy;
            GpuConfig vt = base;
            vt.vtEnabled = true;
            specs.push_back({name, base, benchScale});
            specs.push_back({name, vt, benchScale});
        }
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s", "benchmark");
    for (auto p : policies)
        std::printf(" %10s", toString(p).c_str());
    std::printf("\n");

    for (std::size_t w = 0; w < std::size(subset); ++w) {
        std::printf("%-14s", subset[w]);
        for (std::size_t p = 0; p < std::size(policies); ++p) {
            const RunResult &b = results[w * stride + 2 * p];
            const RunResult &v = results[w * stride + 2 * p + 1];
            std::printf("     %5.2fx",
                        double(b.stats.cycles) / v.stats.cycles);
        }
        std::printf("\n");
    }
    std::printf("(each column's baseline uses the same scheduler as its "
                "VT machine)\n");
    return 0;
}
