/**
 * @file
 * Unit and end-to-end tests for the DYNCTA-style CTA throttler.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "cta/cta_throttler.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

ThrottleParams
fastParams()
{
    ThrottleParams p;
    p.epochCycles = 10;
    p.highWater = 0.55;
    p.lowWater = 0.30;
    p.minCap = 1;
    return p;
}

TEST(Throttler, StartsAtMaxCap)
{
    CtaThrottler t(fastParams(), 8, 0);
    EXPECT_EQ(t.cap(), 8u);
}

TEST(Throttler, HighMemStallShrinksCap)
{
    CtaThrottler t(fastParams(), 8, 0);
    for (int i = 0; i < 10; ++i)
        t.sample(false, true); // 100% memory stall
    EXPECT_EQ(t.cap(), 7u);
    EXPECT_EQ(t.decreases(), 1u);
}

TEST(Throttler, LowMemStallGrowsCapBack)
{
    CtaThrottler t(fastParams(), 8, 0);
    for (int i = 0; i < 20; ++i)
        t.sample(false, true);
    EXPECT_EQ(t.cap(), 6u);
    for (int i = 0; i < 10; ++i)
        t.sample(true, false); // all issue
    EXPECT_EQ(t.cap(), 7u);
    EXPECT_EQ(t.increases(), 1u);
}

TEST(Throttler, NeverBelowMinCap)
{
    ThrottleParams p = fastParams();
    p.minCap = 2;
    CtaThrottler t(p, 4, 0);
    for (int i = 0; i < 1000; ++i)
        t.sample(false, true);
    EXPECT_EQ(t.cap(), 2u);
}

TEST(Throttler, NeverAboveMaxCap)
{
    CtaThrottler t(fastParams(), 4, 0);
    for (int i = 0; i < 1000; ++i)
        t.sample(true, false);
    EXPECT_EQ(t.cap(), 4u);
    EXPECT_EQ(t.increases(), 0u);
}

TEST(Throttler, MidRangeHoldsSteady)
{
    CtaThrottler t(fastParams(), 8, 0);
    // 40% mem stall: between the watermarks.
    for (int i = 0; i < 100; ++i)
        t.sample(i % 10 < 6, i % 10 >= 6 && i % 10 < 10 && i % 5 < 2);
    // 4 of 10 samples mem-stalled per epoch = 0.4 -> no change.
    EXPECT_EQ(t.cap(), 8u);
}

TEST(ThrottlerEndToEnd, RunsCorrectlyAndAdjustsCap)
{
    GpuConfig cfg = test::smallConfig();
    cfg.throttleEnabled = true;
    cfg.throttleEpochCycles = 256;
    auto wl = makeWorkload("bfs", 0); // memory-stall heavy
    const Kernel k = wl->buildKernel();
    Gpu gpu(cfg);
    const LaunchParams lp = wl->prepare(gpu.memory());
    gpu.launch(k, lp);
    EXPECT_TRUE(wl->verify(gpu.memory()));
    ASSERT_NE(gpu.sm(0).throttler(), nullptr);
    // bfs stalls on memory constantly: the cap must have moved down.
    EXPECT_GT(gpu.sm(0).throttler()->decreases(), 0u);
}

TEST(ThrottlerEndToEnd, DisabledByDefault)
{
    Gpu gpu(test::smallConfig());
    EXPECT_EQ(gpu.sm(0).throttler(), nullptr);
}

TEST(ThrottlerEndToEnd, MutuallyExclusiveWithVt)
{
    GpuConfig cfg = test::smallVtConfig();
    cfg.throttleEnabled = true;
    EXPECT_THROW(cfg.validate(), FatalError);
}

} // namespace
} // namespace vtsim
