/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * fatal(): the simulation cannot continue because of a user error (bad
 * configuration, malformed kernel). Exits with status 1.
 * panic(): an internal invariant was violated — a vtsim bug. Aborts.
 * warn()/inform(): advisory messages on stderr.
 */

#ifndef VTSIM_COMMON_LOG_HH
#define VTSIM_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace vtsim {

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

namespace detail {

/** Concatenate any streamable arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Exception carrying a fatal() message.
 *
 * fatal() throws instead of exiting so that library users (and tests) can
 * catch configuration errors; the examples let it terminate the process.
 */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string message) : message_(std::move(message)) {}
    const char *what() const noexcept override { return message_.c_str(); }

  private:
    std::string message_;
};

} // namespace vtsim

/** User-level error: throw vtsim::FatalError with file/line context. */
#define VTSIM_FATAL(...)                                                     \
    ::vtsim::fatalImpl(__FILE__, __LINE__,                                   \
                       ::vtsim::detail::concat(__VA_ARGS__))

/** Internal invariant violation: abort with file/line context. */
#define VTSIM_PANIC(...)                                                     \
    ::vtsim::panicImpl(__FILE__, __LINE__,                                   \
                       ::vtsim::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; panics with the condition text. */
#define VTSIM_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond))                                                         \
            VTSIM_PANIC("assertion '" #cond "' failed: ",                    \
                        ::vtsim::detail::concat(__VA_ARGS__));               \
    } while (0)

#define VTSIM_WARN(...)                                                      \
    ::vtsim::warnImpl(::vtsim::detail::concat(__VA_ARGS__))

#define VTSIM_INFORM(...)                                                    \
    ::vtsim::informImpl(::vtsim::detail::concat(__VA_ARGS__))

#endif // VTSIM_COMMON_LOG_HH
