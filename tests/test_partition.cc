/**
 * @file
 * Unit tests for MemoryPartition: the L2 slice + DRAM pipeline, driven
 * directly with synthetic requests through a private interconnect.
 */

#include <gtest/gtest.h>

#include <vector>

#include "config/gpu_config.hh"
#include "mem/interconnect.hh"
#include "mem/memory_partition.hh"

namespace vtsim {
namespace {

class RecordingSink : public MemResponseSink
{
  public:
    void memResponse(std::uint64_t token, Cycle) override
    {
        responses.push_back(token);
    }

    std::vector<std::uint64_t> responses;
};

class PartitionTest : public ::testing::Test
{
  protected:
    PartitionTest()
        : cfg_(makeConfig()),
          noc_(NocParams{cfg_.nocLatency, cfg_.nocFlitsPerCycle,
                         cfg_.numSms, cfg_.numMemPartitions}),
          part_(0, cfg_, noc_)
    {
        noc_.setRouter([](Addr) { return 0u; });
        noc_.setRequestSink([this](const MemRequest &r, Cycle now) {
            part_.receive(r, now);
        });
        noc_.setResponseSink([](const MemRequest &r, Cycle now) {
            r.sink->memResponse(r.token, now);
        });
    }

    static GpuConfig
    makeConfig()
    {
        GpuConfig cfg = GpuConfig::testMini();
        cfg.nocLatency = 4;
        cfg.l2HitLatency = 8;
        cfg.dramRowHitLatency = 20;
        cfg.dramRowMissLatency = 40;
        return cfg;
    }

    MemRequest
    load(Addr line, std::uint64_t token)
    {
        MemRequest r;
        r.lineAddr = line;
        r.bytes = cfg_.l2LineSize;
        r.kind = MemAccessKind::Load;
        r.srcSm = 0;
        r.sink = &sink_;
        r.token = token;
        return r;
    }

    /** Tick partition + NoC until idle or the cycle limit. */
    Cycle
    runUntilIdle(Cycle start, Cycle limit = 20000)
    {
        Cycle c = start;
        for (; c < limit; ++c) {
            noc_.tick(c);
            part_.tick(c);
            if (part_.idle() && noc_.idle())
                break;
        }
        return c;
    }

    GpuConfig cfg_;
    Interconnect noc_;
    MemoryPartition part_;
    RecordingSink sink_;
};

TEST_F(PartitionTest, ColdLoadGoesToDramAndResponds)
{
    part_.receive(load(0, 7), 0);
    runUntilIdle(0);
    ASSERT_EQ(sink_.responses.size(), 1u);
    EXPECT_EQ(sink_.responses[0], 7u);
    EXPECT_EQ(part_.l2().misses(), 1u);
    EXPECT_EQ(part_.dram().rowMisses(), 1u);
}

TEST_F(PartitionTest, SecondLoadHitsL2)
{
    part_.receive(load(0, 1), 0);
    Cycle c = runUntilIdle(0) + 1;
    part_.receive(load(0, 2), c);
    runUntilIdle(c);
    EXPECT_EQ(sink_.responses.size(), 2u);
    EXPECT_EQ(part_.l2().hits(), 1u);
    EXPECT_EQ(part_.l2().misses(), 1u);
    // The second access never touched DRAM.
    EXPECT_EQ(part_.dram().rowMisses() + part_.dram().rowHits(), 1u);
}

TEST_F(PartitionTest, L2HitIsMuchFasterThanMiss)
{
    part_.receive(load(0, 1), 0);
    const Cycle miss_done = runUntilIdle(0);
    part_.receive(load(0, 2), miss_done + 1);
    const Cycle hit_done = runUntilIdle(miss_done + 1);
    EXPECT_LT(hit_done - (miss_done + 1), miss_done);
}

TEST_F(PartitionTest, ConcurrentMissesToSameLineMerge)
{
    part_.receive(load(0, 1), 0);
    part_.receive(load(0, 2), 0);
    part_.receive(load(0, 3), 0);
    runUntilIdle(0);
    EXPECT_EQ(sink_.responses.size(), 3u);
    EXPECT_EQ(part_.l2().misses(), 1u);
    EXPECT_EQ(part_.l2().stats().counterValue("mshr_merges"), 2u);
}

TEST_F(PartitionTest, StoresProduceNoResponse)
{
    MemRequest st;
    st.lineAddr = 0;
    st.bytes = 64;
    st.kind = MemAccessKind::Store;
    st.srcSm = 0;
    part_.receive(st, 0);
    runUntilIdle(0);
    EXPECT_TRUE(sink_.responses.empty());
    // Write-back default: the store allocated and dirtied the line, so
    // a later load hits without DRAM traffic.
    EXPECT_EQ(part_.dram().bytesTransferred(), 0u);
    EXPECT_TRUE(part_.l2().probeDirty(0));
    part_.receive(load(0, 9), 5000);
    runUntilIdle(5000);
    EXPECT_EQ(part_.l2().hits(), 1u);
    EXPECT_EQ(part_.l2().misses(), 0u);
}

TEST_F(PartitionTest, WriteThroughModeSendsStoresToDram)
{
    GpuConfig cfg = makeConfig();
    cfg.l2WriteBack = false;
    Interconnect noc(NocParams{cfg.nocLatency, cfg.nocFlitsPerCycle,
                               cfg.numSms, cfg.numMemPartitions});
    MemoryPartition part(0, cfg, noc);
    noc.setRouter([](Addr) { return 0u; });
    noc.setRequestSink([&part](const MemRequest &r, Cycle now) {
        part.receive(r, now);
    });
    noc.setResponseSink([](const MemRequest &r, Cycle now) {
        r.sink->memResponse(r.token, now);
    });
    MemRequest st;
    st.lineAddr = 0;
    st.bytes = 64;
    st.kind = MemAccessKind::Store;
    part.receive(st, 0);
    for (Cycle c = 0; c < 5000 && !(part.idle() && noc.idle()); ++c) {
        noc.tick(c);
        part.tick(c);
    }
    EXPECT_EQ(part.dram().bytesTransferred(), 64u);
    // No-allocate: a later load would still miss.
    EXPECT_FALSE(part.l2().probe(0));
}

TEST_F(PartitionTest, AtomicsTreatedAsLoadsAtL2)
{
    MemRequest at = load(0, 4);
    at.kind = MemAccessKind::Atomic;
    part_.receive(at, 0);
    runUntilIdle(0);
    ASSERT_EQ(sink_.responses.size(), 1u);
    EXPECT_EQ(sink_.responses[0], 4u);
}

TEST_F(PartitionTest, RejectedRequestsRetryWithoutLoss)
{
    // Flood with more distinct lines than the L2 has MSHRs; every
    // request must still eventually complete.
    const std::uint32_t n = cfg_.l2Mshrs * 3;
    for (std::uint32_t i = 0; i < n; ++i)
        part_.receive(load(Addr(i) * cfg_.l2LineSize, i), 0);
    runUntilIdle(0, 2000000);
    EXPECT_EQ(sink_.responses.size(), n);
}

TEST_F(PartitionTest, FlushInvalidatesL2)
{
    part_.receive(load(0, 1), 0);
    Cycle c = runUntilIdle(0) + 1;
    part_.flushCaches();
    part_.receive(load(0, 2), c);
    runUntilIdle(c);
    EXPECT_EQ(part_.l2().misses(), 2u);
}

TEST_F(PartitionTest, IdleReflectsOutstandingWork)
{
    EXPECT_TRUE(part_.idle());
    part_.receive(load(0, 1), 0);
    EXPECT_FALSE(part_.idle());
    runUntilIdle(0);
    EXPECT_TRUE(part_.idle());
}

} // namespace
} // namespace vtsim
