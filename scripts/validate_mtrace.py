#!/usr/bin/env python3
"""Validate a vtsim-mtrace-v1 memory-trace file.

Standard library only (runs on a bare CI image). Mirrors the in-tree
reader (src/mem/mtrace.cc) check for check, so a file this script
accepts is loadable by --replay-trace and vice versa:

  header   magic "vtsimMTR", version 1, machine shape (SM count,
           memory-partition count, L1/L2 line sizes), kernel name,
           grid and CTA shapes — all range-validated.
  records  one u8 kind each: KernelLaunch (must be first, cycle 0),
           Access (monotonic cycle, SM < numSms, 1..l1LineSize bytes,
           1..32 lanes, line-aligned address, known flag bits only),
           Barrier (monotonic cycle, SM < numSms), End (record count
           must equal the records actually read).
  framing  every field bounds-checked before reading; an End seal is
           required; nothing may follow it.

The full byte layout is documented in docs/ARCHITECTURE.md ("Micro-op
execution & trace replay").

Usage: validate_mtrace.py <file.mtrace> [--dump]
Exit status 0 when valid; 1 with one line per violation otherwise
(validation stops at the first framing error since nothing after it
can be trusted). --dump additionally prints the header and per-SM
record counts.
"""

import pathlib
import struct
import sys

MAGIC = b"vtsimMTR"
VERSION = 1
WARP_SIZE = 32

KIND_ACCESS = 1
KIND_BARRIER = 2
KIND_KERNEL_LAUNCH = 3
KIND_END = 4

FLAG_STORE = 1 << 0
FLAG_ATOMIC = 1 << 1
FLAG_BYPASS_L1 = 1 << 2
KNOWN_FLAGS = FLAG_STORE | FLAG_ATOMIC | FLAG_BYPASS_L1


class TraceError(Exception):
    """A violation that makes the rest of the file untrustworthy."""


class Cursor:
    """Bounds-checked little-endian reader (mirrors mtrace.cc)."""

    def __init__(self, data):
        self.data = data
        self.pos = 0

    def at_end(self):
        return self.pos == len(self.data)

    def need(self, nbytes, what):
        if len(self.data) - self.pos < nbytes:
            raise TraceError(
                f"truncated reading {what} at offset {self.pos} "
                f"(file is {len(self.data)} bytes)"
            )

    def u8(self, what):
        self.need(1, what)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def u16(self, what):
        self.need(2, what)
        (value,) = struct.unpack_from("<H", self.data, self.pos)
        self.pos += 2
        return value

    def u32(self, what):
        self.need(4, what)
        (value,) = struct.unpack_from("<I", self.data, self.pos)
        self.pos += 4
        return value

    def u64(self, what):
        self.need(8, what)
        (value,) = struct.unpack_from("<Q", self.data, self.pos)
        self.pos += 8
        return value

    def bytes(self, length, what):
        self.need(length, what)
        value = self.data[self.pos:self.pos + length]
        self.pos += length
        return value


def is_power_of_two(n):
    return n > 0 and n & (n - 1) == 0


def read_header(cursor):
    magic = cursor.bytes(len(MAGIC), "magic")
    if magic != MAGIC:
        raise TraceError(f"bad magic {magic!r} (not a vtsim memory trace)")
    version = cursor.u32("version")
    if version != VERSION:
        raise TraceError(
            f"unsupported version {version} (this tool reads version "
            f"{VERSION})"
        )

    header = {
        "num_sms": cursor.u32("numSms"),
        "num_mem_partitions": cursor.u32("numMemPartitions"),
        "l1_line_size": cursor.u32("l1LineSize"),
        "l2_line_size": cursor.u32("l2LineSize"),
    }
    if not 1 <= header["num_sms"] <= 4096:
        raise TraceError(f"implausible SM count {header['num_sms']}")
    if not 1 <= header["num_mem_partitions"] <= 4096:
        raise TraceError(
            f"implausible partition count {header['num_mem_partitions']}")
    for level in ("l1", "l2"):
        size = header[f"{level}_line_size"]
        if not is_power_of_two(size) or size > 65536:
            raise TraceError(f"bad {level.upper()} line size {size}")

    name_len = cursor.u32("kernel-name length")
    if name_len > 4096:
        raise TraceError(f"implausible kernel-name length {name_len}")
    header["kernel_name"] = cursor.bytes(name_len, "kernel name").decode(
        "utf-8", errors="replace")
    header["grid"] = tuple(cursor.u32(f"grid.{d}") for d in "xyz")
    header["cta"] = tuple(cursor.u32(f"cta.{d}") for d in "xyz")

    def count(shape):
        return shape[0] * shape[1] * shape[2]

    if count(header["grid"]) == 0 or count(header["cta"]) == 0:
        raise TraceError("empty grid or CTA shape")
    if count(header["cta"]) > 65536:
        raise TraceError(f"implausible CTA size {count(header['cta'])}")
    return header


def read_records(cursor, header):
    """Walk the record stream; return per-SM access/barrier counts."""
    per_sm_accesses = [0] * header["num_sms"]
    barriers = 0
    records = 0
    last_cycle = 0
    saw_launch = False
    while True:
        record_off = cursor.pos
        if cursor.at_end():
            raise TraceError(
                f"truncated — no End seal ({records} records read)")
        kind = cursor.u8("record kind")
        if kind == KIND_KERNEL_LAUNCH:
            cycle = cursor.u64("launch cycle")
            if saw_launch or records != 0:
                raise TraceError(
                    f"kernel-launch marker at offset {record_off} is not "
                    "the first record"
                )
            if cycle != 0:
                raise TraceError(
                    f"launch marker cycle is {cycle}, expected 0")
            saw_launch = True
            records += 1
        elif kind == KIND_ACCESS:
            cycle = cursor.u64("access cycle")
            sm = cursor.u16("access sm")
            flags = cursor.u8("access flags")
            line_addr = cursor.u64("access lineAddr")
            nbytes = cursor.u16("access bytes")
            lanes = cursor.u8("access lanes")
            cursor.u32("access warpTag")
            if not saw_launch:
                raise TraceError(
                    "access record before the kernel-launch marker")
            if cycle < last_cycle:
                raise TraceError(
                    f"cycle went backwards at offset {record_off} "
                    f"({cycle} after {last_cycle})"
                )
            if sm >= header["num_sms"]:
                raise TraceError(
                    f"access names SM {sm} but the header has "
                    f"{header['num_sms']} SMs"
                )
            if not 1 <= nbytes <= header["l1_line_size"]:
                raise TraceError(
                    f"access size {nbytes} outside "
                    f"[1, {header['l1_line_size']}]"
                )
            if not 1 <= lanes <= WARP_SIZE:
                raise TraceError(
                    f"access lane count {lanes} outside [1, {WARP_SIZE}]")
            if line_addr % header["l1_line_size"] != 0:
                raise TraceError(
                    f"access address {line_addr:#x} not aligned to the "
                    f"{header['l1_line_size']}-byte L1 line"
                )
            if flags & ~KNOWN_FLAGS:
                raise TraceError(f"unknown access flag bits {flags}")
            last_cycle = cycle
            per_sm_accesses[sm] += 1
            records += 1
        elif kind == KIND_BARRIER:
            cycle = cursor.u64("barrier cycle")
            sm = cursor.u16("barrier sm")
            if not saw_launch:
                raise TraceError(
                    "barrier record before the kernel-launch marker")
            if cycle < last_cycle:
                raise TraceError(
                    f"cycle went backwards at offset {record_off} "
                    f"({cycle} after {last_cycle})"
                )
            if sm >= header["num_sms"]:
                raise TraceError(
                    f"barrier names SM {sm} but the header has "
                    f"{header['num_sms']} SMs"
                )
            last_cycle = cycle
            barriers += 1
            records += 1
        elif kind == KIND_END:
            count = cursor.u64("record count")
            if count != records:
                raise TraceError(
                    f"End seal counts {count} records but {records} were "
                    "read — file damaged"
                )
            break
        else:
            raise TraceError(
                f"unknown record kind {kind} at offset {record_off}")
    if not cursor.at_end():
        raise TraceError(
            f"{len(cursor.data) - cursor.pos} trailing bytes after the "
            "End seal"
        )
    return per_sm_accesses, barriers, records, last_cycle


def main(argv):
    args = [a for a in argv[1:] if a != "--dump"]
    dump = "--dump" in argv[1:]
    if len(args) != 1:
        print("usage: validate_mtrace.py <file.mtrace> [--dump]",
              file=sys.stderr)
        return 2
    path = pathlib.Path(args[0])
    try:
        data = path.read_bytes()
    except OSError as err:
        print(f"{path}: {err}", file=sys.stderr)
        return 1

    cursor = Cursor(data)
    try:
        header = read_header(cursor)
        per_sm, barriers, records, last_cycle = read_records(cursor, header)
    except TraceError as err:
        print(f"{path}: {err}", file=sys.stderr)
        return 1

    if dump:
        print(f"  kernel  {header['kernel_name']}")
        print(f"  grid    {header['grid']}  cta {header['cta']}")
        print(f"  machine {header['num_sms']} SMs, "
              f"{header['num_mem_partitions']} partitions, "
              f"L1 {header['l1_line_size']}B / "
              f"L2 {header['l2_line_size']}B lines")
        for sm, count in enumerate(per_sm):
            print(f"  sm{sm:<4d} {count:10d} accesses")
        print(f"  {barriers} barriers, last cycle {last_cycle}")

    print(f"{path}: valid vtsim-mtrace-v{VERSION}, {records} records "
          f"({sum(per_sm)} accesses, {barriers} barriers), "
          f"{len(data)} bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
