/**
 * @file
 * Deterministic pseudo-random number generator for workload inputs.
 *
 * vtsim never uses std::rand or hardware entropy: every simulation must be
 * exactly reproducible from its seed so that baseline and Virtual Thread
 * runs see identical input data.
 */

#ifndef VTSIM_COMMON_RNG_HH
#define VTSIM_COMMON_RNG_HH

#include <cstdint>

namespace vtsim {

/**
 * xoshiro256** generator. Small, fast, and good enough for synthesising
 * benchmark inputs and property-test stimulus.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p = 0.5);

    /** Rewind to the construction seed, as if freshly constructed. */
    void reset();

    /** The seed this stream was constructed with. */
    std::uint64_t seed() const { return seed_; }

    // Raw state words for checkpoint save/restore: a restored stream
    // continues the sequence bit-identically.
    void
    saveState(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }
    void
    restoreState(const std::uint64_t in[4], std::uint64_t seed)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
        seed_ = seed;
    }

  private:
    std::uint64_t state_[4];
    std::uint64_t seed_;
};

} // namespace vtsim

#endif // VTSIM_COMMON_RNG_HH
