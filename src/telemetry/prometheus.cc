#include "telemetry/prometheus.hh"

#include <cctype>
#include <cstdio>

namespace vtsim::telemetry {

namespace {

/** Shortest %g form that still round-trips doubles well enough for a
 * scrape (Prometheus reads any C float literal). */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
family(std::ostream &os, const std::string &name, const std::string &path,
       const char *type)
{
    os << "# HELP " << name << " vtsim registry probe " << path << '\n';
    os << "# TYPE " << name << ' ' << type << '\n';
}

} // namespace

std::string
prometheusName(const std::string &prefix, const std::string &path)
{
    std::string name = prefix;
    name += '_';
    for (char c : path) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        name += ok ? c : '_';
    }
    return name;
}

void
writePrometheus(std::ostream &os, const StatRegistry &registry,
                const std::string &prefix)
{
    for (const auto &probe : registry.scalars()) {
        if (probe.counter) {
            const std::string name =
                prometheusName(prefix, probe.path) + "_total";
            family(os, name, probe.path, "counter");
            os << name << ' ' << probe.read() << '\n';
        } else {
            const std::string name = prometheusName(prefix, probe.path);
            family(os, name, probe.path, "gauge");
            os << name << ' ' << probe.read() << '\n';
        }
    }
    for (const auto &probe : registry.dists()) {
        const std::string name = prometheusName(prefix, probe.path);
        const ScalarStat &stat = *probe.stat;
        family(os, name + "_count", probe.path, "gauge");
        os << name << "_count " << stat.count() << '\n';
        family(os, name + "_sum", probe.path, "gauge");
        os << name << "_sum " << num(stat.sum()) << '\n';
        family(os, name + "_min", probe.path, "gauge");
        os << name << "_min " << num(stat.minValue()) << '\n';
        family(os, name + "_max", probe.path, "gauge");
        os << name << "_max " << num(stat.maxValue()) << '\n';
    }
    for (const auto &probe : registry.hists()) {
        const std::string name = prometheusName(prefix, probe.path);
        const Histogram &hist = *probe.stat;
        family(os, name, probe.path, "histogram");
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < hist.bucketCount(); ++i) {
            cumulative += hist.bucket(i);
            os << name << "_bucket{le=\""
               << num(double(i + 1) * hist.bucketWidth()) << "\"} "
               << cumulative << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << hist.total() << '\n';
        os << name << "_count " << hist.total() << '\n';
    }
}

} // namespace vtsim::telemetry
