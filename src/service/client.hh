/**
 * @file
 * Minimal vtsimd/vtsim-coord client: connect over the daemon's
 * Unix-domain socket or a fabric TCP endpoint, send one NDJSON request
 * line, read one reply line. Shared by the vtsim-submit / vtsim-top
 * tools, the coordinator (which dials daemons back) and the service
 * tests (which also use requestRaw to deliver deliberately malformed
 * lines).
 *
 * When constructed with a bearer token, request() stamps it into every
 * request object as "token" — the fabric servers authenticate each
 * line, not the connection.
 */

#ifndef VTSIM_SERVICE_CLIENT_HH
#define VTSIM_SERVICE_CLIENT_HH

#include <memory>
#include <string>

#include "fabric/transport.hh"
#include "service/json.hh"

namespace vtsim::service {

class Client
{
  public:
    /** Connect to the daemon at @p socket_path; throws
     *  std::runtime_error when nothing is listening. */
    explicit Client(const std::string &socket_path);

    /**
     * Connect to a fabric TCP endpoint. @p io_timeout_ms bounds every
     * read/write on the connection (0 = unbounded — required for
     * "wait" requests, which legitimately block for a job's runtime).
     * Throws fabric::TransportError.
     */
    Client(const fabric::HostPort &addr, std::string token,
           int connect_timeout_ms = 5000, int io_timeout_ms = 0);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Send @p request as one line (token stamped in when configured);
     *  parse the one-line reply. */
    Json request(const Json &request);

    /**
     * Send @p line verbatim (a newline is appended) and return the
     * raw reply line. An empty return means the daemon closed the
     * connection without replying.
     */
    std::string requestRaw(const std::string &line);

    /** Send @p data without a trailing newline and hang up — the
     *  mid-request-disconnect probe. */
    void sendPartialAndClose(const std::string &data);

  private:
    std::string readLine();

    int fd_ = -1;
    std::string token_;
    std::string buffer_;
};

/** Backoff schedule for connectTcpWithRetry. */
struct RetryPolicy
{
    int attempts = 8;
    int baseDelayMs = 50;
    int maxDelayMs = 2000;
};

/**
 * Connect like Client's TCP constructor, but retry connection-refused/
 * reset/timeout with capped exponential backoff plus jitter — the
 * daemon-restart window must not fail a batch on its first connect().
 * Throws fabric::TransportError once the attempts are exhausted.
 */
std::unique_ptr<Client>
connectTcpWithRetry(const fabric::HostPort &addr,
                    const std::string &token,
                    const RetryPolicy &policy = {},
                    int connect_timeout_ms = 5000,
                    int io_timeout_ms = 0);

} // namespace vtsim::service

#endif // VTSIM_SERVICE_CLIENT_HH
