/**
 * @file
 * Unit tests for the VirtualThreadManager state machine, driven through a
 * mock VtCtaQuery so every trigger condition is controllable.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/log.hh"
#include "core/virtual_thread.hh"

namespace vtsim {
namespace {

/** Scriptable CTA observations. */
class MockQuery : public VtCtaQuery
{
  public:
    struct CtaObs
    {
        bool fullyStalled = false;
        bool longStalled = false;
        std::uint32_t pendingOffChip = 0;
    };

    bool
    ctaFullyStalled(VirtualCtaId id) const override
    {
        return obs_.at(id).fullyStalled;
    }

    bool
    ctaAnyWarpLongStalled(VirtualCtaId id) const override
    {
        return obs_.at(id).longStalled;
    }

    std::uint32_t
    ctaPendingOffChip(VirtualCtaId id) const override
    {
        return obs_.at(id).pendingOffChip;
    }

    CtaObs &operator[](VirtualCtaId id) { return obs_[id]; }

  private:
    std::map<VirtualCtaId, CtaObs> obs_;
};

/** Small machine: 2 CTA slots, 8 warp slots, capacity for ~6 CTAs. */
GpuConfig
vtConfig()
{
    GpuConfig cfg = GpuConfig::testMini();
    cfg.maxCtasPerSm = 2;
    cfg.maxWarpsPerSm = 8;
    cfg.maxThreadsPerSm = 256;
    cfg.registersPerSm = 6 * 1024; // 6 CTAs of the footprint below
    cfg.vtEnabled = true;
    cfg.vtMaxVirtualCtasPerSm = 6;
    cfg.vtSwapOutLatency = 5;
    cfg.vtSwapInLatency = 5;
    cfg.vtStallThreshold = 2;
    return cfg;
}

CtaFootprint
footprint()
{
    CtaFootprint fp;
    fp.warpsPerCta = 2;
    fp.threadsPerCta = 64;
    fp.regsPerCta = 1024;
    fp.sharedPerCta = 0;
    return fp;
}

/** Stall a CTA long enough (threshold cycles) to arm the trigger. */
void
stall(MockQuery &q, VirtualCtaId id, std::uint32_t pending = 2)
{
    q[id].fullyStalled = true;
    q[id].longStalled = true;
    q[id].pendingOffChip = pending;
}

class VtManagerTest : public ::testing::Test
{
  protected:
    VtManagerTest() : cfg_(vtConfig()), mgr_(cfg_, query_, 0)
    {
        mgr_.configureKernel(footprint());
    }

    GpuConfig cfg_;
    MockQuery query_;
    VirtualThreadManager mgr_;
};

TEST_F(VtManagerTest, AdmitsPastSchedulingLimitUpToBudget)
{
    for (VirtualCtaId id = 0; id < 6; ++id) {
        query_[id] = {};
        ASSERT_TRUE(mgr_.canAdmit()) << "cta " << id;
        mgr_.onAdmit(id, 0);
    }
    EXPECT_FALSE(mgr_.canAdmit()); // budget of 6 exhausted
    EXPECT_EQ(mgr_.residentCtas(), 6u);
    EXPECT_EQ(mgr_.activeCtas(), 2u); // scheduling limit
}

TEST_F(VtManagerTest, BaselineRespectsSchedulingLimit)
{
    GpuConfig base = vtConfig();
    base.vtEnabled = false;
    MockQuery q;
    VirtualThreadManager mgr(base, q, 0);
    mgr.configureKernel(footprint());
    q[0] = {};
    q[1] = {};
    mgr.onAdmit(0, 0);
    mgr.onAdmit(1, 0);
    EXPECT_FALSE(mgr.canAdmit()); // 2 CTA slots
    EXPECT_TRUE(mgr.isIssuable(0));
    EXPECT_TRUE(mgr.isIssuable(1));
}

TEST_F(VtManagerTest, CapacityBindsAdmission)
{
    GpuConfig cfg = vtConfig();
    cfg.registersPerSm = 3 * 1024; // only 3 CTAs fit
    MockQuery q;
    VirtualThreadManager mgr(cfg, q, 0);
    mgr.configureKernel(footprint());
    for (VirtualCtaId id = 0; id < 3; ++id) {
        q[id] = {};
        ASSERT_TRUE(mgr.canAdmit());
        mgr.onAdmit(id, 0);
    }
    EXPECT_FALSE(mgr.canAdmit());
    EXPECT_EQ(mgr.regsInUse(), 3072u);
}

TEST_F(VtManagerTest, FreshCtasActivateImmediately)
{
    query_[0] = {};
    query_[1] = {};
    query_[2] = {};
    mgr_.onAdmit(0, 0);
    mgr_.onAdmit(1, 0);
    mgr_.onAdmit(2, 0);
    EXPECT_TRUE(mgr_.isIssuable(0));
    EXPECT_TRUE(mgr_.isIssuable(1));
    EXPECT_FALSE(mgr_.isIssuable(2)); // inactive: no slot
    EXPECT_EQ(mgr_.state(2), CtaState::Inactive);
}

TEST_F(VtManagerTest, SwapOnAllWarpsStalled)
{
    for (VirtualCtaId id = 0; id < 3; ++id) {
        query_[id] = {};
        mgr_.onAdmit(id, 0);
    }
    stall(query_, 0);
    // Two ticks to satisfy the stall threshold, then the swap fires.
    mgr_.tick(1);
    mgr_.tick(2);
    mgr_.tick(3);
    EXPECT_EQ(mgr_.state(0), CtaState::SwappingOut);
    EXPECT_EQ(mgr_.state(2), CtaState::SwappingIn);
    EXPECT_EQ(mgr_.swapOuts(), 1u);
    EXPECT_FALSE(mgr_.isIssuable(0));
    EXPECT_FALSE(mgr_.isIssuable(2));

    // Swap-out completes after 5 cycles; swap-in after 10.
    mgr_.tick(9);
    EXPECT_EQ(mgr_.state(0), CtaState::Inactive);
    EXPECT_EQ(mgr_.state(2), CtaState::SwappingIn);
    mgr_.tick(14);
    EXPECT_EQ(mgr_.state(2), CtaState::Active);
    EXPECT_TRUE(mgr_.isIssuable(2));
}

TEST_F(VtManagerTest, NoSwapWithoutReadyCandidate)
{
    for (VirtualCtaId id = 0; id < 3; ++id) {
        query_[id] = {};
        mgr_.onAdmit(id, 0);
    }
    stall(query_, 0);
    query_[2].pendingOffChip = 4; // the only inactive CTA is not ready
    for (Cycle c = 1; c < 10; ++c)
        mgr_.tick(c);
    EXPECT_EQ(mgr_.swapOuts(), 0u);
    EXPECT_EQ(mgr_.state(0), CtaState::Active);
}

TEST_F(VtManagerTest, OldestFirstIgnoresReadiness)
{
    GpuConfig cfg = vtConfig();
    cfg.vtSwapInPolicy = VtSwapInPolicy::OldestFirst;
    MockQuery q;
    VirtualThreadManager mgr(cfg, q, 0);
    mgr.configureKernel(footprint());
    for (VirtualCtaId id = 0; id < 3; ++id) {
        q[id] = {};
        mgr.onAdmit(id, 0);
    }
    stall(q, 0);
    q[2].pendingOffChip = 4; // not ready, but OldestFirst takes it anyway
    mgr.tick(1);
    mgr.tick(2);
    mgr.tick(3);
    EXPECT_EQ(mgr.swapOuts(), 1u);
    EXPECT_EQ(mgr.state(2), CtaState::SwappingIn);
}

TEST_F(VtManagerTest, AnyWarpTriggerFiresWithoutFullStall)
{
    GpuConfig cfg = vtConfig();
    cfg.vtSwapTrigger = VtSwapTrigger::AnyWarpStalled;
    MockQuery q;
    VirtualThreadManager mgr(cfg, q, 0);
    mgr.configureKernel(footprint());
    for (VirtualCtaId id = 0; id < 3; ++id) {
        q[id] = {};
        mgr.onAdmit(id, 0);
    }
    // CTA 0: long-stalled warp but NOT fully stalled.
    q[0].fullyStalled = true; // needed to advance the stall streak
    q[0].longStalled = true;
    mgr.tick(1);
    mgr.tick(2);
    mgr.tick(3);
    EXPECT_EQ(mgr.swapOuts(), 1u);
}

TEST_F(VtManagerTest, AllWarpsTriggerNeedsFullStall)
{
    for (VirtualCtaId id = 0; id < 3; ++id) {
        query_[id] = {};
        mgr_.onAdmit(id, 0);
    }
    query_[0].longStalled = true; // one warp stalled, others issuable
    query_[0].fullyStalled = false;
    for (Cycle c = 1; c < 10; ++c)
        mgr_.tick(c);
    EXPECT_EQ(mgr_.swapOuts(), 0u);
}

TEST_F(VtManagerTest, StallThresholdDebounces)
{
    for (VirtualCtaId id = 0; id < 3; ++id) {
        query_[id] = {};
        mgr_.onAdmit(id, 0);
    }
    stall(query_, 0);
    mgr_.tick(1); // streak = 1 < threshold 2
    EXPECT_EQ(mgr_.swapOuts(), 0u);
    query_[0].fullyStalled = false; // recovers: streak resets
    mgr_.tick(2);
    stall(query_, 0);
    mgr_.tick(3);
    EXPECT_EQ(mgr_.swapOuts(), 0u);
}

TEST_F(VtManagerTest, FinishActivatesInactive)
{
    for (VirtualCtaId id = 0; id < 3; ++id) {
        query_[id] = {};
        mgr_.onAdmit(id, 0);
    }
    EXPECT_EQ(mgr_.state(2), CtaState::Inactive);
    mgr_.onCtaFinished(0, 100);
    EXPECT_EQ(mgr_.residentCtas(), 2u);
    // CTA 2 was never swapped: activates instantly.
    EXPECT_TRUE(mgr_.isIssuable(2));
    EXPECT_EQ(mgr_.activeCtas(), 2u);
}

TEST_F(VtManagerTest, SwappedCtaPaysRestoreLatencyAfterFinish)
{
    for (VirtualCtaId id = 0; id < 3; ++id) {
        query_[id] = {};
        mgr_.onAdmit(id, 0);
    }
    // Swap 0 out (2 in).
    stall(query_, 0);
    mgr_.tick(1);
    mgr_.tick(2);
    mgr_.tick(3);
    query_[0].fullyStalled = false;
    query_[0].longStalled = false;
    query_[0].pendingOffChip = 0;
    mgr_.tick(20); // transitions settle
    EXPECT_EQ(mgr_.state(0), CtaState::Inactive);
    // CTA 1 finishes: 0 comes back but must restore its state.
    mgr_.onCtaFinished(1, 30);
    EXPECT_EQ(mgr_.state(0), CtaState::SwappingIn);
    EXPECT_FALSE(mgr_.isIssuable(0));
    mgr_.tick(36);
    EXPECT_TRUE(mgr_.isIssuable(0));
}

TEST_F(VtManagerTest, SlotAccountingStaysWithinLimits)
{
    for (VirtualCtaId id = 0; id < 6; ++id) {
        query_[id] = {};
        mgr_.onAdmit(id, 0);
    }
    for (Cycle c = 1; c < 100; ++c) {
        // Randomly stall/unstall CTAs to churn swaps.
        for (VirtualCtaId id = 0; id < 6; ++id) {
            const bool st = ((c + id) % 7) < 3;
            query_[id].fullyStalled = st;
            query_[id].longStalled = st;
            query_[id].pendingOffChip = st ? 1 : 0;
        }
        mgr_.tick(c);
        EXPECT_LE(mgr_.activeCtas(), 2u);
        EXPECT_LE(mgr_.warpsActive(), 8u);
        EXPECT_LE(mgr_.threadsActive(), 256u);
    }
}

TEST_F(VtManagerTest, OnePairPerCycle)
{
    for (VirtualCtaId id = 0; id < 6; ++id) {
        query_[id] = {};
        mgr_.onAdmit(id, 0);
    }
    stall(query_, 0);
    stall(query_, 1);
    mgr_.tick(1);
    mgr_.tick(2); // both armed; only one swap initiated this tick
    EXPECT_EQ(mgr_.swapOuts(), 1u);
    mgr_.tick(3);
    EXPECT_EQ(mgr_.swapOuts(), 2u);
}

TEST_F(VtManagerTest, StateQueriesValidate)
{
    query_[0] = {};
    mgr_.onAdmit(0, 0);
    EXPECT_EQ(mgr_.state(0), CtaState::Active);
    EXPECT_EQ(toString(CtaState::Active), "active");
    EXPECT_EQ(toString(CtaState::Inactive), "inactive");
    EXPECT_EQ(toString(CtaState::SwappingOut), "swapping-out");
    EXPECT_EQ(toString(CtaState::SwappingIn), "swapping-in");
}

} // namespace
} // namespace vtsim
