/**
 * @file
 * Unit tests for the LdstUnit, driven with a mock LdstClient and a
 * loop-back interconnect that services requests after a fixed delay.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "config/gpu_config.hh"
#include "mem/interconnect.hh"
#include "sm/ldst_unit.hh"

namespace vtsim {
namespace {

struct Event
{
    std::string kind;
    VirtualCtaId vcta;
    std::uint32_t warp;
    RegIndex dst;
};

class MockClient : public LdstClient
{
  public:
    void
    loadComplete(VirtualCtaId vcta, std::uint32_t warp,
                 RegIndex dst) override
    {
        events.push_back({"complete", vcta, warp, dst});
    }

    void
    offChipIssued(VirtualCtaId vcta, std::uint32_t warp) override
    {
        events.push_back({"issued", vcta, warp, noReg});
        ++outstanding;
    }

    void
    offChipReturned(VirtualCtaId vcta, std::uint32_t warp) override
    {
        events.push_back({"returned", vcta, warp, noReg});
        --outstanding;
    }

    void responseArriving(Cycle) override {}

    std::size_t
    completions() const
    {
        std::size_t n = 0;
        for (const auto &e : events)
            n += e.kind == "complete";
        return n;
    }

    std::vector<Event> events;
    int outstanding = 0;
};

/**
 * Loop-back memory: every request is answered after `delay` cycles
 * without any real L2/DRAM behind it.
 */
class LdstTest : public ::testing::Test
{
  protected:
    LdstTest()
        : cfg_(makeConfig()),
          noc_(NocParams{2, 4, 1, 1}),
          ldst_(0, cfg_, noc_, client_)
    {
        noc_.setRouter([](Addr) { return 0u; });
        noc_.setRequestSink([this](const MemRequest &r, Cycle now) {
            if (r.sink)
                noc_.sendResponse(r, now + delay_);
        });
        noc_.setResponseSink([](const MemRequest &r, Cycle now) {
            r.sink->memResponse(r.token, now);
        });
    }

    static GpuConfig
    makeConfig()
    {
        GpuConfig cfg = GpuConfig::testMini();
        cfg.l1HitLatency = 6;
        return cfg;
    }

    Instruction
    memInst(Opcode op, RegIndex dst)
    {
        Instruction i;
        i.op = op;
        i.dst = dst;
        i.src[0] = 0;
        if (op == Opcode::STG || op == Opcode::ATOMG_ADD)
            i.src[1] = 1;
        return i;
    }

    std::vector<LaneAccess>
    oneLine(Addr base)
    {
        std::vector<LaneAccess> acc;
        for (std::uint32_t lane = 0; lane < warpSize; ++lane)
            acc.push_back({lane, base + 4 * lane});
        return acc;
    }

    void
    run(Cycle from, Cycle to)
    {
        for (Cycle c = from; c < to; ++c) {
            noc_.tick(c);
            ldst_.tick(c);
        }
    }

    GpuConfig cfg_;
    MockClient client_;
    Interconnect noc_;
    LdstUnit ldst_;
    Cycle delay_ = 50;
};

TEST_F(LdstTest, MissLoadRoundTrip)
{
    ldst_.issueGlobal(3, 1, memInst(Opcode::LDG, 5), oneLine(0x1000));
    run(0, 200);
    ASSERT_EQ(client_.completions(), 1u);
    const Event &e = client_.events.back();
    EXPECT_EQ(e.vcta, 3u);
    EXPECT_EQ(e.warp, 1u);
    EXPECT_EQ(e.dst, 5);
    EXPECT_EQ(client_.outstanding, 0);
    EXPECT_TRUE(ldst_.idle());
}

TEST_F(LdstTest, HitCompletesLocallyWithoutOffChip)
{
    // Warm the line, then reload it: second access is a hit with no
    // off-chip traffic.
    ldst_.issueGlobal(0, 0, memInst(Opcode::LDG, 5), oneLine(0x1000));
    run(0, 200);
    const auto issued_before = client_.events.size();
    ldst_.issueGlobal(0, 0, memInst(Opcode::LDG, 6), oneLine(0x1000));
    run(200, 400);
    EXPECT_EQ(client_.completions(), 2u);
    // Only a "complete" event was added: no issued/returned pair.
    EXPECT_EQ(client_.events.size(), issued_before + 1);
    EXPECT_EQ(ldst_.l1().hits(), 1u);
}

TEST_F(LdstTest, MultiTransactionLoadCompletesOnce)
{
    // Fully scattered load: 32 lines, one completion when ALL return.
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < warpSize; ++lane)
        acc.push_back({lane, Addr(lane) * 256});
    ldst_.issueGlobal(0, 0, memInst(Opcode::LDG, 7), acc);
    run(0, 500);
    EXPECT_EQ(client_.completions(), 1u);
    EXPECT_EQ(ldst_.transactions(), 32u);
    EXPECT_EQ(client_.outstanding, 0);
}

TEST_F(LdstTest, MergedLoadsBothComplete)
{
    // Two warps load the same cold line back to back: the second merges
    // into the first's L1 MSHR and both complete on one fill.
    ldst_.issueGlobal(0, 0, memInst(Opcode::LDG, 5), oneLine(0x2000));
    ldst_.issueGlobal(0, 1, memInst(Opcode::LDG, 5), oneLine(0x2000));
    run(0, 300);
    EXPECT_EQ(client_.completions(), 2u);
    EXPECT_EQ(ldst_.l1().misses(), 1u);
    EXPECT_EQ(ldst_.l1().stats().counterValue("mshr_merges"), 1u);
}

TEST_F(LdstTest, StoresAreFireAndForget)
{
    ldst_.issueGlobal(0, 0, memInst(Opcode::STG, noReg), oneLine(0x3000));
    run(0, 200);
    EXPECT_EQ(client_.completions(), 0u);
    EXPECT_EQ(client_.outstanding, 0);
    EXPECT_TRUE(ldst_.idle());
}

TEST_F(LdstTest, AtomicsBypassL1)
{
    ldst_.issueGlobal(0, 0, memInst(Opcode::ATOMG_ADD, 9),
                      {{0, 0x4000}});
    run(0, 200);
    EXPECT_EQ(client_.completions(), 1u);
    // The L1 never saw the line.
    EXPECT_FALSE(ldst_.l1().probe(0x4000 & ~Addr(127)));
    EXPECT_EQ(ldst_.l1().misses(), 0u);
}

TEST_F(LdstTest, OffChipCountingPairsUp)
{
    for (int i = 0; i < 4; ++i) {
        ldst_.issueGlobal(0, 0, memInst(Opcode::LDG, RegIndex(i)),
                          oneLine(0x8000 + 0x100 * i));
    }
    run(0, 20);
    EXPECT_GT(client_.outstanding, 0);
    run(20, 500);
    EXPECT_EQ(client_.outstanding, 0);
    EXPECT_EQ(client_.completions(), 4u);
}

TEST_F(LdstTest, InjectThroughputIsOnePerCycle)
{
    // 8 distinct-line loads inject at 1/cycle: the last off-chip
    // "issued" event must be >= 7 cycles after the first.
    for (int i = 0; i < 8; ++i) {
        ldst_.issueGlobal(0, 0, memInst(Opcode::LDG, RegIndex(i)),
                          oneLine(0x10000 + 0x100 * i));
    }
    // Track issue cycles via the noc request count per cycle.
    std::uint64_t before = 0;
    std::uint32_t busy_cycles = 0;
    for (Cycle c = 0; c < 20; ++c) {
        noc_.tick(c);
        ldst_.tick(c);
        const std::uint64_t now_cnt = ldst_.l1().misses();
        busy_cycles += now_cnt != before;
        before = now_cnt;
    }
    EXPECT_GE(busy_cycles, 8u);
}

TEST_F(LdstTest, CanAcceptReflectsQueueHeadroom)
{
    EXPECT_TRUE(ldst_.canAccept());
    // Two fully scattered loads fill the 64-deep queue to the brim.
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < warpSize; ++lane)
        acc.push_back({lane, Addr(lane) * 256});
    ldst_.issueGlobal(0, 0, memInst(Opcode::LDG, 1), acc);
    std::vector<LaneAccess> acc2;
    for (std::uint32_t lane = 0; lane < warpSize; ++lane)
        acc2.push_back({lane, 0x100000 + Addr(lane) * 256});
    ldst_.issueGlobal(0, 1, memInst(Opcode::LDG, 2), acc2);
    EXPECT_FALSE(ldst_.canAccept());
    run(0, 500);
    EXPECT_TRUE(ldst_.canAccept());
    EXPECT_EQ(client_.completions(), 2u);
}

} // namespace
} // namespace vtsim
