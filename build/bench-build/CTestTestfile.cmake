# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_tab1_smoke "/root/repo/build/bench/tab1_config")
set_tests_properties(bench_tab1_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_tab2_smoke "/root/repo/build/bench/tab2_benchmarks")
set_tests_properties(bench_tab2_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig1_smoke "/root/repo/build/bench/fig1_limiter_classification")
set_tests_properties(bench_fig1_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig2_smoke "/root/repo/build/bench/fig2_resource_utilization")
set_tests_properties(bench_fig2_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
