/**
 * @file
 * Functional (value-level) execution of VASM instructions at warp
 * granularity. The timing model calls execute() at issue time — as
 * GPGPU-Sim's performance model does — so that the address streams the
 * memory system sees are the real ones the data produces.
 */

#ifndef VTSIM_FUNC_EXEC_CONTEXT_HH
#define VTSIM_FUNC_EXEC_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "common/active_mask.hh"
#include "common/types.hh"
#include "isa/kernel.hh"
#include "isa/microcode.hh"
#include "sim/serializer.hh"

namespace vtsim {

class GlobalMemory;

/**
 * The *capacity-limit* state of one CTA: register values and shared
 * memory. Under Virtual Thread this state stays resident on chip for
 * inactive CTAs — that is the paper's central observation — so it lives in
 * its own object, separate from the scheduling state (WarpContext).
 */
struct CtaFuncState
{
    /** Linearised CTA index within the grid. */
    std::uint64_t linearCtaId = 0;
    /** 3-D CTA index. */
    Dim3 ctaIdx;
    /** Register file slice: thread-major, regs_per_thread per thread. */
    std::vector<std::uint32_t> regs;
    /** Shared-memory bytes for this CTA. */
    std::vector<std::uint8_t> shared;
    std::uint32_t regsPerThread = 0;
    std::uint32_t threadsPerCta = 0;

    void init(std::uint64_t linear_cta_id, Dim3 cta_idx,
              std::uint32_t threads_per_cta, std::uint32_t regs_per_thread,
              std::uint32_t shared_bytes);

    std::uint32_t
    readReg(std::uint32_t thread, RegIndex reg) const
    {
        return regs[std::size_t(thread) * regsPerThread + reg];
    }

    void
    writeReg(std::uint32_t thread, RegIndex reg, std::uint32_t value)
    {
        regs[std::size_t(thread) * regsPerThread + reg] = value;
    }

    std::uint32_t readShared32(std::uint32_t byte_addr) const;
    void writeShared32(std::uint32_t byte_addr, std::uint32_t value);

    // Checkpoint plumbing (driven by the owning SmCore).
    void
    save(Serializer &ser) const
    {
        ser.put(linearCtaId);
        ser.put(ctaIdx);
        ser.putVec(regs);
        ser.putVec(shared);
        ser.put(regsPerThread);
        ser.put(threadsPerCta);
    }

    void
    restore(Deserializer &des)
    {
        des.get(linearCtaId);
        des.get(ctaIdx);
        des.getVec(regs);
        des.getVec(shared);
        des.get(regsPerThread);
        des.get(threadsPerCta);
    }
};

/** One lane's memory access, handed to the coalescer / bank model. */
struct LaneAccess
{
    std::uint32_t lane;
    Addr addr;
    /** Value the lane wrote (STG) or the atomic's addend (ATOMG_ADD);
     *  unused for loads. Feeds the sharded-epoch replay log. */
    std::uint32_t data = 0;
    /** Value the lane observed: the load result (LDG) or the atomic's
     *  read-out (ATOMG_ADD). During a sharded epoch global writes are
     *  deferred, so this may be stale; the replay pass re-executes the
     *  op against settled memory and patches the destination register
     *  when the true value differs. */
    std::uint32_t observed = 0;

    bool operator==(const LaneAccess &) const = default;
};

/** Everything the timing model needs to know about an issued instruction. */
struct ExecResult
{
    /** Lanes that take the branch (BRA only). */
    ActiveMask branchTaken;
    /** Per-lane global memory addresses (LDG/STG/ATOMG). */
    std::vector<LaneAccess> globalAccesses;
    /** Per-lane shared memory addresses (LDS/STS). */
    std::vector<LaneAccess> sharedAccesses;
};

/**
 * Functionally execute @p inst for warp @p warp_in_cta of the CTA whose
 * value state is @p cta, under @p mask. Loads/stores update functional
 * memory immediately; the timing model only replays the addresses.
 */
ExecResult execute(const Instruction &inst, std::uint32_t warp_in_cta,
                   ActiveMask mask, CtaFuncState &cta, GlobalMemory &gmem,
                   const LaunchParams &launch);

/**
 * Fast path: execute the pre-decoded micro-op at stream index @p pc
 * (index-parallel with the instruction stream) into caller-owned
 * @p out, which is cleared first — reusing one ExecResult across
 * issues avoids the per-issue vector allocation execute() pays.
 * Bit-identical to execute() on the same pre-state.
 */
void executeMicroInto(const MicroProgram &prog, Pc pc,
                      std::uint32_t warp_in_cta, ActiveMask mask,
                      CtaFuncState &cta, GlobalMemory &gmem,
                      const LaunchParams &launch, ExecResult &out);

/**
 * Oracle wrapper around executeMicroInto: first runs the legacy
 * interpreter against copy-on-write overlays of @p cta / @p gmem, then
 * the micro-op on the real state, and fatals on any divergence in the
 * ExecResult, written registers, shared-memory bytes, or global-memory
 * bytes. Debug builds run this for every issued instruction (see
 * GpuConfig::microOracle).
 */
void executeMicroChecked(const MicroProgram &prog, const Instruction &inst,
                         Pc pc, std::uint32_t warp_in_cta, ActiveMask mask,
                         CtaFuncState &cta, GlobalMemory &gmem,
                         const LaunchParams &launch, ExecResult &out);

} // namespace vtsim

#endif // VTSIM_FUNC_EXEC_CONTEXT_HH
