#include "mem/coalescer.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.hh"

namespace vtsim {

std::vector<CoalescedAccess>
coalesce(const std::vector<LaneAccess> &accesses, std::uint32_t line_size)
{
    VTSIM_ASSERT(isPowerOfTwo(line_size), "line size must be power of two");
    std::vector<CoalescedAccess> out;
    // Order of first touch matters for determinism; map line -> out index.
    std::map<Addr, std::size_t> index;
    // Track touched 4-byte words per line to report payload size.
    std::map<Addr, std::set<Addr>> words;

    for (const auto &acc : accesses) {
        const Addr line = acc.addr & ~static_cast<Addr>(line_size - 1);
        auto it = index.find(line);
        if (it == index.end()) {
            index[line] = out.size();
            out.push_back({line, 0, 1});
        } else {
            ++out[it->second].lanes;
        }
        // A 4-byte access can straddle two words within the line; count
        // both (straddling the line itself is rare and we fold it into
        // this line's payload — the shape, not exactness, matters).
        words[line].insert(acc.addr / 4);
        words[line].insert((acc.addr + 3) / 4);
    }
    for (auto &ca : out) {
        const auto w = static_cast<std::uint32_t>(words[ca.lineAddr].size());
        ca.bytes = std::min(w * 4u, line_size);
    }
    return out;
}

std::uint32_t
sharedMemPasses(const std::vector<LaneAccess> &accesses,
                std::uint32_t num_banks)
{
    VTSIM_ASSERT(isPowerOfTwo(num_banks), "bank count must be power of two");
    if (accesses.empty())
        return 0;
    // bank -> set of distinct word addresses touched in that bank.
    std::map<std::uint32_t, std::set<Addr>> banks;
    for (const auto &acc : accesses) {
        const Addr word = acc.addr / 4;
        banks[word & (num_banks - 1)].insert(word);
    }
    std::uint32_t passes = 1;
    for (const auto &[bank, word_set] : banks) {
        passes = std::max<std::uint32_t>(passes, word_set.size());
    }
    return passes;
}

} // namespace vtsim
