file(REMOVE_RECURSE
  "../bench/ext6_memory_fidelity"
  "../bench/ext6_memory_fidelity.pdb"
  "CMakeFiles/ext6_memory_fidelity.dir/ext6_memory_fidelity.cc.o"
  "CMakeFiles/ext6_memory_fidelity.dir/ext6_memory_fidelity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext6_memory_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
