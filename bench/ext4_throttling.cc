/**
 * @file
 * EXT-4 (related-work comparator): Virtual Thread versus DYNCTA-style
 * CTA throttling. The two schemes pull in opposite directions —
 * throttling *reduces* schedulable CTAs to protect locality; VT
 * *increases* them to hide latency. The paper's positioning is that the
 * scheduling limit, not cache contention, is what binds this workload
 * class — so throttling should be roughly neutral here while VT gains.
 */

#include <cstdio>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("EXT-4", "VT vs DYNCTA-style CTA throttling");
    const GpuConfig base = GpuConfig::fermiLike();

    GpuConfig vt = base;
    vt.vtEnabled = true;
    GpuConfig thr = base;
    thr.throttleEnabled = true;

    const auto names = benchmarkNames();
    std::vector<RunSpec> specs;
    for (const auto &name : names) {
        specs.push_back({name, base, benchScale});
        specs.push_back({name, thr, benchScale});
        specs.push_back({name, vt, benchScale});
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s %10s %10s\n", "benchmark", "throttle", "vt");
    std::vector<double> thr_ratios, vt_ratios;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const RunResult &b = results[3 * i];
        const RunResult &t = results[3 * i + 1];
        const RunResult &v = results[3 * i + 2];
        const double st = double(b.stats.cycles) / t.stats.cycles;
        const double sv = double(b.stats.cycles) / v.stats.cycles;
        thr_ratios.push_back(st);
        vt_ratios.push_back(sv);
        std::printf("%-14s %9.2fx %9.2fx\n", names[i].c_str(), st, sv);
    }
    std::printf("%-14s %9.2fx %9.2fx\n", "GMEAN", geomean(thr_ratios),
                geomean(vt_ratios));
    std::printf("(both normalised to the unthrottled, VT-off baseline)\n");
    return 0;
}
