#include "gpu/stats_snapshot.hh"

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "mem/memory_partition.hh"

namespace vtsim {

StatsSnapshot
StatsSnapshot::capture(std::vector<std::unique_ptr<SmCore>> &sms,
                       std::vector<std::unique_ptr<MemoryPartition>> &partitions)
{
    StatsSnapshot snap;
    snap.sms_.reserve(sms.size());
    for (auto &sm : sms) {
        SmCounters c;
        c.instr = sm->instructionsIssued();
        c.tinstr = sm->threadInstructions();
        c.ctas = sm->ctasCompleted();
        c.swapOuts = sm->vt().swapOuts();
        c.swapIns = sm->vt().swapIns();
        c.l1h = sm->ldst().l1().hits();
        c.l1m = sm->ldst().l1().misses();
        c.stalls = sm->stallBreakdown();
        snap.sms_.push_back(c);
    }
    for (auto &p : partitions) {
        snap.l2h_ += p->l2().hits();
        snap.l2m_ += p->l2().misses();
        snap.drh_ += p->dram().rowHits();
        snap.drm_ += p->dram().rowMisses();
        snap.drb_ += p->dram().bytesTransferred();
    }
    return snap;
}

void
StatsSnapshot::delta(const StatsSnapshot &before, KernelStats &stats) const
{
    VTSIM_ASSERT(sms_.size() == before.sms_.size(),
                 "snapshots of different machines");
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        const SmCounters &a = sms_[i];
        const SmCounters &b = before.sms_[i];
        stats.warpInstructions += a.instr - b.instr;
        stats.threadInstructions += a.tinstr - b.tinstr;
        stats.ctasCompleted += a.ctas - b.ctas;
        stats.swapOuts += a.swapOuts - b.swapOuts;
        stats.swapIns += a.swapIns - b.swapIns;
        stats.l1Hits += a.l1h - b.l1h;
        stats.l1Misses += a.l1m - b.l1m;
        stats.stalls.issued += a.stalls.issued - b.stalls.issued;
        stats.stalls.memStall += a.stalls.memStall - b.stalls.memStall;
        stats.stalls.shortStall +=
            a.stalls.shortStall - b.stalls.shortStall;
        stats.stalls.barrierStall +=
            a.stalls.barrierStall - b.stalls.barrierStall;
        stats.stalls.swapStall += a.stalls.swapStall - b.stalls.swapStall;
        stats.stalls.idle += a.stalls.idle - b.stalls.idle;
    }
    stats.l2Hits += l2h_ - before.l2h_;
    stats.l2Misses += l2m_ - before.l2m_;
    stats.dramRowHits += drh_ - before.drh_;
    stats.dramRowMisses += drm_ - before.drm_;
    stats.dramBytes += drb_ - before.drb_;
}

} // namespace vtsim
