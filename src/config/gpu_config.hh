/**
 * @file
 * Top-level configuration of the simulated GPU, including the Virtual
 * Thread knobs. Mirrors the configuration table of the paper (TAB-1).
 */

#ifndef VTSIM_CONFIG_GPU_CONFIG_HH
#define VTSIM_CONFIG_GPU_CONFIG_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <type_traits>

#include "common/types.hh"

namespace vtsim {

/** Warp scheduler selection policy. */
enum class SchedulerPolicy
{
    LooseRoundRobin,  ///< LRR: rotate through ready warps.
    GreedyThenOldest, ///< GTO: stick with one warp until it stalls.
    TwoLevel,         ///< Small active set with pending pool behind it.
};

/** Returns a short name, e.g. "gto". */
std::string toString(SchedulerPolicy policy);

/** CTA swap-out trigger used by the Virtual Thread manager. */
enum class VtSwapTrigger
{
    /** Paper policy: swap when ALL warps of the CTA are blocked and at
     *  least one waits on a long-latency memory dependence. */
    AllWarpsStalled,
    /** Ablation: swap as soon as ANY warp blocks on long latency. */
    AnyWarpStalled,
};

/** Which inactive CTA is brought in on a swap. */
enum class VtSwapInPolicy
{
    ReadyFirst,  ///< Paper policy: prefer CTAs whose loads returned.
    OldestFirst, ///< Ablation: strict age order regardless of readiness.
};

std::string toString(VtSwapTrigger trigger);
std::string toString(VtSwapInPolicy policy);

/**
 * All architectural parameters of the simulated GPU.
 *
 * Defaults (and fermiLike()) model a GTX480-class part, the baseline class
 * the paper evaluates on. Latencies are in core cycles; a single clock
 * domain is modelled.
 */
struct GpuConfig
{
    // --- Chip-level shape ----------------------------------------------
    std::uint32_t numSms = 15;           ///< Streaming multiprocessors.
    std::uint32_t numMemPartitions = 6;  ///< L2 slices + DRAM channels.

    // --- Per-SM scheduling limit (the structures VT virtualises) --------
    std::uint32_t maxWarpsPerSm = 48;    ///< Hardware warp slots.
    std::uint32_t maxCtasPerSm = 8;      ///< Hardware CTA slots.
    std::uint32_t maxThreadsPerSm = 1536;///< Thread slots.

    // --- Per-SM capacity limit (stays fixed under VT) --------------------
    std::uint32_t registersPerSm = 32768;    ///< 32-bit registers (128 KB).
    std::uint32_t sharedMemPerSm = 48 * 1024;///< Bytes of shared memory.
    std::uint32_t sharedMemBanks = 32;
    std::uint32_t regAllocGranularity = 64;  ///< Regs rounded per warp.
    std::uint32_t sharedAllocGranularity = 128; ///< Bytes rounded per CTA.

    // --- SM pipeline -----------------------------------------------------
    std::uint32_t numSchedulers = 2;     ///< Warp schedulers per SM.
    std::uint32_t issueWidth = 1;        ///< Instructions per scheduler/cyc.
    SchedulerPolicy schedulerPolicy = SchedulerPolicy::GreedyThenOldest;
    std::uint32_t aluLatency = 4;        ///< Simple int/fp ALU result lat.
    std::uint32_t sfuLatency = 16;       ///< Transcendental / div latency.
    std::uint32_t aluThroughputPerSm = 2;///< ALU instrs accepted per cycle.
    std::uint32_t sfuThroughputPerSm = 1;
    std::uint32_t ldstThroughputPerSm = 1; ///< Mem instrs accepted / cycle.

    // --- L1 data cache (per SM) -----------------------------------------
    std::uint32_t l1Size = 16 * 1024;
    std::uint32_t l1Assoc = 4;
    std::uint32_t l1LineSize = 128;
    std::uint32_t l1Mshrs = 128;         ///< Distinct outstanding lines.
    std::uint32_t l1MshrTargets = 8;     ///< Merged requests per line.
    std::uint32_t l1HitLatency = 40;     ///< Load-to-use on an L1 hit.
    /** Route every global load around the L1 (Kepler-style policy);
     *  individual ldg.cg instructions bypass regardless. */
    bool l1BypassGlobalLoads = false;

    // --- Shared memory ----------------------------------------------------
    std::uint32_t sharedMemLatency = 26; ///< Conflict-free access latency.

    // --- Interconnect -----------------------------------------------------
    std::uint32_t nocLatency = 40;       ///< SM <-> partition, each way.
    std::uint32_t nocFlitsPerCycle = 2;  ///< Requests accepted per cycle.

    // --- L2 (per partition) ----------------------------------------------
    std::uint32_t l2SlicePerPartition = 128 * 1024;
    std::uint32_t l2Assoc = 8;
    std::uint32_t l2LineSize = 128;
    std::uint32_t l2Mshrs = 128;
    std::uint32_t l2MshrTargets = 8;
    std::uint32_t l2HitLatency = 120;    ///< Additional cycles on L2 hit.
    std::uint32_t l2PortsPerCycle = 2;   ///< Requests serviced per cycle.
    /** Write-back (write-allocate, no-fetch) L2, as on Fermi. Setting
     *  this false models a write-through/no-allocate L2 (EXT-5). */
    bool l2WriteBack = true;

    // --- DRAM (per partition) ---------------------------------------------
    std::uint32_t dramBanksPerPartition = 8;
    std::uint32_t dramRowBufferSize = 2048;  ///< Bytes per open row.
    std::uint32_t dramRowHitLatency = 200;
    std::uint32_t dramRowMissLatency = 350;
    std::uint32_t dramBytesPerCycle = 32;    ///< Data bus bandwidth.
    /** FR-FCFS reorder window; 1 degenerates to FCFS (EXT-6). */
    std::uint32_t dramSchedWindow = 32;

    // --- Virtual Thread (the paper's mechanism) ---------------------------
    bool vtEnabled = false;
    /** Upper bound on resident (active + inactive) CTAs per SM. The
     *  capacity limit still applies on top of this. 0 means "no extra
     *  bound beyond capacity". */
    std::uint32_t vtMaxVirtualCtasPerSm = 16;
    std::uint32_t vtSwapOutLatency = 10; ///< Cycles to save sched state.
    std::uint32_t vtSwapInLatency = 10;  ///< Cycles to restore sched state.
    VtSwapTrigger vtSwapTrigger = VtSwapTrigger::AllWarpsStalled;
    VtSwapInPolicy vtSwapInPolicy = VtSwapInPolicy::ReadyFirst;
    /** Minimum consecutive fully-stalled cycles before a swap fires;
     *  hysteresis against thrashing on short stalls. */
    std::uint32_t vtStallThreshold = 4;

    /**
     * Idealised comparison machine (FIG-6): multiply the scheduling limit
     * by this factor for free, leaving VT off. 1 = normal baseline.
     */
    std::uint32_t schedLimitMultiplier = 1;

    // --- DYNCTA-style CTA throttling (related-work comparator) -----------
    bool throttleEnabled = false;        ///< Mutually exclusive with VT.
    std::uint32_t throttleEpochCycles = 2048;
    double throttleHighWater = 0.55;     ///< Shrink cap above this.
    double throttleLowWater = 0.30;      ///< Grow cap below this.

    // --- Bookkeeping -------------------------------------------------------
    std::uint64_t maxCycles = 50'000'000; ///< Watchdog for runaway sims.

    /**
     * Event-horizon fast-forward: when no component can make progress,
     * jump the clock to the earliest next event instead of ticking empty
     * cycles. Pure simulator-speed optimisation — every statistic is
     * bit-identical with it on or off.
     */
    bool fastForwardEnabled = true;

    /**
     * Issue-path ready sets: maintain the per-scheduler set of
     * hazard-free, barrier-free warps of Active CTAs incrementally at
     * each warp state transition, so the per-cycle issue sweep visits
     * only ready warps instead of every resident warp. Pure
     * simulator-speed optimisation — every statistic is bit-identical
     * with it on or off.
     */
    bool incrementalReadySets = true;

    /**
     * Cross-check the incremental ready sets against a full warp scan
     * every busy cycle (expensive; always on in assert-enabled builds,
     * this flag forces it in release builds — used by the ready-set
     * property tests).
     */
    bool readySetOracle = false;

    /**
     * Cross-check the central EventHorizon on every fast-forward jump:
     * recompute each component's next event without caches and assert
     * none precedes the horizon (always on in assert-enabled builds;
     * this flag forces it in release builds — used by the lifecycle
     * property tests).
     */
    bool horizonOracle = false;

    /**
     * Cross-check every sharded-simulation epoch (Gpu::setSimThreads
     * with more than one thread) against a sequential re-execution:
     * snapshot the machine before the epoch, re-run the same cycle
     * window single-threaded, and diff every component's save() image
     * to localize any divergence (very expensive — test use only).
     */
    bool shardOracle = false;

    /**
     * Execute VASM through the pre-decoded micro-op stream (one direct
     * handler call per issue, isa/microcode.hh) instead of the legacy
     * per-lane opcode switch. Bit-identical results either way — the
     * flag exists so the legacy interpreter stays exercisable as the
     * micro path's reference.
     */
    bool microcodeEnabled = true;

    /**
     * Cross-check every micro-op execution against the legacy
     * interpreter run on copy-on-write overlays: ExecResult, written
     * registers, shared-memory and global-memory bytes must all match
     * (always on in assert-enabled builds; this flag forces it in
     * release builds — used by the microcode property tests). Ignored
     * when microcodeEnabled is off.
     */
    bool microOracle = false;

    /** GTX480-class baseline used throughout the evaluation. */
    static GpuConfig fermiLike();

    /** Larger, Kepler-class variant (64 warps / 16 CTA slots per SM). */
    static GpuConfig keplerLike();

    /** Single-SM miniature for unit tests: tiny but structurally equal. */
    static GpuConfig testMini();

    /** Effective per-SM warp slots after schedLimitMultiplier. */
    std::uint32_t effMaxWarpsPerSm() const
    { return maxWarpsPerSm * schedLimitMultiplier; }

    /** Effective per-SM CTA slots after schedLimitMultiplier. */
    std::uint32_t effMaxCtasPerSm() const
    { return maxCtasPerSm * schedLimitMultiplier; }

    /** Effective per-SM thread slots after schedLimitMultiplier. */
    std::uint32_t effMaxThreadsPerSm() const
    { return maxThreadsPerSm * schedLimitMultiplier; }

    /** Throws FatalError when parameters are inconsistent. */
    void validate() const;

    /** Pretty-print as a two-column table (used by TAB-1). */
    void print(std::ostream &os) const;

    /**
     * Memberwise equality — the parallel runner reuses a worker's Gpu
     * arena across runs only when the configs compare equal, and
     * checkpoint restore requires the restoring Gpu's config to match
     * the checkpointed one.
     */
    bool operator==(const GpuConfig &) const = default;
};

static_assert(std::is_trivially_copyable_v<GpuConfig>,
              "GpuConfig must stay a plain value type (checkpoints "
              "serialize it field by field — see gpu.cc)");

} // namespace vtsim

#endif // VTSIM_CONFIG_GPU_CONFIG_HH
