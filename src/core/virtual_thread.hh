/**
 * @file
 * The Virtual Thread (VT) architecture of Yoon et al., ISCA 2016 — the
 * paper's primary contribution.
 *
 * One VirtualThreadManager per SM owns the CTA residency state machine:
 *
 *   admit -> Active ----------------------------> finished
 *              | all warps long-latency stalled
 *              v
 *        SwappingOut -(swapOutLatency)-> Inactive
 *                                           | chosen for swap-in
 *                                           v
 *                                       SwappingIn -(swapInLatency)-> Active
 *
 * CTAs are admitted up to the *capacity* limit (register file + shared
 * memory), ignoring the scheduling limit; only the *active* subset
 * respects the scheduling limit (warp slots, CTA slots, thread slots).
 * Because inactive CTAs keep their registers and shared memory resident,
 * a swap moves only the small scheduling state, whose cost is the
 * configured swap latencies.
 *
 * With vtEnabled == false the same class degrades to the baseline
 * machine: admission respects the scheduling limit and every resident
 * CTA is Active.
 */

#ifndef VTSIM_CORE_VIRTUAL_THREAD_HH
#define VTSIM_CORE_VIRTUAL_THREAD_HH

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hh"
#include "config/gpu_config.hh"
#include "sim/serializer.hh"
#include "stats/stats.hh"

namespace vtsim::telemetry {
class TraceJsonWriter;
}

namespace vtsim {

/**
 * What the VT manager needs to observe about CTAs; implemented by SmCore
 * (and by mocks in unit tests).
 */
class VtCtaQuery
{
  public:
    virtual ~VtCtaQuery() = default;

    /** True when no live warp of the CTA could issue this cycle for
     *  warp-local reasons (dependences, barrier), ignoring per-cycle
     *  structural ports. */
    virtual bool ctaFullyStalled(VirtualCtaId id) const = 0;

    /** True when at least one warp of the CTA is blocked waiting on an
     *  off-chip (long-latency) memory dependence. */
    virtual bool ctaAnyWarpLongStalled(VirtualCtaId id) const = 0;

    /** Outstanding off-chip transactions across the CTA's warps. */
    virtual std::uint32_t ctaPendingOffChip(VirtualCtaId id) const = 0;

    /**
     * The CTA's issuability (isIssuable()) just flipped: it entered
     * (@p issuable) or left (!@p issuable) the Active state. Fired
     * *after* the state change, so isIssuable(@p id) already reports the
     * new value. SmCore uses this to publish/retract the CTA's warps in
     * its incremental ready sets; not every observer needs it, hence the
     * default no-op. A finished CTA fires no flip — the owner retires it
     * through onCtaFinished and has retired all its warps already.
     */
    virtual void onCtaIssuableChanged(VirtualCtaId id, bool issuable)
    {
        (void)id;
        (void)issuable;
    }
};

/** Residency state of one virtual CTA. */
enum class CtaState : std::uint8_t
{
    Active,      ///< Occupies scheduling structures; warps may issue.
    SwappingOut, ///< Scheduling state being saved; frozen.
    Inactive,    ///< Resident in RF/shared memory only; frozen.
    SwappingIn,  ///< Scheduling state being restored; frozen.
};

std::string toString(CtaState state);

/** Per-kernel CTA resource footprint, in the SM's allocation units. */
struct CtaFootprint
{
    std::uint32_t warpsPerCta = 0;
    std::uint32_t threadsPerCta = 0;
    std::uint32_t regsPerCta = 0;    ///< After warp-granularity rounding.
    std::uint32_t sharedPerCta = 0;  ///< After allocation rounding.
};

class VirtualThreadManager
{
  public:
    VirtualThreadManager(const GpuConfig &config, VtCtaQuery &query,
                         SmId sm_id);

    /** Set the footprint all CTAs of the running kernel share
     *  (solo launch: grid 0). */
    void configureKernel(const CtaFootprint &footprint)
    { configureGrid(0, footprint); }

    /** Set the per-CTA footprint of one co-resident grid. Call for
     *  every grid of a concurrent launch before any admission. */
    void configureGrid(GridId grid, const CtaFootprint &footprint);

    /** Can one more CTA of @p grid be admitted (VT: capacity limit
     *  only; baseline: scheduling and capacity limits)? */
    bool canAdmit(GridId grid = 0) const;

    /** A new CTA arrived from the dispatcher. Freshly launched CTAs
     *  activate immediately when an active slot is free (CTA launch
     *  initialisation is free in baseline and VT alike). */
    void onAdmit(VirtualCtaId id, Cycle now, GridId grid = 0);

    /** The CTA retired all its warps. */
    void onCtaFinished(VirtualCtaId id, Cycle now);

    /** Advance the state machine one cycle. */
    void tick(Cycle now);

    /**
     * Earliest cycle >= @p now at which tick() might change state given
     * no external event (memory completion, issue, admission) happens
     * first: a Swapping* transition completing, or a stalled Active
     * CTA's streak first reaching the swap threshold. neverCycle when
     * only external events can change the machine.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account @p n ticked-but-eventless cycles in one step: per-cycle
     * residency samples, and stall-streak growth of stalled Active
     * CTAs. Only valid over a window where every input the state
     * machine reads is constant and no transition or threshold
     * crossing occurs (i.e. nextEventCycle() lies beyond the window).
     */
    void fastForwardIdle(std::uint64_t n);

    /** Warps of @p id may issue only when it is Active.
     *  Inline: this sits on the per-warp issue fast path. */
    bool isIssuable(VirtualCtaId id) const
    {
        return id < ctas_.size() && ctas_[id].resident &&
               ctas_[id].state == CtaState::Active;
    }

    /**
     * Externally imposed cap on active CTAs (CTA throttling). Applied
     * lazily: already-active CTAs are unaffected; activations above the
     * cap are deferred.
     */
    void setActiveCap(std::uint32_t cap) { dynamicCap_ = cap; }
    std::uint32_t activeCap() const { return dynamicCap_; }

    /**
     * Block (or unblock) activations of @p grid's CTAs: blocked grids
     * are skipped by swap-in / free-slot-fill candidate selection, so
     * their resident CTAs park Inactive. Already-active CTAs are not
     * touched — pair with forceSwapOut to vacate them. Used by the
     * preempt sharing policy at its decision boundaries.
     */
    void setGridActivationBlocked(GridId grid, bool blocked)
    { activationBlocked_[grid] = blocked ? 1 : 0; }
    bool gridActivationBlocked(GridId grid) const
    { return activationBlocked_[grid] != 0; }

    /**
     * Preempt one Active CTA: swap it out now regardless of its stall
     * state (Pai et al.-style preemptive thread-block scheduling). The
     * freed active slot is NOT immediately refilled — the caller decides
     * who runs next (blocked grids would otherwise race back in).
     * Requires vtEnabled (the swap machinery completes the transition).
     */
    void forceSwapOut(VirtualCtaId id, Cycle now);

    CtaState state(VirtualCtaId id) const;
    /** Grid the resident CTA in slot @p id belongs to. */
    GridId gridOf(VirtualCtaId id) const;
    std::uint32_t residentCtas() const { return residentCount_; }
    std::uint32_t activeCtas() const { return activeCtas_; }

    // --- Capacity bookkeeping (for FIG-2 utilisation) ---------------------
    std::uint32_t regsInUse() const { return regsInUse_; }
    std::uint32_t sharedInUse() const { return sharedInUse_; }
    std::uint32_t warpsActive() const { return warpsActive_; }
    std::uint32_t threadsActive() const { return threadsActive_; }

    // --- Stats -------------------------------------------------------------
    std::uint64_t swapOuts() const { return swapOuts_.value(); }
    std::uint64_t swapIns() const { return swapIns_.value(); }
    std::uint64_t gridSwapOuts(GridId g) const
    { return gridSwapOuts_.at(g).value(); }
    std::uint64_t gridSwapIns(GridId g) const
    { return gridSwapIns_.at(g).value(); }
    StatGroup &stats() { return stats_; }

    /**
     * Route residency transitions to a per-Gpu Perfetto writer (null
     * disables). Each CTA slot becomes a trace "thread" (pid = SM id,
     * tid = slot) carrying back-to-back duration events named after the
     * residency state — admit/finish are instant markers.
     */
    void setTraceJson(telemetry::TraceJsonWriter *writer)
    { traceJson_ = writer; }

    // Checkpoint plumbing (driven by the owning SmCore).
    void reset();
    void save(Serializer &ser) const;
    void restore(Deserializer &des);

  private:
    struct CtaRec
    {
        bool resident = false;   ///< Slot holds a live CTA.
        CtaState state = CtaState::Active;
        Cycle transitionAt = 0;  ///< When the current Swapping* finishes.
        std::uint64_t age = 0;   ///< Admission order.
        std::uint32_t stalledFor = 0; ///< Consecutive fully-stalled cycles.
        bool everSwapped = false;
        /**
         * The streak condition / swap trigger as tick() last evaluated
         * them. nextEventCycle() and fastForwardIdle() run either in the
         * same cycle as that tick or across a window where the inputs
         * are constant (external events can only clear a stall, which
         * makes a horizon built from these caches conservative), so they
         * read the caches instead of re-scanning the CTA's warps.
         */
        bool stalledNow = false;
        bool triggeredNow = false;
        /** Owning grid (concurrent launches; solo CTAs are grid 0). */
        GridId grid = 0;
    };

    /** Would one more Active CTA with footprint @p fp fit the
     *  scheduling limit right now? */
    bool activeSlotFreeFor(const CtaFootprint &fp) const;
    /** Solo-path shorthand: grid 0's footprint. */
    bool activeSlotFree() const { return activeSlotFreeFor(fps_[0]); }
    void activate(VirtualCtaId id, Cycle now);
    void releaseActiveSlot(const CtaFootprint &fp);
    /** Best inactive CTA to bring in, or invalidId. When
     *  @p require_ready is set (swap decisions under ReadyFirst), only a
     *  CTA with no outstanding data qualifies. */
    VirtualCtaId pickSwapIn(bool require_ready) const;

    /** Close slot @p id's open residency span and open @p state's. */
    void traceStateChange(VirtualCtaId id, CtaState state, Cycle now);

    const GpuConfig &config_;
    VtCtaQuery &query_;
    SmId smId_;
    telemetry::TraceJsonWriter *traceJson_ = nullptr;
    /** Per-grid CTA footprints (solo launches configure only slot 0). */
    std::array<CtaFootprint, maxGrids> fps_{};
    /** Grids whose activations are blocked (preempt policy). */
    std::array<std::uint8_t, maxGrids> activationBlocked_{};

    /** Slot-indexed (SmCore hands out dense, reused slot ids); iterating
     *  in index order matches the admission-map order it replaces. */
    std::vector<CtaRec> ctas_;
    std::uint32_t residentCount_ = 0;
    std::uint64_t nextAge_ = 0;
    std::uint32_t dynamicCap_ =
        std::numeric_limits<std::uint32_t>::max();

    std::uint32_t activeCtas_ = 0;
    std::uint32_t warpsActive_ = 0;
    std::uint32_t threadsActive_ = 0;
    std::uint32_t regsInUse_ = 0;
    std::uint32_t sharedInUse_ = 0;

    StatGroup stats_;
    Counter swapOuts_;
    Counter swapIns_;
    std::array<Counter, maxGrids> gridSwapOuts_;
    std::array<Counter, maxGrids> gridSwapIns_;
    Counter freshActivations_;
    Counter swapInNotReady_; ///< Swap-ins of CTAs still awaiting data.
    ScalarStat residentSamples_;
    ScalarStat activeSamples_;
    /** Victim stall-streak length at each swap-out decision — the
     *  interval sampler's swap-latency series (p50/p95 per interval).
     *  Event-driven, so fast-forward windows cannot split a sample. */
    Histogram swapStallStreak_{32, 8.0};
};

} // namespace vtsim

#endif // VTSIM_CORE_VIRTUAL_THREAD_HH
