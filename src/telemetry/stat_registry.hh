/**
 * @file
 * Hierarchical statistics registry: a flat, ordered view over every
 * StatGroup a Gpu's components own, keyed by dotted paths such as
 * "sm0.issue.bubbles.mem" or "dram_1.row_hits".
 *
 * Components keep owning their Counter/Histogram members and their
 * StatGroup exactly as before; the registry only stores pointers, so it
 * must not outlive the components (both live inside the same Gpu).
 * Registration order is the Gpu's component order, and entries within a
 * group follow the group's sorted map order, so probe indices are
 * stable for a given configuration — StatsSnapshot and the interval
 * sampler rely on that to diff flat value vectors.
 */

#ifndef VTSIM_TELEMETRY_STAT_REGISTRY_HH
#define VTSIM_TELEMETRY_STAT_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats.hh"

namespace vtsim::telemetry {

/**
 * The KernelStats field a scalar probe contributes to, if any. The
 * KernelStats assembly in Gpu::launch walks the registry and sums
 * probe deltas into the tagged field — replacing the hand-copied
 * per-component getters StatsSnapshot used to carry.
 */
enum class KernelStatRole : std::uint8_t
{
    None = 0,
    WarpInstructions,
    ThreadInstructions,
    CtasCompleted,
    SwapOuts,
    SwapIns,
    L1Hits,
    L1Misses,
    L2Hits,
    L2Misses,
    DramRowHits,
    DramRowMisses,
    DramBytes,
    StallIssued,
    StallMem,
    StallShort,
    StallBarrier,
    StallSwap,
    StallIdle,
};

class StatRegistry
{
  public:
    /** A monotonic uint64 stat (Counter or raw value) at a full path. */
    struct ScalarProbe
    {
        std::string path;
        const Counter *counter = nullptr;
        const std::uint64_t *value = nullptr;
        KernelStatRole role = KernelStatRole::None;
        /** Grid this probe attributes to: -1 for the aggregate counters
         *  (the solo-run stats), 0..maxGrids-1 for the per-grid split of
         *  concurrent launches. StatsSnapshot::delta sums only aggregate
         *  probes; deltaGrid sums only the matching grid's. */
        std::int32_t grid = -1;

        std::uint64_t read() const
        { return counter ? counter->value() : *value; }
    };

    /** A ScalarStat (count/sum running distribution) at a full path. */
    struct DistProbe
    {
        std::string path;
        const ScalarStat *stat = nullptr;
    };

    /** A Histogram at a full path. */
    struct HistProbe
    {
        std::string path;
        const Histogram *stat = nullptr;
    };

    /**
     * Flatten @p group's entries into probes under "<group>.<stat>"
     * paths. Call only after the component has finished registering its
     * stats with the group — later additions are not seen.
     */
    void addGroup(const StatGroup &group);

    /** Tag the scalar probe at @p path with @p role; fatal if absent.
     *  @p grid attributes the probe to one grid of a concurrent launch
     *  (-1 = aggregate; see ScalarProbe::grid). */
    void setRole(const std::string &path, KernelStatRole role,
                 std::int32_t grid = -1);

    const std::vector<ScalarProbe> &scalars() const { return scalars_; }
    const std::vector<DistProbe> &dists() const { return dists_; }
    const std::vector<HistProbe> &hists() const { return hists_; }

    /** The registered groups, in registration order (for dumping). */
    const std::vector<const StatGroup *> &groups() const { return groups_; }

    /** Read every scalar probe, in order, into @p out (resized). */
    void collectScalars(std::vector<std::uint64_t> &out) const;

  private:
    std::vector<const StatGroup *> groups_;
    std::vector<ScalarProbe> scalars_;
    std::vector<DistProbe> dists_;
    std::vector<HistProbe> hists_;
};

} // namespace vtsim::telemetry

#endif // VTSIM_TELEMETRY_STAT_REGISTRY_HH
