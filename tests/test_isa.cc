/**
 * @file
 * Unit tests for the VASM ISA: opcode tables, instruction predicates,
 * kernel container verification, and the KernelBuilder.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "isa/instruction.hh"
#include "isa/kernel.hh"
#include "isa/kernel_builder.hh"

namespace vtsim {
namespace {

TEST(Opcode, NamesRoundTrip)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
        const auto op = static_cast<Opcode>(i);
        const std::string name = toString(op);
        EXPECT_FALSE(name.empty());
        EXPECT_EQ(opcodeFromString(name), op) << name;
    }
    EXPECT_EQ(opcodeFromString("bogus"), Opcode::NumOpcodes);
}

TEST(Opcode, CmpNamesRoundTrip)
{
    for (CmpOp cmp : {CmpOp::EQ, CmpOp::NE, CmpOp::LT, CmpOp::LE,
                      CmpOp::GT, CmpOp::GE}) {
        CmpOp parsed;
        ASSERT_TRUE(cmpFromString(toString(cmp), parsed));
        EXPECT_EQ(parsed, cmp);
    }
    CmpOp dummy;
    EXPECT_FALSE(cmpFromString("zz", dummy));
}

TEST(Opcode, SregNamesRoundTrip)
{
    for (SpecialReg sreg : {SpecialReg::TidX, SpecialReg::TidY,
                            SpecialReg::NTidX, SpecialReg::CtaIdX,
                            SpecialReg::NCtaIdZ, SpecialReg::LaneId,
                            SpecialReg::WarpIdInCta}) {
        SpecialReg parsed;
        ASSERT_TRUE(sregFromString(toString(sreg), parsed));
        EXPECT_EQ(parsed, sreg);
    }
    SpecialReg dummy;
    EXPECT_FALSE(sregFromString("tid.w", dummy));
}

TEST(Instruction, FuncUnitClassification)
{
    Instruction i;
    i.op = Opcode::IADD;
    EXPECT_EQ(i.funcUnit(), FuncUnit::Alu);
    i.op = Opcode::FSQRT;
    EXPECT_EQ(i.funcUnit(), FuncUnit::Sfu);
    i.op = Opcode::IDIV;
    EXPECT_EQ(i.funcUnit(), FuncUnit::Sfu);
    i.op = Opcode::LDG;
    EXPECT_EQ(i.funcUnit(), FuncUnit::Mem);
    i.op = Opcode::STS;
    EXPECT_EQ(i.funcUnit(), FuncUnit::Mem);
    i.op = Opcode::BRA;
    EXPECT_EQ(i.funcUnit(), FuncUnit::Control);
    i.op = Opcode::BAR;
    EXPECT_EQ(i.funcUnit(), FuncUnit::Control);
    i.op = Opcode::EXIT;
    EXPECT_EQ(i.funcUnit(), FuncUnit::Control);
}

TEST(Instruction, MemPredicates)
{
    Instruction i;
    i.op = Opcode::LDG;
    EXPECT_TRUE(i.isLoad());
    EXPECT_TRUE(i.isGlobalMem());
    EXPECT_FALSE(i.isSharedMem());
    i.op = Opcode::STS;
    EXPECT_TRUE(i.isStore());
    EXPECT_TRUE(i.isSharedMem());
    i.op = Opcode::ATOMG_ADD;
    EXPECT_TRUE(i.isLoad());
    EXPECT_TRUE(i.isGlobalMem());
    i.op = Opcode::IADD;
    EXPECT_FALSE(i.isMem());
}

TEST(Instruction, NumSrcs)
{
    Instruction i;
    EXPECT_EQ(i.numSrcs(), 0u);
    i.src[0] = 1;
    i.src[2] = 3;
    EXPECT_EQ(i.numSrcs(), 2u);
}

TEST(KernelBuilder, SimpleKernel)
{
    KernelBuilder kb("k");
    kb.movi(0, 5).alui(Opcode::IADD, 1, 0, 2).exit();
    const Kernel k = kb.build();
    EXPECT_EQ(k.name(), "k");
    EXPECT_EQ(k.size(), 3u);
    EXPECT_EQ(k.regsPerThread(), 2u); // r0, r1
    EXPECT_EQ(k.at(0).op, Opcode::MOVI);
    EXPECT_EQ(k.at(1).op, Opcode::IADD);
    EXPECT_TRUE(k.at(1).useImm);
    EXPECT_TRUE(k.at(2).isExit());
}

TEST(KernelBuilder, MinRegsPadsPressure)
{
    KernelBuilder kb("k");
    kb.minRegs(40).movi(0, 1).exit();
    EXPECT_EQ(kb.build().regsPerThread(), 40u);
}

TEST(KernelBuilder, SharedBytes)
{
    KernelBuilder kb("k");
    kb.shared(4096).movi(0, 1).exit();
    EXPECT_EQ(kb.build().sharedBytesPerCta(), 4096u);
}

TEST(KernelBuilder, ForwardBranchReconvergesAtTarget)
{
    KernelBuilder kb("k");
    kb.movi(0, 1)
      .bra(0, "end")
      .movi(1, 2)
      .label("end")
      .exit();
    const Kernel k = kb.build();
    EXPECT_EQ(k.at(1).branchTarget, 3u);
    EXPECT_EQ(k.at(1).reconvergePc, 3u);
}

TEST(KernelBuilder, BackwardBranchReconvergesAtFallThrough)
{
    KernelBuilder kb("k");
    kb.label("top")
      .alui(Opcode::IADD, 0, 0, 1)
      .bra(0, "top")
      .exit();
    const Kernel k = kb.build();
    EXPECT_EQ(k.at(1).branchTarget, 0u);
    EXPECT_EQ(k.at(1).reconvergePc, 2u);
}

TEST(KernelBuilder, ExplicitJoinLabel)
{
    KernelBuilder kb("k");
    kb.movi(0, 1)
      .bra(0, "else_part", "join_pt")
      .movi(1, 2)
      .jmp("join_pt")
      .label("else_part")
      .movi(1, 3)
      .label("join_pt")
      .exit();
    const Kernel k = kb.build();
    EXPECT_EQ(k.at(1).branchTarget, 4u);
    EXPECT_EQ(k.at(1).reconvergePc, 5u);
}

TEST(KernelBuilder, UndefinedLabelIsFatal)
{
    KernelBuilder kb("k");
    kb.jmp("nowhere").exit();
    EXPECT_THROW(kb.build(), FatalError);
}

TEST(KernelBuilder, DuplicateLabelIsFatal)
{
    KernelBuilder kb("k");
    kb.label("a").movi(0, 1);
    EXPECT_THROW(kb.label("a"), FatalError);
}

TEST(KernelBuilder, TrailingLabelIsFatal)
{
    KernelBuilder kb("k");
    kb.exit().label("tail");
    EXPECT_THROW(kb.build(), FatalError);
}

TEST(KernelBuilder, LabelAtPcResolvable)
{
    KernelBuilder kb("k");
    kb.label("start").movi(0, 1).exit();
    const Kernel k = kb.build();
    EXPECT_EQ(k.labelAt(0), "start");
    EXPECT_EQ(k.labelAt(1), "");
}

TEST(Kernel, VerifyRejectsMissingExit)
{
    std::vector<Instruction> instrs(1);
    instrs[0].op = Opcode::NOP;
    EXPECT_THROW(Kernel("k", std::move(instrs), 1, 0), FatalError);
}

TEST(Kernel, VerifyRejectsEmpty)
{
    EXPECT_THROW(Kernel("k", {}, 1, 0), FatalError);
}

TEST(Kernel, VerifyRejectsOutOfRangeRegister)
{
    std::vector<Instruction> instrs(2);
    instrs[0].op = Opcode::MOV;
    instrs[0].dst = 9; // only 2 regs declared
    instrs[0].src[0] = 0;
    instrs[1].op = Opcode::EXIT;
    EXPECT_THROW(Kernel("k", std::move(instrs), 2, 0), FatalError);
}

TEST(Kernel, VerifyRejectsBadBranchTarget)
{
    std::vector<Instruction> instrs(2);
    instrs[0].op = Opcode::BRA;
    instrs[0].branchTarget = 50;
    instrs[0].reconvergePc = 1;
    instrs[1].op = Opcode::EXIT;
    EXPECT_THROW(Kernel("k", std::move(instrs), 1, 0), FatalError);
}

TEST(Kernel, VerifyRejectsBranchWithoutReconvergence)
{
    std::vector<Instruction> instrs(2);
    instrs[0].op = Opcode::BRA;
    instrs[0].branchTarget = 1;
    instrs[1].op = Opcode::EXIT;
    EXPECT_THROW(Kernel("k", std::move(instrs), 1, 0), FatalError);
}

TEST(Kernel, VerifyRejectsFallOffEnd)
{
    std::vector<Instruction> instrs(2);
    instrs[0].op = Opcode::EXIT;
    instrs[1].op = Opcode::NOP;
    EXPECT_THROW(Kernel("k", std::move(instrs), 1, 0), FatalError);
}

TEST(LaunchParams, DerivedQuantities)
{
    LaunchParams lp;
    lp.grid = Dim3(4, 2);
    lp.cta = Dim3(48);
    EXPECT_EQ(lp.threadsPerCta(), 48u);
    EXPECT_EQ(lp.warpsPerCta(), 2u); // 48 threads = 1.5 warps -> 2
    EXPECT_EQ(lp.numCtas(), 8u);
}

} // namespace
} // namespace vtsim
