file(REMOVE_RECURSE
  "../bench/fig5_swap_latency"
  "../bench/fig5_swap_latency.pdb"
  "CMakeFiles/fig5_swap_latency.dir/fig5_swap_latency.cc.o"
  "CMakeFiles/fig5_swap_latency.dir/fig5_swap_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_swap_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
