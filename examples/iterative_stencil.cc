/**
 * @file
 * Iterative (multi-launch) usage: a Jacobi-style smoothing stencil run
 * for K time steps, ping-ponging two buffers across launches on one Gpu
 * — the pattern Rodinia's hotspot/srad-class applications use. Shows
 * that caches stay warm across launches, per-launch statistics are
 * deltas, and Virtual Thread keeps paying off every step.
 */

#include <cstdio>
#include <vector>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "isa/assembler.hh"

namespace {

// out[i] = (in[i-1] + 2*in[i] + in[i+1]) / 4 over integers (exactly
// checkable on the host); boundaries copied through.
const char *kSmoothSource = R"(
.kernel smooth
    ldp r0, 0            # in
    ldp r1, 1            # out
    ldp r2, 2            # n
    s2r r3, ctaid.x
    s2r r4, ntid.x
    s2r r5, tid.x
    imad r6, r3, r4, r5  # i
    isetp.ge r7, r6, r2
    bra r7, done
    shl r8, r6, 2
    iadd r9, r8, r0
    ldg r10, [r9]        # in[i]
    # interior?
    isetp.eq r11, r6, 0
    isub r12, r2, 1
    isetp.eq r13, r6, r12
    or r11, r11, r13
    bra r11, copy, join=store
    ldg r14, [r9-4]
    ldg r15, [r9+4]
    iadd r16, r10, r10
    iadd r16, r16, r14
    iadd r16, r16, r15
    shr r10, r16, 2
    jmp store
copy:
    nop
store:
    iadd r17, r8, r1
    stg [r17], r10
done:
    exit
)";

} // namespace

int
main()
try {
    using namespace vtsim;

    const std::uint32_t n = 1 << 15;
    const std::uint32_t steps = 8;

    for (bool vt_on : {false, true}) {
        GpuConfig cfg = GpuConfig::fermiLike();
        cfg.vtEnabled = vt_on;
        Gpu gpu(cfg);
        const Kernel kernel = assemble(kSmoothSource);

        Addr buf_a = gpu.memory().alloc(n * 4);
        Addr buf_b = gpu.memory().alloc(n * 4);
        std::vector<std::uint32_t> host(n);
        for (std::uint32_t i = 0; i < n; ++i)
            host[i] = (i * 2654435761u) % 1000;
        gpu.memory().writeWords(buf_a, host);

        Cycle total_cycles = 0;
        std::uint64_t total_swaps = 0;
        for (std::uint32_t step = 0; step < steps; ++step) {
            LaunchParams lp;
            lp.cta = Dim3(128);
            lp.grid = Dim3(n / 128);
            lp.params = {std::uint32_t(buf_a), std::uint32_t(buf_b), n};
            const KernelStats stats = gpu.launch(kernel, lp);
            total_cycles += stats.cycles;
            total_swaps += stats.swapOuts;
            std::swap(buf_a, buf_b);

            // Host reference for the same step.
            std::vector<std::uint32_t> next(host);
            for (std::uint32_t i = 1; i + 1 < n; ++i)
                next[i] = (host[i - 1] + 2 * host[i] + host[i + 1]) / 4;
            host = next;
        }

        // buf_a holds the final result after the last swap.
        const auto device = gpu.memory().readWords(buf_a, n);
        for (std::uint32_t i = 0; i < n; ++i) {
            if (device[i] != host[i])
                VTSIM_FATAL("mismatch at ", i, " after ", steps,
                            " steps: ", device[i], " != ", host[i]);
        }
        std::printf("%-14s %u smoothing steps over %u points: "
                    "%llu total cycles (%llu swaps) — VERIFIED\n",
                    vt_on ? "virtual-thread" : "baseline", steps, n,
                    (unsigned long long)total_cycles,
                    (unsigned long long)total_swaps);
    }
    return 0;
} catch (const vtsim::FatalError &e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
}
