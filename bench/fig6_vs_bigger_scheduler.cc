/**
 * @file
 * FIG-6: Virtual Thread versus idealised enlarged scheduling structures.
 * The x2/x4 machines multiply warp slots, CTA slots and thread slots for
 * free (no extra latency, no virtualisation) — an upper bound on what
 * any scheme that exposes more resident CTAs could achieve. VT should
 * capture most of the x2 machine's gain at a fraction of the hardware.
 */

#include <cstdio>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-6", "VT vs. idealised bigger scheduling structures");
    const GpuConfig base = GpuConfig::fermiLike();
    GpuConfig vt_cfg = base;
    vt_cfg.vtEnabled = true;
    GpuConfig x2 = base;
    x2.schedLimitMultiplier = 2;
    GpuConfig x4 = base;
    x4.schedLimitMultiplier = 4;

    const auto names = benchmarkNames();
    std::vector<RunSpec> specs;
    for (const auto &name : names) {
        specs.push_back({name, base, benchScale});
        specs.push_back({name, vt_cfg, benchScale});
        specs.push_back({name, x2, benchScale});
        specs.push_back({name, x4, benchScale});
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s %8s %8s %8s %10s\n", "benchmark", "vt",
                "ideal-x2", "ideal-x4", "vt/ideal-x2");
    std::vector<double> vt_ratios, x2_ratios, x4_ratios;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const RunResult &ref = results[4 * i];
        const RunResult &vt = results[4 * i + 1];
        const RunResult &r2 = results[4 * i + 2];
        const RunResult &r4 = results[4 * i + 3];

        const double sv = double(ref.stats.cycles) / vt.stats.cycles;
        const double s2 = double(ref.stats.cycles) / r2.stats.cycles;
        const double s4 = double(ref.stats.cycles) / r4.stats.cycles;
        vt_ratios.push_back(sv);
        x2_ratios.push_back(s2);
        x4_ratios.push_back(s4);
        std::printf("%-14s %7.2fx %7.2fx %7.2fx %9.0f%%\n",
                    names[i].c_str(), sv, s2, s4,
                    s2 > 1.0 ? 100.0 * (sv - 1.0) / (s2 - 1.0) : 100.0);
    }
    std::printf("%-14s %7.2fx %7.2fx %7.2fx\n", "GMEAN",
                geomean(vt_ratios), geomean(x2_ratios),
                geomean(x4_ratios));
    std::printf("(VT's default budget is 2x the CTA slots: ideal-x2 is "
                "its hardware-free upper bound)\n");
    return 0;
}
