#include "sm/simt_stack.hh"

#include <algorithm>

#include "common/log.hh"

namespace vtsim {

void
SimtStack::reset(ActiveMask initial, Pc entry_pc)
{
    stack_.clear();
    if (initial.any())
        stack_.push_back({entry_pc, invalidPc, initial});
    maxDepth_ = stack_.size();
}

void
SimtStack::popReconverged()
{
    while (!stack_.empty()) {
        const Entry &top = stack_.back();
        if (top.reconvergePc == invalidPc || top.pc != top.reconvergePc)
            break;
        stack_.pop_back();
        VTSIM_ASSERT(!stack_.empty(),
                     "bottom frame must never carry a reconvergence pc");
    }
}

void
SimtStack::advance()
{
    VTSIM_ASSERT(!stack_.empty(), "advance() on finished warp");
    ++stack_.back().pc;
    popReconverged();
}

void
SimtStack::branch(const Instruction &inst, Pc branch_pc, ActiveMask taken)
{
    VTSIM_ASSERT(!stack_.empty(), "branch() on finished warp");
    VTSIM_ASSERT(inst.isBranch(), "branch() with non-branch instruction");
    Entry &top = stack_.back();
    VTSIM_ASSERT(top.pc == branch_pc, "branch pc mismatch");
    const ActiveMask active = top.mask;
    VTSIM_ASSERT((taken & ~active).empty(),
                 "taken lanes outside active mask");

    const ActiveMask not_taken = active.minus(taken);
    if (not_taken.empty()) {
        // Uniformly taken.
        top.pc = inst.branchTarget;
        popReconverged();
        return;
    }
    if (taken.empty()) {
        // Uniformly not taken.
        top.pc = branch_pc + 1;
        popReconverged();
        return;
    }

    // Divergence: current frame becomes the reconvergence frame; the two
    // sides execute in turn (taken side first, being pushed last).
    const Pc rpc = inst.reconvergePc;
    top.pc = rpc;
    stack_.push_back({branch_pc + 1, rpc, not_taken});
    stack_.push_back({inst.branchTarget, rpc, taken});
    maxDepth_ = std::max<std::uint32_t>(maxDepth_, stack_.size());
    popReconverged(); // Handles degenerate branches targeting their rpc.
}

void
SimtStack::exitActiveLanes()
{
    VTSIM_ASSERT(!stack_.empty(), "exitActiveLanes() on finished warp");
    const ActiveMask exiting = stack_.back().mask;
    for (Entry &entry : stack_)
        entry.mask &= ~exiting;
    while (!stack_.empty() && stack_.back().mask.empty())
        stack_.pop_back();
    // Non-top frames with empty masks would be a stack-discipline bug:
    // lanes lower in the stack are supersets of those above.
    for (const Entry &entry : stack_)
        VTSIM_ASSERT(entry.mask.any(), "empty interior SIMT frame");
    popReconverged();
}

} // namespace vtsim
