/**
 * @file
 * EXT-2 (extension study): does Virtual Thread still pay off on a
 * bigger, Kepler-class baseline (64 warps / 16 CTA slots / 64K
 * registers per SM)? The scheduling limit is twice as generous, so
 * gains should shrink but persist on the low-occupancy kernels — the
 * paper's argument that scheduling limits keep lagging capacity.
 */

#include <cstdio>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("EXT-2", "VT on a Kepler-class machine");
    GpuConfig base = GpuConfig::keplerLike();
    GpuConfig vt = base;
    vt.vtEnabled = true;
    vt.vtMaxVirtualCtasPerSm = 32; // 2x the 16 CTA slots

    const auto names = benchmarkNames();
    std::vector<RunSpec> specs;
    for (const auto &name : names) {
        specs.push_back({name, base, benchScale});
        specs.push_back({name, vt, benchScale});
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s %10s %10s %8s %8s\n", "benchmark", "base-IPC",
                "vt-IPC", "speedup", "swaps");
    std::vector<double> ratios;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const RunResult &b = results[2 * i];
        const RunResult &v = results[2 * i + 1];
        const double ratio = double(b.stats.cycles) / v.stats.cycles;
        ratios.push_back(ratio);
        std::printf("%-14s %10.3f %10.3f %7.2fx %8llu\n",
                    names[i].c_str(), b.stats.ipc, v.stats.ipc, ratio,
                    (unsigned long long)v.stats.swapOuts);
    }
    std::printf("%-14s %10s %10s %7.2fx\n", "GMEAN", "", "",
                geomean(ratios));
    std::printf("(compare FIG-3: the Fermi-class machine)\n");
    return 0;
}
