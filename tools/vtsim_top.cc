/**
 * @file
 * vtsim-top — live view of a running vtsimd: polls the "status" and
 * "metrics" ops and (optionally) tails the vtsim-evlog-v1 event log,
 * rendering a queue/worker/job table plus the latest lifecycle events.
 *
 * Usage:
 *   vtsim-top [--socket PATH] [--evlog PATH] [--interval MS] [--once]
 *   vtsim-top --connect HOST:PORT [--token SECRET] [...]
 *
 *   --socket PATH   vtsimd socket (default ./vtsimd.sock)
 *   --connect HOST:PORT
 *                   poll a vtsim-coord fleet endpoint over TCP
 *                   instead: renders one row per registered daemon
 *                   (workers busy/total, queue depth, steals and
 *                   migrations in/out) above the fabric job table
 *   --token SECRET  bearer token for --connect
 *   --evlog PATH    tail this event log's most recent job events
 *   --interval MS   refresh period (default 1000)
 *   --once          render a single frame without clearing the screen
 *                   and exit (scripting/CI mode)
 *
 * The latency block comes from the Prometheus metrics body (the same
 * numbers a scraper sees); everything else from the status snapshot.
 * A truncated final event-log line (daemon killed mid-write) is
 * tolerated and skipped, like scripts/validate_evlog.py does.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fabric/transport.hh"
#include "service/client.hh"
#include "service/json.hh"

namespace {

using vtsim::service::Client;
using vtsim::service::Json;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: vtsim-top [--socket PATH] [--evlog PATH] "
                 "[--interval MS] [--once]\n"
                 "       vtsim-top --connect HOST:PORT [--token "
                 "SECRET] [...]\n");
    std::exit(2);
}

/** Parse the Prometheus text body into name -> value (label'd series,
 *  e.g. histogram buckets, keep the label text in the key). */
std::map<std::string, double>
parseMetrics(const std::string &body)
{
    std::map<std::string, double> out;
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t space = line.rfind(' ');
        if (space == std::string::npos)
            continue;
        out[line.substr(0, space)] =
            std::strtod(line.c_str() + space + 1, nullptr);
    }
    return out;
}

double
metric(const std::map<std::string, double> &m, const std::string &name)
{
    const auto it = m.find(name);
    return it == m.end() ? 0.0 : it->second;
}

/** The last @p count parseable event-log lines (truncated tail
 *  skipped). */
std::vector<Json>
tailEvents(const std::string &path, std::size_t count)
{
    std::ifstream is(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        lines.push_back(line);
        if (lines.size() > count + 1)
            lines.erase(lines.begin());
    }
    std::vector<Json> events;
    for (const std::string &l : lines) {
        try {
            events.push_back(Json::parse(l));
        } catch (const std::exception &) {
            // A mid-write kill leaves at most one partial tail line.
        }
    }
    if (events.size() > count)
        events.erase(events.begin(), events.end() - long(count));
    return events;
}

std::string
describeEvent(const Json &e)
{
    std::ostringstream os;
    const Json *seq = e.find("seq");
    const Json *t = e.find("t_ms");
    const Json *event = e.find("event");
    if (!seq || !t || !event)
        return "<malformed event>";
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%10.1f", t->asDouble());
    os << "#" << seq->asInt() << " " << stamp << "ms  "
       << event->asString();
    if (const Json *job = e.find("job"))
        os << " job=" << job->asInt();
    for (const char *key : {"workload", "worker", "reason", "from",
                            "by_priority", "slice_ms", "wait_ms"}) {
        if (const Json *v = e.find(key)) {
            os << " " << key << "=";
            if (v->isString())
                os << v->asString();
            else
                os << v->dump();
        }
    }
    return os.str();
}

struct Frame
{
    Json status;
    std::map<std::string, double> metrics;
    std::vector<Json> events;
};

/** Coordinator mode: the fleet table (one row per daemon) above the
 *  fabric job table. */
void
renderFleet(const Frame &frame)
{
    const Json &st = frame.status;
    const Json *fabric = st.find("fabric");
    if (!fabric)
        return;
    const auto num = [&st](const char *key) -> double {
        const Json *v = st.find(key);
        return v ? v->asDouble() : 0.0;
    };
    std::printf("vtsim-coord up %.1fs  dispatches %lld  steals %lld  "
                "migrations %lld  throttles %lld\n",
                num("uptime_seconds"),
                (long long)fabric->find("dispatches")->asInt(),
                (long long)fabric->find("steals")->asInt(),
                (long long)fabric->find("migrations")->asInt(),
                (long long)fabric->find("throttles")->asInt());

    if (const Json *nodes = fabric->find("nodes")) {
        std::printf("%-10s %-21s %-5s %7s %5s %6s %9s %9s\n", "NODE",
                    "ADDR", "UP", "BUSY", "QUEUE", "PARKED",
                    "STEAL i/o", "MIGR i/o");
        for (const Json &n : nodes->asArray()) {
            char busy[16], steals[16], migr[16];
            std::snprintf(busy, sizeof(busy), "%lld/%lld",
                          (long long)n.find("running")->asInt(),
                          (long long)n.find("workers")->asInt());
            std::snprintf(steals, sizeof(steals), "%lld/%lld",
                          (long long)n.find("steals_in")->asInt(),
                          (long long)n.find("steals_out")->asInt());
            std::snprintf(migr, sizeof(migr), "%lld/%lld",
                          (long long)n.find("migrations_in")->asInt(),
                          (long long)n.find("migrations_out")->asInt());
            std::printf("%-10s %-21s %-5s %7s %5lld %6lld %9s %9s\n",
                        n.find("node")->asString().c_str(),
                        n.find("addr")->asString().c_str(),
                        n.find("alive")->asBool() ? "yes" : "LOST",
                        busy,
                        (long long)n.find("queue_depth")->asInt(),
                        (long long)n.find("parked")->asInt(), steals,
                        migr);
        }
    }
    if (const Json *tenants = fabric->find("tenants")) {
        for (const Json &t : tenants->asArray()) {
            std::printf("tenant %-12s in-flight %lld  submitted %lld  "
                        "throttled %lld\n",
                        t.find("tenant")->asString().c_str(),
                        (long long)t.find("in_flight")->asInt(),
                        (long long)t.find("submitted")->asInt(),
                        (long long)t.find("throttled")->asInt());
        }
    }
    if (const Json *list = st.find("job_list")) {
        std::printf("%-5s %-14s %-12s %-8s %-10s %-10s\n", "JOB",
                    "WORKLOAD", "TENANT", "PRIO", "STATE", "NODE");
        for (const Json &j : list->asArray()) {
            const Json *node = j.find("node");
            std::printf("%-5lld %-14s %-12s %-8s %-10s %-10s\n",
                        (long long)j.find("job")->asInt(),
                        j.find("workload")->asString().c_str(),
                        j.find("tenant")->asString().c_str(),
                        j.find("priority")->asString().c_str(),
                        j.find("state")->asString().c_str(),
                        node && node->isString()
                            ? node->asString().c_str()
                            : "-");
        }
    }
    if (!frame.events.empty()) {
        std::printf("recent events\n");
        for (const Json &e : frame.events)
            std::printf("  %s\n", describeEvent(e).c_str());
    }
    std::fflush(stdout);
}

void
render(const Frame &frame)
{
    const Json &st = frame.status;
    const auto num = [&st](const char *key) -> double {
        const Json *v = st.find(key);
        return v ? v->asDouble() : 0.0;
    };
    std::printf("vtsimd up %.1fs  workers %d  preempt-every %lld\n",
                num("uptime_seconds"), int(num("workers")),
                (long long)num("preempt_every"));

    if (const Json *queue = st.find("queue")) {
        std::printf("queue   depth %d / %d (max %d)\n",
                    int(queue->find("depth")->asDouble()),
                    int(queue->find("limit")->asDouble()),
                    int(queue->find("max_depth")->asDouble()));
    }
    if (const Json *jobs = st.find("jobs")) {
        const auto count = [&jobs](const char *key) {
            const Json *v = jobs->find(key);
            return v ? int(v->asDouble()) : 0;
        };
        std::printf("jobs    running %d  parked %d  submitted %d  "
                    "completed %d  failed %d  cancelled %d\n",
                    count("running"), count("parked"),
                    count("submitted"), count("completed"),
                    count("failed"), count("cancelled"));
    }
    std::printf("sched   preemptions %d  retries %d  utilization "
                "%.0f%%\n",
                int(num("preemptions")), int(num("retries")),
                num("worker_utilization") * 100.0);

    const auto &m = frame.metrics;
    const auto lat = [&m](const char *label, const char *stat) {
        const std::string base =
            std::string("vtsim_service_") + stat;
        const double count = metric(m, base + "_count");
        std::printf("  %-18s n=%-5.0f mean %7.1fms  max %7.1fms\n",
                    label, count,
                    count > 0.0
                        ? metric(m, base + "_sum") / count * 1e3
                        : 0.0,
                    metric(m, base + "_max") * 1e3);
    };
    std::printf("latency\n");
    lat("queue-wait", "queue_wait_seconds");
    lat("run-slice", "run_seconds");
    lat("preempt-resume", "preempt_to_resume_seconds");
    lat("checkpoint-write", "checkpoint_write_seconds");

    if (const Json *list = st.find("job_list")) {
        std::printf("%-5s %-14s %-8s %-9s %5s %4s %9s %9s\n", "JOB",
                    "WORKLOAD", "PRIO", "STATE", "PREMPT", "RTRY",
                    "WAIT(s)", "WALL(s)");
        for (const Json &j : list->asArray()) {
            std::printf("%-5lld %-14s %-8s %-9s %5d %4d %9.2f %9.2f\n",
                        (long long)j.find("job")->asInt(),
                        j.find("workload")->asString().c_str(),
                        j.find("priority")->asString().c_str(),
                        j.find("state")->asString().c_str(),
                        int(j.find("preemptions")->asDouble()),
                        int(j.find("retries")->asDouble()),
                        j.find("wait_seconds")->asDouble(),
                        j.find("wall_seconds")->asDouble());
            // A multi-kernel job lists one line per resident grid.
            const Json *grids = j.find("grids");
            if (!grids)
                continue;
            const Json *policy = j.find("share_policy");
            for (const Json &g : grids->asArray()) {
                const Json *ipc = g.find("ipc");
                const Json *ctas = g.find("ctas_completed");
                std::printf("  grid%lld %-12s %-8s",
                            (long long)g.find("grid")->asInt(),
                            g.find("kernel")->asString().c_str(),
                            policy ? policy->asString().c_str() : "");
                if (ipc && ctas) {
                    std::printf("  ipc %5.2f  ctas %lld",
                                ipc->asDouble(),
                                (long long)ctas->asInt());
                }
                std::printf("\n");
            }
        }
    }

    if (!frame.events.empty()) {
        std::printf("recent events\n");
        for (const Json &e : frame.events)
            std::printf("  %s\n", describeEvent(e).c_str());
    }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path = "vtsimd.sock";
    std::string connect_addr;
    std::string auth_token;
    std::string evlog_path;
    long interval_ms = 1000;
    bool once = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--socket")
            socket_path = value();
        else if (arg == "--connect")
            connect_addr = value();
        else if (arg == "--token")
            auth_token = value();
        else if (arg == "--evlog")
            evlog_path = value();
        else if (arg == "--interval") {
            interval_ms = std::strtol(value(), nullptr, 10);
            if (interval_ms < 1)
                usage();
        } else if (arg == "--once")
            once = true;
        else
            usage();
    }

    const bool fleet = !connect_addr.empty();
    for (;;) {
        Frame frame;
        try {
            auto client =
                fleet ? std::make_unique<Client>(
                            vtsim::fabric::parseHostPort(connect_addr),
                            auth_token)
                      : std::make_unique<Client>(socket_path);
            Json::Object status_req;
            status_req["op"] = Json("status");
            frame.status =
                client->request(Json(std::move(status_req)));
            if (!fleet) {
                Json::Object metrics_req;
                metrics_req["op"] = Json("metrics");
                const Json reply =
                    client->request(Json(std::move(metrics_req)));
                if (const Json *body = reply.find("body"))
                    frame.metrics = parseMetrics(body->asString());
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "vtsim-top: %s\n", e.what());
            return 1;
        }
        if (!evlog_path.empty())
            frame.events = tailEvents(evlog_path, 8);

        if (!once)
            std::printf("\033[2J\033[H"); // Clear + home.
        if (fleet)
            renderFleet(frame);
        else
            render(frame);
        if (once)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}
