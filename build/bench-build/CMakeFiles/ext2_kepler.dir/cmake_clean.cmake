file(REMOVE_RECURSE
  "../bench/ext2_kepler"
  "../bench/ext2_kepler.pdb"
  "CMakeFiles/ext2_kepler.dir/ext2_kepler.cc.o"
  "CMakeFiles/ext2_kepler.dir/ext2_kepler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext2_kepler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
