/**
 * @file
 * 1-D 3-point stencil: neighbouring loads give L1 reuse, small CTAs keep
 * the kernel CTA-slot (scheduling) limited.
 */

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class Stencil : public Workload
{
  public:
    explicit Stencil(std::uint32_t scale)
        : n_(scale == 0 ? 1024 : 98304 * scale)
    {}

    std::string name() const override { return "stencil"; }

    std::string
    description() const override
    {
        return "1-D 3-point float stencil, interior points";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        // out[i] = 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1], 1 <= i < n-1
        return assemble(R"(
.kernel stencil
    ldp r0, 0            # in
    ldp r1, 1            # out
    ldp r2, 2            # n
    ldp r3, 3            # 0.25f bits
    ldp r4, 4            # 0.5f bits
    s2r r5, ctaid.x
    s2r r6, ntid.x
    s2r r7, tid.x
    imad r8, r5, r6, r7  # i - 1 base
    iadd r8, r8, 1       # i
    isub r9, r2, 1
    isetp.ge r10, r8, r9
    bra r10, done
    shl r11, r8, 2
    iadd r11, r11, r0    # &in[i]
    ldg r12, [r11-4]
    ldg r13, [r11]
    ldg r14, [r11+4]
    fmul r15, r12, r3
    ffma r15, r13, r4, r15
    ffma r15, r14, r3, r15
    shl r16, r8, 2
    iadd r16, r16, r1
    stg [r16], r15
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd05);
        std::vector<float> in(n_);
        for (auto &v : in)
            v = rng.nextFloat();
        inAddr_ = gmem.alloc(n_ * 4);
        outAddr_ = gmem.alloc(n_ * 4);
        gmem.writeFloats(inAddr_, in);

        expected_.assign(n_, 0.0f);
        for (std::uint32_t i = 1; i + 1 < n_; ++i) {
            float acc = in[i - 1] * 0.25f;
            acc = in[i] * 0.5f + acc;
            acc = in[i + 1] * 0.25f + acc;
            expected_[i] = acc;
        }

        LaunchParams lp;
        lp.cta = Dim3(128);
        lp.grid = Dim3(ceilDiv(n_, 128));
        lp.params = {std::uint32_t(inAddr_), std::uint32_t(outAddr_), n_,
                     0x3e800000u /* 0.25f */, 0x3f000000u /* 0.5f */};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readFloats(outAddr_, n_);
        for (std::uint32_t i = 1; i + 1 < n_; ++i)
            if (got[i] != expected_[i])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    Addr inAddr_ = 0, outAddr_ = 0;
    std::vector<float> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeStencil(std::uint32_t scale)
{
    return std::make_unique<Stencil>(scale);
}

} // namespace vtsim
