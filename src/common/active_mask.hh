/**
 * @file
 * 32-lane active mask used throughout the SIMT pipeline.
 */

#ifndef VTSIM_COMMON_ACTIVE_MASK_HH
#define VTSIM_COMMON_ACTIVE_MASK_HH

#include <bit>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace vtsim {

/**
 * A set of active lanes within one warp.
 *
 * Thin wrapper over a 32-bit word so divergence handling reads as set
 * algebra rather than raw bit fiddling.
 */
class ActiveMask
{
  public:
    constexpr ActiveMask() = default;
    constexpr explicit ActiveMask(std::uint32_t bits) : bits_(bits) {}

    /** Mask with the low @p n lanes set (n <= warpSize). */
    static constexpr ActiveMask
    firstLanes(std::uint32_t n)
    {
        if (n >= warpSize)
            return all();
        return ActiveMask((1u << n) - 1u);
    }

    /** Mask with every lane set. */
    static constexpr ActiveMask all() { return ActiveMask(~0u); }

    /** Mask with no lane set. */
    static constexpr ActiveMask none() { return ActiveMask(0u); }

    constexpr bool test(std::uint32_t lane) const
    { return (bits_ >> lane) & 1u; }

    constexpr void set(std::uint32_t lane) { bits_ |= (1u << lane); }
    constexpr void clear(std::uint32_t lane) { bits_ &= ~(1u << lane); }

    constexpr bool any() const { return bits_ != 0; }
    constexpr bool empty() const { return bits_ == 0; }
    constexpr bool full() const { return bits_ == ~0u; }

    /** Number of set lanes. */
    std::uint32_t count() const { return std::popcount(bits_); }

    /** Index of the lowest set lane; warpSize when empty. */
    std::uint32_t
    firstLane() const
    {
        return bits_ ? std::countr_zero(bits_) : warpSize;
    }

    constexpr std::uint32_t bits() const { return bits_; }

    constexpr ActiveMask
    operator&(const ActiveMask &o) const
    { return ActiveMask(bits_ & o.bits_); }

    constexpr ActiveMask
    operator|(const ActiveMask &o) const
    { return ActiveMask(bits_ | o.bits_); }

    constexpr ActiveMask
    operator~() const
    { return ActiveMask(~bits_); }

    constexpr ActiveMask &
    operator&=(const ActiveMask &o)
    { bits_ &= o.bits_; return *this; }

    constexpr ActiveMask &
    operator|=(const ActiveMask &o)
    { bits_ |= o.bits_; return *this; }

    constexpr bool
    operator==(const ActiveMask &o) const = default;

    /** Lanes in this mask but not in @p o. */
    constexpr ActiveMask
    minus(const ActiveMask &o) const
    { return ActiveMask(bits_ & ~o.bits_); }

    /** Render as a 32-character bit string, lane 0 rightmost. */
    std::string
    toString() const
    {
        std::string s(warpSize, '0');
        for (std::uint32_t lane = 0; lane < warpSize; ++lane)
            if (test(lane))
                s[warpSize - 1 - lane] = '1';
        return s;
    }

  private:
    std::uint32_t bits_ = 0;
};

} // namespace vtsim

#endif // VTSIM_COMMON_ACTIVE_MASK_HH
