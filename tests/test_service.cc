/**
 * @file
 * The vtsimd job-service subsystem end to end: the JSON/NDJSON wire
 * protocol survives malformed input (fuzz-style), the daemon survives
 * abusive clients, and — the load-bearing invariant — a job that is
 * preempted, parked to disk and resumed, or crashed and retried from
 * its last checkpoint, finishes with KernelStats bit-identical to the
 * uninterrupted run.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gpu/gpu.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/json.hh"
#include "service/protocol.hh"
#include "service/service.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

using service::Client;
using service::Daemon;
using service::JobService;
using service::JobSnapshot;
using service::JobSpec;
using service::JobState;
using service::Json;
using service::JsonError;
using service::Priority;
using service::ProtocolError;
using service::ServiceConfig;

/** Every field of KernelStats, bit for bit. */
void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &context)
{
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.warpInstructions, b.warpInstructions) << context;
    EXPECT_EQ(a.threadInstructions, b.threadInstructions) << context;
    EXPECT_EQ(a.ctasCompleted, b.ctasCompleted) << context;
    EXPECT_EQ(a.ipc, b.ipc) << context;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << context;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << context;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << context;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << context;
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << context;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << context;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << context;
    EXPECT_EQ(a.swapOuts, b.swapOuts) << context;
    EXPECT_EQ(a.swapIns, b.swapIns) << context;
    EXPECT_EQ(a.stalls.issued, b.stalls.issued) << context;
    EXPECT_EQ(a.stalls.memStall, b.stalls.memStall) << context;
    EXPECT_EQ(a.stalls.shortStall, b.stalls.shortStall) << context;
    EXPECT_EQ(a.stalls.barrierStall, b.stalls.barrierStall) << context;
    EXPECT_EQ(a.stalls.swapStall, b.stalls.swapStall) << context;
    EXPECT_EQ(a.stalls.idle, b.stalls.idle) << context;
}

struct Baseline
{
    KernelStats stats;
    std::string series;
};

/** The oracle: the same workload, uninterrupted, on a fresh Gpu with
 *  the job service's default config. */
Baseline
runUninterrupted(const std::string &name, std::uint32_t scale,
                 Cycle interval = 0)
{
    auto wl = makeWorkload(name, scale);
    const Kernel kernel = wl->buildKernel();
    Gpu gpu{GpuConfig::fermiLike()};
    std::ostringstream os;
    if (interval > 0)
        gpu.enableIntervalSampler(interval, os);
    const LaunchParams lp = wl->prepare(gpu.memory());
    Baseline baseline;
    baseline.stats = gpu.launch(kernel, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    baseline.series = os.str();
    return baseline;
}

/** Poll until @p id has left the queue (running or already terminal). */
void
spinUntilStarted(JobService &service, service::JobId id)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        const JobSnapshot snap = service.query(id);
        if (snap.state != JobState::Queued)
            return;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "job " << id << " never started";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

std::string
tempSpool(const std::string &tag)
{
    return std::string(::testing::TempDir()) + "vtsim-spool-" + tag;
}

// --------------------------------------------------------------------
// JSON layer
// --------------------------------------------------------------------

TEST(ServiceJson, MalformedInputsThrow)
{
    const char *cases[] = {
        "",
        "{",
        "}",
        "nope",
        "[1, 2",
        "{\"a\": }",
        "{\"a\": 1,}",
        "{\"a\" 1}",
        "\"unterminated",
        "01",
        "+1",
        "1e",
        "tru",
        "{\"a\": 1} trailing",
        "\"bad escape \\q\"",
        "\"bad unicode \\u12\"",
    };
    for (const char *text : cases)
        EXPECT_THROW(Json::parse(text), JsonError) << "'" << text << "'";

    // Recursion-depth cap: deep nesting must error, not overflow the
    // stack.
    std::string deep(100, '[');
    EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(ServiceJson, RoundTrip)
{
    const std::string text =
        "{\"a\":[1,2.5,\"x\",true,null],\"b\":{\"c\":-7}}";
    EXPECT_EQ(Json::parse(text).dump(), text);
    EXPECT_EQ(Json::parse("  42 ").asInt(), 42);
    EXPECT_EQ(Json::parse("\"\\u0041\\n\"").asString(), "A\n");
}

TEST(ServiceProtocol, RejectsBadRequests)
{
    EXPECT_THROW(service::parseRequest("{\"op\":\"nope\"}"),
                 ProtocolError);
    EXPECT_THROW(service::parseRequest("{\"workload\":\"vecadd\"}"),
                 ProtocolError);
    EXPECT_THROW(service::parseRequest("{\"op\":\"submit\"}"),
                 ProtocolError);
    EXPECT_THROW(service::parseRequest(
                     "{\"op\":\"submit\",\"workload\":\"vecadd\","
                     "\"scale\":-1}"),
                 ProtocolError);
    EXPECT_THROW(service::parseRequest(
                     "{\"op\":\"submit\",\"workload\":\"vecadd\","
                     "\"config\":{\"bogus\":1}}"),
                 ProtocolError);
    EXPECT_THROW(service::parseRequest("{\"op\":\"wait\"}"),
                 ProtocolError);
    EXPECT_THROW(service::parseRequest(
                     "{\"op\":\"submit\",\"workload\":\"vecadd\","
                     "\"sim_threads\":-2}"),
                 ProtocolError);
    EXPECT_THROW(service::parseRequest(
                     "{\"op\":\"submit\",\"workload\":\"vecadd\","
                     "\"sim_threads\":\"four\"}"),
                 ProtocolError);
    EXPECT_THROW(service::parseRequest("[]"), ProtocolError);
}

TEST(ServiceProtocol, ParsesSimThreads)
{
    const auto req = service::parseRequest(
        "{\"op\":\"submit\",\"workload\":\"vecadd\",\"sim_threads\":4}");
    EXPECT_EQ(req.spec.simThreads, 4u);
    // Absent means unset (sequential).
    const auto plain = service::parseRequest(
        "{\"op\":\"submit\",\"workload\":\"vecadd\"}");
    EXPECT_EQ(plain.spec.simThreads, 0u);
}

TEST(ServiceProtocol, ParsesMultiKernelSubmit)
{
    const auto req = service::parseRequest(
        "{\"op\":\"submit\",\"kernels\":[\"vecadd\",\"bfs\"],"
        "\"share_policy\":\"spatial\"}");
    ASSERT_EQ(req.spec.kernels.size(), 2u);
    EXPECT_EQ(req.spec.kernels[0], "vecadd");
    EXPECT_EQ(req.spec.kernels[1], "bfs");
    EXPECT_EQ(req.spec.workload, "vecadd"); // Mirrors kernels[0].
    EXPECT_EQ(req.spec.sharePolicy, SharePolicy::Spatial);

    // Default policy, classic single-kernel spec stays untouched.
    const auto plain = service::parseRequest(
        "{\"op\":\"submit\",\"workload\":\"vecadd\"}");
    EXPECT_TRUE(plain.spec.kernels.empty());
    EXPECT_EQ(plain.spec.sharePolicy, SharePolicy::VtFill);

    const char *bad[] = {
        // workload and kernels are exclusive.
        "{\"op\":\"submit\",\"workload\":\"vecadd\","
        "\"kernels\":[\"bfs\"]}",
        // kernels must be a non-empty string array.
        "{\"op\":\"submit\",\"kernels\":[]}",
        "{\"op\":\"submit\",\"kernels\":[1,2]}",
        // Unknown policy names are a protocol error.
        "{\"op\":\"submit\",\"kernels\":[\"vecadd\",\"bfs\"],"
        "\"share_policy\":\"round-robin\"}",
    };
    for (const char *line : bad)
        EXPECT_THROW(service::parseRequest(line), ProtocolError) << line;
}

TEST(ServiceProtocol, KernelStatsRoundTrip)
{
    const Baseline base = runUninterrupted("vecadd", 0);
    const Json json = service::kernelStatsToJson(base.stats);
    const KernelStats back =
        service::kernelStatsFromJson(Json::parse(json.dump()));
    expectIdenticalStats(base.stats, back, "stats json round trip");
}

// --------------------------------------------------------------------
// JobService scheduling semantics (in-process)
// --------------------------------------------------------------------

TEST(JobService, SubmitRejectsUnknownWorkload)
{
    ServiceConfig config;
    config.workers = 1;
    config.spoolDir = tempSpool("unknown");
    JobService service(config);

    JobSpec bad;
    bad.workload = "no-such-benchmark";
    const auto outcome = service.submit(bad, Priority::Normal);
    EXPECT_FALSE(outcome.ok());
    EXPECT_FALSE(outcome.error.empty());

    // The rejection must not poison the service.
    JobSpec good;
    good.workload = "vecadd";
    good.scale = 0;
    const auto accepted = service.submit(good, Priority::Normal);
    ASSERT_TRUE(accepted.ok());
    EXPECT_EQ(service.wait(accepted.id).state, JobState::Done);
}

TEST(JobService, ShardedJobMatchesSequentialAndRespectsLimit)
{
    const Baseline base = runUninterrupted("vecadd", 1, 500);

    ServiceConfig config;
    config.workers = 1;
    config.maxSimThreads = 2;
    config.spoolDir = tempSpool("sharded");
    JobService service(config);

    // Beyond the daemon-side bound: rejected at submit, not clamped.
    JobSpec over;
    over.workload = "vecadd";
    over.simThreads = 3;
    const auto rejected = service.submit(over, Priority::Normal);
    EXPECT_FALSE(rejected.ok());
    EXPECT_NE(rejected.error.find("sim_threads"), std::string::npos)
        << rejected.error;

    // Within the bound: runs sharded, and nobody can tell from the
    // statistics or the interval series.
    JobSpec sharded;
    sharded.workload = "vecadd";
    sharded.scale = 1;
    sharded.statsInterval = 500;
    sharded.simThreads = 2;
    const auto accepted = service.submit(sharded, Priority::Normal);
    ASSERT_TRUE(accepted.ok());
    const JobSnapshot snap = service.wait(accepted.id);
    ASSERT_EQ(snap.state, JobState::Done);
    EXPECT_TRUE(snap.verified);
    EXPECT_EQ(snap.simThreads, 2u);
    expectIdenticalStats(base.stats, snap.stats, "sharded job");
    EXPECT_EQ(base.series, snap.intervalSeries);
}

TEST(JobService, QueueFullRejectionAndBackpressure)
{
    ServiceConfig config;
    config.workers = 1;
    config.queueLimit = 1;
    config.preemptEvery = 0; // Non-preemptible: the worker stays busy.
    config.spoolDir = tempSpool("full");
    JobService service(config);

    JobSpec longJob;
    longJob.workload = "needle";
    longJob.scale = 1;
    const auto a = service.submit(longJob, Priority::Normal);
    ASSERT_TRUE(a.ok());
    spinUntilStarted(service, a.id);

    JobSpec tiny;
    tiny.workload = "vecadd";
    tiny.scale = 0;
    const auto b = service.submit(tiny, Priority::Normal);
    ASSERT_TRUE(b.ok()); // Fills the queue (depth 1).
    const auto c = service.submit(tiny, Priority::Normal);
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(c.rejected, "queue_full");

    EXPECT_EQ(service.wait(a.id).state, JobState::Done);
    EXPECT_EQ(service.wait(b.id).state, JobState::Done);
    EXPECT_THROW(service.wait(9999), ProtocolError);
}

TEST(JobService, PreemptedJobResumesBitIdentically)
{
    const Baseline longBase = runUninterrupted("needle", 1);
    const Baseline tinyBase = runUninterrupted("vecadd", 0);

    ServiceConfig config;
    config.workers = 1;
    config.preemptEvery = 500; // Frequent preemption points.
    config.spoolDir = tempSpool("preempt");
    JobService service(config);

    JobSpec longJob;
    longJob.workload = "needle";
    longJob.scale = 1;
    const auto low = service.submit(longJob, Priority::Low);
    ASSERT_TRUE(low.ok());
    spinUntilStarted(service, low.id);

    JobSpec tiny;
    tiny.workload = "vecadd";
    tiny.scale = 0;
    const auto high = service.submit(tiny, Priority::High);
    ASSERT_TRUE(high.ok());

    const JobSnapshot highSnap = service.wait(high.id);
    ASSERT_EQ(highSnap.state, JobState::Done);
    EXPECT_TRUE(highSnap.verified);
    expectIdenticalStats(tinyBase.stats, highSnap.stats,
                         "high-priority job");

    const JobSnapshot lowSnap = service.wait(low.id);
    ASSERT_EQ(lowSnap.state, JobState::Done);
    EXPECT_TRUE(lowSnap.verified);
    // The whole point: it was parked to disk mid-kernel and resumed,
    // and nobody can tell from the statistics.
    EXPECT_GE(lowSnap.preemptions, 1u);
    expectIdenticalStats(longBase.stats, lowSnap.stats,
                         "preempted+resumed job");
}

/** Direct launchConcurrent oracle with the service's default config. */
KernelStats
coRunUninterrupted(const std::vector<std::string> &names,
                   SharePolicy policy, std::uint32_t scale,
                   std::vector<GridStats> &grids)
{
    Gpu gpu{GpuConfig::fermiLike()};
    std::vector<std::unique_ptr<Workload>> wls;
    std::vector<Kernel> kernels;
    for (const auto &name : names) {
        wls.push_back(makeWorkload(name, scale));
        kernels.push_back(wls.back()->buildKernel());
    }
    std::vector<GridLaunch> launches;
    for (std::size_t g = 0; g < wls.size(); ++g) {
        GridLaunch gl;
        gl.kernel = &kernels[g];
        gl.params = wls[g]->prepare(gpu.memory());
        gl.priority = std::uint32_t(g);
        launches.push_back(std::move(gl));
    }
    const KernelStats stats = gpu.launchConcurrent(launches, policy);
    for (std::size_t g = 0; g < wls.size(); ++g)
        EXPECT_TRUE(wls[g]->verify(gpu.memory())) << names[g];
    grids = gpu.gridStats();
    return stats;
}

TEST(JobService, MultiKernelJobReportsPerGridStats)
{
    std::vector<GridStats> base_grids;
    const KernelStats base = coRunUninterrupted(
        {"vecadd", "bfs"}, SharePolicy::VtFill, 0, base_grids);

    ServiceConfig config;
    config.workers = 1;
    config.preemptEvery = 0; // Uninterrupted oracle comparison.
    config.spoolDir = tempSpool("multikernel");
    JobService service(config);

    JobSpec spec;
    spec.kernels = {"vecadd", "bfs"};
    spec.workload = spec.kernels.front();
    spec.scale = 0;
    spec.sharePolicy = SharePolicy::VtFill;
    const auto accepted = service.submit(spec, Priority::Normal);
    ASSERT_TRUE(accepted.ok()) << accepted.error;
    const JobSnapshot snap = service.wait(accepted.id);
    ASSERT_EQ(snap.state, JobState::Done);
    EXPECT_TRUE(snap.verified);
    expectIdenticalStats(base, snap.stats, "multi-kernel job");
    ASSERT_EQ(snap.grids.size(), 2u);
    for (std::size_t g = 0; g < snap.grids.size(); ++g) {
        EXPECT_EQ(snap.grids[g].kernelName, base_grids[g].kernelName);
        expectIdenticalStats(base_grids[g].stats, snap.grids[g].stats,
                             "grid " + std::to_string(g));
    }
}

TEST(JobService, MultiKernelPreemptedJobResumesBitIdentically)
{
    std::vector<GridStats> base_grids;
    const KernelStats base = coRunUninterrupted(
        {"bfs", "stencil"}, SharePolicy::VtFill, 0, base_grids);

    ServiceConfig config;
    config.workers = 1;
    config.preemptEvery = 500;
    config.spoolDir = tempSpool("multipreempt");
    JobService service(config);

    JobSpec longJob;
    longJob.kernels = {"bfs", "stencil"};
    longJob.workload = longJob.kernels.front();
    longJob.scale = 0;
    const auto low = service.submit(longJob, Priority::Low);
    ASSERT_TRUE(low.ok()) << low.error;
    spinUntilStarted(service, low.id);

    JobSpec tiny;
    tiny.workload = "vecadd";
    tiny.scale = 0;
    const auto high = service.submit(tiny, Priority::High);
    ASSERT_TRUE(high.ok());
    ASSERT_EQ(service.wait(high.id).state, JobState::Done);

    const JobSnapshot snap = service.wait(low.id);
    ASSERT_EQ(snap.state, JobState::Done);
    EXPECT_TRUE(snap.verified);
    expectIdenticalStats(base, snap.stats, "parked co-run");
    ASSERT_EQ(snap.grids.size(), 2u);
    for (std::size_t g = 0; g < snap.grids.size(); ++g) {
        expectIdenticalStats(base_grids[g].stats, snap.grids[g].stats,
                             "parked co-run grid " + std::to_string(g));
    }
}

TEST(JobService, MultiKernelSubmitValidation)
{
    ServiceConfig config;
    config.workers = 1;
    config.spoolDir = tempSpool("multivalidate");
    JobService service(config);

    // Beyond the grid limit.
    JobSpec over;
    over.kernels.assign(maxGrids + 1, "vecadd");
    over.workload = "vecadd";
    const auto rejected = service.submit(over, Priority::Normal);
    EXPECT_FALSE(rejected.ok());
    EXPECT_NE(rejected.error.find("kernels"), std::string::npos)
        << rejected.error;

    // Recording does not compose with co-runs (mode matrix).
    JobSpec rec;
    rec.kernels = {"vecadd", "bfs"};
    rec.workload = "vecadd";
    rec.recordTrace = tempSpool("multivalidate") + "-trace.bin";
    const auto rec_rejected = service.submit(rec, Priority::Normal);
    EXPECT_FALSE(rec_rejected.ok());
    EXPECT_NE(rec_rejected.error.find("concurrent"), std::string::npos)
        << rec_rejected.error;

    // Preempt policy without the VT machine (mode matrix).
    JobSpec pre;
    pre.kernels = {"vecadd", "bfs"};
    pre.workload = "vecadd";
    pre.sharePolicy = SharePolicy::Preempt;
    const auto pre_rejected = service.submit(pre, Priority::Normal);
    EXPECT_FALSE(pre_rejected.ok());
    EXPECT_NE(pre_rejected.error.find("vtEnabled"), std::string::npos)
        << pre_rejected.error;

    // An unknown co-runner name is caught at admission.
    JobSpec bad;
    bad.kernels = {"vecadd", "no-such-benchmark"};
    bad.workload = "vecadd";
    const auto bad_rejected = service.submit(bad, Priority::Normal);
    EXPECT_FALSE(bad_rejected.ok());

    // None of the rejections poisoned the service.
    JobSpec good;
    good.workload = "vecadd";
    good.scale = 0;
    const auto accepted = service.submit(good, Priority::Normal);
    ASSERT_TRUE(accepted.ok());
    EXPECT_EQ(service.wait(accepted.id).state, JobState::Done);
}

TEST(JobService, CrashedJobRetriesFromCheckpoint)
{
    constexpr Cycle kInterval = 1000;
    const Baseline base = runUninterrupted("needle", 0, kInterval);

    ServiceConfig config;
    config.workers = 1;
    config.spoolDir = tempSpool("retry-ckpt");
    JobService service(config);

    JobSpec spec;
    spec.workload = "needle"; // 11k+ cycles: crosses the boundary.
    spec.scale = 0;
    spec.checkpointEvery = 2000;
    spec.statsInterval = kInterval;
    spec.injectFail = 1; // Attempt 1 parks a checkpoint, then dies.
    const auto job = service.submit(spec, Priority::Normal);
    ASSERT_TRUE(job.ok());

    const JobSnapshot snap = service.wait(job.id);
    ASSERT_EQ(snap.state, JobState::Done);
    EXPECT_TRUE(snap.verified);
    EXPECT_EQ(snap.retries, 1u);
    expectIdenticalStats(base.stats, snap.stats,
                         "retried-from-checkpoint job");
    // The interval series is stitched from the pre-crash slice plus
    // the resumed slice, and must equal the uninterrupted series.
    EXPECT_EQ(base.series, snap.intervalSeries);
}

TEST(JobService, CrashedJobWithoutCheckpointRetriesFromScratch)
{
    const Baseline base = runUninterrupted("vecadd", 0);

    ServiceConfig config;
    config.workers = 1;
    config.spoolDir = tempSpool("retry-scratch");
    JobService service(config);

    JobSpec spec;
    spec.workload = "vecadd";
    spec.scale = 0;
    // Cadence beyond the kernel length: the launch completes before
    // any checkpoint boundary, so the injected failure leaves nothing
    // parked and the retry reruns from scratch.
    spec.checkpointEvery = 1'000'000'000;
    spec.injectFail = 1;
    const auto job = service.submit(spec, Priority::Normal);
    ASSERT_TRUE(job.ok());

    const JobSnapshot snap = service.wait(job.id);
    ASSERT_EQ(snap.state, JobState::Done);
    EXPECT_EQ(snap.retries, 1u);
    expectIdenticalStats(base.stats, snap.stats,
                         "retried-from-scratch job");
}

TEST(JobService, SecondCrashIsTerminal)
{
    ServiceConfig config;
    config.workers = 1;
    config.spoolDir = tempSpool("exhausted");
    JobService service(config);

    JobSpec spec;
    spec.workload = "vecadd";
    spec.scale = 0;
    spec.checkpointEvery = 100;
    spec.injectFail = 2; // First attempt and its one retry both die.
    const auto job = service.submit(spec, Priority::Normal);
    ASSERT_TRUE(job.ok());

    const JobSnapshot snap = service.wait(job.id);
    EXPECT_EQ(snap.state, JobState::Failed);
    EXPECT_EQ(snap.retries, 1u);
    EXPECT_NE(snap.failureReason.find("injected"), std::string::npos)
        << snap.failureReason;
}

TEST(JobService, CancelQueuedButNotRunning)
{
    ServiceConfig config;
    config.workers = 1;
    config.preemptEvery = 0;
    config.spoolDir = tempSpool("cancel");
    JobService service(config);

    JobSpec longJob;
    longJob.workload = "needle";
    longJob.scale = 1;
    const auto a = service.submit(longJob, Priority::Normal);
    ASSERT_TRUE(a.ok());
    spinUntilStarted(service, a.id);

    JobSpec tiny;
    tiny.workload = "vecadd";
    tiny.scale = 0;
    const auto b = service.submit(tiny, Priority::Normal);
    ASSERT_TRUE(b.ok());

    std::string error;
    EXPECT_TRUE(service.cancel(b.id, error)) << error;
    EXPECT_EQ(service.wait(b.id).state, JobState::Cancelled);
    EXPECT_FALSE(service.cancel(b.id, error)); // Already terminal.
    EXPECT_FALSE(service.cancel(a.id, error)); // Running.
    EXPECT_FALSE(service.cancel(12345, error)); // Unknown.

    EXPECT_EQ(service.wait(a.id).state, JobState::Done);
}

TEST(JobService, TelemetryAndCompletedRuns)
{
    ServiceConfig config;
    config.workers = 2;
    config.spoolDir = tempSpool("telemetry");
    JobService service(config);

    JobSpec tiny;
    tiny.workload = "vecadd";
    tiny.scale = 0;
    const auto a = service.submit(tiny, Priority::Normal);
    tiny.workload = "reduce";
    const auto b = service.submit(tiny, Priority::High);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    service.wait(a.id);
    service.wait(b.id);

    const Json status = service.status();
    EXPECT_TRUE(status.find("ok")->asBool());
    EXPECT_EQ(status.find("workers")->asInt(), 2);
    EXPECT_EQ(status.find("jobs")->find("submitted")->asInt(), 2);
    EXPECT_EQ(status.find("jobs")->find("completed")->asInt(), 2);
    EXPECT_EQ(status.find("job_list")->asArray().size(), 2u);
    EXPECT_GE(status.find("busy_seconds")->asDouble(), 0.0);

    // The stats-JSON section is the same snapshot minus the reply
    // framing.
    const Json section = service.statsJsonSection();
    EXPECT_EQ(section.find("ok"), nullptr);
    EXPECT_EQ(section.find("jobs")->find("completed")->asInt(), 2);

    // Completed runs come back in job-id order for the stats JSON.
    const auto runs = service.completedRuns();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].workload, "vecadd");
    EXPECT_EQ(runs[1].workload, "reduce");
    EXPECT_TRUE(runs[0].verified);
    EXPECT_TRUE(runs[1].verified);

    // The service StatGroup is registered with the registry under
    // dotted paths.
    const auto &scalars = service.telemetryRegistry().scalars();
    bool found = false;
    for (const auto &probe : scalars)
        found |= probe.path == "service.jobs_completed";
    EXPECT_TRUE(found);
}

TEST(JobService, MetricsTextExportsServiceRegistry)
{
    ServiceConfig config;
    config.workers = 1;
    config.spoolDir = tempSpool("metrics");
    JobService service(config);

    JobSpec tiny;
    tiny.workload = "vecadd";
    tiny.scale = 0;
    const auto a = service.submit(tiny, Priority::Normal);
    const auto b = service.submit(tiny, Priority::Normal);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    service.wait(a.id);
    service.wait(b.id);

    const std::string text = service.metricsText();
    // Counters get the Prometheus _total suffix and a typed family.
    EXPECT_NE(text.find("# TYPE vtsim_service_jobs_completed_total "
                        "counter\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vtsim_service_jobs_completed_total 2\n"),
              std::string::npos)
        << text;
    // Both completed jobs were sampled by the latency distributions
    // and their histograms (cumulative buckets end at +Inf == count).
    EXPECT_NE(text.find("vtsim_service_queue_wait_seconds_count 2\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vtsim_service_run_seconds_count 2\n"),
              std::string::npos)
        << text;
    EXPECT_NE(
        text.find("vtsim_service_run_seconds_hist_bucket{le=\"+Inf\"} 2"),
        std::string::npos)
        << text;
    // Nothing was preempted: the distribution exists but is empty.
    EXPECT_NE(
        text.find("vtsim_service_preempt_to_resume_seconds_count 0\n"),
        std::string::npos)
        << text;
}

// --------------------------------------------------------------------
// Daemon wire protocol (Unix-domain socket)
// --------------------------------------------------------------------

class DaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        config_.workers = 1;
        config_.queueLimit = 8;
        config_.spoolDir = tempSpool("daemon");
        service_ = std::make_unique<JobService>(config_);
        socket_ = std::string(::testing::TempDir()) + "vtsimd-test-" +
                  std::to_string(::getpid()) + ".sock";
        daemon_ = std::make_unique<Daemon>(*service_, socket_);
        daemon_->start();
        serveThread_ = std::thread([this] { daemon_->serve(); });
    }

    void
    TearDown() override
    {
        daemon_->requestStop();
        serveThread_.join();
        daemon_.reset();
        service_->shutdown();
        service_.reset();
    }

    /** One request on a fresh connection; expects a reply line. */
    Json
    roundTrip(const std::string &line)
    {
        Client client(socket_);
        const std::string reply = client.requestRaw(line);
        EXPECT_FALSE(reply.empty()) << "no reply to: " << line;
        return Json::parse(reply);
    }

    ServiceConfig config_;
    std::unique_ptr<JobService> service_;
    std::unique_ptr<Daemon> daemon_;
    std::string socket_;
    std::thread serveThread_;
};

TEST_F(DaemonTest, FuzzedRequestsNeverKillTheDaemon)
{
    const char *garbage[] = {
        "{",
        "not json at all",
        "[]",
        "42",
        "{\"op\":42}",
        "{\"op\":\"frobnicate\"}",
        "{\"op\":\"submit\"}",
        "{\"op\":\"submit\",\"workload\":17}",
        "{\"op\":\"submit\",\"workload\":\"no-such-benchmark\"}",
        "{\"op\":\"submit\",\"workload\":\"vecadd\",\"scale\":9999}",
        "{\"op\":\"submit\",\"workload\":\"vecadd\","
        "\"config\":{\"root_password\":\"hunter2\"}}",
        "{\"op\":\"submit\",\"workload\":\"vecadd\","
        "\"priority\":\"urgent\"}",
        "{\"op\":\"wait\"}",
        "{\"op\":\"wait\",\"job\":31337}",
        "{\"op\":\"cancel\",\"job\":-1}",
        "[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[",
    };
    for (const char *line : garbage) {
        const Json reply = roundTrip(line);
        ASSERT_TRUE(reply.isObject()) << line;
        EXPECT_FALSE(reply.find("ok")->asBool()) << line;
        EXPECT_NE(reply.find("error"), nullptr) << line;
    }
    // After all of that, the daemon still serves.
    EXPECT_TRUE(roundTrip("{\"op\":\"ping\"}").find("ok")->asBool());
}

TEST_F(DaemonTest, OversizedRequestRejectedWithoutParsing)
{
    std::string huge = "{\"op\":\"ping\",\"pad\":\"";
    huge.append(Daemon::kMaxLineBytes + 1024, 'x');
    huge += "\"}";
    Client client(socket_);
    const std::string reply = client.requestRaw(huge);
    ASSERT_FALSE(reply.empty());
    const Json parsed = Json::parse(reply);
    EXPECT_FALSE(parsed.find("ok")->asBool());
    EXPECT_NE(parsed.find("error")->asString().find("64 KiB"),
              std::string::npos);

    EXPECT_TRUE(roundTrip("{\"op\":\"ping\"}").find("ok")->asBool());
}

TEST_F(DaemonTest, MidRequestDisconnectIsHarmless)
{
    {
        Client client(socket_);
        client.sendPartialAndClose("{\"op\":\"submit\",\"work");
    }
    {
        Client client(socket_);
        client.sendPartialAndClose("");
    }
    EXPECT_TRUE(roundTrip("{\"op\":\"ping\"}").find("ok")->asBool());
}

TEST_F(DaemonTest, SubmitWaitQueryOverTheWire)
{
    const Baseline base = runUninterrupted("vecadd", 0);

    Client client(socket_);
    const Json submitted = Json::parse(client.requestRaw(
        "{\"op\":\"submit\",\"workload\":\"vecadd\",\"scale\":0,"
        "\"priority\":\"high\"}"));
    ASSERT_TRUE(submitted.find("ok")->asBool());
    const std::int64_t id = submitted.find("job")->asInt();

    Json::Object wait;
    wait["op"] = Json("wait");
    wait["job"] = Json(id);
    const Json reply = client.request(Json(std::move(wait)));
    ASSERT_TRUE(reply.find("ok")->asBool());
    EXPECT_EQ(reply.find("state")->asString(), "done");
    EXPECT_TRUE(reply.find("verified")->asBool());
    expectIdenticalStats(
        base.stats,
        service::kernelStatsFromJson(*reply.find("stats")),
        "stats over the wire");

    const Json status = roundTrip("{\"op\":\"status\"}");
    EXPECT_TRUE(status.find("ok")->asBool());
    EXPECT_GE(status.find("jobs")->find("completed")->asInt(), 1);
}

TEST_F(DaemonTest, MetricsOpOverTheWire)
{
    // The multi-line Prometheus text rides inside the one-line NDJSON
    // reply as a string body.
    const Json reply = roundTrip("{\"op\":\"metrics\"}");
    ASSERT_TRUE(reply.find("ok")->asBool());
    EXPECT_EQ(reply.find("op")->asString(), "metrics");
    const Json *body = reply.find("body");
    ASSERT_NE(body, nullptr);
    ASSERT_TRUE(body->isString());
    const std::string &text = body->asString();
    EXPECT_NE(text.find("# TYPE vtsim_service_jobs_submitted_total "
                        "counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("vtsim_service_queue_depth 0\n"),
              std::string::npos);

    // The scrape reflects work as it happens.
    const Json submitted = roundTrip(
        "{\"op\":\"submit\",\"workload\":\"vecadd\",\"scale\":0}");
    ASSERT_TRUE(submitted.find("ok")->asBool());
    Json::Object wait;
    wait["op"] = Json("wait");
    wait["job"] = Json(submitted.find("job")->asInt());
    roundTrip(Json(std::move(wait)).dump());
    const Json after = roundTrip("{\"op\":\"metrics\"}");
    EXPECT_NE(after.find("body")->asString().find(
                  "vtsim_service_jobs_completed_total 1\n"),
              std::string::npos);
}

} // namespace
} // namespace vtsim
