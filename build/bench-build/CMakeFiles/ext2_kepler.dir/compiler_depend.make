# Empty compiler generated dependencies file for ext2_kepler.
# This may be replaced when dependencies are built.
