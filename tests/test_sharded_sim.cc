/**
 * @file
 * The sharded (--sim-threads) epoch driver: every observable output of
 * a multi-threaded run — KernelStats, interval-series JSONL, Perfetto
 * traces, vtsim-ckpt-v1 checkpoint bytes — must be bit-identical to
 * the sequential run of the same machine and workload. Also covers
 * checkpoint/restore equivalence under sharding, the shard-oracle
 * divergence detector, and the textual-Trace sequential fallback.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "gpu/gpu.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {

/** Private-access seam declared as a friend of Gpu (see gpu.hh). */
struct GpuTestAccess
{
    static unsigned effectiveSimThreads(const Gpu &gpu)
    { return gpu.effectiveSimThreads(); }

    static std::vector<std::vector<std::uint8_t>> captureImages(Gpu &gpu)
    { return gpu.captureShardImages(); }

    static std::vector<std::uint64_t> dispatched(const Gpu &gpu)
    {
        std::vector<std::uint64_t> out;
        for (const auto &ctx : gpu.grids_)
            out.push_back(ctx.dispatcher->dispatched());
        return out;
    }

    static void verifyEpoch(Gpu &gpu,
                            const std::vector<std::vector<std::uint8_t>> &pre,
                            const std::vector<std::uint64_t> &pre_dispatched,
                            Cycle from, Cycle to)
    { gpu.verifyShardEpoch(pre, pre_dispatched, from, to); }
};

namespace {

/** Every field of KernelStats, bit for bit. */
void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &context)
{
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.warpInstructions, b.warpInstructions) << context;
    EXPECT_EQ(a.threadInstructions, b.threadInstructions) << context;
    EXPECT_EQ(a.ctasCompleted, b.ctasCompleted) << context;
    EXPECT_EQ(a.ipc, b.ipc) << context;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << context;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << context;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << context;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << context;
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << context;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << context;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << context;
    EXPECT_EQ(a.swapOuts, b.swapOuts) << context;
    EXPECT_EQ(a.swapIns, b.swapIns) << context;
    EXPECT_EQ(a.stalls.issued, b.stalls.issued) << context;
    EXPECT_EQ(a.stalls.memStall, b.stalls.memStall) << context;
    EXPECT_EQ(a.stalls.shortStall, b.stalls.shortStall) << context;
    EXPECT_EQ(a.stalls.barrierStall, b.stalls.barrierStall) << context;
    EXPECT_EQ(a.stalls.swapStall, b.stalls.swapStall) << context;
    EXPECT_EQ(a.stalls.idle, b.stalls.idle) << context;
}

/** An 8-SM machine so sim-threads up to 8 gets real shards (the 2-SM
 *  test config would clamp 4 and 8 down to 2). */
GpuConfig
shardConfig()
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.numSms = 8;
    cfg.numMemPartitions = 4;
    cfg.maxCycles = 5'000'000;
    cfg.fastForwardEnabled = true;
    return cfg;
}

KernelStats
launchOn(Gpu &gpu, const std::string &name)
{
    auto wl = makeWorkload(name, 0);
    const Kernel k = wl->buildKernel();
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(k, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    return stats;
}

std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + stem;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** One run with full telemetry: stats + interval JSONL + end ckpt. */
struct RunOutputs
{
    KernelStats stats;
    std::string series;
    std::string checkpoint;
};

RunOutputs
runInstrumented(const GpuConfig &cfg, const std::string &workload,
                unsigned sim_threads, const std::string &tag)
{
    const std::string ckpt = tempPath("sharded_" + tag);
    std::ostringstream series;
    Gpu gpu(cfg);
    gpu.setSimThreads(sim_threads);
    gpu.enableIntervalSampler(500, series);
    gpu.setCheckpoint(ckpt, 0);
    RunOutputs out;
    out.stats = launchOn(gpu, workload);
    out.series = series.str();
    out.checkpoint = readFile(ckpt);
    std::remove(ckpt.c_str());
    return out;
}

// ---------------------------------------------------------------------------
// Bit-identity: stats, interval series and checkpoint bytes for
// sim-threads {2,4,8} vs 1 across baseline/VT/throttled machines.
// ---------------------------------------------------------------------------

TEST(ShardedSim, BitIdenticalAcrossThreadCounts)
{
    GpuConfig base = shardConfig();
    GpuConfig vt = base;
    vt.vtEnabled = true;
    GpuConfig throttled = base;
    throttled.throttleEnabled = true;

    const struct
    {
        const char *tag;
        GpuConfig cfg;
        const char *workload;
    } cases[] = {
        {"baseline-vecadd", base, "vecadd"},
        {"baseline-bfs", base, "bfs"},
        {"vt-bfs", vt, "bfs"},
        {"vt-stencil", vt, "stencil"},
        {"throttle-bfs", throttled, "bfs"},
    };

    for (const auto &c : cases) {
        const RunOutputs ref =
            runInstrumented(c.cfg, c.workload, 1, std::string(c.tag) + "_1");
        EXPECT_FALSE(ref.series.empty()) << c.tag;
        for (const unsigned threads : {2u, 4u, 8u}) {
            const std::string tag =
                std::string(c.tag) + "_" + std::to_string(threads);
            const RunOutputs got =
                runInstrumented(c.cfg, c.workload, threads, tag);
            expectIdenticalStats(ref.stats, got.stats, tag);
            EXPECT_EQ(ref.series, got.series) << tag;
            EXPECT_EQ(ref.checkpoint, got.checkpoint) << tag;
        }
    }
}

// ---------------------------------------------------------------------------
// Perfetto trace: the per-shard stages must merge back into the exact
// event stream the sequential run emits.
// ---------------------------------------------------------------------------

TEST(ShardedSim, TraceJsonMatchesSequential)
{
    GpuConfig cfg = shardConfig();
    cfg.vtEnabled = true; // Swap events exercise the SM tick-phase rank.

    std::ostringstream ref;
    {
        Gpu gpu(cfg);
        gpu.enableTraceJson(ref);
        launchOn(gpu, "bfs");
    }
    EXPECT_FALSE(ref.str().empty());

    for (const unsigned threads : {2u, 4u}) {
        std::ostringstream got;
        {
            // The writer emits the JSON footer on destruction, so the
            // Gpu must die before the streams are compared.
            Gpu gpu(cfg);
            gpu.setSimThreads(threads);
            gpu.enableTraceJson(got);
            launchOn(gpu, "bfs");
        }
        EXPECT_EQ(ref.str(), got.str()) << threads << " threads";
    }
}

// ---------------------------------------------------------------------------
// Checkpoint under sharding: a mid-run checkpoint written by a sharded
// run restores and finishes bit-identically, at any thread count.
// ---------------------------------------------------------------------------

TEST(ShardedSim, CheckpointRestoreEquivalence)
{
    GpuConfig cfg = shardConfig();
    cfg.vtEnabled = true;
    const std::string mid = tempPath("sharded_mid");
    const std::string end_a = tempPath("sharded_end_a");
    const std::string end_b = tempPath("sharded_end_b");

    // Sequential uninterrupted reference with a final-state checkpoint.
    Gpu ref(cfg);
    ref.setCheckpoint(end_a, 0);
    const KernelStats stats_ref = launchOn(ref, "bfs");
    ASSERT_GT(stats_ref.cycles, 10u);

    // A sharded run writes a mid-kernel checkpoint; writing it must not
    // perturb the run.
    Gpu sharded(cfg);
    sharded.setSimThreads(4);
    sharded.setCheckpoint(mid, stats_ref.cycles / 2);
    const KernelStats stats_sharded = launchOn(sharded, "bfs");
    expectIdenticalStats(stats_ref, stats_sharded, "checkpointing-sharded");

    // Restore the sharded run's mid checkpoint and finish — once
    // sequentially, once sharded at a different thread count. Both
    // final-state checkpoints must equal the uninterrupted run's.
    const std::string end_a_bytes = readFile(end_a);
    for (const unsigned threads : {1u, 2u}) {
        auto wl = makeWorkload("bfs", 0);
        const Kernel k = wl->buildKernel();
        GlobalMemory scratch; // Teaches wl its addresses for verify().
        wl->prepare(scratch);
        Gpu r(cfg);
        r.setSimThreads(threads);
        const LaunchParams lp = r.restoreCheckpoint(mid);
        r.setCheckpoint(end_b, 0);
        const KernelStats stats_r = r.launch(k, lp);
        EXPECT_TRUE(wl->verify(r.memory())) << threads;
        expectIdenticalStats(stats_ref, stats_r,
                             "resumed-" + std::to_string(threads));
        EXPECT_EQ(end_a_bytes, readFile(end_b)) << threads << " threads";
        std::remove(end_b.c_str());
    }
    std::remove(mid.c_str());
    std::remove(end_a.c_str());
}

// ---------------------------------------------------------------------------
// Shard oracle.
// ---------------------------------------------------------------------------

TEST(ShardOracle, CleanShardedRunPasses)
{
    // With the oracle on, every epoch is re-run sequentially and every
    // component image diffed — a full launch passing is a strong check
    // that the epoch protocol loses nothing.
    GpuConfig cfg = shardConfig();
    cfg.shardOracle = true;
    GpuConfig plain = shardConfig();

    Gpu ref(plain);
    const KernelStats stats_ref = launchOn(ref, "bfs");

    Gpu gpu(cfg);
    gpu.setSimThreads(4);
    const KernelStats stats = launchOn(gpu, "bfs");
    expectIdenticalStats(stats_ref, stats, "oracle-run");
}

TEST(ShardOracle, DetectsInjectedDivergence)
{
    // Drive the verifier directly through the test seam: capture a
    // pre-image set, perturb one component behind the oracle's back,
    // and check the image diff localizes the divergence and fatals.
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    launchOn(gpu, "vecadd"); // Leaves a dispatcher + settled machine.

    const auto pre = GpuTestAccess::captureImages(gpu);
    const auto dispatched = GpuTestAccess::dispatched(gpu);

    // An empty epoch over untouched state verifies clean.
    GpuTestAccess::verifyEpoch(gpu, pre, dispatched, 5, 5);

    // Corrupt device memory: the rerun from `pre` cannot reproduce it,
    // so the oracle must flag the global-memory image.
    gpu.memory().write32(0, 0xdeadbeef);
    EXPECT_THROW(GpuTestAccess::verifyEpoch(gpu, pre, dispatched, 5, 5),
                 FatalError);
}

// ---------------------------------------------------------------------------
// Textual Trace facade: process-global sink, so sharding must fall
// back to sequential while it is enabled.
// ---------------------------------------------------------------------------

TEST(ShardedSim, TextualTraceForcesSequential)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.setSimThreads(2);
    EXPECT_EQ(GpuTestAccess::effectiveSimThreads(gpu), 2u);

    std::ostringstream os;
    Trace::instance().enable(TraceFlag::Swap, &os);
    EXPECT_EQ(GpuTestAccess::effectiveSimThreads(gpu), 1u);
    Trace::instance().disable();
    EXPECT_EQ(GpuTestAccess::effectiveSimThreads(gpu), 2u);
}

} // namespace
} // namespace vtsim
