file(REMOVE_RECURSE
  "../bench/fig7_scheduler_interaction"
  "../bench/fig7_scheduler_interaction.pdb"
  "CMakeFiles/fig7_scheduler_interaction.dir/fig7_scheduler_interaction.cc.o"
  "CMakeFiles/fig7_scheduler_interaction.dir/fig7_scheduler_interaction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scheduler_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
