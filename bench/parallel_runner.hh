/**
 * @file
 * Parallel experiment runner: fan independent simulations across a
 * fixed-size thread pool. Every simulation point is hermetic — its own
 * Workload, Kernel and Gpu state — so runs never share mutable state
 * and the results are bit-identical to a sequential run; only
 * wall-clock time depends on the job count. Each worker thread keeps
 * one Gpu arena and reuses it via Gpu::reset() while consecutive runs
 * share a config, which skips per-run construction without changing a
 * single statistic (the SimComponent reset() contract).
 *
 * Job-count resolution (first match wins):
 *   1. `--jobs N` / `--jobs=N` on the binary's command line,
 *   2. the `VTSIM_JOBS` environment variable,
 *   3. std::thread::hardware_concurrency().
 *
 * Composition with sharded simulation (`--sim-threads` /
 * `VTSIM_SIM_THREADS`, bench_common.hh): the two multiply — jobs
 * concurrent runs, each sharded across sim-threads workers. When the
 * product would oversubscribe hardware_concurrency(), VTSIM_JOBS
 * outranks VTSIM_SIM_THREADS: the job count is kept and the shard
 * count trimmed (with a stderr warning), because independent runs
 * scale near-linearly while epoch barriers cap intra-run speedup.
 * Either way results never change — sharding is bit-identical.
 *
 * Result rows keep their spec order regardless of completion order, so
 * figure output is deterministic. Telemetry (per-run sim rate, batch
 * wall clock) goes to stderr; stdout stays byte-stable for diffing.
 */

#ifndef VTSIM_BENCH_PARALLEL_RUNNER_HH
#define VTSIM_BENCH_PARALLEL_RUNNER_HH

#include <string>
#include <vector>

#include "bench_common.hh"

namespace vtsim::bench {

/** One simulation point of an experiment. */
struct RunSpec
{
    std::string workload;
    GpuConfig config;
    std::uint32_t scale = benchScale;
    /** Co-runners: when set (size > 1) the spec is one concurrent
     *  launch of these workloads (runCoRunOn) and `workload` is
     *  ignored. Grid g gets priority g. */
    std::vector<std::string> kernels;
    /** CTA-slot sharing policy of a co-run spec. */
    SharePolicy sharePolicy = SharePolicy::VtFill;
};

/** Resolve the worker count (see file comment); always >= 1. */
unsigned resolveJobs(int argc, char **argv);

/**
 * Simulate every spec, at most @p jobs concurrently, each worker on
 * its own Gpu arena. results[i] corresponds to specs[i]. Prints a batch
 * wall-clock /
 * sim-rate summary to stderr. The first worker exception is rethrown
 * on the calling thread after the pool drains. While the global
 * textual Trace sink is enabled (see trace.hh), the pool is forced to
 * one job — interleaved trace lines from concurrent Gpus would be
 * garbage.
 */
std::vector<RunResult> runAll(const std::vector<RunSpec> &specs,
                              unsigned jobs);

/**
 * The figure-binary entry point: parse the telemetry switches
 * (--stats-json / --stats-interval / --trace-json, see bench_common.hh)
 * and --jobs/VTSIM_JOBS from @p argv, run every spec, and write the
 * stats JSON when requested.
 */
std::vector<RunResult> runAll(const std::vector<RunSpec> &specs,
                              int argc, char **argv);

/**
 * Write the batch as "vtsim-stats-v1" JSON: a batch header (host,
 * wall_ms = @p batchWallSeconds, sim-threads/exec-mode switches and
 * the aggregate [sim-rate] numbers), then one entry per run with the
 * workload, a config digest, verification flag, sim-rate numbers, the
 * full KernelStats and the interval series (when sampled). Pass 0 for
 * @p batchWallSeconds to fall back to the sum of per-run wall times.
 */
void writeStatsJson(const std::string &path,
                    const std::vector<RunSpec> &specs,
                    const std::vector<RunResult> &results,
                    double batchWallSeconds = 0.0);

} // namespace vtsim::bench

#endif // VTSIM_BENCH_PARALLEL_RUNNER_HH
