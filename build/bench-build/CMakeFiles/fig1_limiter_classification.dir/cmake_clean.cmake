file(REMOVE_RECURSE
  "../bench/fig1_limiter_classification"
  "../bench/fig1_limiter_classification.pdb"
  "CMakeFiles/fig1_limiter_classification.dir/fig1_limiter_classification.cc.o"
  "CMakeFiles/fig1_limiter_classification.dir/fig1_limiter_classification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_limiter_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
