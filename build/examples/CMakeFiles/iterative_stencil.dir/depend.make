# Empty dependencies file for iterative_stencil.
# This may be replaced when dependencies are built.
