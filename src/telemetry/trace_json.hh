/**
 * @file
 * Perfetto / Chrome trace-event exporter (the `trace.json` format
 * consumed by ui.perfetto.dev and chrome://tracing).
 *
 * The writer maps the simulator onto the trace-event process/thread
 * model: each SM is a "process" (pid = SM id) whose "threads" are HW
 * CTA slots, and each DRAM channel is a process (pid = numSms +
 * channel) whose threads are banks. Virtual Thread residency becomes
 * nested duration events per slot — "active", "inactive", "swap-out",
 * "swap-in" — so the VT state machine is directly visible on the
 * timeline; barrier releases, CTA admission/finish and DRAM row
 * hits/misses are instant events. Timestamps are simulated cycles
 * reported as microseconds (1 cycle == 1 us), so the Perfetto time axis
 * reads directly in cycles.
 *
 * Unlike the textual Trace facade (a process-global singleton, see
 * common/trace.hh), a TraceJsonWriter is per-Gpu state plumbed to
 * components by pointer — hermetic per-job Gpus on the parallel
 * runner's thread pool can each carry their own writer safely.
 */

#ifndef VTSIM_TELEMETRY_TRACE_JSON_HH
#define VTSIM_TELEMETRY_TRACE_JSON_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "common/types.hh"

namespace vtsim::telemetry {

class TraceJsonWriter
{
  public:
    /** Write to @p path (opened now, footer written on destruction). */
    explicit TraceJsonWriter(const std::string &path);

    /** Write to an existing stream (not owned). */
    explicit TraceJsonWriter(std::ostream &os);

    ~TraceJsonWriter();
    TraceJsonWriter(const TraceJsonWriter &) = delete;
    TraceJsonWriter &operator=(const TraceJsonWriter &) = delete;

    /** Emit the closing bracket; further events are dropped. */
    void close();

    /** Name the track-model process @p pid (metadata event). */
    void processName(std::uint32_t pid, const std::string &name);

    /** Name thread @p tid of process @p pid (metadata event). */
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name);

    /** Open a duration event ("B"). Nest strictly within the track. */
    void begin(std::uint32_t pid, std::uint32_t tid, Cycle cycle,
               const std::string &name, const std::string &category);

    /** Close the innermost open duration event ("E"). */
    void end(std::uint32_t pid, std::uint32_t tid, Cycle cycle);

    /** Zero-duration marker ("i", thread scope). */
    void instant(std::uint32_t pid, std::uint32_t tid, Cycle cycle,
                 const std::string &name, const std::string &category);

    /** Counter track sample ("C"). */
    void counter(std::uint32_t pid, Cycle cycle, const std::string &name,
                 std::uint64_t value);

  private:
    void event(const std::string &json);

    std::unique_ptr<std::ofstream> file_;
    std::ostream *os_ = nullptr;
    bool open_ = false;
    bool firstEvent_ = true;
};

} // namespace vtsim::telemetry

#endif // VTSIM_TELEMETRY_TRACE_JSON_HH
