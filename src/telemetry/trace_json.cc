#include "telemetry/trace_json.hh"

#include "common/log.hh"

namespace vtsim::telemetry {

TraceJsonWriter::TraceJsonWriter(const std::string &path)
    : file_(std::make_unique<std::ofstream>(path))
{
    if (!*file_)
        VTSIM_FATAL("cannot open trace file '", path, "'");
    os_ = file_.get();
    *os_ << "{\"traceEvents\":[\n";
    open_ = true;
}

TraceJsonWriter::TraceJsonWriter(std::ostream &os) : os_(&os)
{
    *os_ << "{\"traceEvents\":[\n";
    open_ = true;
}

TraceJsonWriter::~TraceJsonWriter()
{
    close();
}

void
TraceJsonWriter::close()
{
    if (!open_)
        return;
    *os_ << "\n]}\n";
    os_->flush();
    open_ = false;
}

void
TraceJsonWriter::event(const std::string &json)
{
    if (!open_)
        return;
    if (!firstEvent_)
        *os_ << ",\n";
    firstEvent_ = false;
    *os_ << json;
}

void
TraceJsonWriter::processName(std::uint32_t pid, const std::string &name)
{
    event("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
          std::to_string(pid) +
          ",\"args\":{\"name\":\"" + name + "\"}}");
}

void
TraceJsonWriter::threadName(std::uint32_t pid, std::uint32_t tid,
                            const std::string &name)
{
    event("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
          std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
          ",\"args\":{\"name\":\"" + name + "\"}}");
}

void
TraceJsonWriter::begin(std::uint32_t pid, std::uint32_t tid, Cycle cycle,
                       const std::string &name,
                       const std::string &category)
{
    event("{\"ph\":\"B\",\"pid\":" + std::to_string(pid) +
          ",\"tid\":" + std::to_string(tid) +
          ",\"ts\":" + std::to_string(cycle) +
          ",\"name\":\"" + name + "\",\"cat\":\"" + category + "\"}");
}

void
TraceJsonWriter::end(std::uint32_t pid, std::uint32_t tid, Cycle cycle)
{
    event("{\"ph\":\"E\",\"pid\":" + std::to_string(pid) +
          ",\"tid\":" + std::to_string(tid) +
          ",\"ts\":" + std::to_string(cycle) + "}");
}

void
TraceJsonWriter::instant(std::uint32_t pid, std::uint32_t tid, Cycle cycle,
                         const std::string &name,
                         const std::string &category)
{
    event("{\"ph\":\"i\",\"s\":\"t\",\"pid\":" + std::to_string(pid) +
          ",\"tid\":" + std::to_string(tid) +
          ",\"ts\":" + std::to_string(cycle) +
          ",\"name\":\"" + name + "\",\"cat\":\"" + category + "\"}");
}

void
TraceJsonWriter::counter(std::uint32_t pid, Cycle cycle,
                         const std::string &name, std::uint64_t value)
{
    event("{\"ph\":\"C\",\"pid\":" + std::to_string(pid) +
          ",\"tid\":0,\"ts\":" + std::to_string(cycle) +
          ",\"name\":\"" + name + "\",\"args\":{\"value\":" +
          std::to_string(value) + "}}");
}

void
TraceStage::replay(const Event &e, TraceJsonWriter &sink)
{
    switch (e.kind) {
      case 0: sink.begin(e.pid, e.tid, e.cycle, e.name, e.cat); break;
      case 1: sink.end(e.pid, e.tid, e.cycle); break;
      case 2: sink.instant(e.pid, e.tid, e.cycle, e.name, e.cat); break;
      case 3: sink.counter(e.pid, e.cycle, e.name, e.value); break;
      default: VTSIM_FATAL("corrupt staged trace event kind ",
                           unsigned(e.kind));
    }
}

} // namespace vtsim::telemetry
