# Empty dependencies file for ext3_energy.
# This may be replaced when dependencies are built.
