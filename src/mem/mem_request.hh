/**
 * @file
 * The memory transaction type that flows between the SM's LDST unit, the
 * caches, the interconnect and DRAM.
 */

#ifndef VTSIM_MEM_MEM_REQUEST_HH
#define VTSIM_MEM_MEM_REQUEST_HH

#include <cstdint>

#include "common/types.hh"

namespace vtsim {

/**
 * Receiver of memory responses. The SM-side LDST unit implements this; a
 * request carries a (sink, token) pair so the response can be routed back
 * without the memory system knowing anything about warps.
 */
class MemResponseSink
{
  public:
    virtual ~MemResponseSink() = default;

    /** Called when the transaction identified by @p token completes at
     *  cycle @p now. */
    virtual void memResponse(std::uint64_t token, Cycle now) = 0;
};

/** Kind of global-memory transaction. */
enum class MemAccessKind : std::uint8_t
{
    Load,   ///< Read that fills caches and unblocks a register.
    Store,  ///< Write-through; fire-and-forget from the warp's view.
    Atomic, ///< Read-modify-write performed at the L2; bypasses L1.
};

/** One line-granular memory transaction. */
struct MemRequest
{
    Addr lineAddr = 0;           ///< Line-aligned byte address.
    std::uint32_t bytes = 0;     ///< Payload size (for DRAM bandwidth).
    MemAccessKind kind = MemAccessKind::Load;
    SmId srcSm = 0;
    MemResponseSink *sink = nullptr; ///< Null for stores (no response).
    std::uint64_t token = 0;
};

} // namespace vtsim

#endif // VTSIM_MEM_MEM_REQUEST_HH
