/**
 * @file
 * Fundamental scalar types and constants shared by every vtsim module.
 */

#ifndef VTSIM_COMMON_TYPES_HH
#define VTSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace vtsim {

/** Byte address in the simulated global memory space. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Program counter: index of an instruction within a kernel. */
using Pc = std::uint32_t;

/** Architectural register index within a thread's register window. */
using RegIndex = std::uint16_t;

/** Identifier types. Plain integers, but named for readability. */
using SmId = std::uint32_t;
using WarpSlotId = std::uint32_t;
using CtaSlotId = std::uint32_t;
using VirtualCtaId = std::uint32_t;

/** Number of SIMT lanes per warp. Fixed at 32 as on NVIDIA hardware. */
inline constexpr std::uint32_t warpSize = 32;

/**
 * Index of a resident grid within a concurrent launch
 * (Gpu::launchConcurrent). Solo launches are grid 0.
 */
using GridId = std::uint32_t;

/** Maximum number of co-resident grids. Per-grid statistic counters are
 *  sized (and registered) for this many grids up front, so probe layout
 *  never depends on how many kernels a particular launch carries. */
inline constexpr std::uint32_t maxGrids = 4;

/** Sentinel for "no PC" / kernel exit. */
inline constexpr Pc invalidPc = std::numeric_limits<Pc>::max();

/** Sentinel identifier. */
inline constexpr std::uint32_t invalidId =
    std::numeric_limits<std::uint32_t>::max();

/** Sentinel cycle meaning "never". */
inline constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/**
 * Three-dimensional extent used for grid and CTA shapes.
 *
 * Mirrors CUDA's dim3: unspecified components default to 1.
 */
struct Dim3
{
    std::uint32_t x = 1;
    std::uint32_t y = 1;
    std::uint32_t z = 1;

    constexpr Dim3() = default;
    constexpr Dim3(std::uint32_t xx, std::uint32_t yy = 1,
                   std::uint32_t zz = 1)
        : x(xx), y(yy), z(zz)
    {}

    /** Total number of elements in the box. */
    constexpr std::uint64_t
    count() const
    {
        return std::uint64_t(x) * y * z;
    }

    constexpr bool
    operator==(const Dim3 &other) const
    {
        return x == other.x && y == other.y && z == other.z;
    }
};

/** Round @p value up to the next multiple of @p align (align > 0). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) / align * align;
}

/** Integer ceiling division. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** True when @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2 for a nonzero value. */
constexpr std::uint32_t
floorLog2(std::uint64_t value)
{
    std::uint32_t result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

} // namespace vtsim

#endif // VTSIM_COMMON_TYPES_HH
