file(REMOVE_RECURSE
  "CMakeFiles/vasm_run.dir/vasm_run.cc.o"
  "CMakeFiles/vasm_run.dir/vasm_run.cc.o.d"
  "vasm_run"
  "vasm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
