/**
 * @file
 * Telemetry subsystem tests: the stat registry must reproduce the
 * KernelStats the components report through their own getters, the
 * interval sampler's JSONL series must be bit-identical with fast-
 * forward on and off (sampling is a measurement, not a perturbation),
 * and the Perfetto trace export must be valid JSON whose duration
 * events nest per (pid, tid) track.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "gpu/gpu.hh"
#include "telemetry/stat_registry.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

using test::smallConfig;
using test::smallVtConfig;

/**
 * Minimal JSON syntax checker — accepts exactly one value spanning the
 * whole input. Good enough to prove the trace export is well-formed
 * without dragging a JSON library into the test suite.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return i_ == s_.size();
    }

  private:
    bool value()
    {
        if (i_ >= s_.size())
            return false;
        switch (s_[i_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++i_; // '{'
        skipWs();
        if (peek() == '}') { ++i_; return true; }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++i_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++i_; continue; }
            if (peek() == '}') { ++i_; return true; }
            return false;
        }
    }

    bool array()
    {
        ++i_; // '['
        skipWs();
        if (peek() == ']') { ++i_; return true; }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++i_; continue; }
            if (peek() == ']') { ++i_; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        for (++i_; i_ < s_.size(); ++i_) {
            if (s_[i_] == '\\') { ++i_; continue; }
            if (s_[i_] == '"') { ++i_; return true; }
        }
        return false;
    }

    bool number()
    {
        const std::size_t start = i_;
        if (peek() == '-')
            ++i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                s_[i_] == '+' || s_[i_] == '-')) {
            ++i_;
        }
        return i_ > start;
    }

    bool literal(const std::string &word)
    {
        if (s_.compare(i_, word.size(), word) != 0)
            return false;
        i_ += word.size();
        return true;
    }

    char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

    void skipWs()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' ||
                s_[i_] == '\r')) {
            ++i_;
        }
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

/** The raw text of the field @p key on the single-event line @p line
 *  ("" when absent; quotes stripped from string values). */
std::string
field(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return "";
    auto start = pos + needle.size();
    if (start < line.size() && line[start] == '"') {
        const auto end = line.find('"', start + 1);
        return line.substr(start + 1, end - start - 1);
    }
    const auto end = line.find_first_of(",}", start);
    return line.substr(start, end - start);
}

bool
hasScalar(const telemetry::StatRegistry &registry, const std::string &path)
{
    for (const auto &probe : registry.scalars()) {
        if (probe.path == path)
            return true;
    }
    return false;
}

/** Run @p name, returning the stats; @p gpu is caller-provided so the
 *  test can inspect component getters and telemetry afterwards. */
KernelStats
launchOn(Gpu &gpu, const std::string &name)
{
    auto wl = makeWorkload(name, 0);
    const Kernel k = wl->buildKernel();
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(k, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    return stats;
}

TEST(StatRegistry, ExposesComponentGroupPaths)
{
    Gpu gpu(smallVtConfig());
    const telemetry::StatRegistry &reg = gpu.telemetryRegistry();

    for (const auto *path : {"sm0.instructions", "sm0.thread_instructions",
                             "sm0.ctas_completed", "sm0.issue.issued",
                             "sm0.issue.bubbles.mem", "sm1.issue.bubbles.idle",
                             "sm0.vt.swap_outs", "sm1.vt.swap_ins",
                             "sm0.l1d.hits", "sm1.l1d.misses",
                             "l2_0.hits", "l2_1.misses", "dram_0.row_hits",
                             "dram_1.bytes", "noc.req_flits"}) {
        EXPECT_TRUE(hasScalar(reg, path)) << path;
    }

    // Every KernelStats-feeding role is wired once per SM (or per
    // partition for the memory-side roles) at the aggregate level;
    // roles with a per-grid split add one probe per grid slot on top.
    std::map<telemetry::KernelStatRole, unsigned> role_counts;
    std::map<telemetry::KernelStatRole, unsigned> grid_counts;
    for (const auto &probe : reg.scalars()) {
        if (probe.grid < 0)
            ++role_counts[probe.role];
        else
            ++grid_counts[probe.role];
    }
    EXPECT_EQ(role_counts[telemetry::KernelStatRole::WarpInstructions],
              gpu.numSms());
    EXPECT_EQ(role_counts[telemetry::KernelStatRole::StallMem],
              gpu.numSms());
    EXPECT_EQ(role_counts[telemetry::KernelStatRole::SwapOuts],
              gpu.numSms());
    EXPECT_EQ(role_counts[telemetry::KernelStatRole::L2Hits], 2u);
    EXPECT_EQ(role_counts[telemetry::KernelStatRole::DramBytes], 2u);
    EXPECT_EQ(grid_counts[telemetry::KernelStatRole::WarpInstructions],
              gpu.numSms() * maxGrids);
    EXPECT_EQ(grid_counts[telemetry::KernelStatRole::StallMem], 0u);
    EXPECT_EQ(grid_counts[telemetry::KernelStatRole::L2Hits],
              2u * maxGrids);
}

TEST(StatRegistry, KernelStatsMatchComponentGetters)
{
    for (const auto &name : {"vecadd", "bfs"}) {
        // A fresh Gpu makes the launch delta equal the cumulative
        // counters the component getters expose.
        Gpu gpu(smallVtConfig());
        const KernelStats stats = launchOn(gpu, name);

        KernelStats byHand;
        for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
            SmCore &sm = gpu.sm(i);
            byHand.warpInstructions += sm.instructionsIssued();
            byHand.threadInstructions += sm.threadInstructions();
            byHand.ctasCompleted += sm.ctasCompleted();
            byHand.l1Hits += sm.ldst().l1().hits();
            byHand.l1Misses += sm.ldst().l1().misses();
            byHand.swapOuts += sm.vt().swapOuts();
            byHand.swapIns += sm.vt().swapIns();
            const StallBreakdown &st = sm.stallBreakdown();
            byHand.stalls.issued += st.issued;
            byHand.stalls.memStall += st.memStall;
            byHand.stalls.shortStall += st.shortStall;
            byHand.stalls.barrierStall += st.barrierStall;
            byHand.stalls.swapStall += st.swapStall;
            byHand.stalls.idle += st.idle;
        }
        for (std::uint32_t p = 0; p < 2; ++p) {
            MemoryPartition &part = gpu.partition(p);
            byHand.l2Hits += part.l2().hits();
            byHand.l2Misses += part.l2().misses();
            byHand.dramRowHits += part.dram().rowHits();
            byHand.dramRowMisses += part.dram().rowMisses();
            byHand.dramBytes += part.dram().bytesTransferred();
        }

        EXPECT_EQ(stats.warpInstructions, byHand.warpInstructions) << name;
        EXPECT_EQ(stats.threadInstructions, byHand.threadInstructions)
            << name;
        EXPECT_EQ(stats.ctasCompleted, byHand.ctasCompleted) << name;
        EXPECT_EQ(stats.l1Hits, byHand.l1Hits) << name;
        EXPECT_EQ(stats.l1Misses, byHand.l1Misses) << name;
        EXPECT_EQ(stats.l2Hits, byHand.l2Hits) << name;
        EXPECT_EQ(stats.l2Misses, byHand.l2Misses) << name;
        EXPECT_EQ(stats.dramRowHits, byHand.dramRowHits) << name;
        EXPECT_EQ(stats.dramRowMisses, byHand.dramRowMisses) << name;
        EXPECT_EQ(stats.dramBytes, byHand.dramBytes) << name;
        EXPECT_EQ(stats.swapOuts, byHand.swapOuts) << name;
        EXPECT_EQ(stats.swapIns, byHand.swapIns) << name;
        EXPECT_EQ(stats.stalls.issued, byHand.stalls.issued) << name;
        EXPECT_EQ(stats.stalls.memStall, byHand.stalls.memStall) << name;
        EXPECT_EQ(stats.stalls.shortStall, byHand.stalls.shortStall)
            << name;
        EXPECT_EQ(stats.stalls.barrierStall, byHand.stalls.barrierStall)
            << name;
        EXPECT_EQ(stats.stalls.swapStall, byHand.stalls.swapStall) << name;
        EXPECT_EQ(stats.stalls.idle, byHand.stalls.idle) << name;
    }
}

TEST(IntervalSampler, SeriesBitIdenticalAcrossFastForward)
{
    Cycle total_skipped = 0;
    for (const auto &name : {"vecadd", "bfs"}) {
        std::string series[2];
        KernelStats stats[2];
        for (int ff = 0; ff < 2; ++ff) {
            GpuConfig cfg = smallVtConfig();
            cfg.fastForwardEnabled = ff == 1;
            Gpu gpu(cfg);
            std::ostringstream os;
            gpu.enableIntervalSampler(500, os);
            stats[ff] = launchOn(gpu, name);
            series[ff] = os.str();
            if (ff == 1)
                total_skipped += gpu.fastForwardedCycles();
        }
        ASSERT_FALSE(series[0].empty()) << name;
        EXPECT_NE(series[0].find("\"sample\":0"), std::string::npos)
            << name;
        EXPECT_EQ(series[0], series[1]) << name;
        EXPECT_EQ(stats[0].cycles, stats[1].cycles) << name;
        // Every JSONL line is itself valid JSON.
        std::istringstream lines(series[0]);
        std::string line;
        while (std::getline(lines, line)) {
            JsonChecker checker(line);
            EXPECT_TRUE(checker.valid()) << name << ": " << line;
        }
    }
    // The comparison is vacuous unless fast-forward actually skipped
    // cycles while the sampler was attached.
    EXPECT_GT(total_skipped, 0u);
}

TEST(TraceJson, ParsesAndDurationEventsNest)
{
    std::ostringstream os;
    {
        Gpu gpu(smallVtConfig());
        gpu.enableTraceJson(os);
        launchOn(gpu, "bfs");
    } // Gpu destruction closes the writer (writes the JSON footer).
    const std::string text = os.str();

    JsonChecker checker(text);
    EXPECT_TRUE(checker.valid());

    // One event per line: header line, then "<json>," lines, then "]}".
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::vector<std::string>> open_spans;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
        last_ts;
    unsigned begins = 0;
    unsigned ends = 0;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        const std::string ph = field(line, "ph");
        if (ph.empty() || ph == "M")
            continue;
        const auto key = std::make_pair(
            std::stoull(field(line, "pid")),
            std::stoull(field(line, "tid")));
        const std::uint64_t ts = std::stoull(field(line, "ts"));
        auto it = last_ts.find(key);
        if (it != last_ts.end()) {
            EXPECT_LE(it->second, ts) << line;
        }
        last_ts[key] = ts;
        if (ph == "B") {
            ++begins;
            open_spans[key].push_back(field(line, "name"));
        } else if (ph == "E") {
            ++ends;
            ASSERT_FALSE(open_spans[key].empty())
                << "E without matching B: " << line;
            open_spans[key].pop_back();
        }
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);
    for (const auto &[key, stack] : open_spans) {
        EXPECT_TRUE(stack.empty())
            << "unclosed span on pid " << key.first << " tid "
            << key.second;
    }
}

TEST(SimProfiler, AttributesRunTimeWithoutPerturbingStats)
{
    KernelStats stats[2];
    double attributed = 0.0;
    for (int prof = 0; prof < 2; ++prof) {
        Gpu gpu(smallVtConfig());
        if (prof)
            gpu.enableProfiler();
        stats[prof] = launchOn(gpu, "bfs");
        if (!prof)
            continue;
        const telemetry::SimProfiler *p = gpu.profiler();
        ASSERT_NE(p, nullptr);
        // Fast-forward skips loop bodies, so executed <= simulated.
        EXPECT_GT(p->executedCycles(), 0u);
        EXPECT_LE(p->executedCycles(), stats[1].cycles);
        EXPECT_GT(p->sampledCycles(), 0u);
        EXPECT_LE(p->sampledCycles(), p->executedCycles());
        const auto report = p->report();
        ASSERT_FALSE(report.empty());
        bool sawSmTick = false;
        for (const auto &r : report) {
            EXPECT_GE(r.seconds, 0.0) << r.name;
            EXPECT_GT(r.calls, 0u) << r.name;
            sawSmTick |= std::string(r.name) == "sm_tick";
        }
        EXPECT_TRUE(sawSmTick);
        EXPECT_GT(p->runSeconds(), 0.0);
        attributed = p->attributedSeconds();
        EXPECT_GT(attributed, 0.0);
        // The raw buckets ride the standard registry machinery.
        bool found = false;
        for (const auto &probe : p->registry().scalars())
            found |= probe.path == "profiler.sm_tick_ns";
        EXPECT_TRUE(found);
    }
    // The profiler only reads the clock: identical simulation either
    // way. (Attribution *accuracy* is asserted statistically over the
    // whole fig3 suite by scripts/bench_profile.py, not per tiny run.)
    EXPECT_EQ(stats[0].cycles, stats[1].cycles);
    EXPECT_EQ(stats[0].warpInstructions, stats[1].warpInstructions);
    EXPECT_EQ(stats[0].l2Misses, stats[1].l2Misses);
    EXPECT_EQ(stats[0].dramBytes, stats[1].dramBytes);
    EXPECT_EQ(stats[0].swapOuts, stats[1].swapOuts);
    EXPECT_EQ(stats[0].stalls.memStall, stats[1].stalls.memStall);
}

TEST(TelemetryArgs, ParsesEverySwitchForm)
{
    const char *argv[] = {"bin", "--stats-json", "a.json",
                          "--stats-interval=500", "--trace-json=t.json",
                          "--profile-json=p.json", "--jobs", "4"};
    const bench::TelemetryOptions opts = bench::parseTelemetryArgs(
        8, const_cast<char **>(argv));
    EXPECT_EQ(opts.statsJsonPath, "a.json");
    EXPECT_EQ(opts.statsInterval, 500u);
    EXPECT_EQ(opts.traceJsonPath, "t.json");
    EXPECT_EQ(opts.profileJsonPath, "p.json");

    const char *argv2[] = {"bin", "--stats-interval", "64",
                           "--trace-json", "out.json"};
    const bench::TelemetryOptions opts2 = bench::parseTelemetryArgs(
        5, const_cast<char **>(argv2));
    EXPECT_TRUE(opts2.statsJsonPath.empty());
    EXPECT_EQ(opts2.statsInterval, 64u);
    EXPECT_EQ(opts2.traceJsonPath, "out.json");
}

TEST(TelemetryArgs, IndexedPathInsertsRunIndex)
{
    EXPECT_EQ(bench::indexedPath("out/trace.json", 0), "out/trace.json");
    EXPECT_EQ(bench::indexedPath("out/trace.json", 3), "out/trace.3.json");
    EXPECT_EQ(bench::indexedPath("trace", 2), "trace.2");
    EXPECT_EQ(bench::indexedPath("a.b/trace", 1), "a.b/trace.1");
}

} // namespace
} // namespace vtsim
