#include "gpu/gpu.hh"

#include <algorithm>
#include <cstring>
#include <iostream>
#include <iterator>
#include <queue>
#include <thread>
#include <tuple>
#include <utility>

#include "common/log.hh"
#include "common/trace.hh"
#include "config/sim_mode.hh"
#include "isa/assembler.hh"

namespace vtsim {

namespace {

/**
 * GpuConfig goes into the "conf" section field by field: the struct
 * mixes bools and doubles with wider fields, so a raw-byte copy would
 * leak indeterminate padding into the checkpoint and break
 * byte-determinism. The sizeof tripwire forces this list to be updated
 * whenever a field is added (vtsim targets one LP64 toolchain, so the
 * value is stable).
 */
static_assert(sizeof(GpuConfig) == 240,
              "GpuConfig changed — update saveConfig()/restoreConfig()");

template <typename Archive, typename Config>
void
configFields(Archive &&field, Config &cfg)
{
    field(cfg.numSms);
    field(cfg.numMemPartitions);
    field(cfg.maxWarpsPerSm);
    field(cfg.maxCtasPerSm);
    field(cfg.maxThreadsPerSm);
    field(cfg.registersPerSm);
    field(cfg.sharedMemPerSm);
    field(cfg.sharedMemBanks);
    field(cfg.regAllocGranularity);
    field(cfg.sharedAllocGranularity);
    field(cfg.numSchedulers);
    field(cfg.issueWidth);
    field(cfg.schedulerPolicy);
    field(cfg.aluLatency);
    field(cfg.sfuLatency);
    field(cfg.aluThroughputPerSm);
    field(cfg.sfuThroughputPerSm);
    field(cfg.ldstThroughputPerSm);
    field(cfg.l1Size);
    field(cfg.l1Assoc);
    field(cfg.l1LineSize);
    field(cfg.l1Mshrs);
    field(cfg.l1MshrTargets);
    field(cfg.l1HitLatency);
    field(cfg.l1BypassGlobalLoads);
    field(cfg.sharedMemLatency);
    field(cfg.nocLatency);
    field(cfg.nocFlitsPerCycle);
    field(cfg.l2SlicePerPartition);
    field(cfg.l2Assoc);
    field(cfg.l2LineSize);
    field(cfg.l2Mshrs);
    field(cfg.l2MshrTargets);
    field(cfg.l2HitLatency);
    field(cfg.l2PortsPerCycle);
    field(cfg.l2WriteBack);
    field(cfg.dramBanksPerPartition);
    field(cfg.dramRowBufferSize);
    field(cfg.dramRowHitLatency);
    field(cfg.dramRowMissLatency);
    field(cfg.dramBytesPerCycle);
    field(cfg.dramSchedWindow);
    field(cfg.vtEnabled);
    field(cfg.vtMaxVirtualCtasPerSm);
    field(cfg.vtSwapOutLatency);
    field(cfg.vtSwapInLatency);
    field(cfg.vtSwapTrigger);
    field(cfg.vtSwapInPolicy);
    field(cfg.vtStallThreshold);
    field(cfg.schedLimitMultiplier);
    field(cfg.throttleEnabled);
    field(cfg.throttleEpochCycles);
    field(cfg.throttleHighWater);
    field(cfg.throttleLowWater);
    field(cfg.maxCycles);
    field(cfg.fastForwardEnabled);
    field(cfg.incrementalReadySets);
    field(cfg.readySetOracle);
    field(cfg.horizonOracle);
    field(cfg.shardOracle);
    field(cfg.microcodeEnabled);
    field(cfg.microOracle);
}

void
saveConfig(Serializer &ser, const GpuConfig &cfg)
{
    configFields(
        [&ser](const auto &f) {
            using F = std::decay_t<decltype(f)>;
            if constexpr (std::is_same_v<F, bool>)
                ser.put<std::uint8_t>(f);
            else if constexpr (std::is_enum_v<F>)
                ser.put<std::uint32_t>(static_cast<std::uint32_t>(f));
            else
                ser.put(f);
        },
        cfg);
}

GpuConfig
restoreConfig(Deserializer &des)
{
    GpuConfig cfg;
    configFields(
        [&des](auto &f) {
            using F = std::decay_t<decltype(f)>;
            if constexpr (std::is_same_v<F, bool>)
                f = des.get<std::uint8_t>() != 0;
            else if constexpr (std::is_enum_v<F>)
                f = static_cast<F>(des.get<std::uint32_t>());
            else
                des.get(f);
        },
        cfg);
    return cfg;
}

} // namespace

std::string
toString(SharePolicy policy)
{
    switch (policy) {
      case SharePolicy::Spatial:
        return "spatial";
      case SharePolicy::VtFill:
        return "vt-fill";
      case SharePolicy::Preempt:
        return "preempt";
    }
    return "unknown";
}

bool
parseSharePolicy(const std::string &name, SharePolicy &out)
{
    if (name == "spatial")
        out = SharePolicy::Spatial;
    else if (name == "vt-fill")
        out = SharePolicy::VtFill;
    else if (name == "preempt")
        out = SharePolicy::Preempt;
    else
        return false;
    return true;
}

Gpu::Gpu(const GpuConfig &config)
    : config_(config),
      noc_(NocParams{config.nocLatency, config.nocFlitsPerCycle,
                     config.numSms, config.numMemPartitions,
                     config.fastForwardEnabled})
{
    config_.validate();
    for (std::uint32_t p = 0; p < config_.numMemPartitions; ++p) {
        partitions_.push_back(
            std::make_unique<MemoryPartition>(p, config_, noc_));
    }
    for (std::uint32_t s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<SmCore>(s, config_, noc_));

    noc_.setRequestSink([this](const MemRequest &req, Cycle now) {
        partitions_[partitionOf(req.lineAddr)]->receive(req, now);
    });
    noc_.setResponseSink([](const MemRequest &req, Cycle now) {
        VTSIM_ASSERT(req.sink, "response with no sink");
        req.sink->memResponse(req.token, now);
    });
    noc_.setRouter([this](Addr line_addr) { return partitionOf(line_addr); });

    // Register the timed components with the central horizon. The order
    // is also the settle/reset/save order, so it must be deterministic.
    horizon_.add(&noc_);
    for (auto &p : partitions_)
        horizon_.add(p.get());
    for (auto &sm : sms_)
        horizon_.add(sm.get());

    // Scheduled wakeups the clock must not jump past: interval-sampler
    // boundaries and checkpoint boundaries. Both read through `this`
    // so enabling either later needs no re-registration.
    horizon_.addConstraint(
        [](void *ctx, Cycle) -> Cycle {
            const auto *gpu = static_cast<const Gpu *>(ctx);
            return gpu->sampler_ ? gpu->sampler_->nextSampleAt()
                                 : neverCycle;
        },
        this);
    horizon_.addConstraint(
        [](void *ctx, Cycle now) -> Cycle {
            const auto *gpu = static_cast<const Gpu *>(ctx);
            if (gpu->checkpointEvery_ == 0)
                return neverCycle;
            return (now / gpu->checkpointEvery_ + 1) * gpu->checkpointEvery_;
        },
        this);
    // Preempt-policy boundary decisions are scheduled wakeups too:
    // fast-forward jumps must land exactly on them so the blocked-grid
    // state changes at the same cycle with fast-forward on or off.
    horizon_.addConstraint(
        [](void *ctx, Cycle now) -> Cycle {
            const auto *gpu = static_cast<const Gpu *>(ctx);
            if (!gpu->preemptActive())
                return neverCycle;
            return (now / preemptBoundaryCycles_ + 1) *
                   preemptBoundaryCycles_;
        },
        this);

    // Flatten every component's stats into the telemetry registry.
    // Components have finished registering with their groups by now.
    for (auto &sm : sms_)
        sm->registerTelemetry(registry_);
    for (auto &p : partitions_)
        p->registerTelemetry(registry_);
    registry_.addGroup(noc_.stats());
}

void
Gpu::enableIntervalSampler(Cycle interval, std::ostream &os)
{
    sampler_ = std::make_unique<telemetry::IntervalSampler>(registry_,
                                                            interval, os);
}

void
Gpu::enableIntervalSampler(Cycle interval, const std::string &path)
{
    samplerFile_ = std::make_unique<std::ofstream>(path);
    if (!*samplerFile_)
        VTSIM_FATAL("cannot open stats-interval file '", path, "'");
    enableIntervalSampler(interval, *samplerFile_);
}

void
Gpu::enableTraceJson(const std::string &path)
{
    traceJson_ = std::make_unique<telemetry::TraceJsonWriter>(path);
    attachTraceJson();
}

void
Gpu::enableTraceJson(std::ostream &os)
{
    traceJson_ = std::make_unique<telemetry::TraceJsonWriter>(os);
    attachTraceJson();
}

void
Gpu::enableProfiler()
{
    profiler_ = std::make_unique<telemetry::SimProfiler>();
}

void
Gpu::attachTraceJson()
{
    for (auto &sm : sms_) {
        traceJson_->processName(sm->id(),
                                "sm" + std::to_string(sm->id()));
        sm->setTraceJson(traceJson_.get());
    }
    for (std::uint32_t p = 0; p < partitions_.size(); ++p) {
        const std::uint32_t pid = numSms() + p;
        traceJson_->processName(pid, "dram_" + std::to_string(p));
        partitions_[p]->setTraceJson(traceJson_.get(), pid);
    }
}

void
Gpu::setCheckpoint(const std::string &path, Cycle every_n)
{
    checkpointPath_ = path;
    checkpointEvery_ = every_n;
}

void
Gpu::reset()
{
    horizon_.resetAll();
    gmem_.reset();
    cycle_ = 0;

    grids_.clear();
    sharePolicy_ = SharePolicy::VtFill;
    priorityOrder_.clear();
    gridBase_.fill(0);
    lastBoundaryCompleted_.fill(0);
    gridStats_.clear();
    before_ = StatsSnapshot{};
    launchStart_ = 0;
    pendingResume_ = false;
    checkpointPath_.clear();
    checkpointEvery_ = 0;
    preemptRequested_.store(false, std::memory_order_relaxed);
    preempted_ = false;
    simMode_ = SimMode::Functional;
    recordTracePath_.clear();
    if (mtraceWriter_) {
        for (auto &sm : sms_)
            sm->setMtrace(nullptr);
        mtraceWriter_.reset();
    }
    mtraceReader_.reset();

    // Telemetry sinks are per-run wiring, not simulated state: drop
    // them and detach the raw pointers the components hold.
    sampler_.reset();
    samplerFile_.reset();
    profiler_.reset();
    if (traceJson_) {
        for (auto &sm : sms_)
            sm->setTraceJson(nullptr);
        for (auto &p : partitions_)
            p->setTraceJson(nullptr, 0);
        traceJson_.reset();
    }

    // The thread-count knob resets with the rest of the per-run wiring;
    // the pool itself survives (worker threads hold no simulated state,
    // and respawning them per job would dominate short runs).
    simThreads_ = 1;
    smStages_.clear();
    partStages_.clear();
}

bool
Gpu::oracleEnabled() const
{
#ifndef NDEBUG
    return true;
#else
    return config_.horizonOracle;
#endif
}

void
Gpu::takeSample()
{
    const std::uint64_t t0 =
        profiler_ ? telemetry::SimProfiler::nowNs() : 0;
    // Lazy SM windows may span the boundary; settling them here splits
    // the window without changing any total (sampleN's repeated-addition
    // contract), so fast-forwarded runs sample identical values.
    for (auto &sm : sms_)
        sm->flushFastForward();
    sampler_->sample(cycle_);
    if (profiler_) {
        profiler_->addDirect(telemetry::SimProfiler::Bucket::Sampler,
                             telemetry::SimProfiler::nowNs() - t0);
    }
}

void
Gpu::buildCheckpoint(std::vector<std::uint8_t> &out)
{
    // Checkpoints are taken at settled points only: flush the lazy SM
    // windows so every save() sees per-cycle-exact state.
    for (auto &sm : sms_)
        sm->flushFastForward();

    Serializer ser;
    std::size_t sec = ser.beginSection("conf");
    saveConfig(ser, config_);
    ser.endSection(sec);

    sec = ser.beginSection("gpux");
    ser.put<std::uint64_t>(cycle_);
    ser.put<std::uint64_t>(launchStart_);
    ser.put<std::uint8_t>(static_cast<std::uint8_t>(sharePolicy_));
    ser.put<std::uint32_t>(std::uint32_t(grids_.size()));
    for (std::size_t g = 0; g < grids_.size(); ++g) {
        const GridContext &ctx = grids_[g];
        ser.putString(ctx.kernelName);
        ser.put<std::uint64_t>(ctx.kernelInstrs);
        ser.put<std::uint32_t>(ctx.kernelRegs);
        ser.put<std::uint32_t>(ctx.kernelShared);
        ser.put(ctx.params.grid);
        ser.put(ctx.params.cta);
        ser.putVec(ctx.params.params);
        ser.put<std::uint32_t>(ctx.priority);
        ser.put<std::uint64_t>(
            ctx.dispatcher ? ctx.dispatcher->dispatched() : 0);
        ser.put<std::uint64_t>(gridBase_[g]);
        ser.put<std::uint64_t>(lastBoundaryCompleted_[g]);
    }
    before_.save(ser);
    ser.put<std::uint8_t>(static_cast<std::uint8_t>(simMode_));
    ser.put<std::uint8_t>(sampler_ ? 1 : 0);
    ser.endSection(sec);
    if (sampler_)
        sampler_->save(ser);

    gmem_.save(ser);
    horizon_.saveAll(ser);

    const auto &payload = ser.buffer();
    const std::uint32_t version = 2;
    const std::uint64_t size = payload.size();
    out.clear();
    out.reserve(8 + sizeof(version) + sizeof(size) + payload.size());
    const auto append = [&out](const void *p, std::size_t n) {
        const auto *bytes = static_cast<const std::uint8_t *>(p);
        out.insert(out.end(), bytes, bytes + n);
    };
    append("vtsimCKP", 8);
    append(&version, sizeof(version));
    append(&size, sizeof(size));
    append(payload.data(), payload.size());
}

void
Gpu::saveCheckpoint(std::vector<std::uint8_t> &out)
{
    buildCheckpoint(out);
}

void
Gpu::writeCheckpoint()
{
    const std::uint64_t t0 =
        profiler_ ? telemetry::SimProfiler::nowNs() : 0;
    std::vector<std::uint8_t> image;
    buildCheckpoint(image);
    std::ofstream out(checkpointPath_,
                      std::ios::binary | std::ios::trunc);
    if (!out)
        VTSIM_FATAL("cannot open checkpoint file '", checkpointPath_, "'");
    out.write(reinterpret_cast<const char *>(image.data()),
              std::streamsize(image.size()));
    if (!out)
        VTSIM_FATAL("short write to checkpoint '", checkpointPath_, "'");
    if (profiler_) {
        profiler_->addDirect(
            telemetry::SimProfiler::Bucket::CheckpointWrite,
            telemetry::SimProfiler::nowNs() - t0);
    }
}

LaunchParams
Gpu::restoreCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        VTSIM_FATAL("cannot open checkpoint file '", path, "'");
    std::vector<std::uint8_t> image(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return restoreImage(image.data(), image.size(), "'" + path + "'");
}

LaunchParams
Gpu::restoreCheckpoint(const std::vector<std::uint8_t> &image)
{
    return restoreImage(image.data(), image.size(),
                        "in-memory checkpoint");
}

LaunchParams
Gpu::restoreImage(const std::uint8_t *data, std::size_t size,
                  const std::string &source)
{
    if (size < 8 + sizeof(std::uint32_t) + sizeof(std::uint64_t) ||
        std::memcmp(data, "vtsimCKP", 8) != 0) {
        VTSIM_FATAL(source, " is not a vtsim checkpoint");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, data + 8, sizeof(version));
    if (version != 2)
        VTSIM_FATAL("unsupported checkpoint version ", version, " in ",
                    source);
    std::uint64_t payload_size = 0;
    std::memcpy(&payload_size, data + 8 + sizeof(version),
                sizeof(payload_size));
    const std::size_t header = 8 + sizeof(version) + sizeof(payload_size);
    if (payload_size != size - header)
        VTSIM_FATAL("checkpoint ", source, " is truncated");

    Deserializer des(data + header, payload_size);
    des.sinkResolver = [](void *ctx, std::uint32_t sm_id)
        -> MemResponseSink * {
        return &static_cast<Gpu *>(ctx)->sms_.at(sm_id)->ldst();
    };
    des.sinkCtx = this;

    des.beginSection("conf");
    const GpuConfig saved = restoreConfig(des);
    if (!(saved == config_)) {
        VTSIM_FATAL("checkpoint ", source,
                    " was taken with a different GpuConfig");
    }
    des.endSection();

    des.beginSection("gpux");
    cycle_ = des.get<std::uint64_t>();
    launchStart_ = des.get<std::uint64_t>();
    const auto policy = des.get<std::uint8_t>();
    if (policy > static_cast<std::uint8_t>(SharePolicy::Preempt))
        VTSIM_FATAL("checkpoint ", source, " has unknown share policy ",
                    unsigned(policy));
    sharePolicy_ = static_cast<SharePolicy>(policy);
    const auto num_grids = des.get<std::uint32_t>();
    if (num_grids > maxGrids)
        VTSIM_FATAL("checkpoint ", source, " has ", num_grids,
                    " grids; this build supports ", maxGrids);
    grids_.clear();
    gridBase_.fill(0);
    lastBoundaryCompleted_.fill(0);
    for (std::uint32_t g = 0; g < num_grids; ++g) {
        GridContext ctx;
        ctx.kernelName = des.getString();
        ctx.kernelInstrs = des.get<std::uint64_t>();
        ctx.kernelRegs = des.get<std::uint32_t>();
        ctx.kernelShared = des.get<std::uint32_t>();
        des.get(ctx.params.grid);
        des.get(ctx.params.cta);
        des.getVec(ctx.params.params);
        ctx.priority = des.get<std::uint32_t>();
        const auto dispatched = des.get<std::uint64_t>();
        gridBase_[g] = des.get<std::uint64_t>();
        lastBoundaryCompleted_[g] = des.get<std::uint64_t>();
        ctx.dispatcher = std::make_unique<CtaDispatcher>(ctx.params);
        ctx.dispatcher->setDispatched(dispatched);
        grids_.push_back(std::move(ctx));
    }
    before_.restore(des);
    const auto mode = des.get<std::uint8_t>();
    if (mode > static_cast<std::uint8_t>(SimMode::Replay))
        VTSIM_FATAL("checkpoint ", source, " has unknown simulation mode ",
                    unsigned(mode));
    simMode_ = static_cast<SimMode>(mode);
    const bool had_sampler = des.get<std::uint8_t>() != 0;
    des.endSection();

    if (had_sampler && !sampler_) {
        VTSIM_FATAL("checkpoint has interval-sampler state; enable the "
                    "same sampling interval before restoring");
    }
    if (!had_sampler && sampler_) {
        VTSIM_FATAL("checkpoint has no interval-sampler state; restore "
                    "without a sampler enabled");
    }
    if (sampler_)
        sampler_->restore(des);

    gmem_.restore(des);
    horizon_.restoreAll(des);
    if (!des.finished())
        VTSIM_FATAL("checkpoint ", source, " has trailing bytes");

    rebuildPriorityOrder();
    pendingResume_ = true;
    return grids_.empty() ? LaunchParams{} : grids_.front().params;
}

std::vector<GridLaunch>
Gpu::restoredGrids() const
{
    std::vector<GridLaunch> out;
    out.reserve(grids_.size());
    for (const GridContext &ctx : grids_) {
        GridLaunch gl;
        gl.params = ctx.params;
        gl.priority = ctx.priority;
        out.push_back(std::move(gl));
    }
    return out;
}

std::uint32_t
Gpu::partitionOf(Addr line_addr) const
{
    return (line_addr / config_.l2LineSize) % config_.numMemPartitions;
}

bool
Gpu::allIdle() const
{
    for (const auto &sm : sms_)
        if (!sm->idle())
            return false;
    for (const auto &p : partitions_)
        if (!p->idle())
            return false;
    return noc_.idle();
}

void
Gpu::dumpStats(std::ostream &os)
{
    for (auto &sm : sms_)
        sm->flushFastForward();
    for (const StatGroup *group : registry_.groups())
        group->dump(os);
}

void
Gpu::flushCaches()
{
    for (auto &sm : sms_)
        sm->flushCaches();
    for (auto &p : partitions_)
        p->flushCaches();
}

void
Gpu::enableMtraceRecord(const std::string &path)
{
    if (path.empty())
        VTSIM_FATAL("empty trace-record path");
    recordTracePath_ = path;
}

KernelStats
Gpu::replayTrace(const std::string &path)
{
    if (!recordTracePath_.empty()) {
        VTSIM_FATAL("trace record and trace replay are mutually "
                    "exclusive on one Gpu");
    }
    mtraceReader_ = std::make_unique<MtraceReader>();
    mtraceReader_->load(path);
    const MtraceHeader &h = mtraceReader_->header();
    if (h.numSms != config_.numSms ||
        h.numMemPartitions != config_.numMemPartitions ||
        h.l1LineSize != config_.l1LineSize ||
        h.l2LineSize != config_.l2LineSize) {
        VTSIM_FATAL("mtrace '", path, "' was recorded on a different "
                    "machine shape (", h.numSms, " SMs, ",
                    h.numMemPartitions, " partitions, L1/L2 lines ",
                    h.l1LineSize, "/", h.l2LineSize,
                    ") than this GpuConfig (", config_.numSms, "/",
                    config_.numMemPartitions, "/", config_.l1LineSize,
                    "/", config_.l2LineSize, ")");
    }
    preempted_ = false;

    // The replay loop reuses the launch drivers (sequential and
    // sharded); they only consult the kernel for the watchdog message,
    // so a one-instruction placeholder stands in for the recorded
    // kernel, whose name the checkpoint identity carries.
    const Kernel kernel = assemble(".kernel replay\n  exit\n");

    if (pendingResume_) {
        if (simMode_ != SimMode::Replay) {
            VTSIM_FATAL("checkpoint was taken in functional-execution "
                        "mode; resume it with a functional launch, not "
                        "--replay-trace");
        }
        if (grids_.size() != 1 ||
            grids_[0].kernelName != "replay:" + h.kernelName) {
            VTSIM_FATAL("checkpoint resumes a replay of '",
                        grids_.empty() ? "" : grids_[0].kernelName,
                        "' but trace '", path, "' records kernel '",
                        h.kernelName, "'");
        }
        pendingResume_ = false;
        for (std::uint32_t s = 0; s < sms_.size(); ++s)
            sms_[s]->resumeReplay(&mtraceReader_->accesses(s));
    } else {
        simMode_ = SimMode::Replay;
        grids_.clear();
        GridContext ctx;
        ctx.params.grid = h.grid;
        ctx.params.cta = h.cta;
        ctx.kernelName = "replay:" + h.kernelName;
        ctx.kernelInstrs = kernel.size();
        ctx.kernelRegs = kernel.regsPerThread();
        ctx.kernelShared = kernel.sharedBytesPerCta();
        // The recording run dispatched the whole grid; the replay
        // admits nothing, so the dispatcher starts fully drained.
        ctx.dispatcher = std::make_unique<CtaDispatcher>(ctx.params);
        ctx.dispatcher->setDispatched(ctx.params.numCtas());
        grids_.push_back(std::move(ctx));
        sharePolicy_ = SharePolicy::VtFill;
        rebuildPriorityOrder();
        before_ = StatsSnapshot::capture(registry_);
        launchStart_ = cycle_;
        if (sampler_)
            sampler_->beginLaunch(cycle_);
        for (std::uint32_t s = 0; s < sms_.size(); ++s)
            sms_[s]->beginReplay(&mtraceReader_->accesses(s), cycle_);
    }

    const Cycle start = launchStart_;
    const unsigned workers = effectiveSimThreads();
    if (profiler_)
        profiler_->beginRun();
    if (workers > 1)
        runSharded(workers);
    else
        runSequential();
    if (profiler_)
        profiler_->endRun();

    for (auto &sm : sms_)
        sm->flushFastForward();
    if (sampler_ && !preempted_)
        sampler_->finalSample(cycle_);
    if (checkpointEvery_ == 0 && !checkpointPath_.empty() && !preempted_)
        writeCheckpoint();

    KernelStats stats;
    stats.cycles = cycle_ - start;
    StatsSnapshot::capture(registry_).delta(before_, registry_, stats);
    // No CTA-completion invariant here: a replay completes zero CTAs
    // and issues zero instructions by construction.
    stats.ipc = stats.cycles
                    ? double(stats.warpInstructions) / stats.cycles
                    : 0.0;
    return stats;
}

KernelStats
Gpu::launch(const Kernel &kernel, const LaunchParams &launch)
{
    GridLaunch gl;
    gl.kernel = &kernel;
    gl.params = launch;
    std::vector<GridLaunch> launches;
    launches.push_back(std::move(gl));
    return launchConcurrent(launches, SharePolicy::VtFill);
}

KernelStats
Gpu::launchConcurrent(const std::vector<GridLaunch> &launches,
                      SharePolicy policy)
{
    if (launches.empty())
        VTSIM_FATAL("concurrent launch with no grids");
    if (launches.size() > maxGrids) {
        VTSIM_FATAL("concurrent launch with ", launches.size(),
                    " grids exceeds the ", maxGrids, "-grid limit");
    }
    for (const GridLaunch &gl : launches) {
        if (!gl.kernel)
            VTSIM_FATAL("concurrent launch with a null kernel");
        if (gl.params.numCtas() == 0)
            VTSIM_FATAL("empty grid");
        if (gl.params.threadsPerCta() == 0)
            VTSIM_FATAL("empty CTA");
    }
    // One mode-matrix check covers every launch-shape rule: record vs
    // co-run, record vs mid-run checkpoints, record vs resume, preempt
    // without VT (config/sim_mode.hh).
    SimModeSpec mode;
    mode.recordTrace = !recordTracePath_.empty();
    mode.restore = pendingResume_;
    mode.checkpointEvery = checkpointEvery_;
    mode.numGrids = launches.size();
    mode.preemptPolicy = policy == SharePolicy::Preempt;
    mode.vtEnabled = config_.vtEnabled;
    requireValidSimMode(mode);
    // A pending requestPreempt() survives into this launch on purpose:
    // the job service pre-arms it to stop a run at its first cadence
    // boundary. Only the *outcome* flag resets per launch.
    preempted_ = false;

    if (pendingResume_) {
        // Resuming a restored checkpoint: the machine state is already
        // loaded; verify the caller passed the checkpoint's kernels and
        // grids, then re-attach the live bindings (pointers into caller
        // objects) that a checkpoint cannot carry.
        if (simMode_ == SimMode::Replay) {
            VTSIM_FATAL("checkpoint was taken in trace-replay mode; "
                        "resume it with --replay-trace "
                        "(Gpu::replayTrace), not a functional launch");
        }
        if (launches.size() != grids_.size()) {
            VTSIM_FATAL("resume launch has ", launches.size(),
                        " grids but the checkpoint carries ",
                        grids_.size());
        }
        if (grids_.size() > 1 && policy != sharePolicy_) {
            VTSIM_FATAL("resume share policy '", toString(policy),
                        "' does not match the checkpoint's '",
                        toString(sharePolicy_), "'");
        }
        pendingResume_ = false;
        for (std::size_t g = 0; g < launches.size(); ++g) {
            const GridLaunch &gl = launches[g];
            GridContext &ctx = grids_[g];
            if (gl.kernel->name() != ctx.kernelName ||
                gl.kernel->size() != ctx.kernelInstrs ||
                gl.kernel->regsPerThread() != ctx.kernelRegs ||
                gl.kernel->sharedBytesPerCta() != ctx.kernelShared) {
                VTSIM_FATAL("resume kernel '", gl.kernel->name(),
                            "' of grid ", g,
                            " does not match the checkpoint's '",
                            ctx.kernelName, "'");
            }
            if (!(gl.params.grid == ctx.params.grid) ||
                !(gl.params.cta == ctx.params.cta) ||
                gl.params.params != ctx.params.params ||
                gl.priority != ctx.priority) {
                VTSIM_FATAL("resume launch parameters of grid ", g,
                            " do not match the checkpoint's");
            }
            ctx.kernel = gl.kernel;
        }
        for (auto &sm : sms_) {
            for (std::size_t g = 0; g < grids_.size(); ++g) {
                sm->rebindGrid(GridId(g), *grids_[g].kernel,
                               grids_[g].params, gmem_);
            }
        }
    } else {
        grids_.clear();
        for (const GridLaunch &gl : launches) {
            GridContext ctx;
            ctx.kernel = gl.kernel;
            ctx.params = gl.params;
            ctx.priority = gl.priority;
            ctx.kernelName = gl.kernel->name();
            ctx.kernelInstrs = gl.kernel->size();
            ctx.kernelRegs = gl.kernel->regsPerThread();
            ctx.kernelShared = gl.kernel->sharedBytesPerCta();
            ctx.dispatcher = std::make_unique<CtaDispatcher>(gl.params);
            grids_.push_back(std::move(ctx));
        }
        sharePolicy_ = policy;
        rebuildPriorityOrder();
        for (std::size_t g = 0; g < grids_.size(); ++g) {
            gridBase_[g] = gridCompleted(std::uint32_t(g));
            lastBoundaryCompleted_[g] = 0;
        }
        for (auto &sm : sms_) {
            sm->beginGridBinding(gmem_);
            for (std::size_t g = 0; g < grids_.size(); ++g)
                sm->bindGrid(GridId(g), *grids_[g].kernel,
                             grids_[g].params);
        }
        simMode_ = SimMode::Functional;

        if (!recordTracePath_.empty()) {
            MtraceHeader header;
            header.numSms = config_.numSms;
            header.numMemPartitions = config_.numMemPartitions;
            header.l1LineSize = config_.l1LineSize;
            header.l2LineSize = config_.l2LineSize;
            header.kernelName = grids_[0].kernelName;
            header.grid = grids_[0].params.grid;
            header.cta = grids_[0].params.cta;
            mtraceWriter_ = std::make_unique<MtraceWriter>();
            mtraceWriter_->begin(recordTracePath_, header, cycle_);
            for (auto &sm : sms_)
                sm->setMtrace(mtraceWriter_.get());
        }

        // Snapshot counters so stats are per-launch deltas. The
        // snapshot is checkpointed: a resumed launch still reports
        // whole-launch statistics.
        before_ = StatsSnapshot::capture(registry_);
        launchStart_ = cycle_;
        if (sampler_)
            sampler_->beginLaunch(cycle_);
    }
    const Cycle start = launchStart_;
    const unsigned workers = effectiveSimThreads();
    if (profiler_)
        profiler_->beginRun();
    if (workers > 1)
        runSharded(workers);
    else
        runSequential();
    if (profiler_)
        profiler_->endRun();

    // Settle lazily skipped per-SM ticks before reading any statistic.
    for (auto &sm : sms_)
        sm->flushFastForward();
    if (mtraceWriter_) {
        for (auto &sm : sms_)
            sm->setMtrace(nullptr);
        mtraceWriter_->end();
        mtraceWriter_.reset();
    }
    // A preempted launch is mid-flight: no final sample, no end-of-run
    // checkpoint — the service saves an explicit image and the resumed
    // launch finishes both.
    if (sampler_ && !preempted_)
        sampler_->finalSample(cycle_);
    if (checkpointEvery_ == 0 && !checkpointPath_.empty() && !preempted_)
        writeCheckpoint();

    const StatsSnapshot after = StatsSnapshot::capture(registry_);
    KernelStats stats;
    stats.cycles = cycle_ - start;
    after.delta(before_, registry_, stats);

    std::uint64_t total_ctas = 0;
    for (const GridContext &ctx : grids_)
        total_ctas += ctx.params.numCtas();
    VTSIM_ASSERT(preempted_ || stats.ctasCompleted == total_ctas,
                 "CTA completion mismatch: ", stats.ctasCompleted, " of ",
                 total_ctas);
    stats.ipc = stats.cycles
                    ? double(stats.warpInstructions) / stats.cycles
                    : 0.0;

    gridStats_.clear();
    for (std::size_t g = 0; g < grids_.size(); ++g) {
        GridStats gs;
        gs.kernelName = grids_[g].kernelName;
        gs.priority = grids_[g].priority;
        gs.stats.cycles = stats.cycles;
        after.deltaGrid(before_, registry_, std::int32_t(g), gs.stats);
        gs.stats.ipc =
            gs.stats.cycles
                ? double(gs.stats.warpInstructions) / gs.stats.cycles
                : 0.0;
        gridStats_.push_back(std::move(gs));
    }
    return stats;
}

std::uint64_t
Gpu::totalIssued() const
{
    std::uint64_t total = 0;
    for (const auto &sm : sms_)
        total += sm->instructionsIssued();
    return total;
}

bool
Gpu::anyGridHasWork() const
{
    for (const GridContext &ctx : grids_)
        if (ctx.dispatcher->hasWork())
            return true;
    return false;
}

int
Gpu::pickAdmitGrid(std::uint32_t s) const
{
    const std::size_t n = grids_.size();
    if (n <= 1) {
        // The solo fast path — identical to the pre-concurrent
        // dispatcher check, so N=1 launches stay bit-identical.
        if (n == 1 && grids_[0].dispatcher->hasWork() &&
            sms_[s]->canAdmitCta(0)) {
            return 0;
        }
        return -1;
    }
    switch (sharePolicy_) {
      case SharePolicy::Spatial: {
        // SM s belongs to exactly one grid: the contiguous block
        // partition of the SM range (grid g owns SMs with
        // s*n/numSms == g).
        const auto g = std::uint32_t(std::uint64_t(s) * n / sms_.size());
        if (grids_[g].dispatcher->hasWork() &&
            sms_[s]->canAdmitCta(GridId(g))) {
            return int(g);
        }
        return -1;
      }
      case SharePolicy::VtFill:
        for (std::uint32_t g = 0; g < n; ++g) {
            if (grids_[g].dispatcher->hasWork() &&
                sms_[s]->canAdmitCta(GridId(g))) {
                return int(g);
            }
        }
        return -1;
      case SharePolicy::Preempt:
        for (const std::uint32_t g : priorityOrder_) {
            if (grids_[g].dispatcher->hasWork() &&
                sms_[s]->canAdmitCta(GridId(g))) {
                return int(g);
            }
        }
        return -1;
    }
    return -1;
}

bool
Gpu::admitPending() const
{
    for (std::uint32_t s = 0; s < sms_.size(); ++s)
        if (pickAdmitGrid(s) >= 0)
            return true;
    return false;
}

std::string
Gpu::launchName() const
{
    std::string name;
    for (const GridContext &ctx : grids_) {
        if (!name.empty())
            name += '+';
        name += ctx.kernelName;
    }
    return name;
}

std::uint64_t
Gpu::gridCompleted(std::uint32_t g) const
{
    std::uint64_t total = 0;
    for (const auto &sm : sms_)
        total += sm->gridCtasCompleted(GridId(g));
    return total;
}

void
Gpu::rebuildPriorityOrder()
{
    priorityOrder_.resize(grids_.size());
    for (std::uint32_t g = 0; g < priorityOrder_.size(); ++g)
        priorityOrder_[g] = g;
    std::stable_sort(priorityOrder_.begin(), priorityOrder_.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return grids_[a].priority < grids_[b].priority;
                     });
}

void
Gpu::preemptBoundaryTick()
{
    // The highest-priority grid with CTAs still to finish. Grids above
    // it are done; everything below is (re)blocked so its CTAs park
    // Inactive at their next swap opportunity. Once only one grid
    // remains unfinished nothing is blocked and the machine drains as a
    // solo run.
    int top = -1;
    for (const std::uint32_t g : priorityOrder_) {
        if (gridCompleted(g) - gridBase_[g] < grids_[g].params.numCtas()) {
            top = int(g);
            break;
        }
    }
    std::array<bool, maxGrids> blocked{};
    if (top >= 0) {
        bool after_top = false;
        for (const std::uint32_t g : priorityOrder_) {
            blocked[g] = after_top;
            if (int(g) == top)
                after_top = true;
        }
    }
    for (auto &sm : sms_)
        for (std::uint32_t g = 0; g < grids_.size(); ++g)
            sm->setGridActivationBlocked(GridId(g), blocked[g]);

    if (top >= 0) {
        // Online progress estimate (the interval sampler's per-grid
        // series reads the same counters): a top grid that completed
        // nothing since the last boundary earns a doubled eviction
        // budget per SM.
        const std::uint64_t done =
            gridCompleted(std::uint32_t(top)) - gridBase_[top];
        const std::uint32_t budget =
            done == lastBoundaryCompleted_[std::size_t(top)] ? 2 : 1;
        for (auto &sm : sms_) {
            // Preempting only helps SMs where the top grid is parked:
            // a resident-but-inactive CTA, or dispatcher work this SM
            // has capacity for (freed active slots let it run at once).
            if (!sm->hasInactiveCta(GridId(top)) &&
                !(grids_[top].dispatcher->hasWork() &&
                  sm->canAdmitCta(GridId(top)))) {
                continue;
            }
            std::uint32_t left = budget;
            for (auto it = priorityOrder_.rbegin();
                 it != priorityOrder_.rend() && left > 0; ++it) {
                if (!blocked[*it])
                    break; // Reached the top grid and above.
                left -= sm->forcePreemptGrid(GridId(*it), left, cycle_);
            }
        }
    }
    for (std::uint32_t g = 0; g < grids_.size(); ++g)
        lastBoundaryCompleted_[g] = gridCompleted(g) - gridBase_[g];
}

unsigned
Gpu::effectiveSimThreads() const
{
    // More workers than components would leave some idle every epoch;
    // the clamp also forces tiny configs (testMini: 1 SM, 1 partition)
    // onto the sequential path.
    const auto components =
        std::max<unsigned>(numSms(), unsigned(partitions_.size()));
    const unsigned n = std::min(simThreads_, components);
    if (n <= 1)
        return 1;
    if (!recordTracePath_.empty()) {
        std::cerr << "[vtsim] trace recording enabled; forcing "
                     "sim-threads=1 (the recorder is one stream in "
                     "global cycle order)\n";
        return 1;
    }
    if (Trace::instance().anyEnabled()) {
        std::cerr << "[vtsim] textual trace sink enabled; forcing "
                     "sim-threads=1 (the Trace facade is a process-global "
                     "singleton the shard workers would race on)\n";
        return 1;
    }
    return n;
}

Gpu::StepResult
Gpu::sequentialCycle(Cycle deadline)
{
    // Self-profiling measures every cycleCadence-th executed cycle;
    // the LoopOther mark here closes the post-tick bookkeeping span so
    // a measured cycle's phases tile its whole body (the directly
    // timed spans inside — sampler, checkpoint, horizon settle —
    // refresh the phase clock and are never double-counted).
    if (profiler_ && profiler_->beginCycle()) {
        const StepResult r = sequentialCycleBody(deadline, true);
        profiler_->markPhase(telemetry::SimProfiler::Bucket::LoopOther);
        return r;
    }
    return sequentialCycleBody(deadline, false);
}

Gpu::StepResult
Gpu::sequentialCycleBody(Cycle deadline, bool prof)
{
    // CTA work distribution: one CTA per SM per cycle, round-robin;
    // pickAdmitGrid chooses which grid's dispatcher feeds each SM.
    // Under sharded trace staging (the serial fast path between epochs)
    // the admission events must merge before every tick-phase event of
    // this cycle, so the stage's rank is retargeted around the call.
    bool admitted = false;
    for (std::uint32_t s = 0; s < sms_.size(); ++s) {
        SmCore &sm = *sms_[s];
        const int g = pickAdmitGrid(s);
        if (g >= 0) {
            if (!smStages_.empty())
                smStages_[s]->setRank(s);
            sm.admitCta(grids_[g].dispatcher->next(), cycle_, GridId(g));
            if (!smStages_.empty())
                smStages_[s]->setRank(smTickRank(s));
            admitted = true;
        }
    }

    if (prof)
        profiler_->markPhase(telemetry::SimProfiler::Bucket::CtaAdmission);
    const std::uint64_t issued_before = totalIssued();
    noc_.tick(cycle_);
    if (prof)
        profiler_->markPhase(telemetry::SimProfiler::Bucket::NocTick);
    for (auto &p : partitions_)
        p->tick(cycle_);
    if (prof)
        profiler_->markPhase(
            telemetry::SimProfiler::Bucket::PartitionTick);
    for (auto &sm : sms_)
        sm->tick(cycle_);
    if (prof)
        profiler_->markPhase(telemetry::SimProfiler::Bucket::SmTick);

    ++cycle_;
    if (sampler_ && cycle_ == sampler_->nextSampleAt())
        takeSample();
    const bool done = !anyGridHasWork() && allIdle();
    if (preemptActive() && !done &&
        cycle_ % preemptBoundaryCycles_ == 0) {
        preemptBoundaryTick();
    }
    // Periodic checkpoints land on multiples of checkpointEvery_,
    // and only strictly mid-kernel: a resumed launch re-enters the
    // loop exactly where the admission phase for this cycle would
    // have run, so the remainder replays bit-identically. The same
    // boundaries are the preemption points: a cadence with an empty
    // path arms preemption without writing files.
    if (checkpointEvery_ != 0 && !done && cycle_ % checkpointEvery_ == 0) {
        if (!checkpointPath_.empty())
            writeCheckpoint();
        if (preemptRequested_.exchange(false, std::memory_order_relaxed)) {
            preempted_ = true;
            return StepResult::Preempted;
        }
    }
    if (done)
        return StepResult::Done;
    if (cycle_ >= deadline) {
        VTSIM_FATAL("watchdog: kernel '", launchName(), "' exceeded ",
                    config_.maxCycles, " cycles");
    }

    // Event-horizon fast-forward: when this cycle did nothing and
    // the next admission/issue/completion provably lies in the
    // future, jump straight to it, bulk-replicating the per-cycle
    // accounting the skipped empty ticks would have done. Every
    // statistic is bit-identical to the naive loop's. The horizon
    // itself — the min over component next events, clamped by
    // sampler/checkpoint/preempt-boundary wakeups — is EventHorizon's
    // job.
    if (!config_.fastForwardEnabled)
        return StepResult::Running;
    if (admitted || totalIssued() != issued_before)
        return StepResult::Running; // A busy cycle is never at an
                                    // event-free horizon.
    if (admitPending())
        return StepResult::Running; // The next iteration admits.
    const Cycle horizon = horizon_.target(cycle_, deadline);
    if (horizon <= cycle_)
        return StepResult::Running;
    {
        const std::uint64_t t0 =
            profiler_ ? telemetry::SimProfiler::nowNs() : 0;
        horizon_.advance(cycle_, horizon, oracleEnabled());
        if (profiler_) {
            profiler_->addDirect(
                telemetry::SimProfiler::Bucket::HorizonSettle,
                telemetry::SimProfiler::nowNs() - t0);
        }
    }
    cycle_ = horizon;
    if (cycle_ >= deadline) {
        VTSIM_FATAL("watchdog: kernel '", launchName(), "' exceeded ",
                    config_.maxCycles, " cycles");
    }
    if (sampler_ && cycle_ == sampler_->nextSampleAt())
        takeSample();
    if (preemptActive() && cycle_ % preemptBoundaryCycles_ == 0)
        preemptBoundaryTick();
    if (checkpointEvery_ != 0 && cycle_ % checkpointEvery_ == 0) {
        if (!checkpointPath_.empty())
            writeCheckpoint();
        if (preemptRequested_.exchange(false, std::memory_order_relaxed)) {
            preempted_ = true;
            return StepResult::Preempted;
        }
    }
    return StepResult::Running;
}

void
Gpu::runSequential()
{
    const Cycle deadline = launchStart_ + config_.maxCycles;
    while (sequentialCycle(deadline) == StepResult::Running) {
    }
}

/**
 * The sharded epoch driver. One run is divided into fixed-length epochs
 * no longer than the shortest cross-shard feedback path; inside an
 * epoch every worker ticks only the SMs and memory partitions it owns,
 * all cross-shard traffic is staged, and the barrier folds the staged
 * state back in canonical sequential order. Four mechanisms carry the
 * bit-identity guarantee (docs/ARCHITECTURE.md, "Sharded simulation"):
 *
 *  1. NoC staging: sends append to per-source buffers; the epoch bound
 *     (<= nocLatency) means nothing staged can mature in-epoch, so
 *     merging at the barrier in (send cycle, source, sequence) order
 *     reproduces the sequential queues byte for byte.
 *  2. Deferred global memory: functional writes are parked and replayed
 *     at the barrier in sequential issue order; lane registers that
 *     observed stale values are patched before their loads complete
 *     (epoch bound <= l1HitLatency guarantees no in-epoch completion).
 *  3. Admission pauses: the CTA dispatcher is frozen during an epoch; a
 *     worker whose SM frees a slot pauses it, and the barrier replays
 *     the admission scan in exact (cycle, SM) order.
 *  4. Trace staging: every component writes Perfetto events into a
 *     private stage; barriers merge them in within-cycle emission-rank
 *     order, so the JSON is byte-identical to the sequential file.
 */
void
Gpu::runSharded(unsigned workers)
{
    const Cycle deadline = launchStart_ + config_.maxCycles;
    // The epoch must not outlive the shortest cross-shard feedback
    // path: nocLatency bounds when staged traffic could mature, and
    // l1HitLatency bounds when an in-epoch load could complete and
    // release its scoreboard before the barrier patches registers.
    const Cycle epoch_len = std::max<Cycle>(
        1, std::min<Cycle>(config_.nocLatency, config_.l1HitLatency));

    if (!pool_ || pool_->workers() != workers)
        pool_ = std::make_unique<ShardPool>(workers);

    // Retarget every component's Perfetto writer at a private staging
    // buffer for the duration of the run.
    if (traceJson_) {
        smStages_.clear();
        partStages_.clear();
        for (std::uint32_t s = 0; s < sms_.size(); ++s) {
            auto stage = std::make_unique<telemetry::TraceStage>();
            stage->setRank(smTickRank(s));
            sms_[s]->setTraceJson(stage.get());
            smStages_.push_back(std::move(stage));
        }
        for (std::uint32_t p = 0; p < partitions_.size(); ++p) {
            auto stage = std::make_unique<telemetry::TraceStage>();
            stage->setRank(numSms() + p);
            partitions_[p]->setTraceJson(stage.get(), numSms() + p);
            partStages_.push_back(std::move(stage));
        }
    }

    struct SmEpoch
    {
        Cycle stopCycle = 0;  ///< First cycle this SM has not ticked.
        Cycle lastActive = 0; ///< Last cycle it was non-idle after its tick.
        Cycle pauseCycle = 0; ///< Cycle it paused for a barrier admission.
        bool stopped = false; ///< Idle-stopped before the epoch end.
        bool paused = false;
        bool sawActive = false;
    };
    struct PartEpoch
    {
        Cycle lastActive = 0;
        bool sawActive = false;
    };
    std::vector<SmEpoch> sm_ep(sms_.size());
    std::vector<PartEpoch> part_ep(partitions_.size());
    std::vector<Interconnect::PortDelta> sm_delta(sms_.size());
    std::vector<Interconnect::PortDelta> part_delta(partitions_.size());

    while (true) {
        // Serial fast path: while CTAs are being admitted (the launch
        // ramp and any cycle right after a slot freed), run plain
        // sequential cycles — admission is inherently serial, and these
        // cycles are a small fraction of a long run.
        if (admitPending()) {
            const StepResult r = sequentialCycle(deadline);
            mergeTraceStages();
            if (r != StepResult::Running)
                break;
            continue;
        }

        const Cycle tstart = cycle_;
        Cycle tend = tstart + epoch_len;
        // Sampler, checkpoint and preempt-policy boundaries must land
        // exactly on an epoch edge so the barrier observes the same
        // settled state the sequential loop would.
        if (sampler_)
            tend = std::min(tend, sampler_->nextSampleAt());
        if (checkpointEvery_ != 0) {
            tend = std::min(
                tend, (tstart / checkpointEvery_ + 1) * checkpointEvery_);
        }
        if (preemptActive()) {
            tend = std::min(tend, (tstart / preemptBoundaryCycles_ + 1) *
                                      preemptBoundaryCycles_);
        }
        tend = std::min(tend, deadline);
        VTSIM_ASSERT(tend > tstart, "empty sharded epoch at cycle ",
                     tstart);

        std::vector<std::vector<std::uint8_t>> pre_images;
        std::vector<std::uint64_t> pre_dispatched;
        if (config_.shardOracle) {
            pre_images = captureShardImages();
            for (const GridContext &ctx : grids_)
                pre_dispatched.push_back(ctx.dispatcher->dispatched());
        }

        // Admissions freeze for the epoch: only the barrier (or the
        // serial path) drains the dispatchers, so per-grid hasWork
        // cannot go stale mid-epoch.
        const bool admissions_open = anyGridHasWork();
        noc_.beginEpochStaging();
        gmem_.setDeferWrites(true);
        for (auto &sm : sms_)
            sm->beginEpochMemLog();
        std::fill(sm_ep.begin(), sm_ep.end(), SmEpoch{});
        std::fill(part_ep.begin(), part_ep.end(), PartEpoch{});
        std::fill(sm_delta.begin(), sm_delta.end(),
                  Interconnect::PortDelta{});
        std::fill(part_delta.begin(), part_delta.end(),
                  Interconnect::PortDelta{});

        // Profile every epochCadence-th epoch: per-worker compute time
        // (each worker stamps its own slot; the runEpoch barrier orders
        // the reads) and the serial barrier below as one merge span.
        const bool prof_epoch =
            profiler_ && profiler_->beginEpoch(workers);
        const auto epoch_work = [&](unsigned w) {
            const std::uint64_t w0 =
                prof_epoch ? telemetry::SimProfiler::nowNs() : 0;
            for (std::uint32_t p = 0; p < partitions_.size(); ++p) {
                if (!pool_->owns(w, p))
                    continue;
                MemoryPartition &part = *partitions_[p];
                PartEpoch &ep = part_ep[p];
                for (Cycle c = tstart; c < tend; ++c) {
                    noc_.drainRequestPort(p, c, part_delta[p]);
                    part.tick(c);
                    if (!part.idle()) {
                        ep.lastActive = c;
                        ep.sawActive = true;
                    }
                }
            }
            for (std::uint32_t s = 0; s < sms_.size(); ++s) {
                if (!pool_->owns(w, s))
                    continue;
                SmCore &sm = *sms_[s];
                SmEpoch &ep = sm_ep[s];
                sm.setEpochOwner(std::this_thread::get_id());
                for (Cycle c = tstart; c < tend; ++c) {
                    // The sequential loop would admit a CTA here; park
                    // the SM for the barrier's ordered admission scan.
                    // (pickAdmitGrid reads only this SM plus the frozen
                    // dispatchers, so it is epoch-safe.)
                    if (admissions_open && pickAdmitGrid(s) >= 0) {
                        ep.paused = true;
                        ep.pauseCycle = c;
                        break;
                    }
                    noc_.drainResponsePort(s, c, sm_delta[s]);
                    sm.tick(c);
                    if (!sm.idle()) {
                        ep.lastActive = c;
                        ep.sawActive = true;
                    } else if (noc_.responsePortEmpty(s)) {
                        // Nothing can reach this SM before the epoch
                        // ends (staged traffic matures later); skip its
                        // remaining idle ticks. Idle SM ticks charge
                        // stalls.idle, so the driver re-ticks exactly
                        // the skipped range at the barrier.
                        ep.stopped = true;
                        ep.stopCycle = c + 1;
                        break;
                    }
                }
                if (!ep.paused && !ep.stopped)
                    ep.stopCycle = tend;
                sm.setEpochOwner({});
            }
            if (prof_epoch) {
                profiler_->recordWorkerNs(
                    w, telemetry::SimProfiler::nowNs() - w0);
            }
        };
        pool_->runEpoch(epoch_work);
        if (prof_epoch)
            profiler_->finishEpochCompute();

        // --- Epoch barrier: everything below is driver-only. ---------

        // 1. Replay the admission scans the workers paused for, in the
        // exact (cycle, SM) order of the sequential loop, and continue
        // each resolved SM to the epoch end inline (staging and the
        // memory log are still armed, so these ticks are ordinary epoch
        // ticks that happen to run on the driver).
        using Pause = std::pair<Cycle, std::uint32_t>;
        std::priority_queue<Pause, std::vector<Pause>,
                            std::greater<Pause>>
            pauses;
        for (std::uint32_t s = 0; s < sms_.size(); ++s)
            if (sm_ep[s].paused)
                pauses.push({sm_ep[s].pauseCycle, s});
        while (!pauses.empty()) {
            const auto [c0, s] = pauses.top();
            pauses.pop();
            SmCore &sm = *sms_[s];
            SmEpoch &ep = sm_ep[s];
            ep.paused = false;
            bool admitted_here = false;
            {
                const int g = pickAdmitGrid(s);
                if (g >= 0) {
                    if (!smStages_.empty())
                        smStages_[s]->setRank(s);
                    sm.admitCta(grids_[g].dispatcher->next(), c0,
                                GridId(g));
                    if (!smStages_.empty())
                        smStages_[s]->setRank(smTickRank(s));
                    admitted_here = true;
                }
            }
            bool repaused = false;
            for (Cycle c = c0; c < tend; ++c) {
                // One admission per SM per cycle: at c0 the scan just
                // ran, so only later cycles may re-pause.
                if (pickAdmitGrid(s) >= 0 &&
                    !(admitted_here && c == c0)) {
                    ep.paused = true;
                    ep.pauseCycle = c;
                    pauses.push({c, s});
                    repaused = true;
                    break;
                }
                noc_.drainResponsePort(s, c, sm_delta[s]);
                sm.tick(c);
                if (!sm.idle()) {
                    ep.lastActive = c;
                    ep.sawActive = true;
                } else if (noc_.responsePortEmpty(s)) {
                    ep.stopped = true;
                    ep.stopCycle = c + 1;
                    break;
                }
            }
            if (!repaused && !ep.stopped)
                ep.stopCycle = tend;
        }

        // 2. Did the launch finish inside this epoch? If so, compute
        // the cycle the sequential loop would have exited at: one past
        // the last cycle any component was active after ticking, i.e.
        // the first cycle whose post-tick state was all-idle, plus one.
        bool done = !anyGridHasWork() && noc_.idle() &&
                    noc_.stagingEmpty();
        if (done) {
            for (const auto &sm : sms_)
                done = done && sm->idle();
            for (const auto &p : partitions_)
                done = done && p->idle();
        }
        Cycle end_cycle = tstart + 1;
        for (const SmEpoch &ep : sm_ep)
            end_cycle = std::max(end_cycle, ep.stopCycle);
        for (const PartEpoch &ep : part_ep)
            if (ep.sawActive)
                end_cycle = std::max(end_cycle, ep.lastActive + 2);
        // A delivery is machine activity even when the destination
        // absorbs it without turning non-idle (a write-back store lands
        // in the L2 tags instantly): the sequential run's NoC is
        // non-idle up to the delivery cycle, so it cannot observe
        // all-idle before the cycle after it.
        for (const auto &delta : part_delta)
            if (delta.sawFlit)
                end_cycle = std::max(end_cycle, delta.lastFlit + 1);
        for (const auto &delta : sm_delta)
            if (delta.sawFlit)
                end_cycle = std::max(end_cycle, delta.lastFlit + 1);

        // 3. Re-tick the idle-stopped SMs over the cycles they skipped
        // (idle ticks charge stalls.idle, so tick counts must match the
        // sequential run exactly; idle *partition* ticks are fully
        // neutral, which is why partitions simply ran to the epoch end).
        const Cycle catch_to = done ? end_cycle : tend;
        for (std::uint32_t s = 0; s < sms_.size(); ++s) {
            if (!sm_ep[s].stopped)
                continue;
            SmCore &sm = *sms_[s];
            for (Cycle c = sm_ep[s].stopCycle; c < catch_to; ++c)
                sm.tick(c);
        }

        // 4. Fold the epoch's cross-shard effects back in canonical
        // sequential order: NoC messages, port counters, the deferred
        // global-memory ops, then the staged trace events.
        noc_.mergeStaged();
        for (const auto &delta : part_delta)
            noc_.applyPortDelta(delta);
        for (const auto &delta : sm_delta)
            noc_.applyPortDelta(delta);
        gmem_.setDeferWrites(false);
        replayEpochMemory();
        for (auto &sm : sms_)
            sm->endEpochMemLog();
        if (config_.shardOracle)
            verifyShardEpoch(pre_images, pre_dispatched, tstart, catch_to);
        mergeTraceStages();
        if (prof_epoch) {
            profiler_->markPhase(
                telemetry::SimProfiler::Bucket::EpochMerge);
        }

        cycle_ = done ? end_cycle : tend;
        if (sampler_ && cycle_ == sampler_->nextSampleAt())
            takeSample();
        if (preemptActive() && !done &&
            cycle_ % preemptBoundaryCycles_ == 0) {
            preemptBoundaryTick();
        }
        if (checkpointEvery_ != 0 && !done &&
            cycle_ % checkpointEvery_ == 0) {
            if (!checkpointPath_.empty())
                writeCheckpoint();
            if (preemptRequested_.exchange(false,
                                           std::memory_order_relaxed)) {
                preempted_ = true;
                break;
            }
        }
        if (done)
            break;
        if (cycle_ >= deadline) {
            VTSIM_FATAL("watchdog: kernel '", launchName(),
                        "' exceeded ", config_.maxCycles, " cycles");
        }

        // Event-horizon fast-forward between epochs. Busy components
        // pin the target to the present, so this self-guards: a jump
        // happens only when provably nothing occurs at cycle_ either,
        // in which case the sequential loop reaches the same horizon
        // (one empty tick later) with identical bulk accounting.
        if (!config_.fastForwardEnabled)
            continue;
        if (admitPending())
            continue;
        const Cycle horizon = horizon_.target(cycle_, deadline);
        if (horizon <= cycle_)
            continue;
        {
            const std::uint64_t t0 =
                profiler_ ? telemetry::SimProfiler::nowNs() : 0;
            horizon_.advance(cycle_, horizon, oracleEnabled());
            if (profiler_) {
                profiler_->addDirect(
                    telemetry::SimProfiler::Bucket::HorizonSettle,
                    telemetry::SimProfiler::nowNs() - t0);
            }
        }
        cycle_ = horizon;
        if (cycle_ >= deadline) {
            VTSIM_FATAL("watchdog: kernel '", launchName(),
                        "' exceeded ", config_.maxCycles, " cycles");
        }
        if (sampler_ && cycle_ == sampler_->nextSampleAt())
            takeSample();
        if (preemptActive() && cycle_ % preemptBoundaryCycles_ == 0)
            preemptBoundaryTick();
        if (checkpointEvery_ != 0 && cycle_ % checkpointEvery_ == 0) {
            if (!checkpointPath_.empty())
                writeCheckpoint();
            if (preemptRequested_.exchange(false,
                                           std::memory_order_relaxed)) {
                preempted_ = true;
                break;
            }
        }
    }

    // Hand the components back the real writer (no metadata re-emit:
    // attachTraceJson already named the processes).
    mergeTraceStages();
    if (traceJson_) {
        for (auto &sm : sms_)
            sm->setTraceJson(traceJson_.get());
        for (std::uint32_t p = 0; p < partitions_.size(); ++p)
            partitions_[p]->setTraceJson(traceJson_.get(), numSms() + p);
        smStages_.clear();
        partStages_.clear();
    }
}

void
Gpu::mergeTraceStages()
{
    if (smStages_.empty() && partStages_.empty())
        return;
    std::vector<telemetry::TraceStage::Event> events;
    const auto collect = [&events](auto &stages) {
        for (auto &stage : stages) {
            if (stage->empty())
                continue;
            auto drained = stage->drain();
            events.insert(events.end(),
                          std::make_move_iterator(drained.begin()),
                          std::make_move_iterator(drained.end()));
        }
    };
    collect(partStages_);
    collect(smStages_);
    if (events.empty())
        return;
    // (cycle, rank, seq) is unique across stages — ranks identify the
    // emitting phase (admission scan < partition ticks < SM ticks) and
    // seq orders events within one stage — so plain sort suffices and
    // reproduces the sequential within-cycle emission order.
    std::sort(events.begin(), events.end(),
              [](const telemetry::TraceStage::Event &a,
                 const telemetry::TraceStage::Event &b) {
                  return std::tie(a.cycle, a.rank, a.seq) <
                         std::tie(b.cycle, b.rank, b.seq);
              });
    for (const auto &e : events)
        telemetry::TraceStage::replay(e, *traceJson_);
}

void
Gpu::replayEpochMemory()
{
    // Concatenating the per-SM logs in SM order and stable-sorting by
    // cycle reproduces the sequential issue order: within a cycle the
    // SMs tick in index order, and each SM's log is in issue order.
    struct Entry
    {
        const SmCore::EpochMemOp *op;
        std::uint32_t sm;
    };
    std::vector<Entry> ops;
    for (std::uint32_t s = 0; s < sms_.size(); ++s)
        for (const auto &op : sms_[s]->epochMemLog())
            ops.push_back({&op, s});
    std::stable_sort(ops.begin(), ops.end(),
                     [](const Entry &a, const Entry &b) {
                         return a.op->cycle < b.op->cycle;
                     });
    for (const Entry &e : ops) {
        const SmCore::EpochMemOp &op = *e.op;
        switch (op.op) {
          case Opcode::STG:
            for (const LaneAccess &a : op.accesses)
                gmem_.write32(a.addr, a.data);
            break;
          case Opcode::LDG:
            // The lane registers were filled with deferred-view values
            // at issue; patch any that a replayed write changed. Sound
            // because the destination is scoreboard-held past the epoch
            // end (epoch length <= l1HitLatency).
            for (const LaneAccess &a : op.accesses) {
                const std::uint32_t v = gmem_.read32(a.addr);
                if (v != a.observed)
                    sms_[e.sm]->patchLaneReg(op.slot, op.warpInCta,
                                             a.lane, op.dst, v);
            }
            break;
          case Opcode::ATOMG_ADD:
            // Re-execute against settled memory: this computes the true
            // per-lane old values even for same-address chains that all
            // observed one stale value under deferral.
            for (const LaneAccess &a : op.accesses) {
                const std::uint32_t old = gmem_.read32(a.addr);
                gmem_.write32(a.addr, old + a.data);
                if (op.dst != noReg && old != a.observed)
                    sms_[e.sm]->patchLaneReg(op.slot, op.warpInCta,
                                             a.lane, op.dst, old);
            }
            break;
          default:
            VTSIM_FATAL("unexpected opcode ",
                        unsigned(op.op), " in epoch memory log");
        }
    }
}

std::vector<std::vector<std::uint8_t>>
Gpu::captureShardImages()
{
    for (auto &sm : sms_)
        sm->flushFastForward();
    std::vector<std::vector<std::uint8_t>> images;
    images.reserve(2 + partitions_.size() + sms_.size());
    const auto capture = [&images](const SimComponent &comp) {
        Serializer ser;
        comp.save(ser);
        images.push_back(ser.buffer());
    };
    capture(noc_);
    for (const auto &p : partitions_)
        capture(*p);
    for (const auto &sm : sms_)
        capture(*sm);
    Serializer ser;
    gmem_.save(ser);
    images.push_back(ser.buffer());
    return images;
}

void
Gpu::restoreShardImages(const std::vector<std::vector<std::uint8_t>> &images)
{
    VTSIM_ASSERT(images.size() == 2 + partitions_.size() + sms_.size(),
                 "shard image count mismatch");
    const auto restore = [this](SimComponent &comp,
                                const std::vector<std::uint8_t> &image) {
        Deserializer des(image);
        des.sinkResolver = [](void *ctx, std::uint32_t sm_id)
            -> MemResponseSink * {
            return &static_cast<Gpu *>(ctx)->sms_.at(sm_id)->ldst();
        };
        des.sinkCtx = this;
        comp.restore(des);
        VTSIM_ASSERT(des.finished(), "trailing bytes in shard image");
    };
    std::size_t i = 0;
    restore(noc_, images[i++]);
    for (auto &p : partitions_)
        restore(*p, images[i++]);
    for (auto &sm : sms_)
        restore(*sm, images[i++]);
    Deserializer des(images[i]);
    gmem_.restore(des);
    VTSIM_ASSERT(des.finished(), "trailing bytes in shard memory image");
}

std::string
Gpu::shardImageName(std::size_t idx) const
{
    if (idx == 0)
        return "noc";
    idx -= 1;
    if (idx < partitions_.size())
        return "partition " + std::to_string(idx);
    idx -= partitions_.size();
    if (idx < sms_.size())
        return "sm" + std::to_string(idx);
    return "global memory";
}

void
Gpu::verifyShardEpoch(const std::vector<std::vector<std::uint8_t>> &pre,
                      const std::vector<std::uint64_t> &pre_dispatched,
                      Cycle from, Cycle to)
{
    const auto post = captureShardImages();
    restoreShardImages(pre);
    VTSIM_ASSERT(pre_dispatched.size() == grids_.size(),
                 "shard-oracle dispatcher snapshot mismatch");
    for (std::size_t g = 0; g < grids_.size(); ++g)
        grids_[g].dispatcher->setDispatched(pre_dispatched[g]);
    // The rerun must not re-emit the events the stages already hold.
    if (traceJson_) {
        for (auto &sm : sms_)
            sm->setTraceJson(nullptr);
        for (auto &p : partitions_)
            p->setTraceJson(nullptr, 0);
    }
    // The naive sequential loop over the epoch (plus the exit cycles
    // the barrier accounted): no sampler, checkpoint, fast-forward or
    // watchdog — those belong to the driver, not the machine.
    for (Cycle c = from; c < to; ++c) {
        for (std::uint32_t s = 0; s < sms_.size(); ++s) {
            const int g = pickAdmitGrid(s);
            if (g >= 0)
                sms_[s]->admitCta(grids_[g].dispatcher->next(), c,
                                  GridId(g));
        }
        noc_.tick(c);
        for (auto &p : partitions_)
            p->tick(c);
        for (auto &sm : sms_)
            sm->tick(c);
    }
    const auto rerun = captureShardImages();
    if (traceJson_) {
        for (std::uint32_t s = 0; s < sms_.size(); ++s)
            sms_[s]->setTraceJson(smStages_[s].get());
        for (std::uint32_t p = 0; p < partitions_.size(); ++p)
            partitions_[p]->setTraceJson(partStages_[p].get(),
                                         numSms() + p);
    }
    // The simulation continues from the rerun's state, which this diff
    // proves byte-identical to the sharded epoch's outcome.
    for (std::size_t i = 0; i < post.size(); ++i) {
        if (rerun[i] != post[i]) {
            std::size_t at = 0;
            const std::size_t common =
                std::min(rerun[i].size(), post[i].size());
            while (at < common && rerun[i][at] == post[i][at])
                ++at;
            VTSIM_FATAL("shard oracle: ", shardImageName(i),
                        " diverged in epoch [", from, ", ", to,
                        "): first differing byte at offset ", at,
                        " (sharded image ", post[i].size(),
                        " bytes, sequential rerun ", rerun[i].size(),
                        " bytes)");
        }
    }
}

} // namespace vtsim
