#include "sm/warp_scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace vtsim {

std::unique_ptr<WarpScheduler>
WarpScheduler::create(SchedulerPolicy policy, std::uint32_t active_set)
{
    switch (policy) {
      case SchedulerPolicy::LooseRoundRobin:
        return std::make_unique<LrrScheduler>();
      case SchedulerPolicy::GreedyThenOldest:
        return std::make_unique<GtoScheduler>();
      case SchedulerPolicy::TwoLevel:
        return std::make_unique<TwoLevelScheduler>(active_set);
    }
    VTSIM_PANIC("unknown scheduler policy");
}

std::size_t
LrrScheduler::pick(const std::vector<WarpCandidate> &candidates)
{
    VTSIM_ASSERT(!candidates.empty(), "pick() with no candidates");
    // First candidate whose key strictly follows the last issued key in
    // circular order; falls back to the smallest key.
    std::size_t best = candidates.size();
    std::size_t smallest = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].key < candidates[smallest].key)
            smallest = i;
        if (candidates[i].key > lastKey_ &&
            (best == candidates.size() ||
             candidates[i].key < candidates[best].key)) {
            best = i;
        }
    }
    const std::size_t chosen = best != candidates.size() ? best : smallest;
    lastKey_ = candidates[chosen].key;
    return chosen;
}

std::size_t
GtoScheduler::pick(const std::vector<WarpCandidate> &candidates)
{
    VTSIM_ASSERT(!candidates.empty(), "pick() with no candidates");
    std::size_t oldest = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].key == greedyKey_) {
            return i; // Stay greedy.
        }
        if (candidates[i].age < candidates[oldest].age)
            oldest = i;
    }
    greedyKey_ = candidates[oldest].key;
    return oldest;
}

std::size_t
TwoLevelScheduler::pick(const std::vector<WarpCandidate> &candidates)
{
    VTSIM_ASSERT(!candidates.empty(), "pick() with no candidates");

    // Prefer ready members of the active set, LRR among them.
    std::size_t best = candidates.size();
    std::size_t smallest = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (!activeSet_.count(candidates[i].key))
            continue;
        if (smallest == candidates.size() ||
            candidates[i].key < candidates[smallest].key) {
            smallest = i;
        }
        if (candidates[i].key > lastKey_ &&
            (best == candidates.size() ||
             candidates[i].key < candidates[best].key)) {
            best = i;
        }
    }
    if (smallest != candidates.size()) {
        const std::size_t chosen =
            best != candidates.size() ? best : smallest;
        lastKey_ = candidates[chosen].key;
        return chosen;
    }

    // Nothing in the active set is ready: promote the oldest pending warp
    // (evicting an arbitrary stale member when full) and issue it.
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i)
        if (candidates[i].age < candidates[oldest].age)
            oldest = i;
    if (activeSet_.size() >= activeSetSize_)
        activeSet_.erase(activeSet_.begin());
    activeSet_.insert(candidates[oldest].key);
    lastKey_ = candidates[oldest].key;
    return oldest;
}

} // namespace vtsim
