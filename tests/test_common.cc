/**
 * @file
 * Unit tests for src/common: ActiveMask, integer helpers, Dim3, Rng.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/active_mask.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace vtsim {
namespace {

TEST(ActiveMask, DefaultIsEmpty)
{
    ActiveMask m;
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.any());
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.firstLane(), warpSize);
}

TEST(ActiveMask, AllAndNone)
{
    EXPECT_TRUE(ActiveMask::all().full());
    EXPECT_EQ(ActiveMask::all().count(), warpSize);
    EXPECT_TRUE(ActiveMask::none().empty());
}

TEST(ActiveMask, FirstLanes)
{
    EXPECT_EQ(ActiveMask::firstLanes(0).count(), 0u);
    EXPECT_EQ(ActiveMask::firstLanes(5).count(), 5u);
    EXPECT_EQ(ActiveMask::firstLanes(32).count(), 32u);
    EXPECT_EQ(ActiveMask::firstLanes(99).count(), 32u);
    for (std::uint32_t lane = 0; lane < 5; ++lane)
        EXPECT_TRUE(ActiveMask::firstLanes(5).test(lane));
    EXPECT_FALSE(ActiveMask::firstLanes(5).test(5));
}

TEST(ActiveMask, SetClearTest)
{
    ActiveMask m;
    m.set(3);
    m.set(31);
    EXPECT_TRUE(m.test(3));
    EXPECT_TRUE(m.test(31));
    EXPECT_FALSE(m.test(0));
    EXPECT_EQ(m.count(), 2u);
    EXPECT_EQ(m.firstLane(), 3u);
    m.clear(3);
    EXPECT_FALSE(m.test(3));
    EXPECT_EQ(m.firstLane(), 31u);
}

TEST(ActiveMask, SetAlgebra)
{
    const ActiveMask a(0b1100u);
    const ActiveMask b(0b1010u);
    EXPECT_EQ((a & b).bits(), 0b1000u);
    EXPECT_EQ((a | b).bits(), 0b1110u);
    EXPECT_EQ(a.minus(b).bits(), 0b0100u);
    EXPECT_EQ((~a & ActiveMask::firstLanes(4)).bits(), 0b0011u);
}

TEST(ActiveMask, ToStringPutsLaneZeroRightmost)
{
    ActiveMask m;
    m.set(0);
    const std::string s = m.toString();
    ASSERT_EQ(s.size(), warpSize);
    EXPECT_EQ(s.back(), '1');
    EXPECT_EQ(s.front(), '0');
}

TEST(ActiveMask, Equality)
{
    EXPECT_EQ(ActiveMask(5u), ActiveMask(5u));
    EXPECT_NE(ActiveMask(5u), ActiveMask(4u));
}

TEST(Types, RoundUp)
{
    EXPECT_EQ(roundUp(0, 4), 0u);
    EXPECT_EQ(roundUp(1, 4), 4u);
    EXPECT_EQ(roundUp(4, 4), 4u);
    EXPECT_EQ(roundUp(5, 4), 8u);
    EXPECT_EQ(roundUp(63, 64), 64u);
}

TEST(Types, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 3), 0u);
    EXPECT_EQ(ceilDiv(1, 3), 1u);
    EXPECT_EQ(ceilDiv(3, 3), 1u);
    EXPECT_EQ(ceilDiv(4, 3), 2u);
}

TEST(Types, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(Types, Dim3Count)
{
    EXPECT_EQ(Dim3().count(), 1u);
    EXPECT_EQ(Dim3(7).count(), 7u);
    EXPECT_EQ(Dim3(2, 3, 4).count(), 24u);
    EXPECT_EQ(Dim3(2, 3), Dim3(2, 3, 1));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextFloatUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Rng, NextBoolRespectsProbability)
{
    Rng rng(17);
    int trues = 0;
    for (int i = 0; i < 10000; ++i)
        trues += rng.nextBool(0.25);
    EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

/** Property sweep: nextBelow never escapes its bound across bounds. */
class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, AlwaysBelowBound)
{
    const std::uint64_t bound = GetParam();
    Rng rng(bound * 2654435761u + 1);
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(rng.nextBelow(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 100, 1u << 20,
                                           (1ull << 63) + 5));

} // namespace
} // namespace vtsim
