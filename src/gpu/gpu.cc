#include "gpu/gpu.hh"

#include "common/log.hh"

namespace vtsim {

Gpu::Gpu(const GpuConfig &config)
    : config_(config),
      noc_(NocParams{config.nocLatency, config.nocFlitsPerCycle,
                     config.numSms, config.numMemPartitions})
{
    config_.validate();
    for (std::uint32_t p = 0; p < config_.numMemPartitions; ++p) {
        partitions_.push_back(
            std::make_unique<MemoryPartition>(p, config_, noc_));
    }
    for (std::uint32_t s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<SmCore>(s, config_, noc_));

    noc_.setRequestSink([this](const MemRequest &req, Cycle now) {
        partitions_[partitionOf(req.lineAddr)]->receive(req, now);
    });
    noc_.setResponseSink([](const MemRequest &req, Cycle) {
        VTSIM_ASSERT(req.sink, "response with no sink");
        req.sink->memResponse(req.token);
    });
    noc_.setRouter([this](Addr line_addr) { return partitionOf(line_addr); });
}

std::uint32_t
Gpu::partitionOf(Addr line_addr) const
{
    return (line_addr / config_.l2LineSize) % config_.numMemPartitions;
}

bool
Gpu::allIdle() const
{
    for (const auto &sm : sms_)
        if (!sm->idle())
            return false;
    for (const auto &p : partitions_)
        if (!p->idle())
            return false;
    return noc_.idle();
}

void
Gpu::dumpStats(std::ostream &os)
{
    for (auto &sm : sms_) {
        sm->stats().dump(os);
        sm->vt().stats().dump(os);
        sm->ldst().stats().dump(os);
        sm->ldst().l1().stats().dump(os);
    }
    for (auto &p : partitions_) {
        p->l2().stats().dump(os);
        p->dram().stats().dump(os);
    }
    noc_.stats().dump(os);
}

void
Gpu::flushCaches()
{
    for (auto &sm : sms_)
        sm->flushCaches();
    for (auto &p : partitions_)
        p->flushCaches();
}

KernelStats
Gpu::launch(const Kernel &kernel, const LaunchParams &launch)
{
    if (launch.numCtas() == 0)
        VTSIM_FATAL("empty grid");
    if (launch.threadsPerCta() == 0)
        VTSIM_FATAL("empty CTA");

    CtaDispatcher dispatcher(launch);
    for (auto &sm : sms_)
        sm->launchKernel(kernel, launch, gmem_);

    // Snapshot counters so stats are per-launch deltas.
    struct Snapshot
    {
        std::uint64_t instr, tinstr, ctas, swapOuts, swapIns;
        std::uint64_t l1h, l1m;
        StallBreakdown stalls;
    };
    std::vector<Snapshot> before(sms_.size());
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        auto &sm = *sms_[i];
        before[i] = {sm.instructionsIssued(), sm.threadInstructions(),
                     sm.ctasCompleted(), sm.vt().swapOuts(),
                     sm.vt().swapIns(), sm.ldst().l1().hits(),
                     sm.ldst().l1().misses(), sm.stallBreakdown()};
    }
    std::uint64_t l2h0 = 0, l2m0 = 0, drh0 = 0, drm0 = 0, drb0 = 0;
    for (auto &p : partitions_) {
        l2h0 += p->l2().hits();
        l2m0 += p->l2().misses();
        drh0 += p->dram().rowHits();
        drm0 += p->dram().rowMisses();
        drb0 += p->dram().bytesTransferred();
    }

    const Cycle start = cycle_;
    const Cycle deadline = start + config_.maxCycles;
    while (true) {
        // CTA work distribution: one CTA per SM per cycle, round-robin.
        for (auto &sm : sms_) {
            if (dispatcher.hasWork() && sm->canAdmitCta())
                sm->admitCta(dispatcher.next(), cycle_);
        }

        noc_.tick(cycle_);
        for (auto &p : partitions_)
            p->tick(cycle_);
        for (auto &sm : sms_)
            sm->tick(cycle_);

        ++cycle_;
        if (!dispatcher.hasWork() && allIdle())
            break;
        if (cycle_ >= deadline) {
            VTSIM_FATAL("watchdog: kernel '", kernel.name(),
                        "' exceeded ", config_.maxCycles, " cycles");
        }
    }

    KernelStats stats;
    stats.cycles = cycle_ - start;
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        auto &sm = *sms_[i];
        stats.warpInstructions +=
            sm.instructionsIssued() - before[i].instr;
        stats.threadInstructions +=
            sm.threadInstructions() - before[i].tinstr;
        stats.ctasCompleted += sm.ctasCompleted() - before[i].ctas;
        stats.swapOuts += sm.vt().swapOuts() - before[i].swapOuts;
        stats.swapIns += sm.vt().swapIns() - before[i].swapIns;
        stats.l1Hits += sm.ldst().l1().hits() - before[i].l1h;
        stats.l1Misses += sm.ldst().l1().misses() - before[i].l1m;
        const StallBreakdown &sb = sm.stallBreakdown();
        const StallBreakdown &b0 = before[i].stalls;
        stats.stalls.issued += sb.issued - b0.issued;
        stats.stalls.memStall += sb.memStall - b0.memStall;
        stats.stalls.shortStall += sb.shortStall - b0.shortStall;
        stats.stalls.barrierStall += sb.barrierStall - b0.barrierStall;
        stats.stalls.swapStall += sb.swapStall - b0.swapStall;
        stats.stalls.idle += sb.idle - b0.idle;
    }
    std::uint64_t l2h = 0, l2m = 0, drh = 0, drm = 0, drb = 0;
    for (auto &p : partitions_) {
        l2h += p->l2().hits();
        l2m += p->l2().misses();
        drh += p->dram().rowHits();
        drm += p->dram().rowMisses();
        drb += p->dram().bytesTransferred();
    }
    stats.l2Hits = l2h - l2h0;
    stats.l2Misses = l2m - l2m0;
    stats.dramRowHits = drh - drh0;
    stats.dramRowMisses = drm - drm0;
    stats.dramBytes = drb - drb0;

    VTSIM_ASSERT(stats.ctasCompleted == launch.numCtas(),
                 "CTA completion mismatch: ", stats.ctasCompleted, " of ",
                 launch.numCtas());
    stats.ipc = stats.cycles
                    ? double(stats.warpInstructions) / stats.cycles
                    : 0.0;
    return stats;
}

} // namespace vtsim
