#!/usr/bin/env python3
"""Validate the framing of a vtsim checkpoint file.

Standard library only (runs on a bare CI image). Checks the header
(magic "vtsimCKP", version 2, payload size matching the file), then
walks the top-level section records — tag[4] + u32 length + body — to
the exact end of the payload, and requires the sections a Gpu always
writes ("conf", "gpux", "gmem", "horz") to be present. Section bodies
are component internals and are not interpreted here; the simulator's
own Deserializer asserts per-component byte-exactness on restore.

Usage: validate_checkpoint.py <file.ckpt> [--dump]
Exit status 0 when valid; 1 with one line per violation otherwise.
--dump additionally prints one line per top-level section.
"""

import pathlib
import struct
import sys

MAGIC = b"vtsimCKP"
VERSION = 2
HEADER_SIZE = len(MAGIC) + 4 + 8
REQUIRED_SECTIONS = ("conf", "gpux", "gmem", "horz")


def walk_sections(payload, errors):
    """Return [(tag, offset, length)] for the top-level records."""
    sections = []
    off = 0
    while off < len(payload):
        if off + 8 > len(payload):
            errors.append(
                f"payload[{off}]: truncated section header "
                f"({len(payload) - off} bytes left, need 8)"
            )
            break
        tag = payload[off:off + 4]
        if not all(0x20 <= c < 0x7F for c in tag):
            errors.append(f"payload[{off}]: non-printable section tag {tag!r}")
            break
        (length,) = struct.unpack_from("<I", payload, off + 4)
        if off + 8 + length > len(payload):
            errors.append(
                f"payload[{off}]: section '{tag.decode()}' length {length} "
                f"overruns the payload"
            )
            break
        sections.append((tag.decode(), off, length))
        off += 8 + length
    return sections


def main(argv):
    args = [a for a in argv[1:] if a != "--dump"]
    dump = "--dump" in argv[1:]
    if len(args) != 1:
        print("usage: validate_checkpoint.py <file.ckpt> [--dump]",
              file=sys.stderr)
        return 2
    path = pathlib.Path(args[0])
    data = path.read_bytes()

    errors = []
    if len(data) < HEADER_SIZE:
        errors.append(f"file is {len(data)} bytes; header alone is "
                      f"{HEADER_SIZE}")
    else:
        if data[:8] != MAGIC:
            errors.append(f"bad magic {data[:8]!r}, expected {MAGIC!r}")
        (version,) = struct.unpack_from("<I", data, 8)
        if version != VERSION:
            errors.append(f"unsupported version {version}, expected "
                          f"{VERSION}")
        (payload_size,) = struct.unpack_from("<Q", data, 12)
        if HEADER_SIZE + payload_size != len(data):
            errors.append(
                f"payload size {payload_size} + header {HEADER_SIZE} != "
                f"file size {len(data)}"
            )

    sections = []
    if not errors:
        sections = walk_sections(data[HEADER_SIZE:], errors)
        tags = [tag for tag, _, _ in sections]
        for required in REQUIRED_SECTIONS:
            if required not in tags:
                errors.append(f"missing required section '{required}'")

    if dump:
        for tag, off, length in sections:
            print(f"  {tag}  offset {HEADER_SIZE + off:8d}  "
                  f"{length:8d} bytes")

    for error in errors:
        print(f"{path}: {error}", file=sys.stderr)
    if errors:
        return 1
    print(f"{path}: valid vtsim-ckpt-v{VERSION}, {len(sections)} "
          f"sections, {len(data)} bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
