# Empty compiler generated dependencies file for tab3_storage_overhead.
# This may be replaced when dependencies are built.
