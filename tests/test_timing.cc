/**
 * @file
 * Timing-precision tests: the latency/throughput knobs of the SM
 * pipeline must be visible, cycle-accurately, in measured runtimes.
 * Each test builds two kernels differing by a known amount of work and
 * checks the cycle delta against the configured parameter.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

namespace vtsim {
namespace {

GpuConfig
oneWarpConfig()
{
    GpuConfig cfg = GpuConfig::testMini(); // 1 SM, 1 scheduler
    return cfg;
}

/** Run @p kernel with one warp and return the cycle count. */
Cycle
runOneWarp(const Kernel &kernel)
{
    Gpu gpu(oneWarpConfig());
    LaunchParams lp;
    lp.cta = Dim3(32);
    lp.grid = Dim3(1);
    return gpu.launch(kernel, lp).cycles;
}

/** movi r0 then @p n DEPENDENT iadd r0, r0, 1 then exit. */
Kernel
dependentAluChain(std::uint32_t n)
{
    KernelBuilder kb("chain" + std::to_string(n));
    kb.movi(0, 0);
    for (std::uint32_t i = 0; i < n; ++i)
        kb.alui(Opcode::IADD, 0, 0, 1);
    kb.exit();
    return kb.build();
}

/** @p n INDEPENDENT movi instructions then exit. */
Kernel
independentAluRun(std::uint32_t n)
{
    KernelBuilder kb("indep" + std::to_string(n));
    for (std::uint32_t i = 0; i < n; ++i)
        kb.movi(i % 8, static_cast<std::int32_t>(i));
    kb.exit();
    return kb.build();
}

TEST(Timing, DependentAluChainPaysFullLatencyPerLink)
{
    const GpuConfig cfg = oneWarpConfig();
    const Cycle short_run = runOneWarp(dependentAluChain(10));
    const Cycle long_run = runOneWarp(dependentAluChain(40));
    // 30 extra dependent adds, each serialised by the ALU latency.
    EXPECT_EQ(long_run - short_run, 30u * cfg.aluLatency);
}

TEST(Timing, IndependentAluIssuesOnePerCycle)
{
    const Cycle short_run = runOneWarp(independentAluRun(10));
    const Cycle long_run = runOneWarp(independentAluRun(50));
    // 40 extra independent instructions, single warp, 1 issue/cycle.
    EXPECT_EQ(long_run - short_run, 40u);
}

TEST(Timing, SfuChainPaysSfuLatency)
{
    const GpuConfig cfg = oneWarpConfig();
    auto chain = [](std::uint32_t n) {
        KernelBuilder kb("sfu" + std::to_string(n));
        kb.movi(0, 4);
        kb.unary(Opcode::I2F, 1, 0);
        for (std::uint32_t i = 0; i < n; ++i)
            kb.unary(Opcode::FSQRT, 1, 1);
        kb.exit();
        return kb.build();
    };
    const Cycle short_run = runOneWarp(chain(5));
    const Cycle long_run = runOneWarp(chain(15));
    EXPECT_EQ(long_run - short_run, 10u * cfg.sfuLatency);
}

TEST(Timing, SharedMemoryBankConflictsSerialise)
{
    const GpuConfig cfg = oneWarpConfig();
    // Dependent LDS chain, conflict-free (stride 1 word per lane)
    // versus full 32-way conflict (stride 32 words per lane).
    auto kernel = [](std::uint32_t word_stride, std::uint32_t n) {
        KernelBuilder kb("sh");
        kb.shared(32 * 32 * 4);
        kb.s2r(0, SpecialReg::LaneId);
        kb.alui(Opcode::IMUL, 0, 0, 4 * word_stride); // byte address
        kb.movi(1, 0);
        for (std::uint32_t i = 0; i < n; ++i) {
            kb.lds(2, 0);                      // load (timed)
            kb.alu(Opcode::IADD, 1, 1, 2);     // consume: serialises
        }
        kb.exit();
        return kb.build();
    };
    const Cycle fast10 = runOneWarp(kernel(1, 10));
    const Cycle fast30 = runOneWarp(kernel(1, 30));
    const Cycle slow10 = runOneWarp(kernel(32, 10));
    const Cycle slow30 = runOneWarp(kernel(32, 30));
    // Per additional access, the conflicted version pays 31 extra
    // serialisation passes.
    const Cycle fast_per = (fast30 - fast10) / 20;
    const Cycle slow_per = (slow30 - slow10) / 20;
    EXPECT_EQ(slow_per - fast_per, 31u);
    (void)cfg;
}

TEST(Timing, L1HitLatencyVisibleInLoadChain)
{
    const GpuConfig cfg = oneWarpConfig();
    // Warm one line, then a dependent chain of loads hitting it.
    auto kernel = [](std::uint32_t n) {
        KernelBuilder kb("l1");
        kb.ldp(0, 0); // base address
        kb.movi(1, 0);
        for (std::uint32_t i = 0; i < n; ++i) {
            kb.ldg(2, 0);
            kb.alu(Opcode::IADD, 1, 1, 2);
        }
        kb.exit();
        return kb.build();
    };
    auto run = [](const Kernel &k) {
        Gpu gpu(oneWarpConfig());
        const Addr buf = gpu.memory().alloc(128);
        LaunchParams lp;
        lp.cta = Dim3(32);
        lp.grid = Dim3(1);
        lp.params = {std::uint32_t(buf)};
        return gpu.launch(k, lp).cycles;
    };
    const Cycle short_run = run(kernel(5));
    const Cycle long_run = run(kernel(25));
    // After the first (miss) access, each extra load pays roughly the
    // L1 hit latency plus its consume add.
    const Cycle per = (long_run - short_run) / 20;
    EXPECT_GE(per, cfg.l1HitLatency);
    EXPECT_LE(per, cfg.l1HitLatency + cfg.aluLatency + 4);
}

TEST(Timing, MemoryLatencyDominatesColdLoad)
{
    const GpuConfig cfg = oneWarpConfig();
    // One cold load's round trip must reflect NoC + L2 + DRAM latency.
    KernelBuilder kb("cold");
    kb.ldp(0, 0);
    kb.ldg(1, 0);
    kb.alu(Opcode::IADD, 1, 1, 1); // consume
    kb.exit();
    Gpu gpu(cfg);
    const Addr buf = gpu.memory().alloc(128);
    LaunchParams lp;
    lp.cta = Dim3(32);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(buf)};
    const Cycle cycles = gpu.launch(kb.build(), lp).cycles;
    const Cycle floor = 2 * cfg.nocLatency + cfg.l2HitLatency +
                        cfg.dramRowMissLatency;
    EXPECT_GT(cycles, floor);
    EXPECT_LT(cycles, floor + 200);
}

} // namespace
} // namespace vtsim
