/**
 * @file
 * FIG-9 (ablation): the design choices inside the VT manager —
 * swap-out trigger (all-warps-stalled vs any-warp-stalled) and swap-in
 * selection (ready-first vs oldest-first) — plus the stall-threshold
 * hysteresis. The paper's policy (all-stalled + ready-first) should win
 * or tie everywhere.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-9", "swap-policy ablation (speedup over baseline)");
    const GpuConfig base = GpuConfig::fermiLike();
    const char *subset[] = {"vecadd", "saxpy", "reduce", "stencil",
                            "histogram"};

    struct Variant
    {
        const char *name;
        VtSwapTrigger trigger;
        VtSwapInPolicy pick;
        std::uint32_t threshold;
    };
    const Variant variants[] = {
        {"paper(all+ready)", VtSwapTrigger::AllWarpsStalled,
         VtSwapInPolicy::ReadyFirst, 4},
        {"any-warp", VtSwapTrigger::AnyWarpStalled,
         VtSwapInPolicy::ReadyFirst, 4},
        {"oldest-first", VtSwapTrigger::AllWarpsStalled,
         VtSwapInPolicy::OldestFirst, 4},
        {"no-hysteresis", VtSwapTrigger::AllWarpsStalled,
         VtSwapInPolicy::ReadyFirst, 0},
    };

    std::printf("%-14s", "benchmark");
    for (const auto &v : variants)
        std::printf(" %17s", v.name);
    std::printf("\n");

    for (const char *name : subset) {
        const RunResult ref = runWorkload(name, base, benchScale);
        std::printf("%-14s", name);
        for (const auto &v : variants) {
            GpuConfig cfg = base;
            cfg.vtEnabled = true;
            cfg.vtSwapTrigger = v.trigger;
            cfg.vtSwapInPolicy = v.pick;
            cfg.vtStallThreshold = v.threshold;
            const RunResult r = runWorkload(name, cfg, benchScale);
            std::printf("    %6.2fx (%4llu)",
                        double(ref.stats.cycles) / r.stats.cycles,
                        (unsigned long long)r.stats.swapOuts);
        }
        std::printf("\n");
    }
    std::printf("(parenthesised: swap-outs performed)\n");
    return 0;
}
