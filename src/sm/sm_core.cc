#include "sm/sm_core.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"
#include "isa/disassembler.hh"
#include "func/global_memory.hh"
#include "sim/serialize_util.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace_json.hh"

namespace vtsim {

SmCore::SmCore(SmId id, const GpuConfig &config, Interconnect &noc)
    : id_(id), config_(config), ldst_(id, config, noc, *this),
      shmem_(config.sharedMemLatency, "sm" + std::to_string(id) + ".shmem"),
      vt_(config, *this, id),
      stats_("sm" + std::to_string(id))
{
    for (std::uint32_t s = 0; s < config.numSchedulers; ++s) {
        // Two-level active set: a quarter of the warp slots per scheduler.
        const std::uint32_t active_set =
            std::max(1u, config.effMaxWarpsPerSm() /
                             (4 * config.numSchedulers));
        schedulers_.push_back(
            WarpScheduler::create(config.schedulerPolicy, active_set));
    }
    ready_.resize(config.numSchedulers);
    schedAlive_.assign(config.numSchedulers, 0);
    schedFrozenAlive_.assign(config.numSchedulers, 0);
    schedIssuableBarrier_.assign(config.numSchedulers, 0);
    schedIssuableOffchip_.assign(config.numSchedulers, 0);
    stats_.addCounter("instructions", &instructionsIssued_,
                      "warp instructions issued");
    stats_.addCounter("thread_instructions", &threadInstructions_,
                      "per-thread instructions (mask population)");
    stats_.addCounter("ctas_completed", &ctasCompleted_, "CTAs retired");
    for (GridId g = 0; g < maxGrids; ++g) {
        const std::string p = "grid" + std::to_string(g);
        stats_.addCounter(p + ".instructions", &gridInstructions_[g],
                          "warp instructions of grid " + std::to_string(g));
        stats_.addCounter(p + ".thread_instructions",
                          &gridThreadInstructions_[g],
                          "thread instructions of grid " +
                              std::to_string(g));
        stats_.addCounter(p + ".ctas_completed", &gridCtasCompleted_[g],
                          "CTAs of grid " + std::to_string(g) +
                              " retired");
    }
    stats_.addValue("issue.issued", &stalls_.issued,
                    "scheduler-cycles that issued");
    stats_.addValue("issue.bubbles.mem", &stalls_.memStall,
                    "scheduler-cycles blocked on off-chip memory");
    stats_.addValue("issue.bubbles.short", &stalls_.shortStall,
                    "scheduler-cycles blocked on short dependences/ports");
    stats_.addValue("issue.bubbles.barrier", &stalls_.barrierStall,
                    "scheduler-cycles with everyone parked at a barrier");
    stats_.addValue("issue.bubbles.swap", &stalls_.swapStall,
                    "scheduler-cycles with only swap-frozen CTAs resident");
    stats_.addValue("issue.bubbles.idle", &stalls_.idle,
                    "scheduler-cycles with no warps at all");
    if (config.throttleEnabled) {
        ThrottleParams tp;
        tp.epochCycles = config.throttleEpochCycles;
        tp.highWater = config.throttleHighWater;
        tp.lowWater = config.throttleLowWater;
        throttler_ = std::make_unique<CtaThrottler>(
            tp, config.effMaxCtasPerSm(), id);
    }
}

void
SmCore::registerTelemetry(telemetry::StatRegistry &reg)
{
    using telemetry::KernelStatRole;
    reg.addGroup(stats_);
    reg.setRole(stats_.name() + ".instructions",
                KernelStatRole::WarpInstructions);
    reg.setRole(stats_.name() + ".thread_instructions",
                KernelStatRole::ThreadInstructions);
    reg.setRole(stats_.name() + ".ctas_completed",
                KernelStatRole::CtasCompleted);
    reg.setRole(stats_.name() + ".issue.issued",
                KernelStatRole::StallIssued);
    reg.setRole(stats_.name() + ".issue.bubbles.mem",
                KernelStatRole::StallMem);
    reg.setRole(stats_.name() + ".issue.bubbles.short",
                KernelStatRole::StallShort);
    reg.setRole(stats_.name() + ".issue.bubbles.barrier",
                KernelStatRole::StallBarrier);
    reg.setRole(stats_.name() + ".issue.bubbles.swap",
                KernelStatRole::StallSwap);
    reg.setRole(stats_.name() + ".issue.bubbles.idle",
                KernelStatRole::StallIdle);

    reg.addGroup(vt_.stats());
    reg.setRole(vt_.stats().name() + ".swap_outs", KernelStatRole::SwapOuts);
    reg.setRole(vt_.stats().name() + ".swap_ins", KernelStatRole::SwapIns);

    reg.addGroup(ldst_.stats());
    reg.addGroup(ldst_.l1().stats());
    reg.setRole(ldst_.l1().stats().name() + ".hits",
                KernelStatRole::L1Hits);
    reg.setRole(ldst_.l1().stats().name() + ".misses",
                KernelStatRole::L1Misses);

    // Per-grid splits (concurrent launches): same roles, tagged with the
    // grid so StatsSnapshot::deltaGrid can assemble per-grid KernelStats.
    for (GridId g = 0; g < maxGrids; ++g) {
        const std::string p = ".grid" + std::to_string(g);
        reg.setRole(stats_.name() + p + ".instructions",
                    KernelStatRole::WarpInstructions, g);
        reg.setRole(stats_.name() + p + ".thread_instructions",
                    KernelStatRole::ThreadInstructions, g);
        reg.setRole(stats_.name() + p + ".ctas_completed",
                    KernelStatRole::CtasCompleted, g);
        reg.setRole(vt_.stats().name() + p + ".swap_outs",
                    KernelStatRole::SwapOuts, g);
        reg.setRole(vt_.stats().name() + p + ".swap_ins",
                    KernelStatRole::SwapIns, g);
        reg.setRole(ldst_.l1().stats().name() + p + ".hits",
                    KernelStatRole::L1Hits, g);
        reg.setRole(ldst_.l1().stats().name() + p + ".misses",
                    KernelStatRole::L1Misses, g);
    }

    reg.addGroup(shmem_.stats());
    if (throttler_)
        reg.addGroup(throttler_->stats());
}

void
SmCore::setTraceJson(telemetry::TraceJsonWriter *writer)
{
    traceJson_ = writer;
    vt_.setTraceJson(writer);
}

void
SmCore::setMtrace(MtraceWriter *writer)
{
    mtrace_ = writer;
    ldst_.setMtraceWriter(writer);
}

void
SmCore::beginReplay(const std::vector<MtraceAccess> *slice, Cycle base)
{
    VTSIM_ASSERT(residentCount_ == 0, "replay with CTAs resident");
    onExternalEvent();
    replayMode_ = true;
    replay_ = slice;
    replayCursor_ = 0;
    replayBase_ = base;
}

void
SmCore::resumeReplay(const std::vector<MtraceAccess> *slice)
{
    VTSIM_ASSERT(replayMode_, "resumeReplay on a functional-mode SM");
    VTSIM_ASSERT(replayCursor_ <= slice->size(),
                 "restored replay cursor past the trace slice");
    replay_ = slice;
}

void
SmCore::beginGridBinding(GlobalMemory &gmem)
{
    VTSIM_ASSERT(residentCount_ == 0, "kernel launch with CTAs resident");
    onExternalEvent();
    grids_.clear();
    gmem_ = &gmem;

    // Active CTAs respect the scheduling limit, so no sweep can see more
    // than effMaxWarpsPerSm() candidates: size the scratch and the ready
    // lists once here instead of growing them over the first ticks.
    cands_.reserve(config_.effMaxWarpsPerSm());
    refs_.reserve(config_.effMaxWarpsPerSm());
    decodes_.reserve(config_.effMaxWarpsPerSm());
    for (auto &list : ready_)
        list.reserve(config_.effMaxWarpsPerSm());
}

void
SmCore::bindGrid(GridId grid, const Kernel &kernel,
                 const LaunchParams &launch)
{
    VTSIM_ASSERT(grid < maxGrids, "grid id ", grid, " out of range");
    if (grid >= grids_.size())
        grids_.resize(grid + 1);
    grids_[grid].kernel = &kernel;
    grids_[grid].launch = &launch;

    const std::uint32_t warps_per_cta = launch.warpsPerCta();
    const std::uint32_t regs_per_warp =
        roundUp(std::uint64_t(kernel.regsPerThread()) * warpSize,
                config_.regAllocGranularity);
    CtaFootprint fp;
    fp.warpsPerCta = warps_per_cta;
    fp.threadsPerCta = launch.threadsPerCta();
    fp.regsPerCta = warps_per_cta * regs_per_warp;
    fp.sharedPerCta = roundUp(kernel.sharedBytesPerCta(),
                              config_.sharedAllocGranularity);

    if (fp.warpsPerCta > config_.effMaxWarpsPerSm() ||
        fp.threadsPerCta > config_.effMaxThreadsPerSm()) {
        VTSIM_FATAL("CTA shape of kernel '", kernel.name(),
                    "' exceeds the SM scheduling limit");
    }
    if (fp.regsPerCta > config_.registersPerSm ||
        fp.sharedPerCta > config_.sharedMemPerSm) {
        VTSIM_FATAL("one CTA of kernel '", kernel.name(),
                    "' exceeds the SM capacity limit");
    }
    vt_.configureGrid(grid, fp);
}

bool
SmCore::canAdmitCta(GridId grid) const
{
    return grid < grids_.size() && grids_[grid].kernel != nullptr &&
           vt_.canAdmit(grid);
}

void
SmCore::admitCta(const CtaAssignment &assignment, Cycle now, GridId grid)
{
    VTSIM_ASSERT(canAdmitCta(grid), "admitCta without canAdmitCta");
    onExternalEvent();

    VirtualCtaId slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = ctas_.size();
        ctas_.emplace_back();
    }

    const Kernel &kernel = *grids_[grid].kernel;
    const LaunchParams &launch = *grids_[grid].launch;
    VirtualCta &cta = ctas_[slot];
    cta.valid = true;
    cta.grid = grid;
    cta.age = nextCtaAge_++;
    cta.pendingOffChipTotal = 0;
    const std::uint32_t tpc = launch.threadsPerCta();
    cta.func.init(assignment.linearId, assignment.idx, tpc,
                  kernel.regsPerThread(), kernel.sharedBytesPerCta());

    const std::uint32_t warps = launch.warpsPerCta();
    cta.warps.assign(warps, WarpContext());
    cta.warpsAlive = warps;
    cta.schedWarps.assign(config_.numSchedulers, {});
    cta.aliveBySched.assign(config_.numSchedulers, 0);
    cta.barrierBySched.assign(config_.numSchedulers, 0);
    cta.offchipBySched.assign(config_.numSchedulers, 0);
    for (std::uint32_t w = 0; w < warps; ++w) {
        const std::uint32_t first = w * warpSize;
        const std::uint32_t live = std::min(warpSize, tpc - first);
        const std::uint32_t sched =
            (cta.age * warps + w) % config_.numSchedulers;
        cta.warps[w].init(slot, w, ActiveMask::firstLanes(live),
                          kernel.regsPerThread(), sched);
        cta.schedWarps[sched].push_back(w);
        ++cta.aliveBySched[sched];
    }
    // The CTA enters the aggregates as frozen (it is admitted Inactive);
    // onAdmit may activate it at once, which fires onCtaIssuableChanged
    // and moves the counters over and publishes the warps.
    for (std::uint32_t s = 0; s < config_.numSchedulers; ++s) {
        schedAlive_[s] += cta.aliveBySched[s];
        schedFrozenAlive_[s] += cta.aliveBySched[s];
    }

    ++residentCount_;
    barriers_.ctaLaunched(slot);
    vt_.onAdmit(slot, now, grid);
}

std::uint32_t
SmCore::forcePreemptGrid(GridId grid, std::uint32_t max_ctas, Cycle now)
{
    onExternalEvent();
    std::uint32_t swapped = 0;
    for (VirtualCtaId slot = 0;
         slot < ctas_.size() && swapped < max_ctas; ++slot) {
        const VirtualCta &cta = ctas_[slot];
        if (!cta.valid || cta.grid != grid)
            continue;
        if (vt_.state(slot) != CtaState::Active)
            continue;
        vt_.forceSwapOut(slot, now);
        ++swapped;
    }
    return swapped;
}

bool
SmCore::hasInactiveCta(GridId grid) const
{
    for (VirtualCtaId slot = 0; slot < ctas_.size(); ++slot) {
        const VirtualCta &cta = ctas_[slot];
        if (cta.valid && cta.grid == grid && !vt_.isIssuable(slot))
            return true;
    }
    return false;
}

bool
SmCore::budgetAllows(const Instruction &inst,
                     const IssueBudgets &budgets) const
{
    switch (inst.funcUnit()) {
      case FuncUnit::Alu: return budgets.alu > 0;
      case FuncUnit::Sfu: return budgets.sfu > 0;
      case FuncUnit::Mem: return budgets.mem > 0;
      case FuncUnit::Control: return true;
    }
    return false;
}

void
SmCore::chargeBudget(const Instruction &inst, IssueBudgets &budgets) const
{
    switch (inst.funcUnit()) {
      case FuncUnit::Alu: --budgets.alu; break;
      case FuncUnit::Sfu: --budgets.sfu; break;
      case FuncUnit::Mem: --budgets.mem; break;
      case FuncUnit::Control: break;
    }
}

void
SmCore::tick(Cycle now)
{
#ifndef NDEBUG
    VTSIM_ASSERT(epochOwner_ == std::thread::id{} ||
                     epochOwner_ == std::this_thread::get_id(),
                 "SM ", id_, " ticked from a non-owning shard worker");
#endif
    if (now < ffHorizon_) {
        // Provably eventless tick (the horizon was cached from this
        // very state and every external change drops it): just count
        // the cycle; flushFastForward() settles the books in bulk.
        if (ffPending_ == 0)
            ffWindowStart_ = now;
        ++ffPending_;
        return;
    }
    flushFastForward();
    now_ = now;

    // 1. Memory completions (unblocks warps for this cycle's issue).
    ldst_.tick(now);

    // Trace replay: inject the records due this cycle. After the LDST
    // tick, so a record stamped cycle c enters the queue at c and first
    // reaches injectOne at c + 1 — the same cadence as a functional
    // issue at c.
    if (replayMode_) {
        while (replayCursor_ < replay_->size() &&
               replayBase_ + (*replay_)[replayCursor_].cycle <= now) {
            ldst_.replayInject((*replay_)[replayCursor_]);
            ++replayCursor_;
        }
    }

    // 2. ALU/SFU/shared writebacks that mature this cycle.
    while (!wbQueue_.empty() && wbQueue_.top().at <= now) {
        const Writeback wb = wbQueue_.top();
        wbQueue_.pop();
        ctas_[wb.vcta].warps[wb.warpInCta].scoreboard().release(wb.reg);
        refreshWarp(wb.vcta, wb.warpInCta);
    }

    // 3. Virtual Thread state machine: swap completions and decisions,
    //    based on the state warps are in *before* this cycle's issue.
    vt_.tick(now);

    if (oracleEnabled())
        verifyReadySets();

    // 4. Issue: each scheduler picks one warp among its ready ones. The
    //    same sweep gathers the bubble attribution, so a scheduler slot
    //    that issues nothing is classified without a second warp scan
    //    (the outcome is identical to classifyIssueBubble()). With
    //    incremental ready sets the sweep visits only the ready list and
    //    derives the bubble flags from the cached per-scheduler
    //    counters; the else branch below is the original full rescan,
    //    kept as the reference the oracle and the on/off property tests
    //    compare against.
    const StallBreakdown before_issue = stalls_;
    IssueBudgets budgets{config_.aluThroughputPerSm,
                         config_.sfuThroughputPerSm,
                         config_.ldstThroughputPerSm};
    for (std::uint32_t s = 0; s < config_.numSchedulers; ++s) {
        cands_.clear();
        refs_.clear();
        decodes_.clear();
        if (config_.incrementalReadySets) {
            // Structural ports are constant within one scheduler's scan
            // (issues by earlier schedulers already happened): hoist.
            const bool ldst_ok = ldst_.canAccept();
            const bool shmem_ok = shmem_.canAccept(now);
            bool mem_blocked = false;
            std::uint32_t ready_offchip = 0;
            for (const std::uint64_t key : ready_[s]) {
                const VirtualCtaId slot = key >> 8;
                VirtualCta &cta = ctas_[slot];
                const std::uint32_t w = key & 0xff;
                WarpContext &warp = cta.warps[w];
                const Instruction &inst =
                    kernelOf(cta)->at(warp.stack().pc());
                const bool can_issue =
                    warp.readyAt() <= now &&
                    (!inst.isGlobalMem() || ldst_ok) &&
                    (!inst.isSharedMem() || shmem_ok);
                if (warp.pendingOffChip() > 0) {
                    ++ready_offchip;
                    if (!can_issue)
                        mem_blocked = true;
                }
                if (!can_issue)
                    continue;
                if (!budgetAllows(inst, budgets))
                    continue;
                const std::uint64_t ckey = cta.age * 256 + w;
                cands_.push_back({ckey, ckey});
                refs_.emplace_back(slot, w);
                decodes_.push_back(&inst);
            }
            if (cands_.empty()) {
                // Off-chip warps missing from the ready list (barrier or
                // hazard blocked) cannot issue, so they are mem-blocked
                // without being visited.
                BubbleKind kind = BubbleKind::Short;
                const std::uint32_t issuable_alive =
                    schedAlive_[s] - schedFrozenAlive_[s];
                if (schedAlive_[s] == 0)
                    kind = BubbleKind::Idle;
                else if (mem_blocked ||
                         schedIssuableOffchip_[s] > ready_offchip)
                    kind = BubbleKind::Mem;
                else if (issuable_alive == schedIssuableBarrier_[s] &&
                         schedFrozenAlive_[s] == 0)
                    kind = BubbleKind::Barrier;
                else if (schedFrozenAlive_[s] > 0)
                    kind = BubbleKind::Swap;
                chargeBubble(kind, 1);
                continue;
            }
        } else {
            bool any_warp = false;
            bool any_frozen = false;
            bool any_mem_blocked = false;
            bool all_barrier = true;
            for (VirtualCtaId slot = 0; slot < ctas_.size(); ++slot) {
                VirtualCta &cta = ctas_[slot];
                if (!cta.valid || cta.aliveBySched[s] == 0)
                    continue;
                any_warp = true;
                if (!vt_.isIssuable(slot)) {
                    any_frozen = true;
                    continue;
                }
                for (std::uint32_t w : cta.schedWarps[s]) {
                    WarpContext &warp = cta.warps[w];
                    if (warp.done())
                        continue;
                    if (!warp.atBarrier())
                        all_barrier = false;
                    const bool can_issue =
                        warpCanIssueLocal(cta, warp, now);
                    if (warp.pendingOffChip() > 0 && !can_issue)
                        any_mem_blocked = true;
                    if (!can_issue)
                        continue;
                    const Instruction &inst =
                        kernelOf(cta)->at(warp.stack().pc());
                    if (!budgetAllows(inst, budgets))
                        continue;
                    const std::uint64_t key = cta.age * 256 + w;
                    cands_.push_back({key, key});
                    refs_.emplace_back(slot, w);
                    decodes_.push_back(&inst);
                }
            }
            if (cands_.empty()) {
                BubbleKind kind = BubbleKind::Short;
                if (!any_warp)
                    kind = BubbleKind::Idle;
                else if (any_mem_blocked)
                    kind = BubbleKind::Mem;
                else if (all_barrier && !any_frozen)
                    kind = BubbleKind::Barrier;
                else if (any_frozen)
                    kind = BubbleKind::Swap;
                chargeBubble(kind, 1);
                continue;
            }
        }
        const std::size_t chosen = schedulers_[s]->pick(cands_);
        const auto [slot, w] = refs_[chosen];
        const Instruction &inst = *decodes_[chosen];
        VirtualCta &cta = ctas_[slot];
        chargeBudget(inst, budgets);
        ++stalls_.issued;
        issueWarp(cta, slot, cta.warps[w], inst, now);
    }

    // 5. DYNCTA-style throttling: feed this cycle's observation into the
    //    epoch machinery and apply the (possibly new) active-CTA cap.
    if (throttler_) {
        const bool issued = stalls_.issued != before_issue.issued;
        const bool mem = stalls_.memStall != before_issue.memStall;
        throttler_->sample(issued, !issued && mem);
        vt_.setActiveCap(throttler_->cap());
    }

    // 6. A tick that issued nothing is a candidate for a lazy window:
    //    cache how far the following ticks are provably inert. This is
    //    nextEventCycle(now + 1) minus its warp scan, which is provably
    //    empty here: readyAt is only ever set to cycle+1 at an issue or
    //    barrier release, so after a no-issue tick no live warp has
    //    readyAt > now — and none could issue (the sweep found no
    //    candidates; the one state that can flip by now + 1, the shared
    //    memory port, is covered by the portReadyAt term below).
    if (config_.fastForwardEnabled &&
        stalls_.issued == before_issue.issued) {
        Cycle next = ldst_.nextEventCycle(now + 1);
        if (!wbQueue_.empty())
            next = std::min(next, std::max(now + 1, wbQueue_.top().at));
        if (shmem_.portReadyAt() > now)
            next = std::min(next, shmem_.portReadyAt());
        if (throttler_)
            next = std::min(next,
                            throttler_->epochBoundaryCycle(now + 1));
        if (replayMode_ && replayCursor_ < replay_->size()) {
            next = std::min(next,
                            std::max(now + 1,
                                     replayBase_ +
                                         (*replay_)[replayCursor_].cycle));
        }
        ffHorizon_ = std::min(next, vt_.nextEventCycle(now + 1));
    } else {
        ffHorizon_ = 0;
    }
}

SmCore::BubbleKind
SmCore::classifyIssueBubble(std::uint32_t scheduler, Cycle now) const
{
    // Nothing issued from this scheduler slot: attribute the bubble.
    bool any_warp = false;
    bool any_frozen = false;
    bool any_mem_blocked = false;
    bool all_barrier = true;
    for (VirtualCtaId slot = 0; slot < ctas_.size(); ++slot) {
        const VirtualCta &cta = ctas_[slot];
        if (!cta.valid || cta.aliveBySched[scheduler] == 0)
            continue;
        any_warp = true;
        if (!vt_.isIssuable(slot)) {
            any_frozen = true;
            continue;
        }
        for (std::uint32_t w : cta.schedWarps[scheduler]) {
            const WarpContext &warp = cta.warps[w];
            if (warp.done())
                continue;
            if (!warp.atBarrier())
                all_barrier = false;
            if (warp.pendingOffChip() > 0 &&
                !warpCanIssueLocal(cta, warp, now))
                any_mem_blocked = true;
        }
    }
    if (!any_warp)
        return BubbleKind::Idle;
    if (any_mem_blocked)
        return BubbleKind::Mem;
    if (all_barrier && !any_frozen)
        return BubbleKind::Barrier;
    if (any_frozen)
        return BubbleKind::Swap;
    return BubbleKind::Short;
}

SmCore::BubbleKind
SmCore::classifyIssueBubbleFast(std::uint32_t scheduler, Cycle now) const
{
    if (schedAlive_[scheduler] == 0)
        return BubbleKind::Idle;
    const bool ldst_ok = ldst_.canAccept();
    bool mem_blocked = false;
    std::uint32_t ready_offchip = 0;
    for (const std::uint64_t key : ready_[scheduler]) {
        const VirtualCta &cta = ctas_[key >> 8];
        const WarpContext &warp = cta.warps[key & 0xff];
        if (warp.pendingOffChip() == 0)
            continue;
        ++ready_offchip;
        const Instruction &inst = kernelOf(cta)->at(warp.stack().pc());
        if (warp.readyAt() > now || (inst.isGlobalMem() && !ldst_ok) ||
            (inst.isSharedMem() && !shmem_.canAccept(now))) {
            mem_blocked = true;
        }
    }
    if (mem_blocked || schedIssuableOffchip_[scheduler] > ready_offchip)
        return BubbleKind::Mem;
    const std::uint32_t issuable_alive =
        schedAlive_[scheduler] - schedFrozenAlive_[scheduler];
    if (issuable_alive == schedIssuableBarrier_[scheduler] &&
        schedFrozenAlive_[scheduler] == 0) {
        return BubbleKind::Barrier;
    }
    if (schedFrozenAlive_[scheduler] > 0)
        return BubbleKind::Swap;
    return BubbleKind::Short;
}

void
SmCore::chargeBubble(BubbleKind kind, std::uint64_t n)
{
    switch (kind) {
      case BubbleKind::Idle: stalls_.idle += n; break;
      case BubbleKind::Mem: stalls_.memStall += n; break;
      case BubbleKind::Barrier: stalls_.barrierStall += n; break;
      case BubbleKind::Swap: stalls_.swapStall += n; break;
      case BubbleKind::Short: stalls_.shortStall += n; break;
    }
}

Cycle
SmCore::nextEventCycle(Cycle now)
{
    // A valid cached horizon IS the answer — and with skipped ticks
    // deferred, recomputing from unsettled state would be wrong.
    if (now < ffHorizon_)
        return ffHorizon_;
    flushFastForward();
    return computeNextEvent(now);
}

Cycle
SmCore::nextEventCycleFresh(Cycle now)
{
    // The oracle's reference answer: settle the books, then recompute
    // from scratch — the cached lazy-window horizon must never be
    // consulted here, since it is exactly what is being checked.
    flushFastForward();
    return computeNextEvent(now);
}

Cycle
SmCore::computeNextEvent(Cycle now)
{
    Cycle next = ldst_.nextEventCycle(now);
    if (!wbQueue_.empty())
        next = std::min(next, std::max(now, wbQueue_.top().at));
    if (shmem_.portReadyAt() > now)
        next = std::min(next, shmem_.portReadyAt());
    if (throttler_)
        next = std::min(next, throttler_->epochBoundaryCycle(now));
    next = std::min(next, vt_.nextEventCycle(now));
    if (replayMode_ && replayCursor_ < replay_->size()) {
        next = std::min(next,
                        std::max(now, replayBase_ +
                                          (*replay_)[replayCursor_].cycle));
    }

    // Warps of issuable CTAs: a short dependence maturing is an event;
    // a warp that could issue right now means no skipping at all. Warps
    // blocked on hazards, barriers, or off-chip memory unblock only via
    // writeback/NoC events already accounted above or globally — so the
    // ready lists alone carry the warp term. (A hazard-blocked warp's
    // readyAt is no event either: when the release event lands and
    // publishes it, a still-future readyAt re-enters the horizon here.)
    if (config_.incrementalReadySets) {
        for (std::uint32_t s = 0; s < config_.numSchedulers; ++s) {
            for (const std::uint64_t key : ready_[s]) {
                const VirtualCta &cta = ctas_[key >> 8];
                const WarpContext &warp = cta.warps[key & 0xff];
                if (warp.readyAt() > now) {
                    next = std::min(next, warp.readyAt());
                    continue;
                }
                const Instruction &inst =
                    kernelOf(cta)->at(warp.stack().pc());
                if ((!inst.isGlobalMem() || ldst_.canAccept()) &&
                    (!inst.isSharedMem() || shmem_.canAccept(now))) {
                    return now;
                }
            }
        }
        return next;
    }
    for (VirtualCtaId slot = 0; slot < ctas_.size(); ++slot) {
        const VirtualCta &cta = ctas_[slot];
        if (!cta.valid || cta.warpsAlive == 0 || !vt_.isIssuable(slot))
            continue;
        for (const WarpContext &warp : cta.warps) {
            if (warp.done() || warp.atBarrier())
                continue;
            if (warp.readyAt() > now)
                next = std::min(next, warp.readyAt());
            else if (warpCanIssueLocal(cta, warp, now))
                return now;
        }
    }
    return next;
}

void
SmCore::settleTo(Cycle cycle)
{
    flushFastForward();
    // now_ is the last accounted cycle; bring the books to cycle - 1
    // (the horizon cycle itself is the next real tick's).
    if (cycle > now_ + 1) {
        accountIdleCycles(now_ + 1, cycle - now_ - 1);
        now_ = cycle - 1;
    }
}

void
SmCore::flushFastForward()
{
    if (ffPending_ == 0)
        return;
    const std::uint64_t n = ffPending_;
    ffPending_ = 0;
    accountIdleCycles(ffWindowStart_, n);
    // The lazily counted ticks are now fully accounted: advance the
    // local clock over them so settleTo() can measure further gaps.
    now_ = ffWindowStart_ + n - 1;
}

void
SmCore::onExternalEvent()
{
    flushFastForward();
    ffHorizon_ = 0;
}

void
SmCore::accountIdleCycles(Cycle now, std::uint64_t n)
{
    // Mirror tick()'s order over n empty cycles: LDST sampling, the VT
    // machine's sampling and streaks, the per-scheduler bubble
    // classification (constant across the window by construction), and
    // the throttler's epoch observations.
    ldst_.settleTo(now + n);
    vt_.fastForwardIdle(n);
    bool any_mem = false;
    for (std::uint32_t s = 0; s < config_.numSchedulers; ++s) {
        const BubbleKind kind = config_.incrementalReadySets
                                    ? classifyIssueBubbleFast(s, now)
                                    : classifyIssueBubble(s, now);
        chargeBubble(kind, n);
        any_mem = any_mem || kind == BubbleKind::Mem;
    }
    if (throttler_) {
        throttler_->sampleIdleN(n, any_mem);
        vt_.setActiveCap(throttler_->cap());
    }
}

void
SmCore::issueWarp(VirtualCta &cta, VirtualCtaId slot, WarpContext &warp,
                  const Instruction &inst, Cycle now)
{
    const Pc pc = warp.stack().pc();
    const ActiveMask mask = warp.stack().activeMask();
    const std::uint32_t w = warp.warpInCta();

    VTSIM_TRACE(TraceFlag::Issue, now, stats_.name(), "cta ", slot, " w",
                w, " pc ", pc, " [", mask.count(), " lanes] ",
                disassemble(inst));
    // Functional execution: micro-op fast path by default (optionally
    // oracle-checked against the legacy interpreter), legacy switch
    // interpreter behind the flag. Bit-identical either way.
    ExecResult &res = execScratch_;
    const Kernel &kernel = *kernelOf(cta);
    const LaunchParams &launch = *launchOf(cta);
    if (config_.microcodeEnabled) {
        if (microOracleEnabled()) {
            executeMicroChecked(kernel.micro(), inst, pc, w, mask,
                                cta.func, *gmem_, launch, res);
        } else {
            executeMicroInto(kernel.micro(), pc, w, mask, cta.func,
                             *gmem_, launch, res);
        }
    } else {
        res = execute(inst, w, mask, cta.func, *gmem_, launch);
    }
    warp.countIssue();
    ++instructionsIssued_;
    threadInstructions_ += mask.count();
    ++gridInstructions_[cta.grid];
    gridThreadInstructions_[cta.grid] += mask.count();
    warp.setReadyAt(now + 1);

    switch (inst.funcUnit()) {
      case FuncUnit::Control:
        if (inst.isBranch()) {
            warp.stack().branch(inst, pc, res.branchTaken);
            maxSimtDepth_ = std::max(maxSimtDepth_,
                                     warp.stack().maxDepth());
        } else if (inst.isBarrier()) {
            if (mtrace_)
                mtrace_->barrier(now, id_);
            warp.stack().advance();
            warp.setAtBarrier(true);
            ++cta.barrierBySched[warp.schedId()];
            ++schedIssuableBarrier_[warp.schedId()];
            barriers_.arrive(slot, w);
            maybeReleaseBarrier(slot, now);
        } else { // EXIT
            warp.stack().exitActiveLanes();
            if (warp.done()) {
                retireWarpCounters(cta, warp);
                refreshWarp(slot, w); // Retract before warps can clear.
                if (cta.warpsAlive == 0) {
                    finishCta(slot, now);
                    return;
                }
                maybeReleaseBarrier(slot, now);
            }
        }
        break;

      case FuncUnit::Alu:
      case FuncUnit::Sfu: {
        const std::uint32_t latency = inst.funcUnit() == FuncUnit::Sfu
                                          ? config_.sfuLatency
                                          : config_.aluLatency;
        if (inst.hasDst()) {
            warp.scoreboard().reserve(inst.dst, false);
            wbQueue_.push({now + latency, slot, w, inst.dst});
        }
        warp.stack().advance();
        break;
      }

      case FuncUnit::Mem:
        if (inst.isSharedMem()) {
            std::uint32_t passes =
                sharedMemPasses(res.sharedAccesses,
                                config_.sharedMemBanks);
            if (passes == 0)
                passes = 1;
            const Cycle done = shmem_.access(passes, now);
            if (inst.hasDst()) {
                warp.scoreboard().reserve(inst.dst, false);
                wbQueue_.push({done, slot, w, inst.dst});
            }
        } else if (!res.globalAccesses.empty()) {
            if (inst.hasDst())
                warp.scoreboard().reserve(inst.dst, true);
            if (epochLogging_) {
                epochMemLog_.push_back({now, slot, w, inst.op,
                                        inst.hasDst() ? inst.dst : noReg,
                                        res.globalAccesses});
            }
            ldst_.issueGlobal(slot, w, inst, res.globalAccesses,
                              cta.grid);
        }
        warp.stack().advance();
        break;
    }
    // The issued warp's PC, scoreboard, or barrier flag changed:
    // re-derive its ready-set membership.
    refreshWarp(slot, w);
}

void
SmCore::retireWarpCounters(VirtualCta &cta, const WarpContext &warp)
{
    // Only an issuing warp can retire, so its CTA is Active: its alive
    // count moves out of the plain aggregate, never the frozen one.
    VTSIM_ASSERT(cta.warpsAlive > 0, "alive underflow");
    --cta.warpsAlive;
    const std::uint32_t sched = warp.schedId();
    VTSIM_ASSERT(cta.aliveBySched[sched] > 0,
                 "per-scheduler alive underflow");
    --cta.aliveBySched[sched];
    VTSIM_ASSERT(schedAlive_[sched] > 0, "aggregate alive underflow");
    --schedAlive_[sched];
    if (warp.pendingOffChip() > 0) {
        --cta.offchipBySched[sched];
        --schedIssuableOffchip_[sched];
    }
}

void
SmCore::maybeReleaseBarrier(VirtualCtaId slot, Cycle now)
{
    VirtualCta &cta = ctas_[slot];
    if (!barriers_.shouldRelease(slot, cta.warpsAlive))
        return;
    VTSIM_TRACE(TraceFlag::Barrier, now, stats_.name(), "cta ", slot,
                " barrier released (", cta.warpsAlive, " warps)");
    if (traceJson_)
        traceJson_->instant(id_, slot, now, "barrier-release", "barrier");
    const bool issuable = vt_.isIssuable(slot);
    barriers_.releaseInto(slot, barrierScratch_);
    for (std::uint32_t w : barrierScratch_) {
        cta.warps[w].setAtBarrier(false);
        --cta.barrierBySched[cta.warps[w].schedId()];
        if (issuable)
            --schedIssuableBarrier_[cta.warps[w].schedId()];
        cta.warps[w].setReadyAt(now + 1);
        refreshWarp(slot, w);
    }
}

void
SmCore::finishCta(VirtualCtaId slot, Cycle now)
{
    VirtualCta &cta = ctas_[slot];
    for (const WarpContext &warp : cta.warps) {
        VTSIM_ASSERT(warp.pendingOffChip() == 0,
                     "CTA retired with off-chip transactions in flight");
        maxSimtDepth_ = std::max(maxSimtDepth_, warp.stack().maxDepth());
    }
    // All warps retired, so every counter and ready-list contribution of
    // this CTA is already zero; no retraction needed here.
    vt_.onCtaFinished(slot, now);
    barriers_.ctaFinished(slot);
    cta.valid = false;
    cta.warps.clear();
    cta.schedWarps.clear();
    cta.aliveBySched.clear();
    cta.barrierBySched.clear();
    cta.offchipBySched.clear();
    freeSlots_.push_back(slot);
    VTSIM_ASSERT(residentCount_ > 0, "resident underflow");
    --residentCount_;
    ++ctasCompleted_;
    ++gridCtasCompleted_[cta.grid];
}

bool
SmCore::idle() const
{
    return residentCount_ == 0 && ldst_.idle() && wbQueue_.empty() &&
           (!replayMode_ || replayCursor_ == replay_->size());
}

void
SmCore::loadComplete(VirtualCtaId vcta, std::uint32_t warp_in_cta,
                     RegIndex dst)
{
    if (replayMode_) {
        // Replay pendings carry a sentinel CTA and no destination:
        // there is no warp to release, only the horizon to drop.
        onExternalEvent();
        return;
    }
    VTSIM_ASSERT(vcta < ctas_.size() && ctas_[vcta].valid,
                 "load completion for retired CTA");
    onExternalEvent();
    if (dst != noReg) {
        ctas_[vcta].warps[warp_in_cta].scoreboard().release(dst);
        refreshWarp(vcta, warp_in_cta);
    }
}

void
SmCore::offChipIssued(VirtualCtaId vcta, std::uint32_t warp_in_cta)
{
    onExternalEvent();
    if (replayMode_)
        return;
    VirtualCta &cta = ctas_[vcta];
    WarpContext &warp = cta.warps[warp_in_cta];
    warp.addOffChip();
    ++cta.pendingOffChipTotal;
    if (warp.pendingOffChip() == 1 && !warp.done()) {
        ++cta.offchipBySched[warp.schedId()];
        if (vt_.isIssuable(vcta))
            ++schedIssuableOffchip_[warp.schedId()];
    }
}

void
SmCore::responseArriving(Cycle)
{
    onExternalEvent();
}

void
SmCore::offChipReturned(VirtualCtaId vcta, std::uint32_t warp_in_cta)
{
    onExternalEvent();
    if (replayMode_)
        return;
    VirtualCta &cta = ctas_[vcta];
    WarpContext &warp = cta.warps[warp_in_cta];
    warp.removeOffChip();
    VTSIM_ASSERT(cta.pendingOffChipTotal > 0,
                 "off-chip aggregate underflow");
    --cta.pendingOffChipTotal;
    if (warp.pendingOffChip() == 0 && !warp.done()) {
        --cta.offchipBySched[warp.schedId()];
        if (vt_.isIssuable(vcta))
            --schedIssuableOffchip_[warp.schedId()];
    }
}

bool
SmCore::ctaFullyStalled(VirtualCtaId id) const
{
    const VirtualCta &cta = ctas_[id];
    VTSIM_ASSERT(cta.valid, "query on retired CTA");
    // warpCanIssueLocal(warp, now, /*ignore_structural=*/true) is exactly
    // warpReadyMember(warp) && readyAt <= now, so for an issuable CTA the
    // ready lists already hold the member warps: range-scan them instead
    // of re-deriving hazards for every warp (this runs per active CTA per
    // cycle as the VT swap trigger's stall poll).
    if (config_.incrementalReadySets && vt_.isIssuable(id)) {
        const std::uint64_t lo = readyKey(id, 0);
        for (const std::vector<std::uint64_t> &list : ready_) {
            const auto first =
                std::lower_bound(list.begin(), list.end(), lo);
            const auto last = std::lower_bound(first, list.end(), lo + 256);
            for (auto it = first; it != last; ++it) {
                if (cta.warps[*it & 0xff].readyAt() <= now_)
                    return false;
            }
        }
        return true;
    }
    for (const WarpContext &warp : cta.warps) {
        if (warp.done())
            continue;
        if (warpCanIssueLocal(cta, warp, now_, true))
            return false;
    }
    return true;
}

bool
SmCore::ctaAnyWarpLongStalled(VirtualCtaId id) const
{
    const VirtualCta &cta = ctas_[id];
    VTSIM_ASSERT(cta.valid, "query on retired CTA");
    // Same identity as ctaFullyStalled(): an off-chip warp is long-stalled
    // unless it sits in a ready list with a mature readyAt. Comparing the
    // issuable-now off-chip count against the CTA's off-chip total answers
    // the existence query without scanning the warps.
    if (config_.incrementalReadySets && vt_.isIssuable(id)) {
        std::uint32_t offchip_total = 0;
        for (std::uint32_t s = 0; s < config_.numSchedulers; ++s)
            offchip_total += cta.offchipBySched[s];
        if (offchip_total == 0)
            return false;
        std::uint32_t offchip_ready = 0;
        const std::uint64_t lo = readyKey(id, 0);
        for (const std::vector<std::uint64_t> &list : ready_) {
            const auto first =
                std::lower_bound(list.begin(), list.end(), lo);
            const auto last = std::lower_bound(first, list.end(), lo + 256);
            for (auto it = first; it != last; ++it) {
                const WarpContext &warp = cta.warps[*it & 0xff];
                if (warp.pendingOffChip() > 0 && warp.readyAt() <= now_)
                    ++offchip_ready;
            }
        }
        return offchip_ready < offchip_total;
    }
    for (const WarpContext &warp : cta.warps) {
        if (warp.done())
            continue;
        if (warp.pendingOffChip() > 0 &&
            !warpCanIssueLocal(cta, warp, now_, true)) {
            return true;
        }
    }
    return false;
}

std::uint32_t
SmCore::ctaPendingOffChip(VirtualCtaId id) const
{
    const VirtualCta &cta = ctas_[id];
    VTSIM_ASSERT(cta.valid, "query on retired CTA");
    return cta.pendingOffChipTotal;
}

void
SmCore::refreshWarp(VirtualCtaId slot, std::uint32_t w)
{
    const VirtualCta &cta = ctas_[slot];
    if (!cta.valid)
        return;
    const WarpContext &warp = cta.warps[w];
    const bool want = vt_.isIssuable(slot) && warpReadyMember(cta, warp);
    std::vector<std::uint64_t> &list = ready_[warp.schedId()];
    const std::uint64_t key = readyKey(slot, w);
    const auto it = std::lower_bound(list.begin(), list.end(), key);
    const bool have = it != list.end() && *it == key;
    if (want && !have)
        list.insert(it, key);
    else if (!want && have)
        list.erase(it);
}

void
SmCore::onCtaIssuableChanged(VirtualCtaId id, bool issuable)
{
    VirtualCta &cta = ctas_[id];
    VTSIM_ASSERT(cta.valid, "issuability flip of retired CTA ", id);
    for (std::uint32_t s = 0; s < config_.numSchedulers; ++s) {
        if (issuable) {
            VTSIM_ASSERT(schedFrozenAlive_[s] >= cta.aliveBySched[s],
                         "frozen aggregate underflow");
            schedFrozenAlive_[s] -= cta.aliveBySched[s];
            schedIssuableBarrier_[s] += cta.barrierBySched[s];
            schedIssuableOffchip_[s] += cta.offchipBySched[s];
        } else {
            schedFrozenAlive_[s] += cta.aliveBySched[s];
            VTSIM_ASSERT(schedIssuableBarrier_[s] >= cta.barrierBySched[s]
                         && schedIssuableOffchip_[s] >=
                                cta.offchipBySched[s],
                         "issuable aggregate underflow");
            schedIssuableBarrier_[s] -= cta.barrierBySched[s];
            schedIssuableOffchip_[s] -= cta.offchipBySched[s];
        }
    }
    if (issuable) {
        for (std::uint32_t w = 0; w < cta.warps.size(); ++w)
            refreshWarp(id, w);
    } else {
        // The CTA's keys form one contiguous range in every list.
        const std::uint64_t lo = readyKey(id, 0);
        for (std::vector<std::uint64_t> &list : ready_) {
            const auto first =
                std::lower_bound(list.begin(), list.end(), lo);
            const auto last =
                std::lower_bound(first, list.end(), lo + 256);
            list.erase(first, last);
        }
    }
}

void
SmCore::rebindGrid(GridId grid, const Kernel &kernel,
                   const LaunchParams &launch, GlobalMemory &gmem)
{
    if (grid >= grids_.size())
        grids_.resize(grid + 1);
    grids_[grid].kernel = &kernel;
    grids_[grid].launch = &launch;
    gmem_ = &gmem;
    cands_.reserve(config_.effMaxWarpsPerSm());
    refs_.reserve(config_.effMaxWarpsPerSm());
    decodes_.reserve(config_.effMaxWarpsPerSm());
    for (auto &list : ready_)
        list.reserve(config_.effMaxWarpsPerSm());
}

void
SmCore::reset()
{
    grids_.clear();
    gmem_ = nullptr;
    ldst_.reset();
    shmem_.reset();
    barriers_.reset();
    vt_.reset();
    if (throttler_)
        throttler_->reset();
    for (auto &sched : schedulers_)
        sched->reset();
    ctas_.clear();
    freeSlots_.clear();
    residentCount_ = 0;
    nextCtaAge_ = 0;
    cands_.clear();
    refs_.clear();
    decodes_.clear();
    barrierScratch_.clear();
    for (auto &list : ready_)
        list.clear();
    schedAlive_.assign(config_.numSchedulers, 0);
    schedFrozenAlive_.assign(config_.numSchedulers, 0);
    schedIssuableBarrier_.assign(config_.numSchedulers, 0);
    schedIssuableOffchip_.assign(config_.numSchedulers, 0);
    wbQueue_ = {};
    now_ = 0;
    maxSimtDepth_ = 0;
    ffHorizon_ = 0;
    ffWindowStart_ = 0;
    ffPending_ = 0;
    epochLogging_ = false;
    epochMemLog_.clear();
    epochOwner_ = {};
    replayMode_ = false;
    replay_ = nullptr;
    replayCursor_ = 0;
    replayBase_ = 0;
    instructionsIssued_.reset();
    threadInstructions_.reset();
    ctasCompleted_.reset();
    for (GridId g = 0; g < maxGrids; ++g) {
        gridInstructions_[g].reset();
        gridThreadInstructions_[g].reset();
        gridCtasCompleted_[g].reset();
    }
    stalls_ = {};
}

void
SmCore::save(Serializer &ser) const
{
    VTSIM_ASSERT(ffPending_ == 0,
                 "checkpoint with unsettled lazy-tick window");
    const std::size_t sec = ser.beginSection("smcr");
    ser.put<std::uint64_t>(ctas_.size());
    for (const VirtualCta &cta : ctas_) {
        ser.put(cta.valid);
        ser.put(cta.grid);
        ser.put(cta.age);
        cta.func.save(ser);
        ser.put<std::uint64_t>(cta.warps.size());
        for (const WarpContext &warp : cta.warps)
            warp.save(ser);
        ser.put<std::uint64_t>(cta.schedWarps.size());
        for (const auto &sw : cta.schedWarps)
            ser.putVec(sw);
        ser.putVec(cta.aliveBySched);
        ser.putVec(cta.barrierBySched);
        ser.putVec(cta.offchipBySched);
        ser.put(cta.warpsAlive);
        ser.put(cta.pendingOffChipTotal);
    }
    ser.putVec(freeSlots_);
    ser.put(residentCount_);
    ser.put(nextCtaAge_);
    ser.put<std::uint64_t>(ready_.size());
    for (const auto &list : ready_)
        ser.putVec(list);
    ser.putVec(schedAlive_);
    ser.putVec(schedFrozenAlive_);
    ser.putVec(schedIssuableBarrier_);
    ser.putVec(schedIssuableOffchip_);
    auto wbs = wbQueue_;
    ser.put<std::uint64_t>(wbs.size());
    while (!wbs.empty()) {
        const Writeback &wb = wbs.top();
        ser.put(wb.at);
        ser.put(wb.vcta);
        ser.put(wb.warpInCta);
        ser.put(wb.reg);
        wbs.pop();
    }
    ser.put(now_);
    ser.put(maxSimtDepth_);
    // ffHorizon_ is deliberately not checkpointed (see the interconnect
    // and partition save() notes): it caches tick-cadence history, which
    // differs between sequential and sharded runs of the same state.
    saveStat(ser, instructionsIssued_);
    saveStat(ser, threadInstructions_);
    saveStat(ser, ctasCompleted_);
    for (GridId g = 0; g < maxGrids; ++g) {
        saveStat(ser, gridInstructions_[g]);
        saveStat(ser, gridThreadInstructions_[g]);
        saveStat(ser, gridCtasCompleted_[g]);
    }
    static_assert(std::is_trivially_copyable_v<StallBreakdown>);
    ser.put(stalls_);
    // The replay slice itself is not machine state (it is reloaded from
    // the trace file on restore); the mode, cursor and base are.
    ser.put<std::uint8_t>(replayMode_);
    ser.put(replayCursor_);
    ser.put(replayBase_);
    for (const auto &sched : schedulers_)
        sched->save(ser);
    ser.endSection(sec);
    ldst_.save(ser);
    shmem_.save(ser);
    barriers_.save(ser);
    vt_.save(ser);
    if (throttler_)
        throttler_->save(ser);
}

void
SmCore::restore(Deserializer &des)
{
    des.beginSection("smcr");
    const auto cta_count = des.get<std::uint64_t>();
    ctas_.assign(cta_count, VirtualCta());
    for (VirtualCta &cta : ctas_) {
        des.get(cta.valid);
        des.get(cta.grid);
        des.get(cta.age);
        cta.func.restore(des);
        const auto warp_count = des.get<std::uint64_t>();
        cta.warps.assign(warp_count, WarpContext());
        for (WarpContext &warp : cta.warps)
            warp.restore(des);
        const auto sched_count = des.get<std::uint64_t>();
        cta.schedWarps.assign(sched_count, {});
        for (auto &sw : cta.schedWarps)
            des.getVec(sw);
        des.getVec(cta.aliveBySched);
        des.getVec(cta.barrierBySched);
        des.getVec(cta.offchipBySched);
        des.get(cta.warpsAlive);
        des.get(cta.pendingOffChipTotal);
    }
    des.getVec(freeSlots_);
    des.get(residentCount_);
    des.get(nextCtaAge_);
    const auto ready_count = des.get<std::uint64_t>();
    VTSIM_ASSERT(ready_count == ready_.size(),
                 "checkpoint scheduler count mismatch");
    for (auto &list : ready_)
        des.getVec(list);
    des.getVec(schedAlive_);
    des.getVec(schedFrozenAlive_);
    des.getVec(schedIssuableBarrier_);
    des.getVec(schedIssuableOffchip_);
    wbQueue_ = {};
    const auto wb_count = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < wb_count; ++i) {
        Writeback wb;
        des.get(wb.at);
        des.get(wb.vcta);
        des.get(wb.warpInCta);
        des.get(wb.reg);
        wbQueue_.push(wb);
    }
    des.get(now_);
    des.get(maxSimtDepth_);
    ffHorizon_ = 0;
    ffWindowStart_ = 0;
    ffPending_ = 0;
    restoreStat(des, instructionsIssued_);
    restoreStat(des, threadInstructions_);
    restoreStat(des, ctasCompleted_);
    for (GridId g = 0; g < maxGrids; ++g) {
        restoreStat(des, gridInstructions_[g]);
        restoreStat(des, gridThreadInstructions_[g]);
        restoreStat(des, gridCtasCompleted_[g]);
    }
    des.get(stalls_);
    replayMode_ = des.get<std::uint8_t>() != 0;
    des.get(replayCursor_);
    des.get(replayBase_);
    // replay_ is deliberately left as-is: an in-place restore (the
    // shard oracle's epoch re-run) keeps the already-bound slice, while
    // a cross-process restore starts null and Gpu::replayTrace rebinds
    // it via resumeReplay().
    for (auto &sched : schedulers_)
        sched->restore(des);
    des.endSection();
    ldst_.restore(des);
    shmem_.restore(des);
    barriers_.restore(des);
    vt_.restore(des);
    if (throttler_)
        throttler_->restore(des);
}

void
SmCore::verifyReadySets() const
{
    for (std::uint32_t s = 0; s < config_.numSchedulers; ++s) {
        std::vector<std::uint64_t> expected;
        std::uint32_t alive = 0;
        std::uint32_t frozen_alive = 0;
        std::uint32_t issuable_barrier = 0;
        std::uint32_t issuable_offchip = 0;
        for (VirtualCtaId slot = 0; slot < ctas_.size(); ++slot) {
            const VirtualCta &cta = ctas_[slot];
            if (!cta.valid)
                continue;
            alive += cta.aliveBySched[s];
            const bool issuable = vt_.isIssuable(slot);
            if (!issuable) {
                frozen_alive += cta.aliveBySched[s];
                continue;
            }
            std::uint32_t barrier = 0;
            std::uint32_t offchip = 0;
            for (std::uint32_t w : cta.schedWarps[s]) {
                const WarpContext &warp = cta.warps[w];
                if (warp.done())
                    continue;
                barrier += warp.atBarrier() ? 1 : 0;
                offchip += warp.pendingOffChip() > 0 ? 1 : 0;
                if (warpReadyMember(cta, warp))
                    expected.push_back(readyKey(slot, w));
            }
            VTSIM_ASSERT(barrier == cta.barrierBySched[s] &&
                         offchip == cta.offchipBySched[s],
                         "per-CTA ready counters diverged for cta ", slot,
                         " sched ", s);
            issuable_barrier += barrier;
            issuable_offchip += offchip;
        }
        VTSIM_ASSERT(expected == ready_[s],
                     "ready list diverged from full scan on sched ", s,
                     " (", ready_[s].size(), " vs ", expected.size(),
                     " entries)");
        VTSIM_ASSERT(alive == schedAlive_[s] &&
                     frozen_alive == schedFrozenAlive_[s] &&
                     issuable_barrier == schedIssuableBarrier_[s] &&
                     issuable_offchip == schedIssuableOffchip_[s],
                     "ready aggregates diverged on sched ", s);
    }
}

} // namespace vtsim
