file(REMOVE_RECURSE
  "../bench/tab3_storage_overhead"
  "../bench/tab3_storage_overhead.pdb"
  "CMakeFiles/tab3_storage_overhead.dir/tab3_storage_overhead.cc.o"
  "CMakeFiles/tab3_storage_overhead.dir/tab3_storage_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_storage_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
