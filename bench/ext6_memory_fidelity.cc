/**
 * @file
 * EXT-6 (methodology ablation): the memory-system fidelity choices
 * DESIGN.md's calibration notes call out, shown to be load-bearing.
 * Each row reruns a VT-winning benchmark with one fidelity knob
 * degraded: FCFS DRAM scheduling (window 1) and a 32-entry L1 MSHR
 * file. VT's apparent benefit shrinks or inverts under the degraded
 * models — the trap a lower-fidelity reproduction would fall into.
 */

#include <cstdio>

#include "bench_common.hh"

namespace {

double
vtSpeedup(const char *name, vtsim::GpuConfig base)
{
    using namespace vtsim::bench;
    vtsim::GpuConfig vt = base;
    vt.vtEnabled = true;
    const RunResult b = runWorkload(name, base, benchScale);
    const RunResult v = runWorkload(name, vt, benchScale);
    return double(b.stats.cycles) / v.stats.cycles;
}

} // namespace

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("EXT-6", "memory-fidelity ablation of VT's speedup");
    std::printf("%-14s %10s %12s %12s\n", "benchmark", "faithful",
                "fcfs-dram", "32-mshr-l1");
    const char *subset[] = {"vecadd", "stencil", "histogram", "needle"};
    for (const char *name : subset) {
        const GpuConfig faithful = GpuConfig::fermiLike();
        GpuConfig fcfs = faithful;
        fcfs.dramSchedWindow = 1;
        GpuConfig small_mshr = faithful;
        small_mshr.l1Mshrs = 32;
        std::printf("%-14s %9.2fx %11.2fx %11.2fx\n", name,
                    vtSpeedup(name, faithful), vtSpeedup(name, fcfs),
                    vtSpeedup(name, small_mshr));
    }
    std::printf("(each column compares VT to a baseline with the SAME "
                "memory model)\n");
    return 0;
}
