file(REMOVE_RECURSE
  "../bench/fig6_vs_bigger_scheduler"
  "../bench/fig6_vs_bigger_scheduler.pdb"
  "CMakeFiles/fig6_vs_bigger_scheduler.dir/fig6_vs_bigger_scheduler.cc.o"
  "CMakeFiles/fig6_vs_bigger_scheduler.dir/fig6_vs_bigger_scheduler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vs_bigger_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
