#!/usr/bin/env python3
"""Compare concurrent-kernel sharing policies and emit BENCH_sharing.json.

Runs bench/ext7_kernel_sharing once with --stats-json: per workload mix
that gives every member's solo run plus one co-run per sharing policy
(spatial, vt-fill, preempt — see docs/ARCHITECTURE.md "Concurrent
kernels"). Two things come out of that:

 1. A regression gate: vt-fill must beat spatial's aggregate IPC on at
    least one memory+compute mix. That is the point of VT-slot sharing —
    filling another grid's idle slots instead of fencing off SMs — and
    a zero here means the policy stopped doing its job.
 2. A perf record: BENCH_sharing.json is the stats document extended
    with a "sharing" section holding, per mix, the solo aggregate IPC
    and Kcyc/s next to each policy's aggregate IPC, Kcyc/s, STP, ANTT
    and per-grid slowdown vs solo.

The output validates against ci/stats_schema.json (the script checks).

Standard library only. Usage:
    bench_sharing.py [--binary PATH] [--out PATH]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "scripts"))
import validate_stats_json  # noqa: E402


def agg_ipc(run):
    return run["stats"]["ipc"]


def kcycles_per_sec(cycles, wall):
    return round(cycles / wall / 1e3, 3) if wall > 0 else 0.0


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--binary", default=str(REPO / "build/bench/ext7_kernel_sharing"))
    parser.add_argument("--out", default="BENCH_sharing.json")
    args = parser.parse_args(argv[1:])

    with tempfile.TemporaryDirectory() as tmp:
        stats_path = pathlib.Path(tmp) / "stats.json"
        subprocess.run(
            [args.binary, "--jobs", "1", "--stats-json", str(stats_path)],
            check=True, stdout=subprocess.DEVNULL)
        document = json.loads(stats_path.read_text())

    # Reconstruct the batch layout from the run list itself: solo runs
    # have no "grids", co-runs carry "grids" + "share_policy" and a
    # '+'-joined workload label. Each mix's solo runs precede its
    # co-runs, so a forward scan always finds the solo entry.
    solo = {}
    mixes = {}  # label -> {"members": [...], "policies": [...]}
    for run in document["runs"]:
        if not run.get("grids"):
            solo[run["workload"]] = run
            continue
        members = run["workload"].split("+")
        entry = mixes.setdefault(
            run["workload"], {"members": members, "policies": []})
        for name in members:
            if name not in solo:
                print(f"[bench-sharing] FAIL: co-run '{run['workload']}' "
                      f"has no solo run of '{name}' to normalize against",
                      file=sys.stderr)
                return 1
        entry["policies"].append(run)

    if not mixes:
        print("[bench-sharing] FAIL: the batch contains no co-runs",
              file=sys.stderr)
        return 1

    section = {"mixes": [], "vt_fill_beats_spatial_mixes": 0}
    for label, entry in mixes.items():
        members = entry["members"]
        solo_cycles = {m: solo[m]["stats"]["cycles"] for m in members}
        solo_wall = sum(solo[m]["wall_seconds"] for m in members)
        row = {
            "mix": label,
            "solo_agg_ipc": round(
                sum(agg_ipc(solo[m]) for m in members), 4),
            "solo_kcycles_per_sec": kcycles_per_sec(
                sum(solo_cycles.values()), solo_wall),
            "policies": [],
        }
        by_policy = {}
        for run in entry["policies"]:
            slowdowns = {
                m: round(run["stats"]["cycles"] / solo_cycles[m], 4)
                for m in members
            }
            policy_row = {
                "policy": run["share_policy"],
                "agg_ipc": round(agg_ipc(run), 4),
                "kcycles_per_sec": kcycles_per_sec(
                    run["stats"]["cycles"], run["wall_seconds"]),
                "stp": round(sum(1.0 / s for s in slowdowns.values()), 4),
                "antt": round(
                    sum(slowdowns.values()) / len(slowdowns), 4),
                "slowdowns": slowdowns,
            }
            row["policies"].append(policy_row)
            by_policy[run["share_policy"]] = policy_row
        if ("vt-fill" in by_policy and "spatial" in by_policy
                and by_policy["vt-fill"]["agg_ipc"]
                > by_policy["spatial"]["agg_ipc"]):
            section["vt_fill_beats_spatial_mixes"] += 1
        section["mixes"].append(row)

    for row in section["mixes"]:
        parts = ", ".join(
            f"{p['policy']} {p['agg_ipc']:.2f} IPC "
            f"(ANTT {p['antt']:.2f})"
            for p in row["policies"])
        print(f"[bench-sharing] {row['mix']}: solo "
              f"{row['solo_agg_ipc']:.2f} IPC; {parts}")

    if section["vt_fill_beats_spatial_mixes"] == 0:
        print("[bench-sharing] FAIL: vt-fill never beat spatial's "
              "aggregate IPC — slot filling has regressed",
              file=sys.stderr)
        return 1
    print(f"[bench-sharing] vt-fill beats spatial on "
          f"{section['vt_fill_beats_spatial_mixes']}/"
          f"{len(section['mixes'])} mixes")

    document["sharing"] = section
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(document, indent=2) + "\n")

    # The document must still be a valid vtsim-stats-v1 batch.
    return validate_stats_json.main(
        ["validate_stats_json.py", str(out_path)])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
