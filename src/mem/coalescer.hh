/**
 * @file
 * Global-memory access coalescer: collapses the per-lane addresses of one
 * warp memory instruction into the minimal set of line-granular
 * transactions, exactly as the hardware coalescing stage does.
 */

#ifndef VTSIM_MEM_COALESCER_HH
#define VTSIM_MEM_COALESCER_HH

#include <vector>

#include "common/types.hh"
#include "func/exec_context.hh"

namespace vtsim {

/** One coalesced transaction: a line plus the bytes actually touched. */
struct CoalescedAccess
{
    Addr lineAddr;
    std::uint32_t bytes;   ///< Touched bytes within the line (<= lineSize).
    std::uint32_t lanes;   ///< Number of lanes folded into this line.
};

/**
 * Coalesce @p accesses (4-byte lane accesses) into unique
 * @p line_size-aligned transactions, preserving first-touch order.
 */
std::vector<CoalescedAccess> coalesce(const std::vector<LaneAccess> &accesses,
                                      std::uint32_t line_size);

/**
 * Shared-memory bank-conflict model: the number of serialised passes the
 * access needs. Same-word accesses broadcast (one pass); distinct words
 * mapping to the same bank serialise.
 *
 * @param accesses Per-lane byte addresses within shared memory.
 * @param num_banks Number of 4-byte-interleaved banks (power of two).
 * @return Number of passes (>= 1 when any access present, else 0).
 */
std::uint32_t sharedMemPasses(const std::vector<LaneAccess> &accesses,
                              std::uint32_t num_banks);

} // namespace vtsim

#endif // VTSIM_MEM_COALESCER_HH
