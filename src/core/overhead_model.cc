#include "core/overhead_model.hh"

#include <iomanip>

#include "common/log.hh"

namespace vtsim {

VtOverhead
computeOverhead(const GpuConfig &config, std::uint32_t warps_per_cta,
                std::uint32_t regs_per_thread,
                std::uint32_t simt_stack_depth)
{
    VTSIM_ASSERT(warps_per_cta > 0 && regs_per_thread > 0,
                 "degenerate kernel shape");
    VtOverhead o;

    // Per-warp scheduling state a context switch must preserve:
    //  - SIMT stack: each entry is {pc, reconverge pc, 32-bit mask}.
    //    PCs sized for a 24-bit instruction space -> 3 bytes each.
    const std::uint32_t simt_entry_bytes = 3 + 3 + 4;
    const std::uint32_t simt_bytes = simt_stack_depth * simt_entry_bytes;
    //  - Scoreboard: 2 bits (pending, long-latency) per register.
    const std::uint32_t sb_bytes = (regs_per_thread * 2 + 7) / 8;
    //  - Barrier flag + misc warp status: 1 byte.
    const std::uint32_t status_bytes = 1;
    o.bytesPerWarpContext = simt_bytes + sb_bytes + status_bytes;

    // Per-CTA state: barrier arrival count + CTA status byte.
    const std::uint32_t cta_bytes = 2;
    o.bytesPerCtaContext =
        warps_per_cta * o.bytesPerWarpContext + cta_bytes;

    const std::uint32_t virtual_ctas =
        config.vtMaxVirtualCtasPerSm ? config.vtMaxVirtualCtasPerSm
                                     : config.maxCtasPerSm;
    o.extraContextsPerSm = virtual_ctas > config.maxCtasPerSm
                               ? virtual_ctas - config.maxCtasPerSm
                               : 0;
    o.totalBytesPerSm =
        std::uint64_t(o.extraContextsPerSm) * o.bytesPerCtaContext;

    o.registerFileBytesPerSm = std::uint64_t(config.registersPerSm) * 4;

    // What a conventional preemption mechanism would have to move per CTA
    // swap: every live register plus the CTA's shared memory.
    o.naiveSwapBytesPerCta =
        std::uint64_t(warps_per_cta) * warpSize * regs_per_thread * 4 +
        config.sharedMemPerSm / config.maxCtasPerSm;

    return o;
}

void
printOverhead(std::ostream &os, const VtOverhead &overhead)
{
    auto row = [&os](const std::string &key, std::uint64_t bytes) {
        os << "  " << std::left << std::setw(44) << key << bytes
           << " B\n";
    };
    os << "Virtual Thread storage overhead\n";
    row("Saved scheduling state per warp context",
        overhead.bytesPerWarpContext);
    row("Saved scheduling state per CTA context",
        overhead.bytesPerCtaContext);
    os << "  " << std::left << std::setw(44)
       << "Extra CTA contexts per SM" << overhead.extraContextsPerSm
       << '\n';
    row("Total added storage per SM", overhead.totalBytesPerSm);
    row("Register file per SM (for scale)",
        overhead.registerFileBytesPerSm);
    row("Bytes a register-copying swap would move",
        overhead.naiveSwapBytesPerCta);
    const double pct = overhead.registerFileBytesPerSm
        ? 100.0 * double(overhead.totalBytesPerSm) /
              double(overhead.registerFileBytesPerSm)
        : 0.0;
    os << "  VT storage = " << std::fixed << std::setprecision(2) << pct
       << "% of the register file\n";
}

} // namespace vtsim
