/**
 * @file
 * Whole-machine statistics dump: run one benchmark (baseline and VT) and
 * print every component's counters — the gem5-style record an
 * architecture study would post-process.
 *
 * Usage: inspect_stats [benchmark] [vt] (default: vecadd, baseline)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
try {
    using namespace vtsim;

    const std::string name = argc > 1 ? argv[1] : "vecadd";
    const bool vt_on = argc > 2 && std::string(argv[2]) == "vt";

    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = vt_on;

    auto wl = makeWorkload(name);
    const Kernel kernel = wl->buildKernel();
    Gpu gpu(cfg);
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(kernel, lp);
    if (!wl->verify(gpu.memory()))
        VTSIM_FATAL("workload produced wrong results");

    std::printf("# %s on the %s machine: %llu cycles, IPC %.3f\n",
                name.c_str(), vt_on ? "virtual-thread" : "baseline",
                (unsigned long long)stats.cycles, stats.ipc);
    std::printf("# full component statistics follow\n");
    gpu.dumpStats(std::cout);
    return 0;
} catch (const vtsim::FatalError &e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
}
